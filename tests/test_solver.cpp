// End-to-end tests of the Theorem 1 combined solver.
#include <gtest/gtest.h>

#include "baselines/calibration_bounds.hpp"
#include "gen/generators.hpp"
#include "mm/lower_bounds.hpp"
#include "solver/ise_solver.hpp"
#include "solver/mm_via_ise.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

GenParams mixed_params(std::uint64_t seed, int n = 14) {
  GenParams params;
  params.seed = seed;
  params.n = n;
  params.T = 10;
  params.machines = 2;
  params.horizon = 100;
  params.max_proc = 9;
  return params;
}

TEST(IseSolver, MixedInstancesFeasibleAndClean) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate_mixed(mixed_params(seed), 0.5);
    const IseSolveResult result = solve_ise(instance);
    ASSERT_TRUE(result.feasible) << "seed " << seed << ": " << result.error;
    EXPECT_EQ(result.long_job_count + result.short_job_count, instance.size());
    const VerifyResult check = verify_ise(instance, result.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
    EXPECT_GE(static_cast<std::int64_t>(result.total_calibrations),
              calibration_lower_bound(instance))
        << "seed " << seed;
  }
}

TEST(IseSolver, PureLongInstanceSkipsShortPool) {
  const Instance instance = generate_long_window(mixed_params(2));
  const IseSolveResult result = solve_ise(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_EQ(result.short_job_count, 0u);
  EXPECT_EQ(result.short_telemetry.total_calibrations, 0u);
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(IseSolver, PureShortInstanceSkipsLongPool) {
  const Instance instance = generate_short_window(mixed_params(3));
  const IseSolveResult result = solve_ise(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_EQ(result.long_job_count, 0u);
  EXPECT_EQ(result.long_telemetry.total_calibrations, 0u);
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(IseSolver, CustomMmBlackBox) {
  IseSolverOptions options;
  options.mm = std::make_shared<ExactMM>();
  const Instance instance = generate_short_window(mixed_params(5, 10));
  const IseSolveResult result = solve_ise(instance, options);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
  ASSERT_FALSE(result.short_telemetry.mm_algorithms.empty());
  EXPECT_EQ(result.short_telemetry.mm_algorithms[0], "exact-state");
}

TEST(IseSolver, EmptyInstance) {
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  const IseSolveResult result = solve_ise(instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.total_calibrations, 0u);
}

TEST(IseSolver, SingleJob) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 3, 40, 6}};
  const IseSolveResult result = solve_ise(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(IseSolver, ClusteredArrivalsBothRegimes) {
  for (const bool long_windows : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      GenParams params = mixed_params(seed, 16);
      const Instance instance =
          generate_clustered(params, /*bursts=*/3, /*burst_span=*/8, long_windows);
      const IseSolveResult result = solve_ise(instance);
      ASSERT_TRUE(result.feasible)
          << "seed " << seed << " long=" << long_windows << ": " << result.error;
      const VerifyResult check = verify_ise(instance, result.schedule);
      EXPECT_TRUE(check.ok())
          << "seed " << seed << " long=" << long_windows << "\n"
          << check.to_string();
    }
  }
}

TEST(IseSolver, SpeedAugmentedMmBoxEndToEnd) {
  // Theorem 1 with an s-speed MM black box: the whole result runs on
  // s-speed machines (the long pipeline's schedule is lifted unchanged).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = generate_mixed(mixed_params(seed), 0.5);
    IseSolverOptions options;
    options.mm = std::make_shared<SpeedupMM>(std::make_shared<GreedyEdfMM>(), 2);
    const IseSolveResult result = solve_ise(instance, options);
    ASSERT_TRUE(result.feasible) << "seed " << seed << ": " << result.error;
    if (result.short_job_count > 0) {
      EXPECT_EQ(result.schedule.speed, 2) << "seed " << seed;
    }
    const VerifyResult check = verify_ise(instance, result.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
  }
}

TEST(IseSolver, MachinePoolsAreDisjoint) {
  const Instance instance = generate_mixed(mixed_params(7), 0.5);
  const IseSolveResult result = solve_ise(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  // Long-pool machines all strictly below the short pool offset.
  const int long_pool = 18 * instance.machines;
  const WindowSplit split = split_by_window(instance);
  for (const ScheduledJob& sj : result.schedule.jobs) {
    const bool is_long = split.long_jobs.jobs.end() !=
                         std::find_if(split.long_jobs.jobs.begin(),
                                      split.long_jobs.jobs.end(),
                                      [&](const Job& job) { return job.id == sj.job; });
    if (is_long) {
      EXPECT_LT(sj.machine, long_pool) << "job " << sj.job;
    } else {
      EXPECT_GE(sj.machine, long_pool) << "job " << sj.job;
    }
  }
}

TEST(IseSolver, ReportsInfeasibilityHonestly) {
  // Seven full-length jobs share window [0, 2T) on one machine: the TISE
  // relaxation on 3m = 3 machines caps the feasible calibration mass at 6
  // (3 at each of the two nested points), so 7T work cannot fit.
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  for (JobId j = 0; j < 7; ++j) instance.jobs.push_back({j, 0, 20, 10});
  const IseSolveResult result = solve_ise(instance);
  EXPECT_FALSE(result.feasible);
  EXPECT_NE(result.error.find("infeasible"), std::string::npos) << result.error;
}

TEST(MmViaIse, ReductionYieldsValidMmSchedules) {
  // Section 1's reduction: an ISE solve with T = span gives an MM schedule
  // with one machine per calibration.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 10;
    params.T = 10;  // ignored by the reduction
    params.horizon = 50;
    params.max_proc = 8;
    const Instance instance = generate_short_window(params);
    const MmViaIseResult result = mm_via_ise(instance);
    ASSERT_TRUE(result.feasible) << "seed " << seed << ": " << result.error;
    EXPECT_EQ(static_cast<std::size_t>(result.schedule.machines),
              result.calibrations)
        << "seed " << seed;
    const VerifyResult check = verify_mm(instance, result.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
    EXPECT_GE(result.schedule.machines, mm_lower_bound(instance))
        << "seed " << seed;
  }
}

TEST(MmViaIse, EmptyInstance) {
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  const MmViaIseResult result = mm_via_ise(instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.calibrations, 0u);
}

TEST(MmViaIse, SequentialJobsShareOneMachine) {
  Instance instance;
  instance.machines = 1;
  instance.T = 2;  // ignored
  instance.jobs = {{0, 0, 4, 4}, {1, 4, 8, 4}, {2, 8, 12, 4}};
  const MmViaIseResult result = mm_via_ise(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_TRUE(verify_mm(instance, result.schedule).ok());
}

}  // namespace
}  // namespace calisched

// Property-based sweeps (parameterized over seeds and instance shapes).
//
// These tests restate the paper's invariants as executable properties and
// sweep them across many random instances:
//   P1  every pipeline schedule passes the independent verifier;
//   P2  Lemma 4's sliding-window bound on rounded calibrations;
//   P3  Lemma 5 / Corollary 6 witness invariants;
//   P4  Theorem 12 machine budget and the internal 2x-LP rounding chain;
//   P5  Theorem 20 calibration budget in MM-machine units;
//   P6  the speed transform never increases calibrations and stays exact;
//   P8  the per-type calibration grids collapse to the classic Lemma 3
//       grid on unit-model instances (the cost-model generalization is
//       conservative);
//   P9  approximation ratios against *certified exact optima* at n in
//       100..200: the exact state-space engine solves structured wave
//       instances at sizes far past branch-and-bound reach, and every
//       paper bound (combinatorial lower bound <= OPT, Theorem 20's
//       16*gamma*alpha ceiling with an exact MM box, baselines >= OPT)
//       holds against the true optimum, not a proxy lower bound.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/baseline.hpp"
#include "baselines/calibration_bounds.hpp"
#include "baselines/exact_ise.hpp"
#include "core/calibration_points.hpp"
#include "gen/generators.hpp"
#include "longwin/fractional_witness.hpp"
#include "longwin/long_pipeline.hpp"
#include "longwin/tise_lp.hpp"
#include "longwin/rounding.hpp"
#include "longwin/speed_transform.hpp"
#include "mm/mm.hpp"
#include "shortwin/short_pipeline.hpp"
#include "solver/ise_solver.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

struct SweepCase {
  std::uint64_t seed;
  int n;
  Time T;
  int machines;
};

std::string case_name(const testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_n" + std::to_string(c.n) + "_T" +
         std::to_string(c.T) + "_m" + std::to_string(c.machines);
}

GenParams to_params(const SweepCase& c) {
  GenParams params;
  params.seed = c.seed;
  params.n = c.n;
  params.T = c.T;
  params.machines = c.machines;
  params.horizon = 12 * c.T;
  params.max_proc = c.T;
  return params;
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (std::uint64_t seed : {11, 22, 33, 44, 55, 66}) {
    for (const int n : {6, 12, 20}) {
      for (const Time T : {Time{5}, Time{12}}) {
        cases.push_back({seed, n, T, 1 + static_cast<int>(seed % 3)});
      }
    }
  }
  // Odd calibration length + minimum T corner, at each size.
  for (const int n : {6, 14}) {
    cases.push_back({77, n, 7, 2});
    cases.push_back({88, n, 2, 1});
  }
  return cases;
}

class LongWindowSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(LongWindowSweep, PipelineInvariants) {
  const Instance instance = generate_long_window(to_params(GetParam()));
  const int m_prime = 3 * instance.machines;
  const TiseFractional fractional = solve_tise_lp(instance, m_prime);
  ASSERT_EQ(fractional.status, LpStatus::kOptimal);

  // P2: Lemma 4 window bound on the rounded calendar.
  const auto starts =
      round_calibrations(fractional.points, fractional.calibration_mass);
  for (std::size_t i = 0; i < starts.size(); ++i) {
    std::size_t in_window = 0;
    for (std::size_t j = i;
         j < starts.size() && starts[j] < starts[i] + instance.T; ++j) {
      ++in_window;
    }
    ASSERT_LE(in_window, static_cast<std::size_t>(3 * m_prime));
  }

  // P3: witness invariants.
  const FractionalWitness witness = run_fractional_witness(instance, fractional);
  EXPECT_LE(witness.telemetry.max_y_minus_carryover, 1e-6);
  EXPECT_GE(witness.telemetry.min_job_coverage, 1.0 - 1e-6);
  EXPECT_LE(witness.telemetry.max_calibration_work,
            static_cast<double>(instance.T) + 1e-6);

  // P4: full pipeline budgets + P1 verifier.
  const LongWindowResult pipeline = solve_long_window(instance);
  ASSERT_TRUE(pipeline.feasible) << pipeline.error;
  EXPECT_LE(pipeline.schedule.machines, 18 * instance.machines);
  EXPECT_LE(static_cast<double>(pipeline.telemetry.rounded_calibrations),
            2.0 * pipeline.telemetry.lp_objective + 1e-6);
  const VerifyResult check = verify_tise(instance, pipeline.schedule);
  EXPECT_TRUE(check.ok()) << check.to_string();

  // P6: speed transform.
  const int c = (pipeline.schedule.machines + instance.machines - 1) /
                instance.machines;
  const auto fast = speed_transform(instance, pipeline.schedule, c);
  ASSERT_TRUE(fast.has_value());
  EXPECT_LE(fast->num_calibrations(), pipeline.schedule.num_calibrations());
  const VerifyResult fast_check = verify_ise(instance, *fast);
  EXPECT_TRUE(fast_check.ok()) << fast_check.to_string();
}

TEST_P(LongWindowSweep, LpEnginesAgreeOnTiseRelaxation) {
  // P7 (differential): the sparse revised simplex and the dense tableau
  // must agree on the TISE relaxation across the whole sweep — same
  // status, and at optimality the same objective to LP tolerance. Vertex
  // choice may differ (degenerate optima), so values are checked only
  // through each engine's own feasibility, not against each other.
  const Instance instance = generate_long_window(to_params(GetParam()));
  const int m_prime = 3 * instance.machines;
  SimplexOptions dense_options;
  dense_options.engine = LpEngine::kDenseTableau;
  SimplexOptions revised_options;
  revised_options.engine = LpEngine::kRevised;
  const TiseFractional dense = solve_tise_lp(instance, m_prime, dense_options);
  const TiseFractional revised =
      solve_tise_lp(instance, m_prime, revised_options);
  ASSERT_EQ(dense.status, revised.status);
  if (dense.status != LpStatus::kOptimal) return;
  EXPECT_NEAR(dense.objective, revised.objective, 1e-6);
  // Both fractional solutions must cover every job's processing demand.
  for (const TiseFractional* lp : {&dense, &revised}) {
    ASSERT_EQ(lp->assignment.size(), instance.size());
    for (std::size_t j = 0; j < instance.size(); ++j) {
      double fraction = 0.0;
      for (const auto& [point, value] : lp->assignment[j]) fraction += value;
      EXPECT_NEAR(fraction, 1.0, 1e-6) << "job " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LongWindowSweep, testing::ValuesIn(sweep_cases()),
                         case_name);

class ShortWindowSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(ShortWindowSweep, PipelineInvariants) {
  const Instance instance = generate_short_window(to_params(GetParam()));
  const GreedyEdfMM mm;
  const ShortWindowResult result = solve_short_window(instance, mm);
  ASSERT_TRUE(result.feasible) << result.error;
  // P1: verifier.
  const VerifyResult check = verify_ise(instance, result.schedule);
  EXPECT_TRUE(check.ok()) << check.to_string();
  // P5: Lemma 19 budget, summed over intervals.
  EXPECT_LE(result.telemetry.total_calibrations,
            static_cast<std::size_t>(8 * result.telemetry.sum_mm_machines));
  EXPECT_LE(result.telemetry.machines_allotted,
            6 * result.telemetry.max_mm_machines);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShortWindowSweep, testing::ValuesIn(sweep_cases()),
                         case_name);

class MixedSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(MixedSweep, EndToEndInvariants) {
  const Instance instance = generate_mixed(to_params(GetParam()), 0.5);
  const IseSolveResult result = solve_ise(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  const VerifyResult check = verify_ise(instance, result.schedule);
  EXPECT_TRUE(check.ok()) << check.to_string();
  EXPECT_GE(static_cast<std::int64_t>(result.total_calibrations),
            calibration_lower_bound(instance));
  EXPECT_EQ(result.long_job_count + result.short_job_count, instance.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, MixedSweep, testing::ValuesIn(sweep_cases()),
                         case_name);

class UnitSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(UnitSweep, UnitInstancesThroughBothPaths) {
  GenParams params = to_params(GetParam());
  const Instance instance = generate_unit(params, /*max_window=*/2 * params.T - 1);
  // All unit jobs here are short-window; run the full solver and the unit
  // MM box variant, both must verify.
  const IseSolveResult general = solve_ise(instance);
  ASSERT_TRUE(general.feasible) << general.error;
  EXPECT_TRUE(verify_ise(instance, general.schedule).ok());

  IseSolverOptions options;
  options.mm = std::make_shared<UnitEdfMM>();
  const IseSolveResult unit = solve_ise(instance, options);
  ASSERT_TRUE(unit.feasible) << unit.error;
  EXPECT_TRUE(verify_ise(instance, unit.schedule).ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnitSweep, testing::ValuesIn(sweep_cases()),
                         case_name);

class OptimizedSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(OptimizedSweep, OptimizationsPreserveFeasibilityAndNeverCostMore) {
  const Instance instance = generate_mixed(to_params(GetParam()), 0.5);
  const IseSolveResult paper = solve_ise(instance);
  ASSERT_TRUE(paper.feasible) << paper.error;

  IseSolverOptions options;
  options.long_window.adaptive_mirror = true;
  options.long_window.prune_empty_calibrations = true;
  options.short_window.trim_unused_calibrations = true;
  const IseSolveResult optimized = solve_ise(instance, options);
  ASSERT_TRUE(optimized.feasible) << optimized.error;
  EXPECT_LE(optimized.total_calibrations, paper.total_calibrations);
  const VerifyResult check = verify_ise(instance, optimized.schedule);
  EXPECT_TRUE(check.ok()) << check.to_string();
  EXPECT_GE(static_cast<std::int64_t>(optimized.total_calibrations),
            calibration_lower_bound(instance));
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptimizedSweep, testing::ValuesIn(sweep_cases()),
                         case_name);

class SpeedSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(SpeedSweep, SpeedAugmentedShortPipeline) {
  const Instance instance = generate_short_window(to_params(GetParam()));
  const GreedyEdfMM base;
  const ShortWindowResult slow = solve_short_window(instance, base);
  ASSERT_TRUE(slow.feasible) << slow.error;
  const SpeedupMM fast_box(std::make_shared<GreedyEdfMM>(), 2);
  const ShortWindowResult fast = solve_short_window(instance, fast_box);
  ASSERT_TRUE(fast.feasible) << fast.error;
  // Faster machines never require more of them.
  EXPECT_LE(fast.telemetry.sum_mm_machines, slow.telemetry.sum_mm_machines);
  const VerifyResult check = verify_ise(instance, fast.schedule);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpeedSweep, testing::ValuesIn(sweep_cases()),
                         case_name);

class GridCollapseSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(GridCollapseSweep, TypedGridsCollapseToLemma3OnUnitModel) {
  // P8: for an implicit-unit instance and for the same instance with the
  // explicit {T, 1, 0} table, typed_tise_calibration_points must have
  // exactly one per-type grid, equal to the classic tise grid — the
  // generalized machinery is a strict extension, not a reinterpretation.
  for (Instance instance :
       {generate_long_window(to_params(GetParam())),
        generate_mixed(to_params(GetParam()), 0.5)}) {
    const std::vector<Time> classic = tise_calibration_points(instance);
    for (int pass = 0; pass < 2; ++pass) {
      const auto typed = typed_tise_calibration_points(instance);
      ASSERT_EQ(typed.size(), 1u);
      EXPECT_EQ(typed[0], classic);
      // Second pass: the explicit one-type unit table.
      instance.cal = CalibrationModel::unit(instance.T);
    }
    // The canonical superset relation survives the generalization too.
    const auto all = canonical_calibration_points(instance);
    for (const Time t : classic) {
      EXPECT_TRUE(std::binary_search(all.begin(), all.end(), t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GridCollapseSweep,
                         testing::ValuesIn(sweep_cases()), case_name);

// ------------------------------------------------------------------ P9 --
//
// Ratio sweep against certified exact optima at n ~ 100..200. Random
// generator families are hopeless at these sizes for *any* exact engine
// (the job-subset lattice is unstructured), so the sweep uses wave
// instances — k waves of c identical jobs {w*gap, w*gap + W, p} — whose
// twin symmetry the state-space engine collapses to per-wave counts. The
// branch-and-bound oracle certifies these only up to n ~ 20; the layered
// engine reaches n = 200 in a few hundred thousand states (the >= 5x
// engine-size claim of DESIGN.md section 13, exercised as a test).

struct WaveCase {
  int k;         ///< waves
  int c;         ///< identical jobs per wave
  int machines;
  Time gap;      ///< wave-to-wave release spacing
  Time window;   ///< per-job window length
  Time proc;
  Time T;
};

std::string wave_case_name(const testing::TestParamInfo<WaveCase>& info) {
  const WaveCase& c = info.param;
  return "n" + std::to_string(c.k * c.c) + "_m" + std::to_string(c.machines);
}

Instance wave_instance(const WaveCase& c) {
  Instance instance;
  instance.T = c.T;
  instance.machines = c.machines;
  JobId id = 0;
  for (int w = 0; w < c.k; ++w) {
    for (int i = 0; i < c.c; ++i) {
      instance.jobs.push_back(
          {id++, w * c.gap, w * c.gap + c.window, c.proc});
    }
  }
  return instance;
}

std::vector<WaveCase> wave_cases() {
  // T = 6, p = 2, window 8: four jobs saturate one machine's wave, three
  // share one calibration, and adjacent waves (gap 10, so windows end 2
  // before the next release) admit boundary calibration sharing — the
  // optimum is genuinely below one-calibration-per-wave-slot.
  return {
      {25, 4, 1, 10, 8, 2, 6},  // n = 100
      {38, 4, 1, 10, 8, 2, 6},  // n = 152
      {50, 4, 1, 10, 8, 2, 6},  // n = 200
      {4, 6, 2, 12, 8, 2, 6},   // n = 24, two machines
  };
}

class ExactRatioSweep : public testing::TestWithParam<WaveCase> {};

TEST_P(ExactRatioSweep, PaperBoundsHoldAgainstCertifiedOptima) {
  const Instance instance = wave_instance(GetParam());
  ExactIseOptions options;
  options.node_budget = 20'000'000;
  options.max_calibrations = 999;  // trimmed by the greedy upper-bound hint
  const ExactIseResult exact = solve_exact_ise(instance, options);
  ASSERT_TRUE(exact.solved) << "state budget exhausted at n="
                            << instance.size();
  ASSERT_TRUE(exact.feasible);
  ASSERT_TRUE(verify_ise(instance, exact.schedule).ok());
  const auto opt = static_cast<std::int64_t>(exact.optimal_calibrations);

  // The combinatorial lower bound never exceeds the true optimum.
  EXPECT_GE(opt, calibration_lower_bound(instance));

  // Any feasible baseline upper-bounds the optimum. (The lazy greedy is
  // allowed to fail on tight instances — fully saturated single-machine
  // waves defeat it — and reports that honestly rather than feasibly.)
  const BaselineResult lazy = GreedyLazyIse().solve(instance);
  if (lazy.feasible) {
    EXPECT_GE(static_cast<std::int64_t>(lazy.schedule.num_calibrations()),
              opt);
  }

  // Theorem 20 with an exact MM box (alpha = 1, gamma = 2): the short-
  // window pipeline pays at most 16 * gamma * alpha * OPT calibrations.
  // Every wave job is short-window (window < 2T), so the pipeline applies
  // to the whole instance.
  const ExactMM exact_mm;
  const ShortWindowResult pipeline = solve_short_window(instance, exact_mm);
  ASSERT_TRUE(pipeline.feasible) << pipeline.error;
  ASSERT_TRUE(verify_ise(instance, pipeline.schedule).ok());
  const auto pipeline_cals =
      static_cast<std::int64_t>(pipeline.telemetry.total_calibrations);
  EXPECT_GE(pipeline_cals, opt);
  EXPECT_LE(pipeline_cals, 32 * opt);

  // The end-to-end solver can never beat a certified optimum.
  const IseSolveResult solved = solve_ise(instance);
  ASSERT_TRUE(solved.feasible) << solved.error;
  EXPECT_GE(static_cast<std::int64_t>(solved.total_calibrations), opt);
  EXPECT_LE(static_cast<std::int64_t>(solved.total_calibrations), 32 * opt);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactRatioSweep,
                         testing::ValuesIn(wave_cases()), wave_case_name);

}  // namespace
}  // namespace calisched

// Tests for the independent feasibility verifier: each violation class must
// be detected, and clean schedules must pass.
#include <gtest/gtest.h>

#include "verify/verify.hpp"

namespace calisched {
namespace {

Instance two_job_instance() {
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  instance.jobs = {
      {0, 0, 20, 4},
      {1, 2, 30, 6},
  };
  return instance;
}

Schedule clean_schedule(const Instance& instance) {
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.calibrations = {{0, 0}};
  schedule.jobs = {{0, 0, 0}, {1, 0, 4}};
  return schedule;
}

TEST(VerifyIse, CleanSchedulePasses) {
  const Instance instance = two_job_instance();
  const Schedule schedule = clean_schedule(instance);
  const VerifyResult result = verify_ise(instance, schedule);
  EXPECT_TRUE(result.ok()) << result.to_string();
  EXPECT_EQ(result.to_string(), "ok");
}

TEST(VerifyIse, DetectsMissingJob) {
  const Instance instance = two_job_instance();
  Schedule schedule = clean_schedule(instance);
  schedule.jobs.pop_back();
  const VerifyResult result = verify_ise(instance, schedule);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.violations[0].kind, Violation::Kind::kStructural);
}

TEST(VerifyIse, DetectsDuplicateJob) {
  const Instance instance = two_job_instance();
  Schedule schedule = clean_schedule(instance);
  schedule.calibrations.push_back({0, 20});
  schedule.jobs.push_back({0, 0, 20});
  const VerifyResult result = verify_ise(instance, schedule);
  ASSERT_FALSE(result.ok());
}

TEST(VerifyIse, DetectsUnknownJob) {
  const Instance instance = two_job_instance();
  Schedule schedule = clean_schedule(instance);
  schedule.jobs.push_back({99, 0, 0});
  EXPECT_FALSE(verify_ise(instance, schedule).ok());
}

TEST(VerifyIse, DetectsMachineOutOfRange) {
  const Instance instance = two_job_instance();
  Schedule schedule = clean_schedule(instance);
  schedule.jobs[0].machine = 7;
  EXPECT_FALSE(verify_ise(instance, schedule).ok());
}

TEST(VerifyIse, DetectsWindowViolation) {
  const Instance instance = two_job_instance();
  Schedule schedule = clean_schedule(instance);
  schedule.calibrations.push_back({0, 20});
  schedule.jobs[1] = {1, 0, 26};  // finishes at 32 > deadline 30
  const VerifyResult result = verify_ise(instance, schedule);
  ASSERT_FALSE(result.ok());
  bool found = false;
  for (const auto& violation : result.violations) {
    if (violation.kind == Violation::Kind::kWindow) found = true;
  }
  EXPECT_TRUE(found) << result.to_string();
}

TEST(VerifyIse, DetectsJobOutsideCalibration) {
  const Instance instance = two_job_instance();
  Schedule schedule = clean_schedule(instance);
  schedule.jobs[1] = {1, 0, 8};  // [8, 14) sticks out of [0, 10)
  const VerifyResult result = verify_ise(instance, schedule);
  ASSERT_FALSE(result.ok());
  bool found = false;
  for (const auto& violation : result.violations) {
    if (violation.kind == Violation::Kind::kCalibrationCover) found = true;
  }
  EXPECT_TRUE(found) << result.to_string();
}

TEST(VerifyIse, DetectsJobOnUncalibratedMachine) {
  const Instance instance = two_job_instance();
  Schedule schedule = clean_schedule(instance);
  schedule.machines = 2;
  schedule.jobs[0].machine = 1;  // machine 1 has no calibration
  EXPECT_FALSE(verify_ise(instance, schedule).ok());
}

TEST(VerifyIse, DetectsJobOverlap) {
  const Instance instance = two_job_instance();
  Schedule schedule = clean_schedule(instance);
  schedule.jobs[1].start = 2;  // overlaps job 0 at [0, 4)
  const VerifyResult result = verify_ise(instance, schedule);
  ASSERT_FALSE(result.ok());
  bool found = false;
  for (const auto& violation : result.violations) {
    if (violation.kind == Violation::Kind::kJobOverlap) found = true;
  }
  EXPECT_TRUE(found) << result.to_string();
}

TEST(VerifyIse, DetectsCalibrationOverlap) {
  const Instance instance = two_job_instance();
  Schedule schedule = clean_schedule(instance);
  schedule.calibrations.push_back({0, 5});  // overlaps [0, 10)
  const VerifyResult result = verify_ise(instance, schedule);
  ASSERT_FALSE(result.ok());
  bool found = false;
  for (const auto& violation : result.violations) {
    if (violation.kind == Violation::Kind::kCalibrationOverlap) found = true;
  }
  EXPECT_TRUE(found) << result.to_string();
}

TEST(VerifyIse, BackToBackCalibrationsAreFine) {
  const Instance instance = two_job_instance();
  Schedule schedule = clean_schedule(instance);
  schedule.calibrations.push_back({0, 10});  // touches [0,10) at 10: allowed
  EXPECT_TRUE(verify_ise(instance, schedule).ok());
}

TEST(VerifyTise, EnforcesTrimmedRestriction) {
  Instance instance = two_job_instance();
  // Job 1: window [2, 30). A calibration at 0 does not nest in it.
  Schedule schedule = clean_schedule(instance);
  EXPECT_TRUE(verify_ise(instance, schedule).ok());
  const VerifyResult result = verify_tise(instance, schedule);
  ASSERT_FALSE(result.ok());
  bool found = false;
  for (const auto& violation : result.violations) {
    if (violation.kind == Violation::Kind::kTise) found = true;
  }
  EXPECT_TRUE(found) << result.to_string();
}

TEST(VerifyTise, NestedCalibrationPasses) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 4}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.calibrations = {{0, 5}};  // [5, 15) nests in [0, 20)
  schedule.jobs = {{0, 0, 6}};
  EXPECT_TRUE(verify_tise(instance, schedule).ok());
}

TEST(VerifyIse, SpeedAwareTickArithmetic) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 5}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.time_denominator = 4;
  schedule.speed = 4;  // job takes 5 ticks; window is [0, 80) ticks
  schedule.calibrations = {{0, 0}};  // covers [0, 40) ticks
  schedule.jobs = {{0, 0, 12}};
  EXPECT_TRUE(verify_ise(instance, schedule).ok());

  schedule.jobs[0].start = 78;  // [78, 83) exceeds deadline tick 80
  EXPECT_FALSE(verify_ise(instance, schedule).ok());
}

TEST(VerifyIse, DetectsInexactSpeedArithmetic) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 5}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.time_denominator = 1;
  schedule.speed = 2;  // 5 * 1 / 2 is not integral
  schedule.calibrations = {{0, 0}};
  schedule.jobs = {{0, 0, 0}};
  const VerifyResult result = verify_ise(instance, schedule);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.violations[0].kind, Violation::Kind::kArithmetic);
}

TEST(VerifyIse, OverlapAllowedPolicySkipsCalibrationExclusivity) {
  const Instance instance = two_job_instance();
  Schedule schedule = clean_schedule(instance);
  schedule.calibrations.push_back({0, 5});  // overlaps [0, 10)
  EXPECT_FALSE(verify_ise(instance, schedule).ok());
  EXPECT_TRUE(verify_ise(instance, schedule, /*require_tise=*/false,
                         CalibrationPolicy::kOverlapAllowed)
                  .ok());
  // Other violations are still caught under the relaxed policy.
  schedule.jobs[1].start = 2;  // job overlap
  EXPECT_FALSE(verify_ise(instance, schedule, /*require_tise=*/false,
                          CalibrationPolicy::kOverlapAllowed)
                   .ok());
}

TEST(VerifyMm, CleanAndViolations) {
  const Instance instance = two_job_instance();
  MMSchedule mm;
  mm.machines = 1;
  mm.jobs = {{0, 0, 0}, {1, 0, 4}};
  EXPECT_TRUE(verify_mm(instance, mm).ok());

  mm.jobs[1].start = 3;  // overlap
  EXPECT_FALSE(verify_mm(instance, mm).ok());

  mm.jobs[1] = {1, 0, 25};  // finishes 31 > 30
  EXPECT_FALSE(verify_mm(instance, mm).ok());

  mm.jobs = {{0, 0, 0}};  // job 1 missing
  EXPECT_FALSE(verify_mm(instance, mm).ok());
}

}  // namespace
}  // namespace calisched

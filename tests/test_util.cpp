// Unit tests for src/util: RNG, arithmetic, thread pool, tables, CLI.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/arith.hpp"
#include "util/cli.hpp"
#include "util/percentile.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace calisched {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(17);
  int counts[4] = {0, 0, 0, 0};
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_int(0, 3)];
  for (const int count : counts) {
    EXPECT_NEAR(count, trials / 4, trials / 20);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  EXPECT_NE(a(), child());
}

TEST(Arith, FloorDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-8, 2), -4);
  EXPECT_EQ(floor_div(0, 5), 0);
}

TEST(Arith, CeilDiv) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(8, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(1, 10), 1);
}

TEST(Arith, IntervalsOverlap) {
  EXPECT_TRUE(intervals_overlap(0, 5, 4, 9));
  EXPECT_FALSE(intervals_overlap(0, 5, 5, 9));  // half-open touch
  EXPECT_TRUE(intervals_overlap(2, 3, 0, 10));
  EXPECT_FALSE(intervals_overlap(0, 1, 2, 3));
}

TEST(Arith, IntervalContains) {
  EXPECT_TRUE(interval_contains(0, 10, 0, 10));
  EXPECT_TRUE(interval_contains(0, 10, 3, 7));
  EXPECT_FALSE(interval_contains(0, 10, 3, 11));
}

TEST(Arith, CheckedLcm) {
  EXPECT_EQ(checked_lcm(4, 6), 12);
  EXPECT_EQ(checked_lcm(7, 7), 7);
  EXPECT_EQ(checked_lcm(1, 9), 9);
}

TEST(ThreadPool, ParallelForVisitsEachIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 16,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsExactlyOneException) {
  // Many bodies throw concurrently; the caller must see exactly one
  // exception (the first captured), on its own thread, not a terminate.
  ThreadPool pool(4);
  int caught = 0;
  try {
    parallel_for(pool, 64, [](std::size_t) {
      throw std::runtime_error("every body throws");
    });
  } catch (const std::runtime_error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
  // The pool survives a throwing run and processes later work.
  std::atomic<int> sum{0};
  parallel_for(pool, 32, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 32 * 31 / 2);
}

TEST(ThreadPool, DefaultPoolReusableAfterException) {
  EXPECT_THROW(parallel_for(default_pool(), 8,
                            [](std::size_t i) {
                              if (i % 2 == 0) throw std::logic_error("boom");
                            }),
               std::logic_error);
  std::atomic<int> count{0};
  parallel_for(default_pool(), 100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
  // A second throwing run still yields exactly one exception.
  EXPECT_THROW(parallel_for(default_pool(), 8,
                            [](std::size_t) { throw std::logic_error("again"); }),
               std::logic_error);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ChunkedVisitsEachIndexOnce) {
  ThreadPool pool(4);
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_for_chunked(
        pool, hits.size(), [&](std::size_t i) { ++hits[i]; }, chunk);
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "chunk=" << chunk;
  }
}

TEST(ThreadPool, ChunkedZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for_chunked(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ChunkedPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for_chunked(pool, 64,
                                    [](std::size_t i) {
                                      if (i == 33) throw std::runtime_error("boom");
                                    },
                                    4),
               std::runtime_error);
}

TEST(ThreadPool, DefaultChunkSizeBounds) {
  // Always at least one index per claim, at most 32, and small counts on
  // wide pools fall back to singleton chunks (no worker starvation).
  EXPECT_EQ(default_chunk_size(0, 8), 1u);
  EXPECT_EQ(default_chunk_size(10, 8), 1u);
  EXPECT_EQ(default_chunk_size(64, 8), 1u);
  EXPECT_EQ(default_chunk_size(1024, 8), 16u);
  EXPECT_EQ(default_chunk_size(1 << 20, 8), 32u);
  EXPECT_EQ(default_chunk_size(100, 0), 12u);  // workers clamped to 1
}

TEST(ThreadPool, SubmitFutureCompletes) {
  ThreadPool pool(1);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(Table, AlignedOutputContainsCells) {
  Table table({"alpha", "beta"});
  table.row().cell("x").cell(std::int64_t{42});
  table.row().cell(1.5, 2).cell(true);
  std::ostringstream out;
  table.print(out, "demo");
  const std::string text = out.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("PASS"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table table({"name"});
  table.add_row({"a,b\"c"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_NE(out.str().find("\"a,b\"\"c\""), std::string::npos);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Cli, ParsesFlagStyles) {
  // Note: a bare boolean flag greedily consumes a following positional, so
  // boolean flags come last or use the --flag=true form.
  const char* argv[] = {"prog", "--n=12", "--T", "7", "pos1", "--verbose"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("n", 0), 12);
  EXPECT_EQ(args.get_int("T", 0), 7);
  EXPECT_TRUE(args.get_bool("verbose", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("n", -1), -1);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(args.has("nope"));
}

TEST(Cli, RejectsBareDoubleDash) {
  const char* argv[] = {"prog", "--"};
  EXPECT_THROW(CliArgs(2, argv), std::invalid_argument);
}

TEST(Table, RowCount) {
  Table table({"a"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"x"});
  table.row().cell("y");
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Cli, TracksUnusedFlags) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  CliArgs args(3, argv);
  (void)args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

// Regression: std::stoll("8abc") used to yield 8 silently, and garbage
// values raised a bare std::invalid_argument ("stoll") naming nothing.
// Typed accessors now require the entire value to parse and name the flag.
TEST(Cli, GetIntRejectsTrailingGarbage) {
  const char* argv[] = {"prog", "--n=8abc", "--empty=", "--spaced= 7"};
  CliArgs args(4, argv);
  try {
    (void)args.get_int("n", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--n"), std::string::npos) << what;
    EXPECT_NE(what.find("8abc"), std::string::npos) << what;
  }
  EXPECT_THROW((void)args.get_int("empty", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_int("spaced", 0), std::invalid_argument);
}

TEST(Cli, GetIntStillParsesWholeValues) {
  const char* argv[] = {"prog", "--n=-42", "--big=123456789012"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("n", 0), -42);
  EXPECT_EQ(args.get_int("big", 0), 123456789012LL);
}

TEST(Cli, GetDoubleRejectsTrailingGarbage) {
  const char* argv[] = {"prog", "--x=1.5extra", "--y=nope", "--ok=2.5e-1"};
  CliArgs args(4, argv);
  try {
    (void)args.get_double("x", 0.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--x"), std::string::npos) << what;
    EXPECT_NE(what.find("1.5extra"), std::string::npos) << what;
  }
  EXPECT_THROW((void)args.get_double("y", 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(args.get_double("ok", 0.0), 0.25);
}

// Regression: get_bool treated everything that was not exactly "true"/"1"
// as false, so "--verify=ture" silently disabled verification.
TEST(Cli, GetBoolRejectsTypos) {
  const char* argv[] = {"prog", "--verify=ture", "--flag=2"};
  CliArgs args(3, argv);
  try {
    (void)args.get_bool("verify", true);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--verify"), std::string::npos) << what;
    EXPECT_NE(what.find("ture"), std::string::npos) << what;
  }
  EXPECT_THROW((void)args.get_bool("flag", false), std::invalid_argument);
}

TEST(Cli, GetBoolAcceptsCanonicalSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=FALSE", "--c=1",
                        "--d=0",  "--e=Yes",  "--f=no"};
  CliArgs args(7, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
  EXPECT_TRUE(args.get_bool("e", false));
  EXPECT_FALSE(args.get_bool("f", true));
}

// ------------------------------------------------------------ percentile --

TEST(Percentile, EmptyAndSingleSampleBoundaries) {
  EXPECT_EQ(percentile_of({}, 0.0), 0);
  EXPECT_EQ(percentile_of({}, 0.999), 0);
  // A single sample answers every quantile, including q=0.
  EXPECT_EQ(percentile_of({42}, 0.0), 42);
  EXPECT_EQ(percentile_of({42}, 0.5), 42);
  EXPECT_EQ(percentile_of({42}, 1.0), 42);
  const LatencyPercentiles one = latency_percentiles({7});
  EXPECT_EQ(one.samples, 1);
  EXPECT_EQ(one.p50_ns, 7);
  EXPECT_EQ(one.p999_ns, 7);
}

TEST(Percentile, NearestRankMatchesDefinition) {
  // Nearest rank: the smallest value with >= ceil(q*N) samples at or
  // below it. Regression test — the old q*(N-1)+0.5 rounding overshot by
  // one at even sizes (N=4, q=0.5 picked the 3rd smallest, not the 2nd).
  EXPECT_EQ(percentile_of({40, 10, 30, 20}, 0.50), 20);
  EXPECT_EQ(percentile_of({20, 10}, 0.50), 10);
  EXPECT_EQ(percentile_of({30, 10, 20}, 0.50), 20);
  // q=0 is the minimum, q=1 the maximum.
  EXPECT_EQ(percentile_of({40, 10, 30, 20}, 0.0), 10);
  EXPECT_EQ(percentile_of({40, 10, 30, 20}, 1.0), 40);
}

TEST(Percentile, TailRankAtRingCapacity) {
  // At the service ring's size, p999 over 0..4095 must pick sorted index
  // ceil(0.999 * 4096) - 1 = 4091 — never one past it, never the max.
  std::vector<std::int64_t> samples(4096);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<std::int64_t>(samples.size() - 1 - i);
  }
  EXPECT_EQ(percentile_of(samples, 0.999), 4091);
  EXPECT_EQ(percentile_of(samples, 0.99), 4055);   // ceil(4055.04) - 1
  EXPECT_EQ(percentile_of(samples, 0.5), 2047);    // ceil(2048) - 1
  // 1000 samples: p999 is the 999th smallest, one below the maximum.
  std::vector<std::int64_t> thousand(1000);
  for (std::size_t i = 0; i < thousand.size(); ++i) {
    thousand[i] = static_cast<std::int64_t>(i);
  }
  EXPECT_EQ(percentile_of(thousand, 0.999), 998);
}

}  // namespace
}  // namespace calisched

// Tests for the runtime layer: SolveStatus taxonomy, RunLimits/LimitPoller,
// the AlgorithmRegistry adapters, and the concurrent BatchRunner.
//
// The three contracts the batch driver depends on are pinned here:
//   * determinism — batch JSONL (timing excluded) is byte-identical for
//     every --threads value;
//   * deadlines — an already-expired RunLimits makes *every* registered
//     algorithm return kDeadlineExceeded promptly, before any real work;
//   * cancellation — a cancelled token stops a batch, the ThreadPool drains
//     cleanly, and the pool stays usable afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>

#include "gen/generators.hpp"
#include "runtime/batch.hpp"
#include "runtime/limits.hpp"
#include "runtime/registry.hpp"
#include "runtime/status.hpp"
#include "util/thread_pool.hpp"

namespace calisched {
namespace {

GenParams small_params(std::uint64_t seed, int n = 10) {
  GenParams params;
  params.seed = seed;
  params.n = n;
  params.T = 8;
  params.machines = 2;
  params.horizon = 80;
  params.max_proc = 7;
  return params;
}

// ---------------------------------------------------------------- status --

TEST(SolveStatus, ToStringParseRoundTrip) {
  const SolveStatus all[] = {
      SolveStatus::kOk,           SolveStatus::kInfeasible,
      SolveStatus::kDeadlineExceeded, SolveStatus::kCancelled,
      SolveStatus::kNumericalFailure, SolveStatus::kLimitExceeded};
  for (const SolveStatus status : all) {
    SolveStatus parsed = SolveStatus::kNumericalFailure;
    ASSERT_TRUE(parse_solve_status(to_string(status), &parsed))
        << to_string(status);
    EXPECT_EQ(parsed, status);
  }
  SolveStatus sink = SolveStatus::kOk;
  EXPECT_FALSE(parse_solve_status("bogus", &sink));
  EXPECT_EQ(sink, SolveStatus::kOk);
}

TEST(SolveStatus, FormatFailureShapes) {
  EXPECT_EQ(format_failure(SolveStatus::kInfeasible, "", ""), "infeasible");
  EXPECT_EQ(format_failure(SolveStatus::kDeadlineExceeded, "", "lp"),
            "lp: deadline-exceeded");
  EXPECT_EQ(format_failure(SolveStatus::kInfeasible, "no room", "edf"),
            "edf: infeasible (no room)");
}

TEST(SolveStatus, LimitStatusClassification) {
  EXPECT_TRUE(is_limit_status(SolveStatus::kDeadlineExceeded));
  EXPECT_TRUE(is_limit_status(SolveStatus::kCancelled));
  EXPECT_TRUE(is_limit_status(SolveStatus::kLimitExceeded));
  EXPECT_FALSE(is_limit_status(SolveStatus::kOk));
  EXPECT_FALSE(is_limit_status(SolveStatus::kInfeasible));
}

// ---------------------------------------------------------------- limits --

TEST(RunLimits, UnlimitedByDefault) {
  const RunLimits limits = RunLimits::none();
  EXPECT_TRUE(limits.unlimited());
  EXPECT_EQ(limits.check(), SolveStatus::kOk);
  LimitPoller poller(limits);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(poller.poll(), SolveStatus::kOk);
}

TEST(RunLimits, ExpiredDeadlineStopsFirstPoll) {
  const RunLimits limits = RunLimits::deadline_after(std::chrono::nanoseconds{0});
  EXPECT_EQ(limits.check(), SolveStatus::kDeadlineExceeded);
  // Contract: the first poll always reads the clock, regardless of stride.
  LimitPoller poller(limits, 4096);
  EXPECT_EQ(poller.poll(), SolveStatus::kDeadlineExceeded);
  EXPECT_TRUE(poller.stopped());
}

TEST(RunLimits, CancellationWinsAndSticks) {
  CancelToken token;
  RunLimits limits = RunLimits::deadline_after(std::chrono::nanoseconds{0});
  limits.cancel = &token;
  token.cancel();
  EXPECT_EQ(limits.check(), SolveStatus::kCancelled);
  LimitPoller poller(limits);
  EXPECT_EQ(poller.poll(), SolveStatus::kCancelled);
  token.reset();
  // Sticky: the poller keeps its stop reason even after the token resets.
  EXPECT_EQ(poller.poll(), SolveStatus::kCancelled);
}

// -------------------------------------------------------------- registry --

TEST(AlgorithmRegistry, BuiltinNamesAndLookup) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::builtin();
  EXPECT_GE(registry.size(), 14u);
  for (const char* name :
       {"combined", "long", "long-speed", "short", "greedy-lazy", "per-job",
        "saturate", "bender-lazy", "exact-ise", "mm-greedy", "mm-exact",
        "mm-unit", "mm-lp-rounding", "gap-min"}) {
    const Algorithm* algorithm = registry.find(name);
    ASSERT_NE(algorithm, nullptr) << name;
    EXPECT_EQ(algorithm->name(), name);
  }
  EXPECT_EQ(registry.find("no-such-algorithm"), nullptr);
}

TEST(AlgorithmRegistry, DuplicateNameThrows) {
  AlgorithmRegistry registry;
  const auto& builtin = AlgorithmRegistry::builtin().all();
  registry.add(builtin.front());
  EXPECT_THROW(registry.add(builtin.front()), std::invalid_argument);
}

TEST(AlgorithmRegistry, CombinedSolvesAndVerifies) {
  const Algorithm* combined = AlgorithmRegistry::builtin().find("combined");
  ASSERT_NE(combined, nullptr);
  const Instance instance = generate_mixed(small_params(7), 0.5);
  const RunResult result = combined->run(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_EQ(result.status, SolveStatus::kOk);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.calibrations, 0u);
  EXPECT_GT(result.machines, 0);
}

TEST(AlgorithmRegistry, CapabilityMismatchIsInfeasibleNotAssert) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::builtin();
  const Instance mixed = generate_mixed(small_params(11), 0.5);
  for (const char* name : {"long", "long-speed", "short", "bender-lazy"}) {
    const Algorithm* algorithm = registry.find(name);
    ASSERT_NE(algorithm, nullptr) << name;
    const RunResult result = algorithm->run(mixed);
    EXPECT_FALSE(result.feasible) << name;
    EXPECT_EQ(result.status, SolveStatus::kInfeasible) << name;
    EXPECT_FALSE(result.error.empty()) << name;
  }
}

// Contract (3) of the deadline taxonomy: deadline 0 returns
// kDeadlineExceeded from every registered algorithm without hanging, and
// well within the 100 ms bound (the entry check runs before any work).
TEST(AlgorithmRegistry, DeadlineZeroStopsEveryAlgorithm) {
  const Instance instance = generate_mixed(small_params(3, 12), 0.5);
  for (const auto& algorithm : AlgorithmRegistry::builtin().all()) {
    const RunLimits limits =
        RunLimits::deadline_after(std::chrono::nanoseconds{0});
    const auto started = std::chrono::steady_clock::now();
    const RunResult result = algorithm->run(instance, limits, nullptr);
    const auto elapsed = std::chrono::steady_clock::now() - started;
    EXPECT_EQ(result.status, SolveStatus::kDeadlineExceeded)
        << algorithm->name();
    EXPECT_FALSE(result.feasible) << algorithm->name();
    EXPECT_FALSE(result.error.empty()) << algorithm->name();
    EXPECT_LT(elapsed, std::chrono::milliseconds(100)) << algorithm->name();
  }
}

TEST(AlgorithmRegistry, PreCancelledTokenStopsEveryAlgorithm) {
  const Instance instance = generate_mixed(small_params(4, 12), 0.5);
  CancelToken token;
  token.cancel();
  for (const auto& algorithm : AlgorithmRegistry::builtin().all()) {
    RunLimits limits;
    limits.cancel = &token;
    const RunResult result = algorithm->run(instance, limits, nullptr);
    EXPECT_EQ(result.status, SolveStatus::kCancelled) << algorithm->name();
    EXPECT_FALSE(result.feasible) << algorithm->name();
  }
}

// ----------------------------------------------------------------- batch --

TEST(Batch, DerivedSeedsAreStableAndDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t seed = derive_instance_seed(42, i);
    EXPECT_EQ(seed, derive_instance_seed(42, i));
    EXPECT_TRUE(seen.insert(seed).second) << "collision at index " << i;
  }
  EXPECT_NE(derive_instance_seed(42, 0), derive_instance_seed(43, 0));
}

TEST(Batch, GenerateBatchHonorsSpec) {
  BatchSpec spec;
  spec.family = "mixed";
  spec.count = 5;
  spec.params = small_params(9);
  std::vector<std::uint64_t> seeds;
  const std::vector<Instance> instances = generate_batch(spec, &seeds);
  EXPECT_EQ(instances.size(), 5u);
  ASSERT_EQ(seeds.size(), 5u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], derive_instance_seed(9, i));
  }
  spec.family = "martian";
  EXPECT_THROW(generate_batch(spec), std::invalid_argument);
}

std::string batch_jsonl(const Algorithm& algorithm,
                        const std::vector<Instance>& instances,
                        const std::vector<std::uint64_t>& seeds,
                        std::size_t threads) {
  BatchOptions options;
  options.threads = threads;
  options.seeds = seeds;
  const std::vector<BatchRecord> records =
      BatchRunner(algorithm).run(instances, options);
  std::ostringstream out;
  write_batch_jsonl(out, records, /*include_timing=*/false);
  return out.str();
}

// The tentpole determinism contract: timing-free batch output is
// byte-identical regardless of the worker-thread count.
TEST(Batch, OutputBitIdenticalAcrossThreadCounts) {
  BatchSpec spec;
  spec.family = "mixed";
  spec.count = 24;
  spec.params = small_params(17);
  std::vector<std::uint64_t> seeds;
  const std::vector<Instance> instances = generate_batch(spec, &seeds);
  const Algorithm* combined = AlgorithmRegistry::builtin().find("combined");
  ASSERT_NE(combined, nullptr);

  const std::string one = batch_jsonl(*combined, instances, seeds, 1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, batch_jsonl(*combined, instances, seeds, 4));
  EXPECT_EQ(one, batch_jsonl(*combined, instances, seeds, 8));
}

// Workspace-reuse determinism for the LP-heavy path: the "long" pipeline
// routes every instance through the revised simplex, and each batch worker
// reuses its thread's workspace arena between instances. Warm arenas must
// not change results — the output is byte-identical across worker counts
// AND across consecutive batches in one process (by the second run every
// per-thread arena is already grown to the family's working size, so those
// solves are pure reuse).
TEST(Batch, LpHeavyOutputBitIdenticalAcrossThreadsAndWarmArenas) {
  BatchSpec spec;
  spec.family = "long";
  spec.count = 16;
  spec.params = small_params(23);
  std::vector<std::uint64_t> seeds;
  const std::vector<Instance> instances = generate_batch(spec, &seeds);
  const Algorithm* long_pipeline = AlgorithmRegistry::builtin().find("long");
  ASSERT_NE(long_pipeline, nullptr);

  const std::string cold = batch_jsonl(*long_pipeline, instances, seeds, 1);
  EXPECT_FALSE(cold.empty());
  EXPECT_EQ(cold, batch_jsonl(*long_pipeline, instances, seeds, 4));
  EXPECT_EQ(cold, batch_jsonl(*long_pipeline, instances, seeds, 8));
  EXPECT_EQ(cold, batch_jsonl(*long_pipeline, instances, seeds, 1));
  EXPECT_EQ(cold, batch_jsonl(*long_pipeline, instances, seeds, 8));
}

TEST(Batch, TimingFieldsOnlyInTimingOutput) {
  BatchRecord record;
  record.algorithm = "combined";
  record.elapsed_ns = 123456;
  const std::string with = batch_record_json(record, true).dump(0);
  const std::string without = batch_record_json(record, false).dump(0);
  EXPECT_NE(with.find("elapsed_ns"), std::string::npos);
  EXPECT_EQ(without.find("elapsed_ns"), std::string::npos);
}

TEST(Batch, PerInstanceDeadlineReportsStatus) {
  BatchSpec spec;
  spec.count = 6;
  spec.params = small_params(23);
  const std::vector<Instance> instances = generate_batch(spec);
  const Algorithm* combined = AlgorithmRegistry::builtin().find("combined");
  ASSERT_NE(combined, nullptr);
  BatchOptions options;
  options.threads = 2;
  options.per_instance_deadline = std::chrono::nanoseconds{1};
  const std::vector<BatchRecord> records =
      BatchRunner(*combined).run(instances, options);
  ASSERT_EQ(records.size(), instances.size());
  for (const BatchRecord& record : records) {
    EXPECT_EQ(record.status, SolveStatus::kDeadlineExceeded);
    EXPECT_FALSE(record.feasible);
  }
}

TEST(Batch, CancelledTokenDrainsBatchAndPoolStaysUsable) {
  BatchSpec spec;
  spec.count = 12;
  spec.params = small_params(29);
  const std::vector<Instance> instances = generate_batch(spec);
  const Algorithm* combined = AlgorithmRegistry::builtin().find("combined");
  ASSERT_NE(combined, nullptr);

  CancelToken token;
  token.cancel();
  BatchOptions options;
  options.threads = 4;
  options.cancel = &token;
  const std::vector<BatchRecord> records =
      BatchRunner(*combined).run(instances, options);
  ASSERT_EQ(records.size(), instances.size());
  for (const BatchRecord& record : records) {
    EXPECT_EQ(record.status, SolveStatus::kCancelled) << record.index;
  }

  // The run returned, so the pool drained; a fresh run with the token
  // reset must solve normally (no poisoned state anywhere).
  token.reset();
  const std::vector<BatchRecord> rerun =
      BatchRunner(*combined).run(instances, options);
  for (const BatchRecord& record : rerun) {
    EXPECT_EQ(record.status, SolveStatus::kOk) << record.index;
    EXPECT_TRUE(record.feasible) << record.index;
  }
}

// A task flips the token mid-batch; every sibling task observes it through
// its LimitPoller, the pool drains, and wait_idle returns.
TEST(ThreadPool, DrainsCleanlyWhenTaskCancels) {
  ThreadPool pool(4);
  CancelToken token;
  std::atomic<int> stopped{0};
  constexpr int kTasks = 8;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&token, &stopped, i] {
      if (i == 3) {
        token.cancel();
        ++stopped;
        return;
      }
      RunLimits limits;
      limits.cancel = &token;
      LimitPoller poller(limits);
      while (poller.poll() == SolveStatus::kOk) {
        std::this_thread::yield();
      }
      ++stopped;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(stopped.load(), kTasks);
  EXPECT_TRUE(token.cancelled());
  // Pool is still usable after the cancellation storm.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; }).wait();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace calisched

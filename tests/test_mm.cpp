// Tests for the machine-minimization black boxes and their lower bounds.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "gen/generators.hpp"
#include "lp/revised_simplex.hpp"
#include "runtime/limits.hpp"
#include "mm/lower_bounds.hpp"
#include "mm/lp_bound.hpp"
#include "mm/lp_rounding_mm.hpp"
#include "mm/mm.hpp"

namespace calisched {
namespace {

Instance tight_pair() {
  // Two zero-slack jobs over the same window: needs 2 machines.
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  instance.jobs = {{0, 0, 5, 5}, {1, 0, 5, 5}};
  return instance;
}

TEST(MmLowerBounds, IntervalLoad) {
  const Instance instance = tight_pair();
  EXPECT_EQ(mm_interval_load_bound(instance), 2);
  EXPECT_EQ(mm_tight_overlap_bound(instance), 2);
  EXPECT_EQ(mm_lower_bound(instance), 2);
}

TEST(MmLowerBounds, EmptyInstance) {
  Instance instance;
  instance.machines = 1;
  instance.T = 5;
  EXPECT_EQ(mm_lower_bound(instance), 0);
}

TEST(MmLowerBounds, SequentialJobsNeedOneMachine) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 4, 4}, {1, 4, 8, 4}, {2, 8, 12, 4}};
  EXPECT_EQ(mm_lower_bound(instance), 1);
  const MMResult result = GreedyEdfMM().minimize(instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.schedule.machines, 1);
}

TEST(GreedyEdfMM, ProducesVerifierCleanSchedules) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 14;
    params.T = 10;
    params.horizon = 60;
    params.max_proc = 8;
    const Instance instance = generate_mixed(params, 0.4);
    const MMResult result = GreedyEdfMM().minimize(instance);
    ASSERT_TRUE(result.feasible) << "seed " << seed;
    const VerifyResult check = verify_mm(instance, result.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
    EXPECT_GE(result.schedule.machines, mm_lower_bound(instance));
  }
}

TEST(GreedyEdfMM, EmptyInstance) {
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  const MMResult result = GreedyEdfMM().minimize(instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.schedule.machines, 0);
}

TEST(ExactMM, MatchesKnownOptimum) {
  const Instance instance = tight_pair();
  const MMResult result = ExactMM().minimize(instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.schedule.machines, 2);
  EXPECT_TRUE(verify_mm(instance, result.schedule).ok());
}

TEST(ExactMM, BeatsGreedyWhenGreedyOverprovisions) {
  // EDF dispatching can be fooled: a long lax job blocks an urgent one.
  // Exact search must never use more machines than greedy.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 8;
    params.T = 8;
    params.horizon = 30;
    params.max_proc = 6;
    const Instance instance = generate_short_window(params);
    const MMResult greedy = GreedyEdfMM().minimize(instance);
    const MMResult exact = ExactMM().minimize(instance);
    ASSERT_TRUE(greedy.feasible);
    ASSERT_TRUE(exact.feasible);
    EXPECT_LE(exact.schedule.machines, greedy.schedule.machines)
        << "seed " << seed;
    EXPECT_GE(exact.schedule.machines, mm_lower_bound(instance));
    EXPECT_TRUE(verify_mm(instance, exact.schedule).ok());
  }
}

TEST(ExactMM, FeasibilityProbeRespectsMachineCount) {
  const Instance instance = tight_pair();
  for (const ExactEngine engine :
       {ExactEngine::kStateSpace, ExactEngine::kBranchBound}) {
    const MMFeasibility one = exact_mm_feasibility(instance, 1, engine, 100000);
    EXPECT_EQ(one.status, SolveStatus::kOk);
    EXPECT_FALSE(one.feasible);
    const MMFeasibility two = exact_mm_feasibility(instance, 2, engine, 100000);
    ASSERT_EQ(two.status, SolveStatus::kOk);
    ASSERT_TRUE(two.feasible);
    EXPECT_TRUE(verify_mm(instance, two.schedule).ok());
  }
}

TEST(ExactMM, NodeCounterAdvances) {
  const Instance instance = tight_pair();
  const MMFeasibility result = exact_mm_feasibility(
      instance, 2, ExactEngine::kBranchBound, 100000);
  EXPECT_GT(result.nodes, 0);
}

TEST(UnitEdfMM, ExactOnUnitJobs) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 16;
    params.T = 6;
    params.horizon = 24;
    const Instance instance = generate_unit(params, 5);
    const MMResult unit = UnitEdfMM().minimize(instance);
    const MMResult exact = ExactMM().minimize(instance);
    ASSERT_TRUE(unit.feasible);
    ASSERT_TRUE(exact.feasible);
    EXPECT_EQ(unit.schedule.machines, exact.schedule.machines)
        << "seed " << seed;
    EXPECT_TRUE(verify_mm(instance, unit.schedule).ok());
  }
}

TEST(UnitEdfMM, SaturatedSlotNeedsManyMachines) {
  // k unit jobs all with window [0, 1): needs k machines.
  Instance instance;
  instance.machines = 4;
  instance.T = 5;
  for (JobId j = 0; j < 4; ++j) instance.jobs.push_back({j, 0, 1, 1});
  const MMResult result = UnitEdfMM().minimize(instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.schedule.machines, 4);
}

TEST(MmLpBound, TightPairNeedsTwoFractionalMachines) {
  const Instance instance = tight_pair();
  const auto bound = mm_lp_bound(instance);
  ASSERT_TRUE(bound.has_value());
  EXPECT_NEAR(*bound, 2.0, 1e-6);
  EXPECT_EQ(mm_certified_bound(instance), 2);
}

TEST(MmLpBound, EmptyInstanceIsZero) {
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  const auto bound = mm_lp_bound(instance);
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(*bound, 0.0);
}

TEST(MmLpBound, NeverExceedsExactOptimum) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 8;
    params.T = 8;
    params.horizon = 30;
    params.max_proc = 6;
    const Instance instance = generate_short_window(params);
    const auto lp = mm_lp_bound(instance);
    ASSERT_TRUE(lp.has_value()) << "seed " << seed;
    const MMResult exact = ExactMM().minimize(instance);
    ASSERT_TRUE(exact.feasible);
    EXPECT_LE(std::ceil(*lp - 1e-6), exact.schedule.machines) << "seed " << seed;
    EXPECT_GE(mm_certified_bound(instance), mm_lower_bound(instance));
    EXPECT_LE(mm_certified_bound(instance), exact.schedule.machines)
        << "seed " << seed;
  }
}

TEST(MmLpBound, BeatsCombinatorialSometimes) {
  // Fractional load across overlapping-but-unequal windows can exceed the
  // nested-window bound: three p=2 jobs sharing only a partial overlap.
  Instance instance;
  instance.machines = 3;
  instance.T = 10;
  instance.jobs = {{0, 0, 3, 2}, {1, 1, 4, 2}, {2, 0, 4, 3}};
  const int combinatorial = mm_lower_bound(instance);
  const int certified = mm_certified_bound(instance);
  EXPECT_GE(certified, combinatorial);
  const MMResult exact = ExactMM().minimize(instance);
  ASSERT_TRUE(exact.feasible);
  EXPECT_LE(certified, exact.schedule.machines);
}

TEST(LpRoundingMM, FeasibleAndVerifiedAcrossSeeds) {
  const LpRoundingMM box;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 10;
    params.T = 8;
    params.horizon = 40;
    params.max_proc = 6;
    const Instance instance = generate_short_window(params);
    const MMResult result = box.minimize(instance);
    ASSERT_TRUE(result.feasible) << "seed " << seed;
    const VerifyResult check = verify_mm(instance, result.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
    EXPECT_GE(result.schedule.machines, mm_lower_bound(instance));
    const MMResult exact = ExactMM().minimize(instance);
    ASSERT_TRUE(exact.feasible);
    EXPECT_GE(result.schedule.machines, exact.schedule.machines)
        << "seed " << seed;
  }
}

TEST(LpRoundingMM, TightPairNeedsTwo) {
  const Instance instance = tight_pair();
  const MMResult result = LpRoundingMM().minimize(instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.schedule.machines, 2);
}

TEST(LpRoundingMM, FallsBackOnHugeHorizons) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 1'000'000, 5}};
  const MMResult result = LpRoundingMM().minimize(instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_NE(result.algorithm.find("fallback"), std::string::npos);
  EXPECT_TRUE(verify_mm(instance, result.schedule).ok());
}

TEST(LpRoundingMM, DeterministicPerSeed) {
  GenParams params;
  params.seed = 4;
  params.n = 10;
  params.T = 8;
  params.horizon = 40;
  params.max_proc = 6;
  const Instance instance = generate_short_window(params);
  LpRoundingMM::Options options;
  options.seed = 99;
  const MMResult a = LpRoundingMM(options).minimize(instance);
  const MMResult b = LpRoundingMM(options).minimize(instance);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_EQ(a.schedule.machines, b.schedule.machines);
  ASSERT_EQ(a.schedule.jobs.size(), b.schedule.jobs.size());
  for (std::size_t i = 0; i < a.schedule.jobs.size(); ++i) {
    EXPECT_EQ(a.schedule.jobs[i], b.schedule.jobs[i]);
  }
}

TEST(StartTimeLpBound, DominatesPreemptiveBound) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 8;
    params.T = 8;
    params.horizon = 32;
    params.max_proc = 6;
    const Instance instance = generate_short_window(params);
    const auto start_lp = mm_start_time_lp_bound(instance);
    const auto preemptive_lp = mm_lp_bound(instance);
    ASSERT_TRUE(start_lp.has_value() && preemptive_lp.has_value())
        << "seed " << seed;
    EXPECT_GE(*start_lp, *preemptive_lp - 1e-6) << "seed " << seed;
    const MMResult exact = ExactMM().minimize(instance);
    ASSERT_TRUE(exact.feasible);
    EXPECT_LE(std::ceil(*start_lp - 1e-6), exact.schedule.machines)
        << "seed " << seed;
  }
}

TEST(StartTimeLpBound, HonorsCallerSimplexOptionsAndLimits) {
  GenParams params;
  params.seed = 3;
  params.n = 8;
  params.T = 8;
  params.horizon = 32;
  params.max_proc = 6;
  const Instance instance = generate_short_window(params);

  // An already-expired deadline inside the caller's SimplexOptions must
  // abort before the LP build, not be silently dropped.
  SimplexOptions expired;
  expired.limits = RunLimits::deadline_after(std::chrono::nanoseconds{0});
  EXPECT_FALSE(mm_start_time_lp_bound(instance, 2000, expired).has_value());

  // The engine choice is threaded through too: both engines must certify
  // the same fractional bound.
  SimplexOptions dense;
  dense.engine = LpEngine::kDenseTableau;
  SimplexOptions revised;
  revised.engine = LpEngine::kRevised;
  const auto via_dense = mm_start_time_lp_bound(instance, 2000, dense);
  const auto via_revised = mm_start_time_lp_bound(instance, 2000, revised);
  ASSERT_TRUE(via_dense.has_value() && via_revised.has_value());
  EXPECT_NEAR(*via_dense, *via_revised, 1e-6);

  // Repeated bound queries can chain a warm start + workspace through the
  // options; the certified value must not move.
  WarmStart warm;
  SimplexWorkspace workspace;
  revised.warm_start = &warm;
  revised.workspace = &workspace;
  const auto first = mm_start_time_lp_bound(instance, 2000, revised);
  const auto second = mm_start_time_lp_bound(instance, 2000, revised);
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_TRUE(warm.valid);
  EXPECT_NEAR(*first, *via_dense, 1e-6);
  EXPECT_NEAR(*second, *via_dense, 1e-6);
}

TEST(SpeedupMM, HalvesMachinesOnTightPair) {
  // Two zero-slack p=5 jobs over [0, 5): 2 machines at speed 1, but at
  // speed 2 each takes 2.5 time units and one machine runs them back to
  // back.
  const Instance instance = tight_pair();
  const auto inner = std::make_shared<ExactMM>();
  const SpeedupMM fast(inner, 2);
  const MMResult result = fast.minimize(instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.schedule.speed, 2);
  EXPECT_EQ(result.schedule.machines, 1);
  const VerifyResult check = verify_mm(instance, result.schedule);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

TEST(SpeedupMM, SpeedOneIsIdentity) {
  const Instance instance = tight_pair();
  const SpeedupMM same(std::make_shared<GreedyEdfMM>(), 1);
  const MMResult result = same.minimize(instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.schedule.speed, 1);
  EXPECT_EQ(result.schedule.machines, 2);
}

TEST(SpeedupMM, NeverUsesMoreMachinesThanBase) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 10;
    params.T = 8;
    params.horizon = 40;
    params.max_proc = 6;
    const Instance instance = generate_short_window(params);
    const auto inner = std::make_shared<GreedyEdfMM>();
    const MMResult base = inner->minimize(instance);
    const MMResult fast = SpeedupMM(inner, 3).minimize(instance);
    ASSERT_TRUE(base.feasible && fast.feasible) << "seed " << seed;
    EXPECT_LE(fast.schedule.machines, base.schedule.machines) << "seed " << seed;
    EXPECT_TRUE(verify_mm(instance, fast.schedule).ok()) << "seed " << seed;
  }
}

TEST(SpeedupMM, NameReflectsComposition) {
  const SpeedupMM fast(std::make_shared<GreedyEdfMM>(), 2);
  EXPECT_EQ(fast.name(), "speed2x(greedy-edf)");
}

TEST(ExactMM, BudgetFallbackReportsItself) {
  GenParams params;
  params.seed = 9;
  params.n = 10;
  params.T = 8;
  params.horizon = 30;
  params.max_proc = 6;
  const Instance instance = generate_short_window(params);
  const ExactMM strangled(/*node_budget=*/3);
  const MMResult result = strangled.minimize(instance);
  ASSERT_TRUE(result.feasible);  // greedy fallback still succeeds
  EXPECT_NE(result.algorithm.find("budget-exceeded"), std::string::npos)
      << result.algorithm;
  EXPECT_TRUE(verify_mm(instance, result.schedule).ok());
}

TEST(MmBoxes, PartitionAdversarialTwoMachines) {
  // Perfect 2-partition exists by construction: exact MM must find m = 2.
  const Instance instance = generate_partition_adversarial(77, 4, 6);
  const MMResult exact = ExactMM().minimize(instance);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(exact.schedule.machines, 2);
  EXPECT_TRUE(verify_mm(instance, exact.schedule).ok());
}

}  // namespace
}  // namespace calisched

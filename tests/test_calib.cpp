// Tests for the generalized calibration-cost model (src/calib/ and the
// registry plumbing around it):
//   * the unit model is exactly the degenerate one-type table — every
//     registered algorithm produces a byte-identical outcome whether the
//     table is implicit (empty) or the explicit {T, 1, 0};
//   * algorithms predating the cost model refuse type-table instances with
//     a capability-mismatch infeasible, never a wrong schedule;
//   * the subset DP agrees with the independent branch-and-bound oracle on
//     feasibility and optimal cost across a multi-type differential sweep;
//   * the greedy heuristic is verifier-clean and never beats the optimum;
//   * the type-aware verifier rejects activation-delay, occupancy, and
//     type-id violations it alone can see.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "calib/cost_dp.hpp"
#include "calib/exact_cost.hpp"
#include "calib/greedy_cost.hpp"
#include "gen/generators.hpp"
#include "runtime/registry.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

// The checked-in data/sample_caltypes.txt instance, inline: one machine,
// a {6, 2, 0} base type and a {12, 5, 1} double-length delayed type.
Instance sample_caltypes() {
  Instance instance;
  instance.machines = 1;
  instance.T = 6;
  instance.cal.types = {{6, 2, 0}, {12, 5, 1}};
  instance.jobs = {
      {0, 0, 10, 4}, {1, 2, 14, 3}, {2, 8, 20, 5}, {3, 15, 24, 2},
      {4, 16, 30, 6},
  };
  return instance;
}

Instance typed_small(CalibTableRegime regime, std::uint64_t seed,
                     int machines = 1) {
  GenParams params;
  params.seed = seed;
  params.n = 4;
  params.T = 5;
  params.machines = machines;
  params.horizon = 20;
  params.max_proc = 4;
  return generate_calib_cost(params, regime);
}

// ------------------------------------------------- unit-model equivalence --

// An implicit unit table and the explicit CalibrationModel::unit(T) are the
// same instance; every algorithm must not be able to tell them apart. This
// is the refactor's central no-regression guarantee: total schedule
// equality (not just equal objective) pins the classic code paths down to
// tie-breaking.
TEST(UnitModelEquivalence, EveryAlgorithmIsByteIdentical) {
  GenParams params;
  params.seed = 1234;
  params.n = 8;
  params.T = 6;
  params.machines = 2;
  params.horizon = 60;
  params.max_proc = 5;
  std::vector<Instance> shapes;
  shapes.push_back(generate_mixed(params, 0.5));
  shapes.push_back(generate_unit(params, /*max_window=*/2 * params.T - 1));
  params.machines = 1;
  params.n = 4;
  shapes.push_back(generate_short_window(params));

  for (const Instance& implicit : shapes) {
    ASSERT_TRUE(implicit.cal.empty());
    Instance explicit_unit = implicit;
    explicit_unit.cal = CalibrationModel::unit(implicit.T);
    ASSERT_TRUE(explicit_unit.is_unit_model());

    for (const auto& algorithm : AlgorithmRegistry::builtin().all()) {
      const RunResult a = algorithm->run(implicit);
      const RunResult b = algorithm->run(explicit_unit);
      const std::string tag = algorithm->name();
      EXPECT_EQ(a.status, b.status) << tag;
      EXPECT_EQ(a.feasible, b.feasible) << tag;
      EXPECT_EQ(a.error, b.error) << tag;
      EXPECT_EQ(a.calibrations, b.calibrations) << tag;
      EXPECT_EQ(a.machines, b.machines) << tag;
      EXPECT_EQ(a.speed, b.speed) << tag;
      EXPECT_EQ(a.total_cost, b.total_cost) << tag;
      // The schedules themselves: identical placements, tick for tick.
      // (Schedule::cal mirrors the instance's table, so it legitimately
      // differs between the two runs — everything else must not.)
      EXPECT_EQ(a.schedule.machines, b.schedule.machines) << tag;
      EXPECT_EQ(a.schedule.T, b.schedule.T) << tag;
      EXPECT_EQ(a.schedule.time_denominator, b.schedule.time_denominator)
          << tag;
      EXPECT_EQ(a.schedule.speed, b.schedule.speed) << tag;
      EXPECT_EQ(a.schedule.calibrations, b.schedule.calibrations) << tag;
      EXPECT_EQ(a.schedule.jobs, b.schedule.jobs) << tag;
      // A feasible unit-model result's cost is its calibration count.
      if (a.feasible && algorithm->capabilities().produces_ise_schedule) {
        EXPECT_EQ(a.total_cost, static_cast<std::int64_t>(a.calibrations))
            << tag;
      }
    }
  }
}

// ------------------------------------------------------- capability gates --

TEST(CapabilityGate, ClassicAlgorithmsRefuseTypeTables) {
  const Instance typed = typed_small(CalibTableRegime::kCheapShort, 7);
  ASSERT_FALSE(typed.is_unit_model());
  for (const auto& algorithm : AlgorithmRegistry::builtin().all()) {
    if (algorithm->capabilities().supports_calibration_model) continue;
    const RunResult result = algorithm->run(typed);
    EXPECT_EQ(result.status, SolveStatus::kInfeasible) << algorithm->name();
    EXPECT_FALSE(result.feasible) << algorithm->name();
    EXPECT_NE(result.error.find("requires the unit calibration model"),
              std::string::npos)
        << algorithm->name() << ": " << result.error;
  }
}

TEST(CapabilityGate, CostDpRefusesMultipleMachines) {
  const Instance typed =
      typed_small(CalibTableRegime::kCheapShort, 7, /*machines=*/2);
  const Algorithm* dp = AlgorithmRegistry::builtin().find("dp-calib-cost");
  ASSERT_NE(dp, nullptr);
  const RunResult result = dp->run(typed);
  EXPECT_EQ(result.status, SolveStatus::kInfeasible);
  EXPECT_NE(result.error.find("requires a single machine"), std::string::npos)
      << result.error;
}

TEST(CapabilityGate, CostAlgorithmsAcceptUnitModelInstances) {
  // The cost solvers are strictly more general: they must handle classic
  // instances too, and there agree with the exact unit-model optimum
  // (every calibration costs 1, so cost minimization = count minimization).
  GenParams params;
  params.seed = 42;
  params.n = 4;
  params.T = 5;
  params.machines = 1;
  params.horizon = 25;
  params.max_proc = 4;
  const Instance unit = generate_mixed(params, 0.5);
  ASSERT_TRUE(unit.is_unit_model());
  const AlgorithmRegistry& registry = AlgorithmRegistry::builtin();
  const RunResult exact_unit = registry.find("exact-ise")->run(unit);
  const RunResult dp = registry.find("dp-calib-cost")->run(unit);
  ASSERT_TRUE(exact_unit.feasible) << exact_unit.error;
  ASSERT_TRUE(dp.feasible) << dp.error;
  EXPECT_EQ(dp.total_cost,
            static_cast<std::int64_t>(exact_unit.calibrations));
}

// ------------------------------------------------------------ exact + DP --

TEST(CostSolvers, SampleInstanceOptimum) {
  const Instance instance = sample_caltypes();
  const CostDpResult dp = solve_cost_dp(instance);
  const CalibCostResult oracle = solve_exact_calib_cost(instance);
  ASSERT_TRUE(dp.solved);
  ASSERT_TRUE(oracle.solved);
  ASSERT_TRUE(dp.feasible);
  ASSERT_TRUE(oracle.feasible);
  EXPECT_EQ(dp.total_cost, 9);
  EXPECT_EQ(oracle.total_cost, 9);
  for (const Schedule* schedule : {&dp.schedule, &oracle.schedule}) {
    const VerifyResult check = verify_ise(instance, *schedule);
    EXPECT_TRUE(check.ok()) << check.to_string();
    EXPECT_EQ(check.total_cost, 9);
  }
}

// The differential contract the bench also enforces, pinned as a ctest:
// two independently implemented exact solvers must agree on feasibility
// and on the optimal total cost for every small multi-type instance.
TEST(CostSolvers, DpMatchesOracleAcrossRegimes) {
  constexpr CalibTableRegime kRegimes[] = {CalibTableRegime::kCheapShort,
                                           CalibTableRegime::kExpensiveLong,
                                           CalibTableRegime::kDelayed};
  std::size_t compared = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Instance instance =
        typed_small(kRegimes[seed % 3], 0xD1F0 + seed * 977);
    const CostDpResult dp = solve_cost_dp(instance);
    const CalibCostResult oracle = solve_exact_calib_cost(instance);
    if (!dp.solved || !oracle.solved) continue;  // budget-limited; skip
    ++compared;
    EXPECT_EQ(dp.feasible, oracle.feasible) << "seed " << seed;
    if (dp.feasible && oracle.feasible) {
      EXPECT_EQ(dp.total_cost, oracle.total_cost) << "seed " << seed;
      const VerifyResult check = verify_ise(instance, dp.schedule);
      EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
      EXPECT_EQ(check.total_cost, dp.total_cost) << "seed " << seed;
    }
  }
  EXPECT_GE(compared, 8u);  // the sweep must mostly complete to mean much
}

TEST(CostSolvers, GreedyIsCleanAndNeverBeatsOptimum) {
  constexpr CalibTableRegime kRegimes[] = {CalibTableRegime::kCheapShort,
                                           CalibTableRegime::kExpensiveLong,
                                           CalibTableRegime::kDelayed};
  std::size_t solved = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Instance instance =
        typed_small(kRegimes[seed % 3], 0x6EE0 + seed * 131);
    const GreedyCostResult greedy = solve_greedy_cost(instance);
    if (!greedy.feasible) continue;  // honest failure is allowed
    ++solved;
    const VerifyResult check = verify_ise(instance, greedy.schedule);
    ASSERT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
    const CostDpResult dp = solve_cost_dp(instance);
    if (dp.solved && dp.feasible) {
      EXPECT_GE(check.total_cost, dp.total_cost) << "seed " << seed;
    }
  }
  EXPECT_GE(solved, 3u);
}

TEST(CostSolvers, DelayedTypeMayStartBeforeTimeZero) {
  // Only type: length 4 with a 3-tick activation delay, and a job whose
  // window [0, 6) is shorter than delay + proc. The schedule is still
  // feasible — nothing forbids calibrating *before* the first release, so
  // the warm-up can elapse at negative times and the usable window lands
  // on [r_j, r_j + 4). Both exact solvers must find it.
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  instance.cal.types = {{4, 1, 3}};
  instance.jobs = {{0, 0, 6, 4}};
  ASSERT_FALSE(instance.validate().has_value());
  const CostDpResult dp = solve_cost_dp(instance);
  const CalibCostResult oracle = solve_exact_calib_cost(instance);
  ASSERT_TRUE(dp.feasible);
  ASSERT_TRUE(oracle.feasible);
  for (const Schedule* schedule : {&dp.schedule, &oracle.schedule}) {
    ASSERT_EQ(schedule->calibrations.size(), 1u);
    EXPECT_LT(schedule->calibrations[0].start, 0);
    const VerifyResult check = verify_ise(instance, *schedule);
    EXPECT_TRUE(check.ok()) << check.to_string();
    EXPECT_EQ(check.total_cost, 1);
  }
}

TEST(CostSolvers, InfeasibleWhenOneMachineCannotCarryTheLoad) {
  // Two 3-tick jobs due by 4 on one machine: 6 units of work in a 4-unit
  // horizon. No type table helps; both solvers must prove infeasibility.
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  instance.cal.types = {{4, 1, 0}, {8, 2, 1}};
  instance.jobs = {{0, 0, 4, 3}, {1, 0, 4, 3}};
  ASSERT_FALSE(instance.validate().has_value());
  const CostDpResult dp = solve_cost_dp(instance);
  EXPECT_TRUE(dp.solved);
  EXPECT_FALSE(dp.feasible);
  const CalibCostResult oracle = solve_exact_calib_cost(instance);
  EXPECT_TRUE(oracle.solved);
  EXPECT_FALSE(oracle.feasible);
}

// ----------------------------------------------------- type-aware verify --

TEST(TypedVerify, AcceptsDelayAwarePlacementAndCountsCost) {
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  instance.cal.types = {{4, 2, 0}, {8, 3, 2}};
  instance.jobs = {{0, 0, 20, 6}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.calibrations = {{0, 0, 1}};  // occupied [0,10), usable [2,10)
  schedule.jobs = {{0, 0, 2}};
  const VerifyResult check = verify_ise(instance, schedule);
  EXPECT_TRUE(check.ok()) << check.to_string();
  EXPECT_EQ(check.calibrations, 1u);
  EXPECT_EQ(check.total_cost, 3);
}

TEST(TypedVerify, RejectsJobInsideActivationDelay) {
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  instance.cal.types = {{8, 3, 2}};
  instance.jobs = {{0, 0, 20, 6}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.calibrations = {{0, 0, 0}};
  schedule.jobs = {{0, 0, 1}};  // [1, 7) starts during the [0, 2) warm-up
  const VerifyResult check = verify_ise(instance, schedule);
  ASSERT_FALSE(check.ok());
  EXPECT_EQ(check.violations[0].kind, Violation::Kind::kCalibrationCover);
}

TEST(TypedVerify, RejectsOccupancyOverlapEvenWhenWindowsAreDisjoint) {
  // Second calibration starts inside the first one's activation span:
  // availability windows [2,10) and [12,20) are disjoint, but occupancy
  // [0,10) and [9,20) overlap — the strict policy forbids it.
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  instance.cal.types = {{8, 3, 2}};
  instance.jobs = {{0, 0, 24, 6}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.calibrations = {{0, 0, 0}, {0, 9, 0}};
  schedule.jobs = {{0, 0, 2}};
  const VerifyResult check = verify_ise(instance, schedule);
  ASSERT_FALSE(check.ok());
  EXPECT_EQ(check.violations[0].kind, Violation::Kind::kCalibrationOverlap);
}

TEST(TypedVerify, RejectsUnknownTypeIdAndModelMismatch) {
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  instance.cal.types = {{4, 2, 0}};
  instance.jobs = {{0, 0, 10, 3}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.calibrations = {{0, 0, 1}};  // type 1 of a one-type table
  schedule.jobs = {{0, 0, 0}};
  const VerifyResult bad_type = verify_ise(instance, schedule);
  ASSERT_FALSE(bad_type.ok());
  EXPECT_EQ(bad_type.violations[0].kind, Violation::Kind::kStructural);

  // A schedule carrying a different table than the instance's is rejected
  // up front — costs under the wrong table would be meaningless.
  schedule.calibrations = {{0, 0, 0}};
  schedule.cal.types = {{4, 7, 0}};
  const VerifyResult mismatch = verify_ise(instance, schedule);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.to_string().find("does not match"), std::string::npos);
}

}  // namespace
}  // namespace calisched

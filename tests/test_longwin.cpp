// Tests for the Section-3 long-window machinery: the TISE LP, Algorithm 1
// rounding, Algorithm 3 witness invariants (Lemma 5 / Corollary 6),
// Algorithm 2 EDF assignment, the Lemma 2 transformation, the Lemma 13
// speed transform, and the full Theorem 12 / Theorem 14 pipelines.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>

#include "gen/generators.hpp"
#include "util/rng.hpp"
#include "gen/paper_figures.hpp"
#include "longwin/edf_assign.hpp"
#include "longwin/fractional_edf.hpp"
#include "longwin/fractional_witness.hpp"
#include "longwin/grid_normalize.hpp"
#include "longwin/long_pipeline.hpp"
#include "longwin/rounding.hpp"
#include "longwin/speed_transform.hpp"
#include "longwin/trim_transform.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

GenParams long_params(std::uint64_t seed, int n = 10) {
  GenParams params;
  params.seed = seed;
  params.n = n;
  params.T = 10;
  params.machines = 2;
  params.horizon = 120;
  params.max_proc = 10;
  return params;
}

TEST(TiseLp, OptimalOnGeneratedInstances) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate_long_window(long_params(seed));
    const TiseFractional fractional = solve_tise_lp(instance, 3 * instance.machines);
    ASSERT_EQ(fractional.status, LpStatus::kOptimal) << "seed " << seed;
    // Objective is at least the work bound: sum C_t * T >= total work.
    EXPECT_GE(fractional.objective * static_cast<double>(instance.T),
              static_cast<double>(instance.total_work()) - 1e-6);
    // Each job's assignment sums to 1 (constraint 4).
    for (std::size_t j = 0; j < instance.size(); ++j) {
      double total = 0.0;
      for (const auto& [point, value] : fractional.assignment[j]) total += value;
      EXPECT_NEAR(total, 1.0, 1e-6) << "seed " << seed << " job " << j;
    }
    // Sliding window capacity (constraint 1).
    for (std::size_t p = 0; p < fractional.points.size(); ++p) {
      double window_mass = 0.0;
      for (std::size_t q = p; q < fractional.points.size() &&
                              fractional.points[q] < fractional.points[p] + instance.T;
           ++q) {
        window_mass += fractional.calibration_mass[q];
      }
      EXPECT_LE(window_mass, 3 * instance.machines + 1e-6);
    }
  }
}

TEST(TiseLp, EmptyInstanceIsTriviallyOptimal) {
  Instance instance;
  instance.machines = 1;
  instance.T = 5;
  const TiseFractional fractional = solve_tise_lp(instance, 3);
  EXPECT_EQ(fractional.status, LpStatus::kOptimal);
  EXPECT_EQ(fractional.objective, 0.0);
}

TEST(TiseLp, SingleJobCostsOneCalibration) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 30, 7}};
  const TiseFractional fractional = solve_tise_lp(instance, 3);
  ASSERT_EQ(fractional.status, LpStatus::kOptimal);
  // X <= C and sum X = 1 force at least one unit of calibration mass.
  EXPECT_NEAR(fractional.objective, 1.0, 1e-6);
}

TEST(TiseLp, InfeasibleWhenWorkExceedsCapacity) {
  // 4 jobs of work 10 into window [0, 20) on 1 machine: at most 2
  // calibrations overlap-free... but m' machines bound only concurrent
  // calibrations. Force infeasibility: all jobs share window [0, T+5) and
  // total work > m' * T within the only feasible calibration point range.
  Instance instance;
  instance.machines = 1;  // m' = 1 used directly below
  instance.T = 10;
  instance.jobs = {
      {0, 0, 20, 10}, {1, 0, 20, 10}, {2, 0, 20, 10},
  };
  // With m' = 1: calibration mass in any window of length T is <= 1, and
  // all feasible points lie in [0, 10]; mass there is <= 2 but work is 30
  // > 2 * T. (Points 0 and 10 are T apart, so both can carry mass 1.)
  const TiseFractional fractional = solve_tise_lp(instance, 1);
  EXPECT_EQ(fractional.status, LpStatus::kInfeasible);
}

TEST(Rounding, HalfUnitSemanticsOnFigure2) {
  const FractionalProfile profile = figure2_profile();
  const std::vector<Time> starts =
      round_calibrations(profile.points, profile.mass);
  // Running totals: .2, .55, .8, 1.6 -> one calibration at the 2nd point,
  // two at the 4th.
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], profile.points[1]);
  EXPECT_EQ(starts[1], profile.points[3]);
  EXPECT_EQ(starts[2], profile.points[3]);
}

TEST(Rounding, CountIsFloorTwiceTotalMass) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Time> points;
    std::vector<double> mass;
    Time t = 0;
    for (int i = 0; i < 30; ++i) {
      t += rng.uniform_int(1, 9);
      points.push_back(t);
      mass.push_back(rng.uniform01() * 0.9);
    }
    const double total = std::accumulate(mass.begin(), mass.end(), 0.0);
    const auto starts = round_calibrations(points, mass);
    EXPECT_EQ(starts.size(),
              static_cast<std::size_t>(std::floor(2.0 * total + 1e-6)));
    EXPECT_TRUE(std::is_sorted(starts.begin(), starts.end()));
  }
}

TEST(Rounding, RoundRobinCalendarHasNoOverlaps) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate_long_window(long_params(seed));
    const int m_prime = 3 * instance.machines;
    const TiseFractional fractional = solve_tise_lp(instance, m_prime);
    ASSERT_EQ(fractional.status, LpStatus::kOptimal);
    const auto starts =
        round_calibrations(fractional.points, fractional.calibration_mass);

    // Lemma 4: at most 3m' rounded calibrations start in any [t, t+T).
    for (std::size_t i = 0; i < starts.size(); ++i) {
      std::size_t in_window = 0;
      for (std::size_t j = i; j < starts.size() && starts[j] < starts[i] + instance.T;
           ++j) {
        ++in_window;
      }
      EXPECT_LE(in_window, static_cast<std::size_t>(3 * m_prime))
          << "seed " << seed;
    }

    const Schedule calendar = assign_round_robin(instance, starts, 3 * m_prime);
    // Only calibration-overlap matters here; jobs are not yet assigned.
    const VerifyResult check = verify_ise(instance, calendar);
    for (const Violation& violation : check.violations) {
      EXPECT_NE(violation.kind, Violation::Kind::kCalibrationOverlap)
          << "seed " << seed << ": " << violation.message;
    }
  }
}

TEST(FractionalWitness, Lemma5AndCorollary6Invariants) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate_long_window(long_params(seed, 12));
    const TiseFractional fractional =
        solve_tise_lp(instance, 3 * instance.machines);
    ASSERT_EQ(fractional.status, LpStatus::kOptimal);
    const FractionalWitness witness = run_fractional_witness(instance, fractional);
    // Lemma 5: at scheduling events, y_j <= carryover.
    EXPECT_LE(witness.telemetry.max_y_minus_carryover, 1e-6) << "seed " << seed;
    // Corollary 6: every job covered at least once...
    EXPECT_GE(witness.telemetry.min_job_coverage, 1.0 - 1e-6) << "seed " << seed;
    // ... and no calibration overfull.
    EXPECT_LE(witness.telemetry.max_calibration_work,
              static_cast<double>(instance.T) + 1e-6)
        << "seed " << seed;
    // The witness writes into exactly the Algorithm-1 calibrations.
    const auto starts =
        round_calibrations(fractional.points, fractional.calibration_mass);
    EXPECT_EQ(witness.calibrations.size(), starts.size()) << "seed " << seed;
  }
}

TEST(EdfAssign, AssignsEveryJobOnPipelineCalendars) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate_long_window(long_params(seed, 12));
    const int m_prime = 3 * instance.machines;
    const TiseFractional fractional = solve_tise_lp(instance, m_prime);
    ASSERT_EQ(fractional.status, LpStatus::kOptimal);
    const auto starts =
        round_calibrations(fractional.points, fractional.calibration_mass);
    const Schedule calendar = assign_round_robin(instance, starts, 3 * m_prime);
    const EdfAssignResult assigned = edf_assign_jobs(instance, calendar);
    EXPECT_TRUE(assigned.unassigned.empty())
        << "seed " << seed << ": " << assigned.unassigned.size()
        << " unassigned";
    const VerifyResult check = verify_tise(instance, assigned.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
  }
}

TEST(FractionalEdf, CompleteOnPipelineCalendars) {
  // Lemma 8: a fractional assignment exists on the rounded calendar
  // (Lemma 7), so fractional EDF must complete.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate_long_window(long_params(seed, 12));
    const int m_prime = 3 * instance.machines;
    const TiseFractional lp = solve_tise_lp(instance, m_prime);
    ASSERT_EQ(lp.status, LpStatus::kOptimal);
    const auto starts = round_calibrations(lp.points, lp.calibration_mass);
    const Schedule calendar = assign_round_robin(instance, starts, 3 * m_prime);
    const FractionalEdfResult fractional = fractional_edf(instance, calendar);
    EXPECT_TRUE(fractional.complete) << "seed " << seed;
    // Work conservation: pieces sum to 1 per job, <= T per calibration.
    std::map<JobId, double> totals;
    for (std::size_t c = 0; c < fractional.pieces.size(); ++c) {
      double work = 0.0;
      for (const FractionalPiece& piece : fractional.pieces[c]) {
        totals[piece.job] += piece.fraction;
        work += piece.fraction *
                static_cast<double>(instance.job_by_id(piece.job).proc);
      }
      EXPECT_LE(work, static_cast<double>(instance.T) + 1e-6);
    }
    for (const Job& job : instance.jobs) {
      EXPECT_NEAR(totals[job.id], 1.0, 1e-6) << "seed " << seed;
    }
  }
}

TEST(FractionalEdf, Lemma9IntegerizationIsFeasible) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate_long_window(long_params(seed, 12));
    const int m_prime = 3 * instance.machines;
    const TiseFractional lp = solve_tise_lp(instance, m_prime);
    ASSERT_EQ(lp.status, LpStatus::kOptimal);
    const auto starts = round_calibrations(lp.points, lp.calibration_mass);
    const Schedule calendar = assign_round_robin(instance, starts, 3 * m_prime);
    const FractionalEdfResult fractional = fractional_edf(instance, calendar);
    ASSERT_TRUE(fractional.complete);
    const IntegerizeResult integral =
        integerize_fractional_edf(instance, calendar, fractional);
    EXPECT_TRUE(integral.unassigned.empty()) << "seed " << seed;
    EXPECT_EQ(integral.schedule.machines, 2 * calendar.machines);
    const VerifyResult check = verify_tise(instance, integral.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
  }
}

TEST(FractionalEdf, Lemma10Algorithm2IsAtLeastAsGood) {
  // Lemma 10: after the k-th calibration (in scan order over the mirrored
  // calendar), every job the Lemma-9 route has completed, Algorithm 2 has
  // completed too. Observable form: sort both per-job completion
  // positions; Algorithm 2's i-th completion is never later.
  //
  // Pinned to the dense engine: the comparison is calendar-sensitive, and
  // the calendar comes from rounding whichever optimal vertex the LP
  // lands on (engines legitimately differ on degenerate optima).
  SimplexOptions lp_options;
  lp_options.engine = LpEngine::kDenseTableau;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate_long_window(long_params(seed, 12));
    const int m_prime = 3 * instance.machines;
    const TiseFractional lp = solve_tise_lp(instance, m_prime, lp_options);
    ASSERT_EQ(lp.status, LpStatus::kOptimal);
    const auto starts = round_calibrations(lp.points, lp.calibration_mass);
    const Schedule calendar = assign_round_robin(instance, starts, 3 * m_prime);

    const FractionalEdfResult fractional = fractional_edf(instance, calendar);
    const IntegerizeResult lemma9 =
        integerize_fractional_edf(instance, calendar, fractional);
    const EdfAssignResult algorithm2 = edf_assign_jobs(instance, calendar);
    ASSERT_TRUE(fractional.complete);
    ASSERT_TRUE(lemma9.unassigned.empty());
    ASSERT_TRUE(algorithm2.unassigned.empty()) << "seed " << seed;

    // Shared scan order over the mirrored calendar C'.
    std::vector<Calibration> scan = algorithm2.schedule.calibrations;
    std::sort(scan.begin(), scan.end(),
              [](const Calibration& a, const Calibration& b) {
                return a.start != b.start ? a.start < b.start
                                          : a.machine < b.machine;
              });
    const auto completion_positions = [&](const Schedule& schedule) {
      std::vector<std::size_t> positions;
      for (const ScheduledJob& sj : schedule.jobs) {
        const Job& job = instance.job_by_id(sj.job);
        for (std::size_t k = 0; k < scan.size(); ++k) {
          if (scan[k].machine == sj.machine && scan[k].start <= sj.start &&
              sj.start + job.proc <= scan[k].start + instance.T) {
            positions.push_back(k);
            break;
          }
        }
      }
      std::sort(positions.begin(), positions.end());
      return positions;
    };
    const auto a2 = completion_positions(algorithm2.schedule);
    const auto l9 = completion_positions(lemma9.schedule);
    ASSERT_EQ(a2.size(), instance.size());
    ASSERT_EQ(l9.size(), instance.size());
    for (std::size_t i = 0; i < a2.size(); ++i) {
      EXPECT_LE(a2[i], l9[i]) << "seed " << seed << " rank " << i;
    }
  }
}

TEST(FractionalEdf, EmptyCalendarLeavesJobsUnassigned) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 30, 5}};
  const Schedule calendar = Schedule::empty_like(instance, 1);
  const FractionalEdfResult fractional = fractional_edf(instance, calendar);
  EXPECT_FALSE(fractional.complete);
  const IntegerizeResult integral =
      integerize_fractional_edf(instance, calendar, fractional);
  ASSERT_EQ(integral.unassigned.size(), 1u);
  EXPECT_EQ(integral.unassigned[0], 0);
}

TEST(TrimTransform, Figure1ProducesValidTise) {
  const Instance instance = figure1_instance();
  const Schedule ise = figure1_ise_schedule();
  ASSERT_TRUE(verify_ise(instance, ise).ok());
  // The hand schedule intentionally violates TISE for jobs 1, 5, 7.
  EXPECT_FALSE(verify_tise(instance, ise).ok());

  const auto tise = trim_transform(instance, ise);
  ASSERT_TRUE(tise.has_value());
  EXPECT_EQ(tise->machines, 3);
  EXPECT_EQ(tise->num_calibrations(), 3 * ise.num_calibrations());
  const VerifyResult check = verify_tise(instance, *tise);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

TEST(TrimTransform, KeepsAlreadyTrimmedJobsInPlace) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 30, 5}};
  Schedule ise = Schedule::empty_like(instance, 1);
  ise.calibrations = {{0, 0}};
  ise.jobs = {{0, 0, 2}};
  const auto tise = trim_transform(instance, ise);
  ASSERT_TRUE(tise.has_value());
  // Job stays on machine i' = 0 at its original time.
  ASSERT_EQ(tise->jobs.size(), 1u);
  EXPECT_EQ(tise->jobs[0].machine, 0);
  EXPECT_EQ(tise->jobs[0].start, 2);
}

TEST(TrimTransform, RejectsUncoveredJob) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 30, 5}};
  Schedule bad = Schedule::empty_like(instance, 1);
  bad.jobs = {{0, 0, 2}};  // no calibration at all
  EXPECT_FALSE(trim_transform(instance, bad).has_value());
}

TEST(GridNormalize, Lemma3NormalizationLandsOnCanonicalGrid) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate_long_window(long_params(seed, 12));
    LongWindowOptions options;
    options.prune_empty_calibrations = true;  // normalizer precondition
    const LongWindowResult pipeline = solve_long_window(instance, options);
    ASSERT_TRUE(pipeline.feasible) << pipeline.error;

    const Schedule normalized = normalize_to_grid(instance, pipeline.schedule);
    // Feasibility and counts are preserved.
    const VerifyResult check = verify_tise(instance, normalized);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
    EXPECT_EQ(normalized.num_calibrations(),
              pipeline.schedule.num_calibrations());
    EXPECT_EQ(normalized.machines, pipeline.schedule.machines);
    // Every start lies on the Lemma-3 grid {r_j + kT}.
    const std::vector<Time> grid = canonical_calibration_points(instance);
    for (const Calibration& cal : normalized.calibrations) {
      EXPECT_TRUE(std::binary_search(grid.begin(), grid.end(), cal.start))
          << "seed " << seed << " start " << cal.start;
    }
    // Normalization only advances calibrations.
    Schedule before = pipeline.schedule;
    before.normalize();
    Time total_before = 0, total_after = 0;
    for (const Calibration& cal : before.calibrations) total_before += cal.start;
    for (const Calibration& cal : normalized.calibrations) {
      total_after += cal.start;
    }
    EXPECT_LE(total_after, total_before) << "seed " << seed;
  }
}

TEST(GridNormalize, AlreadyCanonicalIsFixpoint) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 5, 30, 4}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.calibrations = {{0, 5}};  // at the job's release: canonical
  schedule.jobs = {{0, 0, 7}};
  const Schedule normalized = normalize_to_grid(instance, schedule);
  ASSERT_EQ(normalized.calibrations.size(), 1u);
  EXPECT_EQ(normalized.calibrations[0].start, 5);
  // The job advanced with the (unmoved) calibration: shift is 0.
  EXPECT_EQ(normalized.jobs[0].start, 7);
}

TEST(GridNormalize, ChainsPackAfterReleases) {
  // Two back-to-back calibrations anchored off-grid: the first advances to
  // the release, the second packs at its end (release + T).
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 3, 40, 5}, {1, 3, 40, 5}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.calibrations = {{0, 7}, {0, 19}};
  schedule.jobs = {{0, 0, 8}, {1, 0, 20}};
  ASSERT_TRUE(verify_tise(instance, schedule).ok());
  const Schedule normalized = normalize_to_grid(instance, schedule);
  ASSERT_EQ(normalized.calibrations.size(), 2u);
  EXPECT_EQ(normalized.calibrations[0].start, 3);   // the release
  EXPECT_EQ(normalized.calibrations[1].start, 13);  // packed: 3 + T
  EXPECT_TRUE(verify_tise(instance, normalized).ok());
}

TEST(SpeedTransform, PreservesFeasibilityAndCalibrations) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = generate_long_window(long_params(seed));
    const LongWindowResult pipeline = solve_long_window(instance);
    ASSERT_TRUE(pipeline.feasible) << pipeline.error;
    const int c = (pipeline.schedule.machines + instance.machines - 1) /
                  instance.machines;
    const auto transformed = speed_transform(instance, pipeline.schedule, c);
    ASSERT_TRUE(transformed.has_value()) << "seed " << seed;
    EXPECT_LE(transformed->machines, instance.machines);
    EXPECT_EQ(transformed->speed, 2 * c);
    EXPECT_EQ(transformed->time_denominator, 2 * c);
    EXPECT_LE(transformed->num_calibrations(), pipeline.schedule.num_calibrations())
        << "seed " << seed;
    const VerifyResult check = verify_ise(instance, *transformed);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
  }
}

TEST(SpeedTransform, SingleMachineGroup) {
  // c = source machines: everything lands on one speed-2c machine.
  const Instance instance = figure1_instance();
  const Schedule ise = figure1_ise_schedule();
  const auto tise = trim_transform(instance, ise);
  ASSERT_TRUE(tise.has_value());
  const auto transformed = speed_transform(instance, *tise, tise->machines);
  ASSERT_TRUE(transformed.has_value());
  EXPECT_EQ(transformed->machines, 1);
  const VerifyResult check = verify_ise(instance, *transformed);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

TEST(LongPipeline, Theorem12BoundsHold) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate_long_window(long_params(seed, 14));
    const LongWindowResult result = solve_long_window(instance);
    ASSERT_TRUE(result.feasible) << "seed " << seed << ": " << result.error;
    EXPECT_LE(result.schedule.machines, 18 * instance.machines);
    // Internal chain: rounded <= 2 * LP objective; final = 2 * rounded.
    EXPECT_LE(static_cast<double>(result.telemetry.rounded_calibrations),
              2.0 * result.telemetry.lp_objective + 1e-6);
    EXPECT_EQ(result.telemetry.total_calibrations,
              2 * result.telemetry.rounded_calibrations);
    const VerifyResult check = verify_tise(instance, result.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
  }
}

TEST(LongPipeline, AdaptiveMirrorAndPrunePreserveFeasibility) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate_long_window(long_params(seed, 12));
    const LongWindowResult paper = solve_long_window(instance);
    ASSERT_TRUE(paper.feasible) << paper.error;

    LongWindowOptions options;
    options.adaptive_mirror = true;
    options.prune_empty_calibrations = true;
    const LongWindowResult optimized = solve_long_window(instance, options);
    ASSERT_TRUE(optimized.feasible) << "seed " << seed << ": " << optimized.error;
    const VerifyResult check = verify_tise(instance, optimized.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
    // Optimizations only remove cost.
    EXPECT_LE(optimized.telemetry.total_calibrations,
              paper.telemetry.total_calibrations)
        << "seed " << seed;
    // Pruning removes calibrations hosting no job; every remaining
    // calibration hosts at least one.
    for (const Calibration& cal : optimized.schedule.calibrations) {
      bool hosts = false;
      for (const ScheduledJob& sj : optimized.schedule.jobs) {
        const Job& job = instance.job_by_id(sj.job);
        if (sj.machine == cal.machine && cal.start <= sj.start &&
            sj.start + job.proc <= cal.start + instance.T) {
          hosts = true;
          break;
        }
      }
      EXPECT_TRUE(hosts) << "seed " << seed << " empty calibration survived";
    }
  }
}

TEST(LongPipeline, VeryLongWindowsStillTractable) {
  // Windows of 8T..15T multiply the LP's feasible pairs; the pipeline must
  // still run and satisfy the budgets.
  GenParams params = long_params(5, 10);
  params.horizon = 200;
  const Instance instance = generate_long_window(params, 8, 15);
  const LongWindowResult result = solve_long_window(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_LE(result.schedule.machines, 18 * instance.machines);
  EXPECT_TRUE(verify_tise(instance, result.schedule).ok());
}

TEST(EdfAssign, DeterministicWithIdenticalJobs) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  // Twin jobs: the id tie-break makes assignment deterministic.
  instance.jobs = {{0, 0, 30, 4}, {1, 0, 30, 4}};
  const TiseFractional lp = solve_tise_lp(instance, 3);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  const auto starts = round_calibrations(lp.points, lp.calibration_mass);
  const Schedule calendar = assign_round_robin(instance, starts, 9);
  const EdfAssignResult a = edf_assign_jobs(instance, calendar);
  const EdfAssignResult b = edf_assign_jobs(instance, calendar);
  ASSERT_EQ(a.schedule.jobs.size(), b.schedule.jobs.size());
  for (std::size_t i = 0; i < a.schedule.jobs.size(); ++i) {
    EXPECT_EQ(a.schedule.jobs[i], b.schedule.jobs[i]);
  }
  // Lower id goes first within the shared calibration.
  Schedule sorted = a.schedule;
  sorted.normalize();
  ASSERT_EQ(sorted.jobs.size(), 2u);
  EXPECT_LT(sorted.jobs[0].start, sorted.jobs[1].start);
  EXPECT_EQ(sorted.jobs[0].job, 0);
}

TEST(SpeedTransform, GroupSizeOneDoublesSpeedOnly) {
  // c = 1: same machine count, speed 2, denominators exact.
  const Instance instance = generate_long_window(long_params(3, 6));
  const LongWindowResult pipeline = solve_long_window(instance);
  ASSERT_TRUE(pipeline.feasible);
  const auto fast = speed_transform(instance, pipeline.schedule, 1);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(fast->speed, 2);
  EXPECT_EQ(fast->machines, pipeline.schedule.machines);
  EXPECT_TRUE(verify_ise(instance, *fast).ok());
}

TEST(LongPipeline, EmptyInstance) {
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  const LongWindowResult result = solve_long_window(instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.schedule.num_calibrations(), 0u);
}

TEST(LongPipeline, Theorem14SpeedVariant) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = generate_long_window(long_params(seed));
    const LongWindowResult result = solve_long_window_speed(instance);
    ASSERT_TRUE(result.feasible) << "seed " << seed << ": " << result.error;
    EXPECT_LE(result.schedule.machines, instance.machines);
    EXPECT_LE(result.schedule.speed, 36);
    const VerifyResult check = verify_ise(instance, result.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
  }
}

}  // namespace
}  // namespace calisched

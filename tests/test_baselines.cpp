// Tests for the baseline ISE algorithms and the calibration lower bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baseline.hpp"
#include "baselines/calibration_bounds.hpp"
#include "baselines/exact_ise.hpp"
#include "baselines/gap_min.hpp"
#include "baselines/ise_lp_bound.hpp"
#include "gen/generators.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

TEST(CalibrationBounds, WorkBound) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 30, 7}, {1, 0, 30, 7}, {2, 0, 30, 7}};
  EXPECT_EQ(calibration_work_bound(instance), 3);  // ceil(21/10)
}

TEST(CalibrationBounds, WindowedBeatsGlobalWhenClustered) {
  // Two tight clusters far apart: global work bound is ceil(12/10) = 2,
  // but each cluster independently needs ceil(6/10) = 1, and they are
  // separated by >> T, so the windowed bound is 2 as well; make clusters
  // heavier to separate the bounds: 2 clusters of work 14 -> windowed 4,
  // global ceil(28/10) = 3.
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  instance.jobs = {
      {0, 0, 10, 7},    {1, 0, 10, 7},      // cluster A, work 14
      {2, 500, 510, 7}, {3, 500, 510, 7},   // cluster B, work 14
  };
  EXPECT_EQ(calibration_work_bound(instance), 3);
  EXPECT_EQ(calibration_windowed_bound(instance), 4);
  EXPECT_EQ(calibration_lower_bound(instance), 4);
}

TEST(CalibrationBounds, EmptyInstance) {
  Instance instance;
  instance.machines = 1;
  instance.T = 5;
  EXPECT_EQ(calibration_lower_bound(instance), 0);
}

TEST(IseLpBound, SingleJobCostsOneCalibration) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 3, 25, 6}};
  const auto bound = ise_lp_bound(instance);
  ASSERT_TRUE(bound.has_value());
  EXPECT_NEAR(*bound, 1.0, 1e-6);
}

TEST(IseLpBound, NeverExceedsExactOptimum) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 5;
    params.T = 6;
    params.machines = 2;
    params.horizon = 30;
    params.max_proc = 5;
    const Instance instance = generate_mixed(params, 0.5);
    const ExactIseResult exact = solve_exact_ise(instance);
    if (!exact.solved || !exact.feasible) continue;
    const auto lp = ise_lp_bound(instance);
    ASSERT_TRUE(lp.has_value()) << "seed " << seed;
    EXPECT_LE(std::ceil(*lp - 1e-6),
              static_cast<double>(exact.optimal_calibrations))
        << "seed " << seed;
    EXPECT_GE(ise_certified_bound(instance), calibration_lower_bound(instance))
        << "seed " << seed;
    EXPECT_LE(ise_certified_bound(instance),
              static_cast<std::int64_t>(exact.optimal_calibrations))
        << "seed " << seed;
  }
}

TEST(IseLpBound, SeparatedClustersAddUp) {
  // Two clusters far apart: the LP must pay at least one calibration each.
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  instance.jobs = {{0, 0, 12, 4}, {1, 500, 512, 4}};
  const auto bound = ise_lp_bound(instance);
  ASSERT_TRUE(bound.has_value());
  EXPECT_GE(*bound, 2.0 - 1e-6);
}

TEST(IseLpBound, FallsBackOnHugeHorizons) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 1'000'000, 5}};
  // Grid too large: certified bound falls back to the combinatorial bound.
  EXPECT_EQ(ise_certified_bound(instance), calibration_lower_bound(instance));
}

TEST(PerJobCalibration, AlwaysFeasibleWithNCals) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 15;
    params.T = 10;
    params.horizon = 80;
    params.max_proc = 10;
    const Instance instance = generate_mixed(params, 0.5);
    const BaselineResult result = PerJobCalibration().solve(instance);
    ASSERT_TRUE(result.feasible) << "seed " << seed;
    EXPECT_EQ(result.schedule.num_calibrations(), instance.size());
    // Machines in the baseline schedule may exceed instance.machines; it
    // reports what it needs. Verify against a widened instance.
    const VerifyResult check = verify_ise(instance, result.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
  }
}

TEST(SaturateCalibration, FeasibleOnLooseInstances) {
  GenParams params;
  params.seed = 3;
  params.n = 8;
  params.T = 10;
  params.machines = 3;
  params.horizon = 60;
  params.max_proc = 5;
  const Instance instance = generate_long_window(params, 3, 6);
  const BaselineResult result = SaturateCalibration().solve(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  const VerifyResult check = verify_ise(instance, result.schedule);
  EXPECT_TRUE(check.ok()) << check.to_string();
  // Cost is m * ceil(span / T).
  const Time span = instance.max_deadline() - instance.min_release();
  EXPECT_EQ(result.schedule.num_calibrations(),
            static_cast<std::size_t>(instance.machines) *
                static_cast<std::size_t>((span + instance.T - 1) / instance.T));
}

TEST(SaturateCalibration, ReportsFailureHonestly) {
  // Grid-aligned EDF cannot split a T-length job across cells, and three
  // same-window full-length jobs cannot fit two grid cells on 1 machine.
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 10}, {1, 0, 20, 10}, {2, 0, 20, 10}};
  const BaselineResult result = SaturateCalibration().solve(instance);
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.error.empty());
}

TEST(BenderLazy, RequiresUnitJobs) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 2}};
  const BaselineResult result = BenderUnitLazyBinning().solve(instance);
  EXPECT_FALSE(result.feasible);
}

TEST(BenderLazy, SingleCalibrationWhenJobsShareWindow) {
  // T unit jobs in one window of length T: one lazy calibration suffices.
  Instance instance;
  instance.machines = 1;
  instance.T = 5;
  for (JobId j = 0; j < 5; ++j) instance.jobs.push_back({j, 0, 5, 1});
  const BaselineResult result = BenderUnitLazyBinning().solve(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_EQ(result.schedule.num_calibrations(), 1u);
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(BenderLazy, LazyStartMaximizesFutureCoverage) {
  // One urgent job (d=3) then stragglers at 8..10: the calibration opened
  // at d-1 = 2 spans [2, 12) and catches all of them -> 1 calibration.
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 3, 1}, {1, 8, 12, 1}, {2, 9, 12, 1}};
  const BaselineResult result = BenderUnitLazyBinning().solve(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_EQ(result.schedule.num_calibrations(), 1u);
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(GapMin, SingleBurstIsOneBlock) {
  Instance instance;
  instance.machines = 1;
  instance.T = 2;
  for (JobId j = 0; j < 5; ++j) instance.jobs.push_back({j, 0, 7, 1});
  const GapMinResult result = solve_min_gaps_unit(instance);
  ASSERT_TRUE(result.solved && result.feasible);
  EXPECT_EQ(result.busy_blocks, 1u);
  ASSERT_EQ(result.slots.size(), 5u);
  // The slots form one contiguous run.
  std::vector<Time> times;
  for (const ScheduledJob& sj : result.slots) times.push_back(sj.start);
  std::sort(times.begin(), times.end());
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_EQ(times[i], times[i - 1] + 1);
  }
}

TEST(GapMin, ForcedSeparationNeedsTwoBlocks) {
  Instance instance;
  instance.machines = 1;
  instance.T = 2;
  instance.jobs = {{0, 0, 1, 1}, {1, 5, 6, 1}};  // pinned 4 apart
  const GapMinResult result = solve_min_gaps_unit(instance);
  ASSERT_TRUE(result.solved && result.feasible);
  EXPECT_EQ(result.busy_blocks, 2u);
}

TEST(GapMin, InfeasibleInstanceReported) {
  Instance instance;
  instance.machines = 1;
  instance.T = 2;
  instance.jobs = {{0, 0, 1, 1}, {1, 0, 1, 1}};  // two jobs, one slot
  const GapMinResult result = solve_min_gaps_unit(instance);
  EXPECT_TRUE(result.solved);
  EXPECT_FALSE(result.feasible);
}

TEST(GapMin, SlotsRespectWindows) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 6;
    params.T = 4;
    params.machines = 1;
    params.horizon = 14;
    const Instance instance = generate_unit(params, 8);
    const GapMinResult result = solve_min_gaps_unit(instance);
    if (!result.solved || !result.feasible) continue;
    MMSchedule as_mm;
    as_mm.machines = 1;
    as_mm.jobs = result.slots;
    EXPECT_TRUE(verify_mm(instance, as_mm).ok()) << "seed " << seed;
  }
}

TEST(GreedyLazyIse, FeasibleAndVerifiedAcrossFamilies) {
  int solved = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 14;
    params.T = 10;
    params.machines = 3;
    params.horizon = 90;
    params.max_proc = 8;
    const Instance instance = generate_mixed(params, 0.5);
    const BaselineResult result = GreedyLazyIse().solve(instance);
    if (!result.feasible) continue;  // greedy may fail; must never lie
    ++solved;
    const VerifyResult check = verify_ise(instance, result.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
    EXPECT_GE(static_cast<std::int64_t>(result.schedule.num_calibrations()),
              calibration_lower_bound(instance));
  }
  EXPECT_GE(solved, 8) << "greedy-lazy should handle most mixed instances";
}

TEST(GreedyLazyIse, SharesCalibrationAcrossNonUnitJobs) {
  // Three jobs fit one calibration; lazy binning must open exactly one.
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 4}, {1, 0, 20, 3}, {2, 0, 20, 3}};
  const BaselineResult result = GreedyLazyIse().solve(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_EQ(result.schedule.num_calibrations(), 1u);
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(GreedyLazyIse, MatchesExactOnTinyInstances) {
  int compared = 0;
  double worst_ratio = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 5;
    params.T = 6;
    params.machines = 2;
    params.horizon = 30;
    params.max_proc = 5;
    const Instance instance = generate_mixed(params, 0.5);
    const ExactIseResult exact = solve_exact_ise(instance);
    if (!exact.solved || !exact.feasible) continue;
    const BaselineResult greedy = GreedyLazyIse().solve(instance);
    if (!greedy.feasible) continue;
    ++compared;
    EXPECT_GE(greedy.schedule.num_calibrations(), exact.optimal_calibrations)
        << "seed " << seed;
    worst_ratio = std::max(
        worst_ratio, static_cast<double>(greedy.schedule.num_calibrations()) /
                         static_cast<double>(exact.optimal_calibrations));
  }
  EXPECT_GE(compared, 5);
  // No guarantee exists, but on tiny instances the greedy should stay
  // within a small constant of optimal; catches gross regressions.
  EXPECT_LE(worst_ratio, 3.0);
}

TEST(BenderLazy, FeasibleAcrossRandomUnitInstances) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 20;
    params.T = 6;
    params.machines = 3;
    params.horizon = 50;
    const Instance instance = generate_unit(params, 10);
    const BaselineResult result = BenderUnitLazyBinning().solve(instance);
    ASSERT_TRUE(result.feasible) << "seed " << seed << ": " << result.error;
    const VerifyResult check = verify_ise(instance, result.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
    EXPECT_GE(static_cast<std::int64_t>(result.schedule.num_calibrations()),
              calibration_lower_bound(instance));
  }
}

}  // namespace
}  // namespace calisched

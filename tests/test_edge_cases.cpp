// Boundary-value and robustness tests cutting across modules:
// minimum T, p_j = T, window exactly 2T, zero slack, negative times,
// determinism, serialization round trips, and wide-horizon behavior.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/exact_ise.hpp"
#include "core/schedule_io.hpp"
#include "gen/generators.hpp"
#include "longwin/long_pipeline.hpp"
#include "mm/mm.hpp"
#include "shortwin/short_pipeline.hpp"
#include "solver/ise_solver.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

TEST(EdgeCases, MinimumCalibrationLengthT2) {
  Instance instance;
  instance.machines = 1;
  instance.T = 2;
  instance.jobs = {
      {0, 0, 4, 2},   // long (window 4 = 2T), full-length
      {1, 1, 4, 1},   // short
      {2, 5, 12, 2},  // long
  };
  ASSERT_FALSE(instance.validate().has_value());
  const IseSolveResult result = solve_ise(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(EdgeCases, FullLengthJobsExactlyFillCalibrations) {
  // p_j = T everywhere: every calibration holds exactly one job.
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  for (JobId j = 0; j < 4; ++j) {
    instance.jobs.push_back({j, j * 3, j * 3 + 25, 10});
  }
  const IseSolveResult result = solve_ise(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(EdgeCases, WindowExactlyTwoTIsLong) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 10}};
  const WindowSplit split = split_by_window(instance);
  EXPECT_EQ(split.long_jobs.size(), 1u);
  const LongWindowResult result = solve_long_window(split.long_jobs);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_TRUE(verify_tise(instance, result.schedule).ok());
}

TEST(EdgeCases, ZeroSlackShortJobs) {
  // Jobs that must run the moment they are released.
  Instance instance;
  instance.machines = 3;
  instance.T = 10;
  instance.jobs = {
      {0, 0, 6, 6}, {1, 2, 8, 6}, {2, 4, 10, 6},
  };
  const GreedyEdfMM mm;
  const ShortWindowResult result = solve_short_window(instance, mm);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(EdgeCases, NegativeReleaseTimes) {
  // The model is translation-invariant; negative times must work (the
  // Figure-1 fixture already relies on it, this isolates the pipelines).
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, -30, -5, 5}, {1, -8, 30, 7}};
  ASSERT_FALSE(instance.validate().has_value());
  const IseSolveResult result = solve_ise(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(EdgeCases, LargeTimeValuesDoNotOverflow) {
  const Time base = Time{1} << 40;
  Instance instance;
  instance.machines = 1;
  instance.T = 1000;
  instance.jobs = {
      {0, base, base + 5000, 400},
      {1, base + 100, base + 1900, 700},
  };
  const IseSolveResult result = solve_ise(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(EdgeCases, ManyIdenticalJobs) {
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  for (JobId j = 0; j < 12; ++j) instance.jobs.push_back({j, 0, 60, 5});
  const IseSolveResult result = solve_ise(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(EdgeCases, SingleMachineEverywhere) {
  GenParams params;
  params.seed = 77;
  params.n = 10;
  params.T = 8;
  params.machines = 1;
  params.horizon = 80;
  params.max_proc = 7;
  const Instance instance = generate_mixed(params, 0.5);
  const IseSolveResult result = solve_ise(instance);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(Determinism, SameSeedSameSchedule) {
  GenParams params;
  params.seed = 123;
  params.n = 14;
  params.T = 10;
  params.machines = 2;
  params.horizon = 90;
  params.max_proc = 9;
  const Instance a = generate_mixed(params, 0.5);
  const Instance b = generate_mixed(params, 0.5);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) EXPECT_EQ(a.jobs[i], b.jobs[i]);

  const IseSolveResult ra = solve_ise(a);
  const IseSolveResult rb = solve_ise(b);
  ASSERT_TRUE(ra.feasible && rb.feasible);
  std::ostringstream sa, sb;
  write_schedule(sa, ra.schedule);
  write_schedule(sb, rb.schedule);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(Determinism, DifferentSeedsDifferentInstances) {
  GenParams params;
  params.seed = 1;
  params.n = 10;
  params.T = 10;
  params.horizon = 80;
  const Instance a = generate_long_window(params);
  params.seed = 2;
  const Instance b = generate_long_window(params);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    if (!(a.jobs[i] == b.jobs[i])) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScheduleIo, RoundTripWithTicksAndSpeed) {
  Schedule schedule;
  schedule.machines = 3;
  schedule.T = 10;
  schedule.time_denominator = 36;
  schedule.speed = 36;
  schedule.calibrations = {{0, -360}, {2, 720}};
  schedule.jobs = {{5, 0, -350}, {7, 2, 725}};
  std::stringstream buffer;
  write_schedule(buffer, schedule);
  const Schedule parsed = read_schedule(buffer);
  EXPECT_EQ(parsed.machines, schedule.machines);
  EXPECT_EQ(parsed.T, schedule.T);
  EXPECT_EQ(parsed.time_denominator, schedule.time_denominator);
  EXPECT_EQ(parsed.speed, schedule.speed);
  ASSERT_EQ(parsed.calibrations.size(), 2u);
  EXPECT_EQ(parsed.calibrations[1], (Calibration{2, 720}));
  ASSERT_EQ(parsed.jobs.size(), 2u);
  EXPECT_EQ(parsed.jobs[0], (ScheduledJob{5, 0, -350}));
}

TEST(ScheduleIo, RejectsMalformed) {
  std::stringstream bad1("calibration 0\n");
  EXPECT_THROW(read_schedule(bad1), std::runtime_error);
  std::stringstream bad2("frobnicate 1 2 3\n");
  EXPECT_THROW(read_schedule(bad2), std::runtime_error);
  std::stringstream bad3("machines 1\nT 4\nspeed 0\n");
  EXPECT_THROW(read_schedule(bad3), std::runtime_error);
}

TEST(ScheduleIo, SolverOutputRoundTripsVerifiably) {
  GenParams params;
  params.seed = 31;
  params.n = 12;
  params.T = 10;
  params.machines = 2;
  params.horizon = 80;
  params.max_proc = 9;
  const Instance instance = generate_mixed(params, 0.5);
  const IseSolveResult result = solve_ise(instance);
  ASSERT_TRUE(result.feasible);
  std::stringstream buffer;
  write_schedule(buffer, result.schedule);
  const Schedule parsed = read_schedule(buffer);
  EXPECT_TRUE(verify_ise(instance, parsed).ok());
}

TEST(EdgeCases, ExactSolverOnSingleFullLengthJob) {
  Instance instance;
  instance.machines = 1;
  instance.T = 6;
  instance.jobs = {{0, 4, 10, 6}};  // zero slack, p = T
  const ExactIseResult result = solve_exact_ise(instance);
  ASSERT_TRUE(result.solved && result.feasible);
  EXPECT_EQ(result.optimal_calibrations, 1u);
  ASSERT_EQ(result.schedule.calibrations.size(), 1u);
  EXPECT_EQ(result.schedule.calibrations[0].start, 4);
}

TEST(EdgeCases, InstanceWhereOnlyDelayedCalibrationWorks) {
  // Mirror of the paper's Section 5 observation: delaying is optimal.
  // Calibrating eagerly at r_0 = 0 would strand job 1.
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 14, 3}, {1, 9, 19, 6}};
  const ExactIseResult result = solve_exact_ise(instance);
  ASSERT_TRUE(result.solved && result.feasible);
  EXPECT_EQ(result.optimal_calibrations, 1u);
  EXPECT_GE(result.schedule.calibrations[0].start, 5);
}

}  // namespace
}  // namespace calisched

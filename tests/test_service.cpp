// Tests for the persistent solve service (src/service/): canonical
// instance hashing, the LRU result cache, bounded-queue backpressure,
// per-request deadlines, graceful shutdown, and the NDJSON front ends.
//
// The service-level contracts pinned here mirror the batch driver's:
//   * the cache key is invariant under job permutation and separates
//     near-identical instances;
//   * the stdio response stream is byte-identical at 1/4/8 worker threads
//     (responses are ordered by request arrival and carry no timing);
//   * a full queue answers with a reject status, deterministically (the
//     pause control holds workers so admission is the only moving part);
//   * malformed requests get structured error responses, never a crash.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "service/instance_hash.hpp"
#include "service/loadgen.hpp"
#include "service/lru_cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

namespace calisched {
namespace {

GenParams small_params(std::uint64_t seed, int n = 10) {
  GenParams params;
  params.seed = seed;
  params.n = n;
  params.T = 8;
  params.machines = 2;
  params.horizon = 80;
  params.max_proc = 7;
  return params;
}

ServiceRequest solve_request(Instance instance, std::string algorithm = "combined") {
  ServiceRequest request;
  request.type = RequestType::kSolve;
  request.algorithm = std::move(algorithm);
  request.instance = std::move(instance);
  return request;
}

// ---------------------------------------------------------- InstanceHash --

TEST(InstanceHash, InvariantUnderJobPermutation) {
  Instance instance = generate_mixed(small_params(5, 14), 0.5);
  const std::uint64_t reference = canonical_instance_hash(instance);
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    rng.shuffle(instance.jobs);
    EXPECT_EQ(canonical_instance_hash(instance), reference) << round;
  }
}

TEST(InstanceHash, SeparatesNearIdenticalInstances) {
  const Instance base = generate_mixed(small_params(6, 12), 0.5);
  const std::uint64_t reference = canonical_instance_hash(base);

  Instance tweaked = base;
  tweaked.jobs[3].proc += 1;
  EXPECT_NE(canonical_instance_hash(tweaked), reference) << "proc nudge";

  tweaked = base;
  tweaked.jobs[0].deadline += 1;
  EXPECT_NE(canonical_instance_hash(tweaked), reference) << "deadline nudge";

  tweaked = base;
  tweaked.machines += 1;
  EXPECT_NE(canonical_instance_hash(tweaked), reference) << "machines";

  tweaked = base;
  tweaked.T += 1;
  EXPECT_NE(canonical_instance_hash(tweaked), reference) << "T";

  tweaked = base;
  tweaked.jobs.pop_back();
  EXPECT_NE(canonical_instance_hash(tweaked), reference) << "dropped job";

  // A duplicated job must not cancel out of the fold.
  tweaked = base;
  tweaked.jobs.push_back(tweaked.jobs[0]);
  EXPECT_NE(canonical_instance_hash(tweaked), reference) << "duplicated job";
}

TEST(InstanceHash, FoldsTheEffectiveCalibrationModel) {
  // The cache key hashes the *resolved* model: the implicit unit table and
  // the explicit {T, 1, 0} table are interchangeable everywhere else, so
  // they must share cache entries — while any substantive change to a type
  // (cost, delay, length, or an extra type) must separate.
  const Instance base = generate_mixed(small_params(6, 12), 0.5);
  const std::uint64_t reference = canonical_instance_hash(base);

  Instance tweaked = base;
  tweaked.cal = CalibrationModel::unit(base.T);
  EXPECT_EQ(canonical_instance_hash(tweaked), reference) << "explicit unit";

  tweaked.cal.types[0].cost = 2;
  EXPECT_NE(canonical_instance_hash(tweaked), reference) << "cost nudge";

  tweaked = base;
  tweaked.cal = CalibrationModel::unit(base.T);
  tweaked.cal.types[0].activation_delay = 1;
  EXPECT_NE(canonical_instance_hash(tweaked), reference) << "delay nudge";

  tweaked = base;
  tweaked.cal = CalibrationModel::unit(base.T);
  tweaked.cal.types.push_back({2 * base.T, 3, 0});
  const std::uint64_t two_types = canonical_instance_hash(tweaked);
  EXPECT_NE(two_types, reference) << "extra type";

  // The table is ordered (type ids are semantic): swapping entries is a
  // different instance.
  std::swap(tweaked.cal.types[0], tweaked.cal.types[1]);
  EXPECT_NE(canonical_instance_hash(tweaked), two_types) << "type order";
}

TEST(InstanceHash, DistinctAcrossGeneratedFamily) {
  // 64 generated instances; any hash collision here would be a red flag
  // for the fold's diffusion.
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const Instance instance = generate_mixed(small_params(seed, 10), 0.5);
    EXPECT_TRUE(seen.insert(canonical_instance_hash(instance)).second)
        << "collision at seed " << seed;
  }
}

// -------------------------------------------------------------- LruCache --

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, std::string> cache(2);
  cache.put(1, "a");
  cache.put(2, "b");
  cache.put(3, "c");  // evicts 1
  EXPECT_EQ(cache.get(1), nullptr);
  ASSERT_NE(cache.get(2), nullptr);
  EXPECT_EQ(*cache.get(2), "b");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, GetRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_NE(cache.get(1), nullptr);  // 1 becomes most-recent
  cache.put(3, 30);                  // evicts 2, not 1
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_EQ(cache.get(2), nullptr);
  const std::vector<int> keys = cache.keys_mru_first();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], 1);  // the verifying get(1) above promoted it again
  EXPECT_EQ(keys[1], 3);
}

TEST(LruCache, PutOverwritesInPlace) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(1, 11);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(cache.get(1), nullptr);
  EXPECT_EQ(*cache.get(1), 11);
}

TEST(LruCache, CapacityZeroDisables) {
  LruCache<int, int> cache(0);
  cache.put(1, 10);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------- SolveService --

TEST(SolveService, SolvesAndVerifies) {
  ServiceOptions options;
  options.threads = 2;
  SolveService service(AlgorithmRegistry::builtin(), options);
  const Instance instance = generate_mixed(small_params(7), 0.5);
  const SolveOutcome outcome = service.submit(solve_request(instance))->wait();
  EXPECT_EQ(outcome.status, SolveStatus::kOk);
  ASSERT_TRUE(outcome.feasible) << outcome.error;
  EXPECT_TRUE(outcome.verified);
  EXPECT_GT(outcome.calibrations, 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.received, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.cache_misses, 1);
}

TEST(SolveService, PermutedDuplicateServedFromCache) {
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  Instance instance = generate_mixed(small_params(8), 0.5);
  const SolveOutcome first = service.submit(solve_request(instance))->wait();
  ASSERT_TRUE(first.feasible) << first.error;

  Rng rng(4);
  rng.shuffle(instance.jobs);
  const SolveOutcome second = service.submit(solve_request(instance))->wait();
  EXPECT_EQ(second.status, SolveStatus::kOk);
  EXPECT_EQ(second.calibrations, first.calibrations);
  EXPECT_EQ(second.machines, first.machines);
  EXPECT_TRUE(second.verified);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_size, 1);
}

TEST(SolveService, CalibrationModelDiscriminatesCacheEntries) {
  // Implicit unit table and explicit unit(T) hash alike, so the second
  // submit is a cache hit; a changed type cost is a different instance
  // and must miss. The cost-model solver path also threads total_cost
  // through the outcome.
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  GenParams params = small_params(10, 6);
  params.machines = 1;
  params.T = 5;
  params.max_proc = 4;
  params.horizon = 40;
  Instance instance = generate_mixed(params, 0.5);
  const SolveOutcome implicit_unit =
      service.submit(solve_request(instance, "dp-calib-cost"))->wait();
  ASSERT_TRUE(implicit_unit.feasible) << implicit_unit.error;
  EXPECT_EQ(implicit_unit.total_cost,
            static_cast<std::int64_t>(implicit_unit.calibrations));

  instance.cal = CalibrationModel::unit(instance.T);
  const SolveOutcome explicit_unit =
      service.submit(solve_request(instance, "dp-calib-cost"))->wait();
  EXPECT_EQ(explicit_unit.total_cost, implicit_unit.total_cost);
  EXPECT_EQ(service.stats().cache_hits, 1);

  // Tripling the type cost is a different instance (cache miss), and the
  // exact DP's optimum simply scales: same calibrations, triple the cost.
  instance.cal.types[0].cost = 3;
  const SolveOutcome pricier =
      service.submit(solve_request(instance, "dp-calib-cost"))->wait();
  EXPECT_EQ(service.stats().cache_hits, 1);
  EXPECT_EQ(service.stats().cache_misses, 2);
  ASSERT_TRUE(pricier.feasible) << pricier.error;
  EXPECT_EQ(pricier.total_cost, 3 * implicit_unit.total_cost);
}

TEST(SolveService, DifferentAlgorithmMissesCache) {
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  const Instance instance = generate_mixed(small_params(9), 0.5);
  (void)service.submit(solve_request(instance, "combined"))->wait();
  (void)service.submit(solve_request(instance, "per-job"))->wait();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.cache_misses, 2);
}

TEST(SolveService, FullQueueRejectsDeterministically) {
  ServiceOptions options;
  options.threads = 1;
  options.queue_capacity = 2;
  SolveService service(AlgorithmRegistry::builtin(), options);
  service.pause();  // hold workers: admission is the only moving part

  const Instance instance = generate_mixed(small_params(10), 0.5);
  auto first = service.submit(solve_request(instance));
  auto second = service.submit(solve_request(instance));
  auto third = service.submit(solve_request(instance));

  ASSERT_TRUE(third->ready());  // rejected synchronously, never queued
  const SolveOutcome& bounced = third->wait();
  EXPECT_TRUE(bounced.rejected);
  EXPECT_EQ(bounced.status, SolveStatus::kLimitExceeded);
  EXPECT_NE(bounced.error.find("queue full"), std::string::npos)
      << bounced.error;

  service.resume();
  EXPECT_TRUE(first->wait().feasible);
  EXPECT_TRUE(second->wait().feasible);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.accepted, 2);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.outstanding, 0);
}

TEST(SolveService, DeadlineStampedAtAdmission) {
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  service.pause();
  ServiceRequest request = solve_request(generate_mixed(small_params(11), 0.5));
  request.timeout_ms = 5;
  auto pending = service.submit(request);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.resume();
  const SolveOutcome& outcome = pending->wait();
  EXPECT_EQ(outcome.status, SolveStatus::kDeadlineExceeded);
  EXPECT_FALSE(outcome.feasible);

  // A limit-stopped outcome must not poison the cache: the same instance
  // without a deadline (-1 = field absent) solves honestly.
  request.timeout_ms = -1;
  const SolveOutcome retry = service.submit(request)->wait();
  EXPECT_TRUE(retry.feasible) << retry.error;
  EXPECT_EQ(service.stats().cache_hits, 0);
}

TEST(SolveService, ExplicitZeroTimeoutExpiresSynchronously) {
  // An explicit "timeout_ms":0 is an already-expired deadline, not "no
  // deadline": the request completes synchronously with status "deadline"
  // and runs no solver. Regression test — the old code treated 0 as the
  // absent-field sentinel and solved the instance honestly.
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  service.pause();  // workers held: a synchronous answer cannot come from one
  ServiceRequest request = solve_request(generate_mixed(small_params(17), 0.5));
  request.timeout_ms = 0;
  auto pending = service.submit(request);
  ASSERT_TRUE(pending->ready());  // never queued, never touched a worker
  const SolveOutcome& outcome = pending->wait();
  EXPECT_EQ(outcome.status, SolveStatus::kDeadlineExceeded);
  EXPECT_FALSE(outcome.feasible);
  EXPECT_FALSE(outcome.rejected);  // completed, not backpressure

  // The expired answer is position-independent: it must not have probed or
  // seeded the cache, so the honest solve afterwards is a miss that solves.
  service.resume();
  request.timeout_ms = -1;
  const SolveOutcome honest = service.submit(request)->wait();
  EXPECT_TRUE(honest.feasible) << honest.error;
  EXPECT_EQ(service.stats().cache_hits, 0);

  // And once cached, "timeout_ms":0 still answers "deadline" — the probe
  // must not be short-circuited by a hit.
  request.timeout_ms = 0;
  const SolveOutcome again = service.submit(request)->wait();
  EXPECT_EQ(again.status, SolveStatus::kDeadlineExceeded);
}

TEST(SolveService, UnknownAlgorithmIsClientError) {
  SolveService service(AlgorithmRegistry::builtin(), {});
  const SolveOutcome outcome =
      service
          .submit(solve_request(generate_mixed(small_params(12), 0.5), "nope"))
          ->wait();
  EXPECT_FALSE(outcome.feasible);
  EXPECT_FALSE(outcome.rejected);
  EXPECT_NE(outcome.error.find("unknown algorithm"), std::string::npos);
  EXPECT_EQ(service.stats().errors, 1);
  EXPECT_EQ(service.stats().rejected, 0);
}

TEST(SolveService, ShutdownDrainsAndRefusesNewWork) {
  ServiceOptions options;
  options.threads = 2;
  SolveService service(AlgorithmRegistry::builtin(), options);
  std::vector<SolveService::PendingPtr> pending;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    pending.push_back(
        service.submit(solve_request(generate_mixed(small_params(seed), 0.5))));
  }
  service.shutdown(/*drain=*/true);
  for (const auto& p : pending) {
    ASSERT_TRUE(p->ready());
    EXPECT_TRUE(p->wait().feasible) << p->wait().error;
  }
  const SolveOutcome late =
      service.submit(solve_request(generate_mixed(small_params(99), 0.5)))
          ->wait();
  EXPECT_TRUE(late.rejected);
  EXPECT_EQ(late.status, SolveStatus::kCancelled);
}

TEST(SolveService, AbortShutdownCancelsInFlight) {
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  service.pause();
  auto pending =
      service.submit(solve_request(generate_mixed(small_params(13), 0.5)));
  service.shutdown(/*drain=*/false);  // fires the CancelToken, then drains
  const SolveOutcome& outcome = pending->wait();
  EXPECT_EQ(outcome.status, SolveStatus::kCancelled);
}

// ------------------------------------------------------------- protocol --

TEST(ServiceProtocol, ParseRejectsMalformedShapes) {
  EXPECT_FALSE(parse_request("not json").ok);
  EXPECT_FALSE(parse_request("[1,2]").ok);
  EXPECT_FALSE(parse_request("{\"type\":42}").ok);
  EXPECT_FALSE(parse_request("{\"type\":\"warp\"}").ok);
  EXPECT_FALSE(parse_request("{\"type\":\"solve\"}").ok);
  const ParsedRequest bad_job = parse_request(
      "{\"type\":\"solve\",\"instance\":{\"machines\":1,\"T\":4,"
      "\"jobs\":[[0,0,4]]}}");
  EXPECT_FALSE(bad_job.ok);
  EXPECT_NE(bad_job.error.find("job"), std::string::npos);
  const ParsedRequest bad_timeout = parse_request(
      "{\"type\":\"solve\",\"timeout_ms\":-3,\"instance\":{\"machines\":1,"
      "\"T\":4,\"jobs\":[[0,0,4,2]]}}");
  EXPECT_FALSE(bad_timeout.ok);
  EXPECT_NE(bad_timeout.error.find("timeout_ms"), std::string::npos);
}

TEST(ServiceProtocol, TimeoutAbsentAndZeroAreDistinct) {
  // Absent "timeout_ms" parses to the -1 sentinel (no deadline); an
  // explicit 0 survives as 0 (already-expired deadline). Regression test —
  // the old decoder used 0 for both, making "timeout_ms":0 unexpressable.
  const ParsedRequest absent = parse_request(
      "{\"type\":\"solve\",\"instance\":{\"machines\":1,\"T\":4,"
      "\"jobs\":[[0,0,4,2]]}}");
  ASSERT_TRUE(absent.ok) << absent.error;
  EXPECT_EQ(absent.request.timeout_ms, -1);
  const ParsedRequest zero = parse_request(
      "{\"type\":\"solve\",\"timeout_ms\":0,\"instance\":{\"machines\":1,"
      "\"T\":4,\"jobs\":[[0,0,4,2]]}}");
  ASSERT_TRUE(zero.ok) << zero.error;
  EXPECT_EQ(zero.request.timeout_ms, 0);
}

TEST(ServiceProtocol, ParseRecoversIdFromBadRequests) {
  const ParsedRequest parsed = parse_request("{\"id\":\"r7\",\"type\":\"warp\"}");
  EXPECT_FALSE(parsed.ok);
  ASSERT_TRUE(parsed.id.is_string());
  EXPECT_EQ(parsed.id.as_string(), "r7");
}

TEST(ServiceProtocol, InstanceJsonRoundTripsThroughParse) {
  const Instance instance = generate_mixed(small_params(21), 0.5);
  JsonValue::Object request;
  request.emplace_back("type", JsonValue("solve"));
  request.emplace_back("instance", instance_to_json(instance));
  const ParsedRequest parsed = parse_request(JsonValue(request).dump(0));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.instance.machines, instance.machines);
  EXPECT_EQ(parsed.request.instance.T, instance.T);
  ASSERT_EQ(parsed.request.instance.jobs.size(), instance.jobs.size());
  EXPECT_EQ(canonical_instance_hash(parsed.request.instance),
            canonical_instance_hash(instance));
}

TEST(ServiceProtocol, CaltypesRoundTripAndRejectMalformed) {
  Instance instance = generate_mixed(small_params(23, 8), 0.5);
  instance.cal.types = {{instance.T, 2, 0}, {2 * instance.T, 5, 1}};
  JsonValue::Object request;
  request.emplace_back("type", JsonValue("solve"));
  request.emplace_back("instance", instance_to_json(instance));
  const std::string line = JsonValue(request).dump(0);
  EXPECT_NE(line.find("\"caltypes\""), std::string::npos);
  const ParsedRequest parsed = parse_request(line);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.instance.cal, instance.cal);
  EXPECT_EQ(canonical_instance_hash(parsed.request.instance),
            canonical_instance_hash(instance));

  // Unit-model instances emit no caltypes field at all (wire compat).
  instance.cal.types.clear();
  EXPECT_EQ(instance_to_json(instance).dump(0).find("caltypes"),
            std::string::npos);

  const ParsedRequest bad = parse_request(
      "{\"type\":\"solve\",\"instance\":{\"machines\":1,\"T\":4,"
      "\"caltypes\":[[4,1]],\"jobs\":[[0,0,8,2]]}}");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("caltype"), std::string::npos);
}

// ----------------------------------------------------------- stdio serve --

std::string serve_script(const std::string& input, std::size_t threads,
                         ServeReport* report = nullptr,
                         std::size_t queue_capacity = 64) {
  ServiceOptions options;
  options.threads = threads;
  options.queue_capacity = queue_capacity;
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(run_stdio_server(AlgorithmRegistry::builtin(), options, in, out,
                             report),
            0);
  return out.str();
}

std::string solve_line(const Instance& instance, int id,
                       const std::string& algorithm = "combined") {
  JsonValue::Object request;
  request.emplace_back("type", JsonValue("solve"));
  request.emplace_back("id", JsonValue(std::int64_t{id}));
  request.emplace_back("algo", JsonValue(algorithm));
  request.emplace_back("instance", instance_to_json(instance));
  return JsonValue(std::move(request)).dump(0) + "\n";
}

TEST(ServeStdio, ResponsesByteIdenticalAcrossThreadCounts) {
  // The serve-mode analogue of the PR 3/4 determinism pattern: solve
  // responses carry no timing and are written in request order, so the
  // whole stream is byte-identical at any worker-thread count — including
  // a malformed line, an unknown algorithm, and permuted duplicates whose
  // cache fate may differ between runs.
  std::string input;
  int id = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    input += solve_line(generate_mixed(small_params(seed), 0.5), id++);
  }
  input += "{\"id\":100,\"type\":\"solve\"}\n";  // missing instance
  input += solve_line(generate_mixed(small_params(2), 0.5), id++);  // duplicate
  Instance permuted = generate_mixed(small_params(3), 0.5);
  Rng rng(1);
  rng.shuffle(permuted.jobs);
  input += solve_line(permuted, id++);  // permuted duplicate
  input += solve_line(generate_mixed(small_params(7), 0.5), id++, "nope");

  const std::string one = serve_script(input, 1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, serve_script(input, 4));
  EXPECT_EQ(one, serve_script(input, 8));
  // Sanity: one response line per request line.
  EXPECT_EQ(static_cast<int>(std::count(one.begin(), one.end(), '\n')), id + 1);
}

TEST(ServeStdio, MalformedLinesGetStructuredErrors) {
  ServeReport report;
  const std::string output = serve_script(
      "garbage\n{\"type\":\"ping\",\"id\":\"p\"}\n{}\n", 2, &report);
  EXPECT_EQ(report.lines, 3);
  EXPECT_EQ(report.malformed, 2);
  std::istringstream lines(output);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"type\":\"error\""), std::string::npos) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"op\":\"ping\""), std::string::npos) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"type\":\"error\""), std::string::npos) << line;
}

TEST(ServeStdio, PauseFillRejectResumeIsDeterministic) {
  // With workers paused, the bounded queue fills in request order: the
  // first two solves are admitted, the third bounces with a reject
  // response, and resume lets the admitted ones finish. Every byte of
  // this conversation is deterministic.
  const Instance instance = generate_mixed(small_params(30), 0.5);
  std::string input = "{\"type\":\"pause\",\"id\":\"hold\"}\n";
  input += solve_line(instance, 1);
  Instance other = generate_mixed(small_params(31), 0.5);
  input += solve_line(other, 2);
  input += solve_line(generate_mixed(small_params(32), 0.5), 3);  // bounced
  input += "{\"type\":\"resume\",\"id\":\"go\"}\n";
  input += "{\"type\":\"stats\",\"id\":\"s\"}\n";

  ServeReport report;
  const std::string output =
      serve_script(input, 1, &report, /*queue_capacity=*/2);
  std::vector<std::string> lines;
  std::istringstream stream(output);
  for (std::string line; std::getline(stream, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_NE(lines[0].find("\"op\":\"pause\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":\"ok\""), std::string::npos) << lines[1];
  EXPECT_NE(lines[2].find("\"status\":\"ok\""), std::string::npos) << lines[2];
  EXPECT_NE(lines[3].find("\"type\":\"reject\""), std::string::npos) << lines[3];
  EXPECT_NE(lines[3].find("queue full"), std::string::npos) << lines[3];
  EXPECT_NE(lines[4].find("\"op\":\"resume\""), std::string::npos);
  EXPECT_NE(lines[5].find("\"rejected\":1"), std::string::npos) << lines[5];
  EXPECT_NE(lines[5].find("\"completed\":2"), std::string::npos) << lines[5];
}

TEST(ServeStdio, StatsReportsCacheHitsForDuplicates) {
  const Instance instance = generate_mixed(small_params(33), 0.5);
  std::string input = solve_line(instance, 1);
  Instance permuted = instance;
  Rng rng(8);
  rng.shuffle(permuted.jobs);
  input += solve_line(permuted, 2);
  input += solve_line(instance, 3);
  input += "{\"type\":\"stats\",\"id\":\"s\"}\n";
  input += "{\"type\":\"shutdown\",\"id\":\"bye\"}\n";
  input += solve_line(instance, 4);  // after shutdown: never read

  ServeReport report;
  const std::string output = serve_script(input, 1, &report);
  EXPECT_TRUE(report.shutdown_requested);
  EXPECT_EQ(report.lines, 5);  // the post-shutdown line was not consumed
  EXPECT_NE(output.find("\"cache_hits\":2"), std::string::npos) << output;
  EXPECT_NE(output.find("\"op\":\"shutdown\""), std::string::npos);
}

TEST(ServeStdio, ScheduleAttachedOnRequest) {
  const Instance instance = generate_mixed(small_params(34), 0.5);
  JsonValue::Object request;
  request.emplace_back("type", JsonValue("solve"));
  request.emplace_back("id", JsonValue(1));
  request.emplace_back("schedule", JsonValue(true));
  request.emplace_back("instance", instance_to_json(instance));
  const std::string output =
      serve_script(JsonValue(std::move(request)).dump(0) + "\n", 1);
  EXPECT_NE(output.find("\"schedule\":{"), std::string::npos) << output;
  EXPECT_NE(output.find("\"calibrations\":["), std::string::npos) << output;
}

// ------------------------------------------------------------- TCP serve --

class TcpClient {
 public:
  explicit TcpClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                           sizeof address) == 0;
  }
  ~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }

  void send(const std::string& text) {
    const char* data = text.data();
    std::size_t remaining = text.size();
    while (remaining > 0) {
      const ssize_t written = ::write(fd_, data, remaining);
      ASSERT_GT(written, 0);
      data += written;
      remaining -= static_cast<std::size_t>(written);
    }
  }

  /// Reads until `lines` newline-terminated responses have arrived.
  [[nodiscard]] std::vector<std::string> read_lines(std::size_t lines) {
    std::vector<std::string> result;
    std::string current;
    char buffer[4096];
    while (result.size() < lines) {
      const ssize_t count = ::read(fd_, buffer, sizeof buffer);
      if (count <= 0) break;
      for (ssize_t i = 0; i < count; ++i) {
        if (buffer[i] == '\n') {
          result.push_back(current);
          current.clear();
        } else {
          current.push_back(buffer[i]);
        }
      }
    }
    return result;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(ServeTcp, SolvesOverLoopbackAndShutsDownCleanly) {
  ServiceOptions options;
  // One worker serializes the two solves, so the duplicate's cache hit is
  // deterministic (two workers could run both before either is cached).
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  TcpServer server(service);
  const int port = server.start(0);  // ephemeral
  ASSERT_GT(port, 0);
  std::thread serving([&server] { server.serve(); });

  {
    TcpClient client(port);
    ASSERT_TRUE(client.connected());
    const Instance instance = generate_mixed(small_params(40), 0.5);
    client.send(solve_line(instance, 1));
    client.send(solve_line(instance, 2));  // cache hit
    client.send("{\"type\":\"stats\",\"id\":\"s\"}\n");
    client.send("{\"type\":\"shutdown\",\"id\":\"bye\"}\n");
    const std::vector<std::string> lines = client.read_lines(4);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos) << lines[0];
    // Identical payloads modulo the echoed id ({"id":1, vs {"id":2,).
    ASSERT_GT(lines[0].size(), 8u);
    ASSERT_GT(lines[1].size(), 8u);
    EXPECT_EQ(lines[0].substr(8), lines[1].substr(8))
        << "duplicate response differs";
    EXPECT_NE(lines[2].find("\"cache_hits\":1"), std::string::npos) << lines[2];
    EXPECT_NE(lines[3].find("\"op\":\"shutdown\""), std::string::npos);
  }

  serving.join();  // the shutdown request stopped the accept loop
  service.shutdown(/*drain=*/true);
  EXPECT_EQ(service.stats().cache_hits, 1);
}

// -------------------------------------------------------------- loadgen --

TEST(LoadGen, PoissonArrivalsArePerConnectionStreams) {
  LoadGenOptions options;
  options.pacing = LoadGenOptions::Pacing::kPoisson;
  options.rate = 50'000.0;
  options.requests = 64;
  options.seed = 9;

  // Regression: the old generator drew every gap from one global RNG, so
  // the connection count had no effect on the arrival schedule and each
  // connection's process was a correlated slice of the same stream. With
  // per-connection seeding the count is part of the draw.
  options.connections = 1;
  const std::vector<std::int64_t> one = build_arrival_offsets(options);
  options.connections = 2;
  const std::vector<std::int64_t> two = build_arrival_offsets(options);
  ASSERT_EQ(one.size(), two.size());
  EXPECT_NE(one, two);

  // Deterministic per seed; a different seed moves the schedule.
  EXPECT_EQ(two, build_arrival_offsets(options));
  options.seed = 10;
  EXPECT_NE(two, build_arrival_offsets(options));
  options.seed = 9;

  // The two connections see different schedules: their gap sequences are
  // independent streams, each nondecreasing in its own send order.
  std::vector<std::int64_t> gaps[2];
  std::int64_t last[2] = {0, 0};
  for (std::size_t i = 0; i < two.size(); ++i) {
    const std::size_t c = i % 2;
    EXPECT_GE(two[i], last[c]) << "connection " << c << " regressed at " << i;
    gaps[c].push_back(two[i] - last[c]);
    last[c] = two[i];
  }
  EXPECT_NE(gaps[0], gaps[1]);
}

TEST(LoadGen, FixedPacingAndFloodAreUnchanged) {
  LoadGenOptions options;
  options.connections = 4;
  options.requests = 10;
  options.rate = 0.0;  // flood: everything at t0
  EXPECT_EQ(build_arrival_offsets(options),
            std::vector<std::int64_t>(10, 0));

  options.rate = 1000.0;  // 1ms spacing, globally monotone
  options.pacing = LoadGenOptions::Pacing::kFixed;
  const std::vector<std::int64_t> fixed = build_arrival_offsets(options);
  ASSERT_EQ(fixed.size(), 10u);
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    EXPECT_EQ(fixed[i], static_cast<std::int64_t>(i + 1) * 1'000'000);
  }
}

}  // namespace
}  // namespace calisched

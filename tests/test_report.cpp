// Tests for the ASCII renderers and the paper-figure fixtures.
#include <gtest/gtest.h>

#include "gen/paper_figures.hpp"
#include "report/ascii_gantt.hpp"
#include "report/stats.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

TEST(PaperFigures, Figure1FixtureIsFeasibleIse) {
  const Instance instance = figure1_instance();
  EXPECT_FALSE(instance.validate().has_value());
  const Schedule schedule = figure1_ise_schedule();
  const VerifyResult check = verify_ise(instance, schedule);
  EXPECT_TRUE(check.ok()) << check.to_string();
  // All jobs are long, as Section 3 requires.
  for (const Job& job : instance.jobs) {
    EXPECT_TRUE(job.is_long(instance.T)) << "job " << job.id;
  }
}

TEST(PaperFigures, Figure1ViolatesTiseAsDrawn) {
  // Jobs 1 and 5 (deadline inside the calibration) and job 7 (release
  // after the calibration start) make the schedule TISE-infeasible.
  const Instance instance = figure1_instance();
  const Schedule schedule = figure1_ise_schedule();
  const VerifyResult check = verify_tise(instance, schedule);
  EXPECT_EQ(check.violations.size(), 3u) << check.to_string();
}

TEST(PaperFigures, Figure2ProfileShape) {
  const FractionalProfile profile = figure2_profile();
  ASSERT_EQ(profile.points.size(), profile.mass.size());
  ASSERT_EQ(profile.points.size(), 4u);
  double total = 0.0;
  for (const double m : profile.mass) total += m;
  EXPECT_NEAR(total, 1.6, 1e-12);
}

TEST(RenderWindows, ShowsEveryJob) {
  const Instance instance = figure1_instance();
  const std::string text = render_windows(instance);
  for (const Job& job : instance.jobs) {
    EXPECT_NE(text.find("job " + std::to_string(job.id)), std::string::npos);
  }
  EXPECT_NE(text.find('|'), std::string::npos);
}

TEST(RenderWindows, EmptyInstance) {
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  EXPECT_EQ(render_windows(instance), "(no jobs)\n");
}

TEST(RenderSchedule, ShowsCalibrationsAndJobs) {
  const Instance instance = figure1_instance();
  const Schedule schedule = figure1_ise_schedule();
  const std::string text = render_schedule(instance, schedule);
  EXPECT_NE(text.find("m0 cal"), std::string::npos);
  EXPECT_NE(text.find("m0 jobs"), std::string::npos);
  EXPECT_NE(text.find('['), std::string::npos);
  EXPECT_NE(text.find('7'), std::string::npos);  // job glyph
}

TEST(RenderSchedule, EmptySchedule) {
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  Schedule schedule = Schedule::empty_like(instance, 1);
  EXPECT_EQ(render_schedule(instance, schedule), "(empty schedule)\n");
}

TEST(RenderSchedule, TickDenominatedNote) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 5}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.time_denominator = 4;
  schedule.speed = 4;
  schedule.calibrations = {{0, 0}};
  schedule.jobs = {{0, 0, 0}};
  const std::string text = render_schedule(instance, schedule);
  EXPECT_NE(text.find("4 ticks per time unit"), std::string::npos);
}

TEST(RenderSchedule, WideSpanIsCompressed) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 5}, {1, 990, 1010, 5}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.calibrations = {{0, 0}, {0, 990}};
  schedule.jobs = {{0, 0, 0}, {1, 0, 990}};
  RenderOptions options;
  options.max_width = 80;
  const std::string text = render_schedule(instance, schedule, options);
  EXPECT_NE(text.find("1 column ="), std::string::npos);
  // No line should be drastically wider than the requested width.
  std::size_t longest = 0;
  std::size_t line_start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      longest = std::max(longest, i - line_start);
      line_start = i + 1;
    }
  }
  EXPECT_LE(longest, 110u);
}

TEST(ScheduleStats, Figure1Numbers) {
  const Instance instance = figure1_instance();
  const Schedule schedule = figure1_ise_schedule();
  const ScheduleStats stats = compute_stats(instance, schedule);
  EXPECT_EQ(stats.calibrations, 2u);
  EXPECT_EQ(stats.machines_used, 1);
  EXPECT_EQ(stats.calibrated_ticks, 20);
  EXPECT_EQ(stats.busy_ticks, 20);  // jobs fill both calibrations exactly
  EXPECT_DOUBLE_EQ(stats.utilization, 1.0);
  EXPECT_EQ(stats.span_ticks, 20);
  EXPECT_EQ(stats.max_calibrations_per_machine, 2u);
}

TEST(ScheduleStats, EmptySchedule) {
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  const Schedule schedule = Schedule::empty_like(instance, 1);
  const ScheduleStats stats = compute_stats(instance, schedule);
  EXPECT_EQ(stats.calibrations, 0u);
  EXPECT_EQ(stats.utilization, 0.0);
  EXPECT_EQ(stats.span_ticks, 0);
}

TEST(ScheduleStats, SpeedAwareTicks) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 5}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.time_denominator = 4;
  schedule.speed = 4;
  schedule.calibrations = {{0, 0}};
  schedule.jobs = {{0, 0, 0}};
  const ScheduleStats stats = compute_stats(instance, schedule);
  EXPECT_EQ(stats.calibrated_ticks, 40);
  EXPECT_EQ(stats.busy_ticks, 5);
  EXPECT_DOUBLE_EQ(stats.utilization, 0.125);
}

}  // namespace
}  // namespace calisched

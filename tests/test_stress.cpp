// Randomized stress and differential tests.
//
//  * Fuzz: every solver output across families/parameters passes the
//    independent verifier and respects certified lower bounds.
//  * Differential: on tiny instances the pipelines never beat the exact
//    optimum, and the exact optimum never beats the per-job count.
//  * Simplex-vs-brute-force: for small LPs, enumerate all basic points
//    (vertices) by solving every square subsystem and compare the optimum
//    against the simplex result.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "baselines/baseline.hpp"
#include "baselines/exact_ise.hpp"
#include "baselines/ise_lp_bound.hpp"
#include "gen/generators.hpp"
#include "lp/simplex.hpp"
#include "solver/ise_solver.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

TEST(Stress, SolverFuzzAcrossFamilies) {
  int solved = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (const int family : {0, 1, 2, 3, 4}) {
      GenParams params;
      params.seed = seed * 31 + family;
      params.n = 6 + static_cast<int>((seed * 7 + family) % 14);
      params.T = 4 + static_cast<Time>(seed % 9);
      params.machines = 1 + static_cast<int>(seed % 3);
      params.horizon = (6 + static_cast<Time>(seed % 10)) * params.T;
      params.max_proc = params.T;
      Instance instance;
      switch (family) {
        case 0: instance = generate_long_window(params); break;
        case 1: instance = generate_short_window(params); break;
        case 2: instance = generate_mixed(params, 0.3 + 0.05 * (seed % 8)); break;
        case 3: instance = generate_unit(params, 2 * params.T - 1); break;
        default:
          instance = generate_clustered(params, 2 + static_cast<int>(seed % 3),
                                        params.T, (seed % 2) == 0);
      }
      ASSERT_FALSE(instance.validate().has_value())
          << "family " << family << " seed " << seed;
      const IseSolveResult result = solve_ise(instance);
      ASSERT_TRUE(result.feasible)
          << "family " << family << " seed " << seed << ": " << result.error;
      const VerifyResult check = verify_ise(instance, result.schedule);
      ASSERT_TRUE(check.ok()) << "family " << family << " seed " << seed << "\n"
                              << check.to_string();
      ++solved;
    }
  }
  EXPECT_EQ(solved, 60);
}

TEST(Stress, OptimizedSolverFuzz) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 12;
    params.T = 10;
    params.machines = 2;
    params.horizon = 12 * params.T;
    params.max_proc = 9;
    const Instance instance = generate_mixed(params, 0.5);
    IseSolverOptions options;
    options.long_window.adaptive_mirror = true;
    options.long_window.prune_empty_calibrations = true;
    options.short_window.trim_unused_calibrations = true;
    options.short_window.relaxed_calibrations = true;
    const IseSolveResult result = solve_ise(instance, options);
    ASSERT_TRUE(result.feasible) << "seed " << seed << ": " << result.error;
    const VerifyResult check =
        verify_ise(instance, result.schedule, /*require_tise=*/false,
                   CalibrationPolicy::kOverlapAllowed);
    ASSERT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
  }
}

TEST(Stress, PipelineNeverBeatsExactOptimum) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 5;
    params.T = 6;
    params.machines = 2;
    params.horizon = 30;
    params.max_proc = 5;
    const Instance instance = generate_mixed(params, 0.5);
    const ExactIseResult exact = solve_exact_ise(instance);
    if (!exact.solved || !exact.feasible) continue;
    const IseSolveResult pipeline = solve_ise(instance);
    if (!pipeline.feasible) continue;
    EXPECT_GE(pipeline.total_calibrations, exact.optimal_calibrations)
        << "seed " << seed;
    // Exact never beats the trivial per-job count.
    EXPECT_LE(exact.optimal_calibrations, instance.size()) << "seed " << seed;
    // And respects the certified LP bound.
    EXPECT_GE(static_cast<std::int64_t>(exact.optimal_calibrations),
              ise_certified_bound(instance))
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Metamorphic invariances of the solver.
// ---------------------------------------------------------------------------

TEST(Metamorphic, TimeTranslationInvariance) {
  // Shifting every release and deadline by a constant shifts the schedule
  // and changes nothing else (the model has no absolute origin).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 12;
    params.T = 10;
    params.machines = 2;
    params.horizon = 90;
    params.max_proc = 9;
    const Instance base = generate_mixed(params, 0.5);
    Instance shifted = base;
    const Time delta = 100000;
    for (Job& job : shifted.jobs) {
      job.release += delta;
      job.deadline += delta;
    }
    const IseSolveResult a = solve_ise(base);
    const IseSolveResult b = solve_ise(shifted);
    ASSERT_TRUE(a.feasible && b.feasible) << "seed " << seed;
    EXPECT_EQ(a.total_calibrations, b.total_calibrations) << "seed " << seed;
    ASSERT_EQ(a.schedule.calibrations.size(), b.schedule.calibrations.size());
    for (std::size_t c = 0; c < a.schedule.calibrations.size(); ++c) {
      EXPECT_EQ(a.schedule.calibrations[c].start + delta,
                b.schedule.calibrations[c].start)
          << "seed " << seed;
      EXPECT_EQ(a.schedule.calibrations[c].machine,
                b.schedule.calibrations[c].machine);
    }
  }
}

TEST(Metamorphic, TimeScalingInvariance) {
  // Multiplying r, d, p, and T by a constant scales the schedule: the
  // calibration count is unchanged.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 10;
    params.T = 8;
    params.machines = 2;
    params.horizon = 64;
    params.max_proc = 7;
    const Instance base = generate_mixed(params, 0.5);
    Instance scaled = base;
    const Time k = 5;
    scaled.T *= k;
    for (Job& job : scaled.jobs) {
      job.release *= k;
      job.deadline *= k;
      job.proc *= k;
    }
    const IseSolveResult a = solve_ise(base);
    const IseSolveResult b = solve_ise(scaled);
    ASSERT_TRUE(a.feasible && b.feasible) << "seed " << seed;
    EXPECT_EQ(a.total_calibrations, b.total_calibrations) << "seed " << seed;
    EXPECT_TRUE(verify_ise(scaled, b.schedule).ok()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Simplex vs brute-force vertex enumeration.
// ---------------------------------------------------------------------------

/// Solves a square linear system by Gaussian elimination with partial
/// pivoting; returns nullopt when singular.
std::optional<std::vector<double>> solve_square(std::vector<std::vector<double>> a,
                                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-9) return std::nullopt;
    std::swap(a[pivot], a[col]);
    std::swap(b[pivot], b[col]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[i] / a[i][i];
  return x;
}

/// Brute-force LP optimum: every vertex of {Ax <= / = / >= b, x >= 0} is
/// the solution of n tight constraints chosen among rows and axes.
std::optional<double> brute_force_lp(const LpModel& model) {
  const int n = model.num_variables();
  const int rows = model.num_rows();
  // Build dense row data including axis constraints x_i >= 0.
  struct DenseRow {
    std::vector<double> coefficients;
    double rhs;
  };
  std::vector<DenseRow> all;
  for (int r = 0; r < rows; ++r) {
    DenseRow row{std::vector<double>(static_cast<std::size_t>(n), 0.0),
                 model.rhs(r)};
    for (const LpEntry& entry : model.row_entries(r)) {
      row.coefficients[static_cast<std::size_t>(entry.column)] += entry.value;
    }
    all.push_back(std::move(row));
  }
  for (int v = 0; v < n; ++v) {
    DenseRow axis{std::vector<double>(static_cast<std::size_t>(n), 0.0), 0.0};
    axis.coefficients[static_cast<std::size_t>(v)] = 1.0;
    all.push_back(std::move(axis));
  }
  const auto total = static_cast<std::size_t>(all.size());
  std::optional<double> best;
  std::vector<std::size_t> choice;
  // Enumerate all n-subsets of `all` as tight constraints.
  const auto recurse = [&](auto&& self, std::size_t from) -> void {
    if (choice.size() == static_cast<std::size_t>(n)) {
      std::vector<std::vector<double>> a;
      std::vector<double> b;
      for (const std::size_t index : choice) {
        a.push_back(all[index].coefficients);
        b.push_back(all[index].rhs);
      }
      const auto x = solve_square(std::move(a), std::move(b));
      if (!x) return;
      if (model.max_violation(*x) > 1e-6) return;
      const double objective = model.objective_value(*x);
      if (!best || objective < *best - 1e-12) best = objective;
      return;
    }
    for (std::size_t index = from; index < total; ++index) {
      choice.push_back(index);
      self(self, index + 1);
      choice.pop_back();
    }
  };
  recurse(recurse, 0);
  return best;
}

TEST(Stress, SimplexMatchesBruteForceOnRandomLps) {
  Rng rng(808);
  int compared = 0;
  for (int trial = 0; trial < 30; ++trial) {
    LpModel model;
    const int vars = 2 + static_cast<int>(rng.index(3));   // 2..4
    const int rows = 2 + static_cast<int>(rng.index(4));   // 2..5
    for (int v = 0; v < vars; ++v) {
      model.add_variable("v" + std::to_string(v), rng.uniform_real(-1.0, 2.0));
    }
    // Cap every variable to keep the region bounded.
    for (int v = 0; v < vars; ++v) {
      const int row = model.add_row("cap" + std::to_string(v), RowSense::kLe,
                                    rng.uniform_real(1.0, 6.0));
      model.add_coefficient(row, v, 1.0);
    }
    for (int r = 0; r < rows; ++r) {
      const RowSense sense = rng.chance(0.5) ? RowSense::kLe : RowSense::kGe;
      const int row = model.add_row("r" + std::to_string(r), sense,
                                    rng.uniform_real(0.2, 4.0));
      for (int v = 0; v < vars; ++v) {
        model.add_coefficient(row, v, rng.uniform_real(0.1, 2.0));
      }
    }
    const LpSolution simplex = solve_lp(model);
    const auto reference = brute_force_lp(model);
    if (!reference) {
      EXPECT_EQ(simplex.status, LpStatus::kInfeasible) << "trial " << trial;
      continue;
    }
    ASSERT_EQ(simplex.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(simplex.objective, *reference, 1e-5) << "trial " << trial;
    ++compared;
  }
  EXPECT_GE(compared, 15);  // most random programs are feasible
}

}  // namespace
}  // namespace calisched

// Tests for the exact minimum-calibration reference solver, including the
// Lemma 2 trim-gap relation (exact TISE vs exact ISE) and the differential
// sweep that pins the state-space engine to the branch-and-bound oracle.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/baseline.hpp"
#include "baselines/calibration_bounds.hpp"
#include "baselines/exact_ise.hpp"
#include "exact/search_stats.hpp"
#include "gen/generators.hpp"
#include "mm/mm.hpp"
#include "runtime/registry.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

TEST(ExactIse, TwoShareableJobsNeedOneCalibration) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 4}, {1, 0, 20, 5}};
  const ExactIseResult result = solve_exact_ise(instance);
  ASSERT_TRUE(result.solved);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.optimal_calibrations, 1u);
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(ExactIse, FarApartJobsNeedTwoCalibrations) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 12, 4}, {1, 100, 112, 4}};
  const ExactIseResult result = solve_exact_ise(instance);
  ASSERT_TRUE(result.solved);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.optimal_calibrations, 2u);
}

TEST(ExactIse, WorkForcesExtraCalibrations) {
  // Work 18 in T=10 calibrations: at least 2, and 2 suffice back-to-back.
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 30, 9}, {1, 0, 30, 9}};
  const ExactIseResult result = solve_exact_ise(instance);
  ASSERT_TRUE(result.solved);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.optimal_calibrations, 2u);
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(ExactIse, MachineLimitCanForceInfeasibility) {
  // Three zero-slack same-time jobs on 2 machines: infeasible regardless
  // of calibrations.
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  instance.jobs = {{0, 0, 5, 5}, {1, 0, 5, 5}, {2, 0, 5, 5}};
  const ExactIseResult result = solve_exact_ise(instance);
  ASSERT_TRUE(result.solved);
  EXPECT_FALSE(result.feasible);
}

TEST(ExactIse, DelayingCalibrationIsSometimesOptimal) {
  // The paper's key structural point: it can be optimal to *delay*.
  // Job 0 runnable in [0, 12); job 1 only in [11, 23). A calibration at
  // time 0 cannot host job 1 ([0,10) ends before 11... and a second would
  // be needed), but one calibration at 11 hosts neither... The right
  // single-calibration choice is t = 8: covers [8, 18) - job 0 can run
  // [8, 12)? p=4: [8, 12) ok; job 1 runs [12, 16) ⊆ [11, 23). One
  // calibration total, but only if the solver delays past job 0's release.
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 12, 4}, {1, 11, 23, 4}};
  const ExactIseResult result = solve_exact_ise(instance);
  ASSERT_TRUE(result.solved);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.optimal_calibrations, 1u);
  ASSERT_EQ(result.schedule.calibrations.size(), 1u);
  EXPECT_GT(result.schedule.calibrations[0].start, 0);
}

TEST(ExactIse, RespectsLowerBound) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 5;
    params.T = 6;
    params.machines = 2;
    params.horizon = 30;
    params.max_proc = 5;
    const Instance instance = generate_mixed(params, 0.5);
    const ExactIseResult result = solve_exact_ise(instance);
    if (!result.solved || !result.feasible) continue;
    EXPECT_GE(static_cast<std::int64_t>(result.optimal_calibrations),
              calibration_lower_bound(instance))
        << "seed " << seed;
    EXPECT_TRUE(verify_ise(instance, result.schedule).ok()) << "seed " << seed;
  }
}

TEST(ExactIse, NeverBeatenByPerJobBaseline) {
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 4;
    params.T = 6;
    params.machines = 4;  // enough machines that per-job is feasible
    params.horizon = 25;
    params.max_proc = 4;
    const Instance instance = generate_mixed(params, 0.5);
    const ExactIseResult exact = solve_exact_ise(instance);
    ASSERT_TRUE(exact.solved) << "seed " << seed;
    if (!exact.feasible) continue;  // per-job may need more machines
    EXPECT_LE(exact.optimal_calibrations, instance.size()) << "seed " << seed;
  }
}

TEST(ExactIse, TiseOptimumAtLeastIseOptimum) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 4;
    params.T = 5;
    params.machines = 2;
    params.horizon = 30;
    params.max_proc = 4;
    const Instance instance = generate_long_window(params, 2, 4);
    const ExactIseResult ise = solve_exact_ise(instance);
    ExactIseOptions tise_options;
    tise_options.require_tise = true;
    const ExactIseResult tise = solve_exact_ise(instance, tise_options);
    ASSERT_TRUE(ise.solved && tise.solved) << "seed " << seed;
    ASSERT_TRUE(ise.feasible) << "seed " << seed;
    if (!tise.feasible) continue;
    EXPECT_GE(tise.optimal_calibrations, ise.optimal_calibrations)
        << "seed " << seed;
    EXPECT_TRUE(verify_tise(instance, tise.schedule).ok()) << "seed " << seed;
  }
}

TEST(ExactIse, Lemma2TrimGapWithinThreeX) {
  // Lemma 2: TISE on 3m machines needs <= 3x the ISE-optimal calibrations.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 4;
    params.T = 5;
    params.machines = 1;
    params.horizon = 25;
    params.max_proc = 4;
    const Instance instance = generate_long_window(params, 2, 4);
    const ExactIseResult ise = solve_exact_ise(instance);
    ASSERT_TRUE(ise.solved && ise.feasible) << "seed " << seed;

    Instance tripled = instance;
    tripled.machines = 3 * instance.machines;
    ExactIseOptions tise_options;
    tise_options.require_tise = true;
    const ExactIseResult tise = solve_exact_ise(tripled, tise_options);
    ASSERT_TRUE(tise.solved) << "seed " << seed;
    ASSERT_TRUE(tise.feasible) << "seed " << seed;
    EXPECT_LE(tise.optimal_calibrations, 3 * ise.optimal_calibrations)
        << "seed " << seed;
  }
}

TEST(ExactIse, BudgetExhaustionIsReported) {
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  for (JobId j = 0; j < 8; ++j) {
    instance.jobs.push_back({j, j * 3, j * 3 + 25, 6});
  }
  ExactIseOptions options;
  options.node_budget = 50;
  const ExactIseResult result = solve_exact_ise(instance, options);
  EXPECT_FALSE(result.solved);
}

TEST(ExactIse, EmptyInstance) {
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  const ExactIseResult result = solve_exact_ise(instance);
  EXPECT_TRUE(result.solved);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.optimal_calibrations, 0u);
}

// ---------------------------------------------------- differential sweep --

/// Small instances from every generator family the exact engines accept
/// (the calib-cost families carry a type table, which neither exact ISE
/// engine models). 34 seeds x 6 families = 204 instances.
std::vector<Instance> differential_instances() {
  std::vector<Instance> instances;
  for (std::uint64_t seed = 1; seed <= 34; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 4 + static_cast<int>(seed % 3);
    params.T = 6;
    params.machines = 1 + static_cast<int>(seed % 2);
    params.horizon = 30;
    params.max_proc = 5;
    instances.push_back(generate_mixed(params, 0.5));
    instances.push_back(generate_long_window(params, 2, 4));
    instances.push_back(generate_short_window(params));
    instances.push_back(generate_unit(params, 8));
    instances.push_back(generate_clustered(params, 2, params.T, seed % 2 == 0));
    instances.push_back(generate_partition_adversarial(seed, 2, 4));
  }
  return instances;
}

TEST(ExactDifferential, IseEnginesAgreeAcrossGeneratorFamilies) {
  const std::vector<Instance> instances = differential_instances();
  ASSERT_GE(instances.size(), 200u);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Instance& instance = instances[i];
    ExactIseOptions state_options;
    state_options.engine = ExactEngine::kStateSpace;
    ExactIseOptions bnb_options;
    bnb_options.engine = ExactEngine::kBranchBound;
    const ExactIseResult state = solve_exact_ise(instance, state_options);
    const ExactIseResult bnb = solve_exact_ise(instance, bnb_options);
    ASSERT_TRUE(state.solved) << "instance " << i;
    ASSERT_TRUE(bnb.solved) << "instance " << i;
    ASSERT_EQ(state.feasible, bnb.feasible) << "instance " << i;
    if (!state.feasible) continue;
    EXPECT_EQ(state.optimal_calibrations, bnb.optimal_calibrations)
        << "instance " << i;
    EXPECT_TRUE(verify_ise(instance, state.schedule).ok()) << "instance " << i;
    EXPECT_TRUE(verify_ise(instance, bnb.schedule).ok()) << "instance " << i;
  }
}

TEST(ExactDifferential, MmEnginesAgreeAcrossGeneratorFamilies) {
  const std::vector<Instance> instances = differential_instances();
  ASSERT_GE(instances.size(), 200u);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Instance& instance = instances[i];
    for (int machines = 1; machines <= 3; ++machines) {
      const MMFeasibility state = exact_mm_feasibility(
          instance, machines, ExactEngine::kStateSpace);
      const MMFeasibility bnb = exact_mm_feasibility(
          instance, machines, ExactEngine::kBranchBound);
      ASSERT_EQ(state.status, SolveStatus::kOk)
          << "instance " << i << ", m=" << machines;
      ASSERT_EQ(bnb.status, SolveStatus::kOk)
          << "instance " << i << ", m=" << machines;
      EXPECT_EQ(state.feasible, bnb.feasible)
          << "instance " << i << ", m=" << machines;
      if (state.feasible) {
        Instance copy = instance;
        copy.machines = machines;
        EXPECT_TRUE(verify_mm(copy, state.schedule).ok())
            << "instance " << i << ", m=" << machines;
      }
    }
  }
}

// ---------------------------------------------------------------- pruning --

TEST(ExactStateSpace, DominanceAndMergingPruneTheLayeredGraph) {
  // Interchangeable jobs reach identical states along every placement
  // order (merges), and staggered windows leave strictly-worse frontiers
  // behind (dominance kills them). Without both, the layered graph would
  // revisit each permutation the way the DFS does.
  Instance instance;
  instance.machines = 2;
  instance.T = 8;
  for (JobId j = 0; j < 7; ++j) {
    instance.jobs.push_back({j, j * 2, j * 2 + 16, 3});
  }
  exact_search_reset();
  ExactIseOptions options;
  options.engine = ExactEngine::kStateSpace;
  const ExactIseResult result = solve_exact_ise(instance, options);
  const ExactSearchCounters counters = exact_search_snapshot();
  ASSERT_TRUE(result.solved);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());

  // Same optimum as the oracle, reached with a collapsed graph.
  ExactIseOptions bnb_options;
  bnb_options.engine = ExactEngine::kBranchBound;
  const ExactIseResult oracle = solve_exact_ise(instance, bnb_options);
  ASSERT_TRUE(oracle.solved && oracle.feasible);
  EXPECT_EQ(result.optimal_calibrations, oracle.optimal_calibrations);

  EXPECT_GE(counters.searches, 1);
  EXPECT_GT(counters.states_merged, 0);
  EXPECT_GT(counters.states_dominated, 0);
  EXPECT_LT(counters.states_expanded, counters.states_created);
  EXPECT_GT(counters.layers, 0);
}

// -------------------------------------------------------- budget statuses --

TEST(ExactIse, BudgetOneNeverReportsInfeasible) {
  // A feasible two-job instance under a starvation budget: both engines
  // must say "stopped", never "infeasible" — conflating the two would turn
  // a resource artifact into a wrong verdict.
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 4}, {1, 0, 20, 5}};
  for (const ExactEngine engine :
       {ExactEngine::kStateSpace, ExactEngine::kBranchBound}) {
    ExactIseOptions options;
    options.engine = engine;
    options.node_budget = 1;
    const ExactIseResult result = solve_exact_ise(instance, options);
    EXPECT_FALSE(result.solved) << to_string(engine);
    EXPECT_FALSE(result.feasible) << to_string(engine);
    EXPECT_EQ(result.status, SolveStatus::kLimitExceeded) << to_string(engine);
  }
}

TEST(ExactIse, RegistryBudgetOneSurfacesLimitNotInfeasible) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 4}, {1, 0, 20, 5}};
  RunLimits limits;
  limits.node_budget = 1;
  for (const char* name : {"exact-ise", "exact-ise-bnb"}) {
    const Algorithm* algorithm = AlgorithmRegistry::builtin().find(name);
    ASSERT_NE(algorithm, nullptr) << name;
    const RunResult result = algorithm->run(instance, limits, nullptr);
    EXPECT_FALSE(result.feasible) << name;
    EXPECT_EQ(result.status, SolveStatus::kLimitExceeded) << name;
  }
  // The MM adapter instead degrades to its greedy fallback: still feasible,
  // and still never "infeasible because the budget ran out".
  const Algorithm* mm = AlgorithmRegistry::builtin().find("mm-exact");
  ASSERT_NE(mm, nullptr);
  const RunResult fallback = mm->run(instance, limits, nullptr);
  EXPECT_TRUE(fallback.feasible);
  EXPECT_EQ(fallback.status, SolveStatus::kOk);
}

}  // namespace
}  // namespace calisched

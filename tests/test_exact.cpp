// Tests for the exact minimum-calibration reference solver, including the
// Lemma 2 trim-gap relation (exact TISE vs exact ISE).
#include <gtest/gtest.h>

#include "baselines/baseline.hpp"
#include "baselines/calibration_bounds.hpp"
#include "baselines/exact_ise.hpp"
#include "gen/generators.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

TEST(ExactIse, TwoShareableJobsNeedOneCalibration) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 4}, {1, 0, 20, 5}};
  const ExactIseResult result = solve_exact_ise(instance);
  ASSERT_TRUE(result.solved);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.optimal_calibrations, 1u);
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(ExactIse, FarApartJobsNeedTwoCalibrations) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 12, 4}, {1, 100, 112, 4}};
  const ExactIseResult result = solve_exact_ise(instance);
  ASSERT_TRUE(result.solved);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.optimal_calibrations, 2u);
}

TEST(ExactIse, WorkForcesExtraCalibrations) {
  // Work 18 in T=10 calibrations: at least 2, and 2 suffice back-to-back.
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 30, 9}, {1, 0, 30, 9}};
  const ExactIseResult result = solve_exact_ise(instance);
  ASSERT_TRUE(result.solved);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.optimal_calibrations, 2u);
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(ExactIse, MachineLimitCanForceInfeasibility) {
  // Three zero-slack same-time jobs on 2 machines: infeasible regardless
  // of calibrations.
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  instance.jobs = {{0, 0, 5, 5}, {1, 0, 5, 5}, {2, 0, 5, 5}};
  const ExactIseResult result = solve_exact_ise(instance);
  ASSERT_TRUE(result.solved);
  EXPECT_FALSE(result.feasible);
}

TEST(ExactIse, DelayingCalibrationIsSometimesOptimal) {
  // The paper's key structural point: it can be optimal to *delay*.
  // Job 0 runnable in [0, 12); job 1 only in [11, 23). A calibration at
  // time 0 cannot host job 1 ([0,10) ends before 11... and a second would
  // be needed), but one calibration at 11 hosts neither... The right
  // single-calibration choice is t = 8: covers [8, 18) - job 0 can run
  // [8, 12)? p=4: [8, 12) ok; job 1 runs [12, 16) ⊆ [11, 23). One
  // calibration total, but only if the solver delays past job 0's release.
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 12, 4}, {1, 11, 23, 4}};
  const ExactIseResult result = solve_exact_ise(instance);
  ASSERT_TRUE(result.solved);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.optimal_calibrations, 1u);
  ASSERT_EQ(result.schedule.calibrations.size(), 1u);
  EXPECT_GT(result.schedule.calibrations[0].start, 0);
}

TEST(ExactIse, RespectsLowerBound) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 5;
    params.T = 6;
    params.machines = 2;
    params.horizon = 30;
    params.max_proc = 5;
    const Instance instance = generate_mixed(params, 0.5);
    const ExactIseResult result = solve_exact_ise(instance);
    if (!result.solved || !result.feasible) continue;
    EXPECT_GE(static_cast<std::int64_t>(result.optimal_calibrations),
              calibration_lower_bound(instance))
        << "seed " << seed;
    EXPECT_TRUE(verify_ise(instance, result.schedule).ok()) << "seed " << seed;
  }
}

TEST(ExactIse, NeverBeatenByPerJobBaseline) {
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 4;
    params.T = 6;
    params.machines = 4;  // enough machines that per-job is feasible
    params.horizon = 25;
    params.max_proc = 4;
    const Instance instance = generate_mixed(params, 0.5);
    const ExactIseResult exact = solve_exact_ise(instance);
    ASSERT_TRUE(exact.solved) << "seed " << seed;
    if (!exact.feasible) continue;  // per-job may need more machines
    EXPECT_LE(exact.optimal_calibrations, instance.size()) << "seed " << seed;
  }
}

TEST(ExactIse, TiseOptimumAtLeastIseOptimum) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 4;
    params.T = 5;
    params.machines = 2;
    params.horizon = 30;
    params.max_proc = 4;
    const Instance instance = generate_long_window(params, 2, 4);
    const ExactIseResult ise = solve_exact_ise(instance);
    ExactIseOptions tise_options;
    tise_options.require_tise = true;
    const ExactIseResult tise = solve_exact_ise(instance, tise_options);
    ASSERT_TRUE(ise.solved && tise.solved) << "seed " << seed;
    ASSERT_TRUE(ise.feasible) << "seed " << seed;
    if (!tise.feasible) continue;
    EXPECT_GE(tise.optimal_calibrations, ise.optimal_calibrations)
        << "seed " << seed;
    EXPECT_TRUE(verify_tise(instance, tise.schedule).ok()) << "seed " << seed;
  }
}

TEST(ExactIse, Lemma2TrimGapWithinThreeX) {
  // Lemma 2: TISE on 3m machines needs <= 3x the ISE-optimal calibrations.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GenParams params;
    params.seed = seed;
    params.n = 4;
    params.T = 5;
    params.machines = 1;
    params.horizon = 25;
    params.max_proc = 4;
    const Instance instance = generate_long_window(params, 2, 4);
    const ExactIseResult ise = solve_exact_ise(instance);
    ASSERT_TRUE(ise.solved && ise.feasible) << "seed " << seed;

    Instance tripled = instance;
    tripled.machines = 3 * instance.machines;
    ExactIseOptions tise_options;
    tise_options.require_tise = true;
    const ExactIseResult tise = solve_exact_ise(tripled, tise_options);
    ASSERT_TRUE(tise.solved) << "seed " << seed;
    ASSERT_TRUE(tise.feasible) << "seed " << seed;
    EXPECT_LE(tise.optimal_calibrations, 3 * ise.optimal_calibrations)
        << "seed " << seed;
  }
}

TEST(ExactIse, BudgetExhaustionIsReported) {
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  for (JobId j = 0; j < 8; ++j) {
    instance.jobs.push_back({j, j * 3, j * 3 + 25, 6});
  }
  ExactIseOptions options;
  options.node_budget = 50;
  const ExactIseResult result = solve_exact_ise(instance, options);
  EXPECT_FALSE(result.solved);
}

TEST(ExactIse, EmptyInstance) {
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  const ExactIseResult result = solve_exact_ise(instance);
  EXPECT_TRUE(result.solved);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.optimal_calibrations, 0u);
}

}  // namespace
}  // namespace calisched

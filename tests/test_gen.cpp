// Property tests for the instance generators: every family produces
// well-formed instances with its advertised shape, deterministically.
#include <gtest/gtest.h>

#include "gen/generators.hpp"

namespace calisched {
namespace {

GenParams sweep_params(std::uint64_t seed) {
  GenParams params;
  params.seed = seed;
  params.n = 4 + static_cast<int>(seed % 20);
  params.T = 3 + static_cast<Time>(seed % 12);
  params.machines = 1 + static_cast<int>(seed % 4);
  params.horizon = (4 + static_cast<Time>(seed % 12)) * params.T;
  params.min_proc = 1;
  params.max_proc = params.T + 5;  // generator must clamp to T
  return params;
}

TEST(Generators, LongWindowShape) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const GenParams params = sweep_params(seed);
    const Instance instance = generate_long_window(params);
    EXPECT_FALSE(instance.validate().has_value()) << "seed " << seed;
    EXPECT_EQ(instance.size(), static_cast<std::size_t>(params.n));
    for (const Job& job : instance.jobs) {
      EXPECT_TRUE(job.is_long(instance.T)) << "seed " << seed;
      EXPECT_LE(job.window(), 6 * instance.T) << "seed " << seed;
      EXPECT_GE(job.release, 0);
      EXPECT_LE(job.proc, instance.T);
    }
  }
}

TEST(Generators, ShortWindowShape) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const GenParams params = sweep_params(seed);
    const Instance instance = generate_short_window(params);
    EXPECT_FALSE(instance.validate().has_value()) << "seed " << seed;
    for (const Job& job : instance.jobs) {
      EXPECT_FALSE(job.is_long(instance.T)) << "seed " << seed;
      EXPECT_GE(job.window(), job.proc);
    }
  }
}

TEST(Generators, ShortWindowSlackFloor) {
  GenParams params = sweep_params(5);
  params.T = 10;
  const Instance instance = generate_short_window(params, /*slack_min=*/3);
  for (const Job& job : instance.jobs) {
    // Window >= p + 3 unless clamped by the 2T - 1 ceiling.
    EXPECT_TRUE(job.window() >= job.proc + 3 ||
                job.window() == 2 * instance.T - 1)
        << "job " << job.id;
  }
}

TEST(Generators, MixedRespectsFractionExtremes) {
  GenParams params = sweep_params(7);
  const Instance all_long = generate_mixed(params, 1.0);
  for (const Job& job : all_long.jobs) {
    EXPECT_TRUE(job.is_long(all_long.T));
  }
  const Instance all_short = generate_mixed(params, 0.0);
  for (const Job& job : all_short.jobs) {
    EXPECT_FALSE(job.is_long(all_short.T));
  }
}

TEST(Generators, UnitJobsAreUnit) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate_unit(sweep_params(seed), 7);
    EXPECT_FALSE(instance.validate().has_value());
    for (const Job& job : instance.jobs) {
      EXPECT_EQ(job.proc, 1);
      EXPECT_LE(job.window(), 7);
    }
  }
}

TEST(Generators, PartitionAdversarialInvariants) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate_partition_adversarial(seed, 4, 7);
    EXPECT_FALSE(instance.validate().has_value());
    EXPECT_EQ(instance.machines, 2);
    EXPECT_EQ(instance.size(), 8u);
    EXPECT_EQ(instance.total_work(), 2 * instance.T);
    for (const Job& job : instance.jobs) {
      EXPECT_EQ(job.release, 0);
      EXPECT_EQ(job.deadline, instance.T);
    }
    // The mirrored construction means a perfect partition exists: the two
    // halves of the job list have equal work.
    Time first_half = 0;
    for (std::size_t j = 0; j < instance.size() / 2; ++j) {
      first_half += instance.jobs[j].proc;
    }
    EXPECT_EQ(first_half, instance.T);
  }
}

TEST(Generators, ClusteredShape) {
  for (const bool long_windows : {false, true}) {
    const Instance instance =
        generate_clustered(sweep_params(9), 3, 6, long_windows);
    EXPECT_FALSE(instance.validate().has_value());
    for (const Job& job : instance.jobs) {
      EXPECT_EQ(job.is_long(instance.T), long_windows);
      EXPECT_GE(job.release, 0);
    }
  }
}

TEST(Generators, DeterministicPerSeed) {
  for (std::uint64_t seed : {1ULL, 17ULL, 999ULL}) {
    const GenParams params = sweep_params(seed);
    const Instance a = generate_mixed(params, 0.4);
    const Instance b = generate_mixed(params, 0.4);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
      EXPECT_EQ(a.jobs[i], b.jobs[i]) << "seed " << seed;
    }
  }
}

TEST(Generators, ProcClampedToT) {
  GenParams params = sweep_params(3);
  params.min_proc = 50;
  params.max_proc = 100;
  params.T = 6;
  const Instance instance = generate_long_window(params);
  EXPECT_FALSE(instance.validate().has_value());
  for (const Job& job : instance.jobs) EXPECT_LE(job.proc, 6);
}

}  // namespace
}  // namespace calisched

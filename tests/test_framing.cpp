// Tests for the nonblocking serve path (src/service/): incremental NDJSON
// line framing, the sharded LRU result cache, and the epoll event-loop
// front end.
//
// The framing contracts pinned here:
//   * a request split across arbitrary read boundaries — one byte per
//     feed included — reassembles into exactly the getline lines;
//   * many requests arriving in one read all come out, in order;
//   * an oversized line is rejected deterministically, however the reads
//     were segmented, terminated or not;
//   * a final unterminated line at EOF is still a line (getline parity).
//
// The epoll contracts mirror tests/test_service.cpp's stdio/TCP suite:
// one response line per request, in request order, byte-identical to the
// stdio front end for the same script at any worker-thread count.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "gen/generators.hpp"
#include "service/epoll_server.hpp"
#include "service/framing.hpp"
#include "service/instance_hash.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "service/sharded_cache.hpp"

namespace calisched {
namespace {

// ------------------------------------------------------------- LineFramer --

std::vector<std::string> collect(LineFramer& framer, std::string_view data,
                                 LineFramer::FeedResult* result = nullptr) {
  std::vector<std::string> lines;
  const auto outcome = framer.feed(data, [&lines](std::string_view line) {
    lines.emplace_back(line);
    return true;
  });
  if (result != nullptr) *result = outcome;
  return lines;
}

TEST(LineFramer, MultipleLinesInOneFeed) {
  LineFramer framer(1024);
  const auto lines = collect(framer, "alpha\nbeta\n\ngamma\n");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "alpha");
  EXPECT_EQ(lines[1], "beta");
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(lines[3], "gamma");
  EXPECT_EQ(framer.buffered(), 0u);
  EXPECT_EQ(framer.lines_delivered(), 4);
}

TEST(LineFramer, ReassemblesAcrossEveryChunkSize) {
  // The same stream split at every granularity must produce the same
  // lines — this is the property the server relies on, since the kernel
  // chooses the read boundaries.
  const std::string stream = "first line\nsecond\nthird one here\nlast\n";
  std::vector<std::string> expected;
  {
    LineFramer whole(1024);
    expected = collect(whole, stream);
  }
  ASSERT_EQ(expected.size(), 4u);
  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    LineFramer framer(1024);
    std::vector<std::string> lines;
    for (std::size_t at = 0; at < stream.size(); at += chunk) {
      framer.feed(std::string_view(stream).substr(at, chunk),
                  [&lines](std::string_view line) {
                    lines.emplace_back(line);
                    return true;
                  });
    }
    EXPECT_EQ(lines, expected) << "chunk size " << chunk;
  }
}

TEST(LineFramer, StripsCarriageReturnLikeBlankFilter) {
  LineFramer framer(1024);
  const auto lines = collect(framer, "ping\r\npong\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "ping");
  EXPECT_EQ(lines[1], "pong");
}

TEST(LineFramer, FinishDeliversTrailingPartialLine) {
  LineFramer framer(1024);
  auto lines = collect(framer, "complete\ntail without newline");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(framer.buffered(), std::string("tail without newline").size());
  std::string tail;
  framer.finish([&tail](std::string_view line) {
    tail = std::string(line);
    return true;
  });
  EXPECT_EQ(tail, "tail without newline");
  EXPECT_EQ(framer.buffered(), 0u);
  // Idempotent: a second finish delivers nothing.
  framer.finish([](std::string_view) {
    ADD_FAILURE() << "finish delivered twice";
    return true;
  });
}

TEST(LineFramer, OversizedLineOverflowsRegardlessOfSegmentation) {
  const std::string giant(100, 'x');
  // Unterminated, one feed.
  {
    LineFramer framer(64);
    LineFramer::FeedResult result;
    collect(framer, giant, &result);
    EXPECT_EQ(result, LineFramer::FeedResult::kOverflow);
  }
  // Unterminated, fed byte-by-byte: overflow fires once the buffered
  // prefix passes the limit, long before any newline could arrive.
  {
    LineFramer framer(64);
    bool overflowed = false;
    for (const char character : giant) {
      LineFramer::FeedResult result;
      collect(framer, std::string_view(&character, 1), &result);
      if (result == LineFramer::FeedResult::kOverflow) {
        overflowed = true;
        break;
      }
    }
    EXPECT_TRUE(overflowed);
  }
  // Terminated in the same feed: still rejected — segmentation must not
  // decide whether a 100-byte line passes a 64-byte limit.
  {
    LineFramer framer(64);
    LineFramer::FeedResult result;
    const auto lines = collect(framer, giant + "\nafter\n", &result);
    EXPECT_EQ(result, LineFramer::FeedResult::kOverflow);
    EXPECT_TRUE(lines.empty());
  }
  // At EOF.
  {
    LineFramer framer(64);
    collect(framer, std::string(60, 'y'));
    EXPECT_EQ(framer.finish([](std::string_view) { return true; }),
              LineFramer::FeedResult::kOk);
    LineFramer other(64);
    // finish() on a buffer below the limit is fine; the feed-side cap
    // already rejected anything above it, so just pin the boundary.
    collect(other, std::string(64, 'y'));
    EXPECT_EQ(other.finish([](std::string_view) { return true; }),
              LineFramer::FeedResult::kOk);
  }
  // Exactly at the limit (terminator excluded): allowed.
  {
    LineFramer framer(64);
    LineFramer::FeedResult result;
    const auto lines = collect(framer, std::string(64, 'z') + "\n", &result);
    EXPECT_EQ(result, LineFramer::FeedResult::kOk);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].size(), 64u);
  }
}

TEST(LineFramer, SinkFalseStopsDeliveryAndDropsRemainder) {
  // The server's shutdown semantics: lines buffered after the stopping
  // line are never consumed (parity with the stdio reader, which stops
  // calling getline).
  LineFramer framer(1024);
  std::vector<std::string> lines;
  framer.feed("one\nstop\nnever\n", [&lines](std::string_view line) {
    lines.emplace_back(line);
    return line != "stop";
  });
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "stop");
  EXPECT_EQ(framer.buffered(), 0u);
}

// ---------------------------------------------------------- ShardedCache --

TEST(ShardedCache, SingleShardKeepsLegacyEvictionOrder) {
  // shards=1 must behave exactly like the bare LruCache: one recency
  // list, capacity-wide eviction.
  ShardedLruCache<int, std::string> cache(2, 1);
  cache.put(1, 1, "a");
  cache.put(2, 2, "b");
  cache.put(3, 3, "c");  // evicts 1
  std::string value;
  EXPECT_FALSE(cache.get(1, 1, &value));
  ASSERT_TRUE(cache.get(2, 2, &value));
  EXPECT_EQ(value, "b");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedCache, RoutesOnHighHashBits) {
  // The shard index comes from the hash's top bits: distinct high
  // prefixes spread across shards (2 entries per shard here, well under
  // the per-shard budget of 4), so nothing evicts.
  ShardedLruCache<int, int> cache(16, 4);
  for (int i = 0; i < 8; ++i) {
    cache.put(static_cast<std::uint64_t>(i) << 48, i, i * 10);
  }
  for (int i = 0; i < 8; ++i) {
    int value = -1;
    ASSERT_TRUE(cache.get(static_cast<std::uint64_t>(i) << 48, i, &value));
    EXPECT_EQ(value, i * 10);
  }
  EXPECT_EQ(cache.size(), 8u);
}

TEST(ShardedCache, CapacitySplitsAcrossShards) {
  // Total capacity 8 over 4 shards = 2 per shard: a shard overflows
  // independently of its siblings.
  ShardedLruCache<int, int> cache(8, 4);
  // Three entries routed to one shard (same high bits) overflow it...
  const std::uint64_t shard_hash = 0x0001'0000'0000'0000ull;
  cache.put(shard_hash, 1, 1);
  cache.put(shard_hash, 2, 2);
  cache.put(shard_hash, 3, 3);
  int value = 0;
  EXPECT_FALSE(cache.get(shard_hash, 1, &value));  // evicted within shard
  EXPECT_TRUE(cache.get(shard_hash, 2, &value));
  EXPECT_TRUE(cache.get(shard_hash, 3, &value));
  // ...while other shards are untouched.
  cache.put(0x0002'0000'0000'0000ull, 9, 9);
  EXPECT_TRUE(cache.get(0x0002'0000'0000'0000ull, 9, &value));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(ShardedCache, DistinctKeysWithEqualHashCoexist) {
  // The hash only routes; the key decides identity (the service keys on
  // algorithm + hash + budget, so equal instance hashes collide here).
  ShardedLruCache<std::string, int> cache(8, 4);
  cache.put(42, "combined#x", 1);
  cache.put(42, "per-job#x", 2);
  int value = 0;
  ASSERT_TRUE(cache.get(42, "combined#x", &value));
  EXPECT_EQ(value, 1);
  ASSERT_TRUE(cache.get(42, "per-job#x", &value));
  EXPECT_EQ(value, 2);
}

// ------------------------------------------------------------ epoll serve --

GenParams small_params(std::uint64_t seed, int n = 10) {
  GenParams params;
  params.seed = seed;
  params.n = n;
  params.T = 8;
  params.machines = 2;
  params.horizon = 80;
  params.max_proc = 7;
  return params;
}

std::string solve_line(const Instance& instance, int id,
                       const std::string& algorithm = "combined") {
  JsonValue::Object request;
  request.emplace_back("type", JsonValue("solve"));
  request.emplace_back("id", JsonValue(std::int64_t{id}));
  request.emplace_back("algo", JsonValue(algorithm));
  request.emplace_back("instance", instance_to_json(instance));
  return JsonValue(std::move(request)).dump(0) + "\n";
}

class TcpClient {
 public:
  explicit TcpClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                           sizeof address) == 0;
  }
  ~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }

  void send(std::string_view text) {
    const char* data = text.data();
    std::size_t remaining = text.size();
    while (remaining > 0) {
      const ssize_t written = ::write(fd_, data, remaining);
      ASSERT_GT(written, 0);
      data += written;
      remaining -= static_cast<std::size_t>(written);
    }
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

  /// Hard abort: SO_LINGER(0) turns close() into an RST, the way a
  /// crashed or killed client looks to the server.
  void abort_close() {
    const linger opt{1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &opt, sizeof opt);
    ::close(fd_);
    fd_ = -1;
  }

  /// Reads until `lines` newline-terminated responses arrived (or EOF).
  [[nodiscard]] std::vector<std::string> read_lines(std::size_t lines) {
    std::vector<std::string> result;
    std::string current;
    char buffer[4096];
    while (result.size() < lines) {
      const ssize_t count = ::read(fd_, buffer, sizeof buffer);
      if (count <= 0) break;
      for (ssize_t i = 0; i < count; ++i) {
        if (buffer[i] == '\n') {
          result.push_back(current);
          current.clear();
        } else {
          current.push_back(buffer[i]);
        }
      }
    }
    return result;
  }

  /// Reads everything until the server closes the connection.
  [[nodiscard]] std::string read_all() {
    std::string all;
    char buffer[4096];
    for (;;) {
      const ssize_t count = ::read(fd_, buffer, sizeof buffer);
      if (count <= 0) break;
      all.append(buffer, static_cast<std::size_t>(count));
    }
    return all;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// One epoll server conversation: sends `input` in `chunk`-byte pieces,
/// half-closes, and returns the full response stream.
std::string epoll_script(const std::string& input, std::size_t threads,
                         std::size_t io_threads = 1, std::size_t chunk = 0) {
  ServiceOptions options;
  options.threads = threads;
  SolveService service(AlgorithmRegistry::builtin(), options);
  EpollServerOptions server_options;
  server_options.io_threads = io_threads;
  EpollServer server(service, server_options);
  const int port = server.start();
  EXPECT_GT(port, 0);
  std::string output;
  {
    TcpClient client(port);
    EXPECT_TRUE(client.connected());
    if (chunk == 0) {
      client.send(input);
    } else {
      for (std::size_t at = 0; at < input.size(); at += chunk) {
        client.send(std::string_view(input).substr(at, chunk));
      }
    }
    client.half_close();
    output = client.read_all();
  }
  server.stop();
  server.serve();
  service.shutdown(/*drain=*/true);
  return output;
}

std::string stdio_script(const std::string& input, std::size_t threads) {
  ServiceOptions options;
  options.threads = threads;
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(
      run_stdio_server(AlgorithmRegistry::builtin(), options, in, out, nullptr),
      0);
  return out.str();
}

std::string mixed_script(int* request_count = nullptr) {
  std::string input;
  int id = 0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    input += solve_line(generate_mixed(small_params(seed), 0.5), id++);
  }
  input += "{\"id\":100,\"type\":\"ping\"}\n";
  ++id;
  input += "not json\n";
  ++id;
  input += solve_line(generate_mixed(small_params(1), 0.5), id++);  // duplicate
  input += solve_line(generate_mixed(small_params(9), 0.5), id++, "nope");
  // No stats line here: a stats response embeds latency percentiles
  // (wall-clock), which would break byte-for-byte comparison.
  if (request_count != nullptr) *request_count = id;
  return input;
}

TEST(ServeEpoll, ByteIdenticalToStdioFrontEnd) {
  // The cross-front-end contract: one script, same bytes out of the epoll
  // TCP path and the stdio path, at any worker-thread count and any read
  // segmentation.
  int requests = 0;
  const std::string input = mixed_script(&requests);
  const std::string reference = stdio_script(input, 1);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(static_cast<int>(
                std::count(reference.begin(), reference.end(), '\n')),
            requests);
  EXPECT_EQ(reference, stdio_script(input, 4));
  EXPECT_EQ(reference, epoll_script(input, 1));
  EXPECT_EQ(reference, epoll_script(input, 4));
  EXPECT_EQ(reference, epoll_script(input, 4, /*io_threads=*/2));
}

TEST(ServeEpoll, RequestsSplitAcrossArbitraryReadBoundaries) {
  // Tiny chunks force every request to straddle many reads; 1-byte chunks
  // are the worst case. The response stream must not change.
  const std::string input = "{\"id\":1,\"type\":\"ping\"}\n" +
                            solve_line(generate_mixed(small_params(3), 0.5), 2) +
                            "{\"id\":3,\"type\":\"ping\"}\n";
  const std::string reference = stdio_script(input, 1);
  EXPECT_EQ(reference, epoll_script(input, 1, 1, /*chunk=*/1));
  EXPECT_EQ(reference, epoll_script(input, 1, 1, /*chunk=*/7));
  EXPECT_EQ(reference, epoll_script(input, 1, 1, /*chunk=*/64));
}

TEST(ServeEpoll, ManyRequestsInOneWrite) {
  // The opposite extreme: one write carrying the whole pipeline of
  // requests; every line is answered, in order.
  std::string input;
  for (int i = 0; i < 50; ++i) {
    input += "{\"id\":" + std::to_string(i) + ",\"type\":\"ping\"}\n";
  }
  const std::string output = epoll_script(input, 2);
  std::istringstream stream(output);
  std::string line;
  int expected = 0;
  while (std::getline(stream, line)) {
    EXPECT_NE(line.find("{\"id\":" + std::to_string(expected) + ","),
              std::string::npos)
        << line;
    ++expected;
  }
  EXPECT_EQ(expected, 50);
}

TEST(ServeEpoll, OversizedLineGetsErrorAndClose) {
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  EpollServerOptions server_options;
  server_options.max_line_bytes = 256;
  EpollServer server(service, server_options);
  const int port = server.start();
  {
    TcpClient client(port);
    ASSERT_TRUE(client.connected());
    client.send("{\"id\":1,\"type\":\"ping\"}\n");
    client.send(std::string(1024, 'x'));  // no newline needed to trip it
    const std::string output = client.read_all();  // server closes
    std::istringstream stream(output);
    std::vector<std::string> lines;
    for (std::string line; std::getline(stream, line);) lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u) << output;
    EXPECT_NE(lines[0].find("\"op\":\"ping\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"type\":\"error\""), std::string::npos);
    EXPECT_NE(lines[1].find("exceeds"), std::string::npos);
  }
  server.stop();
  server.serve();
  EXPECT_EQ(server.totals().overflows, 1);
  service.shutdown(/*drain=*/true);
}

TEST(ServeEpoll, StatsReportsTailPercentilesAndCacheHits) {
  const Instance instance = generate_mixed(small_params(40), 0.5);
  std::string input = solve_line(instance, 1);
  input += solve_line(instance, 2);  // duplicate: cache hit
  input += "{\"id\":3,\"type\":\"stats\"}\n";
  const std::string output = epoll_script(input, 1);
  EXPECT_NE(output.find("\"cache_hits\":1"), std::string::npos) << output;
  EXPECT_NE(output.find("\"latency_p99_ns\":"), std::string::npos) << output;
  EXPECT_NE(output.find("\"latency_p999_ns\":"), std::string::npos) << output;
}

TEST(ServeEpoll, ShutdownRequestStopsServerAndDropsLaterLines) {
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  EpollServer server(service);
  const int port = server.start();
  {
    TcpClient client(port);
    ASSERT_TRUE(client.connected());
    client.send("{\"id\":1,\"type\":\"ping\"}\n{\"id\":2,\"type\":\"shutdown\"}\n" +
                solve_line(generate_mixed(small_params(5), 0.5), 3));
    const std::string output = client.read_all();
    EXPECT_NE(output.find("\"op\":\"ping\""), std::string::npos);
    EXPECT_NE(output.find("\"op\":\"shutdown\""), std::string::npos);
    // The post-shutdown solve was never consumed: exactly two responses.
    EXPECT_EQ(std::count(output.begin(), output.end(), '\n'), 2);
  }
  server.serve();  // returns because the shutdown request stopped it
  const EpollServerTotals totals = server.totals();
  EXPECT_TRUE(totals.shutdown_requested);
  EXPECT_EQ(totals.lines, 2);
  service.shutdown(/*drain=*/true);
}

TEST(ServeEpoll, ConcurrentConnectionsAreIsolated) {
  ServiceOptions options;
  options.threads = 2;
  SolveService service(AlgorithmRegistry::builtin(), options);
  EpollServerOptions server_options;
  server_options.io_threads = 2;
  EpollServer server(service, server_options);
  const int port = server.start();
  {
    std::vector<std::unique_ptr<TcpClient>> clients;
    for (int i = 0; i < 8; ++i) {
      clients.push_back(std::make_unique<TcpClient>(port));
      ASSERT_TRUE(clients.back()->connected()) << i;
    }
    // Interleave sends; each connection's responses are still its own, in
    // its own order.
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 8; ++i) {
        const int id = i * 10 + round;
        clients[static_cast<std::size_t>(i)]->send(
            "{\"id\":" + std::to_string(id) + ",\"type\":\"ping\"}\n");
      }
    }
    for (int i = 0; i < 8; ++i) {
      const auto lines = clients[static_cast<std::size_t>(i)]->read_lines(3);
      ASSERT_EQ(lines.size(), 3u) << i;
      for (int round = 0; round < 3; ++round) {
        const int id = i * 10 + round;
        EXPECT_NE(lines[static_cast<std::size_t>(round)].find(
                      "{\"id\":" + std::to_string(id) + ","),
                  std::string::npos)
            << lines[static_cast<std::size_t>(round)];
      }
    }
  }
  server.stop();
  server.serve();
  EXPECT_EQ(server.totals().connections, 8);
  EXPECT_EQ(server.totals().lines, 24);
  service.shutdown(/*drain=*/true);
}

TEST(ServeEpoll, AbandonedPauseDoesNotWedgeTheService) {
  // A client pauses, submits a solve, and vanishes; connection teardown
  // resumes the service (stdio-parity), so the next client's solve runs.
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  EpollServer server(service);
  const int port = server.start();
  {
    TcpClient rude(port);
    ASSERT_TRUE(rude.connected());
    rude.send("{\"id\":1,\"type\":\"pause\"}\n" +
              solve_line(generate_mixed(small_params(6), 0.5), 2));
    const auto ack = rude.read_lines(1);
    ASSERT_EQ(ack.size(), 1u);
    EXPECT_NE(ack[0].find("\"op\":\"pause\""), std::string::npos);
  }  // disconnects with the pause held and a solve queued
  {
    TcpClient polite(port);
    ASSERT_TRUE(polite.connected());
    polite.send(solve_line(generate_mixed(small_params(7), 0.5), 1));
    const auto lines = polite.read_lines(1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos)
        << lines[0];
  }
  server.stop();
  server.serve();
  service.shutdown(/*drain=*/true);
  EXPECT_FALSE(service.stats().paused);
}

TEST(ServeEpoll, WatermarkDeferredBurstDrainsWithoutFurtherInput) {
  // Regression: a pipelined burst whose responses exceed the
  // write-high-watermark must fully drain while the client just waits —
  // no further read and no solve completion will ever arrive to re-pump,
  // so the event loop itself has to keep serializing deferred slots as
  // the backlog flushes.
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  EpollServerOptions server_options;
  server_options.write_high_watermark = 256;  // far below the burst
  EpollServer server(service, server_options);
  const int port = server.start();
  {
    TcpClient client(port);
    ASSERT_TRUE(client.connected());
    std::string burst;
    for (int i = 0; i < 300; ++i) {
      burst += "{\"id\":" + std::to_string(i) + ",\"type\":\"ping\"}\n";
    }
    client.send(burst);
    // Deliberately no half_close: the connection stays open, exactly the
    // shape that used to strand everything past the first watermark.
    const auto lines = client.read_lines(300);
    ASSERT_EQ(lines.size(), 300u);
    for (int i = 0; i < 300; ++i) {
      EXPECT_NE(lines[static_cast<std::size_t>(i)].find(
                    "{\"id\":" + std::to_string(i) + ","),
                std::string::npos)
          << lines[static_cast<std::size_t>(i)];
    }
  }
  server.stop();
  server.serve();
  service.shutdown(/*drain=*/true);
}

TEST(ServeEpoll, SlotBackpressureKeepsPipelinedSolvesLive) {
  // A client pipelines solves behind a held pause: the slot bound stops
  // the server from buffering its requests without limit, and — the
  // liveness half — reading must resume as the queue drains, so every
  // response still arrives, in order, once another connection resumes.
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  EpollServerOptions server_options;
  server_options.max_queued_slots = 4;  // trip on a 20-deep pipeline
  EpollServer server(service, server_options);
  const int port = server.start();
  {
    TcpClient pipeliner(port);
    ASSERT_TRUE(pipeliner.connected());
    pipeliner.send("{\"id\":0,\"type\":\"pause\"}\n");
    const auto ack = pipeliner.read_lines(1);  // pause definitely held
    ASSERT_EQ(ack.size(), 1u);
    EXPECT_NE(ack[0].find("\"op\":\"pause\""), std::string::npos);
    std::string burst;
    for (int id = 1; id <= 20; ++id) {
      // Distinct seeds: a cache hit would complete even while paused.
      burst += solve_line(generate_mixed(small_params(100 + id), 0.5), id);
    }
    pipeliner.send(burst);
    pipeliner.half_close();
    TcpClient releaser(port);
    ASSERT_TRUE(releaser.connected());
    releaser.send("{\"id\":99,\"type\":\"resume\"}\n");
    const auto resumed = releaser.read_lines(1);
    ASSERT_EQ(resumed.size(), 1u);
    const auto lines = pipeliner.read_lines(20);
    ASSERT_EQ(lines.size(), 20u);
    for (int id = 1; id <= 20; ++id) {
      EXPECT_NE(lines[static_cast<std::size_t>(id - 1)].find(
                    "{\"id\":" + std::to_string(id) + ","),
                std::string::npos)
          << lines[static_cast<std::size_t>(id - 1)];
    }
  }
  server.stop();
  server.serve();
  service.shutdown(/*drain=*/true);
}

TEST(ServeEpoll, AbortiveCloseReleasesAnAbandonedPause) {
  // A client holding the pause dies with an RST instead of a clean EOF —
  // the EPOLLERR/EPOLLHUP teardown must release the pause just like the
  // EOF path does, or the whole service wedges.
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  EpollServer server(service);
  const int port = server.start();
  {
    TcpClient rude(port);
    ASSERT_TRUE(rude.connected());
    rude.send("{\"id\":1,\"type\":\"pause\"}\n");
    const auto ack = rude.read_lines(1);
    ASSERT_EQ(ack.size(), 1u);
    EXPECT_NE(ack[0].find("\"op\":\"pause\""), std::string::npos);
    rude.send(solve_line(generate_mixed(small_params(8), 0.5), 2));
    rude.abort_close();
  }
  {
    TcpClient polite(port);
    ASSERT_TRUE(polite.connected());
    polite.send(solve_line(generate_mixed(small_params(9), 0.5), 1));
    const auto lines = polite.read_lines(1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos) << lines[0];
  }
  server.stop();
  server.serve();
  service.shutdown(/*drain=*/true);
  EXPECT_FALSE(service.stats().paused);
}

// ----------------------------------------------- service p99/p999 surface --

TEST(SolveServiceLatency, TailPercentilesPopulateAfterCompletions) {
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  const Instance instance = generate_mixed(small_params(50), 0.5);
  ServiceRequest request;
  request.type = RequestType::kSolve;
  request.instance = instance;
  for (int i = 0; i < 5; ++i) (void)service.submit(request)->wait();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.latency_samples, 5);
  EXPECT_GT(stats.latency_p50_ns, 0);
  EXPECT_GE(stats.latency_p99_ns, stats.latency_p50_ns);
  EXPECT_GE(stats.latency_p999_ns, stats.latency_p99_ns);
}

TEST(SolveServiceLatency, CacheHitFastPathCompletesSynchronously) {
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  const Instance instance = generate_mixed(small_params(51), 0.5);
  ServiceRequest request;
  request.type = RequestType::kSolve;
  request.instance = instance;
  (void)service.submit(request)->wait();
  service.pause();  // a hit must not need a worker
  auto hit = service.submit(request);
  EXPECT_TRUE(hit->ready());
  EXPECT_TRUE(hit->wait().feasible);
  service.resume();
  EXPECT_EQ(service.stats().cache_hits, 1);
}

// ------------------------------------------------ subscribe over epoll --

TEST(EpollServe, SubscribeStreamMatchesStdioFrontEnd) {
  // A subscribe session is front-end agnostic: the exact bytes the stdio
  // server writes for a conversation — ack, per-arrival deltas, an
  // interleaved solve result, the finalize result — must come back over a
  // TCP connection to the epoll front end too. Sessions run synchronously
  // on the reader/loop thread, so thread counts must not matter either.
  std::string input;
  input += "{\"type\":\"subscribe\",\"id\":1,\"machines\":2,\"T\":10}\n";
  input += "{\"type\":\"arrive\",\"id\":2,\"time\":0,"
           "\"jobs\":[[1,0,6,3],[2,0,8,3]]}\n";
  input += "{\"type\":\"solve\",\"id\":3,\"algo\":\"combined\",\"instance\":"
           "{\"machines\":1,\"T\":4,\"jobs\":[[0,0,4,2]]}}\n";
  input += "{\"type\":\"arrive\",\"id\":4,\"time\":5,\"jobs\":[[3,5,15,2]]}\n";
  input += "{\"type\":\"finalize\",\"id\":5,\"schedule\":true}\n";
  const std::string stdio_output = stdio_script(input, 2);
  EXPECT_NE(stdio_output.find("\"type\":\"delta\""), std::string::npos)
      << stdio_output;
  EXPECT_EQ(stdio_output, epoll_script(input, 2));
  // Byte-for-byte stable when the input dribbles in 7-byte chunks and the
  // pools are sized differently.
  EXPECT_EQ(stdio_output, epoll_script(input, 4, 2, 7));
}

TEST(SolveServiceLatency, OnReadyHookFiresOnceFromCompletion) {
  ServiceOptions options;
  options.threads = 1;
  SolveService service(AlgorithmRegistry::builtin(), options);
  const Instance instance = generate_mixed(small_params(52), 0.5);
  ServiceRequest request;
  request.type = RequestType::kSolve;
  request.instance = instance;
  std::atomic<int> fired{0};
  auto pending = service.submit(request);
  pending->on_ready([&fired] { fired.fetch_add(1); });
  (void)pending->wait();
  service.shutdown(/*drain=*/true);
  EXPECT_EQ(fired.load(), 1);
  // Registering after completion fires immediately (the event loop races
  // completion all the time).
  std::atomic<int> late{0};
  pending->on_ready([&late] { late.fetch_add(1); });
  EXPECT_EQ(late.load(), 1);
}

}  // namespace
}  // namespace calisched

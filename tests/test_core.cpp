// Unit tests for src/core: instance model, schedule container, Lemma 3 grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/calibration_points.hpp"
#include "core/schedule.hpp"
#include "core/schedule_io.hpp"
#include "gen/generators.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

Instance small_instance() {
  Instance instance;
  instance.machines = 2;
  instance.T = 10;
  instance.jobs = {
      {0, 0, 30, 5},
      {1, 5, 40, 10},
      {2, 12, 25, 3},
  };
  return instance;
}

TEST(Job, WindowAndSlack) {
  const Job job{0, 5, 25, 7};
  EXPECT_EQ(job.window(), 20);
  EXPECT_EQ(job.slack(), 13);
  EXPECT_EQ(job.latest_start(), 18);
}

TEST(Job, LongClassification) {
  EXPECT_TRUE((Job{0, 0, 20, 1}).is_long(10));   // window == 2T
  EXPECT_FALSE((Job{0, 0, 19, 1}).is_long(10));  // window < 2T
}

TEST(Instance, AggregatesAndValidate) {
  const Instance instance = small_instance();
  EXPECT_EQ(instance.min_release(), 0);
  EXPECT_EQ(instance.max_deadline(), 40);
  EXPECT_EQ(instance.total_work(), 18);
  EXPECT_FALSE(instance.validate().has_value());
}

TEST(Instance, ValidateRejectsBadData) {
  Instance instance = small_instance();
  instance.T = 1;
  EXPECT_TRUE(instance.validate().has_value());

  instance = small_instance();
  instance.jobs[0].proc = 11;  // > T
  EXPECT_TRUE(instance.validate().has_value());

  instance = small_instance();
  instance.jobs[1].deadline = instance.jobs[1].release;  // window < proc
  EXPECT_TRUE(instance.validate().has_value());

  instance = small_instance();
  instance.jobs[2].id = instance.jobs[0].id;  // duplicate id
  EXPECT_TRUE(instance.validate().has_value());

  instance = small_instance();
  instance.machines = 0;
  EXPECT_TRUE(instance.validate().has_value());
}

TEST(Instance, JobById) {
  const Instance instance = small_instance();
  EXPECT_EQ(instance.job_by_id(1).proc, 10);
}

TEST(Instance, SplitByWindowPartitions) {
  Instance instance = small_instance();  // T = 10
  // windows: 30 (long), 35 (long), 13 (short)
  const WindowSplit split = split_by_window(instance);
  EXPECT_EQ(split.long_jobs.size(), 2u);
  EXPECT_EQ(split.short_jobs.size(), 1u);
  EXPECT_EQ(split.short_jobs.jobs[0].id, 2);
  EXPECT_EQ(split.long_jobs.T, instance.T);
  EXPECT_EQ(split.long_jobs.machines, instance.machines);
}

TEST(Instance, IoRoundTrip) {
  const Instance instance = small_instance();
  std::stringstream buffer;
  write_instance(buffer, instance);
  const Instance parsed = read_instance(buffer);
  EXPECT_EQ(parsed.machines, instance.machines);
  EXPECT_EQ(parsed.T, instance.T);
  ASSERT_EQ(parsed.jobs.size(), instance.jobs.size());
  for (std::size_t i = 0; i < parsed.jobs.size(); ++i) {
    EXPECT_EQ(parsed.jobs[i], instance.jobs[i]);
  }
}

TEST(Instance, IoRejectsMalformed) {
  std::stringstream buffer("job 0 zero ten 1\n");
  EXPECT_THROW(read_instance(buffer), std::runtime_error);
  std::stringstream buffer2("frob 1\n");
  EXPECT_THROW(read_instance(buffer2), std::runtime_error);
}

TEST(Instance, IoSkipsComments) {
  std::stringstream buffer("# comment\nmachines 3\nT 5\n\njob 0 0 5 2\n");
  const Instance parsed = read_instance(buffer);
  EXPECT_EQ(parsed.machines, 3);
  EXPECT_EQ(parsed.jobs.size(), 1u);
}

TEST(Schedule, DurationTicks) {
  Schedule schedule;
  schedule.time_denominator = 6;
  schedule.speed = 3;
  EXPECT_EQ(schedule.job_duration_ticks(5), 10);
}

TEST(Schedule, MachinesUsedCountsDistinct) {
  Schedule schedule;
  schedule.machines = 5;
  schedule.calibrations = {{0, 0}, {0, 20}, {3, 0}};
  schedule.jobs = {{0, 3, 1}};
  EXPECT_EQ(schedule.machines_used(), 2);
}

TEST(Schedule, NormalizeSorts) {
  Schedule schedule;
  schedule.machines = 2;
  schedule.calibrations = {{1, 0}, {0, 10}, {0, 0}};
  schedule.jobs = {{2, 1, 5}, {1, 0, 2}};
  schedule.normalize();
  EXPECT_EQ(schedule.calibrations.front().machine, 0);
  EXPECT_EQ(schedule.calibrations.front().start, 0);
  EXPECT_EQ(schedule.jobs.front().job, 1);
}

TEST(Schedule, AppendDisjointOffsetsMachines) {
  Instance instance = small_instance();
  Schedule a = Schedule::empty_like(instance, 2);
  a.calibrations = {{0, 0}};
  Schedule b = Schedule::empty_like(instance, 3);
  b.calibrations = {{2, 5}};
  b.jobs = {{0, 1, 5}};
  a.append_disjoint(b, 2);
  EXPECT_EQ(a.machines, 5);
  EXPECT_EQ(a.calibrations[1].machine, 4);
  EXPECT_EQ(a.jobs[0].machine, 3);
}

TEST(Schedule, ScaleDenominatorRefinesTicks) {
  Instance instance = small_instance();
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.calibrations = {{0, 5}};
  schedule.jobs = {{0, 0, 7}};
  schedule.scale_denominator(4);
  EXPECT_EQ(schedule.time_denominator, 4);
  EXPECT_EQ(schedule.calibrations[0].start, 20);
  EXPECT_EQ(schedule.jobs[0].start, 28);
  EXPECT_EQ(schedule.calibration_ticks(), 40);
}

TEST(Schedule, ScaleSpeedShrinksJobs) {
  Instance instance = small_instance();
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.scale_denominator(2);
  schedule.scale_speed(2);
  EXPECT_EQ(schedule.speed, 2);
  // p = 6 at denominator 2, speed 2: 6 ticks.
  EXPECT_EQ(schedule.job_duration_ticks(6), 6);
}

TEST(Schedule, ScalingPreservesVerification) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 5}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.calibrations = {{0, 0}};
  schedule.jobs = {{0, 0, 3}};
  ASSERT_TRUE(verify_ise(instance, schedule).ok());
  schedule.scale_denominator(6);
  EXPECT_TRUE(verify_ise(instance, schedule).ok());
  schedule.scale_speed(3);  // faster machines: jobs only shrink
  EXPECT_TRUE(verify_ise(instance, schedule).ok());
}

TEST(Schedule, PruneEmptyCalibrationsKeepsHosts) {
  Instance instance = small_instance();
  Schedule schedule = Schedule::empty_like(instance, 2);
  schedule.calibrations = {{0, 0}, {0, 10}, {1, 0}};
  schedule.jobs = {{0, 0, 2}};  // job 0 (p=5) sits in [0, 10) on machine 0
  const std::size_t removed = schedule.prune_empty_calibrations(instance);
  EXPECT_EQ(removed, 2u);
  ASSERT_EQ(schedule.calibrations.size(), 1u);
  EXPECT_EQ(schedule.calibrations[0].machine, 0);
  EXPECT_EQ(schedule.calibrations[0].start, 0);
}

TEST(Schedule, PruneEmptyCalibrationsIsSpeedAware) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 20, 5}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.time_denominator = 4;
  schedule.speed = 4;  // job lasts 5 ticks; calibration lasts 40 ticks
  schedule.calibrations = {{0, 0}, {0, 40}};
  schedule.jobs = {{0, 0, 42}};  // [42, 47) sits in [40, 80), not [0, 40)
  EXPECT_EQ(schedule.prune_empty_calibrations(instance), 1u);
  ASSERT_EQ(schedule.calibrations.size(), 1u);
  EXPECT_EQ(schedule.calibrations[0].start, 40);
}

TEST(CalibrationModel, UnitTableIsTheDegenerateCase) {
  Instance instance = small_instance();
  EXPECT_TRUE(instance.is_unit_model());
  EXPECT_EQ(instance.effective_model(), CalibrationModel::unit(instance.T));
  EXPECT_EQ(instance.max_calibration_length(), instance.T);
  // The explicit {T, 1, 0} table is extensionally the same model.
  instance.cal = CalibrationModel::unit(instance.T);
  EXPECT_TRUE(instance.is_unit_model());
  EXPECT_FALSE(instance.validate().has_value());
  // Any other table is not.
  instance.cal.types.push_back({5, 3, 1});
  EXPECT_FALSE(instance.is_unit_model());
  EXPECT_EQ(instance.effective_model().max_span(), 10);
  EXPECT_EQ(instance.effective_model().min_cost(), 1);
}

TEST(CalibrationModel, ValidateRejectsBadTables) {
  Instance instance = small_instance();  // T = 10
  // A one-type unit-shaped table must agree with T.
  instance.cal.types = {{9, 1, 0}};
  ASSERT_TRUE(instance.validate().has_value());
  EXPECT_NE(instance.validate()->find("disagrees with T"), std::string::npos);

  instance.cal.types = {{10, 0, 0}};  // cost < 1
  EXPECT_TRUE(instance.validate().has_value());
  instance.cal.types = {{0, 1, 0}};  // length < 1
  EXPECT_TRUE(instance.validate().has_value());
  instance.cal.types = {{10, 1, -1}};  // negative delay
  EXPECT_TRUE(instance.validate().has_value());

  // p_j is bounded by the longest type length, not by T: jobs here have
  // p up to 10, so a table whose longest type is 5 rejects the instance.
  instance.cal.types = {{5, 2, 0}};
  ASSERT_TRUE(instance.validate().has_value());
  EXPECT_NE(instance.validate()->find("longest calibration type"),
            std::string::npos);
  // ...while a longer type than T accepts it.
  instance.cal.types = {{5, 2, 0}, {12, 4, 1}};
  EXPECT_FALSE(instance.validate().has_value());
}

TEST(Instance, CaltypeIoRoundTrip) {
  Instance instance = small_instance();
  instance.cal.types = {{10, 2, 0}, {20, 5, 3}};
  std::stringstream buffer;
  write_instance(buffer, instance);
  EXPECT_NE(buffer.str().find("caltype 10 2 0\n"), std::string::npos);
  EXPECT_NE(buffer.str().find("caltype 20 5 3\n"), std::string::npos);
  const Instance parsed = read_instance(buffer);
  EXPECT_EQ(parsed.cal, instance.cal);
  EXPECT_EQ(parsed.jobs.size(), instance.jobs.size());
}

TEST(Instance, UnitModelOutputHasNoCaltypeLines) {
  // The pre-cost-model text format is preserved byte for byte: implicit
  // unit instances never emit caltype lines, and old files (which have
  // none) parse to an empty table.
  std::stringstream buffer;
  write_instance(buffer, small_instance());
  EXPECT_EQ(buffer.str().find("caltype"), std::string::npos);
  const Instance parsed = read_instance(buffer);
  EXPECT_TRUE(parsed.cal.empty());
}

TEST(Instance, IoRejectsMalformedCaltype) {
  std::stringstream buffer("machines 1\nT 5\ncaltype 5 two 0\njob 0 0 9 2\n");
  EXPECT_THROW(read_instance(buffer), std::runtime_error);
  std::stringstream truncated("machines 1\nT 5\ncaltype 5\njob 0 0 9 2\n");
  EXPECT_THROW(read_instance(truncated), std::runtime_error);
}

TEST(Schedule, CaltypeIoRoundTrip) {
  Instance instance = small_instance();
  instance.cal.types = {{10, 2, 0}, {20, 5, 3}};
  Schedule schedule = Schedule::empty_like(instance, 2);
  schedule.calibrations = {{0, 0, 0}, {1, 4, 1}};
  schedule.jobs = {{0, 0, 1}, {1, 1, 7}};
  std::stringstream buffer;
  write_schedule(buffer, schedule);
  const Schedule parsed = read_schedule(buffer);
  EXPECT_EQ(parsed.cal, schedule.cal);
  EXPECT_EQ(parsed.calibrations, schedule.calibrations);
  EXPECT_EQ(parsed.jobs, schedule.jobs);
  // Unit-model schedules keep the original two-field calibration lines.
  Schedule unit = Schedule::empty_like(small_instance(), 1);
  unit.calibrations = {{0, 3}};
  std::stringstream unit_buffer;
  write_schedule(unit_buffer, unit);
  EXPECT_NE(unit_buffer.str().find("calibration 0 3\n"), std::string::npos);
  EXPECT_EQ(read_schedule(unit_buffer).calibrations, unit.calibrations);
}

TEST(Schedule, TypedTickAccessors) {
  Instance instance = small_instance();
  instance.cal.types = {{10, 2, 0}, {20, 5, 3}};
  Schedule schedule = Schedule::empty_like(instance, 1);
  schedule.scale_denominator(2);
  const Calibration delayed{0, 8, 1};
  EXPECT_EQ(schedule.available_start_ticks(delayed), 8 + 3 * 2);
  EXPECT_EQ(schedule.available_end_ticks(delayed), 8 + (3 + 20) * 2);
  EXPECT_EQ(schedule.occupied_end_ticks(delayed), 8 + 23 * 2);
  schedule.calibrations = {{0, 0, 0}, delayed};
  EXPECT_EQ(schedule.total_cost(), 7);
}

TEST(CalibrationPoints, GeneralizedGridUsesSpanSums) {
  Instance instance;
  instance.machines = 1;
  instance.T = 4;
  instance.cal.types = {{4, 1, 0}, {5, 2, 1}};  // spans 4 and 6
  instance.jobs = {{0, 0, 30, 3}, {1, 7, 29, 4}};
  const std::vector<Time> points = canonical_calibration_points(instance);
  EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
  // Releases plus span sums: 0+4, 0+6, 0+4+6, 7+4, ... must all appear.
  for (const Time t : {Time{0}, Time{4}, Time{6}, Time{10}, Time{7}, Time{11},
                       Time{13}}) {
    EXPECT_TRUE(std::binary_search(points.begin(), points.end(), t)) << t;
  }
  // Nothing at or past the last deadline.
  EXPECT_TRUE(points.back() < instance.max_deadline());
}

TEST(CalibrationPoints, ContainsReleasesAndChains) {
  const Instance instance = small_instance();
  const std::vector<Time> points = canonical_calibration_points(instance);
  EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
  EXPECT_EQ(std::adjacent_find(points.begin(), points.end()), points.end());
  for (const Job& job : instance.jobs) {
    EXPECT_TRUE(std::binary_search(points.begin(), points.end(), job.release));
  }
  // Chain: r0 + k*T for k while < max deadline (40): 0,10,20,30.
  for (const Time t : {Time{0}, Time{10}, Time{20}, Time{30}}) {
    EXPECT_TRUE(std::binary_search(points.begin(), points.end(), t));
  }
  // No point at or past the last deadline.
  EXPECT_TRUE(points.empty() || points.back() < instance.max_deadline());
}

TEST(CalibrationPoints, TisePointsAreFeasibleForSomeJob) {
  GenParams params;
  params.seed = 99;
  params.n = 12;
  params.T = 8;
  params.horizon = 120;
  const Instance instance = generate_long_window(params);
  const std::vector<Time> points = tise_calibration_points(instance);
  ASSERT_FALSE(points.empty());
  for (const Time t : points) {
    const bool feasible = std::any_of(
        instance.jobs.begin(), instance.jobs.end(), [&](const Job& job) {
          return job.release <= t && t <= job.deadline - instance.T;
        });
    EXPECT_TRUE(feasible) << "point " << t;
  }
  // Every job's release must be present (it is always feasible for the job).
  for (const Job& job : instance.jobs) {
    EXPECT_TRUE(std::binary_search(points.begin(), points.end(), job.release));
  }
}

TEST(CalibrationPoints, SubsetRelationship) {
  const Instance instance = small_instance();
  const auto all = canonical_calibration_points(instance);
  const auto tise = tise_calibration_points(instance);
  for (const Time t : tise) {
    EXPECT_TRUE(std::binary_search(all.begin(), all.end(), t));
  }
  EXPECT_LE(tise.size(), all.size());
}

}  // namespace
}  // namespace calisched

// Tests for the online-arrival layer (src/online/): the event-driven
// simulator's append-only contract, the "online-edf" heuristic, the
// registry adapter, and the subscribe protocol's delta streaming.
//
// The load-bearing properties pinned here:
//   * the simulator rejects every contract violation a scheduler could
//     attempt — time regression, retroactive starts, phantom or duplicate
//     jobs, non-future wakeups — and stays poisoned afterwards;
//   * replaying any generator family produces a delta stream that is a
//     partition of the committed schedule, monotone in time, with no
//     commitment reaching into the past;
//   * a feasible replay passes the type-aware verifier on the offline view
//     of the trace, and replaying twice is byte-identical;
//   * the stdio subscribe conversation is byte-identical across worker
//     thread counts (arrivals run on the reader thread, not a worker).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gen/generators.hpp"
#include "online/online.hpp"
#include "runtime/batch.hpp"
#include "runtime/registry.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

Job make_job(JobId id, Time release, Time deadline, Time proc) {
  Job job;
  job.id = id;
  job.release = release;
  job.deadline = deadline;
  job.proc = proc;
  return job;
}

/// A scheduler whose every decision is scripted by the test; used to probe
/// the simulator's contract enforcement from the scheduler side.
class ScriptedScheduler final : public OnlineScheduler {
 public:
  using Script = std::function<OnlineDecision(Time, const std::vector<Job>&)>;

  explicit ScriptedScheduler(Script script) : script_(std::move(script)) {}

  [[nodiscard]] std::string name() const override { return "scripted"; }
  void begin(int, Time, const CalibrationModel&) override {}
  OnlineDecision on_event(Time now, const std::vector<Job>& arrivals) override {
    ++events_;
    return script_(now, arrivals);
  }

  [[nodiscard]] int events() const { return events_; }

 private:
  Script script_;
  int events_ = 0;
};

OnlineSimulation scripted_simulation(ScriptedScheduler::Script script,
                                     int machines = 2, Time T = 10) {
  return OnlineSimulation(std::make_unique<ScriptedScheduler>(std::move(script)),
                          machines, T, CalibrationModel{});
}

OnlineDecision idle(Time, const std::vector<Job>&) { return {}; }

// ------------------------------------------------------ simulator contract --

TEST(OnlineSimulation, RejectsTimeRegression) {
  OnlineSimulation sim = scripted_simulation(idle);
  std::string error;
  EXPECT_TRUE(sim.arrive(5, {make_job(1, 5, 9, 2)}, nullptr, &error)) << error;
  EXPECT_FALSE(sim.arrive(3, {}, nullptr, &error));
  EXPECT_NE(error.find("time regression"), std::string::npos) << error;
  // Poisoned: the same first error answers every later call.
  std::string again;
  EXPECT_FALSE(sim.arrive(9, {}, nullptr, &again));
  EXPECT_EQ(again, error);
  EXPECT_FALSE(sim.finish().feasible);
}

TEST(OnlineSimulation, RejectsRetroactiveCalibration) {
  OnlineSimulation sim = scripted_simulation([](Time now, const auto&) {
    OnlineDecision decision;
    decision.calibrations.push_back(Calibration{0, now - 1, 0});
    return decision;
  });
  std::string error;
  EXPECT_FALSE(sim.arrive(5, {make_job(1, 5, 20, 2)}, nullptr, &error));
  EXPECT_NE(error.find("append-only"), std::string::npos) << error;
}

TEST(OnlineSimulation, RejectsRetroactiveJobStart) {
  OnlineSimulation sim = scripted_simulation([](Time now, const auto& jobs) {
    OnlineDecision decision;
    decision.calibrations.push_back(Calibration{0, now, 0});
    if (!jobs.empty())
      decision.jobs.push_back(ScheduledJob{jobs.front().id, 0, now - 2});
    return decision;
  });
  std::string error;
  EXPECT_FALSE(sim.arrive(6, {make_job(1, 6, 20, 2)}, nullptr, &error));
  EXPECT_NE(error.find("append-only"), std::string::npos) << error;
}

TEST(OnlineSimulation, RejectsJobThatNeverArrived) {
  OnlineSimulation sim = scripted_simulation([](Time now, const auto&) {
    OnlineDecision decision;
    decision.jobs.push_back(ScheduledJob{77, 0, now});
    return decision;
  });
  std::string error;
  EXPECT_FALSE(sim.arrive(0, {make_job(1, 0, 9, 2)}, nullptr, &error));
  EXPECT_NE(error.find("before it arrived"), std::string::npos) << error;
}

TEST(OnlineSimulation, RejectsDoubleAssignment) {
  int calls = 0;
  OnlineSimulation sim = scripted_simulation([&calls](Time now, const auto&) {
    OnlineDecision decision;
    if (calls++ == 0) decision.calibrations.push_back(Calibration{0, now, 0});
    decision.jobs.push_back(ScheduledJob{1, 0, now});
    return decision;
  });
  std::string error;
  EXPECT_TRUE(sim.arrive(0, {make_job(1, 0, 9, 2)}, nullptr, &error)) << error;
  EXPECT_FALSE(sim.arrive(1, {}, nullptr, &error));
  EXPECT_NE(error.find("twice"), std::string::npos) << error;
}

TEST(OnlineSimulation, RejectsDuplicateJobIds) {
  {
    OnlineSimulation sim = scripted_simulation(idle);
    std::string error;
    EXPECT_TRUE(sim.arrive(0, {make_job(1, 0, 9, 2)}, nullptr, &error));
    EXPECT_FALSE(sim.arrive(2, {make_job(1, 2, 9, 2)}, nullptr, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  }
  {
    // Within one batch too — neither copy is registered yet.
    OnlineSimulation sim = scripted_simulation(idle);
    std::string error;
    EXPECT_FALSE(sim.arrive(
        0, {make_job(3, 0, 9, 2), make_job(3, 0, 9, 2)}, nullptr, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  }
}

TEST(OnlineSimulation, RejectsNonFutureWakeup) {
  OnlineSimulation sim = scripted_simulation([](Time now, const auto&) {
    OnlineDecision decision;
    decision.wakeup = now;  // must be strictly later
    return decision;
  });
  std::string error;
  EXPECT_FALSE(sim.arrive(4, {make_job(1, 4, 20, 2)}, nullptr, &error));
  EXPECT_NE(error.find("wakeup"), std::string::npos) << error;
}

TEST(OnlineSimulation, RejectsMalformedJobs) {
  OnlineSimulation sim = scripted_simulation(idle);
  std::string error;
  EXPECT_FALSE(sim.arrive(0, {make_job(1, 0, 9, 0)}, nullptr, &error));
  EXPECT_NE(error.find("processing time"), std::string::npos) << error;

  OnlineSimulation tight = scripted_simulation(idle);
  EXPECT_FALSE(tight.arrive(0, {make_job(1, 0, 1, 2)}, nullptr, &error));
  EXPECT_NE(error.find("window"), std::string::npos) << error;

  // Under the unit model no job longer than T can ever be served; the
  // simulator rejects it at arrival instead of failing at finish().
  OnlineSimulation overlong = scripted_simulation(idle, 2, 4);
  EXPECT_FALSE(overlong.arrive(0, {make_job(1, 0, 40, 5)}, nullptr, &error));
  EXPECT_NE(error.find("calibration length"), std::string::npos) << error;
}

TEST(OnlineSimulation, AlarmsFireBetweenEventsAndAreSuperseded) {
  // The scheduler asks for a wakeup at 7 while events land at 3 and 10:
  // the alarm must fire at exactly 7 (no arrivals), between the two.
  std::vector<std::pair<Time, std::size_t>> seen;  // (now, arrival count)
  OnlineSimulation sim = scripted_simulation(
      [&seen](Time now, const std::vector<Job>& jobs) {
        seen.emplace_back(now, jobs.size());
        OnlineDecision decision;
        if (now == 3) decision.wakeup = 7;
        return decision;
      });
  std::string error;
  EXPECT_TRUE(sim.arrive(3, {make_job(1, 3, 30, 2)}, nullptr, &error)) << error;
  EXPECT_TRUE(sim.arrive(10, {make_job(2, 10, 30, 2)}, nullptr, &error));
  const OnlineResult result = sim.finish();
  EXPECT_EQ(result.alarms, 1u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[1], (std::pair<Time, std::size_t>{7, 0}));

  // A wakeup landing exactly on the next event time is superseded: the
  // event at 7 absorbs it and no empty firing happens.
  std::vector<Time> times;
  OnlineSimulation exact = scripted_simulation(
      [&times](Time now, const std::vector<Job>&) {
        times.push_back(now);
        OnlineDecision decision;
        if (now == 3) decision.wakeup = 7;
        return decision;
      });
  EXPECT_TRUE(exact.arrive(3, {make_job(1, 3, 30, 2)}, nullptr, &error));
  EXPECT_TRUE(exact.arrive(7, {make_job(2, 7, 30, 2)}, nullptr, &error));
  EXPECT_EQ(exact.finish().alarms, 0u);
  EXPECT_EQ(times, (std::vector<Time>{3, 7}));
}

TEST(OnlineSimulation, FinishDrainsAlarmChainAndReportsUnscheduled) {
  // An idle scheduler never places the job: finish() must report it, and
  // the result is infeasible with an empty (normalized) schedule.
  OnlineSimulation sim = scripted_simulation(idle);
  std::string error;
  EXPECT_TRUE(sim.arrive(0, {make_job(9, 0, 9, 2)}, nullptr, &error)) << error;
  const OnlineResult result = sim.finish();
  EXPECT_FALSE(result.feasible);
  EXPECT_NE(result.error.find("never scheduled"), std::string::npos)
      << result.error;

  // A pending alarm at finish() fires (the lazy heuristic's last chance
  // to commit), and its commitments land in a tail delta.
  OnlineSimulation lazy = scripted_simulation(
      [](Time now, const std::vector<Job>& jobs) {
        OnlineDecision decision;
        if (!jobs.empty()) {
          decision.wakeup = 6;  // defer everything to the alarm
        } else {
          decision.calibrations.push_back(Calibration{0, now, 0});
          decision.jobs.push_back(ScheduledJob{1, 0, now});
        }
        return decision;
      });
  EXPECT_TRUE(lazy.arrive(0, {make_job(1, 0, 9, 2)}, nullptr, &error)) << error;
  const OnlineResult late = lazy.finish();
  EXPECT_TRUE(late.feasible) << late.error;
  EXPECT_EQ(late.alarms, 1u);
  ASSERT_EQ(late.deltas.size(), 2u);
  EXPECT_EQ(late.deltas[1].time, 6);
  EXPECT_EQ(late.deltas[1].jobs.size(), 1u);
}

TEST(OnlineSimulation, ArriveAfterFinishFails) {
  OnlineSimulation sim = scripted_simulation(idle);
  (void)sim.finish();
  std::string error;
  EXPECT_FALSE(sim.arrive(0, {}, nullptr, &error));
  EXPECT_NE(error.find("finish"), std::string::npos) << error;
}

TEST(ArrivalTrace, RoundTripsThroughInstance) {
  const Instance instance = generate_online_burst([] {
    GenParams params;
    params.seed = 3;
    params.n = 12;
    params.T = 8;
    params.machines = 2;
    params.horizon = 96;
    params.max_proc = 6;
    return params;
  }());
  const ArrivalTrace trace = ArrivalTrace::from_instance(instance);
  ASSERT_EQ(trace.events.size(), instance.jobs.size());
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].time, trace.events[i].time);
  }
  for (const ArrivalEvent& event : trace.events) {
    EXPECT_EQ(event.time, event.job.release);
  }
  const Instance back = trace.to_instance();
  EXPECT_EQ(back.machines, instance.machines);
  EXPECT_EQ(back.T, instance.T);
  ASSERT_EQ(back.jobs.size(), instance.jobs.size());
  for (std::size_t i = 1; i < back.jobs.size(); ++i) {
    EXPECT_LT(back.jobs[i - 1].id, back.jobs[i].id);
  }
}

// ----------------------------------------------- replay property over gens --

GenParams family_params(std::uint64_t seed) {
  GenParams params;
  params.seed = seed;
  params.n = 14;
  params.T = 8;
  params.machines = 3;
  params.horizon = 120;
  params.max_proc = 6;
  return params;
}

struct Family {
  const char* name;
  std::function<Instance(const GenParams&)> generate;
};

const std::vector<Family>& generator_families() {
  static const std::vector<Family> families = {
      {"mixed", [](const GenParams& p) { return generate_mixed(p, 0.5); }},
      {"long", [](const GenParams& p) { return generate_long_window(p); }},
      {"short", [](const GenParams& p) { return generate_short_window(p); }},
      {"unit", [](const GenParams& p) { return generate_unit(p); }},
      {"clustered",
       [](const GenParams& p) { return generate_clustered(p, 3, 4, false); }},
      {"calib-cheap-short",
       [](const GenParams& p) {
         return generate_calib_cost(p, CalibTableRegime::kCheapShort);
       }},
      {"calib-expensive-long",
       [](const GenParams& p) {
         return generate_calib_cost(p, CalibTableRegime::kExpensiveLong);
       }},
      {"calib-delayed",
       [](const GenParams& p) {
         return generate_calib_cost(p, CalibTableRegime::kDelayed);
       }},
      {"online-poisson",
       [](const GenParams& p) { return generate_online_poisson(p); }},
      {"online-burst",
       [](const GenParams& p) { return generate_online_burst(p, 4); }},
      {"online-drip",
       [](const GenParams& p) { return generate_online_drip(p); }},
  };
  return families;
}

/// Serializes a delta stream exactly as the subscribe protocol would (null
/// id), so equality here is equality of the bytes a client receives.
std::string delta_stream_text(const OnlineResult& result, bool unit_model) {
  std::string text;
  for (const ScheduleDelta& delta : result.deltas) {
    text += dump_response(make_delta_response(
        JsonValue(), delta.time, delta.calibrations, delta.jobs, unit_model));
    text += '\n';
  }
  return text;
}

TEST(OnlineEdf, ReplayPropertyOverEveryGeneratorFamily) {
  int feasible_runs = 0;
  for (const Family& family : generator_families()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(std::string(family.name) + " seed " + std::to_string(seed));
      const Instance instance = family.generate(family_params(seed));
      ASSERT_EQ(instance.validate(), std::nullopt);
      const ArrivalTrace trace = ArrivalTrace::from_instance(instance);
      const OnlineResult result = simulate_trace("online-edf", trace);

      // The contract holds even when the heuristic loses a job: no error
      // other than online infeasibility may surface.
      if (!result.feasible) {
        EXPECT_NE(result.error.find("never scheduled"), std::string::npos)
            << result.error;
      }

      // Delta stream: monotone times, nothing committed into the past of
      // the previous advancement, and the concatenation is exactly the
      // committed schedule.
      Schedule rebuilt = result.schedule;
      rebuilt.calibrations.clear();
      rebuilt.jobs.clear();
      Time previous = 0;
      for (const ScheduleDelta& delta : result.deltas) {
        EXPECT_GE(delta.time, previous);
        for (const Calibration& calibration : delta.calibrations) {
          EXPECT_GE(calibration.start, previous) << "retroactive calibration";
          rebuilt.calibrations.push_back(calibration);
        }
        for (const ScheduledJob& placed : delta.jobs) {
          EXPECT_GE(placed.start, previous) << "retroactive assignment";
          rebuilt.jobs.push_back(placed);
        }
        previous = delta.time;
      }
      rebuilt.normalize();
      const std::string committed = dump_response(schedule_to_json(result.schedule));
      EXPECT_EQ(dump_response(schedule_to_json(rebuilt)), committed)
          << "delta stream does not partition the schedule";

      if (result.feasible) {
        ++feasible_runs;
        const VerifyResult verdict = verify_ise(trace.to_instance(), result.schedule);
        EXPECT_TRUE(verdict.ok())
            << verdict.violations.front().message;
      }

      // Determinism: replaying the same trace is byte-identical — same
      // delta stream, same schedule, same feasibility.
      const OnlineResult again = simulate_trace("online-edf", trace);
      EXPECT_EQ(again.feasible, result.feasible);
      const bool unit_model = trace.cal.empty();
      EXPECT_EQ(delta_stream_text(again, unit_model),
                delta_stream_text(result, unit_model));
      EXPECT_EQ(dump_response(schedule_to_json(again.schedule)), committed);
    }
  }
  // The property must not pass vacuously: most families must replay to a
  // feasible, verifier-clean schedule.
  EXPECT_GE(feasible_runs, 20);
}

TEST(OnlineEdf, LazyOpeningWaitsForTheAlarm) {
  // One job with plenty of slack: the heuristic must not calibrate at
  // arrival but at the latest feasible start d - p (unit model, no
  // delay), discovered via its alarm.
  ArrivalTrace trace;
  trace.machines = 1;
  trace.T = 10;
  trace.events.push_back(ArrivalEvent{0, make_job(1, 0, 30, 4)});
  const OnlineResult result = simulate_trace("online-edf", trace);
  ASSERT_TRUE(result.feasible) << result.error;
  ASSERT_EQ(result.schedule.calibrations.size(), 1u);
  EXPECT_EQ(result.schedule.calibrations[0].start, 26);  // d - p = 30 - 4
  EXPECT_EQ(result.alarms, 1u);
  ASSERT_EQ(result.schedule.jobs.size(), 1u);
  EXPECT_EQ(result.schedule.jobs[0].start, 26);
}

TEST(OnlineEdf, SharesOneCalibrationAcrossCompatibleJobs) {
  // Three unit-ish jobs inside one window of length 10: a single
  // calibration must absorb all of them (EDF packing), not one each.
  ArrivalTrace trace;
  trace.machines = 2;
  trace.T = 10;
  trace.events.push_back(ArrivalEvent{0, make_job(1, 0, 6, 3)});
  trace.events.push_back(ArrivalEvent{0, make_job(2, 0, 9, 3)});
  trace.events.push_back(ArrivalEvent{1, make_job(3, 1, 12, 3)});
  const OnlineResult result = simulate_trace("online-edf", trace);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_EQ(result.schedule.calibrations.size(), 1u);
  EXPECT_EQ(result.schedule.jobs.size(), 3u);
}

TEST(OnlineEdf, UnknownSchedulerNameReportsCleanly) {
  ArrivalTrace trace;
  trace.events.push_back(ArrivalEvent{0, make_job(1, 0, 4, 2)});
  const OnlineResult result = simulate_trace("online-sjf", trace);
  EXPECT_FALSE(result.feasible);
  EXPECT_NE(result.error.find("unknown online scheduler"), std::string::npos);
  EXPECT_EQ(make_online_scheduler("online-sjf"), nullptr);
}

// ----------------------------------------------------------- registry hook --

TEST(OnlineRegistry, EdfIsRegisteredWithOnlineCapability) {
  const Algorithm* algorithm = AlgorithmRegistry::builtin().find("online-edf");
  ASSERT_NE(algorithm, nullptr);
  EXPECT_TRUE(algorithm->capabilities().supports_online);
  EXPECT_TRUE(algorithm->capabilities().supports_calibration_model);
  // The offline solvers must not claim the capability.
  const Algorithm* combined = AlgorithmRegistry::builtin().find("combined");
  ASSERT_NE(combined, nullptr);
  EXPECT_FALSE(combined->capabilities().supports_online);
}

TEST(OnlineRegistry, AdapterSolvesAndVerifiesThroughTheRegistry) {
  const Algorithm* algorithm = AlgorithmRegistry::builtin().find("online-edf");
  ASSERT_NE(algorithm, nullptr);
  const Instance instance = generate_online_poisson(family_params(5));
  const RunResult result = algorithm->run(instance, RunLimits{}, nullptr);
  if (result.feasible) {
    EXPECT_TRUE(result.verified);
    EXPECT_EQ(result.status, SolveStatus::kOk);
  } else {
    // Online infeasibility is reported as such, never as a crash.
    EXPECT_EQ(result.status, SolveStatus::kInfeasible);
    EXPECT_FALSE(result.error.empty());
  }
}

// ------------------------------------------------------- subscribe serving --

std::string serve_script(const std::string& input, std::size_t threads) {
  ServiceOptions options;
  options.threads = threads;
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(
      run_stdio_server(AlgorithmRegistry::builtin(), options, in, out, nullptr),
      0);
  return out.str();
}

std::string subscribe_conversation() {
  // subscribe -> two arrivals -> a contract violation (time regression)
  // -> finalize -> a second session on the same connection; plus a solve
  // interleaved to prove the two pipelines share one ordered stream.
  std::string input;
  input += "{\"type\":\"subscribe\",\"id\":1,\"machines\":2,\"T\":10}\n";
  input += "{\"type\":\"arrive\",\"id\":2,\"time\":0,"
           "\"jobs\":[[1,0,6,3],[2,0,8,3]]}\n";
  input += "{\"type\":\"solve\",\"id\":3,\"algo\":\"combined\",\"instance\":"
           "{\"machines\":1,\"T\":4,\"jobs\":[[0,0,4,2]]}}\n";
  input += "{\"type\":\"arrive\",\"id\":4,\"time\":5,\"jobs\":[[3,5,15,2]]}\n";
  input += "{\"type\":\"arrive\",\"id\":5,\"time\":2,\"jobs\":[[9,2,9,2]]}\n";
  input += "{\"type\":\"finalize\",\"id\":6}\n";
  input += "{\"type\":\"subscribe\",\"id\":7,\"machines\":1,\"T\":6}\n";
  input += "{\"type\":\"arrive\",\"id\":8,\"time\":0,\"jobs\":[[1,0,6,2]]}\n";
  input += "{\"type\":\"finalize\",\"id\":9,\"schedule\":true}\n";
  return input;
}

TEST(ServeSubscribe, StreamsDeltasInOrderAndRecovers) {
  const std::string output = serve_script(subscribe_conversation(), 1);
  std::istringstream lines(output);
  std::string line;
  std::vector<std::string> response;
  while (std::getline(lines, line)) response.push_back(line);
  ASSERT_EQ(response.size(), 9u);
  EXPECT_NE(response[0].find("\"op\":\"subscribe\""), std::string::npos)
      << response[0];
  EXPECT_NE(response[1].find("\"type\":\"delta\""), std::string::npos)
      << response[1];
  EXPECT_NE(response[1].find("\"time\":0"), std::string::npos);
  EXPECT_NE(response[2].find("\"type\":\"result\""), std::string::npos)
      << response[2];
  EXPECT_NE(response[3].find("\"type\":\"delta\""), std::string::npos);
  // The time-regressing arrival poisons the session, visibly.
  EXPECT_NE(response[4].find("\"type\":\"error\""), std::string::npos)
      << response[4];
  EXPECT_NE(response[4].find("time regression"), std::string::npos);
  // finalize reports the poisoned run as infeasible, then clears the
  // session so a fresh subscribe works on the same connection.
  EXPECT_NE(response[5].find("\"type\":\"result\""), std::string::npos)
      << response[5];
  EXPECT_NE(response[5].find("\"feasible\":false"), std::string::npos);
  EXPECT_NE(response[6].find("\"op\":\"subscribe\""), std::string::npos);
  EXPECT_NE(response[7].find("\"type\":\"delta\""), std::string::npos);
  EXPECT_NE(response[8].find("\"feasible\":true"), std::string::npos)
      << response[8];
  EXPECT_NE(response[8].find("\"schedule\":"), std::string::npos);
}

TEST(ServeSubscribe, ByteIdenticalAcrossThreadCounts) {
  // Arrivals are handled on the reader thread and written through the
  // ordered queue: the full conversation — deltas interleaved with solve
  // results — must not change with the worker pool size.
  const std::string one = serve_script(subscribe_conversation(), 1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, serve_script(subscribe_conversation(), 4));
  EXPECT_EQ(one, serve_script(subscribe_conversation(), 8));
}

TEST(ServeSubscribe, SessionErrorsAreStructured) {
  std::string input;
  input += "{\"type\":\"arrive\",\"id\":1,\"time\":0}\n";  // no session
  input += "{\"type\":\"finalize\",\"id\":2}\n";            // no session
  input += "{\"type\":\"subscribe\",\"id\":3,\"machines\":2,\"T\":10}\n";
  input += "{\"type\":\"subscribe\",\"id\":4,\"machines\":2,\"T\":10}\n";
  input += "{\"type\":\"subscribe\",\"id\":5,\"machines\":0,\"T\":10}\n";
  const std::string output = serve_script(input, 2);
  std::istringstream lines(output);
  std::string line;
  std::vector<std::string> response;
  while (std::getline(lines, line)) response.push_back(line);
  ASSERT_EQ(response.size(), 5u);
  EXPECT_NE(response[0].find("no active subscribe session"), std::string::npos)
      << response[0];
  EXPECT_NE(response[1].find("no active subscribe session"), std::string::npos);
  EXPECT_NE(response[2].find("\"op\":\"subscribe\""), std::string::npos);
  EXPECT_NE(response[3].find("already active"), std::string::npos)
      << response[3];
  EXPECT_NE(response[4].find("machines"), std::string::npos) << response[4];
}

TEST(ServeSubscribe, OfflineAlgorithmsAreRefusedForSessions) {
  const std::string output = serve_script(
      "{\"type\":\"subscribe\",\"id\":1,\"algo\":\"combined\","
      "\"machines\":2,\"T\":10}\n"
      "{\"type\":\"subscribe\",\"id\":2,\"algo\":\"online-nope\","
      "\"machines\":2,\"T\":10}\n",
      1);
  std::istringstream lines(output);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("does not support online sessions"), std::string::npos)
      << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("unknown online algorithm"), std::string::npos) << line;
}

TEST(ServeSubscribe, DeltaStreamMatchesDirectReplay) {
  // The bytes a subscribe client receives per arrival are exactly the
  // deltas a direct simulate_trace() replay produces — the serve path adds
  // nothing and reorders nothing.
  ArrivalTrace trace;
  trace.machines = 2;
  trace.T = 10;
  trace.events.push_back(ArrivalEvent{0, make_job(1, 0, 6, 3)});
  trace.events.push_back(ArrivalEvent{0, make_job(2, 0, 8, 3)});
  trace.events.push_back(ArrivalEvent{5, make_job(3, 5, 15, 2)});
  const OnlineResult replay = simulate_trace("online-edf", trace);

  std::string input;
  input += "{\"type\":\"subscribe\",\"machines\":2,\"T\":10}\n";
  input += "{\"type\":\"arrive\",\"time\":0,\"jobs\":[[1,0,6,3],[2,0,8,3]]}\n";
  input += "{\"type\":\"arrive\",\"time\":5,\"jobs\":[[3,5,15,2]]}\n";
  input += "{\"type\":\"finalize\"}\n";
  const std::string output = serve_script(input, 1);
  std::istringstream lines(output);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));  // ack
  // The served arrive responses must equal the replay deltas, byte for
  // byte (both sides emit null ids). finish()-time tail deltas are the
  // only ones a subscribe client sees later, at finalize — this trace has
  // none pending at that point beyond the lazy tail, so compare prefixes.
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(std::getline(lines, line)) << i;
    ASSERT_LT(i, replay.deltas.size());
    const ScheduleDelta& delta = replay.deltas[i];
    EXPECT_EQ(line, dump_response(make_delta_response(
                        JsonValue(), delta.time, delta.calibrations,
                        delta.jobs, /*unit_model=*/true)))
        << i;
  }
  ASSERT_TRUE(std::getline(lines, line));  // finalize result
  EXPECT_NE(line.find("\"feasible\":true"), std::string::npos) << line;
  ASSERT_TRUE(replay.feasible);
  // Total cost agrees between the served result and the direct replay.
  EXPECT_NE(line.find("\"total_cost\":" +
                      std::to_string(replay.schedule.total_cost())),
            std::string::npos)
      << line;
}

}  // namespace
}  // namespace calisched

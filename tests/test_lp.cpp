// Tests for the two-phase simplex on textbook and randomized programs.
#include <gtest/gtest.h>

#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace calisched {
namespace {

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  =>  opt 36 at (2, 6).
  // Expressed as minimization of -3x - 5y.
  LpModel model;
  const int x = model.add_variable("x", -3.0);
  const int y = model.add_variable("y", -5.0);
  int row = model.add_row("r1", RowSense::kLe, 4.0);
  model.add_coefficient(row, x, 1.0);
  row = model.add_row("r2", RowSense::kLe, 12.0);
  model.add_coefficient(row, y, 2.0);
  row = model.add_row("r3", RowSense::kLe, 18.0);
  model.add_coefficient(row, x, 3.0);
  model.add_coefficient(row, y, 2.0);

  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -36.0, 1e-6);
  EXPECT_NEAR(solution.values[x], 2.0, 1e-6);
  EXPECT_NEAR(solution.values[y], 6.0, 1e-6);
  EXPECT_LE(model.max_violation(solution.values), 1e-7);
}

TEST(Simplex, HandlesEqualityAndGe) {
  // min x + y s.t. x + y >= 2, x - y = 0  =>  opt 2 at (1,1).
  LpModel model;
  const int x = model.add_variable("x", 1.0);
  const int y = model.add_variable("y", 1.0);
  int row = model.add_row("ge", RowSense::kGe, 2.0);
  model.add_coefficient(row, x, 1.0);
  model.add_coefficient(row, y, 1.0);
  row = model.add_row("eq", RowSense::kEq, 0.0);
  model.add_coefficient(row, x, 1.0);
  model.add_coefficient(row, y, -1.0);

  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 2.0, 1e-6);
  EXPECT_NEAR(solution.values[x], 1.0, 1e-6);
  EXPECT_NEAR(solution.values[y], 1.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1, x >= 2.
  LpModel model;
  const int x = model.add_variable("x", 1.0);
  int row = model.add_row("le", RowSense::kLe, 1.0);
  model.add_coefficient(row, x, 1.0);
  row = model.add_row("ge", RowSense::kGe, 2.0);
  model.add_coefficient(row, x, 1.0);
  EXPECT_EQ(solve_lp(model).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x s.t. x >= 1.
  LpModel model;
  const int x = model.add_variable("x", -1.0);
  const int row = model.add_row("ge", RowSense::kGe, 1.0);
  model.add_coefficient(row, x, 1.0);
  EXPECT_EQ(solve_lp(model).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -3 (i.e. x >= 3) => opt 3.
  LpModel model;
  const int x = model.add_variable("x", 1.0);
  const int row = model.add_row("neg", RowSense::kLe, -3.0);
  model.add_coefficient(row, x, -1.0);
  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 3.0, 1e-6);
}

TEST(Simplex, DegenerateProgramTerminates) {
  // Classic degenerate corner: several redundant constraints through origin.
  LpModel model;
  const int x = model.add_variable("x", -1.0);
  const int y = model.add_variable("y", -1.0);
  for (int i = 0; i < 6; ++i) {
    const int row = model.add_row("deg" + std::to_string(i), RowSense::kLe,
                                  static_cast<double>(i < 3 ? 0 : 10));
    model.add_coefficient(row, x, 1.0 + i * 0.1);
    model.add_coefficient(row, y, -1.0);
  }
  const int cap = model.add_row("cap", RowSense::kLe, 5.0);
  model.add_coefficient(cap, x, 1.0);
  model.add_coefficient(cap, y, 1.0);
  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_LE(model.max_violation(solution.values), 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 duplicated; min x.
  LpModel model;
  const int x = model.add_variable("x", 1.0);
  const int y = model.add_variable("y", 0.0);
  for (int i = 0; i < 2; ++i) {
    const int row = model.add_row("eq" + std::to_string(i), RowSense::kEq, 2.0);
    model.add_coefficient(row, x, 1.0);
    model.add_coefficient(row, y, 1.0);
  }
  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.0, 1e-6);
  EXPECT_NEAR(solution.values[y], 2.0, 1e-6);
}

TEST(Simplex, EmptyObjectiveFeasibilityProblem) {
  LpModel model;
  const int x = model.add_variable("x", 0.0);
  const int row = model.add_row("eq", RowSense::kEq, 7.0);
  model.add_coefficient(row, x, 1.0);
  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 7.0, 1e-6);
}

TEST(Simplex, RandomProgramsAreFeasibleAtOptimum) {
  // Random bounded-feasible programs: x_i <= cap_i rows keep them bounded;
  // a >= row ensures phase 1 does real work.
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    LpModel model;
    const int vars = 3 + static_cast<int>(rng.index(5));
    for (int v = 0; v < vars; ++v) {
      model.add_variable("v" + std::to_string(v),
                         rng.uniform_real(-2.0, 2.0));
    }
    for (int v = 0; v < vars; ++v) {
      const int row = model.add_row("cap" + std::to_string(v), RowSense::kLe,
                                    rng.uniform_real(1.0, 10.0));
      model.add_coefficient(row, v, 1.0);
    }
    const int ge = model.add_row("ge", RowSense::kGe, 0.5);
    for (int v = 0; v < vars; ++v) {
      model.add_coefficient(ge, v, rng.uniform_real(0.5, 2.0));
    }
    const LpSolution solution = solve_lp(model);
    ASSERT_EQ(solution.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_LE(model.max_violation(solution.values), 1e-6) << "trial " << trial;
    EXPECT_NEAR(model.objective_value(solution.values), solution.objective,
                1e-6);
  }
}

TEST(Simplex, ParallelEliminationMatchesSerial) {
  // Force the parallel pivot path on a mid-size random program and check
  // it produces the same optimum as the serial path.
  Rng rng(31337);
  LpModel model;
  const int vars = 40;
  for (int v = 0; v < vars; ++v) {
    model.add_variable("v" + std::to_string(v), rng.uniform_real(-1.0, 1.0));
  }
  for (int v = 0; v < vars; ++v) {
    const int row = model.add_row("cap" + std::to_string(v), RowSense::kLe,
                                  rng.uniform_real(1.0, 5.0));
    model.add_coefficient(row, v, 1.0);
  }
  for (int r = 0; r < 20; ++r) {
    const int row = model.add_row("mix" + std::to_string(r), RowSense::kGe,
                                  rng.uniform_real(0.1, 2.0));
    for (int v = 0; v < vars; ++v) {
      model.add_coefficient(row, v, rng.uniform_real(0.1, 1.0));
    }
  }
  SimplexOptions serial;
  serial.parallel = false;
  SimplexOptions parallel;
  parallel.parallel = true;
  parallel.parallel_threshold = 0;  // force the parallel path
  const LpSolution a = solve_lp(model, serial);
  const LpSolution b = solve_lp(model, parallel);
  ASSERT_EQ(a.status, LpStatus::kOptimal);
  ASSERT_EQ(b.status, LpStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-7);
  EXPECT_LE(model.max_violation(b.values), 1e-6);
}

TEST(Simplex, IterationLimitReported) {
  LpModel model;
  const int x = model.add_variable("x", -1.0);
  const int y = model.add_variable("y", -2.0);
  for (int i = 0; i < 4; ++i) {
    const int row =
        model.add_row("r" + std::to_string(i), RowSense::kLe, 10.0 + i);
    model.add_coefficient(row, x, 1.0 + 0.3 * i);
    model.add_coefficient(row, y, 2.0 - 0.3 * i);
  }
  SimplexOptions options;
  options.max_pivots = 1;
  const LpSolution solution = solve_lp(model, options);
  EXPECT_EQ(solution.status, LpStatus::kIterationLimit);
}

}  // namespace
}  // namespace calisched

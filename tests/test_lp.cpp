// Tests for the two-phase simplex on textbook and randomized programs,
// differential tests between the dense tableau and the revised engine, and
// unit tests for the revised engine's presolve reductions.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lp/perf_counters.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace calisched {
namespace {

SimplexOptions engine_options(LpEngine engine) {
  SimplexOptions options;
  options.engine = engine;
  return options;
}

constexpr LpEngine kBothEngines[] = {LpEngine::kDenseTableau,
                                     LpEngine::kRevised};

const char* engine_name(LpEngine engine) {
  return engine == LpEngine::kDenseTableau ? "dense" : "revised";
}

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  =>  opt 36 at (2, 6).
  // Expressed as minimization of -3x - 5y.
  LpModel model;
  const int x = model.add_variable("x", -3.0);
  const int y = model.add_variable("y", -5.0);
  int row = model.add_row("r1", RowSense::kLe, 4.0);
  model.add_coefficient(row, x, 1.0);
  row = model.add_row("r2", RowSense::kLe, 12.0);
  model.add_coefficient(row, y, 2.0);
  row = model.add_row("r3", RowSense::kLe, 18.0);
  model.add_coefficient(row, x, 3.0);
  model.add_coefficient(row, y, 2.0);

  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -36.0, 1e-6);
  EXPECT_NEAR(solution.values[x], 2.0, 1e-6);
  EXPECT_NEAR(solution.values[y], 6.0, 1e-6);
  EXPECT_LE(model.max_violation(solution.values), 1e-7);
}

TEST(Simplex, HandlesEqualityAndGe) {
  // min x + y s.t. x + y >= 2, x - y = 0  =>  opt 2 at (1,1).
  LpModel model;
  const int x = model.add_variable("x", 1.0);
  const int y = model.add_variable("y", 1.0);
  int row = model.add_row("ge", RowSense::kGe, 2.0);
  model.add_coefficient(row, x, 1.0);
  model.add_coefficient(row, y, 1.0);
  row = model.add_row("eq", RowSense::kEq, 0.0);
  model.add_coefficient(row, x, 1.0);
  model.add_coefficient(row, y, -1.0);

  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 2.0, 1e-6);
  EXPECT_NEAR(solution.values[x], 1.0, 1e-6);
  EXPECT_NEAR(solution.values[y], 1.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1, x >= 2.
  LpModel model;
  const int x = model.add_variable("x", 1.0);
  int row = model.add_row("le", RowSense::kLe, 1.0);
  model.add_coefficient(row, x, 1.0);
  row = model.add_row("ge", RowSense::kGe, 2.0);
  model.add_coefficient(row, x, 1.0);
  EXPECT_EQ(solve_lp(model).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x s.t. x >= 1.
  LpModel model;
  const int x = model.add_variable("x", -1.0);
  const int row = model.add_row("ge", RowSense::kGe, 1.0);
  model.add_coefficient(row, x, 1.0);
  EXPECT_EQ(solve_lp(model).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -3 (i.e. x >= 3) => opt 3.
  LpModel model;
  const int x = model.add_variable("x", 1.0);
  const int row = model.add_row("neg", RowSense::kLe, -3.0);
  model.add_coefficient(row, x, -1.0);
  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 3.0, 1e-6);
}

TEST(Simplex, DegenerateProgramTerminates) {
  // Classic degenerate corner: several redundant constraints through origin.
  LpModel model;
  const int x = model.add_variable("x", -1.0);
  const int y = model.add_variable("y", -1.0);
  for (int i = 0; i < 6; ++i) {
    const int row = model.add_row("deg" + std::to_string(i), RowSense::kLe,
                                  static_cast<double>(i < 3 ? 0 : 10));
    model.add_coefficient(row, x, 1.0 + i * 0.1);
    model.add_coefficient(row, y, -1.0);
  }
  const int cap = model.add_row("cap", RowSense::kLe, 5.0);
  model.add_coefficient(cap, x, 1.0);
  model.add_coefficient(cap, y, 1.0);
  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_LE(model.max_violation(solution.values), 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 duplicated; min x.
  LpModel model;
  const int x = model.add_variable("x", 1.0);
  const int y = model.add_variable("y", 0.0);
  for (int i = 0; i < 2; ++i) {
    const int row = model.add_row("eq" + std::to_string(i), RowSense::kEq, 2.0);
    model.add_coefficient(row, x, 1.0);
    model.add_coefficient(row, y, 1.0);
  }
  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.0, 1e-6);
  EXPECT_NEAR(solution.values[y], 2.0, 1e-6);
}

TEST(Simplex, EmptyObjectiveFeasibilityProblem) {
  LpModel model;
  const int x = model.add_variable("x", 0.0);
  const int row = model.add_row("eq", RowSense::kEq, 7.0);
  model.add_coefficient(row, x, 1.0);
  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 7.0, 1e-6);
}

TEST(Simplex, RandomProgramsAreFeasibleAtOptimum) {
  // Random bounded-feasible programs: x_i <= cap_i rows keep them bounded;
  // a >= row ensures phase 1 does real work.
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    LpModel model;
    const int vars = 3 + static_cast<int>(rng.index(5));
    for (int v = 0; v < vars; ++v) {
      model.add_variable("v" + std::to_string(v),
                         rng.uniform_real(-2.0, 2.0));
    }
    for (int v = 0; v < vars; ++v) {
      const int row = model.add_row("cap" + std::to_string(v), RowSense::kLe,
                                    rng.uniform_real(1.0, 10.0));
      model.add_coefficient(row, v, 1.0);
    }
    const int ge = model.add_row("ge", RowSense::kGe, 0.5);
    for (int v = 0; v < vars; ++v) {
      model.add_coefficient(ge, v, rng.uniform_real(0.5, 2.0));
    }
    const LpSolution solution = solve_lp(model);
    ASSERT_EQ(solution.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_LE(model.max_violation(solution.values), 1e-6) << "trial " << trial;
    EXPECT_NEAR(model.objective_value(solution.values), solution.objective,
                1e-6);
  }
}

TEST(Simplex, ParallelEliminationMatchesSerial) {
  // Force the parallel pivot path on a mid-size random program and check
  // it produces the same optimum as the serial path.
  Rng rng(31337);
  LpModel model;
  const int vars = 40;
  for (int v = 0; v < vars; ++v) {
    model.add_variable("v" + std::to_string(v), rng.uniform_real(-1.0, 1.0));
  }
  for (int v = 0; v < vars; ++v) {
    const int row = model.add_row("cap" + std::to_string(v), RowSense::kLe,
                                  rng.uniform_real(1.0, 5.0));
    model.add_coefficient(row, v, 1.0);
  }
  for (int r = 0; r < 20; ++r) {
    const int row = model.add_row("mix" + std::to_string(r), RowSense::kGe,
                                  rng.uniform_real(0.1, 2.0));
    for (int v = 0; v < vars; ++v) {
      model.add_coefficient(row, v, rng.uniform_real(0.1, 1.0));
    }
  }
  // Pinned to the dense engine: parallel row elimination is a dense-tableau
  // feature (the revised engine's pivots are too cheap to parallelize).
  SimplexOptions serial;
  serial.engine = LpEngine::kDenseTableau;
  serial.parallel = false;
  SimplexOptions parallel;
  parallel.engine = LpEngine::kDenseTableau;
  parallel.parallel = true;
  parallel.parallel_threshold = 0;  // force the parallel path
  const LpSolution a = solve_lp(model, serial);
  const LpSolution b = solve_lp(model, parallel);
  ASSERT_EQ(a.status, LpStatus::kOptimal);
  ASSERT_EQ(b.status, LpStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-7);
  EXPECT_LE(model.max_violation(b.values), 1e-6);
}

TEST(Simplex, BealeCyclingExampleTerminatesOnBothEngines) {
  // Beale's classic cycling LP: Dantzig pricing with naive tie-breaking
  // cycles forever at the degenerate origin. With an aggressive stall
  // threshold the Bland fallback must engage and both engines reach the
  // optimum -0.05 at (1/25, 0, 1, 0).
  LpModel model;
  const int x1 = model.add_variable("x1", -0.75);
  const int x2 = model.add_variable("x2", 150.0);
  const int x3 = model.add_variable("x3", -0.02);
  const int x4 = model.add_variable("x4", 6.0);
  int row = model.add_row("r1", RowSense::kLe, 0.0);
  model.add_coefficient(row, x1, 0.25);
  model.add_coefficient(row, x2, -60.0);
  model.add_coefficient(row, x3, -0.04);
  model.add_coefficient(row, x4, 9.0);
  row = model.add_row("r2", RowSense::kLe, 0.0);
  model.add_coefficient(row, x1, 0.5);
  model.add_coefficient(row, x2, -90.0);
  model.add_coefficient(row, x3, -0.02);
  model.add_coefficient(row, x4, 3.0);
  row = model.add_row("r3", RowSense::kLe, 1.0);
  model.add_coefficient(row, x3, 1.0);

  for (const LpEngine engine : kBothEngines) {
    TraceContext trace("lp");
    SimplexOptions options = engine_options(engine);
    options.stall_before_bland = 2;  // engage Bland almost immediately
    options.max_pivots = 10'000;     // a cycle would exhaust this
    options.trace = &trace;
    const LpSolution solution = solve_lp(model, options);
    ASSERT_EQ(solution.status, LpStatus::kOptimal) << engine_name(engine);
    EXPECT_NEAR(solution.objective, -0.05, 1e-9) << engine_name(engine);
    EXPECT_NEAR(solution.values[x1], 0.04, 1e-9) << engine_name(engine);
    EXPECT_NEAR(solution.values[x2], 0.0, 1e-9) << engine_name(engine);
    EXPECT_NEAR(solution.values[x3], 1.0, 1e-9) << engine_name(engine);
    EXPECT_NEAR(solution.values[x4], 0.0, 1e-9) << engine_name(engine);
  }
}

TEST(Simplex, HeavilyDegenerateProgramUsesBlandFallback) {
  // Many hyperplanes through the same degenerate vertex plus a stall
  // threshold of 1: any non-improving pivot flips the solver to Bland's
  // rule, which must still reach the optimum on both engines.
  LpModel model;
  const int x = model.add_variable("x", -1.0);
  const int y = model.add_variable("y", -1.0);
  const int z = model.add_variable("z", -1.0);
  for (int i = 0; i < 10; ++i) {
    const int row = model.add_row("deg" + std::to_string(i), RowSense::kLe, 0.0);
    model.add_coefficient(row, x, 1.0 + 0.05 * i);
    model.add_coefficient(row, y, -1.0 - 0.03 * i);
    model.add_coefficient(row, z, i % 2 == 0 ? 0.5 : -0.5);
  }
  const int cap = model.add_row("cap", RowSense::kLe, 6.0);
  model.add_coefficient(cap, x, 1.0);
  model.add_coefficient(cap, y, 1.0);
  model.add_coefficient(cap, z, 1.0);

  double objectives[2] = {0.0, 0.0};
  int index = 0;
  for (const LpEngine engine : kBothEngines) {
    SimplexOptions options = engine_options(engine);
    options.stall_before_bland = 1;
    const LpSolution solution = solve_lp(model, options);
    ASSERT_EQ(solution.status, LpStatus::kOptimal) << engine_name(engine);
    EXPECT_LE(model.max_violation(solution.values), 1e-7)
        << engine_name(engine);
    objectives[index++] = solution.objective;
  }
  EXPECT_NEAR(objectives[0], objectives[1], 1e-9);
}

TEST(Simplex, EnginesAgreeOnRandomBoundedPrograms) {
  // Differential property test: on random bounded-feasible programs the
  // revised engine must reproduce the dense oracle's optimum (values may
  // differ at degenerate optima; objective and feasibility may not).
  Rng rng(90210);
  for (int trial = 0; trial < 40; ++trial) {
    LpModel model;
    const int vars = 3 + static_cast<int>(rng.index(8));
    for (int v = 0; v < vars; ++v) {
      model.add_variable("v" + std::to_string(v), rng.uniform_real(-2.0, 2.0));
    }
    for (int v = 0; v < vars; ++v) {
      const int row = model.add_row("cap" + std::to_string(v), RowSense::kLe,
                                    rng.uniform_real(1.0, 10.0));
      model.add_coefficient(row, v, 1.0);
    }
    const int mixes = 1 + static_cast<int>(rng.index(4));
    for (int r = 0; r < mixes; ++r) {
      const int row = model.add_row("mix" + std::to_string(r),
                                    r % 2 == 0 ? RowSense::kGe : RowSense::kLe,
                                    rng.uniform_real(0.2, 2.0));
      for (int v = 0; v < vars; ++v) {
        if (rng.index(3) == 0) continue;  // keep the rows sparse-ish
        model.add_coefficient(row, v, rng.uniform_real(0.1, 1.5));
      }
    }
    const LpSolution dense =
        solve_lp(model, engine_options(LpEngine::kDenseTableau));
    const LpSolution revised =
        solve_lp(model, engine_options(LpEngine::kRevised));
    ASSERT_EQ(dense.status, revised.status) << "trial " << trial;
    if (dense.status != LpStatus::kOptimal) continue;
    EXPECT_NEAR(dense.objective, revised.objective, 1e-6) << "trial " << trial;
    EXPECT_LE(model.max_violation(revised.values), 1e-6) << "trial " << trial;
    EXPECT_NEAR(model.objective_value(revised.values), revised.objective, 1e-6)
        << "trial " << trial;
  }
}

TEST(Simplex, EnginesAgreeOnInfeasibleAndUnbounded) {
  LpModel infeasible;
  const int x = infeasible.add_variable("x", 1.0);
  int row = infeasible.add_row("le", RowSense::kLe, 1.0);
  infeasible.add_coefficient(row, x, 1.0);
  row = infeasible.add_row("ge", RowSense::kGe, 2.0);
  infeasible.add_coefficient(row, x, 1.0);

  LpModel unbounded;
  const int u = unbounded.add_variable("u", -1.0);
  row = unbounded.add_row("ge", RowSense::kGe, 1.0);
  unbounded.add_coefficient(row, u, 1.0);

  for (const LpEngine engine : kBothEngines) {
    EXPECT_EQ(solve_lp(infeasible, engine_options(engine)).status,
              LpStatus::kInfeasible)
        << engine_name(engine);
    EXPECT_EQ(solve_lp(unbounded, engine_options(engine)).status,
              LpStatus::kUnbounded)
        << engine_name(engine);
  }
}

TEST(Presolve, DropsEmptyAndDuplicateRows) {
  LpModel model;
  const int x = model.add_variable("x", 1.0);
  const int y = model.add_variable("y", 2.0);
  int row = model.add_row("empty", RowSense::kLe, 5.0);  // no coefficients
  for (int i = 0; i < 2; ++i) {
    row = model.add_row("dup" + std::to_string(i), RowSense::kLe,
                        i == 0 ? 4.0 : 3.0);
    model.add_coefficient(row, x, 1.0);
    model.add_coefficient(row, y, 1.0);
  }
  const PresolvedLp presolved = presolve_lp(model, SimplexOptions{});
  EXPECT_FALSE(presolved.summary.infeasible);
  // The empty row and the looser duplicate (rhs 4) both go; the binding
  // copy (rhs 3) survives.
  EXPECT_EQ(presolved.summary.rows_dropped, 2);
  ASSERT_EQ(presolved.model.num_rows(), 1);
  EXPECT_NEAR(presolved.model.rhs(0), 3.0, 1e-12);
}

TEST(Presolve, FixesSingletonEqualityChains) {
  // x = 3 pins x; substituting makes "x + y = 5" a singleton pinning y.
  LpModel model;
  const int x = model.add_variable("x", 2.0);
  const int y = model.add_variable("y", 1.0);
  int row = model.add_row("fix_x", RowSense::kEq, 3.0);
  model.add_coefficient(row, x, 1.0);
  row = model.add_row("sum", RowSense::kEq, 5.0);
  model.add_coefficient(row, x, 1.0);
  model.add_coefficient(row, y, 1.0);
  const PresolvedLp presolved = presolve_lp(model, SimplexOptions{});
  EXPECT_FALSE(presolved.summary.infeasible);
  EXPECT_EQ(presolved.summary.cols_fixed, 2);
  EXPECT_EQ(presolved.summary.rows_dropped, 2);
  EXPECT_EQ(presolved.column_map[static_cast<std::size_t>(x)], -1);
  EXPECT_EQ(presolved.column_map[static_cast<std::size_t>(y)], -1);
  EXPECT_NEAR(presolved.fixed_values[static_cast<std::size_t>(x)], 3.0, 1e-12);
  EXPECT_NEAR(presolved.fixed_values[static_cast<std::size_t>(y)], 2.0, 1e-12);
  // Objective offset carries the fixed variables' cost: 2*3 + 1*2.
  EXPECT_NEAR(presolved.summary.objective_offset, 8.0, 1e-12);
  // The full solve must agree with the hand computation.
  const LpSolution solution = solve_lp(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 8.0, 1e-9);
  EXPECT_NEAR(solution.values[x], 3.0, 1e-9);
  EXPECT_NEAR(solution.values[y], 2.0, 1e-9);
}

TEST(Presolve, DetectsInfeasibilityFromEmptyAndConflictingRows) {
  // After fixing x = 1, the row "x <= 0" becomes an unsatisfiable empty row.
  LpModel model;
  const int x = model.add_variable("x", 0.0);
  int row = model.add_row("fix", RowSense::kEq, 1.0);
  model.add_coefficient(row, x, 1.0);
  row = model.add_row("cap", RowSense::kLe, 0.0);
  model.add_coefficient(row, x, 1.0);
  const PresolvedLp presolved = presolve_lp(model, SimplexOptions{});
  EXPECT_TRUE(presolved.summary.infeasible);
  EXPECT_EQ(solve_lp(model).status, LpStatus::kInfeasible);
}

TEST(Presolve, EmptyColumnWithNegativeCostFlagsUnbounded) {
  // y appears in no row; cost -1 means y -> +inf drives the objective to
  // -inf once the rest is feasible.
  LpModel model;
  const int x = model.add_variable("x", 1.0);
  model.add_variable("y", -1.0);
  const int row = model.add_row("cap", RowSense::kLe, 4.0);
  model.add_coefficient(row, x, 1.0);
  const PresolvedLp presolved = presolve_lp(model, SimplexOptions{});
  EXPECT_TRUE(presolved.summary.unbounded_if_feasible);
  EXPECT_EQ(solve_lp(model).status, LpStatus::kUnbounded);
}

TEST(Presolve, NormalizesNegativeRhs) {
  // -x <= -3 must arrive at the engine as x >= 3 with rhs +3.
  LpModel model;
  const int x = model.add_variable("x", 1.0);
  const int row = model.add_row("neg", RowSense::kLe, -3.0);
  model.add_coefficient(row, x, -1.0);
  const PresolvedLp presolved = presolve_lp(model, SimplexOptions{});
  EXPECT_EQ(presolved.summary.rows_normalized, 1);
  ASSERT_EQ(presolved.model.num_rows(), 1);
  EXPECT_NEAR(presolved.model.rhs(0), 3.0, 1e-12);
  EXPECT_EQ(presolved.model.sense(0), RowSense::kGe);
}

TEST(Simplex, IterationLimitReported) {
  LpModel model;
  const int x = model.add_variable("x", -1.0);
  const int y = model.add_variable("y", -2.0);
  for (int i = 0; i < 4; ++i) {
    const int row =
        model.add_row("r" + std::to_string(i), RowSense::kLe, 10.0 + i);
    model.add_coefficient(row, x, 1.0 + 0.3 * i);
    model.add_coefficient(row, y, 2.0 - 0.3 * i);
  }
  SimplexOptions options;
  options.max_pivots = 1;
  const LpSolution solution = solve_lp(model, options);
  EXPECT_EQ(solution.status, LpStatus::kIterationLimit);
}

// Random bounded-feasible program in the style of
// EnginesAgreeOnRandomBoundedPrograms: per-variable caps keep it bounded,
// the >= mix rows force Phase 1 work.
LpModel make_random_bounded_program(Rng& rng) {
  LpModel model;
  const int vars = 3 + static_cast<int>(rng.index(8));
  for (int v = 0; v < vars; ++v) {
    model.add_variable("v" + std::to_string(v), rng.uniform_real(-2.0, 2.0));
  }
  for (int v = 0; v < vars; ++v) {
    const int row = model.add_row("cap" + std::to_string(v), RowSense::kLe,
                                  rng.uniform_real(1.0, 10.0));
    model.add_coefficient(row, v, 1.0);
  }
  const int mixes = 1 + static_cast<int>(rng.index(4));
  for (int r = 0; r < mixes; ++r) {
    const int row = model.add_row("mix" + std::to_string(r),
                                  r % 2 == 0 ? RowSense::kGe : RowSense::kLe,
                                  rng.uniform_real(0.2, 2.0));
    for (int v = 0; v < vars; ++v) {
      if (rng.index(3) == 0) continue;
      model.add_coefficient(row, v, rng.uniform_real(0.1, 1.5));
    }
  }
  return model;
}

TEST(Simplex, WarmStartSkipsPhase1OnResolveAndAgreesWithDense) {
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    const LpModel model = make_random_bounded_program(rng);
    const LpSolution dense =
        solve_lp(model, engine_options(LpEngine::kDenseTableau));

    WarmStart warm;
    SimplexWorkspace workspace;
    SimplexOptions options = engine_options(LpEngine::kRevised);
    options.warm_start = &warm;
    options.workspace = &workspace;
    const LpSolution cold = solve_lp(model, options);
    ASSERT_EQ(cold.status, dense.status) << "trial " << trial;
    EXPECT_FALSE(cold.warm_started) << "trial " << trial;
    if (cold.status != LpStatus::kOptimal) continue;
    ASSERT_TRUE(warm.valid) << "trial " << trial;

    // Re-solving the same model with the exported basis must skip Phase 1
    // (and the artificial expulsion) entirely and land on the same optimum.
    const LpSolution resolved = solve_lp(model, options);
    ASSERT_EQ(resolved.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_TRUE(resolved.warm_started) << "trial " << trial;
    EXPECT_EQ(resolved.phase1_pivots, 0) << "trial " << trial;
    EXPECT_EQ(resolved.expel_pivots, 0) << "trial " << trial;
    EXPECT_NEAR(resolved.objective, dense.objective, 1e-6) << "trial " << trial;
    EXPECT_LE(model.max_violation(resolved.values), 1e-6) << "trial " << trial;
  }
}

TEST(Simplex, WarmChainedRhsSweepMatchesDenseOracle) {
  // The mm-feasibility use case: one LP shape re-solved while a capacity
  // rhs tightens step by step (the m'-descending TISE sweep). Chaining one
  // WarmStart + SimplexWorkspace through the sweep must agree with the
  // dense oracle at every step, whether a given basis transfers or not.
  WarmStart warm;
  SimplexWorkspace workspace;
  int accepted = 0;
  for (int capacity = 12; capacity >= 4; --capacity) {
    LpModel model;
    std::vector<int> vars;
    for (int v = 0; v < 5; ++v) {
      vars.push_back(
          model.add_variable("x" + std::to_string(v), -(1.0 + 0.3 * v)));
    }
    const int shared =
        model.add_row("capacity", RowSense::kLe, static_cast<double>(capacity));
    for (int v = 0; v < 5; ++v) {
      model.add_coefficient(shared, vars[static_cast<std::size_t>(v)], 1.0);
      const int cap = model.add_row("cap" + std::to_string(v), RowSense::kLe,
                                    3.0 + v);
      model.add_coefficient(cap, vars[static_cast<std::size_t>(v)], 1.0);
    }
    const int floor_row = model.add_row("floor", RowSense::kGe, 1.0);
    model.add_coefficient(floor_row, vars[0], 1.0);
    model.add_coefficient(floor_row, vars[1], 1.0);

    const LpSolution dense =
        solve_lp(model, engine_options(LpEngine::kDenseTableau));
    SimplexOptions options = engine_options(LpEngine::kRevised);
    options.warm_start = &warm;
    options.workspace = &workspace;
    const LpSolution solved = solve_lp(model, options);
    ASSERT_EQ(solved.status, LpStatus::kOptimal) << "capacity " << capacity;
    ASSERT_EQ(dense.status, LpStatus::kOptimal) << "capacity " << capacity;
    EXPECT_NEAR(solved.objective, dense.objective, 1e-6)
        << "capacity " << capacity;
    if (solved.warm_started) {
      ++accepted;
      EXPECT_EQ(solved.phase1_pivots, 0) << "capacity " << capacity;
    }
  }
  // The basis transfers across at least some of the gentle rhs steps.
  EXPECT_GE(accepted, 1);
}

TEST(Simplex, CorruptWarmStartIsRejectedAndSolveStaysCorrect) {
  Rng rng(31337);
  const LpModel model = make_random_bounded_program(rng);
  const LpSolution dense =
      solve_lp(model, engine_options(LpEngine::kDenseTableau));
  ASSERT_EQ(dense.status, LpStatus::kOptimal);

  WarmStart warm;
  SimplexOptions options = engine_options(LpEngine::kRevised);
  options.warm_start = &warm;
  ASSERT_EQ(solve_lp(model, options).status, LpStatus::kOptimal);
  ASSERT_TRUE(warm.valid);
  ASSERT_GE(warm.basis.size(), 2u);

  // A duplicated basis column can never factorize; the engine must fall
  // back to the cold path and still reach the oracle's optimum.
  std::fill(warm.basis.begin(), warm.basis.end(), warm.basis[0]);
  const LpSolution solved = solve_lp(model, options);
  ASSERT_EQ(solved.status, LpStatus::kOptimal);
  EXPECT_FALSE(solved.warm_started);
  EXPECT_NEAR(solved.objective, dense.objective, 1e-6);
  // The corrupt basis was replaced by a freshly exported usable one.
  EXPECT_TRUE(warm.valid);
  const LpSolution resolved = solve_lp(model, options);
  EXPECT_TRUE(resolved.warm_started);
  EXPECT_NEAR(resolved.objective, dense.objective, 1e-6);
}

TEST(Simplex, WarmWorkspaceSolvesAreBitIdenticalToCold) {
  // Stronger than the tolerance-based reuse test below: the options doc
  // promises results are *bit-identical* whichever workspace a solve runs
  // in. Solve each program cold (fresh arena) and warm (one arena already
  // grown by earlier, differently-shaped programs) and require the exact
  // same bytes — values, objective, and pivot counts. Any kernel that
  // read stale arena state would show up here as a ULP-level diff.
  Rng rng(90210);
  SimplexWorkspace warm_arena;
  for (int trial = 0; trial < 12; ++trial) {
    const LpModel model = make_random_bounded_program(rng);
    SimplexOptions cold_options = engine_options(LpEngine::kRevised);
    SimplexWorkspace cold_arena;
    cold_options.workspace = &cold_arena;
    SimplexOptions warm_options = engine_options(LpEngine::kRevised);
    warm_options.workspace = &warm_arena;
    const LpSolution cold = solve_lp(model, cold_options);
    const LpSolution warm = solve_lp(model, warm_options);
    ASSERT_EQ(cold.status, warm.status) << "trial " << trial;
    EXPECT_EQ(cold.objective, warm.objective) << "trial " << trial;
    EXPECT_EQ(cold.phase1_pivots, warm.phase1_pivots) << "trial " << trial;
    EXPECT_EQ(cold.phase2_pivots, warm.phase2_pivots) << "trial " << trial;
    EXPECT_EQ(cold.expel_pivots, warm.expel_pivots) << "trial " << trial;
    ASSERT_EQ(cold.values.size(), warm.values.size()) << "trial " << trial;
    for (std::size_t v = 0; v < cold.values.size(); ++v) {
      EXPECT_EQ(cold.values[v], warm.values[v])
          << "trial " << trial << " variable " << v;
    }
  }
}

TEST(Simplex, PerfCountersProveWarmArenaStopsAllocating) {
  // The allocation story the ASan CI job asserts via bench_pivot_kernels,
  // pinned at unit level: re-solving one model in one arena must count a
  // workspace reuse per solve and zero buffer growths after the first.
  Rng rng(1029);
  const LpModel model = make_random_bounded_program(rng);
  SimplexWorkspace arena;
  SimplexOptions options = engine_options(LpEngine::kRevised);
  options.workspace = &arena;
  ASSERT_EQ(solve_lp(model, options).status, LpStatus::kOptimal);  // warmup

  const LpPerfCounters before = lp_perf_snapshot();
  constexpr int kReps = 4;
  for (int rep = 0; rep < kReps; ++rep) {
    ASSERT_EQ(solve_lp(model, options).status, LpStatus::kOptimal);
  }
  const LpPerfCounters delta = lp_perf_snapshot() - before;
  EXPECT_EQ(delta.solves, kReps);
  EXPECT_EQ(delta.workspace_reuses, kReps);
  EXPECT_EQ(delta.buffer_growths, 0);
  EXPECT_GT(delta.pivots, 0);
  EXPECT_GT(delta.etas_applied, 0);
}

TEST(Simplex, WorkspaceReuseAcrossShapesMatchesFreshSolves) {
  // One workspace carried across programs of different sizes must behave
  // exactly like a fresh engine every time (build() resets all state), down
  // to identical pivot counts — the engine is deterministic.
  Rng rng(4242);
  SimplexWorkspace workspace;
  for (int trial = 0; trial < 12; ++trial) {
    const LpModel model = make_random_bounded_program(rng);
    SimplexOptions reused = engine_options(LpEngine::kRevised);
    reused.workspace = &workspace;
    const LpSolution fresh = solve_lp(model, engine_options(LpEngine::kRevised));
    const LpSolution shared = solve_lp(model, reused);
    ASSERT_EQ(fresh.status, shared.status) << "trial " << trial;
    if (fresh.status != LpStatus::kOptimal) continue;
    EXPECT_NEAR(fresh.objective, shared.objective, 1e-9) << "trial " << trial;
    EXPECT_EQ(fresh.phase1_pivots, shared.phase1_pivots) << "trial " << trial;
    EXPECT_EQ(fresh.phase2_pivots, shared.phase2_pivots) << "trial " << trial;
    EXPECT_EQ(fresh.expel_pivots, shared.expel_pivots) << "trial " << trial;
  }
}

}  // namespace
}  // namespace calisched

// Tests for the telemetry layer (src/trace/): counter/span aggregation,
// JSON round-trips of nested contexts, and the integration contract that
// the trace a solve produces agrees with the legacy telemetry structs it
// derives.
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "longwin/long_pipeline.hpp"
#include "lp/simplex.hpp"
#include "mm/mm.hpp"
#include "shortwin/short_pipeline.hpp"
#include "solver/ise_solver.hpp"
#include "trace/json.hpp"
#include "trace/trace.hpp"

namespace calisched {
namespace {

TEST(Trace, CountersAddAndSet) {
  TraceContext trace("t");
  EXPECT_EQ(trace.counter("x"), 0);
  EXPECT_FALSE(trace.has_counter("x"));
  trace.add("x");
  trace.add("x", 4);
  EXPECT_EQ(trace.counter("x"), 5);
  EXPECT_TRUE(trace.has_counter("x"));
  trace.set("x", 2);
  EXPECT_EQ(trace.counter("x"), 2);
  trace.set_value("pi", 3.25);
  EXPECT_DOUBLE_EQ(trace.value("pi"), 3.25);
  EXPECT_DOUBLE_EQ(trace.value("absent"), 0.0);
}

TEST(Trace, NotesKeepDistinctValuesInInsertionOrder) {
  TraceContext trace("t");
  trace.note("mm.algorithm", "greedy-edf");
  trace.note("mm.algorithm", "exact");
  trace.note("mm.algorithm", "greedy-edf");  // duplicate: kept once
  const auto notes = trace.notes("mm.algorithm");
  ASSERT_EQ(notes.size(), 2u);
  EXPECT_EQ(notes[0], "greedy-edf");
  EXPECT_EQ(notes[1], "exact");
}

TEST(Trace, SpansAggregateByName) {
  TraceContext trace("t");
  trace.record_span("mm", 100);
  trace.record_span("mm", 250);
  trace.record_span("lp", 7);
  EXPECT_EQ(trace.span_ns("mm"), 350);
  EXPECT_EQ(trace.span_count("mm"), 2);
  EXPECT_EQ(trace.span_ns("lp"), 7);
  EXPECT_EQ(trace.span_count("lp"), 1);
  EXPECT_FALSE(trace.has_span("edf"));
}

TEST(Trace, AbsorbMergesCountersValuesNotesSpansChildren) {
  TraceContext parent("p");
  parent.add("pivots", 2);
  parent.note("algo", "a");
  parent.record_span("mm", 10);
  parent.child("lp").add("rows", 3);

  TraceContext other("scratch");
  other.add("pivots", 5);
  other.add("fresh", 1);
  other.set_value("ratio", 0.5);
  other.note("algo", "a");  // duplicate across contexts: kept once
  other.note("algo", "b");
  other.record_span("mm", 32);
  other.record_span("mm", 8);
  other.child("lp").add("rows", 4);
  other.child("edf").note("box", "greedy");

  parent.absorb(other);
  EXPECT_EQ(parent.counter("pivots"), 7);
  EXPECT_EQ(parent.counter("fresh"), 1);
  EXPECT_DOUBLE_EQ(parent.value("ratio"), 0.5);
  EXPECT_EQ(parent.notes("algo"), (std::vector<std::string>{"a", "b"}));
  // Span aggregates merge as aggregates: total_ns summed, count summed
  // (not bumped once per absorb).
  EXPECT_EQ(parent.span_ns("mm"), 50);
  EXPECT_EQ(parent.span_count("mm"), 3);
  ASSERT_NE(parent.find("lp"), nullptr);
  EXPECT_EQ(parent.find("lp")->counter("rows"), 7);
  ASSERT_NE(parent.find("edf"), nullptr);
  EXPECT_EQ(parent.find("edf")->notes("box"),
            std::vector<std::string>{"greedy"});
  // The source is read-only throughout.
  EXPECT_EQ(other.counter("pivots"), 5);
  EXPECT_EQ(other.span_count("mm"), 2);
}

TEST(Trace, ConcurrentScratchRecordingMergesDeterministically) {
  // The thread-local-child contract (trace.hpp): workers record into
  // exclusively-owned scratch traces concurrently, and the owner absorbs
  // them in task order after the join. The merged trace must be
  // byte-identical to a sequential run of the same tasks — and TSan must
  // see no data races (CI runs this test under the tsan preset).
  constexpr int kTasks = 16;
  const auto record = [](TraceContext& scratch, int i) {
    scratch.add("task.count");
    scratch.add("work", i);
    scratch.record_span("interval", 10 + i);
    scratch.note("box", i % 2 == 0 ? "even" : "odd");
    scratch.child("mm").add("invocations", 2);
  };

  // deque: TraceContext is neither copyable nor movable.
  std::deque<TraceContext> scratch;
  for (int i = 0; i < kTasks; ++i) scratch.emplace_back("scratch");
  std::vector<std::thread> threads;
  threads.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    threads.emplace_back(
        [&record, &scratch, i] { record(scratch[static_cast<std::size_t>(i)], i); });
  }
  for (std::thread& thread : threads) thread.join();
  TraceContext merged("root");
  for (const TraceContext& s : scratch) merged.absorb(s);

  TraceContext reference("root");
  std::deque<TraceContext> sequential;
  for (int i = 0; i < kTasks; ++i) {
    sequential.emplace_back("scratch");
    record(sequential.back(), i);
    reference.absorb(sequential.back());
  }
  EXPECT_EQ(merged.json(), reference.json());
  EXPECT_EQ(merged.counter("task.count"), kTasks);
  ASSERT_NE(merged.find("mm"), nullptr);
  EXPECT_EQ(merged.find("mm")->counter("invocations"), 2 * kTasks);
}

TEST(Trace, TraceSpanStopIsIdempotentAndNullSafe) {
  TraceContext trace("t");
  {
    TraceSpan span(&trace, "stage");
    span.stop();
    span.stop();  // second stop must not double-record
  }                // destructor must not record a third time
  EXPECT_EQ(trace.span_count("stage"), 1);
  TraceSpan null_span(nullptr, "stage");  // must be a no-op
  null_span.stop();
  EXPECT_EQ(trace.span_count("stage"), 1);
}

TEST(Trace, ChildFindOrCreateIsStable) {
  TraceContext trace("root");
  TraceContext& a = trace.child("long_window");
  a.add("jobs", 3);
  TraceContext& again = trace.child("long_window");
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(trace.children().size(), 1u);
  ASSERT_NE(trace.find("long_window"), nullptr);
  EXPECT_EQ(trace.find("long_window")->counter("jobs"), 3);
  EXPECT_EQ(trace.find("missing"), nullptr);
}

TEST(Trace, JsonRoundTripNestedContext) {
  TraceContext trace("solve_ise");
  trace.set("jobs", 12);
  trace.set_value("lp.objective", 4.75);
  trace.note("algorithm", "combined");
  trace.record_span("split", 123);
  TraceContext& lw = trace.child("long_window");
  lw.set("lp.pivots", 99);
  lw.child("simplex").set("pivots.phase1", 42);
  TraceContext& sw = trace.child("short_window");
  sw.record_span("mm", 1000);
  sw.record_span("mm", 2000);

  const std::string text = trace.json();
  const auto parsed = TraceContext::parse(text);
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->name(), "solve_ise");
  EXPECT_EQ(parsed->counter("jobs"), 12);
  EXPECT_DOUBLE_EQ(parsed->value("lp.objective"), 4.75);
  EXPECT_EQ(parsed->notes("algorithm"),
            std::vector<std::string>{"combined"});
  EXPECT_EQ(parsed->span_ns("split"), 123);
  const TraceContext* plw = parsed->find("long_window");
  ASSERT_NE(plw, nullptr);
  EXPECT_EQ(plw->counter("lp.pivots"), 99);
  ASSERT_NE(plw->find("simplex"), nullptr);
  EXPECT_EQ(plw->find("simplex")->counter("pivots.phase1"), 42);
  const TraceContext* psw = parsed->find("short_window");
  ASSERT_NE(psw, nullptr);
  EXPECT_EQ(psw->span_ns("mm"), 3000);
  EXPECT_EQ(psw->span_count("mm"), 2);
  // Serializing the parsed tree reproduces the text exactly (deterministic
  // ordered serialization).
  EXPECT_EQ(parsed->json(), text);
}

TEST(Json, IntegersSurviveRoundTripExactly) {
  JsonValue::Object obj;
  obj.emplace_back("big", JsonValue(std::int64_t{1} << 53));
  obj.emplace_back("neg", JsonValue(std::int64_t{-7}));
  obj.emplace_back("frac", JsonValue(0.5));
  const JsonValue value{std::move(obj)};
  const JsonValue reparsed = JsonValue::parse(value.dump());
  EXPECT_TRUE(reparsed.find("big")->is_int());
  EXPECT_EQ(reparsed.find("big")->as_int(), std::int64_t{1} << 53);
  EXPECT_EQ(reparsed.find("neg")->as_int(), -7);
  EXPECT_TRUE(reparsed.find("frac")->is_double());
  EXPECT_DOUBLE_EQ(reparsed.find("frac")->as_double(), 0.5);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("true false"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
}

Instance mixed_instance(std::uint64_t seed) {
  GenParams params;
  params.seed = seed;
  params.n = 16;
  params.T = 10;
  params.machines = 2;
  params.horizon = 80;
  params.min_proc = 1;
  params.max_proc = 6;
  return generate_mixed(params, 0.5);
}

TEST(TraceIntegration, DensePivotCountersPartitionByExecutionPath) {
  // Every dense-tableau pivot runs either the serial or the parallel row
  // elimination, and belongs to exactly one of phase 1, phase 2, or the
  // post-phase-1 artificial expulsion. The two decompositions must count
  // the same pivots: serial + parallel == phase1 + phase2 + expel.
  LpModel model;
  for (int v = 0; v < 6; ++v) {
    model.add_variable("v" + std::to_string(v), (v % 2 == 0) ? 1.0 : -0.5);
  }
  for (int v = 0; v < 6; ++v) {
    const int row = model.add_row("cap" + std::to_string(v), RowSense::kLe,
                                  2.0 + v);
    model.add_coefficient(row, v, 1.0);
  }
  // kGe and kEq rows force artificials, so phase 1 (and potentially the
  // expel pass) contribute pivots too.
  int row = model.add_row("ge", RowSense::kGe, 1.5);
  for (int v = 0; v < 6; ++v) model.add_coefficient(row, v, 1.0);
  row = model.add_row("eq", RowSense::kEq, 2.0);
  model.add_coefficient(row, 0, 1.0);
  model.add_coefficient(row, 1, 1.0);

  for (const bool force_parallel : {false, true}) {
    TraceContext trace("lp");
    SimplexOptions options;
    options.engine = LpEngine::kDenseTableau;
    options.trace = &trace;
    options.parallel = force_parallel;
    if (force_parallel) options.parallel_threshold = 0;
    const LpSolution solution = solve_lp(model, options);
    ASSERT_EQ(solution.status, LpStatus::kOptimal);
    EXPECT_GT(trace.counter("pivots.phase1"), 0);
    EXPECT_EQ(
        trace.counter("pivots.serial") + trace.counter("pivots.parallel"),
        trace.counter("pivots.phase1") + trace.counter("pivots.phase2") +
            trace.counter("pivots.expel"))
        << (force_parallel ? "parallel" : "serial");
    // The forced path must actually be the one that ran.
    if (force_parallel) {
      EXPECT_EQ(trace.counter("pivots.serial"), 0);
    } else {
      EXPECT_EQ(trace.counter("pivots.parallel"), 0);
    }
  }
}

TEST(TraceIntegration, SolveIseTraceMatchesTelemetryViews) {
  const Instance instance = mixed_instance(3);
  TraceContext trace("solve_ise");
  IseSolverOptions options;
  options.trace = &trace;
  const IseSolveResult result = solve_ise(instance, options);
  ASSERT_TRUE(result.feasible);

  // Top level: job split and totals.
  EXPECT_EQ(trace.counter("jobs.long"),
            static_cast<std::int64_t>(result.long_job_count));
  EXPECT_EQ(trace.counter("jobs.short"),
            static_cast<std::int64_t>(result.short_job_count));
  EXPECT_EQ(trace.counter("calibrations.total"),
            static_cast<std::int64_t>(result.total_calibrations));
  EXPECT_EQ(trace.counter("machines.allotted"), result.machines_allotted);
  EXPECT_TRUE(trace.has_span("split"));
  EXPECT_TRUE(trace.has_span("combine"));

  // Long-window child mirrors LongWindowTelemetry (including the LP pivot
  // count the LpSolution reported).
  const TraceContext* lw = trace.find("long_window");
  ASSERT_NE(lw, nullptr);
  EXPECT_EQ(lw->counter("lp.pivots"), result.long_telemetry.lp_pivots);
  EXPECT_EQ(lw->counter("lp.rows"), result.long_telemetry.lp_rows);
  EXPECT_EQ(lw->counter("lp.columns"), result.long_telemetry.lp_columns);
  EXPECT_DOUBLE_EQ(lw->value("lp.objective"),
                   result.long_telemetry.lp_objective);
  EXPECT_EQ(lw->counter("calibrations.total"),
            static_cast<std::int64_t>(result.long_telemetry.total_calibrations));
  EXPECT_TRUE(lw->has_span("trim"));
  EXPECT_TRUE(lw->has_span("lp"));
  EXPECT_TRUE(lw->has_span("rounding"));
  EXPECT_TRUE(lw->has_span("edf"));

  // The simplex grandchild reports its per-phase pivots; their sum is the
  // pivot total the LP solution carried into the telemetry.
  const TraceContext* simplex = lw->find("simplex");
  ASSERT_NE(simplex, nullptr);
  EXPECT_EQ(simplex->counter("pivots.phase1") + simplex->counter("pivots.phase2"),
            result.long_telemetry.lp_pivots);

  // Short-window child mirrors ShortWindowTelemetry and traces MM calls.
  const TraceContext* sw = trace.find("short_window");
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(sw->counter("mm.machines.sum"),
            result.short_telemetry.sum_mm_machines);
  EXPECT_EQ(sw->counter("intervals.pass1") + sw->counter("intervals.pass2"),
            result.short_telemetry.intervals_pass1 +
                result.short_telemetry.intervals_pass2);
  EXPECT_TRUE(sw->has_span("partition"));
  if (result.short_job_count > 0) {
    EXPECT_GT(sw->counter("mm.invocations"), 0);
    EXPECT_TRUE(sw->has_span("mm"));
    EXPECT_EQ(sw->notes("mm.algorithm").size(),
              result.short_telemetry.mm_algorithms.size());
  }
}

TEST(TraceIntegration, PipelinesProduceSameTelemetryWithAndWithoutTrace) {
  // The compatibility view must not depend on whether the caller supplied
  // a sink: field-for-field identical results either way.
  GenParams params;
  params.seed = 7;
  params.n = 10;
  params.T = 10;
  params.machines = 2;
  params.horizon = 80;
  params.max_proc = 10;
  const Instance long_instance = generate_long_window(params);

  const LongWindowResult untraced = solve_long_window(long_instance);
  TraceContext trace("long_window");
  LongWindowOptions traced_options;
  traced_options.trace = &trace;
  const LongWindowResult traced = solve_long_window(long_instance, traced_options);
  ASSERT_EQ(untraced.feasible, traced.feasible);
  EXPECT_EQ(untraced.telemetry.m_prime, traced.telemetry.m_prime);
  EXPECT_EQ(untraced.telemetry.machines_allotted,
            traced.telemetry.machines_allotted);
  EXPECT_DOUBLE_EQ(untraced.telemetry.lp_objective,
                   traced.telemetry.lp_objective);
  EXPECT_EQ(untraced.telemetry.lp_pivots, traced.telemetry.lp_pivots);
  EXPECT_EQ(untraced.telemetry.rounded_calibrations,
            traced.telemetry.rounded_calibrations);
  EXPECT_EQ(untraced.telemetry.total_calibrations,
            traced.telemetry.total_calibrations);

  GenParams short_params;
  short_params.seed = 5;
  short_params.n = 12;
  short_params.T = 10;
  short_params.machines = 2;
  short_params.horizon = 100;
  short_params.max_proc = 9;
  const Instance short_instance = generate_short_window(short_params);
  const GreedyEdfMM mm;
  const ShortWindowResult plain = solve_short_window(short_instance, mm);
  TraceContext short_trace("short_window");
  IntervalOptions interval_options;
  interval_options.trace = &short_trace;
  const ShortWindowResult with_trace =
      solve_short_window(short_instance, mm, interval_options);
  ASSERT_TRUE(plain.feasible);
  ASSERT_TRUE(with_trace.feasible);
  EXPECT_EQ(plain.telemetry.intervals_pass1,
            with_trace.telemetry.intervals_pass1);
  EXPECT_EQ(plain.telemetry.intervals_pass2,
            with_trace.telemetry.intervals_pass2);
  EXPECT_EQ(plain.telemetry.sum_mm_machines,
            with_trace.telemetry.sum_mm_machines);
  EXPECT_EQ(plain.telemetry.max_mm_machines,
            with_trace.telemetry.max_mm_machines);
  EXPECT_EQ(plain.telemetry.machines_allotted,
            with_trace.telemetry.machines_allotted);
  EXPECT_EQ(plain.telemetry.total_calibrations,
            with_trace.telemetry.total_calibrations);
  EXPECT_EQ(plain.telemetry.mm_algorithms, with_trace.telemetry.mm_algorithms);
}

}  // namespace
}  // namespace calisched

// Tests for the Section-4 short-window machinery: Algorithm 5 interval
// scheduling (crossing jobs included), Algorithm 4 partitioning, and the
// Theorem 20 bounds against MM telemetry.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <utility>

#include "core/schedule_io.hpp"
#include "gen/generators.hpp"
#include "mm/mm.hpp"
#include "shortwin/short_pipeline.hpp"
#include "trace/trace.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

GenParams short_params(std::uint64_t seed, int n = 12) {
  GenParams params;
  params.seed = seed;
  params.n = n;
  params.T = 10;
  params.machines = 2;
  params.horizon = 100;
  params.max_proc = 9;
  return params;
}

TEST(IntervalSchedule, EmptyIntervalIsTrivial) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  const GreedyEdfMM mm;
  const IntervalScheduleResult result = schedule_interval(instance, 0, mm);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.mm_machines, 0);
  EXPECT_EQ(result.schedule.num_calibrations(), 0u);
}

TEST(IntervalSchedule, NoncrossingJobsStayOnCalendarMachines) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  // Two sequential jobs inside the first calendar slot [0, 10).
  instance.jobs = {{0, 0, 10, 5}, {1, 0, 12, 5}};
  const GreedyEdfMM mm;
  const IntervalScheduleResult result = schedule_interval(instance, 0, mm);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.mm_machines, 1);
  // Full calendar: 2 * gamma = 4 calibrations, no crossing calibrations.
  EXPECT_EQ(result.schedule.num_calibrations(), 4u);
  const VerifyResult check = verify_ise(instance, result.schedule);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

TEST(IntervalSchedule, CrossingJobGetsDedicatedCalibration) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  // The MM schedule will run this job across the t=10 boundary: window
  // forces start in [6, 8], so [start, start+8) crosses 10.
  instance.jobs = {{0, 6, 16, 8}};
  const GreedyEdfMM mm;
  const IntervalScheduleResult result = schedule_interval(instance, 0, mm);
  ASSERT_TRUE(result.feasible);
  // 4 calendar calibrations + 1 dedicated crossing calibration.
  EXPECT_EQ(result.schedule.num_calibrations(), 5u);
  const VerifyResult check = verify_ise(instance, result.schedule);
  EXPECT_TRUE(check.ok()) << check.to_string();
  // The job must sit on a crossing machine (index >= w = 1).
  ASSERT_EQ(result.schedule.jobs.size(), 1u);
  EXPECT_GE(result.schedule.jobs[0].machine, 1);
}

TEST(IntervalSchedule, TrimUnusedCalibrationsOption) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 0, 10, 5}};
  const GreedyEdfMM mm;
  IntervalOptions options;
  options.trim_unused_calibrations = true;
  const IntervalScheduleResult result = schedule_interval(instance, 0, mm, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.schedule.num_calibrations(), 1u);
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(ShortPipeline, FeasibleAndCleanAcrossSeeds) {
  const GreedyEdfMM mm;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Instance instance = generate_short_window(short_params(seed));
    const ShortWindowResult result = solve_short_window(instance, mm);
    ASSERT_TRUE(result.feasible) << "seed " << seed << ": " << result.error;
    const VerifyResult check = verify_ise(instance, result.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
  }
}

TEST(ShortPipeline, Lemma19CalibrationBudget) {
  const GreedyEdfMM mm;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Instance instance = generate_short_window(short_params(seed, 16));
    const ShortWindowResult result = solve_short_window(instance, mm);
    ASSERT_TRUE(result.feasible) << "seed " << seed;
    // Lemma 19 per interval: <= 4*gamma*w calibrations; summed over
    // intervals and passes: <= 4 * gamma * sum_i w_i.
    const Time gamma = 2;
    EXPECT_LE(result.telemetry.total_calibrations,
              static_cast<std::size_t>(4 * gamma *
                                       result.telemetry.sum_mm_machines))
        << "seed " << seed;
    // Machine pools: 3 * max_w per pass, two passes.
    EXPECT_LE(result.telemetry.machines_allotted,
              6 * result.telemetry.max_mm_machines)
        << "seed " << seed;
  }
}

TEST(ShortPipeline, OffsetPassCatchesBoundaryStraddlers) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  // Interval width is 4T = 40. This job straddles t = 40 (release 35,
  // deadline 45), so only the offset pass (intervals [20, 60)) nests it.
  instance.jobs = {{0, 35, 45, 5}};
  const GreedyEdfMM mm;
  const ShortWindowResult result = solve_short_window(instance, mm);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_EQ(result.telemetry.intervals_pass1, 0);
  EXPECT_EQ(result.telemetry.intervals_pass2, 1);
  EXPECT_TRUE(verify_ise(instance, result.schedule).ok());
}

TEST(ShortPipeline, BothPassesShareNothing) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {
      {0, 0, 10, 5},    // pass 1, interval [0, 40)
      {1, 35, 45, 5},   // pass 2, interval [20, 60)
      {2, 50, 65, 8},   // pass 1, interval [40, 80)
  };
  const GreedyEdfMM mm;
  const ShortWindowResult result = solve_short_window(instance, mm);
  ASSERT_TRUE(result.feasible) << result.error;
  EXPECT_EQ(result.telemetry.intervals_pass1, 2);
  EXPECT_EQ(result.telemetry.intervals_pass2, 1);
  const VerifyResult check = verify_ise(instance, result.schedule);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

TEST(ShortPipeline, PartitionAdversarialInstances) {
  const ExactMM mm;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = generate_partition_adversarial(seed, 3, 5);
    const ShortWindowResult result = solve_short_window(instance, mm);
    ASSERT_TRUE(result.feasible) << "seed " << seed << ": " << result.error;
    EXPECT_TRUE(verify_ise(instance, result.schedule).ok()) << "seed " << seed;
    // Exact MM finds the planted 2-machine partition.
    EXPECT_EQ(result.telemetry.max_mm_machines, 2) << "seed " << seed;
  }
}

TEST(ShortPipeline, RelaxedCalibrationsUseFewerMachines) {
  const GreedyEdfMM mm;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate_short_window(short_params(seed, 16));
    const ShortWindowResult strict = solve_short_window(instance, mm);
    IntervalOptions relaxed_options;
    relaxed_options.relaxed_calibrations = true;
    const ShortWindowResult relaxed =
        solve_short_window(instance, mm, relaxed_options);
    ASSERT_TRUE(strict.feasible && relaxed.feasible) << "seed " << seed;
    // Footnote 3: same calibrations, no extra crossing machines.
    EXPECT_EQ(relaxed.telemetry.total_calibrations,
              strict.telemetry.total_calibrations)
        << "seed " << seed;
    EXPECT_LE(relaxed.telemetry.machines_allotted,
              strict.telemetry.machines_allotted)
        << "seed " << seed;
    EXPECT_LE(relaxed.telemetry.machines_allotted,
              2 * relaxed.telemetry.max_mm_machines)
        << "seed " << seed;
    const VerifyResult check =
        verify_ise(instance, relaxed.schedule, /*require_tise=*/false,
                   CalibrationPolicy::kOverlapAllowed);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
  }
}

TEST(ShortPipeline, RelaxedCrossingJobStaysOnItsMachine) {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  instance.jobs = {{0, 6, 16, 8}};  // forced to cross the t=10 boundary
  const GreedyEdfMM mm;
  IntervalOptions options;
  options.relaxed_calibrations = true;
  const ShortWindowResult result = solve_short_window(instance, mm, options);
  ASSERT_TRUE(result.feasible) << result.error;
  ASSERT_EQ(result.schedule.jobs.size(), 1u);
  EXPECT_EQ(result.schedule.jobs[0].machine, 0);  // no crossing machine
  EXPECT_TRUE(verify_ise(instance, result.schedule, false,
                         CalibrationPolicy::kOverlapAllowed)
                  .ok());
  // The strict model would reject the overlapping dedicated calibration.
  EXPECT_FALSE(verify_ise(instance, result.schedule).ok());
}

TEST(ShortPipeline, SpeedAugmentedBoxYieldsSpeedSchedule) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = generate_short_window(short_params(seed, 14));
    const SpeedupMM fast(std::make_shared<GreedyEdfMM>(), 2);
    const ShortWindowResult result = solve_short_window(instance, fast);
    ASSERT_TRUE(result.feasible) << "seed " << seed << ": " << result.error;
    EXPECT_EQ(result.schedule.speed, 2) << "seed " << seed;
    EXPECT_EQ(result.schedule.time_denominator, 2) << "seed " << seed;
    const VerifyResult check = verify_ise(instance, result.schedule);
    EXPECT_TRUE(check.ok()) << "seed " << seed << "\n" << check.to_string();
  }
}

TEST(ShortPipeline, SpeedAugmentationReducesMachines) {
  // The Partition instance needs 2 machines at speed 1, 1 at speed 2.
  const Instance instance = generate_partition_adversarial(3, 3, 5);
  const auto exact = std::make_shared<ExactMM>();
  const ShortWindowResult slow = solve_short_window(instance, *exact);
  const SpeedupMM fast_box(exact, 2);
  const ShortWindowResult fast = solve_short_window(instance, fast_box);
  ASSERT_TRUE(slow.feasible && fast.feasible);
  EXPECT_EQ(slow.telemetry.max_mm_machines, 2);
  EXPECT_EQ(fast.telemetry.max_mm_machines, 1);
  EXPECT_TRUE(verify_ise(instance, fast.schedule).ok());
}

TEST(ShortPipeline, EmptyInstance) {
  Instance instance;
  instance.machines = 3;
  instance.T = 10;
  const GreedyEdfMM mm;
  const ShortWindowResult result = solve_short_window(instance, mm);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.schedule.num_calibrations(), 0u);
}

TEST(ShortPipeline, UnitJobsWithUnitBox) {
  const UnitEdfMM mm;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GenParams params = short_params(seed, 20);
    const Instance instance = generate_unit(params, /*max_window=*/12);
    const ShortWindowResult result = solve_short_window(instance, mm);
    ASSERT_TRUE(result.feasible) << "seed " << seed << ": " << result.error;
    EXPECT_TRUE(verify_ise(instance, result.schedule).ok()) << "seed " << seed;
  }
}

TEST(ShortPipeline, ParallelFanOutMatchesSequentialByteForByte) {
  // The IntervalOptions::threads contract: any thread count yields the same
  // schedule bytes and the same telemetry, because interval results and
  // scratch traces are merged in interval order, never completion order.
  const GreedyEdfMM mm;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    GenParams params = short_params(seed, 32);
    params.horizon = 400;  // ~10 disjoint intervals per pass
    const Instance instance = generate_short_window(params);

    const auto run = [&](int threads) {
      IntervalOptions options;
      options.threads = threads;
      TraceContext trace("shortwin");
      options.trace = &trace;
      const ShortWindowResult result = solve_short_window(instance, mm, options);
      EXPECT_TRUE(result.feasible)
          << "seed " << seed << " threads " << threads << ": " << result.error;
      std::ostringstream bytes;
      write_schedule(bytes, result.schedule);
      // Span durations are wall-clock and legitimately vary; counters and
      // notes must not.
      return std::make_tuple(bytes.str(), result.telemetry,
                             trace.counter("mm.invocations"),
                             trace.notes("mm.algorithm"));
    };

    const auto [seq_bytes, seq_tele, seq_mm, seq_algos] = run(1);
    for (int threads : {4, 8, 0}) {
      const auto [bytes, tele, mm_calls, algos] = run(threads);
      EXPECT_EQ(bytes, seq_bytes) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(mm_calls, seq_mm) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(algos, seq_algos) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(tele.intervals_pass1, seq_tele.intervals_pass1);
      EXPECT_EQ(tele.intervals_pass2, seq_tele.intervals_pass2);
      EXPECT_EQ(tele.sum_mm_machines, seq_tele.sum_mm_machines);
      EXPECT_EQ(tele.max_mm_machines, seq_tele.max_mm_machines);
      EXPECT_EQ(tele.machines_allotted, seq_tele.machines_allotted);
      EXPECT_EQ(tele.total_calibrations, seq_tele.total_calibrations);
    }
  }
}

}  // namespace
}  // namespace calisched

# Empty compiler generated dependencies file for stockpile_evaluation.
# This may be replaced when dependencies are built.

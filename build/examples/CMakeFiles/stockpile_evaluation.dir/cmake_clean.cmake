file(REMOVE_RECURSE
  "CMakeFiles/stockpile_evaluation.dir/stockpile_evaluation.cpp.o"
  "CMakeFiles/stockpile_evaluation.dir/stockpile_evaluation.cpp.o.d"
  "stockpile_evaluation"
  "stockpile_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stockpile_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mm_toolbox.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mm_toolbox.dir/mm_toolbox.cpp.o"
  "CMakeFiles/mm_toolbox.dir/mm_toolbox.cpp.o.d"
  "mm_toolbox"
  "mm_toolbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_toolbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

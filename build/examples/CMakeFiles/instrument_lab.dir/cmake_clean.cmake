file(REMOVE_RECURSE
  "CMakeFiles/instrument_lab.dir/instrument_lab.cpp.o"
  "CMakeFiles/instrument_lab.dir/instrument_lab.cpp.o.d"
  "instrument_lab"
  "instrument_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrument_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for instrument_lab.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_unit_prior.
# This may be replaced when dependencies are built.

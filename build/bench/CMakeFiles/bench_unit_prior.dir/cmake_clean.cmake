file(REMOVE_RECURSE
  "CMakeFiles/bench_unit_prior.dir/bench_unit_prior.cpp.o"
  "CMakeFiles/bench_unit_prior.dir/bench_unit_prior.cpp.o.d"
  "bench_unit_prior"
  "bench_unit_prior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unit_prior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

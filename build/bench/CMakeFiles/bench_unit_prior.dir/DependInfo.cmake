
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_unit_prior.cpp" "bench/CMakeFiles/bench_unit_prior.dir/bench_unit_prior.cpp.o" "gcc" "bench/CMakeFiles/bench_unit_prior.dir/bench_unit_prior.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/calib_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/calib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/calib_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/calib_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/calib_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/longwin/CMakeFiles/calib_longwin.dir/DependInfo.cmake"
  "/root/repo/build/src/shortwin/CMakeFiles/calib_shortwin.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/calib_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/calib_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/calib_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/calib_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

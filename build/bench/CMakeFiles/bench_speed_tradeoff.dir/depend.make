# Empty dependencies file for bench_speed_tradeoff.
# This may be replaced when dependencies are built.

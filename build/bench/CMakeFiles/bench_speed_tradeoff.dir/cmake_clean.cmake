file(REMOVE_RECURSE
  "CMakeFiles/bench_speed_tradeoff.dir/bench_speed_tradeoff.cpp.o"
  "CMakeFiles/bench_speed_tradeoff.dir/bench_speed_tradeoff.cpp.o.d"
  "bench_speed_tradeoff"
  "bench_speed_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speed_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

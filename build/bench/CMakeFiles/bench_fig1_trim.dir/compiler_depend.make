# Empty compiler generated dependencies file for bench_fig1_trim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_trim.dir/bench_fig1_trim.cpp.o"
  "CMakeFiles/bench_fig1_trim.dir/bench_fig1_trim.cpp.o.d"
  "bench_fig1_trim"
  "bench_fig1_trim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_trim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig3_witness.
# This may be replaced when dependencies are built.

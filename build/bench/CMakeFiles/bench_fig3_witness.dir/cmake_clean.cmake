file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_witness.dir/bench_fig3_witness.cpp.o"
  "CMakeFiles/bench_fig3_witness.dir/bench_fig3_witness.cpp.o.d"
  "bench_fig3_witness"
  "bench_fig3_witness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_witness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_shortwindow.dir/bench_shortwindow.cpp.o"
  "CMakeFiles/bench_shortwindow.dir/bench_shortwindow.cpp.o.d"
  "bench_shortwindow"
  "bench_shortwindow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shortwindow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_shortwindow.
# This may be replaced when dependencies are built.

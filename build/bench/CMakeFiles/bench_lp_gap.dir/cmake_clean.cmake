file(REMOVE_RECURSE
  "CMakeFiles/bench_lp_gap.dir/bench_lp_gap.cpp.o"
  "CMakeFiles/bench_lp_gap.dir/bench_lp_gap.cpp.o.d"
  "bench_lp_gap"
  "bench_lp_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lp_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

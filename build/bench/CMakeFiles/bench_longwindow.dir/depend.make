# Empty dependencies file for bench_longwindow.
# This may be replaced when dependencies are built.

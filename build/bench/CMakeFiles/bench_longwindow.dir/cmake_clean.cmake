file(REMOVE_RECURSE
  "CMakeFiles/bench_longwindow.dir/bench_longwindow.cpp.o"
  "CMakeFiles/bench_longwindow.dir/bench_longwindow.cpp.o.d"
  "bench_longwindow"
  "bench_longwindow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_longwindow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_trim_gap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_trim_gap.dir/bench_trim_gap.cpp.o"
  "CMakeFiles/bench_trim_gap.dir/bench_trim_gap.cpp.o.d"
  "bench_trim_gap"
  "bench_trim_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trim_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

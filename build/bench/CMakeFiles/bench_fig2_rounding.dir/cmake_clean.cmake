file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_rounding.dir/bench_fig2_rounding.cpp.o"
  "CMakeFiles/bench_fig2_rounding.dir/bench_fig2_rounding.cpp.o.d"
  "bench_fig2_rounding"
  "bench_fig2_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for calib_core.
# This may be replaced when dependencies are built.

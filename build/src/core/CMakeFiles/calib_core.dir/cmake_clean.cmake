file(REMOVE_RECURSE
  "CMakeFiles/calib_core.dir/calibration_points.cpp.o"
  "CMakeFiles/calib_core.dir/calibration_points.cpp.o.d"
  "CMakeFiles/calib_core.dir/instance.cpp.o"
  "CMakeFiles/calib_core.dir/instance.cpp.o.d"
  "CMakeFiles/calib_core.dir/schedule.cpp.o"
  "CMakeFiles/calib_core.dir/schedule.cpp.o.d"
  "CMakeFiles/calib_core.dir/schedule_io.cpp.o"
  "CMakeFiles/calib_core.dir/schedule_io.cpp.o.d"
  "libcalib_core.a"
  "libcalib_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcalib_core.a"
)

file(REMOVE_RECURSE
  "libcalib_report.a"
)

# Empty dependencies file for calib_report.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/calib_report.dir/ascii_gantt.cpp.o"
  "CMakeFiles/calib_report.dir/ascii_gantt.cpp.o.d"
  "CMakeFiles/calib_report.dir/stats.cpp.o"
  "CMakeFiles/calib_report.dir/stats.cpp.o.d"
  "libcalib_report.a"
  "libcalib_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

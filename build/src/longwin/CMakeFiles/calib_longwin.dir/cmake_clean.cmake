file(REMOVE_RECURSE
  "CMakeFiles/calib_longwin.dir/edf_assign.cpp.o"
  "CMakeFiles/calib_longwin.dir/edf_assign.cpp.o.d"
  "CMakeFiles/calib_longwin.dir/fractional_edf.cpp.o"
  "CMakeFiles/calib_longwin.dir/fractional_edf.cpp.o.d"
  "CMakeFiles/calib_longwin.dir/fractional_witness.cpp.o"
  "CMakeFiles/calib_longwin.dir/fractional_witness.cpp.o.d"
  "CMakeFiles/calib_longwin.dir/grid_normalize.cpp.o"
  "CMakeFiles/calib_longwin.dir/grid_normalize.cpp.o.d"
  "CMakeFiles/calib_longwin.dir/long_pipeline.cpp.o"
  "CMakeFiles/calib_longwin.dir/long_pipeline.cpp.o.d"
  "CMakeFiles/calib_longwin.dir/rounding.cpp.o"
  "CMakeFiles/calib_longwin.dir/rounding.cpp.o.d"
  "CMakeFiles/calib_longwin.dir/speed_transform.cpp.o"
  "CMakeFiles/calib_longwin.dir/speed_transform.cpp.o.d"
  "CMakeFiles/calib_longwin.dir/tise_lp.cpp.o"
  "CMakeFiles/calib_longwin.dir/tise_lp.cpp.o.d"
  "CMakeFiles/calib_longwin.dir/trim_transform.cpp.o"
  "CMakeFiles/calib_longwin.dir/trim_transform.cpp.o.d"
  "libcalib_longwin.a"
  "libcalib_longwin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_longwin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

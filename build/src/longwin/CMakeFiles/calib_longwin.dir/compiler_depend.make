# Empty compiler generated dependencies file for calib_longwin.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/longwin/edf_assign.cpp" "src/longwin/CMakeFiles/calib_longwin.dir/edf_assign.cpp.o" "gcc" "src/longwin/CMakeFiles/calib_longwin.dir/edf_assign.cpp.o.d"
  "/root/repo/src/longwin/fractional_edf.cpp" "src/longwin/CMakeFiles/calib_longwin.dir/fractional_edf.cpp.o" "gcc" "src/longwin/CMakeFiles/calib_longwin.dir/fractional_edf.cpp.o.d"
  "/root/repo/src/longwin/fractional_witness.cpp" "src/longwin/CMakeFiles/calib_longwin.dir/fractional_witness.cpp.o" "gcc" "src/longwin/CMakeFiles/calib_longwin.dir/fractional_witness.cpp.o.d"
  "/root/repo/src/longwin/grid_normalize.cpp" "src/longwin/CMakeFiles/calib_longwin.dir/grid_normalize.cpp.o" "gcc" "src/longwin/CMakeFiles/calib_longwin.dir/grid_normalize.cpp.o.d"
  "/root/repo/src/longwin/long_pipeline.cpp" "src/longwin/CMakeFiles/calib_longwin.dir/long_pipeline.cpp.o" "gcc" "src/longwin/CMakeFiles/calib_longwin.dir/long_pipeline.cpp.o.d"
  "/root/repo/src/longwin/rounding.cpp" "src/longwin/CMakeFiles/calib_longwin.dir/rounding.cpp.o" "gcc" "src/longwin/CMakeFiles/calib_longwin.dir/rounding.cpp.o.d"
  "/root/repo/src/longwin/speed_transform.cpp" "src/longwin/CMakeFiles/calib_longwin.dir/speed_transform.cpp.o" "gcc" "src/longwin/CMakeFiles/calib_longwin.dir/speed_transform.cpp.o.d"
  "/root/repo/src/longwin/tise_lp.cpp" "src/longwin/CMakeFiles/calib_longwin.dir/tise_lp.cpp.o" "gcc" "src/longwin/CMakeFiles/calib_longwin.dir/tise_lp.cpp.o.d"
  "/root/repo/src/longwin/trim_transform.cpp" "src/longwin/CMakeFiles/calib_longwin.dir/trim_transform.cpp.o" "gcc" "src/longwin/CMakeFiles/calib_longwin.dir/trim_transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/calib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/calib_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/calib_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/calib_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcalib_longwin.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/calib_verify.dir/verify.cpp.o"
  "CMakeFiles/calib_verify.dir/verify.cpp.o.d"
  "libcalib_verify.a"
  "libcalib_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for calib_verify.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcalib_verify.a"
)

# Empty compiler generated dependencies file for calib_gen.
# This may be replaced when dependencies are built.

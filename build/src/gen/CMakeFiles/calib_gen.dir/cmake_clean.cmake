file(REMOVE_RECURSE
  "CMakeFiles/calib_gen.dir/generators.cpp.o"
  "CMakeFiles/calib_gen.dir/generators.cpp.o.d"
  "CMakeFiles/calib_gen.dir/paper_figures.cpp.o"
  "CMakeFiles/calib_gen.dir/paper_figures.cpp.o.d"
  "libcalib_gen.a"
  "libcalib_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcalib_gen.a"
)

# Empty dependencies file for calib_baselines.
# This may be replaced when dependencies are built.

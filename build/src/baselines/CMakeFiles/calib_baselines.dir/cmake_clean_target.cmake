file(REMOVE_RECURSE
  "libcalib_baselines.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline.cpp" "src/baselines/CMakeFiles/calib_baselines.dir/baseline.cpp.o" "gcc" "src/baselines/CMakeFiles/calib_baselines.dir/baseline.cpp.o.d"
  "/root/repo/src/baselines/bender_unit.cpp" "src/baselines/CMakeFiles/calib_baselines.dir/bender_unit.cpp.o" "gcc" "src/baselines/CMakeFiles/calib_baselines.dir/bender_unit.cpp.o.d"
  "/root/repo/src/baselines/calibration_bounds.cpp" "src/baselines/CMakeFiles/calib_baselines.dir/calibration_bounds.cpp.o" "gcc" "src/baselines/CMakeFiles/calib_baselines.dir/calibration_bounds.cpp.o.d"
  "/root/repo/src/baselines/exact_ise.cpp" "src/baselines/CMakeFiles/calib_baselines.dir/exact_ise.cpp.o" "gcc" "src/baselines/CMakeFiles/calib_baselines.dir/exact_ise.cpp.o.d"
  "/root/repo/src/baselines/gap_min.cpp" "src/baselines/CMakeFiles/calib_baselines.dir/gap_min.cpp.o" "gcc" "src/baselines/CMakeFiles/calib_baselines.dir/gap_min.cpp.o.d"
  "/root/repo/src/baselines/greedy_ise.cpp" "src/baselines/CMakeFiles/calib_baselines.dir/greedy_ise.cpp.o" "gcc" "src/baselines/CMakeFiles/calib_baselines.dir/greedy_ise.cpp.o.d"
  "/root/repo/src/baselines/ise_lp_bound.cpp" "src/baselines/CMakeFiles/calib_baselines.dir/ise_lp_bound.cpp.o" "gcc" "src/baselines/CMakeFiles/calib_baselines.dir/ise_lp_bound.cpp.o.d"
  "/root/repo/src/baselines/per_job.cpp" "src/baselines/CMakeFiles/calib_baselines.dir/per_job.cpp.o" "gcc" "src/baselines/CMakeFiles/calib_baselines.dir/per_job.cpp.o.d"
  "/root/repo/src/baselines/saturate.cpp" "src/baselines/CMakeFiles/calib_baselines.dir/saturate.cpp.o" "gcc" "src/baselines/CMakeFiles/calib_baselines.dir/saturate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/calib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/calib_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/calib_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/calib_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/calib_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

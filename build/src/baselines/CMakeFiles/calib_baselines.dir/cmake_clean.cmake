file(REMOVE_RECURSE
  "CMakeFiles/calib_baselines.dir/baseline.cpp.o"
  "CMakeFiles/calib_baselines.dir/baseline.cpp.o.d"
  "CMakeFiles/calib_baselines.dir/bender_unit.cpp.o"
  "CMakeFiles/calib_baselines.dir/bender_unit.cpp.o.d"
  "CMakeFiles/calib_baselines.dir/calibration_bounds.cpp.o"
  "CMakeFiles/calib_baselines.dir/calibration_bounds.cpp.o.d"
  "CMakeFiles/calib_baselines.dir/exact_ise.cpp.o"
  "CMakeFiles/calib_baselines.dir/exact_ise.cpp.o.d"
  "CMakeFiles/calib_baselines.dir/gap_min.cpp.o"
  "CMakeFiles/calib_baselines.dir/gap_min.cpp.o.d"
  "CMakeFiles/calib_baselines.dir/greedy_ise.cpp.o"
  "CMakeFiles/calib_baselines.dir/greedy_ise.cpp.o.d"
  "CMakeFiles/calib_baselines.dir/ise_lp_bound.cpp.o"
  "CMakeFiles/calib_baselines.dir/ise_lp_bound.cpp.o.d"
  "CMakeFiles/calib_baselines.dir/per_job.cpp.o"
  "CMakeFiles/calib_baselines.dir/per_job.cpp.o.d"
  "CMakeFiles/calib_baselines.dir/saturate.cpp.o"
  "CMakeFiles/calib_baselines.dir/saturate.cpp.o.d"
  "libcalib_baselines.a"
  "libcalib_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

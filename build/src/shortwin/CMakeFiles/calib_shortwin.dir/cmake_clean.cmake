file(REMOVE_RECURSE
  "CMakeFiles/calib_shortwin.dir/interval_schedule.cpp.o"
  "CMakeFiles/calib_shortwin.dir/interval_schedule.cpp.o.d"
  "CMakeFiles/calib_shortwin.dir/short_pipeline.cpp.o"
  "CMakeFiles/calib_shortwin.dir/short_pipeline.cpp.o.d"
  "libcalib_shortwin.a"
  "libcalib_shortwin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_shortwin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

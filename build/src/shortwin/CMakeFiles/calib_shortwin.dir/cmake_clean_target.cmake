file(REMOVE_RECURSE
  "libcalib_shortwin.a"
)

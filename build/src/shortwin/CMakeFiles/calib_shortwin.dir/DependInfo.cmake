
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shortwin/interval_schedule.cpp" "src/shortwin/CMakeFiles/calib_shortwin.dir/interval_schedule.cpp.o" "gcc" "src/shortwin/CMakeFiles/calib_shortwin.dir/interval_schedule.cpp.o.d"
  "/root/repo/src/shortwin/short_pipeline.cpp" "src/shortwin/CMakeFiles/calib_shortwin.dir/short_pipeline.cpp.o" "gcc" "src/shortwin/CMakeFiles/calib_shortwin.dir/short_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/calib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/calib_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/calib_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/calib_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/calib_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

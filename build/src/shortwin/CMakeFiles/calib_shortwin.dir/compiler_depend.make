# Empty compiler generated dependencies file for calib_shortwin.
# This may be replaced when dependencies are built.

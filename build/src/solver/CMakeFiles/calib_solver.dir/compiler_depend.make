# Empty compiler generated dependencies file for calib_solver.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/ise_solver.cpp" "src/solver/CMakeFiles/calib_solver.dir/ise_solver.cpp.o" "gcc" "src/solver/CMakeFiles/calib_solver.dir/ise_solver.cpp.o.d"
  "/root/repo/src/solver/mm_via_ise.cpp" "src/solver/CMakeFiles/calib_solver.dir/mm_via_ise.cpp.o" "gcc" "src/solver/CMakeFiles/calib_solver.dir/mm_via_ise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/longwin/CMakeFiles/calib_longwin.dir/DependInfo.cmake"
  "/root/repo/build/src/shortwin/CMakeFiles/calib_shortwin.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/calib_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/calib_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/calib_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/calib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/calib_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

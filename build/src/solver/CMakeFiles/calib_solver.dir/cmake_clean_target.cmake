file(REMOVE_RECURSE
  "libcalib_solver.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/calib_solver.dir/ise_solver.cpp.o"
  "CMakeFiles/calib_solver.dir/ise_solver.cpp.o.d"
  "CMakeFiles/calib_solver.dir/mm_via_ise.cpp.o"
  "CMakeFiles/calib_solver.dir/mm_via_ise.cpp.o.d"
  "libcalib_solver.a"
  "libcalib_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcalib_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/calib_util.dir/cli.cpp.o"
  "CMakeFiles/calib_util.dir/cli.cpp.o.d"
  "CMakeFiles/calib_util.dir/rng.cpp.o"
  "CMakeFiles/calib_util.dir/rng.cpp.o.d"
  "CMakeFiles/calib_util.dir/table.cpp.o"
  "CMakeFiles/calib_util.dir/table.cpp.o.d"
  "CMakeFiles/calib_util.dir/thread_pool.cpp.o"
  "CMakeFiles/calib_util.dir/thread_pool.cpp.o.d"
  "libcalib_util.a"
  "libcalib_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

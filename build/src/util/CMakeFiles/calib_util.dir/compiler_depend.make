# Empty compiler generated dependencies file for calib_util.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for calib_lp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcalib_lp.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/calib_lp.dir/model.cpp.o"
  "CMakeFiles/calib_lp.dir/model.cpp.o.d"
  "CMakeFiles/calib_lp.dir/simplex.cpp.o"
  "CMakeFiles/calib_lp.dir/simplex.cpp.o.d"
  "libcalib_lp.a"
  "libcalib_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

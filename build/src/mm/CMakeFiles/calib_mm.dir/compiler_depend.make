# Empty compiler generated dependencies file for calib_mm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/calib_mm.dir/exact_mm.cpp.o"
  "CMakeFiles/calib_mm.dir/exact_mm.cpp.o.d"
  "CMakeFiles/calib_mm.dir/greedy_mm.cpp.o"
  "CMakeFiles/calib_mm.dir/greedy_mm.cpp.o.d"
  "CMakeFiles/calib_mm.dir/lower_bounds.cpp.o"
  "CMakeFiles/calib_mm.dir/lower_bounds.cpp.o.d"
  "CMakeFiles/calib_mm.dir/lp_bound.cpp.o"
  "CMakeFiles/calib_mm.dir/lp_bound.cpp.o.d"
  "CMakeFiles/calib_mm.dir/lp_rounding_mm.cpp.o"
  "CMakeFiles/calib_mm.dir/lp_rounding_mm.cpp.o.d"
  "CMakeFiles/calib_mm.dir/speedup_mm.cpp.o"
  "CMakeFiles/calib_mm.dir/speedup_mm.cpp.o.d"
  "CMakeFiles/calib_mm.dir/unit_mm.cpp.o"
  "CMakeFiles/calib_mm.dir/unit_mm.cpp.o.d"
  "libcalib_mm.a"
  "libcalib_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mm/exact_mm.cpp" "src/mm/CMakeFiles/calib_mm.dir/exact_mm.cpp.o" "gcc" "src/mm/CMakeFiles/calib_mm.dir/exact_mm.cpp.o.d"
  "/root/repo/src/mm/greedy_mm.cpp" "src/mm/CMakeFiles/calib_mm.dir/greedy_mm.cpp.o" "gcc" "src/mm/CMakeFiles/calib_mm.dir/greedy_mm.cpp.o.d"
  "/root/repo/src/mm/lower_bounds.cpp" "src/mm/CMakeFiles/calib_mm.dir/lower_bounds.cpp.o" "gcc" "src/mm/CMakeFiles/calib_mm.dir/lower_bounds.cpp.o.d"
  "/root/repo/src/mm/lp_bound.cpp" "src/mm/CMakeFiles/calib_mm.dir/lp_bound.cpp.o" "gcc" "src/mm/CMakeFiles/calib_mm.dir/lp_bound.cpp.o.d"
  "/root/repo/src/mm/lp_rounding_mm.cpp" "src/mm/CMakeFiles/calib_mm.dir/lp_rounding_mm.cpp.o" "gcc" "src/mm/CMakeFiles/calib_mm.dir/lp_rounding_mm.cpp.o.d"
  "/root/repo/src/mm/speedup_mm.cpp" "src/mm/CMakeFiles/calib_mm.dir/speedup_mm.cpp.o" "gcc" "src/mm/CMakeFiles/calib_mm.dir/speedup_mm.cpp.o.d"
  "/root/repo/src/mm/unit_mm.cpp" "src/mm/CMakeFiles/calib_mm.dir/unit_mm.cpp.o" "gcc" "src/mm/CMakeFiles/calib_mm.dir/unit_mm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/calib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/calib_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/calib_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/calib_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

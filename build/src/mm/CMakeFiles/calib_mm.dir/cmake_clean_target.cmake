file(REMOVE_RECURSE
  "libcalib_mm.a"
)

# Empty compiler generated dependencies file for calisched_cli.
# This may be replaced when dependencies are built.

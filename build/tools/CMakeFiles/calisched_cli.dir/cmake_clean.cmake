file(REMOVE_RECURSE
  "CMakeFiles/calisched_cli.dir/calisched_cli.cpp.o"
  "CMakeFiles/calisched_cli.dir/calisched_cli.cpp.o.d"
  "calisched"
  "calisched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calisched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

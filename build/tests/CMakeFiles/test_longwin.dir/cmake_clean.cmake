file(REMOVE_RECURSE
  "CMakeFiles/test_longwin.dir/test_longwin.cpp.o"
  "CMakeFiles/test_longwin.dir/test_longwin.cpp.o.d"
  "test_longwin"
  "test_longwin.pdb"
  "test_longwin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_longwin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_longwin.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_shortwin.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_shortwin.dir/test_shortwin.cpp.o"
  "CMakeFiles/test_shortwin.dir/test_shortwin.cpp.o.d"
  "test_shortwin"
  "test_shortwin.pdb"
  "test_shortwin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shortwin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

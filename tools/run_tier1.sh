#!/usr/bin/env sh
# Tier-1 verification: configure + build + run the full test suite against
# the release preset (see ROADMAP.md). Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j "$(nproc)"
ctest --preset release

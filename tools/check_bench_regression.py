#!/usr/bin/env python3
"""Compare a fresh bench --json record against a committed baseline.

Usage:
    tools/check_bench_regression.py BASELINE.json FRESH.json

Both files follow the bench/harness.hpp record schema. The comparison
covers the "metrics" and "checks" dicts:

  * A check that was true in the baseline and false in the fresh run is a
    FAILURE (the bench's own self-check already failed, but this catches it
    even when the fresh run's exit code was swallowed by a wrapper).
  * A counted metric (pivot counts, solve counts, accepted steps, ...) that
    worsens by more than 10% prints a WARNING; more than 25% is a FAILURE.
    "Worsens" is direction-aware: for names that look like reductions or
    speedups (higher is better), a drop is the regression; for everything
    else a rise is.
  * Timing-flavoured metrics (names mentioning ns/ms/wall/time/speed/
    throughput) and machine facts (hardware_cores) are ADVISORY only: they
    are printed when they move but never gate the exit code, because the
    committed baselines come from whatever container happened to run them.

Exit code: 1 if any FAILURE was recorded, else 0.
"""

import json
import sys

# Metric-name fragments that mark a value as wall-clock flavoured (never
# gating) or as higher-is-better (direction flip). The short unit suffixes
# match whole name parts only ("ns" must not fire on "instances").
TIMING_PARTS = ("ns", "ms", "us", "s")
TIMING_SUBSTRINGS = ("wall", "time", "speed", "throughput")
ADVISORY_NAMES = {"hardware_cores", "elapsed_ns"}
HIGHER_IS_BETTER_FRAGMENTS = ("reduction", "speedup", "accepted", "solved",
                              "throughput")

WARN_RATIO = 0.10
FAIL_RATIO = 0.25


def is_timing(name: str) -> bool:
    if name in ADVISORY_NAMES:
        return True
    lowered = name.lower()
    if any(fragment in lowered for fragment in TIMING_SUBSTRINGS):
        return True
    return any(part in TIMING_PARTS for part in lowered.replace("-", "_").split("_"))


def higher_is_better(name: str) -> bool:
    lowered = name.lower()
    return any(fragment in lowered for fragment in HIGHER_IS_BETTER_FRAGMENTS)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(argv[2], encoding="utf-8") as handle:
        fresh = json.load(handle)

    failures = 0
    warnings = 0

    base_checks = baseline.get("checks", {})
    fresh_checks = fresh.get("checks", {})
    for name, ok in sorted(base_checks.items()):
        if name not in fresh_checks:
            print(f"WARNING: check '{name}' missing from fresh run "
                  "(gating may have skipped it)")
            warnings += 1
        elif ok and not fresh_checks[name]:
            print(f"FAILURE: check '{name}' was true in baseline, "
                  "false in fresh run")
            failures += 1

    base_metrics = baseline.get("metrics", {})
    fresh_metrics = fresh.get("metrics", {})
    for name, base_value in sorted(base_metrics.items()):
        if name not in fresh_metrics:
            print(f"WARNING: metric '{name}' missing from fresh run")
            warnings += 1
            continue
        fresh_value = fresh_metrics[name]
        if base_value == 0.0:
            change = 0.0 if fresh_value == 0.0 else float("inf")
        else:
            change = (fresh_value - base_value) / abs(base_value)
        # Positive `worse` always means a regression.
        worse = -change if higher_is_better(name) else change
        moved = abs(change) > WARN_RATIO
        if is_timing(name):
            if moved:
                print(f"ADVISORY: timing metric '{name}' moved "
                      f"{base_value:g} -> {fresh_value:g} "
                      f"({change:+.1%}); not gating")
            continue
        if worse > FAIL_RATIO:
            print(f"FAILURE: metric '{name}' regressed "
                  f"{base_value:g} -> {fresh_value:g} ({change:+.1%})")
            failures += 1
        elif worse > WARN_RATIO:
            print(f"WARNING: metric '{name}' regressed "
                  f"{base_value:g} -> {fresh_value:g} ({change:+.1%})")
            warnings += 1
        elif moved:
            print(f"note: metric '{name}' improved "
                  f"{base_value:g} -> {fresh_value:g} ({change:+.1%})")

    bench = fresh.get("bench", baseline.get("bench", "?"))
    print(f"{bench}: {failures} failure(s), {warnings} warning(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

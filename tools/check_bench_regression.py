#!/usr/bin/env python3
"""Compare a fresh bench --json record against a committed baseline.

Usage:
    tools/check_bench_regression.py BASELINE.json FRESH.json
    tools/check_bench_regression.py --self-test

Both files follow the bench/harness.hpp record schema. The comparison
covers the "metrics" and "checks" dicts:

  * A check that was true in the baseline and false in the fresh run is a
    FAILURE (the bench's own self-check already failed, but this catches it
    even when the fresh run's exit code was swallowed by a wrapper).
  * A counted metric (pivot counts, solve counts, accepted steps, ...) that
    worsens by more than 10% prints a WARNING; more than 25% is a FAILURE.
    "Worsens" is direction-aware: for names that look like reductions or
    speedups (higher is better), a drop is the regression; for everything
    else a rise is.
  * Timing-flavoured metrics (names mentioning ns/ms/wall/time/speed/
    throughput) and machine facts (hardware_cores) are ADVISORY only: they
    are printed when they move but never gate the exit code, because the
    committed baselines come from whatever container happened to run them.
  * Rate metrics (names ending "_per_s" or "/s" and their "_sec" variants)
    are ADVISORY for the same reason: a rate is a deterministic count
    divided by this machine's wall clock. Gate on the count, not the rate.
  * Exact-search size metrics (names mentioning states/nodes/dominated/
    merged/pruned) are ADVISORY: lower is better, but any engine tweak —
    a new pruning rule, a different branching order — legitimately moves
    them by integer factors, so they are reported, never gated. Gate on
    what the search *achieves* instead: the "certified" frontier metrics
    (largest instance size an engine certifies) are higher-is-better and
    gate like other counted metrics.
  * One-sided entries never gate and never crash: a name present only in
    the baseline is a WARNING (coverage shrank), a name present only in
    the fresh run is an ADVISORY (a renamed or new counter — refresh the
    baseline when intentional). Non-numeric metric values are ADVISORY.

Exit code: 1 if any FAILURE was recorded, else 0. `--self-test` runs the
embedded fixture suite and exits 0/1 on its own verdict.
"""

import json
import sys

# Metric-name fragments that mark a value as wall-clock flavoured (never
# gating) or as higher-is-better (direction flip). The short unit suffixes
# match whole name parts only ("ns" must not fire on "instances").
TIMING_PARTS = ("ns", "ms", "us", "s")
TIMING_SUBSTRINGS = ("wall", "time", "speed", "throughput")
ADVISORY_NAMES = {"hardware_cores", "elapsed_ns"}
# "reuse": workspace-reuse hit counts — fewer warm arrivals is the
# regression, so the direction flips like the other higher-is-better names.
# "certified": exact-engine certified-size frontiers — a shrink means the
# engine stopped proving optima it used to prove.
HIGHER_IS_BETTER_FRAGMENTS = ("reduction", "speedup", "accepted", "solved",
                              "throughput", "reuse", "certified")

# Exact-search size counters: lower is better, but engine tweaks move them
# wildly (a new dominance rule can cut states 10x), so they never gate.
SEARCH_SIZE_FRAGMENTS = ("states", "nodes", "dominated", "merged", "pruned")

# Per-second rates. "pivots_per_s" also happens to match TIMING_PARTS via
# its trailing "s" part, but the slash spellings ("etas/s") do not split on
# "_", so rates get their own explicit suffix rule.
RATE_SUFFIXES = ("_per_s", "_per_sec", "/s", "/sec")

WARN_RATIO = 0.10
FAIL_RATIO = 0.25


def is_timing(name: str) -> bool:
    if name in ADVISORY_NAMES:
        return True
    lowered = name.lower()
    if any(fragment in lowered for fragment in TIMING_SUBSTRINGS):
        return True
    return any(part in TIMING_PARTS for part in lowered.replace("-", "_").split("_"))


def is_rate(name: str) -> bool:
    lowered = name.lower().replace("-", "_")
    return lowered.endswith(RATE_SUFFIXES)


def is_search_size(name: str) -> bool:
    # "certified" frontiers gate even though they may share a name part
    # with a search-size fragment (none do today; the guard is for drift).
    if higher_is_better(name):
        return False
    lowered = name.lower()
    return any(fragment in lowered for fragment in SEARCH_SIZE_FRAGMENTS)


def higher_is_better(name: str) -> bool:
    lowered = name.lower()
    return any(fragment in lowered for fragment in HIGHER_IS_BETTER_FRAGMENTS)


def is_number(value) -> bool:
    # bool is an int subclass; a true/false smuggled into "metrics" is a
    # schema drift we surface rather than average.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare(baseline: dict, fresh: dict):
    """Returns (failures, warnings, lines) for one baseline/fresh pair.

    Pure: never raises on shape drift (one-sided names, non-numeric
    values, missing sections) — every oddity becomes a reported line.
    """
    failures = 0
    warnings = 0
    lines = []

    base_checks = baseline.get("checks") or {}
    fresh_checks = fresh.get("checks") or {}
    for name, ok in sorted(base_checks.items()):
        if name not in fresh_checks:
            lines.append(f"WARNING: check '{name}' missing from fresh run "
                         "(gating may have skipped it)")
            warnings += 1
        elif ok and not fresh_checks[name]:
            lines.append(f"FAILURE: check '{name}' was true in baseline, "
                         "false in fresh run")
            failures += 1
    for name in sorted(set(fresh_checks) - set(base_checks)):
        lines.append(f"ADVISORY: check '{name}' is new in the fresh run; "
                     "refresh the baseline to start gating it")

    base_metrics = baseline.get("metrics") or {}
    fresh_metrics = fresh.get("metrics") or {}
    for name, base_value in sorted(base_metrics.items()):
        if name not in fresh_metrics:
            lines.append(f"WARNING: metric '{name}' missing from fresh run")
            warnings += 1
            continue
        fresh_value = fresh_metrics[name]
        if not is_number(base_value) or not is_number(fresh_value):
            lines.append(f"ADVISORY: metric '{name}' is not numeric "
                         f"({base_value!r} -> {fresh_value!r}); not gating")
            continue
        if base_value == 0.0:
            change = 0.0 if fresh_value == 0.0 else float("inf")
        else:
            change = (fresh_value - base_value) / abs(base_value)
        # Positive `worse` always means a regression.
        worse = -change if higher_is_better(name) else change
        moved = abs(change) > WARN_RATIO
        if is_rate(name) or is_timing(name) or is_search_size(name):
            if moved:
                kind = ("rate" if is_rate(name) else
                        "timing" if is_timing(name) else "search-size")
                lines.append(f"ADVISORY: {kind} metric '{name}' moved "
                             f"{base_value:g} -> {fresh_value:g} "
                             f"({change:+.1%}); not gating")
            continue
        if worse > FAIL_RATIO:
            lines.append(f"FAILURE: metric '{name}' regressed "
                         f"{base_value:g} -> {fresh_value:g} ({change:+.1%})")
            failures += 1
        elif worse > WARN_RATIO:
            lines.append(f"WARNING: metric '{name}' regressed "
                         f"{base_value:g} -> {fresh_value:g} ({change:+.1%})")
            warnings += 1
        elif moved:
            lines.append(f"note: metric '{name}' improved "
                         f"{base_value:g} -> {fresh_value:g} ({change:+.1%})")
    for name in sorted(set(fresh_metrics) - set(base_metrics)):
        lines.append(f"ADVISORY: metric '{name}' is new in the fresh run; "
                     "refresh the baseline to start tracking it")

    return failures, warnings, lines


# --------------------------------------------------------------- self-test --

# Each fixture: (name, baseline, fresh, expected_failures, expected_warnings,
# substrings that must appear in the report).
SELF_TEST_FIXTURES = [
    ("identical",
     {"checks": {"ok": True}, "metrics": {"pivots": 100}},
     {"checks": {"ok": True}, "metrics": {"pivots": 100}},
     0, 0, []),
    ("check_flips_false",
     {"checks": {"verified": True}}, {"checks": {"verified": False}},
     1, 0, ["FAILURE: check 'verified'"]),
    ("metric_regresses",
     {"metrics": {"pivots": 100}}, {"metrics": {"pivots": 130}},
     1, 0, ["FAILURE: metric 'pivots'"]),
    ("metric_warns",
     {"metrics": {"pivots": 100}}, {"metrics": {"pivots": 115}},
     0, 1, ["WARNING: metric 'pivots'"]),
    ("higher_is_better_flips_direction",
     {"metrics": {"solved": 100}}, {"metrics": {"solved": 70}},
     1, 0, ["FAILURE: metric 'solved'"]),
    ("timing_never_gates",
     {"metrics": {"solve_wall_ns": 100}}, {"metrics": {"solve_wall_ns": 900}},
     0, 0, ["ADVISORY: timing metric 'solve_wall_ns'"]),
    ("baseline_only_metric_warns",
     {"metrics": {"gone": 5}}, {"metrics": {}},
     0, 1, ["WARNING: metric 'gone' missing"]),
    ("fresh_only_metric_is_advisory",
     {"metrics": {}}, {"metrics": {"brand_new": 5}},
     0, 0, ["ADVISORY: metric 'brand_new' is new"]),
    ("fresh_only_check_is_advisory",
     {"checks": {}}, {"checks": {"extra": True}},
     0, 0, ["ADVISORY: check 'extra' is new"]),
    ("non_numeric_does_not_crash",
     {"metrics": {"label": "fast", "count": 3}},
     {"metrics": {"label": 7, "count": True}},
     0, 0, ["ADVISORY: metric 'count' is not numeric",
            "ADVISORY: metric 'label' is not numeric"]),
    ("missing_sections_do_not_crash",
     {}, {"checks": None, "metrics": None},
     0, 0, []),
    ("zero_baseline_growth_fails",
     {"metrics": {"rejects": 0}}, {"metrics": {"rejects": 4}},
     1, 0, ["FAILURE: metric 'rejects'"]),
    ("per_s_rate_never_gates",
     {"metrics": {"pivots_per_s": 200000}},
     {"metrics": {"pivots_per_s": 80000}},
     0, 0, ["ADVISORY: rate metric 'pivots_per_s'"]),
    ("slash_rate_never_gates",
     {"metrics": {"etas/s": 1000}}, {"metrics": {"etas/s": 200}},
     0, 0, ["ADVISORY: rate metric 'etas/s'"]),
    ("rate_improvement_stays_silent",
     {"metrics": {"entries_per_sec": 100}},
     {"metrics": {"entries_per_sec": 105}},
     0, 0, []),
    ("reuse_drop_is_the_regression",
     {"metrics": {"t1_workspace_reuses": 199}},
     {"metrics": {"t1_workspace_reuses": 120}},
     1, 0, ["FAILURE: metric 't1_workspace_reuses'"]),
    ("reuse_rise_is_fine",
     {"metrics": {"t1_workspace_reuses": 120}},
     {"metrics": {"t1_workspace_reuses": 199}},
     0, 0, ["note: metric 't1_workspace_reuses' improved"]),
    ("loadgen_req_rate_drop_is_advisory",
     {"metrics": {"flood_c64_received_per_s": 150000}},
     {"metrics": {"flood_c64_received_per_s": 50000}},
     0, 0, ["ADVISORY: rate metric 'flood_c64_received_per_s'"]),
    ("loadgen_latency_tail_never_gates",
     {"metrics": {"paced_latency_p999_ns": 100000}},
     {"metrics": {"paced_latency_p999_ns": 900000}},
     0, 0, ["ADVISORY: timing metric 'paced_latency_p999_ns'"]),
    ("loadgen_speedup_is_advisory_but_directional",
     {"metrics": {"epoll_vs_threads_speedup_c1024": 5.0}},
     {"metrics": {"epoll_vs_threads_speedup_c1024": 2.0}},
     0, 0, ["ADVISORY: timing metric 'epoll_vs_threads_speedup_c1024'"]),
    ("loadgen_order_violation_growth_fails",
     {"metrics": {"order_violations": 0}},
     {"metrics": {"order_violations": 3}},
     1, 0, ["FAILURE: metric 'order_violations'"]),
    ("search_size_never_gates",
     {"metrics": {"mm_states_created": 100}},
     {"metrics": {"mm_states_created": 900}},
     0, 0, ["ADVISORY: search-size metric 'mm_states_created'"]),
    ("search_size_drop_also_advisory",
     {"metrics": {"bnb_nodes": 1000000}}, {"metrics": {"bnb_nodes": 900}},
     0, 0, ["ADVISORY: search-size metric 'bnb_nodes'"]),
    ("certified_frontier_drop_fails",
     {"metrics": {"ise_max_certified_n_state": 200}},
     {"metrics": {"ise_max_certified_n_state": 100}},
     1, 0, ["FAILURE: metric 'ise_max_certified_n_state'"]),
    ("certified_frontier_rise_is_fine",
     {"metrics": {"mm_max_certified_n_state": 48}},
     {"metrics": {"mm_max_certified_n_state": 96}},
     0, 0, ["note: metric 'mm_max_certified_n_state' improved"]),
    ("competitive_ratio_rise_fails",
     {"metrics": {"competitive_ratio_mean_online-burst": 1.2}},
     {"metrics": {"competitive_ratio_mean_online-burst": 1.8}},
     1, 0, ["FAILURE: metric 'competitive_ratio_mean_online-burst'"]),
    ("competitive_ratio_drop_is_improvement",
     {"metrics": {"competitive_ratio_max_online-burst": 1.8}},
     {"metrics": {"competitive_ratio_max_online-burst": 1.2}},
     0, 0, ["note: metric 'competitive_ratio_max_online-burst' improved"]),
    ("online_solved_drop_fails",
     {"metrics": {"online_solved_online-poisson": 15}},
     {"metrics": {"online_solved_online-poisson": 9}},
     1, 0, ["FAILURE: metric 'online_solved_online-poisson'"]),
]


def self_test() -> int:
    bad = 0
    for name, baseline, fresh, want_failures, want_warnings, needles in \
            SELF_TEST_FIXTURES:
        failures, warnings, lines = compare(baseline, fresh)
        report = "\n".join(lines)
        problems = []
        if failures != want_failures:
            problems.append(f"failures {failures} != {want_failures}")
        if warnings != want_warnings:
            problems.append(f"warnings {warnings} != {want_warnings}")
        for needle in needles:
            if needle not in report:
                problems.append(f"missing line {needle!r}")
        if problems:
            bad += 1
            print(f"self-test FAIL [{name}]: {'; '.join(problems)}")
            for line in lines:
                print(f"    {line}")
        else:
            print(f"self-test ok   [{name}]")
    print(f"self-test: {len(SELF_TEST_FIXTURES) - bad}/"
          f"{len(SELF_TEST_FIXTURES)} fixtures passed")
    return 1 if bad else 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(argv[2], encoding="utf-8") as handle:
        fresh = json.load(handle)

    failures, warnings, lines = compare(baseline, fresh)
    for line in lines:
        print(line)
    bench = fresh.get("bench", baseline.get("bench", "?"))
    print(f"{bench}: {failures} failure(s), {warnings} warning(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

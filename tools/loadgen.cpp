// loadgen — open-loop load generator for the calisched solve service.
//
// Drives N concurrent NDJSON connections against a serve front end at a
// target request rate (Poisson or fixed pacing; rate 0 floods) and
// reports sustained throughput, scheduled-send-to-response latency
// percentiles, and protocol correctness counters (per-connection response
// ordering, error/reject responses). See src/service/loadgen.hpp for the
// open-loop semantics.
//
// Usage:
//   loadgen --port=P [--connections=N] [--requests=N] [--rate=R]
//           [--pacing=fixed|poisson] [--seed=S] [--timeout-ms=N]
//           [--preset=ping|solve | --body=FRAGMENT] [--json]
//   loadgen --self-serve [--server=epoll|threads] [--threads=N]
//           [--io-threads=N] [--queue-capacity=N] [--cache-capacity=N]
//           [--cache-shards=N] [...load flags as above]
//
// --self-serve starts the service plus the chosen TCP front end in this
// process on an ephemeral port and runs the load against it — one
// hermetic command with no port scraping, which is how the CI smoke uses
// it. --preset=solve sends one small generated instance on every request
// (identical payloads: after the first completion, pure cache-hit
// traffic); --body overrides the request fragment wholesale (the JSON
// members after the injected "id"). The exit code is 0 iff every request
// was answered, in order, with no "error" responses.
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "gen/generators.hpp"
#include "runtime/registry.hpp"
#include "service/epoll_server.hpp"
#include "service/loadgen.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"

namespace {

using namespace calisched;

std::string preset_body(const std::string& preset) {
  if (preset == "ping") return "\"type\":\"ping\"";
  if (preset == "solve") {
    GenParams params;
    params.seed = 7;
    params.n = 8;
    params.T = 6;
    params.machines = 2;
    params.horizon = 60;
    params.max_proc = params.T;
    const Instance instance = generate_mixed(params, 0.5);
    return "\"type\":\"solve\",\"algo\":\"greedy-lazy\",\"instance\":" +
           dump_response(instance_to_json(instance));
  }
  return "";
}

void print_report(const LoadGenReport& report, bool as_json) {
  if (as_json) {
    std::cout << "{\"sent\":" << report.sent
              << ",\"received\":" << report.received
              << ",\"errors\":" << report.errors
              << ",\"rejects\":" << report.rejects
              << ",\"order_violations\":" << report.order_violations
              << ",\"elapsed_s\":" << report.elapsed_s
              << ",\"received_per_s\":" << report.received_per_s
              << ",\"latency_p50_ns\":" << report.latency_p50_ns
              << ",\"latency_p99_ns\":" << report.latency_p99_ns
              << ",\"latency_p999_ns\":" << report.latency_p999_ns
              << ",\"latency_samples\":" << report.latency_samples
              << ",\"completed\":" << (report.completed ? "true" : "false")
              << "}\n";
    return;
  }
  std::cout << "sent             : " << report.sent << '\n'
            << "received         : " << report.received << '\n'
            << "errors           : " << report.errors << '\n'
            << "rejects          : " << report.rejects << '\n'
            << "order violations : " << report.order_violations << '\n'
            << "elapsed          : " << report.elapsed_s << " s\n"
            << "throughput       : " << report.received_per_s << " req/s\n"
            << "latency p50      : " << report.latency_p50_ns / 1000 << " us\n"
            << "latency p99      : " << report.latency_p99_ns / 1000 << " us\n"
            << "latency p999     : " << report.latency_p999_ns / 1000
            << " us\n";
}

int run(const CliArgs& args) {
  LoadGenOptions load;
  load.port = static_cast<int>(args.get_int("port", 0));
  load.connections = static_cast<std::size_t>(args.get_int("connections", 1));
  load.requests = args.get_int("requests", 1000);
  load.rate = args.get_double("rate", 0.0);
  const std::string pacing = args.get("pacing", "fixed");
  if (pacing == "poisson") {
    load.pacing = LoadGenOptions::Pacing::kPoisson;
  } else if (pacing != "fixed") {
    std::cerr << "unknown pacing '" << pacing << "' (fixed|poisson)\n";
    return 2;
  }
  load.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  load.timeout_ms = args.get_int("timeout-ms", 120000);
  const std::string preset = args.get("preset", "ping");
  load.body = args.get("body", preset_body(preset));
  if (load.body.empty()) {
    std::cerr << "unknown preset '" << preset << "' (ping|solve)\n";
    return 2;
  }
  const bool as_json = args.get_bool("json", false);
  const bool self_serve = args.get_bool("self-serve", false);
  if (!self_serve && load.port <= 0) {
    std::cerr << "loadgen needs --port=P or --self-serve\n";
    return 2;
  }

  LoadGenReport report;
  if (self_serve) {
    ServiceOptions service_options;
    service_options.threads =
        static_cast<std::size_t>(args.get_int("threads", 1));
    service_options.queue_capacity =
        static_cast<std::size_t>(args.get_int("queue-capacity", 64));
    service_options.cache_capacity =
        static_cast<std::size_t>(args.get_int("cache-capacity", 128));
    service_options.cache_shards =
        static_cast<std::size_t>(args.get_int("cache-shards", 8));
    const std::string backend = args.get("server", "epoll");
    for (const std::string& flag : args.unused()) {
      std::cerr << "warning: unused flag --" << flag << '\n';
    }
    SolveService service(AlgorithmRegistry::builtin(), service_options);
    if (backend == "epoll") {
      EpollServerOptions server_options;
      server_options.io_threads =
          static_cast<std::size_t>(args.get_int("io-threads", 1));
      EpollServer server(service, server_options);
      load.port = server.start();
      report = run_loadgen(load);
      server.stop();
      server.serve();
    } else if (backend == "threads") {
      TcpServer server(service);
      load.port = server.start(0);
      std::thread serving([&server] { server.serve(); });
      report = run_loadgen(load);
      server.stop();
      serving.join();
    } else {
      std::cerr << "unknown server '" << backend << "' (epoll|threads)\n";
      return 2;
    }
    service.shutdown(/*drain=*/true);
  } else {
    for (const std::string& flag : args.unused()) {
      std::cerr << "warning: unused flag --" << flag << '\n';
    }
    report = run_loadgen(load);
  }

  if (!report.error.empty()) {
    std::cerr << "loadgen: " << report.error << '\n';
    return 2;
  }
  print_report(report, as_json);
  const bool ok =
      report.completed && report.order_violations == 0 && report.errors == 0;
  if (!ok) {
    std::cerr << "loadgen: FAILED (completed=" << report.completed
              << ", order_violations=" << report.order_violations
              << ", errors=" << report.errors << ")\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(CliArgs(argc, argv));
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  }
}

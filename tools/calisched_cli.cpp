// calisched — command-line front end.
//
// Reads an instance (see src/core/instance.hpp for the text format), runs
// the chosen algorithm, verifies the schedule independently, and prints a
// summary, an optional ASCII Gantt chart, and optional CSV.
//
// Usage:
//   calisched <instance-file> [--algo=NAME] [--gantt] [--csv] [--quiet]
//             [--adaptive-mirror] [--prune-empty] [--relaxed] [--mm=NAME]
//             [--exact-engine=state|bnb] [--node-budget=N]
//             [--lp-engine=dense|revised] [--solve-threads=N]
//             [--trace-json=FILE]
//   calisched --generate=FAMILY --n=N --T=N --machines=N [--seed=N] --out=F
//   calisched solve-batch [instance-files...] [--algo=NAME] [--threads=N]
//             [--timeout-ms=N] [--node-budget=N] [--out=FILE] [--no-timing]
//             [--trace]
//             [--family=F --count=N --seed=N --n=N --T=N --machines=N ...]
//   calisched serve (--stdio | --port=P) [--threads=N] [--queue-capacity=N]
//             [--cache-capacity=N] [--cache-shards=N]
//             [--server=epoll|threads] [--io-threads=N] [--backlog=N]
//   calisched replay <instance-file> [--algo=online-edf] [--schedule]
//
// replay feeds the instance through the online-arrival simulator (each job
// becomes known at its release time) and prints the schedule-delta stream:
// one NDJSON "delta" line per advancement — byte-identical to what a
// `subscribe` session over serve streams for the same trace — followed by
// one "result" line (--schedule attaches the full committed schedule).
// The replay is deterministic: the same instance prints the same bytes on
// every run. Exit status 0 when the online run is feasible, 1 when the
// heuristic lost a job (the stream and result line are still printed).
//
// serve starts the persistent solve service (see src/service/): newline-
// delimited JSON requests in, one response line per request, in request
// order. --stdio speaks over stdin/stdout (the response stream is byte-
// identical for any --threads value); --port=P listens on 127.0.0.1:P
// (0 picks a free port, printed to stderr). The TCP front end is the
// nonblocking epoll event loop by default (--io-threads event-loop
// threads, --backlog listen() backlog, <= 0 meaning SOMAXCONN);
// --server=threads selects the legacy thread-per-connection accept loop.
// Both produce byte-identical response streams. The service runs every
// request through the algorithm registry behind a bounded queue
// (--queue-capacity, full queue => "reject" response, never unbounded
// growth) and a sharded LRU result cache (--cache-capacity total entries
// over --cache-shards independently locked shards) keyed by a canonical
// instance hash, so permuted copies of one instance hit the same entry.
// Request deadlines (timeout_ms) map onto RunLimits; a "stats" request
// reports requests/rejects/cache hits/latency percentiles (p50 to p999);
// "shutdown" drains in-flight solves and exits cleanly. See DESIGN.md
// sections 11 and 14 for the protocol and the event loop.
//
// solve-batch runs one registered algorithm over many instances concurrently
// and writes one JSON record per instance (JSONL). Instances come from the
// positional files, or — when none are given — from the generator spec flags
// (same family flags as --generate, plus --count; instance i uses a seed
// derived from --seed and i). Results are deterministic: the output is
// byte-identical for every --threads value once --no-timing drops the
// elapsed-time fields. --timeout-ms is a per-instance wall-clock deadline
// (records report status "deadline-exceeded" when it fires). --algo accepts
// any registry name (see AlgorithmRegistry::builtin()); unlike the single-
// instance path below, MM boxes (mm-*) and gap-min are valid here too.
//
// --lp-engine picks the simplex implementation behind the long-window TISE
// relaxation: "revised" (default) is the sparse revised simplex, "dense" the
// reference tableau (see src/lp/simplex.hpp).
//
// --solve-threads=N fans the short-window pipeline's per-interval MM solves
// out over N worker threads (0 = all hardware threads; default 1). The
// schedule and every counter are byte-identical at any value — results are
// merged in interval order, never completion order.
//
// --trace-json=FILE writes the solve's full stage trace (per-stage spans,
// counters, LP/MM telemetry, schedule stats) as JSON; FILE of "-" means
// stdout.
//
// --exact-engine picks the implementation behind the exact solvers ("exact"
// and --mm=exact): "state" (default) is the layered state-space engine,
// "bnb" the original branch-and-bound differential oracle. --node-budget=N
// caps their node/state count (exhaustion reports "budget exhausted", never
// "infeasible"); 0 keeps each solver's default.
//
// MM boxes can be speed-augmented with --mm-speed=S (Theorem 1's s-speed
// augmentation).
// Algorithms (--algo):
//   combined     Theorem 1 solver (default)
//   long         Theorem 12 long-window pipeline (requires all-long input)
//   long-speed   Theorem 14 (m machines, speed 36)
//   short        Theorem 20 short-window pipeline (requires all-short input)
//   greedy-lazy  non-unit lazy binning heuristic (no guarantee)
//   per-job      one calibration per job
//   saturate     always-calibrated grid baseline
//   bender       lazy binning (unit jobs only)
//   exact        exact minimum calibrations (tiny instances only)
//   exact-calib-cost   exact minimum cost under a caltype table (tiny)
//   dp-calib-cost      single-machine cost DP (exact, tiny)
//   greedy-calib-cost  lazy greedy over the caltype table
//   online-edf         online EDF-into-calibrations (arrival-time replay)
// MM boxes (--mm): greedy (default), exact, unit, lp-rounding.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "baselines/baseline.hpp"
#include "core/schedule_io.hpp"
#include "baselines/calibration_bounds.hpp"
#include "baselines/exact_ise.hpp"
#include "calib/cost_dp.hpp"
#include "calib/exact_cost.hpp"
#include "calib/greedy_cost.hpp"
#include "gen/generators.hpp"
#include "longwin/long_pipeline.hpp"
#include "lp/simplex.hpp"
#include "mm/lp_rounding_mm.hpp"
#include "mm/mm.hpp"
#include "online/online.hpp"
#include "service/protocol.hpp"
#include "report/ascii_gantt.hpp"
#include "report/stats.hpp"
#include "runtime/batch.hpp"
#include "service/epoll_server.hpp"
#include "service/server.hpp"
#include "shortwin/short_pipeline.hpp"
#include "solver/ise_solver.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "verify/verify.hpp"

namespace {

using namespace calisched;

int generate_mode(const CliArgs& args) {
  GenParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  params.n = static_cast<int>(args.get_int("n", 12));
  params.T = args.get_int("T", 10);
  params.machines = static_cast<int>(args.get_int("machines", 2));
  params.horizon = args.get_int("horizon", 10 * params.T);
  params.max_proc = args.get_int("max-proc", params.T);
  const std::string family = args.get("generate", "mixed");
  Instance instance;
  if (family == "mixed") {
    instance = generate_mixed(params, args.get_double("long-fraction", 0.5));
  } else if (family == "long") {
    instance = generate_long_window(params);
  } else if (family == "short") {
    instance = generate_short_window(params);
  } else if (family == "unit") {
    instance = generate_unit(params, args.get_int("max-window", 2 * params.T - 1));
  } else if (family == "clustered") {
    instance = generate_clustered(params,
                                  static_cast<int>(args.get_int("bursts", 3)),
                                  args.get_int("burst-span", params.T),
                                  args.get_bool("long-windows", false));
  } else if (family == "calib-cheap-short") {
    instance = generate_calib_cost(params, CalibTableRegime::kCheapShort);
  } else if (family == "calib-expensive-long") {
    instance = generate_calib_cost(params, CalibTableRegime::kExpensiveLong);
  } else if (family == "calib-delayed") {
    instance = generate_calib_cost(params, CalibTableRegime::kDelayed);
  } else if (family == "online-poisson") {
    instance = generate_online_poisson(params, args.get_double("mean-gap", 0.0));
  } else if (family == "online-burst") {
    instance = generate_online_burst(
        params, static_cast<int>(args.get_int("bursts", 4)));
  } else if (family == "online-drip") {
    instance = generate_online_drip(params);
  } else {
    std::cerr << "unknown family '" << family
              << "' (mixed|long|short|unit|clustered|calib-cheap-short|"
                 "calib-expensive-long|calib-delayed|online-poisson|"
                 "online-burst|online-drip)\n";
    return 2;
  }
  const std::string out = args.get("out", "");
  if (out.empty()) {
    write_instance(std::cout, instance);
  } else {
    std::ofstream file(out);
    if (!file) {
      std::cerr << "cannot open " << out << " for writing\n";
      return 2;
    }
    write_instance(file, instance);
    std::cout << "wrote " << instance.size() << " jobs to " << out << '\n';
  }
  return 0;
}

int solve_batch_mode(const CliArgs& args) {
  const std::string algo = args.get("algo", "combined");
  const AlgorithmRegistry& registry = AlgorithmRegistry::builtin();
  const Algorithm* algorithm = registry.find(algo);
  if (!algorithm) {
    std::cerr << "unknown algorithm '" << algo << "'; registered:";
    for (const std::string& name : registry.names()) std::cerr << ' ' << name;
    std::cerr << '\n';
    return 2;
  }

  std::vector<Instance> instances;
  BatchOptions options;
  const std::vector<std::string>& positional = args.positional();
  if (positional.size() > 1) {
    for (std::size_t i = 1; i < positional.size(); ++i) {
      std::ifstream file(positional[i]);
      if (!file) {
        std::cerr << "cannot read " << positional[i] << '\n';
        return 2;
      }
      try {
        instances.push_back(read_instance(file));
      } catch (const std::exception& error) {
        std::cerr << positional[i] << ": " << error.what() << '\n';
        return 2;
      }
    }
  } else {
    BatchSpec spec;
    spec.family = args.get("family", "mixed");
    spec.count = static_cast<std::size_t>(args.get_int("count", 32));
    spec.params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    spec.params.n = static_cast<int>(args.get_int("n", 12));
    spec.params.T = args.get_int("T", 10);
    spec.params.machines = static_cast<int>(args.get_int("machines", 2));
    spec.params.horizon = args.get_int("horizon", 10 * spec.params.T);
    spec.params.max_proc = args.get_int("max-proc", spec.params.T);
    spec.long_fraction = args.get_double("long-fraction", 0.5);
    spec.max_window = args.get_int("max-window", 0);
    spec.bursts = static_cast<int>(args.get_int("bursts", 3));
    spec.burst_span = args.get_int("burst-span", 0);
    spec.long_windows = args.get_bool("long-windows", false);
    try {
      instances = generate_batch(spec, &options.seeds);
    } catch (const std::exception& error) {
      std::cerr << error.what() << '\n';
      return 2;
    }
  }

  options.threads = static_cast<std::size_t>(args.get_int("threads", 1));
  const std::int64_t timeout_ms = args.get_int("timeout-ms", 0);
  if (timeout_ms > 0) {
    options.per_instance_deadline = std::chrono::milliseconds(timeout_ms);
  }
  options.node_budget = args.get_int("node-budget", 0);
  options.collect_traces = args.get_bool("trace", false);
  const bool include_timing = !args.get_bool("no-timing", false);

  const std::vector<BatchRecord> records =
      BatchRunner(*algorithm).run(instances, options);

  const std::string out_path = args.get("out", "");
  if (out_path.empty() || out_path == "-") {
    write_batch_jsonl(std::cout, records, include_timing);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 2;
    }
    write_batch_jsonl(out, records, include_timing);
    std::cout << "wrote " << records.size() << " records to " << out_path
              << '\n';
  }

  std::size_t solved = 0;
  std::size_t limited = 0;
  for (const BatchRecord& record : records) {
    if (record.feasible) ++solved;
    if (is_limit_status(record.status)) ++limited;
  }
  std::cerr << "solve-batch: " << algo << " on " << records.size()
            << " instances, " << solved << " solved, " << limited
            << " limit-stopped\n";
  for (const std::string& flag : args.unused()) {
    std::cerr << "warning: unused flag --" << flag << '\n';
  }
  return 0;
}

int serve_mode(const CliArgs& args) {
  ServiceOptions options;
  options.threads = static_cast<std::size_t>(args.get_int("threads", 1));
  options.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-capacity", 64));
  options.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache-capacity", 128));
  options.cache_shards =
      static_cast<std::size_t>(args.get_int("cache-shards", 8));
  const bool stdio = args.get_bool("stdio", false);
  const std::int64_t port = args.get_int("port", -1);
  const std::int64_t backlog = args.get_int("backlog", 0);
  const std::string backend = args.get("server", "epoll");
  const std::size_t io_threads =
      static_cast<std::size_t>(args.get_int("io-threads", 1));
  if (!stdio && port < 0) {
    std::cerr << "serve needs --stdio or --port=P\n";
    return 2;
  }
  if (backend != "epoll" && backend != "threads") {
    std::cerr << "unknown server '" << backend << "' (epoll|threads)\n";
    return 2;
  }
  for (const std::string& flag : args.unused()) {
    std::cerr << "warning: unused flag --" << flag << '\n';
  }

  if (stdio) {
    ServeReport report;
    const int code = run_stdio_server(AlgorithmRegistry::builtin(), options,
                                      std::cin, std::cout, &report);
    std::cerr << "serve: " << report.lines << " request(s), "
              << report.malformed << " malformed, "
              << (report.shutdown_requested ? "shutdown requested"
                                            : "input closed")
              << '\n';
    return code;
  }

  SolveService service(AlgorithmRegistry::builtin(), options);
  if (backend == "epoll") {
    EpollServerOptions server_options;
    server_options.port = static_cast<int>(port);
    server_options.backlog = static_cast<int>(backlog);
    server_options.io_threads = io_threads;
    EpollServer server(service, server_options);
    try {
      server.start();
    } catch (const std::exception& error) {
      std::cerr << error.what() << '\n';
      return 2;
    }
    std::cerr << "serve: listening on 127.0.0.1:" << server.port()
              << " (epoll, " << io_threads << " io thread(s), "
              << options.threads << " worker thread(s), queue "
              << options.queue_capacity << ", cache " << options.cache_capacity
              << "x" << options.cache_shards << " shard(s))\n";
    server.serve();
  } else {
    TcpServer server(service);
    try {
      server.start(static_cast<int>(port), static_cast<int>(backlog));
    } catch (const std::exception& error) {
      std::cerr << error.what() << '\n';
      return 2;
    }
    std::cerr << "serve: listening on 127.0.0.1:" << server.port()
              << " (thread-per-connection, " << options.threads
              << " worker thread(s), queue " << options.queue_capacity
              << ", cache " << options.cache_capacity << ")\n";
    server.serve();
  }
  service.shutdown(/*drain=*/true);
  const ServiceStats stats = service.stats();
  std::cerr << "serve: " << stats.received << " request(s), "
            << stats.cache_hits << " cache hit(s), " << stats.rejected
            << " reject(s)\n";
  return 0;
}

int replay_mode(const CliArgs& args) {
  const std::vector<std::string>& positional = args.positional();
  if (positional.size() < 2) {
    std::cerr << "replay needs an instance file\n";
    return 2;
  }
  std::ifstream file(positional[1]);
  if (!file) {
    std::cerr << "cannot read " << positional[1] << '\n';
    return 2;
  }
  Instance instance;
  try {
    instance = read_instance(file);
  } catch (const std::exception& error) {
    std::cerr << positional[1] << ": " << error.what() << '\n';
    return 2;
  }
  const std::string algo = args.get("algo", "online-edf");
  const bool want_schedule = args.get_bool("schedule", false);
  for (const std::string& flag : args.unused()) {
    std::cerr << "warning: unused flag --" << flag << '\n';
  }

  const ArrivalTrace trace = ArrivalTrace::from_instance(instance);
  const OnlineResult result = simulate_trace(algo, trace);
  // The stream a subscribe client would see for the same trace, byte for
  // byte: one delta line per advancement (null id — replay has no request
  // ids), then the result line a finalize would answer with.
  const bool unit_model = trace.cal.empty();
  for (const ScheduleDelta& delta : result.deltas) {
    std::cout << dump_response(make_delta_response(JsonValue(), delta.time,
                                                   delta.calibrations,
                                                   delta.jobs, unit_model))
              << '\n';
  }
  SolveOutcome outcome;
  outcome.status =
      result.feasible ? SolveStatus::kOk : SolveStatus::kInfeasible;
  outcome.feasible = result.feasible;
  outcome.verified = result.feasible;  // finish() ran the verifier
  outcome.jobs = result.schedule.jobs.size();
  outcome.calibrations = result.schedule.num_calibrations();
  outcome.machines = result.schedule.machines;
  outcome.speed = result.schedule.speed;
  outcome.total_cost = result.schedule.total_cost();
  outcome.error = result.error;
  outcome.schedule = result.schedule;
  std::cout << dump_response(
                   make_result_response(JsonValue(), outcome, want_schedule))
            << '\n';
  std::cerr << "replay: " << algo << " over " << trace.events.size()
            << " arrival(s), " << result.events << " event(s), "
            << result.alarms << " alarm(s), "
            << (result.feasible ? "feasible" : "infeasible: " + result.error)
            << '\n';
  return result.feasible ? 0 : 1;
}

std::shared_ptr<const MachineMinimizer> make_mm(const std::string& name,
                                                std::int64_t speed,
                                                ExactEngine engine,
                                                std::int64_t node_budget) {
  std::shared_ptr<const MachineMinimizer> box;
  if (name == "greedy") box = std::make_shared<GreedyEdfMM>();
  if (name == "exact") {
    box = std::make_shared<ExactMM>(
        node_budget > 0 ? node_budget : 4'000'000, engine);
  }
  if (name == "unit") box = std::make_shared<UnitEdfMM>();
  if (name == "lp-rounding") box = std::make_shared<LpRoundingMM>();
  if (box && speed > 1) box = std::make_shared<SpeedupMM>(box, speed);
  return box;
}

struct RunOutcome {
  bool feasible = false;
  Schedule schedule;
  std::string error;
  CalibrationPolicy policy = CalibrationPolicy::kStrict;
  bool tise = false;
};

RunOutcome run_algorithm(const Instance& instance, const CliArgs& args,
                         const std::string& algo, TraceContext* trace) {
  RunOutcome outcome;
  // Same gate the registry applies: algorithms that predate the
  // calibration-cost model only understand the unit model.
  const bool model_aware = algo == "exact-calib-cost" ||
                           algo == "dp-calib-cost" ||
                           algo == "greedy-calib-cost";
  if (!model_aware && !instance.is_unit_model()) {
    outcome.error = "requires the unit calibration model "
                    "(instance has a caltype table)";
    return outcome;
  }
  LongWindowOptions long_options;
  long_options.trace = trace;
  long_options.adaptive_mirror = args.get_bool("adaptive-mirror", false);
  long_options.prune_empty_calibrations = args.get_bool("prune-empty", false);
  const std::string lp_engine = args.get("lp-engine", "revised");
  if (lp_engine == "dense") {
    long_options.lp.engine = LpEngine::kDenseTableau;
  } else if (lp_engine == "revised") {
    long_options.lp.engine = LpEngine::kRevised;
  } else {
    outcome.error = "unknown LP engine '" + lp_engine + "' (dense|revised)";
    return outcome;
  }
  IntervalOptions short_options;
  short_options.trace = trace;
  short_options.relaxed_calibrations = args.get_bool("relaxed", false);
  short_options.trim_unused_calibrations = args.get_bool("prune-empty", false);
  short_options.threads =
      static_cast<int>(args.get_int("solve-threads", 1));
  if (short_options.relaxed_calibrations) {
    outcome.policy = CalibrationPolicy::kOverlapAllowed;
  }
  const std::optional<ExactEngine> engine =
      parse_exact_engine(args.get("exact-engine", "state"));
  if (!engine) {
    outcome.error = "unknown exact engine '" + args.get("exact-engine", "") +
                    "' (state|bnb)";
    return outcome;
  }
  const std::int64_t node_budget = args.get_int("node-budget", 0);
  const auto mm = make_mm(args.get("mm", "greedy"), args.get_int("mm-speed", 1),
                          *engine, node_budget);
  if (!mm) {
    outcome.error = "unknown MM box (greedy|exact|unit|lp-rounding)";
    return outcome;
  }

  if (algo == "combined") {
    IseSolverOptions options;
    options.long_window = long_options;
    options.short_window = short_options;
    options.mm = mm;
    options.trace = trace;
    IseSolveResult result = solve_ise(instance, options);
    outcome.feasible = result.feasible;
    outcome.schedule = std::move(result.schedule);
    outcome.error = std::move(result.error);
  } else if (algo == "long" || algo == "long-speed") {
    LongWindowResult result = algo == "long"
                                  ? solve_long_window(instance, long_options)
                                  : solve_long_window_speed(instance, long_options);
    outcome.feasible = result.feasible;
    outcome.schedule = std::move(result.schedule);
    outcome.error = std::move(result.error);
    outcome.tise = algo == "long";
  } else if (algo == "short") {
    ShortWindowResult result = solve_short_window(instance, *mm, short_options);
    outcome.feasible = result.feasible;
    outcome.schedule = std::move(result.schedule);
    outcome.error = std::move(result.error);
  } else if (algo == "greedy-lazy") {
    BaselineResult result = GreedyLazyIse().solve(instance);
    outcome.feasible = result.feasible;
    outcome.schedule = std::move(result.schedule);
    outcome.error = std::move(result.error);
  } else if (algo == "per-job") {
    BaselineResult result = PerJobCalibration().solve(instance);
    outcome.feasible = result.feasible;
    outcome.schedule = std::move(result.schedule);
    outcome.error = std::move(result.error);
  } else if (algo == "saturate") {
    BaselineResult result = SaturateCalibration().solve(instance);
    outcome.feasible = result.feasible;
    outcome.schedule = std::move(result.schedule);
    outcome.error = std::move(result.error);
  } else if (algo == "bender") {
    BaselineResult result = BenderUnitLazyBinning().solve(instance);
    outcome.feasible = result.feasible;
    outcome.schedule = std::move(result.schedule);
    outcome.error = std::move(result.error);
  } else if (algo == "exact") {
    ExactIseOptions options;
    options.engine = *engine;
    if (node_budget > 0) options.node_budget = node_budget;
    options.trace = trace;
    const ExactIseResult result = solve_exact_ise(instance, options);
    outcome.feasible = result.solved && result.feasible;
    outcome.schedule = result.schedule;
    if (!result.solved) outcome.error = "search budget exhausted";
    else if (!result.feasible) outcome.error = "instance infeasible";
  } else if (algo == "exact-calib-cost") {
    const CalibCostResult result = solve_exact_calib_cost(instance);
    outcome.feasible = result.solved && result.feasible;
    outcome.schedule = result.schedule;
    if (!result.solved) outcome.error = "search budget exhausted";
    else if (!result.feasible) outcome.error = "instance infeasible";
  } else if (algo == "dp-calib-cost") {
    const CostDpResult result = solve_cost_dp(instance);
    outcome.feasible = result.solved && result.feasible;
    outcome.schedule = result.schedule;
    if (!result.solved) outcome.error = "DP budget exhausted";
    else if (!result.feasible) outcome.error = "instance infeasible";
  } else if (algo == "greedy-calib-cost") {
    GreedyCostResult result = solve_greedy_cost(instance);
    outcome.feasible = result.feasible;
    outcome.schedule = std::move(result.schedule);
    outcome.error = std::move(result.error);
  } else {
    outcome.error = "unknown algorithm '" + algo + "'";
  }
  return outcome;
}

int run_cli(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("generate")) return generate_mode(args);
  if (!args.positional().empty() && args.positional()[0] == "solve-batch") {
    return solve_batch_mode(args);
  }
  if (!args.positional().empty() && args.positional()[0] == "serve") {
    return serve_mode(args);
  }
  if (!args.positional().empty() && args.positional()[0] == "replay") {
    return replay_mode(args);
  }

  if (args.positional().empty()) {
    std::cerr << "usage: calisched <instance-file> [--algo=NAME] [--gantt] "
                 "[--csv]\n       calisched --generate=FAMILY --out=FILE\n"
                 "       calisched solve-batch [files...] [--algo=NAME] "
                 "[--threads=N] [--timeout-ms=N]\n"
                 "       calisched serve (--stdio | --port=P) [--threads=N]\n"
                 "       calisched replay <instance-file> "
                 "[--algo=online-edf] [--schedule]\n";
    return 2;
  }
  std::ifstream file(args.positional()[0]);
  if (!file) {
    std::cerr << "cannot read " << args.positional()[0] << '\n';
    return 2;
  }
  Instance instance;
  try {
    instance = read_instance(file);
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 2;
  }

  const std::string algo = args.get("algo", "combined");
  // A bare --trace-json (parsed as "true") and "-" both mean stdout.
  const bool want_trace = args.has("trace-json");
  const std::string trace_path = args.get("trace-json", "");
  TraceContext trace(algo == "combined" ? "solve_ise" : algo);
  trace.note("algorithm", algo);
  TraceSpan solve_span(&trace, "solve");
  const RunOutcome outcome =
      run_algorithm(instance, args, algo, want_trace ? &trace : nullptr);
  solve_span.stop();
  if (!outcome.feasible) {
    std::cerr << algo << ": " << outcome.error << '\n';
    return 1;
  }
  const VerifyResult check =
      verify_ise(instance, outcome.schedule, outcome.tise, outcome.policy);
  if (!check.ok()) {
    std::cerr << "INTERNAL ERROR: schedule failed verification\n"
              << check.to_string();
    return 1;
  }

  const ScheduleStats stats = compute_stats(instance, outcome.schedule);
  if (want_trace) {
    record_stats(stats, &trace);
    if (trace_path.empty() || trace_path == "-" || trace_path == "true") {
      std::cout << trace.json() << '\n';
    } else {
      std::ofstream trace_file(trace_path);
      if (!trace_file) {
        std::cerr << "cannot open " << trace_path << " for writing\n";
        return 2;
      }
      trace_file << trace.json() << '\n';
    }
  }
  if (!args.get_bool("quiet", false)) {
    std::cout << "algorithm        : " << algo << '\n'
              << "jobs             : " << instance.size() << '\n'
              << "calibrations     : " << stats.calibrations;
    if (instance.is_unit_model()) {
      // The load/coloring bound assumes unit-length calibrations; it is
      // meaningless (and possibly above the optimum) under a type table.
      std::cout << "  (lower bound " << calibration_lower_bound(instance)
                << ")\n";
    } else {
      std::cout << '\n'
                << "total cost       : " << outcome.schedule.total_cost()
                << '\n';
    }
    std::cout << "machines used    : " << stats.machines_used << '\n'
              << "speed            : " << outcome.schedule.speed << '\n'
              << "utilization      : " << format_double(stats.utilization, 3)
              << '\n'
              << "verified         : ok\n";
  }
  if (args.get_bool("gantt", false)) {
    std::cout << '\n' << render_schedule(instance, outcome.schedule);
  }
  const std::string save_path = args.get("save-schedule", "");
  if (!save_path.empty()) {
    std::ofstream out(save_path);
    if (!out) {
      std::cerr << "cannot open " << save_path << " for writing\n";
      return 2;
    }
    write_schedule(out, outcome.schedule);
    std::cout << "schedule saved to " << save_path << '\n';
  }
  if (args.get_bool("csv", false)) {
    Table csv({"kind", "machine", "start", "length"});
    for (const Calibration& cal : outcome.schedule.calibrations) {
      csv.row()
          .cell("calibration")
          .cell(std::int64_t{cal.machine})
          .cell(cal.start)
          .cell(outcome.schedule.available_end_ticks(cal) -
                outcome.schedule.available_start_ticks(cal));
    }
    for (const ScheduledJob& sj : outcome.schedule.jobs) {
      csv.row()
          .cell("job" + std::to_string(sj.job))
          .cell(std::int64_t{sj.machine})
          .cell(sj.start)
          .cell(outcome.schedule.job_duration_ticks(
              instance.job_by_id(sj.job).proc));
    }
    std::cout << '\n';
    csv.print_csv(std::cout);
  }
  for (const std::string& flag : args.unused()) {
    std::cerr << "warning: unused flag --" << flag << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Flag errors (malformed values, bare '--') are user errors, not crashes:
  // CliArgs accessors throw std::invalid_argument naming the flag and value.
  try {
    return run_cli(argc, argv);
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  }
}

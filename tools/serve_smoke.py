#!/usr/bin/env python3
"""End-to-end smoke test for `calisched serve --stdio`.

Usage:
    tools/serve_smoke.py PATH/TO/calisched

Drives the service over its NDJSON pipe with a mixed script — valid
solves, permuted duplicates, malformed lines, an unknown algorithm, a
pause/overfill/resume backpressure probe, stats, and a clean shutdown —
and asserts the observable contracts:

  * one response line per request line, in request order, never a crash;
  * malformed lines answered with {"type":"error",...};
  * permuted duplicates served from the cache (stats cache_hits > 0);
  * with workers paused, submissions past --queue-capacity answered with
    {"type":"reject",...} mentioning the full queue;
  * "shutdown" acknowledged, process exits 0;
  * the response stream (stats-free script) is byte-identical for
    --threads=1/4/8.

Exit code: 0 when every assertion holds, 1 otherwise.
"""

import json
import subprocess
import sys

# A small fixed instance and a job-permuted copy of it. The canonical
# instance hash must map both onto the same cache entry.
INSTANCE = {"machines": 2, "T": 8,
            "jobs": [[0, 0, 20, 4], [1, 2, 30, 6], [2, 5, 40, 3],
                     [3, 1, 25, 5], [4, 8, 50, 7]]}
PERMUTED = {"machines": 2, "T": 8,
            "jobs": [INSTANCE["jobs"][i] for i in (3, 0, 4, 2, 1)]}
OTHER = {"machines": 2, "T": 8,
         "jobs": [[0, 0, 18, 3], [1, 4, 36, 8], [2, 2, 28, 5]]}

FAILED = 0


def check(name, ok, detail=""):
    global FAILED
    if ok:
        print(f"ok   {name}")
    else:
        FAILED += 1
        print(f"FAIL {name}{': ' + detail if detail else ''}")


def run_serve(binary, script, extra_flags=()):
    """Feeds `script` to one serve --stdio process; returns (stdout, rc)."""
    proc = subprocess.run(
        [binary, "serve", "--stdio", *extra_flags],
        input=script, capture_output=True, text=True, timeout=120)
    return proc.stdout, proc.returncode


def line(obj):
    return json.dumps(obj, separators=(",", ":")) + "\n"


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2
    binary = argv[1]

    # --- run A: cache + malformed + unknown algorithm ---------------------
    # Single worker: the thread pool serves solves in submission order, so
    # id 1 is solved (and cached) before the duplicates are picked up —
    # cache_hits is exactly 2, deterministically.
    script = (
        line({"type": "ping", "id": "alive"}) +
        line({"type": "solve", "id": 1, "instance": INSTANCE}) +
        "this is not json\n" +
        line({"type": "solve", "id": 2, "instance": PERMUTED}) +   # dup
        line({"type": "solve", "id": 3, "instance": OTHER}) +
        line({"type": "solve", "id": 4, "instance": INSTANCE}) +   # dup
        line({"type": "solve", "id": 5}) +                         # no instance
        line({"type": "solve", "id": 6, "algo": "no-such-algo",
              "instance": OTHER}) +
        line({"type": "stats", "id": "s"}) +
        line({"type": "shutdown", "id": "bye"})
    )
    stdout, rc = run_serve(binary, script, ("--threads=1",))
    check("serve exits 0", rc == 0, f"rc={rc}")
    responses = [json.loads(l) for l in stdout.splitlines() if l.strip()]
    expected = script.count("\n")
    check("one response per request", len(responses) == expected,
          f"{len(responses)} != {expected}")
    by_id = {str(r.get("id")): r for r in responses}

    check("ping acked", by_id.get("alive", {}).get("op") == "ping")
    for rid in ("1", "3"):
        check(f"solve {rid} feasible+verified",
              by_id.get(rid, {}).get("feasible") is True and
              by_id.get(rid, {}).get("verified") is True, str(by_id.get(rid)))
    for rid in ("2", "4"):
        check(f"duplicate {rid} matches original payload",
              {k: v for k, v in by_id.get(rid, {}).items() if k != "id"} ==
              {k: v for k, v in by_id.get("1", {}).items() if k != "id"})
    malformed = [r for r in responses if r.get("type") == "error"]
    check("malformed + missing-instance got error responses",
          len(malformed) == 2, str(malformed))
    check("unknown algorithm is a structured result",
          by_id.get("6", {}).get("type") == "result" and
          "unknown algorithm" in by_id.get("6", {}).get("error", ""))
    stats = by_id.get("s", {}).get("stats", {})
    check("stats reports cache hits for the duplicates",
          stats.get("cache_hits") == 2, str(stats))
    check("shutdown acked", by_id.get("bye", {}).get("op") == "shutdown")

    # --- run B: backpressure under a paused worker ------------------------
    # pause arrives before any solve, so the 2-slot queue fills in request
    # order: ids 1 and 2 admitted, id 3 bounced — deterministically.
    script = (
        line({"type": "pause", "id": "hold"}) +
        line({"type": "solve", "id": 1, "instance": INSTANCE}) +
        line({"type": "solve", "id": 2, "instance": OTHER}) +
        line({"type": "solve", "id": 3, "instance": INSTANCE}) +   # bounced
        line({"type": "resume", "id": "go"}) +
        line({"type": "stats", "id": "s"}) +
        line({"type": "shutdown", "id": "bye"})
    )
    stdout, rc = run_serve(binary, script,
                           ("--threads=1", "--queue-capacity=2"))
    check("backpressure serve exits 0", rc == 0, f"rc={rc}")
    responses = [json.loads(l) for l in stdout.splitlines() if l.strip()]
    check("backpressure: one response per request",
          len(responses) == script.count("\n"),
          f"{len(responses)} != {script.count(chr(10))}")
    by_id = {str(r.get("id")): r for r in responses}
    check("paused overflow rejected",
          by_id.get("3", {}).get("type") == "reject" and
          "queue full" in by_id.get("3", {}).get("error", ""),
          str(by_id.get("3")))
    for rid in ("1", "2"):
        check(f"admitted request {rid} completed after resume",
              by_id.get(rid, {}).get("type") == "result")
    stats = by_id.get("s", {}).get("stats", {})
    check("stats reports the reject", stats.get("rejected") == 1, str(stats))

    # --- byte-identity across worker-thread counts ------------------------
    det_script = (
        line({"type": "solve", "id": 1, "instance": INSTANCE}) +
        line({"type": "solve", "id": 2, "instance": OTHER}) +
        line({"type": "solve", "id": 3, "instance": PERMUTED}) +
        "still not json\n" +
        line({"type": "solve", "id": 4, "instance": INSTANCE}) +
        line({"type": "shutdown", "id": 5})
    )
    outputs = {}
    for threads in (1, 4, 8):
        stdout, rc = run_serve(binary, det_script, (f"--threads={threads}",))
        check(f"threads={threads} run exits 0", rc == 0, f"rc={rc}")
        outputs[threads] = stdout
    check("responses byte-identical at 1/4/8 threads",
          outputs[1] == outputs[4] == outputs[8] and outputs[1] != "")

    print(f"serve_smoke: {'FAILED' if FAILED else 'passed'} "
          f"({FAILED} failing assertion(s))")
    return 1 if FAILED else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

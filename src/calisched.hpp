// Umbrella header: the public API of the calisched library.
//
// Downstream users normally need only this include. Internal pieces
// (the LP engine, individual pipeline stages) are also stable headers and
// can be included directly for finer control; see DESIGN.md for the map.
#pragma once

#include "baselines/baseline.hpp"            // per-job / saturate / lazy binning
#include "baselines/calibration_bounds.hpp"  // combinatorial lower bounds
#include "baselines/exact_ise.hpp"           // exact reference solver
#include "baselines/ise_lp_bound.hpp"        // certified LP lower bound
#include "core/calibration_points.hpp"       // Lemma 3 grid
#include "core/instance.hpp"                 // Job / Instance + text IO
#include "core/schedule.hpp"                 // Schedule (ticks, speed)
#include "core/schedule_io.hpp"              // schedule text IO
#include "gen/generators.hpp"                // instance families
#include "longwin/long_pipeline.hpp"         // Theorems 12 & 14
#include "mm/lp_rounding_mm.hpp"             // LP randomized-rounding MM box
#include "mm/mm.hpp"                         // MM black boxes incl. SpeedupMM
#include "report/ascii_gantt.hpp"            // ASCII rendering
#include "report/stats.hpp"                  // schedule statistics
#include "shortwin/short_pipeline.hpp"       // Theorem 20
#include "solver/ise_solver.hpp"             // Theorem 1 combined solver
#include "solver/mm_via_ise.hpp"             // Section 1 reduction
#include "verify/verify.hpp"                 // independent checkers

// Algorithm 5: scheduling one length-2*gamma*T interval of short jobs by
// transforming a machine-minimization schedule into an ISE schedule.
//
// Given jobs whose windows nest inside [t0, t0 + 2*gamma*T):
//   * run the MM black box, yielding schedule S on w machines;
//   * allocate 3w ISE machines: machines [0, w) carry a full calendar of
//     2*gamma back-to-back calibrations (t0 + kT); machines [w, 2w) and
//     [2w, 3w) receive one dedicated calibration per even-/odd-k crossing
//     job (a job whose execution spans a calendar boundary);
//   * every job keeps its MM start time.
// Lemma 15 shows the result is a valid ISE schedule; Lemma 19 bounds it by
// 4*gamma*w calibrations on 3w machines.
#pragma once

#include <string>

#include "core/schedule.hpp"
#include "mm/mm.hpp"
#include "trace/trace.hpp"

namespace calisched {

struct IntervalScheduleResult {
  bool feasible = false;
  /// Structured outcome; mirrors the MM box's status when the box failed.
  SolveStatus status = SolveStatus::kOk;
  /// Valid when feasible: machines = 3w, absolute times, denominator 1.
  Schedule schedule;
  int mm_machines = 0;  ///< w, after compacting unused machines
  std::string mm_algorithm;
  std::string error;
};

struct IntervalOptions {
  Time gamma = 2;  ///< short-window factor; Definition 1 fixes gamma = 2
  /// Deadline + cancellation, forwarded to every MM black-box invocation.
  RunLimits limits;
  /// Optional telemetry sink (the short-window pipeline's context): MM
  /// invocations, per-interval spans, and partition/union counters land
  /// here. Not owned; spans with one name aggregate across intervals.
  TraceContext* trace = nullptr;
  /// When true, skip calendar calibrations that host no job. Off by
  /// default: the paper's Algorithm 5 calibrates unconditionally and
  /// Lemma 19 charges for all 2*gamma of them; the ablation bench flips
  /// this to measure the slack.
  bool trim_unused_calibrations = false;
  /// Footnote 3's easier model: calibrations on one machine may overlap.
  /// Crossing jobs then keep their MM machine with a dedicated overlapping
  /// calibration, so Algorithm 5 needs only w machines instead of 3w.
  /// Schedules built this way verify under CalibrationPolicy::kOverlapAllowed.
  bool relaxed_calibrations = false;
  /// Worker threads for the per-interval MM fan-out in solve_short_window
  /// (the intervals are disjoint, so Algorithm 5 runs are independent).
  /// 1 = sequential (default), 0 = hardware_concurrency. Any value yields
  /// byte-identical schedules and telemetry: results and per-interval scratch
  /// traces are merged in interval order, never completion order. Ignored by
  /// schedule_interval itself.
  int threads = 1;
};

/// `jobs` must all nest in [interval_start, interval_start + 2*gamma*T).
[[nodiscard]] IntervalScheduleResult schedule_interval(
    const Instance& jobs, Time interval_start, const MachineMinimizer& mm,
    const IntervalOptions& options = {});

}  // namespace calisched

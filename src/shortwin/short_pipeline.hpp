// Algorithm 4 + Algorithm 5: the complete short-window ISE algorithm of
// Section 4 (Theorem 20).
//
// Time is partitioned twice into length-2*gamma*T intervals — once aligned
// at multiples of 2*gamma*T (machine pool M1) and once offset by gamma*T
// (machine pool M2). Every short job (window <= gamma*T) nests in an
// interval of one of the passes (Lemma 16); each non-empty interval is
// scheduled independently by Algorithm 5, and the union over intervals and
// passes is the final schedule.
#pragma once

#include <string>
#include <vector>

#include "shortwin/interval_schedule.hpp"

namespace calisched {

/// Compatibility view over the pipeline's TraceContext (the pipeline
/// records everything there first; this struct is derived from it, so the
/// two can never disagree).
struct ShortWindowTelemetry {
  int intervals_pass1 = 0;       ///< non-empty intervals in the aligned pass
  int intervals_pass2 = 0;       ///< non-empty intervals in the offset pass
  int sum_mm_machines = 0;       ///< sum_i w_i (Lemma 18's lower-bound mass)
  int max_mm_machines = 0;       ///< max_i w_i
  int machines_allotted = 0;     ///< 3*max(w)_pass1 + 3*max(w)_pass2
  std::size_t total_calibrations = 0;
  std::vector<std::string> mm_algorithms;  ///< distinct black-box labels seen

  [[nodiscard]] static ShortWindowTelemetry from_trace(const TraceContext& trace);
};

struct ShortWindowResult {
  bool feasible = false;
  /// Structured outcome: kInfeasible / kDeadlineExceeded / kCancelled /
  /// kLimitExceeded propagate from the failing interval's MM box;
  /// kNumericalFailure flags a partition-invariant violation.
  SolveStatus status = SolveStatus::kOk;
  Schedule schedule;
  ShortWindowTelemetry telemetry;
  std::string error;
};

/// `instance.machines` is only carried through for reporting; the
/// short-window algorithm sizes its pools from the MM black box. Every job
/// must be short: d_j - r_j <= gamma * T (asserted).
[[nodiscard]] ShortWindowResult solve_short_window(
    const Instance& instance, const MachineMinimizer& mm,
    const IntervalOptions& options = {});

}  // namespace calisched

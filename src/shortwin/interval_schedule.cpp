#include "shortwin/interval_schedule.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <vector>

#include "util/arith.hpp"

namespace calisched {

IntervalScheduleResult schedule_interval(const Instance& jobs, Time interval_start,
                                         const MachineMinimizer& mm,
                                         const IntervalOptions& options) {
  IntervalScheduleResult result;
  const Time T = jobs.T;
  const Time gamma = options.gamma;
  const Time interval_end = interval_start + 2 * gamma * T;
  for (const Job& job : jobs.jobs) {
    assert(interval_start <= job.release && job.deadline <= interval_end);
    (void)job;
  }
  (void)interval_end;
  if (jobs.empty()) {
    result.feasible = true;
    result.schedule = Schedule::empty_like(jobs, 0);
    return result;
  }

  // --- MM black box ---------------------------------------------------------
  TraceSpan interval_span(options.trace, "interval");
  MMResult mm_result = mm.minimize(jobs, options.limits, options.trace);
  result.mm_algorithm = mm_result.algorithm;
  if (!mm_result.feasible) {
    const SolveStatus status = mm_result.status == SolveStatus::kOk
                                   ? SolveStatus::kInfeasible
                                   : mm_result.status;
    fail_result(result, status,
                "MM black box failed on interval at " +
                    std::to_string(interval_start),
                "mm");
    return result;
  }
  // An s-speed MM box reports start times in 1/s-unit ticks; the ISE
  // schedule inherits that resolution and machine speed, and every job
  // occupies exactly proc ticks.
  const std::int64_t s = mm_result.schedule.speed;
  // Compact to the machines actually used so w matches Lemma 19's charge.
  std::map<int, int> compact;
  for (const ScheduledJob& sj : mm_result.schedule.jobs) {
    compact.emplace(sj.machine, 0);
  }
  int w = 0;
  for (auto& [from, to] : compact) to = w++;
  result.mm_machines = w;

  // --- build the ISE schedule on 3w machines (w when relaxed) ---------------
  Schedule& schedule = result.schedule;
  schedule = Schedule::empty_like(
      jobs, options.relaxed_calibrations ? w : 3 * w);
  schedule.time_denominator = s;
  schedule.speed = s;
  const Time start_ticks = interval_start * s;
  const Time cal_ticks = T * s;

  // Calendar machines [0, w): calibrations at interval_start + kT.
  // With trim_unused_calibrations, emit only calendar slots that host at
  // least one noncrossing job.
  std::set<std::pair<int, Time>> used_slots;  // (machine, k)

  // Place jobs first to know which calendar slots are used.
  std::vector<Calibration> crossing_calibrations;
  for (const ScheduledJob& sj : mm_result.schedule.jobs) {
    const Job& job = jobs.job_by_id(sj.job);
    const int machine = compact[sj.machine];
    const Time x = sj.start;  // ticks
    const Time k = floor_div(x - start_ticks, cal_ticks);
    assert(k >= 0 && k < 2 * gamma);
    // Duration is exactly proc ticks (p / s real time on an s-speed machine).
    const bool crossing = x + job.proc > start_ticks + (k + 1) * cal_ticks;
    if (!crossing) {
      schedule.jobs.push_back({job.id, machine, x});
      used_slots.emplace(machine, k);
    } else if (options.relaxed_calibrations) {
      // Footnote 3: overlap the dedicated calibration on the same machine.
      crossing_calibrations.push_back({machine, x});
      schedule.jobs.push_back({job.id, machine, x});
    } else if (k % 2 == 0) {
      // Even-k crossing job: dedicated calibration on machine w + m_j.
      crossing_calibrations.push_back({w + machine, x});
      schedule.jobs.push_back({job.id, w + machine, x});
    } else {
      crossing_calibrations.push_back({2 * w + machine, x});
      schedule.jobs.push_back({job.id, 2 * w + machine, x});
    }
  }

  for (int machine = 0; machine < w; ++machine) {
    for (Time k = 0; k < 2 * gamma; ++k) {
      if (options.trim_unused_calibrations &&
          !used_slots.count({machine, k})) {
        continue;
      }
      schedule.calibrations.push_back({machine, start_ticks + k * cal_ticks});
    }
  }
  schedule.calibrations.insert(schedule.calibrations.end(),
                               crossing_calibrations.begin(),
                               crossing_calibrations.end());
  result.feasible = true;
  return result;
}

}  // namespace calisched

#include "shortwin/short_pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "util/arith.hpp"

namespace calisched {
namespace {

/// Groups `pending` jobs nested in the intervals of one partitioning pass
/// (intervals [offset + i*2gT, offset + (i+1)*2gT)), removing grouped jobs
/// from `pending`. Returns interval-start -> sub-instance.
std::map<Time, Instance> partition_pass(std::vector<Job>& pending,
                                        const Instance& parent, Time offset,
                                        Time gamma) {
  const Time width = 2 * gamma * parent.T;
  std::map<Time, Instance> intervals;
  std::vector<Job> leftover;
  leftover.reserve(pending.size());
  for (const Job& job : pending) {
    const Time index = floor_div(job.release - offset, width);
    const Time start = offset + index * width;
    if (job.deadline <= start + width) {
      auto [it, inserted] = intervals.try_emplace(start);
      if (inserted) {
        it->second.machines = parent.machines;
        it->second.T = parent.T;
      }
      it->second.jobs.push_back(job);
    } else {
      leftover.push_back(job);
    }
  }
  pending = std::move(leftover);
  return intervals;
}

}  // namespace

ShortWindowResult solve_short_window(const Instance& instance,
                                     const MachineMinimizer& mm,
                                     const IntervalOptions& options) {
  const Time gamma = options.gamma;
  ShortWindowResult result;
  for (const Job& job : instance.jobs) {
    assert(job.window() <= gamma * instance.T &&
           "short-window pipeline requires windows <= gamma*T");
    (void)job;
  }
  result.schedule = Schedule::empty_like(instance, 0);
  if (instance.empty()) {
    result.feasible = true;
    return result;
  }

  std::vector<Job> pending = instance.jobs;
  struct Pass {
    std::map<Time, Instance> intervals;
    std::vector<IntervalScheduleResult> schedules;
    int max_w = 0;
  };
  Pass passes[2];
  passes[0].intervals = partition_pass(pending, instance, /*offset=*/0, gamma);
  passes[1].intervals =
      partition_pass(pending, instance, /*offset=*/gamma * instance.T, gamma);
  if (!pending.empty()) {
    // Contradicts Lemma 16 for short jobs; defensive (asserted above).
    result.error = "job " + std::to_string(pending.front().id) +
                   " fits neither partitioning pass";
    return result;
  }

  std::vector<std::string> algorithms;
  for (Pass& pass : passes) {
    for (const auto& [start, interval_jobs] : pass.intervals) {
      IntervalScheduleResult interval =
          schedule_interval(interval_jobs, start, mm, options);
      if (!interval.feasible) {
        result.error = std::move(interval.error);
        return result;
      }
      result.telemetry.sum_mm_machines += interval.mm_machines;
      result.telemetry.max_mm_machines =
          std::max(result.telemetry.max_mm_machines, interval.mm_machines);
      pass.max_w = std::max(pass.max_w, interval.mm_machines);
      algorithms.push_back(interval.mm_algorithm);
      pass.schedules.push_back(std::move(interval));
    }
  }
  result.telemetry.intervals_pass1 = static_cast<int>(passes[0].schedules.size());
  result.telemetry.intervals_pass2 = static_cast<int>(passes[1].schedules.size());

  // Union the interval schedules. Within a pass, intervals share a pool of
  // 3*max_w machines: interval machine groups [0,w), [w,2w), [2w,3w) map to
  // pool groups [0,maxw), [maxw,2maxw), [2maxw,3maxw) so that calendar
  // machines never collide with crossing-job machines of another interval.
  // Passes use disjoint pools.
  // All intervals use the same MM box, hence the same tick resolution;
  // the union inherits it (1 when every interval was empty).
  for (const Pass& pass : passes) {
    for (const IntervalScheduleResult& interval : pass.schedules) {
      if (interval.schedule.time_denominator != 1) {
        assert(result.schedule.time_denominator == 1 ||
               result.schedule.time_denominator ==
                   interval.schedule.time_denominator);
        result.schedule.time_denominator = interval.schedule.time_denominator;
        result.schedule.speed = interval.schedule.speed;
      }
    }
  }

  int pool_base = 0;
  const int groups_per_interval = options.relaxed_calibrations ? 1 : 3;
  for (const Pass& pass : passes) {
    const int pool_w = pass.max_w;
    for (const IntervalScheduleResult& interval : pass.schedules) {
      const int w = interval.mm_machines;
      auto pool_machine = [&](int machine) {
        const int group = machine / std::max(1, w);
        const int lane = machine % std::max(1, w);
        return pool_base + group * pool_w + lane;
      };
      for (const Calibration& cal : interval.schedule.calibrations) {
        result.schedule.calibrations.push_back(
            {pool_machine(cal.machine), cal.start});
      }
      for (const ScheduledJob& sj : interval.schedule.jobs) {
        result.schedule.jobs.push_back({sj.job, pool_machine(sj.machine), sj.start});
      }
    }
    pool_base += groups_per_interval * pool_w;
  }
  result.schedule.machines = std::max(1, pool_base);
  result.telemetry.machines_allotted = pool_base;
  result.telemetry.total_calibrations = result.schedule.num_calibrations();

  std::sort(algorithms.begin(), algorithms.end());
  algorithms.erase(std::unique(algorithms.begin(), algorithms.end()),
                   algorithms.end());
  result.telemetry.mm_algorithms = std::move(algorithms);
  result.schedule.normalize();
  result.feasible = true;
  return result;
}

}  // namespace calisched

#include "shortwin/short_pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

#include "util/arith.hpp"
#include "util/thread_pool.hpp"

namespace calisched {
namespace {

/// Groups `pending` jobs nested in the intervals of one partitioning pass
/// (intervals [offset + i*2gT, offset + (i+1)*2gT)), removing grouped jobs
/// from `pending`. Returns interval-start -> sub-instance.
std::map<Time, Instance> partition_pass(std::vector<Job>& pending,
                                        const Instance& parent, Time offset,
                                        Time gamma) {
  const Time width = 2 * gamma * parent.T;
  std::map<Time, Instance> intervals;
  std::vector<Job> leftover;
  leftover.reserve(pending.size());
  for (const Job& job : pending) {
    const Time index = floor_div(job.release - offset, width);
    const Time start = offset + index * width;
    if (job.deadline <= start + width) {
      auto [it, inserted] = intervals.try_emplace(start);
      if (inserted) {
        it->second.machines = parent.machines;
        it->second.T = parent.T;
      }
      it->second.jobs.push_back(job);
    } else {
      leftover.push_back(job);
    }
  }
  pending = std::move(leftover);
  return intervals;
}

}  // namespace

ShortWindowTelemetry ShortWindowTelemetry::from_trace(const TraceContext& trace) {
  ShortWindowTelemetry telemetry;
  telemetry.intervals_pass1 = static_cast<int>(trace.counter("intervals.pass1"));
  telemetry.intervals_pass2 = static_cast<int>(trace.counter("intervals.pass2"));
  telemetry.sum_mm_machines = static_cast<int>(trace.counter("mm.machines.sum"));
  telemetry.max_mm_machines = static_cast<int>(trace.counter("mm.machines.max"));
  telemetry.machines_allotted =
      static_cast<int>(trace.counter("machines.allotted"));
  telemetry.total_calibrations =
      static_cast<std::size_t>(trace.counter("calibrations.total"));
  telemetry.mm_algorithms = trace.notes("mm.algorithm");
  std::sort(telemetry.mm_algorithms.begin(), telemetry.mm_algorithms.end());
  return telemetry;
}

ShortWindowResult solve_short_window(const Instance& instance,
                                     const MachineMinimizer& mm,
                                     const IntervalOptions& options) {
  const Time gamma = options.gamma;
  ShortWindowResult result;
  // All telemetry flows through the trace; the caller's sink is used when
  // provided, a local one otherwise, and the legacy telemetry struct is
  // derived from it on every exit path.
  TraceContext local_trace("short_window");
  TraceContext* trace = options.trace ? options.trace : &local_trace;
  IntervalOptions interval_options = options;
  interval_options.trace = trace;
  const auto finish = [&]() {
    result.telemetry = ShortWindowTelemetry::from_trace(*trace);
    return std::move(result);
  };
  for (const Job& job : instance.jobs) {
    assert(job.window() <= gamma * instance.T &&
           "short-window pipeline requires windows <= gamma*T");
    (void)job;
  }
  trace->set("jobs", static_cast<std::int64_t>(instance.size()));
  result.schedule = Schedule::empty_like(instance, 0);
  if (instance.empty()) {
    result.feasible = true;
    return finish();
  }

  TraceSpan partition_span(trace, "partition");
  std::vector<Job> pending = instance.jobs;
  struct Pass {
    std::map<Time, Instance> intervals;
    std::vector<IntervalScheduleResult> schedules;
    int max_w = 0;
  };
  Pass passes[2];
  passes[0].intervals = partition_pass(pending, instance, /*offset=*/0, gamma);
  passes[1].intervals =
      partition_pass(pending, instance, /*offset=*/gamma * instance.T, gamma);
  partition_span.stop();
  if (!pending.empty()) {
    // Contradicts Lemma 16 for short jobs; defensive (asserted above).
    fail_result(result, SolveStatus::kNumericalFailure,
                "job " + std::to_string(pending.front().id) +
                    " fits neither partitioning pass",
                "partition");
    return finish();
  }

  // The intervals are disjoint in time and share no state, so the MM solves
  // fan out across a thread pool. Determinism contract: every interval is
  // always solved (no early exit), each task records into a scratch trace it
  // exclusively owns, and both results and traces are merged in interval
  // order below — so schedule, telemetry, and failure report are identical
  // at any options.threads, sequential path included.
  TraceSpan intervals_span(trace, "intervals");
  struct IntervalTask {
    std::size_t pass;
    Time start;
    const Instance* jobs;
  };
  std::vector<IntervalTask> tasks;
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (const auto& [start, interval_jobs] : passes[pass].intervals) {
      tasks.push_back({pass, start, &interval_jobs});
    }
  }
  std::vector<IntervalScheduleResult> interval_results(tasks.size());
  // deque: TraceContext is neither copyable nor movable.
  std::deque<TraceContext> scratch_traces;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    scratch_traces.emplace_back("interval_scratch");
  }
  const auto run_interval = [&](std::size_t i) {
    IntervalOptions task_options = interval_options;
    task_options.trace = &scratch_traces[i];
    task_options.threads = 1;
    interval_results[i] =
        schedule_interval(*tasks[i].jobs, tasks[i].start, mm, task_options);
  };
  const std::size_t workers =
      options.threads == 0
          ? std::max(1u, std::thread::hardware_concurrency())
          : static_cast<std::size_t>(std::max(1, options.threads));
  if (workers > 1 && tasks.size() > 1) {
    // A pool local to this solve: callers may themselves run on a pool
    // (the batch driver), and submitting to a shared pool from one of its
    // own workers would deadlock parallel_for's join.
    ThreadPool pool(std::min(workers, tasks.size()));
    // Chunked: consecutive intervals have similarly-shaped LPs, so a
    // worker's thread-local simplex workspace stays warm across its run.
    // Results and traces are keyed by index — output is order-independent.
    parallel_for_chunked(pool, tasks.size(), run_interval);
  } else {
    for (std::size_t i = 0; i < tasks.size(); ++i) run_interval(i);
  }
  for (const TraceContext& scratch : scratch_traces) trace->absorb(scratch);
  intervals_span.stop();

  int sum_w = 0;
  int max_w = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    IntervalScheduleResult& interval = interval_results[i];
    if (!interval.feasible) {
      result.status = interval.status;
      result.error = std::move(interval.error);
      return finish();
    }
    Pass& pass = passes[tasks[i].pass];
    sum_w += interval.mm_machines;
    max_w = std::max(max_w, interval.mm_machines);
    pass.max_w = std::max(pass.max_w, interval.mm_machines);
    pass.schedules.push_back(std::move(interval));
  }
  trace->set("mm.machines.sum", sum_w);
  trace->set("mm.machines.max", max_w);
  trace->set("intervals.pass1",
             static_cast<std::int64_t>(passes[0].schedules.size()));
  trace->set("intervals.pass2",
             static_cast<std::int64_t>(passes[1].schedules.size()));

  // Union the interval schedules. Within a pass, intervals share a pool of
  // 3*max_w machines: interval machine groups [0,w), [w,2w), [2w,3w) map to
  // pool groups [0,maxw), [maxw,2maxw), [2maxw,3maxw) so that calendar
  // machines never collide with crossing-job machines of another interval.
  // Passes use disjoint pools.
  // All intervals use the same MM box, hence the same tick resolution;
  // the union inherits it (1 when every interval was empty).
  TraceSpan union_span(trace, "union");
  for (const Pass& pass : passes) {
    for (const IntervalScheduleResult& interval : pass.schedules) {
      if (interval.schedule.time_denominator != 1) {
        assert(result.schedule.time_denominator == 1 ||
               result.schedule.time_denominator ==
                   interval.schedule.time_denominator);
        result.schedule.time_denominator = interval.schedule.time_denominator;
        result.schedule.speed = interval.schedule.speed;
      }
    }
  }

  int pool_base = 0;
  const int groups_per_interval = options.relaxed_calibrations ? 1 : 3;
  for (const Pass& pass : passes) {
    const int pool_w = pass.max_w;
    for (const IntervalScheduleResult& interval : pass.schedules) {
      const int w = interval.mm_machines;
      auto pool_machine = [&](int machine) {
        const int group = machine / std::max(1, w);
        const int lane = machine % std::max(1, w);
        return pool_base + group * pool_w + lane;
      };
      for (const Calibration& cal : interval.schedule.calibrations) {
        result.schedule.calibrations.push_back(
            {pool_machine(cal.machine), cal.start});
      }
      for (const ScheduledJob& sj : interval.schedule.jobs) {
        result.schedule.jobs.push_back({sj.job, pool_machine(sj.machine), sj.start});
      }
    }
    pool_base += groups_per_interval * pool_w;
  }
  result.schedule.machines = std::max(1, pool_base);
  result.schedule.normalize();
  union_span.stop();
  trace->set("machines.allotted", pool_base);
  trace->set("calibrations.total",
             static_cast<std::int64_t>(result.schedule.num_calibrations()));
  result.feasible = true;
  return finish();
}

}  // namespace calisched

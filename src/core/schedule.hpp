// Schedule representation shared by every algorithm in the library.
//
// Times inside a schedule are stored in integer *ticks*. A schedule carries
// a `time_denominator` D: real time = ticks / D. All instance quantities
// are integral, so D = 1 everywhere except after the Lemma 13 speed
// transform, where start times like t + iT/(2c) require D = 2c.
//
// A schedule also carries a uniform machine `speed` s: a job with processing
// time p occupies p * D / s ticks. The verifier insists that p * D be
// divisible by s, keeping all arithmetic exact.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"

namespace calisched {

/// One calibration. Under the unit model (type 0 of an empty table) the
/// machine is usable for [start, start + T*D) ticks. Under an explicit
/// table, `type` indexes the schedule's CalibrationModel: the machine is
/// *occupied* for [start, start + span*D) ticks but only usable for the
/// trailing [start + delay*D, start + (delay+length)*D) availability
/// window.
struct Calibration {
  int machine = 0;
  Time start = 0;  // ticks
  int type = 0;    // index into the schedule's calibration-type table

  friend constexpr bool operator==(const Calibration&, const Calibration&) noexcept =
      default;
};

/// One scheduled job occurrence.
struct ScheduledJob {
  JobId job = -1;
  int machine = 0;
  Time start = 0;  // ticks

  friend constexpr bool operator==(const ScheduledJob&, const ScheduledJob&) noexcept =
      default;
};

struct Schedule {
  int machines = 0;                     ///< machine indices live in [0, machines)
  Time T = 2;                           ///< calibration length, real units
  std::int64_t time_denominator = 1;    ///< ticks per real time unit
  std::int64_t speed = 1;               ///< uniform machine speed
  /// Calibration-type table; empty means the implicit unit model unit(T).
  CalibrationModel cal;
  std::vector<Calibration> calibrations;
  std::vector<ScheduledJob> jobs;

  /// Unit-model calibration length in ticks. Classic algorithms only; the
  /// generalized per-calibration quantities are below.
  [[nodiscard]] Time calibration_ticks() const noexcept {
    return T * time_denominator;
  }

  /// True when the effective model is the classic single-type one.
  [[nodiscard]] bool is_unit_model() const noexcept {
    return cal.empty() || cal.is_unit(T);
  }

  /// The table with the implicit unit model resolved.
  [[nodiscard]] CalibrationModel effective_model() const {
    return cal.empty() ? CalibrationModel::unit(T) : cal;
  }

  /// Type record for a type id, resolving the implicit unit model.
  /// Precondition: the id indexes the effective table.
  [[nodiscard]] CalibrationType type_info(int type) const noexcept;

  /// First usable tick of a calibration: start + activation_delay * D.
  [[nodiscard]] Time available_start_ticks(const Calibration& c) const noexcept;
  /// One past the last usable tick: available start + length * D.
  [[nodiscard]] Time available_end_ticks(const Calibration& c) const noexcept;
  /// One past the last *occupied* tick: start + span * D. Two calibrations
  /// on one machine must not overlap in occupancy (strict policy).
  [[nodiscard]] Time occupied_end_ticks(const Calibration& c) const noexcept;

  /// Sum of type costs over all calibrations; equals num_calibrations()
  /// under the unit model.
  [[nodiscard]] std::int64_t total_cost() const noexcept;

  /// Duration in ticks of a job with processing time `proc`.
  /// Asserts exact divisibility (the verifier re-checks it).
  [[nodiscard]] Time job_duration_ticks(Time proc) const noexcept;

  [[nodiscard]] std::size_t num_calibrations() const noexcept {
    return calibrations.size();
  }

  /// Number of distinct machines that carry at least one calibration or job.
  [[nodiscard]] int machines_used() const;

  /// Canonical ordering: calibrations by (machine, start), jobs likewise.
  void normalize();

  /// Splices `other` onto machines [offset, offset + other.machines).
  /// Requires matching T, calibration model, denominator, and speed.
  void append_disjoint(const Schedule& other, int machine_offset);

  /// Refines the tick resolution: multiplies time_denominator and every
  /// stored start time by `factor` (speed unchanged). A feasible schedule
  /// stays feasible — only the unit changes. Used when splicing schedules
  /// with different denominators onto one machine park.
  void scale_denominator(std::int64_t factor);

  /// Reinterprets the schedule on machines `factor` times faster: speed is
  /// multiplied, start times stay. Jobs only get shorter, so feasibility
  /// is preserved (the paper's resource-augmentation direction: a 1-speed
  /// schedule is trivially valid on s-speed machines). Requires the new
  /// durations to stay exact in ticks; scale_denominator first if needed.
  void scale_speed(std::int64_t factor);

  /// Removes calibrations that contain no scheduled job. Feasibility is
  /// preserved trivially (dropping an unused calibration cannot violate
  /// any constraint); returns the number removed. The paper's analysis
  /// never prunes — this is the practical optimization its conclusions
  /// allude to ("some of the constants could be reduced").
  std::size_t prune_empty_calibrations(const Instance& instance);

  /// An empty schedule shaped like `instance` with the given machine count.
  [[nodiscard]] static Schedule empty_like(const Instance& instance, int machines);
};

}  // namespace calisched

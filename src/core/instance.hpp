// ISE problem instance: jobs + machine count + calibration model.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/job.hpp"

namespace calisched {

/// A complete ISE instance (Bender et al. / Fineman-Sheridan formulation):
/// `machines` identical machines, calibration length `T >= 2`, and jobs with
/// p_j <= T, d_j >= r_j + p_j.
///
/// The generalized cost model (Angel et al.) replaces the single length T
/// with a table of calibration types. An empty `cal.types` means the unit
/// model of length T — the degenerate one-type table — so classic call
/// sites that only ever touch `T` keep their exact semantics; an explicit
/// table makes this a cost-model instance (see is_unit_model()), and jobs
/// are then constrained by the longest type length instead of T.
struct Instance {
  std::vector<Job> jobs;
  int machines = 1;
  Time T = 2;
  /// Calibration-type table; empty means the implicit unit model unit(T).
  CalibrationModel cal;

  [[nodiscard]] std::size_t size() const noexcept { return jobs.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs.empty(); }

  /// The table with the implicit unit model resolved: unit(T) when `cal`
  /// is empty, `cal` itself otherwise.
  [[nodiscard]] CalibrationModel effective_model() const {
    return cal.empty() ? CalibrationModel::unit(T) : cal;
  }

  /// True when the effective model is the classic one: a single type of
  /// length T, cost 1, and no activation delay. Every algorithm predating
  /// the cost model requires this (the registry gates on it).
  [[nodiscard]] bool is_unit_model() const noexcept {
    return cal.empty() || cal.is_unit(T);
  }

  /// Longest usable calibration window: T under the unit model, the
  /// longest type length otherwise. Upper bound for every p_j.
  [[nodiscard]] Time max_calibration_length() const noexcept {
    return cal.empty() ? T : cal.max_length();
  }

  /// Earliest release over all jobs (0 when empty).
  [[nodiscard]] Time min_release() const noexcept;
  /// Latest deadline over all jobs (0 when empty).
  [[nodiscard]] Time max_deadline() const noexcept;
  /// Total processing time of all jobs.
  [[nodiscard]] Time total_work() const noexcept;

  /// Checks the structural invariants of the problem statement; returns an
  /// error description, or nullopt if the instance is well-formed.
  [[nodiscard]] std::optional<std::string> validate() const;

  /// Finds a job by id; precondition: the id exists.
  [[nodiscard]] const Job& job_by_id(JobId id) const;
};

/// The Definition-1 split. Both halves keep the parent's machine count and
/// T; the paper schedules them on *disjoint* machine pools.
struct WindowSplit {
  Instance long_jobs;
  Instance short_jobs;
};
[[nodiscard]] WindowSplit split_by_window(const Instance& instance);

/// Serialises to a small line-oriented text format:
///   machines <m>
///   T <T>
///   caltype <length> <cost> <activation_delay>   (one per explicit type)
///   job <id> <release> <deadline> <proc>
/// `caltype` lines appear only for explicit tables; unit-model instances
/// keep the original single-T format byte for byte.
void write_instance(std::ostream& out, const Instance& instance);

/// Parses the format produced by write_instance; throws std::runtime_error
/// with a line number on malformed input.
[[nodiscard]] Instance read_instance(std::istream& in);

}  // namespace calisched

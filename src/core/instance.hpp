// ISE problem instance: jobs + machine count + calibration length.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/job.hpp"

namespace calisched {

/// A complete ISE instance (Bender et al. / Fineman-Sheridan formulation):
/// `machines` identical machines, calibration length `T >= 2`, and jobs with
/// p_j <= T, d_j >= r_j + p_j.
struct Instance {
  std::vector<Job> jobs;
  int machines = 1;
  Time T = 2;

  [[nodiscard]] std::size_t size() const noexcept { return jobs.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs.empty(); }

  /// Earliest release over all jobs (0 when empty).
  [[nodiscard]] Time min_release() const noexcept;
  /// Latest deadline over all jobs (0 when empty).
  [[nodiscard]] Time max_deadline() const noexcept;
  /// Total processing time of all jobs.
  [[nodiscard]] Time total_work() const noexcept;

  /// Checks the structural invariants of the problem statement; returns an
  /// error description, or nullopt if the instance is well-formed.
  [[nodiscard]] std::optional<std::string> validate() const;

  /// Finds a job by id; precondition: the id exists.
  [[nodiscard]] const Job& job_by_id(JobId id) const;
};

/// The Definition-1 split. Both halves keep the parent's machine count and
/// T; the paper schedules them on *disjoint* machine pools.
struct WindowSplit {
  Instance long_jobs;
  Instance short_jobs;
};
[[nodiscard]] WindowSplit split_by_window(const Instance& instance);

/// Serialises to a small line-oriented text format:
///   machines <m>
///   T <T>
///   job <id> <release> <deadline> <proc>
void write_instance(std::ostream& out, const Instance& instance);

/// Parses the format produced by write_instance; throws std::runtime_error
/// with a line number on malformed input.
[[nodiscard]] Instance read_instance(std::istream& in);

}  // namespace calisched

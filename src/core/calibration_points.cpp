#include "core/calibration_points.hpp"

#include <algorithm>
#include <set>

namespace calisched {
namespace {

/// All sums of at most `max_count` spans drawn (with repetition) from
/// `spans`, strictly below `limit`. Always contains 0. For a single span T
/// this is {0, T, 2T, ..., kT} — the Lemma 3 offsets.
std::vector<Time> span_sums(std::vector<Time> spans, std::size_t max_count,
                            Time limit) {
  std::sort(spans.begin(), spans.end());
  spans.erase(std::unique(spans.begin(), spans.end()), spans.end());
  std::set<Time> sums{0};
  std::vector<Time> frontier{0};
  for (std::size_t round = 0; round < max_count && !frontier.empty(); ++round) {
    std::vector<Time> next;
    for (const Time base : frontier) {
      for (const Time span : spans) {
        const Time sum = base + span;
        if (sum >= limit) break;  // spans sorted: larger ones only overshoot
        if (sums.insert(sum).second) next.push_back(sum);
      }
    }
    frontier = std::move(next);
  }
  return {sums.begin(), sums.end()};
}

}  // namespace

std::vector<Time> canonical_calibration_points(const Instance& instance) {
  std::vector<Time> points;
  if (instance.empty()) return points;
  const Time horizon = instance.max_deadline();
  const CalibrationModel model = instance.effective_model();
  std::vector<Time> spans;
  spans.reserve(model.size());
  for (const CalibrationType& type : model.types) spans.push_back(type.span());
  // Offsets below horizon - min_release cover every job: r_j + s < horizon
  // forces s < horizon - r_j <= horizon - min_release.
  const std::vector<Time> sums =
      span_sums(std::move(spans), instance.size(), horizon - instance.min_release());
  points.reserve(instance.size() * sums.size());
  for (const Job& job : instance.jobs) {
    for (const Time sum : sums) {
      const Time t = job.release + sum;
      if (t >= horizon) break;  // a calibration starting after every deadline is useless
      points.push_back(t);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

std::vector<Time> tise_calibration_points(const Instance& instance) {
  std::vector<Time> points = canonical_calibration_points(instance);
  const auto feasible_for_some_job = [&](Time t) {
    return std::any_of(instance.jobs.begin(), instance.jobs.end(),
                       [&](const Job& job) {
                         return job.release <= t && t <= job.deadline - instance.T;
                       });
  };
  std::erase_if(points, [&](Time t) { return !feasible_for_some_job(t); });
  return points;
}

std::vector<std::vector<Time>> typed_tise_calibration_points(
    const Instance& instance) {
  const std::vector<Time> canonical = canonical_calibration_points(instance);
  const CalibrationModel model = instance.effective_model();
  std::vector<std::vector<Time>> typed(model.size());
  for (std::size_t k = 0; k < model.size(); ++k) {
    const CalibrationType& type = model.types[k];
    typed[k] = canonical;
    std::erase_if(typed[k], [&](Time t) {
      return std::none_of(instance.jobs.begin(), instance.jobs.end(),
                          [&](const Job& job) {
                            return job.release <= t + type.activation_delay &&
                                   t + type.span() <= job.deadline;
                          });
    });
  }
  return typed;
}

}  // namespace calisched

#include "core/calibration_points.hpp"

#include <algorithm>

namespace calisched {

std::vector<Time> canonical_calibration_points(const Instance& instance) {
  std::vector<Time> points;
  const Time horizon = instance.max_deadline();
  const auto n = static_cast<Time>(instance.size());
  points.reserve(instance.size() * (instance.size() + 1));
  for (const Job& job : instance.jobs) {
    for (Time k = 0; k <= n; ++k) {
      const Time t = job.release + k * instance.T;
      if (t >= horizon) break;  // a calibration starting after every deadline is useless
      points.push_back(t);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

std::vector<Time> tise_calibration_points(const Instance& instance) {
  std::vector<Time> points = canonical_calibration_points(instance);
  const auto feasible_for_some_job = [&](Time t) {
    return std::any_of(instance.jobs.begin(), instance.jobs.end(),
                       [&](const Job& job) {
                         return job.release <= t && t <= job.deadline - instance.T;
                       });
  };
  std::erase_if(points, [&](Time t) { return !feasible_for_some_job(t); });
  return points;
}

}  // namespace calisched

#include "core/schedule_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace calisched {

void write_schedule(std::ostream& out, const Schedule& schedule) {
  out << "machines " << schedule.machines << '\n';
  out << "T " << schedule.T << '\n';
  out << "denominator " << schedule.time_denominator << '\n';
  out << "speed " << schedule.speed << '\n';
  for (const CalibrationType& type : schedule.cal.types) {
    out << "caltype " << type.length << ' ' << type.cost << ' '
        << type.activation_delay << '\n';
  }
  // The type id is emitted only for explicit tables; unit-model schedules
  // keep the original two-field format byte for byte.
  for (const Calibration& cal : schedule.calibrations) {
    out << "calibration " << cal.machine << ' ' << cal.start;
    if (!schedule.cal.empty()) out << ' ' << cal.type;
    out << '\n';
  }
  for (const ScheduledJob& sj : schedule.jobs) {
    out << "job " << sj.job << ' ' << sj.machine << ' ' << sj.start << '\n';
  }
}

Schedule read_schedule(std::istream& in) {
  Schedule schedule;
  std::string line;
  int line_number = 0;
  auto fail = [&](const std::string& what) {
    throw std::runtime_error("schedule parse error on line " +
                             std::to_string(line_number) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "machines") {
      if (!(fields >> schedule.machines)) fail("expected machine count");
    } else if (keyword == "T") {
      if (!(fields >> schedule.T)) fail("expected calibration length");
    } else if (keyword == "denominator") {
      if (!(fields >> schedule.time_denominator)) fail("expected denominator");
    } else if (keyword == "speed") {
      if (!(fields >> schedule.speed)) fail("expected speed");
    } else if (keyword == "caltype") {
      CalibrationType type;
      if (!(fields >> type.length >> type.cost >> type.activation_delay)) {
        fail("expected: caltype <length> <cost> <activation_delay>");
      }
      schedule.cal.types.push_back(type);
    } else if (keyword == "calibration") {
      Calibration cal;
      if (!(fields >> cal.machine >> cal.start)) {
        fail("expected: calibration <machine> <start> [type]");
      }
      fields >> cal.type;  // optional third field; absent means type 0
      schedule.calibrations.push_back(cal);
    } else if (keyword == "job") {
      ScheduledJob sj;
      if (!(fields >> sj.job >> sj.machine >> sj.start)) {
        fail("expected: job <id> <machine> <start>");
      }
      schedule.jobs.push_back(sj);
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (schedule.machines < 0 || schedule.time_denominator < 1 ||
      schedule.speed < 1) {
    fail("invalid schedule header values");
  }
  return schedule;
}

}  // namespace calisched

#include "core/schedule.hpp"

#include <algorithm>
#include <cassert>

namespace calisched {

Time Schedule::job_duration_ticks(Time proc) const noexcept {
  const Time scaled = proc * time_denominator;
  assert(scaled % speed == 0 && "job duration must be exact in ticks");
  return scaled / speed;
}

int Schedule::machines_used() const {
  std::vector<bool> used(static_cast<std::size_t>(machines), false);
  auto mark = [&](int machine) {
    assert(machine >= 0 && machine < machines);
    used[static_cast<std::size_t>(machine)] = true;
  };
  for (const Calibration& cal : calibrations) mark(cal.machine);
  for (const ScheduledJob& job : jobs) mark(job.machine);
  return static_cast<int>(std::count(used.begin(), used.end(), true));
}

void Schedule::normalize() {
  std::sort(calibrations.begin(), calibrations.end(),
            [](const Calibration& a, const Calibration& b) {
              return a.machine != b.machine ? a.machine < b.machine
                                            : a.start < b.start;
            });
  std::sort(jobs.begin(), jobs.end(),
            [](const ScheduledJob& a, const ScheduledJob& b) {
              if (a.machine != b.machine) return a.machine < b.machine;
              if (a.start != b.start) return a.start < b.start;
              return a.job < b.job;
            });
}

void Schedule::append_disjoint(const Schedule& other, int machine_offset) {
  assert(T == other.T);
  assert(time_denominator == other.time_denominator);
  assert(speed == other.speed);
  assert(machine_offset >= 0);
  machines = std::max(machines, machine_offset + other.machines);
  calibrations.reserve(calibrations.size() + other.calibrations.size());
  for (Calibration cal : other.calibrations) {
    cal.machine += machine_offset;
    calibrations.push_back(cal);
  }
  jobs.reserve(jobs.size() + other.jobs.size());
  for (ScheduledJob job : other.jobs) {
    job.machine += machine_offset;
    jobs.push_back(job);
  }
}

void Schedule::scale_denominator(std::int64_t factor) {
  assert(factor >= 1);
  time_denominator *= factor;
  for (Calibration& cal : calibrations) cal.start *= factor;
  for (ScheduledJob& sj : jobs) sj.start *= factor;
}

void Schedule::scale_speed(std::int64_t factor) {
  assert(factor >= 1);
  speed *= factor;
}

std::size_t Schedule::prune_empty_calibrations(const Instance& instance) {
  const Time cal_len = calibration_ticks();
  const auto hosts_a_job = [&](const Calibration& cal) {
    for (const ScheduledJob& sj : jobs) {
      if (sj.machine != cal.machine) continue;
      const Time duration = job_duration_ticks(instance.job_by_id(sj.job).proc);
      if (cal.start <= sj.start && sj.start + duration <= cal.start + cal_len) {
        return true;
      }
    }
    return false;
  };
  const std::size_t before = calibrations.size();
  std::erase_if(calibrations,
                [&](const Calibration& cal) { return !hosts_a_job(cal); });
  return before - calibrations.size();
}

Schedule Schedule::empty_like(const Instance& instance, int machines) {
  Schedule schedule;
  schedule.machines = machines;
  schedule.T = instance.T;
  return schedule;
}

}  // namespace calisched

#include "core/schedule.hpp"

#include <algorithm>
#include <cassert>

namespace calisched {

Time Schedule::job_duration_ticks(Time proc) const noexcept {
  const Time scaled = proc * time_denominator;
  assert(scaled % speed == 0 && "job duration must be exact in ticks");
  return scaled / speed;
}

CalibrationType Schedule::type_info(int type) const noexcept {
  if (cal.empty()) {
    assert(type == 0 && "unit model has a single type");
    return CalibrationType{T, 1, 0};
  }
  assert(type >= 0 && static_cast<std::size_t>(type) < cal.types.size());
  return cal.types[static_cast<std::size_t>(type)];
}

Time Schedule::available_start_ticks(const Calibration& c) const noexcept {
  return c.start + type_info(c.type).activation_delay * time_denominator;
}

Time Schedule::available_end_ticks(const Calibration& c) const noexcept {
  const CalibrationType type = type_info(c.type);
  return c.start + type.span() * time_denominator;
}

Time Schedule::occupied_end_ticks(const Calibration& c) const noexcept {
  return c.start + type_info(c.type).span() * time_denominator;
}

std::int64_t Schedule::total_cost() const noexcept {
  std::int64_t total = 0;
  for (const Calibration& c : calibrations) total += type_info(c.type).cost;
  return total;
}

int Schedule::machines_used() const {
  std::vector<bool> used(static_cast<std::size_t>(machines), false);
  auto mark = [&](int machine) {
    assert(machine >= 0 && machine < machines);
    used[static_cast<std::size_t>(machine)] = true;
  };
  for (const Calibration& c : calibrations) mark(c.machine);
  for (const ScheduledJob& job : jobs) mark(job.machine);
  return static_cast<int>(std::count(used.begin(), used.end(), true));
}

void Schedule::normalize() {
  std::sort(calibrations.begin(), calibrations.end(),
            [](const Calibration& a, const Calibration& b) {
              if (a.machine != b.machine) return a.machine < b.machine;
              if (a.start != b.start) return a.start < b.start;
              return a.type < b.type;
            });
  std::sort(jobs.begin(), jobs.end(),
            [](const ScheduledJob& a, const ScheduledJob& b) {
              if (a.machine != b.machine) return a.machine < b.machine;
              if (a.start != b.start) return a.start < b.start;
              return a.job < b.job;
            });
}

void Schedule::append_disjoint(const Schedule& other, int machine_offset) {
  assert(T == other.T);
  assert(effective_model() == other.effective_model());
  assert(time_denominator == other.time_denominator);
  assert(speed == other.speed);
  assert(machine_offset >= 0);
  machines = std::max(machines, machine_offset + other.machines);
  calibrations.reserve(calibrations.size() + other.calibrations.size());
  for (Calibration c : other.calibrations) {
    c.machine += machine_offset;
    calibrations.push_back(c);
  }
  jobs.reserve(jobs.size() + other.jobs.size());
  for (ScheduledJob job : other.jobs) {
    job.machine += machine_offset;
    jobs.push_back(job);
  }
}

void Schedule::scale_denominator(std::int64_t factor) {
  assert(factor >= 1);
  time_denominator *= factor;
  for (Calibration& c : calibrations) c.start *= factor;
  for (ScheduledJob& sj : jobs) sj.start *= factor;
}

void Schedule::scale_speed(std::int64_t factor) {
  assert(factor >= 1);
  speed *= factor;
}

std::size_t Schedule::prune_empty_calibrations(const Instance& instance) {
  const auto hosts_a_job = [&](const Calibration& c) {
    const Time lo = available_start_ticks(c);
    const Time hi = available_end_ticks(c);
    for (const ScheduledJob& sj : jobs) {
      if (sj.machine != c.machine) continue;
      const Time duration = job_duration_ticks(instance.job_by_id(sj.job).proc);
      if (lo <= sj.start && sj.start + duration <= hi) {
        return true;
      }
    }
    return false;
  };
  const std::size_t before = calibrations.size();
  std::erase_if(calibrations,
                [&](const Calibration& c) { return !hosts_a_job(c); });
  return before - calibrations.size();
}

Schedule Schedule::empty_like(const Instance& instance, int machines) {
  Schedule schedule;
  schedule.machines = machines;
  schedule.T = instance.T;
  schedule.cal = instance.cal;
  return schedule;
}

}  // namespace calisched

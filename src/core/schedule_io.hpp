// Text serialization of schedules, mirroring the instance format.
//
//   machines <m>
//   T <T>
//   denominator <D>
//   speed <s>
//   calibration <machine> <start-ticks>
//   job <id> <machine> <start-ticks>
//
// Blank lines and lines starting with '#' are ignored.
#pragma once

#include <iosfwd>

#include "core/schedule.hpp"

namespace calisched {

void write_schedule(std::ostream& out, const Schedule& schedule);

/// Parses the format above; throws std::runtime_error with a line number
/// on malformed input.
[[nodiscard]] Schedule read_schedule(std::istream& in);

}  // namespace calisched

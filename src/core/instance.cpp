#include "core/instance.hpp"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace calisched {

Time Instance::min_release() const noexcept {
  Time best = 0;
  bool first = true;
  for (const Job& job : jobs) {
    if (first || job.release < best) best = job.release;
    first = false;
  }
  return best;
}

Time Instance::max_deadline() const noexcept {
  Time best = 0;
  bool first = true;
  for (const Job& job : jobs) {
    if (first || job.deadline > best) best = job.deadline;
    first = false;
  }
  return best;
}

Time Instance::total_work() const noexcept {
  Time total = 0;
  for (const Job& job : jobs) total += job.proc;
  return total;
}

std::optional<std::string> Instance::validate() const {
  if (machines < 1) return "machine count must be >= 1";
  if (cal.empty()) {
    if (T < 2) return "calibration length T must be >= 2";
  } else {
    if (auto error = cal.validate()) return *error;
    // A table that *is* the classic model must agree with T, so the unit
    // algorithms and the explicit one-type table see the same instance.
    if (cal.size() == 1 && cal.types.front().cost == 1 &&
        cal.types.front().activation_delay == 0 &&
        cal.types.front().length != T) {
      return "one-type unit table length " +
             std::to_string(cal.types.front().length) +
             " disagrees with T " + std::to_string(T);
    }
  }
  const Time max_len = max_calibration_length();
  std::vector<bool> seen;
  for (const Job& job : jobs) {
    if (job.id < 0) return "job id must be non-negative";
    if (static_cast<std::size_t>(job.id) >= seen.size()) {
      seen.resize(static_cast<std::size_t>(job.id) + 1, false);
    }
    if (seen[static_cast<std::size_t>(job.id)]) {
      return "duplicate job id " + std::to_string(job.id);
    }
    seen[static_cast<std::size_t>(job.id)] = true;
    if (job.proc < 1) {
      return "job " + std::to_string(job.id) + ": processing time must be >= 1";
    }
    if (job.proc > max_len) {
      return "job " + std::to_string(job.id) +
             (cal.empty() ? ": p_j must be <= T"
                          : ": p_j must fit the longest calibration type");
    }
    if (job.deadline < job.release + job.proc) {
      return "job " + std::to_string(job.id) + ": window too small for p_j";
    }
  }
  return std::nullopt;
}

const Job& Instance::job_by_id(JobId id) const {
  const auto it = std::find_if(jobs.begin(), jobs.end(),
                               [id](const Job& job) { return job.id == id; });
  assert(it != jobs.end());
  return *it;
}

WindowSplit split_by_window(const Instance& instance) {
  WindowSplit split;
  split.long_jobs.machines = instance.machines;
  split.long_jobs.T = instance.T;
  split.long_jobs.cal = instance.cal;
  split.short_jobs.machines = instance.machines;
  split.short_jobs.T = instance.T;
  split.short_jobs.cal = instance.cal;
  for (const Job& job : instance.jobs) {
    (job.is_long(instance.T) ? split.long_jobs : split.short_jobs)
        .jobs.push_back(job);
  }
  return split;
}

void write_instance(std::ostream& out, const Instance& instance) {
  out << "machines " << instance.machines << '\n';
  out << "T " << instance.T << '\n';
  for (const CalibrationType& type : instance.cal.types) {
    out << "caltype " << type.length << ' ' << type.cost << ' '
        << type.activation_delay << '\n';
  }
  for (const Job& job : instance.jobs) {
    out << "job " << job.id << ' ' << job.release << ' ' << job.deadline << ' '
        << job.proc << '\n';
  }
}

Instance read_instance(std::istream& in) {
  Instance instance;
  std::string line;
  int line_number = 0;
  auto fail = [&](const std::string& what) {
    throw std::runtime_error("instance parse error on line " +
                             std::to_string(line_number) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "machines") {
      if (!(fields >> instance.machines)) fail("expected machine count");
    } else if (keyword == "T") {
      if (!(fields >> instance.T)) fail("expected calibration length");
    } else if (keyword == "caltype") {
      CalibrationType type;
      if (!(fields >> type.length >> type.cost >> type.activation_delay)) {
        fail("expected: caltype <length> <cost> <activation_delay>");
      }
      instance.cal.types.push_back(type);
    } else if (keyword == "job") {
      Job job;
      if (!(fields >> job.id >> job.release >> job.deadline >> job.proc)) {
        fail("expected: job <id> <release> <deadline> <proc>");
      }
      instance.jobs.push_back(job);
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (auto error = instance.validate()) fail(*error);
  return instance;
}

}  // namespace calisched

// The canonical calibration grid of Lemma 3.
//
// Lemma 3: some optimal TISE solution only starts calibrations at times of
// the form r_j + k*T with 0 <= k <= n (a release time, or packed directly
// after the previous calibration on the same machine). The same exchange
// argument applies verbatim to the untrimmed ISE problem, so the exact
// reference solver uses the grid too.
#pragma once

#include <vector>

#include "core/instance.hpp"

namespace calisched {

/// All distinct r_j + k*T (k in [0, n]) that start before the last deadline.
/// Sorted ascending. Size is O(n^2).
[[nodiscard]] std::vector<Time> canonical_calibration_points(const Instance& instance);

/// The subset of the canonical grid that is TISE-feasible for at least one
/// long job, i.e. exists j with r_j <= t <= d_j - T. Points outside every
/// job's trimmed window carry C_t = 0 in some LP optimum, so the TISE LP is
/// built over this (much smaller) set.
[[nodiscard]] std::vector<Time> tise_calibration_points(const Instance& instance);

}  // namespace calisched

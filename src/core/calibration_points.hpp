// The canonical calibration grid of Lemma 3, generalized to type tables.
//
// Lemma 3 (unit model): some optimal TISE solution only starts calibrations
// at times of the form r_j + k*T with 0 <= k <= n (a release time, or packed
// directly after the previous calibration on the same machine). The same
// exchange argument applies verbatim to the untrimmed ISE problem, so the
// exact reference solver uses the grid too.
//
// Generalized model: "packed directly after the previous calibration" now
// advances by that calibration's *span* (activation delay + length), and the
// predecessors may be of any type, so the grid becomes r_j + s for every sum
// s of at most n type spans. For the unit model the only span is T and the
// sums collapse to {0, T, ..., n*T} — the classic grid, recovered exactly
// (test_property asserts this over the TISE sweep).
#pragma once

#include <vector>

#include "core/instance.hpp"

namespace calisched {

/// All distinct r_j + s (s a sum of at most n type spans of the effective
/// model) that start before the last deadline. Sorted ascending. Unit
/// model: all distinct r_j + k*T with k in [0, n], size O(n^2).
[[nodiscard]] std::vector<Time> canonical_calibration_points(const Instance& instance);

/// The subset of the canonical grid that is TISE-feasible for at least one
/// long job, i.e. exists j with r_j <= t <= d_j - T. Points outside every
/// job's trimmed window carry C_t = 0 in some LP optimum, so the TISE LP is
/// built over this (much smaller) set. Unit-model semantics: the classic
/// pipelines that call this are gated on the unit model by the registry.
[[nodiscard]] std::vector<Time> tise_calibration_points(const Instance& instance);

/// Per-type trimmed grids for the generalized model: entry k holds the
/// canonical points t where some job admits a type-k calibration nested in
/// its window (r_j <= t + delay_k and t + delay_k + length_k <= d_j).
/// For a unit-model instance this has one entry, equal to
/// tise_calibration_points(instance).
[[nodiscard]] std::vector<std::vector<Time>> typed_tise_calibration_points(
    const Instance& instance);

}  // namespace calisched

// Job model for the ISE / TISE / MM problems.
#pragma once

#include <cstdint>

#include "util/arith.hpp"

namespace calisched {

/// Index of a job within its *original* instance. Sub-instances created by
/// partitioning (long/short split, interval partitioning) preserve ids so
/// that schedules can always be reported against the caller's instance.
using JobId = std::int32_t;

/// One nonpreemptive job: must run for `proc` consecutive time units inside
/// its window [release, deadline).
struct Job {
  JobId id = -1;
  Time release = 0;
  Time deadline = 0;
  Time proc = 1;

  /// Window length d_j - r_j.
  [[nodiscard]] constexpr Time window() const noexcept { return deadline - release; }

  /// Slack d_j - r_j - p_j (>= 0 for well-formed jobs).
  [[nodiscard]] constexpr Time slack() const noexcept {
    return deadline - release - proc;
  }

  /// Definition 1: long iff the window is at least 2T.
  [[nodiscard]] constexpr bool is_long(Time calibration_length) const noexcept {
    return window() >= 2 * calibration_length;
  }

  /// Latest feasible start time d_j - p_j.
  [[nodiscard]] constexpr Time latest_start() const noexcept {
    return deadline - proc;
  }

  friend constexpr bool operator==(const Job&, const Job&) noexcept = default;
};

}  // namespace calisched

// The TISE linear-programming relaxation (Section 3 of the paper).
//
// Variables:
//   C_t   — (fractional) number of calibrations started at canonical point t
//   X_jt  — fraction of job j assigned to the calibrations at t, present
//           only for TISE-feasible pairs (r_j <= t <= d_j - T), which makes
//           constraint (5) structural.
// Constraints (numbering follows the paper):
//   (1) for each point t: sum of C_{t'} over t' in [t, t+T) <= m'
//       (the window anchored at each canonical point dominates every real
//        window, because the first point inside any window is an anchor)
//   (2) X_jt <= C_t for every feasible pair
//   (3) for each t: sum_j p_j X_jt <= T C_t
//   (4) for each j: sum_t X_jt = 1
// Objective: minimize sum_t C_t.
#pragma once

#include <utility>
#include <vector>

#include "core/calibration_points.hpp"
#include "lp/simplex.hpp"

namespace calisched {

/// The built model plus the variable layout needed to read a solution back.
struct TiseLpModel {
  LpModel model;
  std::vector<Time> points;              ///< canonical TISE-feasible points
  std::vector<int> calibration_column;   ///< per point: column of C_t
  /// per job (instance order): list of (point index, column of X_jt)
  std::vector<std::vector<std::pair<int, int>>> assignment_columns;
};

/// Builds the LP for `instance` (all jobs must be long) with m' machines.
[[nodiscard]] TiseLpModel build_tise_lp(const Instance& instance, int m_prime);

/// A solved relaxation in scheduling terms.
struct TiseFractional {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;                ///< sum of C_t = fractional calibrations
  std::vector<Time> points;
  std::vector<double> calibration_mass;  ///< C_t per point
  /// per job (instance order): (point index, fraction) with fraction > 0
  std::vector<std::vector<std::pair<int, double>>> assignment;
  std::int64_t pivots = 0;
  int lp_rows = 0;
  int lp_columns = 0;
};

/// Builds and solves the relaxation. status != kOptimal means there is no
/// feasible fractional TISE schedule on m' machines (kInfeasible) or the
/// solver gave up (kIterationLimit; does not happen at library scales).
[[nodiscard]] TiseFractional solve_tise_lp(const Instance& instance, int m_prime,
                                           const SimplexOptions& options = {});

}  // namespace calisched

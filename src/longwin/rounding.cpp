#include "longwin/rounding.hpp"

#include <cassert>

namespace calisched {

std::vector<Time> round_calibrations(const std::vector<Time>& points,
                                     const std::vector<double>& calibration_mass,
                                     double eps) {
  assert(points.size() == calibration_mass.size());
  std::vector<Time> starts;
  double accumulated = 0.0;
  double next_threshold = 0.5;
  for (std::size_t p = 0; p < points.size(); ++p) {
    accumulated += calibration_mass[p];
    while (accumulated >= next_threshold - eps) {
      starts.push_back(points[p]);
      next_threshold += 0.5;
    }
  }
  return starts;
}

Schedule assign_round_robin(const Instance& instance,
                            const std::vector<Time>& starts, int machines) {
  assert(machines >= 1);
  Schedule schedule = Schedule::empty_like(instance, machines);
  schedule.calibrations.reserve(starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    schedule.calibrations.push_back(
        {static_cast<int>(i % static_cast<std::size_t>(machines)), starts[i]});
  }
  return schedule;
}

}  // namespace calisched

// Algorithm 3: the augmented calibration-rounding procedure.
//
// The paper uses Algorithm 3 only inside the proofs of Lemma 5 and
// Corollary 6 — it shows constructively that after the Algorithm-1 rounding
// a *fractional* assignment of all jobs to the rounded calibrations still
// exists. We implement it anyway: it doubles as an executable witness that
// the rounded calendar can host every job, and the test suite checks the
// paper's invariants on its trace:
//
//   * Lemma 5 (at every scheduling event): y_j <= carryover = 1/2.
//   * Corollary 6: every job's scheduled fractions sum to >= 1, and no
//     calibration receives more than T work.
#pragma once

#include <utility>
#include <vector>

#include "longwin/tise_lp.hpp"

namespace calisched {

/// One rounded calibration with the job fractions Algorithm 3 wrote into it.
struct WitnessCalibration {
  Time start = 0;
  std::vector<std::pair<JobId, double>> fractions;  ///< (job, fraction in [0,1])

  [[nodiscard]] double total_work(const Instance& instance) const;
};

struct WitnessTelemetry {
  /// max over scheduling events of (y_j - carryover); Lemma 5 says <= 0.
  double max_y_minus_carryover = 0.0;
  /// min over jobs of the total scheduled fraction; Corollary 6 says >= 1.
  double min_job_coverage = 0.0;
  /// max over calibrations of assigned work; Corollary 6 says <= T.
  double max_calibration_work = 0.0;
  /// Number of jobs whose trailing carried fraction was delayed past their
  /// trimmed window and discarded (Figure 3's "job 2"); Corollary 6 shows
  /// the 2x over-scheduling already covered them.
  int discarded_resets = 0;
};

struct FractionalWitness {
  std::vector<WitnessCalibration> calibrations;
  WitnessTelemetry telemetry;
};

/// Runs Algorithm 3 over an LP solution (points, C_t masses, X_jt values).
/// `fractional.status` must be kOptimal.
[[nodiscard]] FractionalWitness run_fractional_witness(
    const Instance& instance, const TiseFractional& fractional, double eps = 1e-9);

}  // namespace calisched

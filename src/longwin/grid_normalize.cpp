#include "longwin/grid_normalize.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <vector>

namespace calisched {

Schedule normalize_to_grid(const Instance& instance, const Schedule& tise) {
  assert(tise.time_denominator == 1 && tise.speed == 1);
  const Time T = instance.T;

  // Sorted release times for "largest release <= t" queries.
  std::vector<Time> releases;
  releases.reserve(instance.size());
  for (const Job& job : instance.jobs) releases.push_back(job.release);
  std::sort(releases.begin(), releases.end());
  const auto release_at_or_before = [&](Time t) {
    const auto it = std::upper_bound(releases.begin(), releases.end(), t);
    assert(it != releases.begin() &&
           "calibration starts before every release (empty calibration?)");
    return *(it - 1);
  };

  // Group calibrations by machine, keep original order for job remapping.
  std::map<int, std::vector<std::size_t>> by_machine;
  for (std::size_t c = 0; c < tise.calibrations.size(); ++c) {
    by_machine[tise.calibrations[c].machine].push_back(c);
  }

  Schedule normalized = tise;
  std::vector<Time> shift(tise.calibrations.size(), 0);
  for (auto& [machine, indices] : by_machine) {
    std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      return tise.calibrations[a].start < tise.calibrations[b].start;
    });
    Time previous_end = std::numeric_limits<Time>::min();
    for (const std::size_t c : indices) {
      const Time start = tise.calibrations[c].start;
      const Time anchor = release_at_or_before(start);
      const Time new_start =
          previous_end == std::numeric_limits<Time>::min()
              ? anchor
              : std::max(anchor, previous_end);
      assert(new_start <= start);
      shift[c] = start - new_start;
      normalized.calibrations[c].start = new_start;
      previous_end = new_start + T;
    }
  }

  // Jobs move with their containing calibration.
  for (ScheduledJob& sj : normalized.jobs) {
    const Job& job = instance.job_by_id(sj.job);
    // Locate the containing calibration in the *original* schedule.
    std::size_t containing = tise.calibrations.size();
    for (std::size_t c = 0; c < tise.calibrations.size(); ++c) {
      const Calibration& cal = tise.calibrations[c];
      if (cal.machine == sj.machine && cal.start <= sj.start &&
          sj.start + job.proc <= cal.start + T) {
        containing = c;
        break;
      }
    }
    assert(containing < tise.calibrations.size() && "job outside calibrations");
    sj.start -= shift[containing];
  }
  normalized.normalize();
  return normalized;
}

}  // namespace calisched

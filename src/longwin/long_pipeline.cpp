#include "longwin/long_pipeline.hpp"

#include <cassert>

#include "longwin/edf_assign.hpp"
#include "longwin/rounding.hpp"
#include "longwin/speed_transform.hpp"

namespace calisched {

LongWindowResult solve_long_window(const Instance& instance,
                                   const LongWindowOptions& options) {
  LongWindowResult result;
  for (const Job& job : instance.jobs) {
    assert(job.is_long(instance.T) && "long-window pipeline requires long jobs");
    (void)job;
  }
  const int m_prime = options.trim_multiplier * instance.machines;
  result.telemetry.m_prime = m_prime;
  result.telemetry.machines_allotted = 6 * m_prime;
  if (instance.empty()) {
    result.feasible = true;
    result.schedule = Schedule::empty_like(instance, 0);
    return result;
  }

  // Step 1-2: LP relaxation on m' machines.
  const TiseFractional fractional = solve_tise_lp(instance, m_prime, options.lp);
  result.telemetry.lp_objective = fractional.objective;
  result.telemetry.lp_pivots = fractional.pivots;
  result.telemetry.lp_rows = fractional.lp_rows;
  result.telemetry.lp_columns = fractional.lp_columns;
  if (fractional.status == LpStatus::kInfeasible) {
    result.error = "TISE LP infeasible on " + std::to_string(m_prime) +
                   " machines";
    return result;
  }
  if (fractional.status != LpStatus::kOptimal) {
    result.error = "LP solver did not converge";
    return result;
  }

  // Step 3: Algorithm 1 rounding onto 3m' machines, round robin (Lemma 4).
  const std::vector<Time> starts =
      round_calibrations(fractional.points, fractional.calibration_mass);
  result.telemetry.rounded_calibrations = starts.size();
  const Schedule calendar = assign_round_robin(instance, starts, 3 * m_prime);

  // Step 4: mirror + EDF (Algorithm 2) onto 6m' machines. With the
  // adaptive-mirror optimization, first try the bare 3m' calendar.
  EdfAssignResult assigned;
  bool used_mirror = true;
  if (options.adaptive_mirror) {
    assigned = edf_assign_jobs(instance, calendar, /*mirror=*/false);
    used_mirror = !assigned.unassigned.empty();
  }
  if (used_mirror) {
    assigned = edf_assign_jobs(instance, calendar, /*mirror=*/true);
  }
  if (!assigned.unassigned.empty()) {
    result.error = "EDF assignment left " +
                   std::to_string(assigned.unassigned.size()) +
                   " job(s) unscheduled (pipeline guarantee violated)";
    return result;
  }
  result.feasible = true;
  result.schedule = std::move(assigned.schedule);
  if (options.prune_empty_calibrations) {
    result.schedule.prune_empty_calibrations(instance);
  }
  result.schedule.normalize();
  result.telemetry.total_calibrations = result.schedule.num_calibrations();
  return result;
}

LongWindowResult solve_long_window_speed(const Instance& instance,
                                         const LongWindowOptions& options) {
  LongWindowResult result = solve_long_window(instance, options);
  if (!result.feasible) return result;
  if (instance.empty()) return result;
  // Group size c such that c * m covers the Theorem-12 machine allotment.
  const int c = (result.schedule.machines + instance.machines - 1) /
                instance.machines;
  auto transformed = speed_transform(instance, result.schedule, c);
  if (!transformed) {
    result.feasible = false;
    result.error = "speed transform failed (contradicts Lemma 13)";
    return result;
  }
  result.schedule = std::move(*transformed);
  result.schedule.normalize();
  result.telemetry.total_calibrations = result.schedule.num_calibrations();
  return result;
}

}  // namespace calisched

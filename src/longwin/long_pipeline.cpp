#include "longwin/long_pipeline.hpp"

#include <cassert>

#include "longwin/edf_assign.hpp"
#include "longwin/rounding.hpp"
#include "longwin/speed_transform.hpp"
#include "trace/trace.hpp"

namespace calisched {

LongWindowTelemetry LongWindowTelemetry::from_trace(const TraceContext& trace) {
  LongWindowTelemetry telemetry;
  telemetry.m_prime = static_cast<int>(trace.counter("m_prime"));
  telemetry.machines_allotted =
      static_cast<int>(trace.counter("machines.allotted"));
  telemetry.lp_objective = trace.value("lp.objective");
  telemetry.lp_pivots = trace.counter("lp.pivots");
  telemetry.lp_rows = static_cast<int>(trace.counter("lp.rows"));
  telemetry.lp_columns = static_cast<int>(trace.counter("lp.columns"));
  telemetry.rounded_calibrations =
      static_cast<std::size_t>(trace.counter("calibrations.rounded"));
  telemetry.total_calibrations =
      static_cast<std::size_t>(trace.counter("calibrations.total"));
  return telemetry;
}

LongWindowResult solve_long_window(const Instance& instance,
                                   const LongWindowOptions& options) {
  LongWindowResult result;
  // All telemetry flows through the trace; the caller's sink is used when
  // provided, a local one otherwise, and the legacy telemetry struct is
  // derived from it on every exit path.
  TraceContext local_trace("long_window");
  TraceContext* trace = options.trace ? options.trace : &local_trace;
  const auto finish = [&]() {
    result.telemetry = LongWindowTelemetry::from_trace(*trace);
    return std::move(result);
  };
  for (const Job& job : instance.jobs) {
    assert(job.is_long(instance.T) && "long-window pipeline requires long jobs");
    (void)job;
  }
  trace->set("jobs", static_cast<std::int64_t>(instance.size()));

  // Step 1: trim to m' machines (Lemma 2).
  TraceSpan trim_span(trace, "trim");
  const int m_prime = options.trim_multiplier * instance.machines;
  trim_span.stop();
  trace->set("m_prime", m_prime);
  trace->set("machines.allotted", 6 * m_prime);
  if (instance.empty()) {
    result.feasible = true;
    result.schedule = Schedule::empty_like(instance, 0);
    return finish();
  }

  // Step 2: LP relaxation on m' machines. The simplex reports pivots and
  // phase timings into its own child context.
  SimplexOptions lp_options = options.lp;
  lp_options.limits = options.limits;
  lp_options.trace = &trace->child("simplex");
  TraceSpan lp_span(trace, "lp");
  const TiseFractional fractional = solve_tise_lp(instance, m_prime, lp_options);
  lp_span.stop();
  trace->set_value("lp.objective", fractional.objective);
  trace->set("lp.pivots", fractional.pivots);
  trace->set("lp.rows", fractional.lp_rows);
  trace->set("lp.columns", fractional.lp_columns);
  if (fractional.status != LpStatus::kOptimal) {
    fail_result(result, lp_status_to_solve(fractional.status),
                fractional.status == LpStatus::kInfeasible
                    ? "TISE LP infeasible on " + std::to_string(m_prime) +
                          " machines"
                    : "LP solver did not converge",
                "lp");
    return finish();
  }

  // Step 3: Algorithm 1 rounding onto 3m' machines, round robin (Lemma 4).
  TraceSpan rounding_span(trace, "rounding");
  const std::vector<Time> starts =
      round_calibrations(fractional.points, fractional.calibration_mass);
  const Schedule calendar = assign_round_robin(instance, starts, 3 * m_prime);
  rounding_span.stop();
  trace->set("calibrations.rounded", static_cast<std::int64_t>(starts.size()));

  // Step 4: mirror + EDF (Algorithm 2) onto 6m' machines. With the
  // adaptive-mirror optimization, first try the bare 3m' calendar.
  TraceSpan edf_span(trace, "edf");
  EdfAssignResult assigned;
  bool used_mirror = true;
  if (options.adaptive_mirror) {
    assigned = edf_assign_jobs(instance, calendar, /*mirror=*/false);
    used_mirror = !assigned.unassigned.empty();
  }
  if (used_mirror) {
    assigned = edf_assign_jobs(instance, calendar, /*mirror=*/true);
  }
  edf_span.stop();
  trace->set("edf.mirrored", used_mirror ? 1 : 0);
  if (!assigned.unassigned.empty()) {
    fail_result(result, SolveStatus::kNumericalFailure,
                "EDF assignment left " +
                    std::to_string(assigned.unassigned.size()) +
                    " job(s) unscheduled (pipeline guarantee violated)",
                "edf");
    return finish();
  }
  result.feasible = true;
  result.schedule = std::move(assigned.schedule);
  if (options.prune_empty_calibrations) {
    result.schedule.prune_empty_calibrations(instance);
  }
  result.schedule.normalize();
  trace->set("calibrations.total",
             static_cast<std::int64_t>(result.schedule.num_calibrations()));
  return finish();
}

LongWindowResult solve_long_window_speed(const Instance& instance,
                                         const LongWindowOptions& options) {
  TraceContext local_trace("long_window");
  TraceContext* trace = options.trace ? options.trace : &local_trace;
  LongWindowOptions traced_options = options;
  traced_options.trace = trace;
  LongWindowResult result = solve_long_window(instance, traced_options);
  if (!result.feasible) return result;
  if (instance.empty()) return result;
  // Group size c such that c * m covers the Theorem-12 machine allotment.
  TraceSpan transform_span(trace, "speed_transform");
  const int c = (result.schedule.machines + instance.machines - 1) /
                instance.machines;
  auto transformed = speed_transform(instance, result.schedule, c);
  transform_span.stop();
  if (!transformed) {
    fail_result(result, SolveStatus::kNumericalFailure,
                "speed transform failed (contradicts Lemma 13)",
                "speed_transform");
    result.telemetry = LongWindowTelemetry::from_trace(*trace);
    return result;
  }
  result.schedule = std::move(*transformed);
  result.schedule.normalize();
  trace->set("speed", result.schedule.speed);
  trace->set("calibrations.total",
             static_cast<std::int64_t>(result.schedule.num_calibrations()));
  result.telemetry = LongWindowTelemetry::from_trace(*trace);
  return result;
}

}  // namespace calisched

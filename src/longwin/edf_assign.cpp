#include "longwin/edf_assign.hpp"

#include <algorithm>
#include <cassert>

namespace calisched {

EdfAssignResult edf_assign_jobs(const Instance& instance, const Schedule& calendar,
                                bool mirror) {
  assert(calendar.time_denominator == 1 && calendar.speed == 1);
  EdfAssignResult result;
  Schedule& schedule = result.schedule;
  schedule = Schedule::empty_like(instance,
                                  mirror ? calendar.machines * 2 : calendar.machines);

  // Mirror the calendar (Lemma 9): calibration (i, t) also exists at
  // (i + M, t).
  schedule.calibrations.reserve(calendar.calibrations.size() * (mirror ? 2 : 1));
  for (const Calibration& cal : calendar.calibrations) {
    schedule.calibrations.push_back(cal);
    if (mirror) {
      schedule.calibrations.push_back(
          {cal.machine + calendar.machines, cal.start});
    }
  }

  // Scan order: nondecreasing start time; ties broken by machine so the
  // original copy precedes its mirror.
  std::vector<Calibration> scan = schedule.calibrations;
  std::sort(scan.begin(), scan.end(),
            [](const Calibration& a, const Calibration& b) {
              return a.start != b.start ? a.start < b.start
                                        : a.machine < b.machine;
            });

  std::vector<bool> done(instance.size(), false);
  std::size_t remaining = instance.size();
  for (const Calibration& cal : scan) {
    if (remaining == 0) break;
    const Time t = cal.start;
    Time used = 0;
    while (true) {
      // Earliest-deadline unscheduled job obeying the TISE constraint,
      // ties broken by job id (the paper: "ties broken arbitrarily").
      std::size_t chosen = instance.size();
      for (std::size_t j = 0; j < instance.size(); ++j) {
        if (done[j]) continue;
        const Job& job = instance.jobs[j];
        if (job.release > t || t > job.deadline - instance.T) continue;
        if (chosen == instance.size() ||
            job.deadline < instance.jobs[chosen].deadline ||
            (job.deadline == instance.jobs[chosen].deadline &&
             job.id < instance.jobs[chosen].id)) {
          chosen = j;
        }
      }
      if (chosen == instance.size()) break;  // j == NULL
      const Job& job = instance.jobs[chosen];
      if (job.proc + used > instance.T) break;  // calibration is full
      schedule.jobs.push_back({job.id, cal.machine, t + used});
      used += job.proc;
      done[chosen] = true;
      --remaining;
    }
  }

  for (std::size_t j = 0; j < instance.size(); ++j) {
    if (!done[j]) result.unassigned.push_back(instance.jobs[j].id);
  }
  return result;
}

}  // namespace calisched

// Lemmas 8-10: fractional EDF and its integerization — the alternative
// job-assignment backend the paper analyzes.
//
// * fractional_edf (Lemma 8): scan the rounded calendar in nondecreasing
//   start order; for each calibration repeatedly assign as much as
//   possible of the earliest-deadline unfinished TISE-eligible job, until
//   the calibration's T units of work are exhausted. If any fractional
//   TISE assignment exists on the calendar, this one is complete.
// * integerize_fractional_edf (Lemma 9): mirror the calendar; every job
//   with a single full piece stays put; a job split across calibrations is
//   placed whole on the mirror of the calibration holding its first
//   (partial) piece. At most one job lands on each mirror calibration, so
//   the result is a feasible integral schedule on twice the machines.
//
// The paper keeps Algorithm 2 as the "more natural" algorithm and proves
// (Lemma 10) it is at least as good; the test suite checks that relation
// empirically and the ablation bench compares the two backends.
#pragma once

#include <vector>

#include "core/schedule.hpp"

namespace calisched {

struct FractionalPiece {
  JobId job = -1;
  double fraction = 0.0;  ///< in (0, 1]
};

/// Per-calibration pieces, parallel to `calendar_order` (the calendar's
/// calibrations sorted by (start, machine)).
struct FractionalEdfResult {
  std::vector<Calibration> calendar_order;
  std::vector<std::vector<FractionalPiece>> pieces;
  bool complete = false;  ///< every job fully assigned
};

[[nodiscard]] FractionalEdfResult fractional_edf(const Instance& instance,
                                                 const Schedule& calendar,
                                                 double eps = 1e-9);

struct IntegerizeResult {
  Schedule schedule;               ///< on 2 * calendar.machines machines
  std::vector<JobId> unassigned;   ///< empty when the input was complete
  std::size_t mirrored_jobs = 0;   ///< jobs moved whole to mirror calibrations
};

[[nodiscard]] IntegerizeResult integerize_fractional_edf(
    const Instance& instance, const Schedule& calendar,
    const FractionalEdfResult& fractional, double eps = 1e-9);

}  // namespace calisched

// The complete long-window algorithm of Section 3 (Theorem 12), and its
// speed-augmented variant (Theorem 14).
//
// Pipeline for an all-long instance on m machines:
//   1. m' = 3m                        (Lemma 2: a TISE solution on 3m
//                                      machines costs <= 3x the ISE optimum)
//   2. solve the TISE LP relaxation   (fractional calibrations <= C*_TISE)
//   3. Algorithm 1 rounding           (<= 2x LP calibrations, 3m' machines)
//   4. mirror + Algorithm 2 EDF       (integral jobs, 6m' = 18m machines)
// Total: <= 18m machines, <= 12 C* calibrations, no speed augmentation.
//
// Theorem 14 variant: feed the Theorem-12 schedule through the Lemma 13
// transform with group size c = schedule.machines / m, yielding m machines
// at speed 2c (= 36 when the pipeline used all 18m machines).
#pragma once

#include <string>

#include "core/schedule.hpp"
#include "longwin/tise_lp.hpp"
#include "runtime/limits.hpp"
#include "runtime/status.hpp"

namespace calisched {

/// Compatibility view over the pipeline's TraceContext (the pipeline
/// records everything there first; this struct is derived from it, so the
/// two can never disagree).
struct LongWindowTelemetry {
  int m_prime = 0;               ///< 3m
  int machines_allotted = 0;     ///< 18m
  double lp_objective = 0.0;     ///< fractional calibrations (lower-bounds C*_TISE on m')
  std::int64_t lp_pivots = 0;
  int lp_rows = 0;
  int lp_columns = 0;
  std::size_t rounded_calibrations = 0;  ///< after Algorithm 1 (before mirroring)
  std::size_t total_calibrations = 0;    ///< in the final schedule

  [[nodiscard]] static LongWindowTelemetry from_trace(const TraceContext& trace);
};

struct LongWindowResult {
  bool feasible = false;         ///< false: no fractional TISE schedule on 3m
                                 ///< machines exists (or a pipeline guarantee
                                 ///< failed; `status`/`error` distinguish)
  /// Structured outcome: kInfeasible (no fractional TISE schedule),
  /// kDeadlineExceeded / kCancelled (RunLimits fired inside the LP),
  /// kNumericalFailure (a pipeline guarantee was violated), kLimitExceeded
  /// (LP pivot cap). `error` is format_failure() of this status.
  SolveStatus status = SolveStatus::kOk;
  Schedule schedule;             ///< valid when feasible; verify_tise-clean
  LongWindowTelemetry telemetry;
  std::string error;
};

struct LongWindowOptions {
  SimplexOptions lp;
  /// Deadline + cancellation, polled inside the simplex pivot loop (the
  /// pipeline's only superpolynomial-in-practice stage). Copied over
  /// `lp.limits` before solving.
  RunLimits limits;
  /// Optional telemetry sink: stage spans (trim/lp/rounding/edf), LP shape
  /// and pivot counters, and calibration totals land here; the simplex
  /// itself reports into a "simplex" child context. Not owned.
  TraceContext* trace = nullptr;
  /// Machine multiplier for the TISE relaxation; the paper's analysis uses
  /// 3 (Lemma 2). Exposed for the ablation benchmark.
  int trim_multiplier = 3;
  /// Try Algorithm 2 on the unmirrored calendar first and only fall back
  /// to the mirrored (Lemma 9) run if some job is left unassigned. Halves
  /// the calibration count whenever plain EDF already completes; the
  /// fallback preserves the Theorem 12 guarantee. Off by default: the
  /// paper's algorithm always mirrors.
  bool adaptive_mirror = false;
  /// Drop calibrations that host no job from the final schedule. Off by
  /// default (the analysis charges for them); the ablation bench measures
  /// the saving.
  bool prune_empty_calibrations = false;
};

/// Theorem 12. `instance.machines` is the ISE machine count m the result is
/// compared against; every job in `instance` must be long (Definition 1).
[[nodiscard]] LongWindowResult solve_long_window(const Instance& instance,
                                                 const LongWindowOptions& options = {});

/// Theorem 14: Theorem 12 followed by the Lemma 13 machines-to-speed
/// transform down to `instance.machines` machines. The schedule in the
/// result has speed = 2 * ceil(18m / m) = 36 and matching denominator.
[[nodiscard]] LongWindowResult solve_long_window_speed(
    const Instance& instance, const LongWindowOptions& options = {});

}  // namespace calisched

// Lemma 2: any feasible ISE schedule of long-window jobs on m machines can
// be rewritten as a feasible *TISE* schedule on 3m machines with 3x the
// calibrations (machines i', i+, i- with calibrations at t, t+T, t-T, and
// each job kept in place, delayed by T, or advanced by T).
//
// The transformation is constructive and is exercised directly by the
// Figure-1 reproduction and by the E5 trim-gap experiment.
#pragma once

#include <optional>

#include "core/schedule.hpp"

namespace calisched {

/// Transforms `ise` (a feasible denominator-1, speed-1 ISE schedule of the
/// all-long instance) into a TISE schedule on 3 * ise.machines machines.
/// Returns nullopt if some job has no containing calibration (i.e. `ise`
/// was not feasible); otherwise the result satisfies verify_tise whenever
/// the input satisfied verify_ise (tests check both).
[[nodiscard]] std::optional<Schedule> trim_transform(const Instance& instance,
                                                     const Schedule& ise);

}  // namespace calisched

#include "longwin/fractional_witness.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace calisched {

double WitnessCalibration::total_work(const Instance& instance) const {
  double total = 0.0;
  for (const auto& [id, fraction] : fractions) {
    total += fraction * static_cast<double>(instance.job_by_id(id).proc);
  }
  return total;
}

FractionalWitness run_fractional_witness(const Instance& instance,
                                         const TiseFractional& fractional,
                                         double eps) {
  assert(fractional.status == LpStatus::kOptimal);
  FractionalWitness witness;
  const std::size_t n = instance.size();
  const std::size_t num_points = fractional.points.size();

  // Dense mutable copy of X (job-major) — Algorithm 3 consumes it in place.
  std::vector<std::vector<double>> x(n, std::vector<double>(num_points, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    for (const auto& [point, value] : fractional.assignment[j]) {
      x[j][static_cast<std::size_t>(point)] = value;
    }
  }

  std::vector<double> y(n, 0.0);            // carried job fractions
  std::vector<double> scheduled(n, 0.0);    // cumulative scheduled fraction
  double carryover = 0.0;                   // carried calibration fraction
  double worst_y_excess = -std::numeric_limits<double>::infinity();

  for (std::size_t p = 0; p < num_points; ++p) {
    const Time t = fractional.points[p];
    double c_t = fractional.calibration_mass[p];
    while (carryover + c_t >= 0.5 - eps) {
      WitnessCalibration calibration;
      calibration.start = t;
      // Take exactly the part of C_t that completes the half unit.
      const double frac =
          c_t > eps ? std::clamp((0.5 - carryover) / c_t, 0.0, 1.0) : 0.0;
      carryover += frac * c_t;
      for (std::size_t j = 0; j < n; ++j) {
        y[j] += frac * x[j][p];
        x[j][p] -= frac * x[j][p];
        const Job& job = instance.jobs[j];
        if (job.release <= t && t <= job.deadline - instance.T) {
          // Lemma-5 checkpoint: at a scheduling event y_j <= carryover.
          worst_y_excess = std::max(worst_y_excess, y[j] - carryover);
          if (y[j] > eps) {
            const double fraction = std::min(1.0, 2.0 * y[j]);
            calibration.fractions.emplace_back(job.id, fraction);
            scheduled[j] += fraction;
          }
          y[j] = 0.0;
        }
      }
      carryover = 0.0;
      c_t -= frac * c_t;
      witness.calibrations.push_back(std::move(calibration));
    }
    carryover += c_t;
    for (std::size_t j = 0; j < n; ++j) y[j] += x[j][p];
  }

  // --- telemetry ------------------------------------------------------------
  // Jobs with leftover carried fraction were delayed past their trimmed
  // window and the remainder discarded (Figure 3's "job 2"); Corollary 6
  // shows the doubling already over-covered them.
  for (std::size_t j = 0; j < n; ++j) {
    if (y[j] > eps) ++witness.telemetry.discarded_resets;
  }
  witness.telemetry.max_y_minus_carryover =
      witness.calibrations.empty() ? 0.0 : worst_y_excess;
  double min_coverage = n == 0 ? 1.0 : std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < n; ++j) {
    min_coverage = std::min(min_coverage, scheduled[j]);
  }
  witness.telemetry.min_job_coverage = min_coverage;
  double max_work = 0.0;
  for (const WitnessCalibration& calibration : witness.calibrations) {
    max_work = std::max(max_work, calibration.total_work(instance));
  }
  witness.telemetry.max_calibration_work = max_work;
  return witness;
}

}  // namespace calisched

// Algorithm 2: nonpreemptive earliest-deadline-first assignment of long
// jobs to a rounded calibration schedule.
//
// The calibration schedule is first mirrored onto a second, disjoint set of
// machines (Lemma 9's doubling), then calibrations are scanned in
// nondecreasing start order; each is filled greedily with the
// earliest-deadline unscheduled job that obeys the TISE constraint, until
// the next such job no longer fits (the paper's while-loop stops at the
// first earliest-deadline job that exceeds the remaining room).
#pragma once

#include <vector>

#include "core/schedule.hpp"

namespace calisched {

struct EdfAssignResult {
  Schedule schedule;               ///< calibrations (mirrored) + job placements
  std::vector<JobId> unassigned;   ///< empty when the pipeline guarantees hold
};

/// `calendar` holds rounded calibrations on `calendar.machines` machines
/// (jobs, if any, are ignored). With `mirror` (the paper's Algorithm 2)
/// the result uses 2 * calendar.machines machines: [0, M) the original
/// calendar, [M, 2M) the mirror. Without it, EDF runs on the bare
/// calendar — Lemma 8/9 no longer guarantee completeness, so callers must
/// check `unassigned` (the adaptive-mirror optimization falls back to the
/// mirrored run when it is non-empty).
[[nodiscard]] EdfAssignResult edf_assign_jobs(const Instance& instance,
                                              const Schedule& calendar,
                                              bool mirror = true);

}  // namespace calisched

#include "longwin/tise_lp.hpp"

#include <cassert>
#include <string>

namespace calisched {

TiseLpModel build_tise_lp(const Instance& instance, int m_prime) {
  assert(m_prime >= 1);
  TiseLpModel built;
  built.points = tise_calibration_points(instance);
  const auto num_points = static_cast<int>(built.points.size());
  LpModel& lp = built.model;

  // --- variables -----------------------------------------------------------
  built.calibration_column.reserve(built.points.size());
  for (int p = 0; p < num_points; ++p) {
    built.calibration_column.push_back(
        lp.add_variable("C@" + std::to_string(built.points[p]), /*cost=*/1.0));
  }
  built.assignment_columns.resize(instance.size());
  for (std::size_t j = 0; j < instance.size(); ++j) {
    const Job& job = instance.jobs[j];
    for (int p = 0; p < num_points; ++p) {
      const Time t = built.points[p];
      if (job.release <= t && t <= job.deadline - instance.T) {
        const int column = lp.add_variable(
            "X@j" + std::to_string(job.id) + "t" + std::to_string(t),
            /*cost=*/0.0);
        built.assignment_columns[j].emplace_back(p, column);
      }
    }
    // A long job always has at least one feasible point (its own release).
    assert(!built.assignment_columns[j].empty());
  }

  // --- (1) sliding-window machine capacity ---------------------------------
  for (int p = 0; p < num_points; ++p) {
    const Time window_start = built.points[p];
    const int row = lp.add_row("cap@" + std::to_string(window_start),
                               RowSense::kLe, static_cast<double>(m_prime));
    for (int q = p; q < num_points && built.points[q] < window_start + instance.T;
         ++q) {
      lp.add_coefficient(row, built.calibration_column[q], 1.0);
    }
  }

  // --- (3) per-point work capacity (filled below alongside (2)) ------------
  std::vector<int> work_rows(static_cast<std::size_t>(num_points));
  for (int p = 0; p < num_points; ++p) {
    const int row = lp.add_row("work@" + std::to_string(built.points[p]),
                               RowSense::kLe, 0.0);
    lp.add_coefficient(row, built.calibration_column[p],
                       -static_cast<double>(instance.T));
    work_rows[static_cast<std::size_t>(p)] = row;
  }

  // --- (2) X_jt <= C_t and (4) coverage ------------------------------------
  for (std::size_t j = 0; j < instance.size(); ++j) {
    const Job& job = instance.jobs[j];
    const int coverage_row =
        lp.add_row("cover@j" + std::to_string(job.id), RowSense::kEq, 1.0);
    for (const auto& [point, column] : built.assignment_columns[j]) {
      const int pair_row = lp.add_row(
          "pair@j" + std::to_string(job.id) + "t" +
              std::to_string(built.points[point]),
          RowSense::kLe, 0.0);
      lp.add_coefficient(pair_row, column, 1.0);
      lp.add_coefficient(pair_row, built.calibration_column[point], -1.0);
      lp.add_coefficient(work_rows[static_cast<std::size_t>(point)], column,
                         static_cast<double>(job.proc));
      lp.add_coefficient(coverage_row, column, 1.0);
    }
  }
  return built;
}

TiseFractional solve_tise_lp(const Instance& instance, int m_prime,
                             const SimplexOptions& options) {
  TiseFractional result;
  if (instance.empty()) {
    result.status = LpStatus::kOptimal;
    return result;
  }
  TiseLpModel built = build_tise_lp(instance, m_prime);
  const LpSolution solution = solve_lp(built.model, options);
  result.status = solution.status;
  result.points = std::move(built.points);
  result.pivots = solution.phase1_pivots + solution.phase2_pivots;
  result.lp_rows = built.model.num_rows();
  result.lp_columns = built.model.num_variables();
  if (solution.status != LpStatus::kOptimal) return result;
  result.objective = solution.objective;
  result.calibration_mass.reserve(result.points.size());
  for (const int column : built.calibration_column) {
    result.calibration_mass.push_back(
        solution.values[static_cast<std::size_t>(column)]);
  }
  result.assignment.resize(instance.size());
  constexpr double kKeep = 1e-9;
  for (std::size_t j = 0; j < instance.size(); ++j) {
    for (const auto& [point, column] : built.assignment_columns[j]) {
      const double value = solution.values[static_cast<std::size_t>(column)];
      if (value > kKeep) result.assignment[j].emplace_back(point, value);
    }
  }
  return result;
}

}  // namespace calisched

// Lemma 3 as an executable transformation.
//
// The lemma's exchange argument: in a TISE schedule, each calibration can
// be advanced (with its jobs) until its start hits a job release time or
// the end of the previous calibration on its machine — so some optimal
// solution lives on the grid {r_j + kT}. This function performs exactly
// that normalization on a concrete schedule: feasibility, the calibration
// count, and the machine count are all preserved, and every resulting
// start lies on the canonical grid.
//
// Precondition: a verifier-clean TISE schedule (denominator 1, speed 1)
// with no empty calibrations (prune_empty_calibrations first) — an empty
// calibration before every release has no anchor to advance to.
#pragma once

#include "core/schedule.hpp"

namespace calisched {

[[nodiscard]] Schedule normalize_to_grid(const Instance& instance,
                                         const Schedule& tise);

}  // namespace calisched

#include "longwin/trim_transform.hpp"

#include <cassert>

namespace calisched {

std::optional<Schedule> trim_transform(const Instance& instance,
                                       const Schedule& ise) {
  assert(ise.time_denominator == 1 && ise.speed == 1);
  const Time T = instance.T;
  Schedule tise = Schedule::empty_like(instance, ise.machines * 3);

  // Machine i maps to i' = 3i, i+ = 3i+1, i- = 3i+2.
  const auto kept = [](int i) { return 3 * i; };
  const auto delayed = [](int i) { return 3 * i + 1; };
  const auto advanced = [](int i) { return 3 * i + 2; };

  tise.calibrations.reserve(ise.calibrations.size() * 3);
  for (const Calibration& cal : ise.calibrations) {
    tise.calibrations.push_back({kept(cal.machine), cal.start});
    tise.calibrations.push_back({delayed(cal.machine), cal.start + T});
    tise.calibrations.push_back({advanced(cal.machine), cal.start - T});
  }

  tise.jobs.reserve(ise.jobs.size());
  for (const ScheduledJob& sj : ise.jobs) {
    const Job& job = instance.job_by_id(sj.job);
    // Locate the calibration containing the job in the ISE schedule.
    const Calibration* cover = nullptr;
    for (const Calibration& cal : ise.calibrations) {
      if (cal.machine == sj.machine && cal.start <= sj.start &&
          sj.start + job.proc <= cal.start + T) {
        cover = &cal;
        break;
      }
    }
    if (cover == nullptr) return std::nullopt;  // input was not feasible
    const Time t_j = cover->start;
    if (job.release <= t_j && t_j <= job.deadline - T) {
      tise.jobs.push_back({job.id, kept(sj.machine), sj.start});
    } else if (job.release > t_j) {
      tise.jobs.push_back({job.id, delayed(sj.machine), sj.start + T});
    } else {
      // d_j < t_j + T: advance. (A long job cannot need both fixes: that
      // would force its window inside (t_j, t_j + T), which is shorter
      // than 2T.)
      tise.jobs.push_back({job.id, advanced(sj.machine), sj.start - T});
    }
  }
  return tise;
}

}  // namespace calisched

// Algorithm 1: greedy half-unit rounding of fractional calibrations, plus
// the round-robin machine assignment of Lemma 4.
#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "longwin/tise_lp.hpp"

namespace calisched {

/// Scans the fractional calibration profile in time order, accumulating
/// mass; every time the running total crosses the next multiple of 1/2,
/// emits one integer calibration at the current point (Algorithm 1 /
/// Figure 2). Returns start times, nondecreasing, possibly repeated.
/// The result has exactly floor(2 * total_mass + eps) calibrations, i.e.
/// at most twice the LP objective (Lemma 7).
[[nodiscard]] std::vector<Time> round_calibrations(
    const std::vector<Time>& points, const std::vector<double>& calibration_mass,
    double eps = 1e-7);

/// Lemma 4: distributes time-sorted calibration start times round-robin
/// over `machines` machines. With machines >= 3m' and the LP capacity
/// constraint, the resulting per-machine calibrations never overlap (the
/// verifier re-checks this in tests).
[[nodiscard]] Schedule assign_round_robin(const Instance& instance,
                                          const std::vector<Time>& starts,
                                          int machines);

}  // namespace calisched

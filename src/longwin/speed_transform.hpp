// Lemma 13 / Theorem 14: trading machine augmentation for speed.
//
// Given a TISE schedule on c*m speed-1 machines with C calibrations, build
// an ISE schedule on m speed-2c machines with at most C calibrations:
// group the source machines into groups of c; give each group one target
// machine whose calibrations cover every calibrated source timestep; map
// each source calibration into a dedicated T/(2c)-length slot of a target
// calibration (first- or second-half slot i for source machine i), scaling
// job processing times by 1/(2c).
//
// All arithmetic is exact: the result uses time_denominator = speed = 2c,
// so one tick is 1/(2c) time units and a job of processing time p occupies
// exactly p ticks, while slots have length T ticks.
#pragma once

#include <optional>

#include "core/schedule.hpp"

namespace calisched {

/// Transforms `tise` (a feasible speed-1, denominator-1 TISE schedule) into
/// a speed-2c schedule on ceil(tise.machines / c) machines. Returns nullopt
/// only if some source calibration cannot be slotted or some job lies in no
/// calibration — both impossible for verifier-clean TISE inputs (Lemma 13);
/// tests assert this.
[[nodiscard]] std::optional<Schedule> speed_transform(const Instance& instance,
                                                      const Schedule& tise,
                                                      int group_size);

}  // namespace calisched

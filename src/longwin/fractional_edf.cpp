#include "longwin/fractional_edf.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace calisched {

FractionalEdfResult fractional_edf(const Instance& instance,
                                   const Schedule& calendar, double eps) {
  assert(calendar.time_denominator == 1 && calendar.speed == 1);
  FractionalEdfResult result;
  result.calendar_order = calendar.calibrations;
  std::sort(result.calendar_order.begin(), result.calendar_order.end(),
            [](const Calibration& a, const Calibration& b) {
              return a.start != b.start ? a.start < b.start
                                        : a.machine < b.machine;
            });
  result.pieces.resize(result.calendar_order.size());

  std::vector<double> remaining(instance.size(), 1.0);
  for (std::size_t c = 0; c < result.calendar_order.size(); ++c) {
    const Time t = result.calendar_order[c].start;
    double capacity = static_cast<double>(instance.T);
    while (capacity > eps) {
      // Earliest-deadline unfinished TISE-eligible job ("ties broken by
      // job number", as the fractional-EDF definition specifies).
      std::size_t chosen = instance.size();
      for (std::size_t j = 0; j < instance.size(); ++j) {
        if (remaining[j] <= eps) continue;
        const Job& job = instance.jobs[j];
        if (job.release > t || t > job.deadline - instance.T) continue;
        if (chosen == instance.size() ||
            job.deadline < instance.jobs[chosen].deadline ||
            (job.deadline == instance.jobs[chosen].deadline &&
             job.id < instance.jobs[chosen].id)) {
          chosen = j;
        }
      }
      if (chosen == instance.size()) break;
      const Job& job = instance.jobs[chosen];
      const double fraction =
          std::min(remaining[chosen], capacity / static_cast<double>(job.proc));
      result.pieces[c].push_back({job.id, fraction});
      remaining[chosen] -= fraction;
      capacity -= fraction * static_cast<double>(job.proc);
    }
  }
  result.complete = std::all_of(remaining.begin(), remaining.end(),
                                [&](double r) { return r <= eps; });
  return result;
}

IntegerizeResult integerize_fractional_edf(const Instance& instance,
                                           const Schedule& calendar,
                                           const FractionalEdfResult& fractional,
                                           double eps) {
  IntegerizeResult result;
  Schedule& schedule = result.schedule;
  schedule = Schedule::empty_like(instance, calendar.machines * 2);
  schedule.calibrations.reserve(fractional.calendar_order.size() * 2);
  for (const Calibration& cal : fractional.calendar_order) {
    schedule.calibrations.push_back(cal);
    schedule.calibrations.push_back({cal.machine + calendar.machines, cal.start});
  }

  // Classify each job: single full piece -> integral in that calibration;
  // split across pieces -> whole job on the mirror of its first piece's
  // calibration (Lemma 9). Jobs with no piece at all are reported.
  struct Placement {
    std::size_t calendar_index = 0;
    bool mirrored = false;
    bool found = false;
  };
  std::map<JobId, Placement> placements;
  std::map<JobId, int> piece_counts;
  for (const auto& pieces : fractional.pieces) {
    for (const FractionalPiece& piece : pieces) ++piece_counts[piece.job];
  }
  for (std::size_t c = 0; c < fractional.pieces.size(); ++c) {
    for (const FractionalPiece& piece : fractional.pieces[c]) {
      auto& placement = placements[piece.job];
      if (placement.found) continue;  // first piece decides
      placement.found = true;
      placement.calendar_index = c;
      placement.mirrored =
          piece_counts[piece.job] > 1 || piece.fraction < 1.0 - eps;
      if (placement.mirrored) ++result.mirrored_jobs;
    }
  }

  // Pack jobs into calibrations: per calibration, jobs in piece order with
  // cumulative offsets (mirror calibrations receive at most one job each —
  // Lemma 9's counting argument; asserted here).
  std::vector<Time> used(fractional.calendar_order.size(), 0);
  std::vector<bool> mirror_taken(fractional.calendar_order.size(), false);
  for (std::size_t c = 0; c < fractional.pieces.size(); ++c) {
    const Calibration& cal = fractional.calendar_order[c];
    for (const FractionalPiece& piece : fractional.pieces[c]) {
      const auto it = placements.find(piece.job);
      if (it == placements.end() || !it->second.found) continue;
      const Placement& placement = it->second;
      if (placement.calendar_index != c) continue;  // later piece of a job
      const Job& job = instance.job_by_id(piece.job);
      if (placement.mirrored) {
        assert(!mirror_taken[c] && "Lemma 9: one mirrored job per calibration");
        mirror_taken[c] = true;
        schedule.jobs.push_back(
            {job.id, cal.machine + calendar.machines, cal.start});
      } else {
        assert(used[c] + job.proc <= instance.T);
        schedule.jobs.push_back({job.id, cal.machine, cal.start + used[c]});
        used[c] += job.proc;
      }
    }
  }

  for (const Job& job : instance.jobs) {
    if (!placements.count(job.id) || !placements[job.id].found) {
      result.unassigned.push_back(job.id);
    }
  }
  schedule.normalize();
  return result;
}

}  // namespace calisched

#include "longwin/speed_transform.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace calisched {
namespace {

struct SourceCalibration {
  Calibration cal;
  int lane = 0;            ///< machine index within its group, in [0, c)
  bool mapped = false;
  Time slot_start_ticks = 0;  ///< start of the assigned slot, in target ticks
};

}  // namespace

std::optional<Schedule> speed_transform(const Instance& instance,
                                        const Schedule& tise, int group_size) {
  assert(tise.time_denominator == 1 && tise.speed == 1);
  assert(group_size >= 1);
  const Time T = instance.T;
  const int c = group_size;
  const std::int64_t D = 2 * static_cast<std::int64_t>(c);
  const int num_groups = (tise.machines + c - 1) / c;

  Schedule target;
  target.machines = std::max(1, num_groups);
  target.T = T;
  target.time_denominator = D;
  target.speed = D;

  // Bucket source calibrations by group.
  std::vector<std::vector<SourceCalibration>> groups(
      static_cast<std::size_t>(num_groups));
  for (const Calibration& cal : tise.calibrations) {
    SourceCalibration source;
    source.cal = cal;
    source.lane = cal.machine % c;
    groups[static_cast<std::size_t>(cal.machine / c)].push_back(source);
  }
  // Bucket jobs by (machine); looked up per calibration below.
  std::vector<ScheduledJob> jobs_sorted = tise.jobs;
  std::sort(jobs_sorted.begin(), jobs_sorted.end(),
            [](const ScheduledJob& a, const ScheduledJob& b) {
              return a.machine != b.machine ? a.machine < b.machine
                                            : a.start < b.start;
            });

  for (int g = 0; g < num_groups; ++g) {
    auto& sources = groups[static_cast<std::size_t>(g)];
    if (sources.empty()) continue;
    std::sort(sources.begin(), sources.end(),
              [](const SourceCalibration& a, const SourceCalibration& b) {
                return a.cal.start < b.cal.start;
              });

    // --- target calibration times for this group (real units) -------------
    std::vector<Time> targets;
    Time t = sources.front().cal.start;
    for (;;) {
      const bool covered = std::any_of(
          sources.begin(), sources.end(), [&](const SourceCalibration& s) {
            return s.cal.start <= t && t < s.cal.start + T;
          });
      if (covered) {
        targets.push_back(t);
        t += T;
        continue;
      }
      Time next = 0;
      bool found = false;
      for (const SourceCalibration& s : sources) {
        if (s.cal.start > t && (!found || s.cal.start < next)) {
          next = s.cal.start;
          found = true;
        }
      }
      if (!found) break;
      t = next;
    }
    for (const Time start : targets) {
      target.calibrations.push_back({g, start * D});
    }

    // --- slot each source calibration --------------------------------------
    // In ticks: target calibration [tau*D, tau*D + T*D); halves have length
    // c*T ticks; lane slots have length T ticks.
    for (const Time tau : targets) {
      const Time tau_ticks = tau * D;
      const Time half_ticks = static_cast<Time>(c) * T;
      for (SourceCalibration& s : sources) {
        if (s.mapped) continue;
        const Time s_begin = s.cal.start * D;
        const Time s_end = (s.cal.start + T) * D;
        if (s_begin <= tau_ticks && tau_ticks + half_ticks <= s_end) {
          s.mapped = true;
          s.slot_start_ticks = tau_ticks + static_cast<Time>(s.lane) * T;
        } else if (s_begin <= tau_ticks + half_ticks &&
                   tau_ticks + 2 * half_ticks <= s_end) {
          s.mapped = true;
          s.slot_start_ticks =
              tau_ticks + half_ticks + static_cast<Time>(s.lane) * T;
        }
      }
    }
    if (std::any_of(sources.begin(), sources.end(),
                    [](const SourceCalibration& s) { return !s.mapped; })) {
      return std::nullopt;  // contradicts Lemma 13 for feasible TISE inputs
    }

    // --- pack each source calibration's jobs into its slot ------------------
    for (const SourceCalibration& s : sources) {
      Time cursor = s.slot_start_ticks;
      for (const ScheduledJob& sj : jobs_sorted) {
        if (sj.machine != s.cal.machine) continue;
        const Job& job = instance.job_by_id(sj.job);
        if (sj.start < s.cal.start || sj.start + job.proc > s.cal.start + T) {
          continue;  // belongs to a different calibration on this machine
        }
        target.jobs.push_back({job.id, g, cursor});
        cursor += job.proc;  // duration in ticks is exactly p_j
      }
    }
  }

  if (target.jobs.size() != tise.jobs.size()) return std::nullopt;
  return target;
}

}  // namespace calisched

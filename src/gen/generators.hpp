// Randomized instance families for tests and experiments.
//
// All generators are deterministic in their seed and produce instances
// that pass Instance::validate(). Families mirror the regimes the paper's
// analysis distinguishes: long windows (Section 3), short windows
// (Section 4), mixtures (Theorem 1), unit jobs (prior work, Bender et
// al.), and the Partition-shaped adversarial construction from the
// NP-hardness remark in Section 1.
#pragma once

#include <cstdint>

#include "core/instance.hpp"

namespace calisched {

struct GenParams {
  std::uint64_t seed = 1;
  int n = 10;          ///< number of jobs
  Time T = 10;         ///< calibration length
  int machines = 2;
  Time horizon = 100;  ///< release times drawn so windows fit in [0, horizon)
  Time min_proc = 1;   ///< clamped to [1, T]
  Time max_proc = 10;  ///< clamped to [min_proc, T]
};

/// All windows in [min_window_factor*T, max_window_factor*T], factors >= 2
/// (Definition 1 long).
[[nodiscard]] Instance generate_long_window(const GenParams& params,
                                            Time min_window_factor = 2,
                                            Time max_window_factor = 6);

/// All windows < 2T (Definition 1 short); window length drawn uniformly in
/// [p_j + slack_min, 2T - 1].
[[nodiscard]] Instance generate_short_window(const GenParams& params,
                                             Time slack_min = 0);

/// Each job long with probability `long_fraction`, otherwise short.
[[nodiscard]] Instance generate_mixed(const GenParams& params,
                                      double long_fraction = 0.5);

/// Unit jobs (p_j = 1) with window length uniform in [1, max_window].
[[nodiscard]] Instance generate_unit(const GenParams& params, Time max_window = 8);

/// The Section-1 NP-hardness shape: machines = 2, r_j = 0, d_j = T, and
/// processing times that admit a perfect 2-partition with total work 2T.
/// `pieces` is the number of jobs per machine side (n = 2 * pieces).
[[nodiscard]] Instance generate_partition_adversarial(std::uint64_t seed,
                                                      int pieces, Time piece_max);

/// Poisson-ish bursts: `bursts` clusters of releases, each burst tight in
/// time; exercises the case where calibration sharing matters most.
[[nodiscard]] Instance generate_clustered(const GenParams& params, int bursts,
                                          Time burst_span, bool long_windows);

/// Calibration-type-table shapes for the generalized cost model (Angel et
/// al.). Each regime stresses a different cost trade-off:
///   kCheapShort    — a cheap short type against a pricier double-length
///                    type; sharing must pay for the upgrade;
///   kExpensiveLong — a unit-cost short type against a superlinearly
///                    priced triple-length type; long is rarely worth it;
///   kDelayed       — the longer type activates late, so its nominal
///                    capacity shrinks near deadlines.
enum class CalibTableRegime { kCheapShort, kExpensiveLong, kDelayed };

/// The two-type table for `regime`, scaled to `base_length` (>= 2).
[[nodiscard]] CalibrationModel calib_table(CalibTableRegime regime,
                                           Time base_length);

/// Jobs drawn as in generate_mixed but attached to calib_table(regime,
/// params.T): processing times fit the base type, windows range from tight
/// (lone job, cheap type suffices) to several spans wide (clusters where a
/// longer calibration amortizes its cost).
[[nodiscard]] Instance generate_calib_cost(const GenParams& params,
                                           CalibTableRegime regime);

// --- Arrival-trace families -----------------------------------------------
//
// Shapes tuned for the online layer: the release time doubles as the
// arrival time (ArrivalTrace::from_instance), so these control the
// *arrival process* where the families above control window structure.
// They remain plain instances — the offline solvers run on them unchanged,
// which is exactly what the competitive-ratio bench needs.

/// Poisson-like stream: integer exponential inter-arrival gaps with mean
/// `mean_gap` (<= 0 derives horizon / n), windows with slack uniform in
/// [0, 2T]. The steady-state case for the subscribe service.
[[nodiscard]] Instance generate_online_poisson(const GenParams& params,
                                               double mean_gap = 0.0);

/// `bursts` waves of simultaneous arrivals with short windows (slack < T).
/// Many urgent jobs reveal at one instant, which is what drives the online
/// heuristic's doubling escalation.
[[nodiscard]] Instance generate_online_burst(const GenParams& params,
                                             int bursts = 4);

/// Adversarial drip: one job at a time, gaps uniform in [1, max(1, T/2)],
/// zero slack (d_j = r_j + p_j). Every arrival must be served the moment
/// it lands, so laziness buys nothing — the worst regime for an online
/// scheduler against a clairvoyant packer.
[[nodiscard]] Instance generate_online_drip(const GenParams& params);

}  // namespace calisched

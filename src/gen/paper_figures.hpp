// Hand-built fixtures shaped like the paper's illustrative figures.
//
// Figure 1: seven long-window jobs feasibly scheduled on one machine with
// two calibrations; jobs 1 and 5 violate the TISE constraint on the right
// (deadline inside the calibration) and job 7 on the left (release after
// the calibration start), so the Lemma 2 transformation must advance /
// delay them.
//
// Figure 2/3: a four-point fractional calibration profile whose running
// total crosses 1/2 at the second point (one rounded calibration) and
// crosses both 1.0 and 1.5 at the fourth (two rounded calibrations).
#pragma once

#include <vector>

#include "core/schedule.hpp"

namespace calisched {

/// One machine, T = 10; see file comment. All jobs are long (window >= 2T).
[[nodiscard]] Instance figure1_instance();

/// The feasible 1-machine, 2-calibration ISE schedule drawn in Figure 1(B).
[[nodiscard]] Schedule figure1_ise_schedule();

struct FractionalProfile {
  std::vector<Time> points;
  std::vector<double> mass;
};

/// The Figure 2 rounding example: masses {0.2, 0.35, 0.25, 0.8}.
[[nodiscard]] FractionalProfile figure2_profile();

}  // namespace calisched

#include "gen/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace calisched {
namespace {

Instance shell(const GenParams& params) {
  Instance instance;
  instance.machines = params.machines;
  instance.T = params.T;
  return instance;
}

Time draw_proc(Rng& rng, const GenParams& params) {
  const Time lo = std::clamp<Time>(params.min_proc, 1, params.T);
  const Time hi = std::clamp<Time>(params.max_proc, lo, params.T);
  return rng.uniform_int(lo, hi);
}

Job make_job(JobId id, Time release, Time window, Time proc) {
  assert(window >= proc);
  return Job{id, release, release + window, proc};
}

}  // namespace

Instance generate_long_window(const GenParams& params, Time min_window_factor,
                              Time max_window_factor) {
  assert(min_window_factor >= 2 && max_window_factor >= min_window_factor);
  Rng rng(params.seed);
  Instance instance = shell(params);
  for (int j = 0; j < params.n; ++j) {
    const Time proc = draw_proc(rng, params);
    const Time window =
        rng.uniform_int(min_window_factor * params.T, max_window_factor * params.T);
    const Time latest_release = std::max<Time>(0, params.horizon - window);
    const Time release = rng.uniform_int(0, latest_release);
    instance.jobs.push_back(make_job(j, release, window, proc));
  }
  return instance;
}

Instance generate_short_window(const GenParams& params, Time slack_min) {
  Rng rng(params.seed);
  Instance instance = shell(params);
  for (int j = 0; j < params.n; ++j) {
    const Time proc = draw_proc(rng, params);
    const Time window_lo = std::min(proc + slack_min, 2 * params.T - 1);
    const Time window = rng.uniform_int(window_lo, 2 * params.T - 1);
    const Time latest_release = std::max<Time>(0, params.horizon - window);
    const Time release = rng.uniform_int(0, latest_release);
    instance.jobs.push_back(make_job(j, release, window, proc));
  }
  return instance;
}

Instance generate_mixed(const GenParams& params, double long_fraction) {
  Rng rng(params.seed);
  Instance instance = shell(params);
  for (int j = 0; j < params.n; ++j) {
    const Time proc = draw_proc(rng, params);
    Time window;
    if (rng.chance(long_fraction)) {
      window = rng.uniform_int(2 * params.T, 6 * params.T);
    } else {
      window = rng.uniform_int(std::min(proc, 2 * params.T - 1), 2 * params.T - 1);
      window = std::max(window, proc);
    }
    const Time latest_release = std::max<Time>(0, params.horizon - window);
    const Time release = rng.uniform_int(0, latest_release);
    instance.jobs.push_back(make_job(j, release, window, proc));
  }
  return instance;
}

Instance generate_unit(const GenParams& params, Time max_window) {
  Rng rng(params.seed);
  Instance instance = shell(params);
  for (int j = 0; j < params.n; ++j) {
    const Time window = rng.uniform_int(1, std::max<Time>(1, max_window));
    const Time latest_release = std::max<Time>(0, params.horizon - window);
    const Time release = rng.uniform_int(0, latest_release);
    instance.jobs.push_back(make_job(j, release, window, /*proc=*/1));
  }
  return instance;
}

Instance generate_partition_adversarial(std::uint64_t seed, int pieces,
                                        Time piece_max) {
  assert(pieces >= 1 && piece_max >= 1);
  Rng rng(seed);
  // Build one machine side of total work T, then mirror it, so a perfect
  // partition exists by construction.
  std::vector<Time> side;
  Time total = 0;
  for (int i = 0; i < pieces; ++i) {
    const Time piece = rng.uniform_int(1, piece_max);
    side.push_back(piece);
    total += piece;
  }
  Instance instance;
  instance.machines = 2;
  instance.T = std::max<Time>(2, total);
  JobId id = 0;
  for (int copy = 0; copy < 2; ++copy) {
    for (const Time piece : side) {
      instance.jobs.push_back(Job{id++, 0, instance.T, piece});
    }
  }
  return instance;
}

Instance generate_clustered(const GenParams& params, int bursts, Time burst_span,
                            bool long_windows) {
  assert(bursts >= 1);
  Rng rng(params.seed);
  Instance instance = shell(params);
  std::vector<Time> centers;
  for (int b = 0; b < bursts; ++b) {
    centers.push_back(rng.uniform_int(0, std::max<Time>(0, params.horizon)));
  }
  for (int j = 0; j < params.n; ++j) {
    const Time center = centers[rng.index(centers.size())];
    const Time proc = draw_proc(rng, params);
    Time window;
    if (long_windows) {
      window = rng.uniform_int(2 * params.T, 4 * params.T);
    } else {
      window = rng.uniform_int(std::min(proc, 2 * params.T - 1), 2 * params.T - 1);
      window = std::max(window, proc);
    }
    const Time release =
        std::max<Time>(0, center + rng.uniform_int(0, burst_span) - burst_span / 2);
    instance.jobs.push_back(make_job(j, release, window, proc));
  }
  return instance;
}

CalibrationModel calib_table(CalibTableRegime regime, Time base_length) {
  assert(base_length >= 2);
  const Time base = base_length;
  CalibrationModel model;
  switch (regime) {
    case CalibTableRegime::kCheapShort:
      model.types = {CalibrationType{base, 2, 0},
                     CalibrationType{2 * base, 5, 0}};
      break;
    case CalibTableRegime::kExpensiveLong:
      model.types = {CalibrationType{base, 1, 0},
                     CalibrationType{3 * base, 10, 0}};
      break;
    case CalibTableRegime::kDelayed:
      model.types = {CalibrationType{base, 2, 0},
                     CalibrationType{2 * base, 3, std::max<Time>(1, base / 2)}};
      break;
  }
  assert(!model.validate().has_value());
  return model;
}

Instance generate_calib_cost(const GenParams& params, CalibTableRegime regime) {
  Rng rng(params.seed);
  Instance instance = shell(params);
  instance.cal = calib_table(regime, params.T);
  for (int j = 0; j < params.n; ++j) {
    // draw_proc clamps to [1, T], so every job fits the base-length type.
    const Time proc = draw_proc(rng, params);
    const Time window = proc + rng.uniform_int(0, 2 * params.T);
    const Time latest_release = std::max<Time>(0, params.horizon - window);
    const Time release = rng.uniform_int(0, latest_release);
    instance.jobs.push_back(make_job(j, release, window, proc));
  }
  return instance;
}

Instance generate_online_poisson(const GenParams& params, double mean_gap) {
  Rng rng(params.seed);
  Instance instance = shell(params);
  const double gap = mean_gap > 0.0
                         ? mean_gap
                         : static_cast<double>(std::max<Time>(1, params.horizon)) /
                               static_cast<double>(std::max(1, params.n));
  Time at = 0;
  for (int j = 0; j < params.n; ++j) {
    // Integer exponential inter-arrival: inverse-CDF on uniform01, so the
    // stream stays deterministic across toolchains (no std distributions).
    at += static_cast<Time>(std::llround(-gap * std::log1p(-rng.uniform01())));
    const Time proc = draw_proc(rng, params);
    const Time window = proc + rng.uniform_int(0, 2 * params.T);
    instance.jobs.push_back(make_job(j, at, window, proc));
  }
  return instance;
}

Instance generate_online_burst(const GenParams& params, int bursts) {
  assert(bursts >= 1);
  Rng rng(params.seed);
  Instance instance = shell(params);
  // Burst times march forward with gaps in [T, 3T]: far enough apart that
  // calibrations opened for one wave have mostly expired by the next.
  std::vector<Time> waves;
  Time at = 0;
  for (int b = 0; b < bursts; ++b) {
    waves.push_back(at);
    at += rng.uniform_int(params.T, 3 * params.T);
  }
  for (int j = 0; j < params.n; ++j) {
    const Time wave = waves[static_cast<std::size_t>(j) % waves.size()];
    const Time proc = draw_proc(rng, params);
    const Time window =
        proc + rng.uniform_int(0, std::max<Time>(0, params.T - proc));
    instance.jobs.push_back(make_job(j, wave, window, proc));
  }
  return instance;
}

Instance generate_online_drip(const GenParams& params) {
  Rng rng(params.seed);
  Instance instance = shell(params);
  Time at = 0;
  for (int j = 0; j < params.n; ++j) {
    const Time proc = draw_proc(rng, params);
    instance.jobs.push_back(make_job(j, at, /*window=*/proc, proc));
    at += rng.uniform_int(1, std::max<Time>(1, params.T / 2));
  }
  return instance;
}

}  // namespace calisched

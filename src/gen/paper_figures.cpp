#include "gen/paper_figures.hpp"

namespace calisched {

Instance figure1_instance() {
  Instance instance;
  instance.machines = 1;
  instance.T = 10;
  //                       id  release deadline proc
  instance.jobs.push_back({1, -15, 5, 3});   // advanced by Lemma 2
  instance.jobs.push_back({2, 0, 25, 4});
  instance.jobs.push_back({3, 0, 30, 3});
  instance.jobs.push_back({4, 5, 30, 3});
  instance.jobs.push_back({5, -5, 18, 3});   // advanced by Lemma 2
  instance.jobs.push_back({6, 10, 32, 2});
  instance.jobs.push_back({7, 12, 35, 2});   // delayed by Lemma 2
  return instance;
}

Schedule figure1_ise_schedule() {
  Schedule schedule;
  schedule.machines = 1;
  schedule.T = 10;
  schedule.calibrations = {{0, 0}, {0, 10}};
  schedule.jobs = {
      {1, 0, 0}, {2, 0, 3}, {3, 0, 7},           // first calibration
      {4, 0, 10}, {5, 0, 13}, {6, 0, 16}, {7, 0, 18},  // second calibration
  };
  return schedule;
}

FractionalProfile figure2_profile() {
  return {{0, 4, 9, 13}, {0.2, 0.35, 0.25, 0.8}};
}

}  // namespace calisched

// Process-wide work counters for the state-space exact engine.
//
// Same design and caveats as lp/perf_counters.hpp: the explorer accumulates
// into plain per-search locals and flushes one relaxed-atomic add per
// counter when the search tears down, so the expansion loop never touches
// shared cache lines. Snapshots are not a consistent cut across concurrent
// searches — callers measure deltas around regions they control (benches,
// tests), where searches complete before the second snapshot.
//
// The counters expose the structural claims the engine makes: merging and
// dominance are what let it certify optima the DFS cannot, so tests assert
// `states_dominated > 0` on instances built to collide, and the benches
// report merge/dominance hit-rates next to (advisory) states/s.
#pragma once

#include <cstdint>

namespace calisched {

/// One snapshot (or delta of two snapshots) of the cumulative counters.
struct ExactSearchCounters {
  std::int64_t searches = 0;          ///< explorations completed (incl. stopped)
  std::int64_t states_created = 0;    ///< candidate states built (budget unit)
  std::int64_t states_merged = 0;     ///< re-reached an identical state
  std::int64_t states_dominated = 0;  ///< killed by the dominance rules
  std::int64_t states_pruned = 0;     ///< dead-job or calibration-cap pruned
  std::int64_t states_expanded = 0;   ///< states whose children were generated
  std::int64_t layers = 0;            ///< exploration layers processed

  [[nodiscard]] ExactSearchCounters operator-(
      const ExactSearchCounters& o) const noexcept {
    ExactSearchCounters d;
    d.searches = searches - o.searches;
    d.states_created = states_created - o.states_created;
    d.states_merged = states_merged - o.states_merged;
    d.states_dominated = states_dominated - o.states_dominated;
    d.states_pruned = states_pruned - o.states_pruned;
    d.states_expanded = states_expanded - o.states_expanded;
    d.layers = layers - o.layers;
    return d;
  }

  [[nodiscard]] ExactSearchCounters operator+(
      const ExactSearchCounters& o) const noexcept {
    ExactSearchCounters s;
    s.searches = searches + o.searches;
    s.states_created = states_created + o.states_created;
    s.states_merged = states_merged + o.states_merged;
    s.states_dominated = states_dominated + o.states_dominated;
    s.states_pruned = states_pruned + o.states_pruned;
    s.states_expanded = states_expanded + o.states_expanded;
    s.layers = layers + o.layers;
    return s;
  }
};

/// Current cumulative totals since process start (or the last reset).
[[nodiscard]] ExactSearchCounters exact_search_snapshot() noexcept;

/// Zeroes the totals. Benches/tests only; quiesce concurrent searches first.
void exact_search_reset() noexcept;

/// Engine-side flush: adds `delta` to the process totals (one relaxed
/// atomic add per field). Not for external callers.
void exact_search_accumulate(const ExactSearchCounters& delta) noexcept;

}  // namespace calisched

// Layered state-space exploration for the exact solvers.
//
// Both explorers grow a directed acyclic graph of hash-consed schedule
// states (schedule_state.hpp) layer by layer: layer L holds one state per
// *distinct* summary of "some L jobs scheduled". Each expansion places one
// more unscheduled job in every position a left-shifted schedule could put
// it; children land in an `unordered_multimap` keyed by the scheduled-set
// hash, where an identical state is merged away and the dominance rules
// discard states that are uniformly no better. The DFS this replaces
// revisits every placement *order*; the state graph visits every placement
// *set*, which is what pushes certified optima from tens of jobs into the
// hundreds.
//
// Completeness mirrors the branch-and-bound argument (exact_mm.cpp,
// exact_ise.hpp): any feasible schedule can be left-shifted to integer
// event times and replayed in nondecreasing start order, and in that order
// every job lands either on a machine frontier (MM) or in its machine's
// most recent calibration / a fresh calibration at an integer start (ISE).
// The explorer enumerates exactly those moves, so some optimal schedule
// always survives as a path; dominance only discards states whose every
// completion another retained state can match (schedule_state.cpp).
//
// Budgets: `state_budget` caps candidate states built (the analogue of
// branch-and-bound nodes). Exhaustion — like a RunLimits stop — returns
// the matching non-kOk status and never masquerades as an infeasibility
// verdict. Work counters flush into exact_search_snapshot() per search,
// and a trace span named "layer" is recorded per exploration layer.
#pragma once

#include <cstdint>

#include "core/schedule.hpp"
#include "exact/search_stats.hpp"
#include "runtime/limits.hpp"
#include "runtime/status.hpp"
#include "verify/verify.hpp"

namespace calisched {

class TraceContext;

/// Machine-minimization feasibility on exactly `machines` machines.
struct StateSpaceMmResult {
  /// kOk: the search ran to completion and `feasible` is a definitive
  /// verdict. kLimitExceeded / kDeadlineExceeded / kCancelled: stopped
  /// early, `feasible` is meaningless.
  SolveStatus status = SolveStatus::kOk;
  bool feasible = false;
  MMSchedule schedule;        ///< valid when status == kOk && feasible
  std::int64_t states = 0;    ///< candidate states built
};

[[nodiscard]] StateSpaceMmResult state_space_mm_feasible(
    const Instance& instance, int machines, std::int64_t state_budget,
    const RunLimits& limits = RunLimits::none(),
    TraceContext* trace = nullptr);

/// Minimum-calibration (ISE / TISE) search over the same engine.
struct StateSpaceIseOptions {
  std::int64_t state_budget = 5'000'000;
  /// Hard cap on the calibration count, mirroring ExactIseOptions.
  int max_calibrations = 16;
  /// Restrict placements to calibrations nested in the job window (TISE).
  bool require_tise = false;
  /// A calibration count known achievable (a verified heuristic solution);
  /// 0 means none. Tightens the pruning cap to min(max_calibrations, hint)
  /// — sound only if a schedule with `hint` calibrations really exists.
  int upper_bound_hint = 0;
  RunLimits limits;
  TraceContext* trace = nullptr;
};

struct StateSpaceIseResult {
  /// kOk: definitive (`feasible` + `calibrations` are the exact answer,
  /// "infeasible" meaning no schedule within max_calibrations exists).
  SolveStatus status = SolveStatus::kOk;
  bool feasible = false;
  std::size_t calibrations = 0;
  Schedule schedule;          ///< an optimal schedule when feasible
  std::int64_t states = 0;    ///< candidate states built
};

[[nodiscard]] StateSpaceIseResult state_space_ise_minimize(
    const Instance& instance, const StateSpaceIseOptions& options = {});

}  // namespace calisched

#include "exact/search_stats.hpp"

#include <atomic>

namespace calisched {
namespace {

struct AtomicCounters {
  std::atomic<std::int64_t> searches{0};
  std::atomic<std::int64_t> states_created{0};
  std::atomic<std::int64_t> states_merged{0};
  std::atomic<std::int64_t> states_dominated{0};
  std::atomic<std::int64_t> states_pruned{0};
  std::atomic<std::int64_t> states_expanded{0};
  std::atomic<std::int64_t> layers{0};
};

AtomicCounters& totals() noexcept {
  static AtomicCounters counters;
  return counters;
}

}  // namespace

ExactSearchCounters exact_search_snapshot() noexcept {
  const AtomicCounters& t = totals();
  ExactSearchCounters snap;
  snap.searches = t.searches.load(std::memory_order_relaxed);
  snap.states_created = t.states_created.load(std::memory_order_relaxed);
  snap.states_merged = t.states_merged.load(std::memory_order_relaxed);
  snap.states_dominated = t.states_dominated.load(std::memory_order_relaxed);
  snap.states_pruned = t.states_pruned.load(std::memory_order_relaxed);
  snap.states_expanded = t.states_expanded.load(std::memory_order_relaxed);
  snap.layers = t.layers.load(std::memory_order_relaxed);
  return snap;
}

void exact_search_reset() noexcept {
  AtomicCounters& t = totals();
  t.searches.store(0, std::memory_order_relaxed);
  t.states_created.store(0, std::memory_order_relaxed);
  t.states_merged.store(0, std::memory_order_relaxed);
  t.states_dominated.store(0, std::memory_order_relaxed);
  t.states_pruned.store(0, std::memory_order_relaxed);
  t.states_expanded.store(0, std::memory_order_relaxed);
  t.layers.store(0, std::memory_order_relaxed);
}

void exact_search_accumulate(const ExactSearchCounters& delta) noexcept {
  AtomicCounters& t = totals();
  t.searches.fetch_add(delta.searches, std::memory_order_relaxed);
  t.states_created.fetch_add(delta.states_created, std::memory_order_relaxed);
  t.states_merged.fetch_add(delta.states_merged, std::memory_order_relaxed);
  t.states_dominated.fetch_add(delta.states_dominated,
                               std::memory_order_relaxed);
  t.states_pruned.fetch_add(delta.states_pruned, std::memory_order_relaxed);
  t.states_expanded.fetch_add(delta.states_expanded,
                              std::memory_order_relaxed);
  t.layers.fetch_add(delta.layers, std::memory_order_relaxed);
}

}  // namespace calisched

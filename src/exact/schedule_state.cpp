// Dominance rules for schedule states, with their soundness arguments.
//
// Both rules are simulation arguments: state A dominates state B (same
// scheduled-job set) when every continuation of B — a sequence of further
// placements in the explorer's own move language — can be replayed from A
// move for move, with every replayed job starting no later and every
// replayed calibration opening legally. Then B can be discarded: if B
// completes, A completes at least as well.
//
// MM (identical machines, frontiers sorted ascending):
//   Match A's i-th frontier to B's i-th frontier. If a_i <= b_i for all i,
//   a job B places on its i-th machine at start max(b_i', r_j) (b_i' being
//   the current value along B's continuation) is placed on A's i-th
//   machine at max(a_i', r_j) <= max(b_i', r_j); after the move the
//   matched pair keeps a_i' <= b_i' because both become the same value
//   when the start is r_j-bound, and A's start is no later otherwise.
//   An inductive invariant a_i' <= b_i' (componentwise, same matching)
//   therefore survives every move, and deadlines honored by B's starts
//   are honored by A's earlier starts.
//
// ISE (slots sorted by (end, free), calibration counts k_A <= k_B):
//   Match slots positionally; slot a must simulate slot b in one of two
//   provable cases (ise_slot_simulates):
//     * free_b >= end_b (slot b is useless: max(free_b, r_j) + p_j exceeds
//       end_b for every job, so nothing fits): B's continuation never
//       places a job in b; only b's occupancy constraint matters (a new
//       calibration on that machine must start at or after end_b).
//       end_a <= end_b keeps A's constraint looser, so every calibration
//       B opens there, A can open too — whatever a's own free time is.
//     * end_a == end_b and free_a <= free_b: identical expiry, so the MM
//       frontier argument applies verbatim inside the calibration window
//       (replayed starts are no later, completions no later, same end
//       bound), and the occupancy constraints for future calibrations on
//       the two machines coincide.
//   Note end_a < end_b with slot b still useful is deliberately NOT a
//   simulation: a job B hosts may complete inside (end_a, end_b], which A
//   cannot replay. k_A <= k_B makes the objective no worse.
#include "exact/schedule_state.hpp"

#include <algorithm>

namespace calisched {

bool ise_slot_simulates(const IseSlot& a, const IseSlot& b) noexcept {
  if (b.free >= b.end) return a.end <= b.end;        // b hosts nothing
  return a.end == b.end && a.free <= b.free;         // same window, freer
}

bool ise_slots_dominate(const std::vector<IseSlot>& a,
                        const std::vector<IseSlot>& b) noexcept {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!ise_slot_simulates(a[i], b[i])) return false;
  }
  return true;
}

bool mm_frontiers_dominate(const std::vector<Time>& a,
                           const std::vector<Time>& b) noexcept {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

void canonicalize_mm_frontiers(std::vector<Time>& frontiers,
                               Time release_floor) noexcept {
  // Sorted input: everything below the floor is a prefix.
  for (Time& frontier : frontiers) {
    if (frontier >= release_floor) break;
    frontier = release_floor;
  }
}

}  // namespace calisched

// Engine selector shared by every exact solver in the library.
//
// The exact solvers (ExactMM machine minimization, the exact_mm_feasibility
// probe, and the exact-ISE minimum-calibration search) each exist in two
// implementations:
//
//   * kBranchBound — the original depth-first branch-and-bound. Simple,
//     allocation-light, and kept permanently wired as the differential
//     oracle (the same role the dense tableau plays for the revised
//     simplex): tests sweep both engines and require identical optima.
//   * kStateSpace  — layered exploration over hash-consed schedule states
//     with merge and dominance pruning (src/exact/state_space.hpp). The
//     default: it certifies optima at instance sizes the DFS cannot touch
//     because permuted placement orders collapse into one state.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace calisched {

enum class ExactEngine {
  kBranchBound,  ///< depth-first branch-and-bound (differential oracle)
  kStateSpace,   ///< hash-consed layered state graph (default)
};

/// Flag spelling used by --exact-engine and the bench binaries.
[[nodiscard]] inline std::optional<ExactEngine> parse_exact_engine(
    std::string_view text) noexcept {
  if (text == "bnb" || text == "branch-bound") return ExactEngine::kBranchBound;
  if (text == "state" || text == "state-space") return ExactEngine::kStateSpace;
  return std::nullopt;
}

[[nodiscard]] inline std::string to_string(ExactEngine engine) {
  return engine == ExactEngine::kBranchBound ? "bnb" : "state-space";
}

}  // namespace calisched

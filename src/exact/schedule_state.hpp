// Hash-consed schedule states for the exact state-space engine.
//
// A state summarizes everything a partial schedule exposes to its future:
//
//   * which jobs are already scheduled (a bitset over job indices — the
//     `lookup_key` that buckets states for merge/dominance checks),
//   * one record per machine describing its frontier — for machine
//     minimization just the time the machine frees up; for calibration
//     minimization the open calibration's availability end plus the free
//     time inside it,
//   * (ISE only) the number of calibrations opened so far.
//
// Two partial schedules with equal summaries are interchangeable, so the
// explorer keeps one (a merge). Beyond exact equality, a *dominance* rule
// discards states that are uniformly no better (schedule_state.cpp
// documents the simulation argument per problem). To make merges fire as
// often as soundly possible, states are canonicalized before hashing:
// frontier components that cannot influence any remaining job are clamped
// to a floor derived from the unscheduled set (the point-interval analogue
// of the exemplar's finish-interval widening — the clamp coarsens the
// state without admitting any schedule the original could not realize).
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"

namespace calisched {

/// Scheduled-job set: a fixed-width bitset with an FNV-1a style hash used
/// as the state lookup key. Word count is decided once per search.
class JobSet {
 public:
  JobSet() = default;
  explicit JobSet(std::size_t jobs)
      : words_((jobs + 63) / 64, 0) {}

  void set(std::size_t index) noexcept {
    words_[index >> 6] |= std::uint64_t{1} << (index & 63);
  }
  [[nodiscard]] bool test(std::size_t index) const noexcept {
    return (words_[index >> 6] >> (index & 63)) & 1;
  }

  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::uint64_t word : words_) {
      h ^= word;
      h *= 1099511628211ULL;
    }
    return h;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  friend bool operator==(const JobSet&, const JobSet&) = default;

 private:
  std::vector<std::uint64_t> words_;
};

/// One machine's frontier in the calibration (ISE) state space: the open
/// calibration is usable until `end` (availability end = start + T) and
/// the machine is busy inside it until `free`. A machine with no usable
/// calibration is canonicalized to the closed sentinel free == end, with
/// end clamped to the new-calibration floor (see canonicalize_ise_slots).
struct IseSlot {
  Time end = 0;
  Time free = 0;

  friend constexpr bool operator==(const IseSlot&, const IseSlot&) noexcept =
      default;
  friend constexpr bool operator<(const IseSlot& a, const IseSlot& b) noexcept {
    return a.end != b.end ? a.end < b.end : a.free < b.free;
  }
};

/// True when slot `a` can take over slot `b`'s role in any continuation:
/// every job sequence `b` could still host fits in `a` at starts no later,
/// and every future calibration `b`'s machine could open, `a`'s machine
/// can open too. Two provable cases: slot b useless (free_b >= end_b, then
/// end_a <= end_b suffices — only the occupancy constraint remains), or
/// same expiry with a freer machine (end_a == end_b && free_a <= free_b).
/// Proof sketch in schedule_state.cpp.
[[nodiscard]] bool ise_slot_simulates(const IseSlot& a,
                                      const IseSlot& b) noexcept;

/// Componentwise simulation over canonically sorted slot vectors: position
/// i of `a` must simulate position i of `b`. Positional matching after
/// sorting is sufficient (never unsound) but not complete — it may miss a
/// valid non-positional matching and merely prune less.
[[nodiscard]] bool ise_slots_dominate(const std::vector<IseSlot>& a,
                                      const std::vector<IseSlot>& b) noexcept;

/// MM frontiers: machine `a` freeing no later than `b` can host any job
/// `b` hosts at a start no later, so componentwise <= over the sorted
/// frontier vectors is a sound dominance rule on identical machines.
[[nodiscard]] bool mm_frontiers_dominate(const std::vector<Time>& a,
                                         const std::vector<Time>& b) noexcept;

/// Floors derived from the unscheduled job set, used by canonicalization:
///   release_floor — min release over remaining jobs: any frontier earlier
///     than this behaves exactly like the floor (every future start is
///     max(frontier, r_j) = r_j), so clamping merges equivalent states.
///   new_cal_floor — min over remaining jobs of r_j + p_j - T: no useful
///     calibration can start earlier (ISE only).
struct RemainingFloors {
  Time release_floor = 0;
  Time new_cal_floor = 0;
};

/// Clamps MM frontiers below the release floor up to it (in place; input
/// and output sorted ascending). Preserves every reachable completion and
/// every future start time exactly.
void canonicalize_mm_frontiers(std::vector<Time>& frontiers,
                               Time release_floor) noexcept;

/// ISE slot canonicalization (in place; re-sorts):
///   1. free below the release floor is clamped up to it,
///   2. a slot no remaining job fits becomes free == end (its free time
///      can never matter again),
///   3. a useless slot whose end is at or below the new-calibration floor
///      becomes the sentinel (floor, floor) — its occupancy constraint is
///      inactive, so "expired calibration" and "never calibrated" merge.
/// `fits` decides rule 2: fits(slot) is true when some unscheduled job can
/// run in the slot (the caller owns the TISE/ISE placement rule).
template <typename FitsFn>
void canonicalize_ise_slots(std::vector<IseSlot>& slots,
                            const RemainingFloors& floors, FitsFn&& fits) {
  for (IseSlot& slot : slots) {
    if (slot.free < floors.release_floor) slot.free = floors.release_floor;
    if (slot.free < slot.end && !fits(slot)) slot.free = slot.end;
    if (slot.free >= slot.end && slot.end <= floors.new_cal_floor) {
      slot.end = floors.new_cal_floor;
      slot.free = floors.new_cal_floor;
    }
  }
}

}  // namespace calisched

// State-space explorers: layered BFS over hash-consed schedule states.
//
// Implementation notes shared by both explorers:
//
//   * States live in struct-of-vectors arenas (scheduled-set words,
//     frontier/slot pool, parent + edge per state) so a search is two
//     large allocations, not a node soup, and reconstruction is a parent
//     walk.
//   * The per-layer index is an unordered_multimap from the scheduled-set
//     hash to state ids in the *next* layer; equal_range gives the handful
//     of states sharing a job set, against which a newborn candidate is
//     merged (identical), discarded (dominated), or installed (possibly
//     killing bucket members it dominates — they stay in the arena with a
//     dead flag and are never expanded).
//   * Edges store (job, slot position[, calibration start]); start times
//     are *recomputed* during replay from the same canonical frontier
//     values the search saw, which keeps edges small and makes replay an
//     independent re-derivation of the schedule rather than a trust-me
//     copy. The canonicalization clamps (schedule_state.hpp) are
//     value-preserving for every start the remaining jobs can take, so
//     replayed starts equal real left-shifted starts.
//   * Remaining-set aggregates (min release, min latest start, min
//     processing, the ISE new-calibration floor) are maintained as
//     (min, second-min) pairs per expanded state, so each child gets its
//     floors in O(1) instead of O(n).
//   * Identical jobs are placed in index order (twin_prev_links), which
//     shrinks the reachable subset lattice from 2^n bitsets to per-class
//     counts — the symmetry collapse that lets the layered engine certify
//     instances whose permutation count drowns the branch-and-bound DFS.
#include "exact/state_space.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exact/schedule_state.hpp"
#include "trace/trace.hpp"

namespace calisched {
namespace {

constexpr Time kTimeMax = std::numeric_limits<Time>::max();

/// (min, runner-up) of a stream of (value, key) pairs; value_without(key)
/// answers "what is the min if `key` is excluded" in O(1) — the child-state
/// floor question asked once per (state, job) pair.
struct MinPair {
  Time best = kTimeMax;
  Time second = kTimeMax;
  std::int32_t best_key = -1;

  void feed(Time value, std::int32_t key) noexcept {
    if (value < best) {
      second = best;
      best = value;
      best_key = key;
    } else if (value < second) {
      second = value;
    }
  }
  [[nodiscard]] Time value_without(std::int32_t key) const noexcept {
    return key == best_key ? second : best;
  }
};

/// Scheduled-set scratch: parent words + one extra bit, hashed.
std::uint64_t hash_words(const std::vector<std::uint64_t>& words) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint64_t word : words) {
    h ^= word;
    h *= 1099511628211ULL;
  }
  return h;
}

bool words_equal(const std::uint64_t* a, const std::uint64_t* b,
                 std::size_t count) noexcept {
  return std::equal(a, a + count, b);
}

/// twin_prev[j] = the largest k < j with an identical (release, deadline,
/// proc) triple, or -1. Any schedule can be relabelled so identical jobs are
/// placed in index order (swapping two identical jobs' assignments changes
/// nothing the verifier or the objective can see), so an explorer may
/// refuse to place job j while twin_prev[j] is still unscheduled. That
/// canonical-representative rule collapses the reachable subset lattice
/// from per-copy bitsets to per-class counts: with classes of sizes
/// n_1..n_k only prod (n_i + 1) job sets are reachable instead of 2^n,
/// which is exactly the regime where the layered engine beats DFS (a DFS
/// without the rule re-proves infeasibility once per permutation of twins).
std::vector<std::int32_t> twin_prev_links(const Instance& instance) {
  const std::size_t n = instance.size();
  std::vector<std::int32_t> prev(n, -1);
  for (std::size_t j = 1; j < n; ++j) {
    const Job& job = instance.jobs[j];
    for (std::size_t k = j; k-- > 0;) {
      const Job& other = instance.jobs[k];
      if (other.release == job.release && other.deadline == job.deadline &&
          other.proc == job.proc) {
        prev[j] = static_cast<std::int32_t>(k);
        break;
      }
    }
  }
  return prev;
}

// ------------------------------------------------------------------- MM --

class MmExplorer {
 public:
  MmExplorer(const Instance& instance, int machines, std::int64_t budget,
             const RunLimits& limits, TraceContext* trace)
      : instance_(instance),
        n_(instance.size()),
        m_(static_cast<std::size_t>(machines)),
        words_((instance.size() + 63) / 64),
        budget_(budget),
        twin_prev_(twin_prev_links(instance)),
        by_deadline_(instance.size()),
        poller_(limits, /*stride=*/256),
        trace_(trace) {
    for (std::size_t j = 0; j < n_; ++j) by_deadline_[j] = j;
    std::sort(by_deadline_.begin(), by_deadline_.end(),
              [&](std::size_t a, std::size_t b) {
                return instance.jobs[a].deadline < instance.jobs[b].deadline;
              });
  }

  StateSpaceMmResult run() {
    StateSpaceMmResult result;
    seed_root();
    std::vector<std::uint32_t> current{0};
    for (std::size_t layer = 0; layer < n_ && !current.empty(); ++layer) {
      TraceSpan span(trace_, "layer");
      ++counters_.layers;
      bucket_.clear();
      next_.clear();
      for (const std::uint32_t id : current) {
        if (dead_[id]) continue;
        ++counters_.states_expanded;
        if (poller_.poll() != SolveStatus::kOk) return stop(poller_.status());
        if (!expand(id, layer)) return stop(SolveStatus::kLimitExceeded);
        if (complete_ != kNone) {
          result.feasible = true;
          result.schedule = reconstruct();
          return finish(std::move(result));
        }
      }
      current.clear();
      for (const std::uint32_t id : next_) {
        if (!dead_[id]) current.push_back(id);
      }
    }
    // Every layer drained without a complete state: definitively infeasible.
    return finish(std::move(result));
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  StateSpaceMmResult stop(SolveStatus status) {
    StateSpaceMmResult result;
    result.status = status;
    return finish(std::move(result));
  }

  StateSpaceMmResult finish(StateSpaceMmResult result) {
    result.states = counters_.states_created;
    counters_.searches = 1;
    exact_search_accumulate(counters_);
    trace_add(trace_, "state_space.states", counters_.states_created);
    trace_add(trace_, "state_space.merged", counters_.states_merged);
    trace_add(trace_, "state_space.dominated", counters_.states_dominated);
    return result;
  }

  void seed_root() {
    set_pool_.assign(words_, 0);
    frontier_pool_.assign(m_, instance_.min_release());
    parent_.push_back(kNone);
    edge_job_.push_back(-1);
    edge_slot_.push_back(-1);
    dead_.push_back(0);
    counters_.states_created = 1;
  }

  [[nodiscard]] const Time* frontiers(std::uint32_t id) const noexcept {
    return frontier_pool_.data() + static_cast<std::size_t>(id) * m_;
  }
  [[nodiscard]] const std::uint64_t* set_words(std::uint32_t id) const noexcept {
    return set_pool_.data() + static_cast<std::size_t>(id) * words_;
  }

  /// Expands one state; false on budget exhaustion. Sets complete_ when a
  /// child schedules every job.
  bool expand(std::uint32_t id, std::size_t layer) {
    // Copy the parent's records out of the pools: emit() appends to the
    // pools and would invalidate pointers into them.
    parent_words_.assign(set_words(id), set_words(id) + words_);
    parent_frontiers_.assign(frontiers(id), frontiers(id) + m_);
    const std::uint64_t* words = parent_words_.data();
    const Time* base = parent_frontiers_.data();
    remaining_.clear();
    MinPair release, latest;
    for (std::size_t j = 0; j < n_; ++j) {
      if ((words[j >> 6] >> (j & 63)) & 1) continue;
      remaining_.push_back(j);
      const Job& job = instance_.jobs[j];
      release.feed(job.release, static_cast<std::int32_t>(j));
      latest.feed(job.deadline - job.proc, static_cast<std::int32_t>(j));
    }
    for (const std::size_t j : remaining_) {
      // Canonical-representative rule: identical jobs go in index order.
      const std::int32_t twin = twin_prev_[j];
      if (twin >= 0 && !((words[twin >> 6] >> (twin & 63)) & 1)) continue;
      const Job& job = instance_.jobs[j];
      const auto key = static_cast<std::int32_t>(j);
      const Time child_floor = release.value_without(key);
      const Time child_latest = latest.value_without(key);
      // Largest frontier at or before the release: every earlier frontier
      // yields the same start r_j and a dominated remainder, so one child
      // stands in for all of them.
      std::size_t at_release = m_;  // index, m_ = none
      for (std::size_t s = 0; s < m_; ++s) {
        if (base[s] <= job.release) at_release = s;
      }
      if (at_release != m_) {
        if (!emit(id, layer, j, at_release, job.release, child_floor,
                  child_latest)) {
          return false;
        }
        if (complete_ != kNone) return true;
      }
      // Distinct frontiers strictly after the release start the job at the
      // frontier itself.
      Time previous = kTimeMax;
      for (std::size_t s = 0; s < m_; ++s) {
        const Time f = base[s];
        if (f <= job.release || f == previous) continue;
        previous = f;
        if (f + job.proc > job.deadline) break;  // sorted: later only worse
        if (!emit(id, layer, j, s, f, child_floor, child_latest)) return false;
        if (complete_ != kNone) return true;
      }
    }
    return true;
  }

  /// Builds, canonicalizes, prunes, and indexes one child. False on budget
  /// exhaustion.
  bool emit(std::uint32_t parent, std::size_t layer, std::size_t j,
            std::size_t slot, Time start, Time child_floor,
            Time child_latest) {
    if (++counters_.states_created > budget_) return false;
    const Job& job = instance_.jobs[j];
    const Time* base = parent_frontiers_.data();  // expand()'s stable copy
    scratch_.clear();
    for (std::size_t s = 0; s < m_; ++s) {
      if (s != slot) scratch_.push_back(base[s]);
    }
    scratch_.insert(
        std::lower_bound(scratch_.begin(), scratch_.end(), start + job.proc),
        start + job.proc);
    const bool complete = layer + 1 == n_;
    if (!complete) {
      canonicalize_mm_frontiers(scratch_, child_floor);
      // Dead state: some remaining job misses its deadline even on the
      // earliest frontier.
      if (scratch_[0] > child_latest) {
        ++counters_.states_pruned;
        return true;
      }
      if (energetic_dead(j)) {
        ++counters_.states_pruned;
        return true;
      }
    }
    scratch_set_ = parent_words_;
    scratch_set_[j >> 6] |= std::uint64_t{1} << (j & 63);
    if (complete) {
      complete_ = commit(parent, j, slot, 0);
      return true;
    }
    const std::uint64_t hash = hash_words(scratch_set_);
    auto range = bucket_.equal_range(hash);
    for (auto it = range.first; it != range.second;) {
      const std::uint32_t other = it->second;
      if (!words_equal(set_words(other), scratch_set_.data(), words_)) {
        ++it;
        continue;
      }
      const Time* theirs = frontiers(other);
      const std::vector<Time> their_frontiers(theirs, theirs + m_);
      if (scratch_ == their_frontiers) {
        ++counters_.states_merged;
        return true;
      }
      if (mm_frontiers_dominate(their_frontiers, scratch_)) {
        ++counters_.states_dominated;
        return true;
      }
      if (mm_frontiers_dominate(scratch_, their_frontiers)) {
        ++counters_.states_dominated;
        dead_[other] = 1;
        it = bucket_.erase(it);
        continue;
      }
      ++it;
    }
    const std::uint32_t child = commit(parent, j, slot, hash);
    next_.push_back(child);
    return true;
  }

  /// Energetic dead test on the canonicalized scratch_ frontiers: for every
  /// deadline D in increasing order, the remaining work due by D must fit
  /// into the machine-time the frontiers leave open before D,
  ///   sum_{remaining q : d_q <= D} p_q  <=  sum_s max(0, D - frontier_s);
  /// a violation proves no completion exists, whatever the placements.
  /// (Canonicalization clamps frontiers up to the remaining release floor,
  /// which only tightens the bound: no remaining job can use machine time
  /// before its release anyway.) Catches doomed states where every job
  /// still fits individually but the aggregate cannot — e.g. a saturated
  /// early wave abandoned while the search schedules later jobs.
  [[nodiscard]] bool energetic_dead(std::size_t placed) const {
    const std::uint64_t* words = parent_words_.data();
    Time work = 0;
    Time fsum = 0;      // sum of frontiers strictly below the current D
    std::size_t s = 0;  // count of those frontiers
    for (const std::size_t q : by_deadline_) {
      if (q == placed || ((words[q >> 6] >> (q & 63)) & 1)) continue;
      const Job& job = instance_.jobs[q];
      while (s < m_ && scratch_[s] < job.deadline) fsum += scratch_[s++];
      work += job.proc;
      if (work > static_cast<Time>(s) * job.deadline - fsum) return true;
    }
    return false;
  }

  std::uint32_t commit(std::uint32_t parent, std::size_t j, std::size_t slot,
                       std::uint64_t hash) {
    const auto id = static_cast<std::uint32_t>(parent_.size());
    set_pool_.insert(set_pool_.end(), scratch_set_.begin(), scratch_set_.end());
    frontier_pool_.insert(frontier_pool_.end(), scratch_.begin(),
                          scratch_.end());
    parent_.push_back(parent);
    edge_job_.push_back(static_cast<std::int32_t>(j));
    edge_slot_.push_back(static_cast<std::int32_t>(slot));
    dead_.push_back(0);
    bucket_.insert({hash, id});
    return id;
  }

  /// Replays the edge path, re-deriving every start from the same
  /// canonical frontier values the search used, with machine identities
  /// carried alongside.
  MMSchedule reconstruct() {
    std::vector<std::pair<std::int32_t, std::int32_t>> path;  // (job, slot)
    for (std::uint32_t id = complete_; parent_[id] != kNone;
         id = parent_[id]) {
      path.emplace_back(edge_job_[id], edge_slot_[id]);
    }
    std::reverse(path.begin(), path.end());

    MMSchedule schedule;
    schedule.machines = static_cast<int>(m_);
    std::vector<std::pair<Time, int>> machines(m_);  // (frontier, machine)
    for (std::size_t s = 0; s < m_; ++s) {
      machines[s] = {instance_.min_release(), static_cast<int>(s)};
    }
    std::vector<char> done(n_, 0);
    for (const auto& [job_index, slot] : path) {
      const Job& job = instance_.jobs[static_cast<std::size_t>(job_index)];
      done[static_cast<std::size_t>(job_index)] = 1;
      auto& target = machines[static_cast<std::size_t>(slot)];
      const Time start = std::max(target.first, job.release);
      schedule.jobs.push_back({job.id, target.second, start});
      target.first = start + job.proc;
      Time floor = kTimeMax;
      for (std::size_t q = 0; q < n_; ++q) {
        if (!done[q]) floor = std::min(floor, instance_.jobs[q].release);
      }
      if (floor != kTimeMax) {
        for (auto& entry : machines) {
          if (entry.first < floor) entry.first = floor;
        }
      }
      std::sort(machines.begin(), machines.end());
    }
    return schedule;
  }

  const Instance& instance_;
  std::size_t n_;
  std::size_t m_;
  std::size_t words_;
  std::int64_t budget_;
  std::vector<std::int32_t> twin_prev_;
  std::vector<std::size_t> by_deadline_;
  LimitPoller poller_;
  TraceContext* trace_;

  std::vector<std::uint64_t> set_pool_;
  std::vector<Time> frontier_pool_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::int32_t> edge_job_;
  std::vector<std::int32_t> edge_slot_;
  std::vector<char> dead_;

  std::unordered_multimap<std::uint64_t, std::uint32_t> bucket_;
  std::vector<std::uint32_t> next_;
  std::vector<std::size_t> remaining_;
  std::vector<std::uint64_t> parent_words_;  ///< expand()'s stable copies
  std::vector<Time> parent_frontiers_;
  std::vector<Time> scratch_;
  std::vector<std::uint64_t> scratch_set_;
  std::uint32_t complete_ = kNone;
  ExactSearchCounters counters_;
};

// ------------------------------------------------------------------ ISE --

class IseExplorer {
 public:
  IseExplorer(const Instance& instance, const StateSpaceIseOptions& options)
      : instance_(instance),
        options_(options),
        n_(instance.size()),
        m_(static_cast<std::size_t>(instance.machines)),
        words_((instance.size() + 63) / 64),
        twin_prev_(twin_prev_links(instance)),
        by_deadline_(instance.size()),
        poller_(options.limits, /*stride=*/256),
        trace_(options.trace) {
    cap_ = options.max_calibrations;
    if (options.upper_bound_hint > 0 && options.upper_bound_hint < cap_) {
      cap_ = options.upper_bound_hint;
    }
    for (std::size_t j = 0; j < n_; ++j) by_deadline_[j] = j;
    std::sort(by_deadline_.begin(), by_deadline_.end(),
              [&](std::size_t a, std::size_t b) {
                return instance.jobs[a].deadline < instance.jobs[b].deadline;
              });
  }

  StateSpaceIseResult run() {
    StateSpaceIseResult result;
    seed_root();
    std::vector<std::uint32_t> current{0};
    for (std::size_t layer = 0; layer < n_ && !current.empty(); ++layer) {
      TraceSpan span(trace_, "layer");
      ++counters_.layers;
      bucket_.clear();
      next_.clear();
      for (const std::uint32_t id : current) {
        if (dead_[id]) continue;
        ++counters_.states_expanded;
        if (poller_.poll() != SolveStatus::kOk) return stop(poller_.status());
        if (!expand(id, layer)) return stop(SolveStatus::kLimitExceeded);
      }
      current.clear();
      for (const std::uint32_t id : next_) {
        if (!dead_[id]) current.push_back(id);
      }
      if (layer + 1 == n_) {
        // Final layer: the optimum is the fewest calibrations among
        // complete states.
        std::uint32_t best = kNone;
        for (const std::uint32_t id : current) {
          if (best == kNone || cals_[id] < cals_[best]) best = id;
        }
        if (best != kNone) {
          result.feasible = true;
          result.calibrations = static_cast<std::size_t>(cals_[best]);
          result.schedule = reconstruct(best);
        }
        return finish(std::move(result));
      }
    }
    return finish(std::move(result));  // no complete state within the cap
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;
  static constexpr Time kNoNewCal = std::numeric_limits<Time>::min();

  StateSpaceIseResult stop(SolveStatus status) {
    StateSpaceIseResult result;
    result.status = status;
    return finish(std::move(result));
  }

  StateSpaceIseResult finish(StateSpaceIseResult result) {
    result.states = counters_.states_created;
    counters_.searches = 1;
    exact_search_accumulate(counters_);
    trace_add(trace_, "state_space.states", counters_.states_created);
    trace_add(trace_, "state_space.merged", counters_.states_merged);
    trace_add(trace_, "state_space.dominated", counters_.states_dominated);
    return result;
  }

  /// Placement rule: can `job` run inside `slot`? (TISE additionally nests
  /// the calibration window inside the job window.)
  [[nodiscard]] bool fits_slot(const Job& job, const IseSlot& slot) const {
    if (options_.require_tise &&
        !(job.release <= slot.end - instance_.T && slot.end <= job.deadline)) {
      return false;
    }
    const Time start = std::max(slot.free, job.release);
    return start + job.proc <= std::min(slot.end, job.deadline);
  }

  /// Integer start range of a fresh calibration that can host `job`
  /// (contiguous; see exact_ise.hpp's completeness note). Empty when
  /// lo > hi.
  [[nodiscard]] std::pair<Time, Time> new_cal_range(const Job& job) const {
    if (job.proc > instance_.T || job.release + job.proc > job.deadline) {
      return {1, 0};  // the job fits no calibration at all
    }
    if (options_.require_tise) {
      return {job.release, job.deadline - instance_.T};
    }
    return {job.release + job.proc - instance_.T, job.deadline - job.proc};
  }

  void seed_root() {
    Time floor_newcal = kTimeMax;
    for (const Job& job : instance_.jobs) {
      floor_newcal =
          std::min(floor_newcal, job.release + job.proc - instance_.T);
    }
    set_pool_.assign(words_, 0);
    slot_pool_.assign(m_, IseSlot{floor_newcal, floor_newcal});
    parent_.push_back(kNone);
    edge_job_.push_back(-1);
    edge_slot_.push_back(-1);
    edge_cal_.push_back(kNoNewCal);
    cals_.push_back(0);
    dead_.push_back(0);
    counters_.states_created = 1;
  }

  [[nodiscard]] const IseSlot* slots(std::uint32_t id) const noexcept {
    return slot_pool_.data() + static_cast<std::size_t>(id) * m_;
  }
  [[nodiscard]] const std::uint64_t* set_words(std::uint32_t id) const noexcept {
    return set_pool_.data() + static_cast<std::size_t>(id) * words_;
  }

  bool expand(std::uint32_t id, std::size_t layer) {
    // Copy the parent's records out of the pools: emit() appends to the
    // pools and would invalidate pointers into them.
    parent_words_.assign(set_words(id), set_words(id) + words_);
    parent_slots_.assign(slots(id), slots(id) + m_);
    const std::uint64_t* words = parent_words_.data();
    const IseSlot* base = parent_slots_.data();
    const std::int32_t parent_cals = cals_[id];
    remaining_.clear();
    MinPair release, latest, newcal_floor, min_proc;
    for (std::size_t j = 0; j < n_; ++j) {
      if ((words[j >> 6] >> (j & 63)) & 1) continue;
      remaining_.push_back(j);
      const Job& job = instance_.jobs[j];
      const auto key = static_cast<std::int32_t>(j);
      release.feed(job.release, key);
      latest.feed(job.deadline - job.proc, key);
      newcal_floor.feed(job.release + job.proc - instance_.T, key);
      min_proc.feed(job.proc, key);
    }
    for (const std::size_t j : remaining_) {
      // Canonical-representative rule: identical jobs go in index order.
      const std::int32_t twin = twin_prev_[j];
      if (twin >= 0 && !((words[twin >> 6] >> (twin & 63)) & 1)) continue;
      const Job& job = instance_.jobs[j];
      const auto key = static_cast<std::int32_t>(j);
      RemainingFloors floors;
      floors.release_floor = release.value_without(key);
      floors.new_cal_floor = newcal_floor.value_without(key);
      const Time child_latest = latest.value_without(key);
      const Time child_min_proc = min_proc.value_without(key);
      // Place into an existing calibration (one child per distinct slot).
      for (std::size_t s = 0; s < m_; ++s) {
        if (s > 0 && base[s] == base[s - 1]) continue;
        if (!fits_slot(job, base[s])) continue;
        const Time start = std::max(base[s].free, job.release);
        if (!emit(id, layer, j, s, kNoNewCal,
                  IseSlot{base[s].end, start + job.proc}, parent_cals, floors,
                  child_latest, child_min_proc)) {
          return false;
        }
      }
      // Open a fresh calibration. One candidate slot per distinct expiry —
      // among equal expiries, sacrificing the most-loaded slot leaves the
      // dominant remainder (sorted order: the last of the group).
      if (parent_cals < cap_) {
        const auto [lo, hi] = new_cal_range(job);
        for (std::size_t s = 0; s < m_; ++s) {
          if (s + 1 < m_ && base[s + 1].end == base[s].end) continue;
          for (Time t = std::max(lo, base[s].end); t <= hi; ++t) {
            const Time start = std::max(t, job.release);
            if (!emit(id, layer, j, s, t,
                      IseSlot{t + instance_.T, start + job.proc},
                      parent_cals + 1, floors, child_latest, child_min_proc)) {
              return false;
            }
          }
        }
      }
    }
    return true;
  }

  bool emit(std::uint32_t parent, std::size_t layer, std::size_t j,
            std::size_t slot, Time cal_start, IseSlot updated,
            std::int32_t cals, const RemainingFloors& floors,
            Time child_latest, Time child_min_proc) {
    if (++counters_.states_created > options_.state_budget) return false;
    const IseSlot* base = parent_slots_.data();  // expand()'s stable copy
    scratch_.clear();
    for (std::size_t s = 0; s < m_; ++s) {
      if (s != slot) scratch_.push_back(base[s]);
    }
    scratch_.insert(
        std::lower_bound(scratch_.begin(), scratch_.end(), updated), updated);
    const bool complete = layer + 1 == n_;
    if (!complete) {
      // Cheap no-job-fits test for rule 2: nothing shorter remains.
      canonicalize_ise_slots(scratch_, floors, [&](const IseSlot& s) {
        return s.free + child_min_proc <= s.end;
      });
      std::sort(scratch_.begin(), scratch_.end());
      if (is_dead(j, child_latest)) {
        ++counters_.states_pruned;
        return true;
      }
      if (energetic_dead(j, cals, floors)) {
        ++counters_.states_pruned;
        return true;
      }
    }
    scratch_set_ = parent_words_;
    scratch_set_[j >> 6] |= std::uint64_t{1} << (j & 63);
    const std::uint64_t hash = hash_words(scratch_set_);
    auto range = bucket_.equal_range(hash);
    for (auto it = range.first; it != range.second;) {
      const std::uint32_t other = it->second;
      if (!words_equal(set_words(other), scratch_set_.data(), words_)) {
        ++it;
        continue;
      }
      const IseSlot* theirs = slots(other);
      const std::vector<IseSlot> their_slots(theirs, theirs + m_);
      if (cals_[other] == cals && scratch_ == their_slots) {
        ++counters_.states_merged;
        return true;
      }
      if (cals_[other] <= cals && ise_slots_dominate(their_slots, scratch_)) {
        ++counters_.states_dominated;
        return true;
      }
      if (cals <= cals_[other] && ise_slots_dominate(scratch_, their_slots)) {
        ++counters_.states_dominated;
        dead_[other] = 1;
        it = bucket_.erase(it);
        continue;
      }
      ++it;
    }
    const auto id = static_cast<std::uint32_t>(parent_.size());
    set_pool_.insert(set_pool_.end(), scratch_set_.begin(), scratch_set_.end());
    slot_pool_.insert(slot_pool_.end(), scratch_.begin(), scratch_.end());
    parent_.push_back(parent);
    edge_job_.push_back(static_cast<std::int32_t>(j));
    edge_slot_.push_back(static_cast<std::int32_t>(slot));
    edge_cal_.push_back(cal_start);
    cals_.push_back(cals);
    dead_.push_back(0);
    bucket_.insert({hash, id});
    next_.push_back(id);
    return true;
  }

  /// Dead-state test on the freshly canonicalized scratch_ slots: some
  /// remaining job (j excluded — it was just placed) can run neither in an
  /// existing slot nor in any future calibration. Fast path: the earliest
  /// expiry still allows a fresh calibration for every remaining job.
  [[nodiscard]] bool is_dead(std::size_t placed, Time child_latest) const {
    const Time min_end = scratch_.front().end;
    if (min_end <= child_latest) return false;
    for (const std::size_t q : remaining_) {
      if (q == placed) continue;
      const Job& job = instance_.jobs[q];
      bool hosted = false;
      for (const IseSlot& slot : scratch_) {
        if (fits_slot(job, slot)) {
          hosted = true;
          break;
        }
      }
      if (hosted) continue;
      const auto [lo, hi] = new_cal_range(job);
      if (std::max(lo, min_end) > hi) return true;
    }
    return false;
  }

  /// Energetic dead test, ISE flavor: remaining work due by each deadline D
  /// must fit into the usable slot time before D plus what the remaining
  /// calibration allowance could open,
  ///   sum_{remaining q : d_q <= D} p_q
  ///     <= sum_slots max(0, min(end, D) - free)
  ///        + (cap - cals) * min(T, max(0, D - new_cal_floor)),
  /// since a future calibration starts no earlier than the remaining
  /// new-calibration floor and contributes at most T units before any D.
  /// A pure capacity relaxation (single-calibration containment and the
  /// machine overlap constraint are ignored), so a violation is a proof.
  [[nodiscard]] bool energetic_dead(std::size_t placed, std::int32_t cals,
                                    const RemainingFloors& floors) const {
    const std::uint64_t* words = parent_words_.data();
    const auto allowance = static_cast<Time>(cap_ - cals);
    Time work = 0;
    for (const std::size_t q : by_deadline_) {
      if (q == placed || ((words[q >> 6] >> (q & 63)) & 1)) continue;
      const Job& job = instance_.jobs[q];
      work += job.proc;
      Time capacity =
          allowance * std::min<Time>(instance_.T,
                                     std::max<Time>(0, job.deadline -
                                                           floors.new_cal_floor));
      if (work <= capacity) continue;  // fresh calibrations already suffice
      for (const IseSlot& slot : scratch_) {
        const Time usable = std::min(slot.end, job.deadline) - slot.free;
        if (usable > 0) capacity += usable;
      }
      if (work > capacity) return true;
    }
    return false;
  }

  Schedule reconstruct(std::uint32_t leaf) {
    struct Move {
      std::int32_t job;
      std::int32_t slot;
      Time cal_start;
    };
    std::vector<Move> path;
    for (std::uint32_t id = leaf; parent_[id] != kNone; id = parent_[id]) {
      path.push_back({edge_job_[id], edge_slot_[id], edge_cal_[id]});
    }
    std::reverse(path.begin(), path.end());

    Schedule schedule =
        Schedule::empty_like(instance_, static_cast<int>(m_));
    struct ReplaySlot {
      IseSlot slot;
      int machine;
      bool operator<(const ReplaySlot& o) const noexcept {
        if (slot.end != o.slot.end) return slot.end < o.slot.end;
        if (slot.free != o.slot.free) return slot.free < o.slot.free;
        return machine < o.machine;
      }
    };
    Time floor_newcal = kTimeMax;
    for (const Job& job : instance_.jobs) {
      floor_newcal =
          std::min(floor_newcal, job.release + job.proc - instance_.T);
    }
    std::vector<ReplaySlot> machines(m_);
    for (std::size_t s = 0; s < m_; ++s) {
      machines[s] = {{floor_newcal, floor_newcal}, static_cast<int>(s)};
    }
    std::vector<char> done(n_, 0);
    for (const Move& move : path) {
      const auto j = static_cast<std::size_t>(move.job);
      const Job& job = instance_.jobs[j];
      done[j] = 1;
      ReplaySlot& target = machines[static_cast<std::size_t>(move.slot)];
      if (move.cal_start != kNoNewCal) {
        schedule.calibrations.push_back({target.machine, move.cal_start});
        target.slot.end = move.cal_start + instance_.T;
        target.slot.free = move.cal_start;
      }
      const Time start = std::max(target.slot.free, job.release);
      schedule.jobs.push_back({job.id, target.machine, start});
      target.slot.free = start + job.proc;
      // Re-apply the exact canonicalization the search used, so the next
      // move's slot index addresses the same sorted multiset of values.
      RemainingFloors floors{kTimeMax, kTimeMax};
      Time min_proc = kTimeMax;
      for (std::size_t q = 0; q < n_; ++q) {
        if (done[q]) continue;
        const Job& rest = instance_.jobs[q];
        floors.release_floor = std::min(floors.release_floor, rest.release);
        floors.new_cal_floor = std::min(
            floors.new_cal_floor, rest.release + rest.proc - instance_.T);
        min_proc = std::min(min_proc, rest.proc);
      }
      if (min_proc != kTimeMax) {
        for (ReplaySlot& rs : machines) {
          IseSlot canonical = rs.slot;
          std::vector<IseSlot> one{canonical};
          canonicalize_ise_slots(one, floors, [&](const IseSlot& s) {
            return s.free + min_proc <= s.end;
          });
          rs.slot = one[0];
        }
      }
      std::sort(machines.begin(), machines.end());
    }
    schedule.normalize();
    return schedule;
  }

  const Instance& instance_;
  StateSpaceIseOptions options_;
  std::size_t n_;
  std::size_t m_;
  std::size_t words_;
  std::vector<std::int32_t> twin_prev_;
  std::vector<std::size_t> by_deadline_;
  std::int32_t cap_;
  LimitPoller poller_;
  TraceContext* trace_;

  std::vector<std::uint64_t> set_pool_;
  std::vector<IseSlot> slot_pool_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::int32_t> edge_job_;
  std::vector<std::int32_t> edge_slot_;
  std::vector<Time> edge_cal_;
  std::vector<std::int32_t> cals_;
  std::vector<char> dead_;

  std::unordered_multimap<std::uint64_t, std::uint32_t> bucket_;
  std::vector<std::uint32_t> next_;
  std::vector<std::size_t> remaining_;
  std::vector<std::uint64_t> parent_words_;  ///< expand()'s stable copies
  std::vector<IseSlot> parent_slots_;
  std::vector<IseSlot> scratch_;
  std::vector<std::uint64_t> scratch_set_;
  ExactSearchCounters counters_;
};

}  // namespace

StateSpaceMmResult state_space_mm_feasible(const Instance& instance,
                                           int machines,
                                           std::int64_t state_budget,
                                           const RunLimits& limits,
                                           TraceContext* trace) {
  StateSpaceMmResult result;
  if (instance.empty()) {
    result.feasible = true;
    result.schedule.machines = machines;
    return result;
  }
  MmExplorer explorer(instance, machines, state_budget, limits, trace);
  return explorer.run();
}

StateSpaceIseResult state_space_ise_minimize(
    const Instance& instance, const StateSpaceIseOptions& options) {
  StateSpaceIseResult result;
  if (instance.empty()) {
    result.feasible = true;
    result.schedule = Schedule::empty_like(instance, instance.machines);
    return result;
  }
  IseExplorer explorer(instance, options);
  return explorer.run();
}

}  // namespace calisched

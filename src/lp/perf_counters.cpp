#include "lp/perf_counters.hpp"

#include <atomic>

namespace calisched {
namespace {

/// The process-wide registry. Relaxed ordering throughout: every field is
/// an independent monotone sum, and callers only read deltas around
/// regions they quiesce themselves.
struct Registry {
  std::atomic<std::int64_t> solves{0};
  std::atomic<std::int64_t> pivots{0};
  std::atomic<std::int64_t> etas_applied{0};
  std::atomic<std::int64_t> eta_entries{0};
  std::atomic<std::int64_t> pricing_columns{0};
  std::atomic<std::int64_t> pricing_entries{0};
  std::atomic<std::int64_t> refactorizations{0};
  std::atomic<std::int64_t> workspace_reuses{0};
  std::atomic<std::int64_t> buffer_growths{0};
};

Registry& registry() noexcept {
  static Registry instance;
  return instance;
}

}  // namespace

LpPerfCounters lp_perf_snapshot() noexcept {
  Registry& r = registry();
  LpPerfCounters s;
  s.solves = r.solves.load(std::memory_order_relaxed);
  s.pivots = r.pivots.load(std::memory_order_relaxed);
  s.etas_applied = r.etas_applied.load(std::memory_order_relaxed);
  s.eta_entries = r.eta_entries.load(std::memory_order_relaxed);
  s.pricing_columns = r.pricing_columns.load(std::memory_order_relaxed);
  s.pricing_entries = r.pricing_entries.load(std::memory_order_relaxed);
  s.refactorizations = r.refactorizations.load(std::memory_order_relaxed);
  s.workspace_reuses = r.workspace_reuses.load(std::memory_order_relaxed);
  s.buffer_growths = r.buffer_growths.load(std::memory_order_relaxed);
  return s;
}

void lp_perf_reset() noexcept {
  Registry& r = registry();
  r.solves.store(0, std::memory_order_relaxed);
  r.pivots.store(0, std::memory_order_relaxed);
  r.etas_applied.store(0, std::memory_order_relaxed);
  r.eta_entries.store(0, std::memory_order_relaxed);
  r.pricing_columns.store(0, std::memory_order_relaxed);
  r.pricing_entries.store(0, std::memory_order_relaxed);
  r.refactorizations.store(0, std::memory_order_relaxed);
  r.workspace_reuses.store(0, std::memory_order_relaxed);
  r.buffer_growths.store(0, std::memory_order_relaxed);
}

void lp_perf_accumulate(const LpPerfCounters& delta) noexcept {
  Registry& r = registry();
  r.solves.fetch_add(delta.solves, std::memory_order_relaxed);
  r.pivots.fetch_add(delta.pivots, std::memory_order_relaxed);
  r.etas_applied.fetch_add(delta.etas_applied, std::memory_order_relaxed);
  r.eta_entries.fetch_add(delta.eta_entries, std::memory_order_relaxed);
  r.pricing_columns.fetch_add(delta.pricing_columns, std::memory_order_relaxed);
  r.pricing_entries.fetch_add(delta.pricing_entries, std::memory_order_relaxed);
  r.refactorizations.fetch_add(delta.refactorizations,
                               std::memory_order_relaxed);
  r.workspace_reuses.fetch_add(delta.workspace_reuses,
                               std::memory_order_relaxed);
  r.buffer_growths.fetch_add(delta.buffer_growths, std::memory_order_relaxed);
}

}  // namespace calisched

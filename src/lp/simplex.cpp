#include "lp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "lp/revised_simplex.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace calisched {
namespace {

/// Dense tableau state for one solve.
class Tableau {
 public:
  Tableau(const LpModel& model, const SimplexOptions& options)
      : options_(options),
        poller_(options.limits, /*stride=*/8),
        num_structural_(model.num_variables()) {
    build(model);
  }

  LpSolution solve() {
    LpSolution solution;
    trace_set(options_.trace, "tableau.rows", rows_);
    trace_set(options_.trace, "tableau.columns", cols_);
    // ---- Phase 1: minimize the sum of artificial variables. ----
    if (num_artificial_ > 0) {
      TraceSpan span(options_.trace, "phase1");
      const RunResult phase1 = run(costs1_, /*allow_artificial_entering=*/true,
                                   solution.phase1_pivots);
      span.stop();
      flush_pivot_counters(solution);
      if (phase1 == RunResult::kStopped) {
        solution.status = stop_status();
        return solution;
      }
      if (phase1 == RunResult::kIterationLimit) {
        solution.status = LpStatus::kIterationLimit;
        return solution;
      }
      // Phase-1 objective = -costs1_ rhs cell.
      if (-costs1_[rhs_col()] > options_.feasibility_tol) {
        solution.status = LpStatus::kInfeasible;
        return solution;
      }
      expel_artificials(solution.expel_pivots);
    }
    // ---- Phase 2: minimize the real objective. ----
    TraceSpan phase2_span(options_.trace, "phase2");
    const RunResult phase2 =
        run(costs2_, /*allow_artificial_entering=*/false, solution.phase2_pivots);
    phase2_span.stop();
    flush_pivot_counters(solution);
    switch (phase2) {
      case RunResult::kOptimal: solution.status = LpStatus::kOptimal; break;
      case RunResult::kUnbounded: solution.status = LpStatus::kUnbounded; return solution;
      case RunResult::kIterationLimit:
        solution.status = LpStatus::kIterationLimit;
        return solution;
      case RunResult::kStopped:
        solution.status = stop_status();
        return solution;
    }
    // ---- Extract structural values. ----
    solution.values.assign(static_cast<std::size_t>(num_structural_), 0.0);
    for (int r = 0; r < rows_; ++r) {
      const int col = basis_[static_cast<std::size_t>(r)];
      if (col < num_structural_) {
        solution.values[static_cast<std::size_t>(col)] =
            std::max(0.0, cell(r, rhs_col()));
      }
    }
    solution.objective = -costs2_[rhs_col()];
    return solution;
  }

 private:
  enum class RunResult { kOptimal, kUnbounded, kIterationLimit, kStopped };

  /// LpStatus for a kStopped run (deadline vs cancellation).
  [[nodiscard]] LpStatus stop_status() const noexcept {
    return poller_.status() == SolveStatus::kCancelled ? LpStatus::kCancelled
                                                       : LpStatus::kDeadlineExceeded;
  }

  [[nodiscard]] int rhs_col() const noexcept { return cols_ - 1; }

  [[nodiscard]] double& cell(int row, int col) noexcept {
    return data_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(col)];
  }
  [[nodiscard]] double cell(int row, int col) const noexcept {
    return data_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(col)];
  }

  void build(const LpModel& model) {
    rows_ = model.num_rows();
    // Column layout: [structural | slack+surplus | artificial | rhs].
    int num_slack = 0;
    int num_art = 0;
    for (int r = 0; r < rows_; ++r) {
      const double b = model.rhs(r);
      const RowSense sense = model.sense(r);
      // Effective sense after normalising rhs >= 0.
      const RowSense eff = (b >= 0) ? sense
                           : (sense == RowSense::kLe ? RowSense::kGe
                              : sense == RowSense::kGe ? RowSense::kLe
                                                       : RowSense::kEq);
      if (eff != RowSense::kEq) ++num_slack;
      if (eff != RowSense::kLe) ++num_art;
    }
    slack_base_ = num_structural_;
    artificial_base_ = slack_base_ + num_slack;
    num_artificial_ = num_art;
    cols_ = artificial_base_ + num_art + 1;
    data_.assign(static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_),
                 0.0);
    basis_.assign(static_cast<std::size_t>(rows_), -1);

    int next_slack = slack_base_;
    int next_art = artificial_base_;
    for (int r = 0; r < rows_; ++r) {
      double b = model.rhs(r);
      RowSense sense = model.sense(r);
      double sign = 1.0;
      if (b < 0) {
        sign = -1.0;
        b = -b;
        sense = (sense == RowSense::kLe)   ? RowSense::kGe
                : (sense == RowSense::kGe) ? RowSense::kLe
                                           : RowSense::kEq;
      }
      for (const LpEntry& entry : model.row_entries(r)) {
        cell(r, entry.column) += sign * entry.value;
      }
      cell(r, rhs_col()) = b;
      switch (sense) {
        case RowSense::kLe:
          cell(r, next_slack) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_slack++;
          break;
        case RowSense::kGe:
          cell(r, next_slack++) = -1.0;
          cell(r, next_art) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_art++;
          break;
        case RowSense::kEq:
          cell(r, next_art) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_art++;
          break;
      }
    }

    // Phase-2 reduced-cost row: structural costs (initial basis has cost 0).
    costs2_.assign(static_cast<std::size_t>(cols_), 0.0);
    for (int c = 0; c < num_structural_; ++c) {
      costs2_[static_cast<std::size_t>(c)] = model.cost(c);
    }
    // Phase-1 reduced-cost row: cost 1 on artificials, reduced against the
    // initial basis (subtract each artificial-basic row).
    costs1_.assign(static_cast<std::size_t>(cols_), 0.0);
    for (int c = artificial_base_; c < cols_ - 1; ++c) {
      costs1_[static_cast<std::size_t>(c)] = 1.0;
    }
    for (int r = 0; r < rows_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] >= artificial_base_) {
        for (int c = 0; c < cols_; ++c) {
          costs1_[static_cast<std::size_t>(c)] -= cell(r, c);
        }
      }
    }
  }

  /// One simplex phase over the given cost row. Updates both cost rows so
  /// that phase 2 starts from consistent reduced costs.
  RunResult run(std::vector<double>& active_costs, bool allow_artificial_entering,
                std::int64_t& pivot_count) {
    int stall = 0;
    double last_objective = std::numeric_limits<double>::infinity();
    bool bland = false;
    while (true) {
      if (pivot_count >= options_.max_pivots) return RunResult::kIterationLimit;
      if (poller_.poll() != SolveStatus::kOk) return RunResult::kStopped;
      const int entering = choose_entering(active_costs, allow_artificial_entering, bland);
      if (entering < 0) return RunResult::kOptimal;
      const int leaving = choose_leaving(entering, bland);
      if (leaving < 0) return RunResult::kUnbounded;
      pivot(leaving, entering);
      ++pivot_count;
      const double objective = -active_costs[static_cast<std::size_t>(rhs_col())];
      if (objective < last_objective - 1e-12) {
        stall = 0;
        last_objective = objective;
      } else if (!bland && ++stall >= options_.stall_before_bland) {
        bland = true;  // anti-cycling fallback
        ++bland_activations_;
      }
    }
  }

  [[nodiscard]] int choose_entering(const std::vector<double>& costs,
                                    bool allow_artificial, bool bland) const {
    const int limit = allow_artificial ? cols_ - 1 : artificial_base_;
    int best = -1;
    double best_cost = -options_.reduced_cost_tol;
    for (int c = 0; c < limit; ++c) {
      const double reduced = costs[static_cast<std::size_t>(c)];
      if (reduced < best_cost) {
        if (bland) return c;  // first eligible index
        best_cost = reduced;
        best = c;
      }
    }
    return best;
  }

  [[nodiscard]] int choose_leaving(int entering, bool bland) const {
    int best = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < rows_; ++r) {
      const double coef = cell(r, entering);
      if (coef <= options_.pivot_tol) continue;
      const double ratio = cell(r, rhs_col()) / coef;
      if (ratio < best_ratio - 1e-12) {
        best_ratio = ratio;
        best = r;
      } else if (best >= 0 && ratio < best_ratio + 1e-12 && bland &&
                 basis_[static_cast<std::size_t>(r)] <
                     basis_[static_cast<std::size_t>(best)]) {
        best = r;  // Bland tie-break: smallest basis index leaves
      }
    }
    return best;
  }

  void pivot(int pivot_row, int pivot_col) {
    double* prow = &cell(pivot_row, 0);
    const double inv = 1.0 / prow[pivot_col];
    for (int c = 0; c < cols_; ++c) prow[c] *= inv;
    prow[pivot_col] = 1.0;  // kill roundoff

    const auto eliminate_row = [&](double* row) {
      const double factor = row[pivot_col];
      if (factor == 0.0) return;
      for (int c = 0; c < cols_; ++c) row[c] -= factor * prow[c];
      row[pivot_col] = 0.0;
    };

    const std::size_t work =
        static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
    if (options_.parallel && work > options_.parallel_threshold) {
      ++parallel_pivots_;
      ThreadPool& pool = default_pool();
      const std::size_t chunks = pool.size() * 4;
      const std::size_t chunk_size =
          (static_cast<std::size_t>(rows_) + chunks - 1) / chunks;
      parallel_for(pool, chunks, [&](std::size_t chunk) {
        const std::size_t begin = chunk * chunk_size;
        const std::size_t end =
            std::min(begin + chunk_size, static_cast<std::size_t>(rows_));
        for (std::size_t r = begin; r < end; ++r) {
          if (static_cast<int>(r) == pivot_row) continue;
          eliminate_row(&cell(static_cast<int>(r), 0));
        }
      });
    } else {
      ++serial_pivots_;
      for (int r = 0; r < rows_; ++r) {
        if (r == pivot_row) continue;
        eliminate_row(&cell(r, 0));
      }
    }
    eliminate_row(costs1_.data());
    eliminate_row(costs2_.data());
    basis_[static_cast<std::size_t>(pivot_row)] = pivot_col;
  }

  /// After phase 1, pivot remaining zero-valued artificial basics out on any
  /// nonzero non-artificial column; rows with no such column are redundant
  /// (all-zero) and harmless. Expel pivots are counted separately from the
  /// phase counts so that serial + parallel == phase1 + phase2 + expel.
  void expel_artificials(std::int64_t& expel_pivots) {
    for (int r = 0; r < rows_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] < artificial_base_) continue;
      int pivot_col = -1;
      double best = options_.pivot_tol;
      for (int c = 0; c < artificial_base_; ++c) {
        const double magnitude = std::fabs(cell(r, c));
        if (magnitude > best) {
          best = magnitude;
          pivot_col = c;
        }
      }
      if (pivot_col >= 0) {
        pivot(r, pivot_col);
        ++expel_pivots;
      }
    }
  }

  /// Mirrors the cumulative pivot accounting into the trace sink; called
  /// after each phase so an iteration-limited solve still reports.
  void flush_pivot_counters(const LpSolution& solution) {
    TraceContext* trace = options_.trace;
    if (!trace) return;
    trace->set("pivots.phase1", solution.phase1_pivots);
    trace->set("pivots.phase2", solution.phase2_pivots);
    trace->set("pivots.expel", solution.expel_pivots);
    trace->set("pivots.parallel", parallel_pivots_);
    trace->set("pivots.serial", serial_pivots_);
    trace->set("bland.activations", bland_activations_);
  }

  SimplexOptions options_;
  LimitPoller poller_;
  std::int64_t parallel_pivots_ = 0;
  std::int64_t serial_pivots_ = 0;
  std::int64_t bland_activations_ = 0;
  int num_structural_ = 0;
  int slack_base_ = 0;
  int artificial_base_ = 0;
  int num_artificial_ = 0;
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
  std::vector<double> costs1_;
  std::vector<double> costs2_;
  std::vector<int> basis_;
};

}  // namespace

SolveStatus lp_status_to_solve(LpStatus status) noexcept {
  switch (status) {
    case LpStatus::kOptimal: return SolveStatus::kOk;
    case LpStatus::kInfeasible: return SolveStatus::kInfeasible;
    case LpStatus::kUnbounded: return SolveStatus::kNumericalFailure;
    case LpStatus::kIterationLimit: return SolveStatus::kLimitExceeded;
    case LpStatus::kDeadlineExceeded: return SolveStatus::kDeadlineExceeded;
    case LpStatus::kCancelled: return SolveStatus::kCancelled;
  }
  return SolveStatus::kNumericalFailure;
}

LpSolution solve_lp(const LpModel& model, const SimplexOptions& options) {
  // Already over the limit: skip even the tableau/CSC build.
  const SolveStatus entry = options.limits.check();
  if (entry != SolveStatus::kOk) {
    LpSolution solution;
    solution.status = entry == SolveStatus::kCancelled
                          ? LpStatus::kCancelled
                          : LpStatus::kDeadlineExceeded;
    return solution;
  }
  trace_note(options.trace, "lp.engine",
             options.engine == LpEngine::kRevised ? "revised" : "dense");
  if (options.engine == LpEngine::kRevised) {
    return solve_lp_revised(model, options);
  }
  Tableau tableau(model, options);
  return tableau.solve();
}

}  // namespace calisched

// Sparse building blocks for the revised simplex engine.
//
//  * CscMatrix — compressed-sparse-column store of the standard-form
//    constraint matrix [structural | slack/surplus | artificial]. The
//    revised simplex never forms a tableau; every pivot touches only the
//    stored nonzeros of the columns involved.
//  * EtaFile — the basis inverse in product form (PFI): B^{-1} is held as
//    a sequence of eta matrices, one appended per pivot, each differing
//    from the identity in a single column. FTRAN applies them in order to
//    a column (B^{-1} a), BTRAN applies their transposes in reverse to a
//    row (y' B^{-1}). The file is rebuilt from the basis columns during
//    periodic refactorization, which bounds its length and resets
//    accumulated roundoff.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace calisched {

/// Compressed-sparse-column matrix. Columns are built left to right via
/// begin_column()/push(); `starts` has one extra trailing entry so column
/// c's nonzeros live in [starts[c], starts[c+1]).
class CscMatrix {
 public:
  CscMatrix() { starts_.push_back(0); }

  void reserve(int columns, std::size_t nonzeros) {
    starts_.reserve(static_cast<std::size_t>(columns) + 1);
    rows_.reserve(nonzeros);
    values_.reserve(nonzeros);
  }

  /// Drops every column but keeps the allocated buffers, so a rebuild into
  /// the same matrix (workspace reuse across solves) allocates nothing once
  /// the buffers have grown to the family's working size.
  void clear() {
    starts_.clear();
    starts_.push_back(0);
    rows_.clear();
    values_.clear();
  }

  /// Opens the next column; returns its index.
  int begin_column() {
    starts_.push_back(starts_.back());
    return num_columns() - 1;
  }

  /// Appends a nonzero to the most recently opened column.
  void push(int row, double value) {
    rows_.push_back(row);
    values_.push_back(value);
    ++starts_.back();
  }

  [[nodiscard]] int num_columns() const noexcept {
    return static_cast<int>(starts_.size()) - 1;
  }
  [[nodiscard]] std::size_t num_nonzeros() const noexcept {
    return values_.size();
  }
  [[nodiscard]] std::size_t column_begin(int column) const noexcept {
    return starts_[static_cast<std::size_t>(column)];
  }
  [[nodiscard]] std::size_t column_end(int column) const noexcept {
    return starts_[static_cast<std::size_t>(column) + 1];
  }
  [[nodiscard]] std::size_t column_size(int column) const noexcept {
    return column_end(column) - column_begin(column);
  }
  [[nodiscard]] int row(std::size_t k) const noexcept { return rows_[k]; }
  [[nodiscard]] double value(std::size_t k) const noexcept { return values_[k]; }

  /// Scatters column `column` into the dense vector `out` (assumed zeroed
  /// on the column's rows beforehand).
  void scatter(int column, std::vector<double>& out) const {
    for (std::size_t k = column_begin(column); k < column_end(column); ++k) {
      out[static_cast<std::size_t>(rows_[k])] += values_[k];
    }
  }

  /// Dot product of column `column` with a dense vector.
  [[nodiscard]] double dot(int column, const std::vector<double>& dense) const {
    double sum = 0.0;
    for (std::size_t k = column_begin(column); k < column_end(column); ++k) {
      sum += values_[k] * dense[static_cast<std::size_t>(rows_[k])];
    }
    return sum;
  }

  /// Dots every column in [lo, hi) with `dense`, invoking fn(column, dot)
  /// unless skip(column) is true. The column range is contiguous in the
  /// nonzero pool, so this is one sequential scan — the pricing loop's
  /// cache behaviour depends on it (per-column dot() calls re-derive
  /// bounds and defeat prefetching).
  template <typename Skip, typename Fn>
  void dot_range(int lo, int hi, const std::vector<double>& dense, Skip&& skip,
                 Fn&& fn) const {
    std::size_t k = column_begin(lo);
    for (int c = lo; c < hi; ++c) {
      const std::size_t end = column_end(c);
      if (!skip(c)) {
        double sum = 0.0;
        for (; k < end; ++k) {
          sum += values_[k] * dense[static_cast<std::size_t>(rows_[k])];
        }
        fn(c, sum);
      }
      k = end;
    }
  }

 private:
  std::vector<std::size_t> starts_;
  std::vector<int> rows_;
  std::vector<double> values_;
};

/// Product-form-of-the-inverse basis: a flat pool of eta nonzeros plus one
/// record per eta (pivot row, pivot value, off-pivot slice).
class EtaFile {
 public:
  void clear() {
    etas_.clear();
    rows_.clear();
    values_.clear();
  }

  /// Appends the eta derived from pivoting the FTRANed column `w` (dense,
  /// length = row count) on `pivot_row`. `w[pivot_row]` must be nonzero.
  void append(int pivot_row, const std::vector<double>& w);

  /// Sparse append: opens an eta with the given pivot, then push() adds its
  /// off-pivot nonzeros. Used by refactorization for columns known to need
  /// no elimination (their FTRAN through the file so far is a no-op).
  void begin_eta(int pivot_row, double pivot_value) {
    etas_.push_back(
        Eta{pivot_row, 1.0 / pivot_value, values_.size(), values_.size()});
  }
  void push(int row, double value) {
    rows_.push_back(row);
    values_.push_back(value);
    ++etas_.back().end;
  }

  /// v := B^{-1} v  (apply etas oldest-first).
  void ftran(std::vector<double>& v) const;

  /// ftran() over a mostly-zero dense `v` whose nonzero positions are
  /// listed in `touched`; rows that become nonzero are appended to
  /// `touched`, so callers can gather the result without scanning the full
  /// vector. A cancelled-to-zero row may remain listed (and a refilled row
  /// listed twice); callers gathering results zero each row as they visit
  /// it, which both dedupes and restores the all-zero scratch invariant.
  void ftran_tracked(std::vector<double>& v, std::vector<int>& touched) const;

  /// ftran_tracked() for files whose etas have pairwise-distinct pivot
  /// rows (refactorization builds). `eta_of_row` maps a row to the index
  /// of the eta pivoted on it (-1 if none); with it, only the etas a
  /// nonzero can actually fire are visited (via a min-heap over eta
  /// indices), so the cost is proportional to the fill produced, not the
  /// file length. Refactorization relies on this to stay near-linear in
  /// basis nonzeros.
  void ftran_indexed(std::vector<double>& v, std::vector<int>& touched,
                     const std::vector<int>& eta_of_row) const;

  /// y := y B^{-1}  (apply eta transposes newest-first).
  void btran(std::vector<double>& y) const;

  [[nodiscard]] std::size_t size() const noexcept { return etas_.size(); }
  [[nodiscard]] std::size_t num_nonzeros() const noexcept {
    return values_.size() + etas_.size();  // off-pivot entries + pivots
  }

 private:
  struct Eta {
    int pivot_row;
    /// 1 / w[pivot_row] at append time. Stored reciprocal so FTRAN/BTRAN
    /// multiply instead of divide — the file is applied once per simplex
    /// iteration, and a division per eta would dominate both transforms.
    double pivot_recip;
    std::size_t begin, end;  ///< off-pivot slice into rows_/values_
  };

  std::vector<Eta> etas_;
  std::vector<int> rows_;
  std::vector<double> values_;
};

}  // namespace calisched

// Sparse building blocks for the revised simplex engine.
//
//  * CscMatrix — compressed-sparse-column store of the standard-form
//    constraint matrix [structural | slack/surplus | artificial]. The
//    revised simplex never forms a tableau; every pivot touches only the
//    stored nonzeros of the columns involved.
//  * EtaFile — the basis inverse in product form (PFI): B^{-1} is held as
//    a sequence of eta matrices, one appended per pivot, each differing
//    from the identity in a single column. FTRAN applies them in order to
//    a column (B^{-1} a), BTRAN applies their transposes in reverse to a
//    row (y' B^{-1}). The file is rebuilt from the basis columns during
//    periodic refactorization, which bounds its length and resets
//    accumulated roundoff.
//
// Memory layout: both containers are structure-of-arrays over flat pools.
// The eta file keeps pivot rows, pivot reciprocals, and a starts array in
// three parallel vectors (one entry per eta) over a shared off-pivot
// nonzero pool, so FTRAN/BTRAN walk four contiguous streams front to back
// instead of chasing per-eta records. Gather-dot inner loops are unrolled
// four ways; the accumulator split reassociates the sum, which both
// engines' tolerances absorb (the dense oracle differs in operation order
// anyway). Each kernel counts the etas it fired and the entries it
// streamed into mutable tallies (take_stats()), feeding the process-wide
// LpPerfCounters without touching shared cache lines mid-solve.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace calisched {

/// Work tallies drained by the engine once per solve (see
/// lp/perf_counters.hpp for the process-wide aggregate they feed).
struct KernelStats {
  std::int64_t fired = 0;    ///< eta applications / columns dotted
  std::int64_t entries = 0;  ///< nonzero (value, row) pairs streamed
};

/// Compressed-sparse-column matrix. Columns are built left to right via
/// begin_column()/push() — or in bulk via append_sized_columns() when the
/// caller counting-sorts entries itself; `starts` has one extra trailing
/// entry so column c's nonzeros live in [starts[c], starts[c+1]).
class CscMatrix {
 public:
  CscMatrix() { starts_.push_back(0); }

  void reserve(int columns, std::size_t nonzeros) {
    starts_.reserve(static_cast<std::size_t>(columns) + 1);
    rows_.reserve(nonzeros);
    values_.reserve(nonzeros);
  }

  /// Drops every column but keeps the allocated buffers, so a rebuild into
  /// the same matrix (workspace reuse across solves) allocates nothing once
  /// the buffers have grown to the family's working size.
  void clear() {
    starts_.clear();
    starts_.push_back(0);
    rows_.clear();
    values_.clear();
  }

  /// Opens the next column; returns its index.
  int begin_column() {
    starts_.push_back(starts_.back());
    return num_columns() - 1;
  }

  /// Appends a nonzero to the most recently opened column.
  void push(int row, double value) {
    rows_.push_back(row);
    values_.push_back(value);
    ++starts_.back();
  }

  /// Appends `count` columns at once, column c sized sizes[c], entries
  /// uninitialized — the counting-sort bulk build: the caller scatters
  /// (row, value) pairs into place through column_rows_mut()/
  /// column_values_mut() instead of growing one column at a time.
  void append_sized_columns(const int* sizes, int count) {
    std::size_t total = values_.size();
    for (int c = 0; c < count; ++c) {
      total += static_cast<std::size_t>(sizes[c]);
      starts_.push_back(total);
    }
    rows_.resize(total);
    values_.resize(total);
  }
  [[nodiscard]] int* column_rows_mut(int column) noexcept {
    return rows_.data() + column_begin(column);
  }
  [[nodiscard]] double* column_values_mut(int column) noexcept {
    return values_.data() + column_begin(column);
  }

  [[nodiscard]] int num_columns() const noexcept {
    return static_cast<int>(starts_.size()) - 1;
  }
  [[nodiscard]] std::size_t num_nonzeros() const noexcept {
    return values_.size();
  }
  [[nodiscard]] std::size_t column_begin(int column) const noexcept {
    return starts_[static_cast<std::size_t>(column)];
  }
  [[nodiscard]] std::size_t column_end(int column) const noexcept {
    return starts_[static_cast<std::size_t>(column) + 1];
  }
  [[nodiscard]] std::size_t column_size(int column) const noexcept {
    return column_end(column) - column_begin(column);
  }
  [[nodiscard]] int row(std::size_t k) const noexcept { return rows_[k]; }
  [[nodiscard]] double value(std::size_t k) const noexcept { return values_[k]; }

  /// Bytes held across all pools (capacity, not size) — the workspace
  /// growth detector sums these to prove reused solves stopped allocating.
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return starts_.capacity() * sizeof(std::size_t) +
           rows_.capacity() * sizeof(int) +
           values_.capacity() * sizeof(double);
  }

  /// Scatters column `column` into the dense vector `out` (assumed zeroed
  /// on the column's rows beforehand).
  void scatter(int column, std::vector<double>& out) const {
    for (std::size_t k = column_begin(column); k < column_end(column); ++k) {
      out[static_cast<std::size_t>(rows_[k])] += values_[k];
    }
  }

  /// Dot product of column `column` with a dense vector.
  [[nodiscard]] double dot(int column, const std::vector<double>& dense) const {
    const std::size_t begin = column_begin(column);
    const std::size_t end = column_end(column);
    stats_.fired += 1;
    stats_.entries += static_cast<std::int64_t>(end - begin);
    return gather_dot(begin, end, dense.data());
  }

  /// Dots every column in [lo, hi) with `dense`, invoking fn(column, dot)
  /// unless skip(column) is true. The column range is contiguous in the
  /// nonzero pool, so this is one sequential scan — the pricing loop's
  /// cache behaviour depends on it (per-column dot() calls re-derive
  /// bounds and defeat prefetching).
  template <typename Skip, typename Fn>
  void dot_range(int lo, int hi, const std::vector<double>& dense, Skip&& skip,
                 Fn&& fn) const {
    const double* const d = dense.data();
    std::size_t k = column_begin(lo);
    std::int64_t fired = 0;
    std::int64_t entries = 0;
    for (int c = lo; c < hi; ++c) {
      const std::size_t end = column_end(c);
      if (!skip(c)) {
        ++fired;
        entries += static_cast<std::int64_t>(end - k);
        fn(c, gather_dot(k, end, d));
      }
      k = end;
    }
    stats_.fired += fired;
    stats_.entries += entries;
  }

  /// Returns and zeroes the kernel tallies accumulated since the last take.
  [[nodiscard]] KernelStats take_stats() const noexcept {
    const KernelStats out = stats_;
    stats_ = KernelStats{};
    return out;
  }

 private:
  /// sum(values[k] * dense[rows[k]]) over [begin, end): the shared
  /// gather-dot kernel, four independent accumulators for ILP on the
  /// gather-limited loads (reassociates the sum; see file comment).
  [[nodiscard]] double gather_dot(std::size_t begin, std::size_t end,
                                  const double* dense) const {
    const int* const rows = rows_.data();
    const double* const values = values_.data();
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t k = begin;
    for (; k + 4 <= end; k += 4) {
      s0 += values[k] * dense[static_cast<std::size_t>(rows[k])];
      s1 += values[k + 1] * dense[static_cast<std::size_t>(rows[k + 1])];
      s2 += values[k + 2] * dense[static_cast<std::size_t>(rows[k + 2])];
      s3 += values[k + 3] * dense[static_cast<std::size_t>(rows[k + 3])];
    }
    for (; k < end; ++k) {
      s0 += values[k] * dense[static_cast<std::size_t>(rows[k])];
    }
    return (s0 + s1) + (s2 + s3);
  }

  std::vector<std::size_t> starts_;
  std::vector<int> rows_;
  std::vector<double> values_;
  mutable KernelStats stats_;
};

/// Product-form-of-the-inverse basis. Structure-of-arrays: eta e's pivot
/// row/reciprocal live at index e of two parallel vectors and its
/// off-pivot slice at [starts_[e], starts_[e+1]) of a shared nonzero pool,
/// so applying the file is a front-to-back (or back-to-front) walk over
/// contiguous streams.
class EtaFile {
 public:
  EtaFile() { starts_.push_back(0); }

  void clear() {
    pivot_rows_.clear();
    pivot_recips_.clear();
    starts_.clear();
    starts_.push_back(0);
    rows_.clear();
    values_.clear();
  }

  /// Appends the eta derived from pivoting the FTRANed column `w` (dense,
  /// length = row count) on `pivot_row`. `w[pivot_row]` must be nonzero.
  void append(int pivot_row, const std::vector<double>& w);

  /// Sparse append: opens an eta with the given pivot, then push() adds its
  /// off-pivot nonzeros. Used by refactorization for columns known to need
  /// no elimination (their FTRAN through the file so far is a no-op).
  void begin_eta(int pivot_row, double pivot_value) {
    pivot_rows_.push_back(pivot_row);
    pivot_recips_.push_back(1.0 / pivot_value);
    starts_.push_back(values_.size());
  }
  void push(int row, double value) {
    rows_.push_back(row);
    values_.push_back(value);
    ++starts_.back();
  }

  /// v := B^{-1} v  (apply etas oldest-first).
  void ftran(std::vector<double>& v) const;

  /// ftran() over a mostly-zero dense `v` whose nonzero positions are
  /// listed in `touched`; rows that become nonzero are appended to
  /// `touched`, so callers can gather the result without scanning the full
  /// vector. A cancelled-to-zero row may remain listed (and a refilled row
  /// listed twice); callers gathering results zero each row as they visit
  /// it, which both dedupes and restores the all-zero scratch invariant.
  void ftran_tracked(std::vector<double>& v, std::vector<int>& touched) const;

  /// ftran_tracked() for files whose etas have pairwise-distinct pivot
  /// rows (refactorization builds). `eta_of_row` maps a row to the index
  /// of the eta pivoted on it (-1 if none); with it, only the etas a
  /// nonzero can actually fire are visited (via a min-heap over eta
  /// indices), so the cost is proportional to the fill produced, not the
  /// file length. Refactorization relies on this to stay near-linear in
  /// basis nonzeros. `heap` is caller-owned scratch for the pending-eta
  /// min-heap (contents ignored on entry, unspecified on exit): the call
  /// runs once per basis column per refactorization, and an internal
  /// priority_queue would pay one heap allocation each time.
  void ftran_indexed(std::vector<double>& v, std::vector<int>& touched,
                     const std::vector<int>& eta_of_row,
                     std::vector<int>& heap) const;

  /// y := y B^{-1}  (apply eta transposes newest-first).
  void btran(std::vector<double>& y) const;

  [[nodiscard]] std::size_t size() const noexcept { return pivot_rows_.size(); }
  [[nodiscard]] std::size_t num_nonzeros() const noexcept {
    return values_.size() + pivot_rows_.size();  // off-pivot entries + pivots
  }

  /// Bytes held across all pools (capacity, not size); see
  /// CscMatrix::capacity_bytes().
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return pivot_rows_.capacity() * sizeof(int) +
           pivot_recips_.capacity() * sizeof(double) +
           starts_.capacity() * sizeof(std::size_t) +
           rows_.capacity() * sizeof(int) +
           values_.capacity() * sizeof(double);
  }

  /// Returns and zeroes the kernel tallies accumulated since the last take.
  [[nodiscard]] KernelStats take_stats() const noexcept {
    const KernelStats out = stats_;
    stats_ = KernelStats{};
    return out;
  }

 private:
  // Parallel per-eta records; starts_ carries one extra trailing entry so
  // eta e's off-pivot slice is [starts_[e], starts_[e+1]). Reciprocals are
  // stored (not pivots) so FTRAN/BTRAN multiply instead of divide — the
  // file is applied once per simplex iteration, and a division per eta
  // would dominate both transforms.
  std::vector<int> pivot_rows_;
  std::vector<double> pivot_recips_;
  std::vector<std::size_t> starts_;
  std::vector<int> rows_;
  std::vector<double> values_;
  mutable KernelStats stats_;
};

}  // namespace calisched

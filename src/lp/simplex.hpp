// LP solver front end: engine switch + the dense two-phase tableau.
//
// Two engines solve the same model type behind one solve_lp() call:
//
//  * kRevised (default) — sparse revised simplex with presolve, eta-file
//    basis (product form of the inverse, periodic refactorization), and
//    partial pricing; see lp/revised_simplex.hpp. This is the engine that
//    scales the TISE relaxation past toy sizes.
//  * kDenseTableau — the original two-phase dense tableau, kept as the
//    reference oracle for differential testing and for tiny models where
//    dense row operations are cache-friendly and auto-vectorize.
//
// Shared semantics (both engines):
//  * Phase 1 minimizes the sum of artificial variables to find a basic
//    feasible point; > tolerance at optimum means infeasible.
//  * Pricing is Dantzig (most negative reduced cost; the revised engine
//    restricts the scan to partial-pricing sections); after a configurable
//    number of non-improving pivots the solver switches to Bland's rule,
//    which guarantees termination in the presence of degeneracy.
//  * Large dense tableaus eliminate rows in parallel through the shared
//    thread pool; each worker owns disjoint rows, so no synchronisation is
//    needed inside a pivot. (The revised engine's pivots are too cheap to
//    parallelize.)
#pragma once

#include <cstdint>
#include <vector>

#include "lp/model.hpp"
#include "runtime/limits.hpp"

namespace calisched {

class TraceContext;
struct WarmStart;        // revised engine starting basis (revised_simplex.hpp)
class SimplexWorkspace;  // revised engine scratch arena (revised_simplex.hpp)

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kDeadlineExceeded,  ///< RunLimits deadline expired mid-solve
  kCancelled,         ///< RunLimits cancel token fired mid-solve
};

/// Maps an LP outcome onto the shared solve-status taxonomy (kUnbounded
/// becomes kNumericalFailure: the models this codebase builds are bounded,
/// so an unbounded verdict signals a construction bug or roundoff).
[[nodiscard]] SolveStatus lp_status_to_solve(LpStatus status) noexcept;

/// Which simplex implementation solve_lp runs.
enum class LpEngine {
  kDenseTableau,  ///< dense two-phase tableau (reference oracle)
  kRevised,       ///< sparse revised simplex (presolve + eta file)
};

struct SimplexOptions {
  LpEngine engine = LpEngine::kRevised;
  double feasibility_tol = 1e-7;   ///< constraint / phase-1 feasibility
  double pivot_tol = 1e-9;         ///< smallest acceptable pivot magnitude
  double reduced_cost_tol = 1e-9;  ///< optimality threshold
  std::int64_t max_pivots = 2'000'000;
  int stall_before_bland = 256;    ///< non-improving pivots before Bland
  bool parallel = true;            ///< parallel row elimination when large
  /// Tableau cell count above which pivots eliminate rows in parallel
  /// (dense engine only).
  std::size_t parallel_threshold = std::size_t{1} << 21;

  // --- revised engine ---------------------------------------------------
  bool presolve = true;            ///< run the presolve reductions
  /// Pivots since the last basis refactorization that trigger the next
  /// one. The two-sided triangular peel makes a rebuild near-linear in the
  /// basis nonzeros, but each rebuild still FTRANs every basis column, so
  /// the sweet spot sits well above the eta-growth break-even; 64 won a
  /// 4x4x4 parameter sweep on the TISE family.
  int refactor_interval = 64;
  /// Partial pricing: cap on the candidate list carried between pivots
  /// (each pivot re-prices the survivors; a full sweep still precedes any
  /// "optimal"). Small is fine — the list only seeds the next pivot.
  int pricing_candidates = 8;
  /// Partial pricing: columns examined per scan section. Tuned over the
  /// E12 TISE family (n = 6..32, independent seeds): 192 beat 128/160/
  /// 224/256 on total wall clock, mostly through luckier entering-column
  /// choices (fewer pivots on the larger instances); the scan cost itself
  /// is nearly flat across that range.
  int pricing_section = 192;

  /// Optional in/out starting basis (revised engine only; the dense oracle
  /// ignores it, so differential runs stay cold-start comparable). On entry
  /// a valid basis whose shape matches the presolved model is installed and
  /// Phase 1 is skipped when it refactorizes cleanly and is primal
  /// feasible; otherwise the solve silently falls back to a cold start. On
  /// an optimal exit the final basis is written back. Not owned; a
  /// WarmStart must not be shared by concurrent solves.
  WarmStart* warm_start = nullptr;
  /// Optional scratch arena (revised engine only). When null (the
  /// default) the solve reuses a per-thread workspace, so sequences of
  /// solves on one thread — batch workers, service workers, the pipelines'
  /// per-interval LPs — stop re-allocating the matrix, eta file, and work
  /// vectors with no call-site opt-in. Set it to direct reuse explicitly
  /// (or to a fresh workspace for a deliberately cold solve). Not owned; a
  /// workspace must not be shared by concurrent solves. Results are
  /// bit-identical whichever workspace a solve runs in.
  SimplexWorkspace* workspace = nullptr;

  /// Optional telemetry sink: phase spans, pivot counters, model shape,
  /// presolve reductions, and refactorization stats land here. Not owned.
  TraceContext* trace = nullptr;

  /// Wall-clock deadline + cancellation, polled once per pivot (both
  /// engines). A stopped solve returns kDeadlineExceeded / kCancelled.
  RunLimits limits;
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;  ///< one per model variable (phase variables excluded)
  std::int64_t phase1_pivots = 0;
  std::int64_t phase2_pivots = 0;
  /// Pivots spent expelling zero-valued artificial basics after phase 1;
  /// not part of either phase count.
  std::int64_t expel_pivots = 0;
  /// True when a caller-provided WarmStart basis was accepted and Phase 1
  /// was skipped (revised engine only).
  bool warm_started = false;
};

/// Solves min c'x s.t. model rows, x >= 0, with the engine selected in
/// `options` (sparse revised simplex by default).
[[nodiscard]] LpSolution solve_lp(const LpModel& model,
                                  const SimplexOptions& options = {});

}  // namespace calisched

// Two-phase primal simplex on a dense tableau.
//
// This is the LP engine behind the TISE relaxation (Section 3 of the
// paper). Design notes:
//
//  * Dense tableau. The TISE LP at the instance sizes the exact-bound
//    experiments use (hundreds of rows/columns) fits comfortably; dense
//    row operations are cache-friendly and auto-vectorize.
//  * Phase 1 minimizes the sum of artificial variables to find a basic
//    feasible point; > tolerance at optimum means infeasible.
//  * Pricing is Dantzig (most negative reduced cost); after a configurable
//    number of non-improving pivots the solver switches to Bland's rule,
//    which guarantees termination in the presence of degeneracy.
//  * Large tableaus eliminate rows in parallel through the shared thread
//    pool; each worker owns disjoint rows, so no synchronisation is needed
//    inside a pivot.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/model.hpp"

namespace calisched {

class TraceContext;

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct SimplexOptions {
  double feasibility_tol = 1e-7;   ///< constraint / phase-1 feasibility
  double pivot_tol = 1e-9;         ///< smallest acceptable pivot magnitude
  double reduced_cost_tol = 1e-9;  ///< optimality threshold
  std::int64_t max_pivots = 2'000'000;
  int stall_before_bland = 256;    ///< non-improving pivots before Bland
  bool parallel = true;            ///< parallel row elimination when large
  /// Tableau cell count above which pivots eliminate rows in parallel.
  std::size_t parallel_threshold = std::size_t{1} << 21;
  /// Optional telemetry sink: phase spans, pivot counters, tableau shape,
  /// and the parallel-elimination hit rate land here. Not owned.
  TraceContext* trace = nullptr;
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;  ///< one per model variable (phase variables excluded)
  std::int64_t phase1_pivots = 0;
  std::int64_t phase2_pivots = 0;
};

/// Solves min c'x s.t. model rows, x >= 0.
[[nodiscard]] LpSolution solve_lp(const LpModel& model,
                                  const SimplexOptions& options = {});

}  // namespace calisched

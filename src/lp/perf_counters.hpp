// Process-wide hardware-sympathy counters for the LP engine.
//
// Wall-clock alone cannot keep a performance claim honest across machines:
// E12's "revised is Nx dense" number moves with clock speed and cache
// size, while the *work* the engine did — pivots taken, eta entries
// streamed, pricing nonzeros scanned, buffers grown — is a deterministic
// function of the model and the code. This layer counts that work so the
// benches can report reproducible counters next to the (advisory) rates
// derived from them, and so the sanitizer jobs can assert structural
// properties ("a reused workspace stops allocating") directly.
//
// Design: the engine accumulates into plain per-solve locals and flushes
// one relaxed-atomic add per counter when the solve is torn down, so the
// pivot loop never touches shared cache lines. Snapshots are not a
// consistent cut across concurrent solves — callers measure deltas around
// regions they control (benches, tests), where solves complete before the
// second snapshot.
#pragma once

#include <cstdint>

namespace calisched {

/// One snapshot (or delta of two snapshots) of the cumulative counters.
struct LpPerfCounters {
  std::int64_t solves = 0;           ///< revised-engine solves completed
  std::int64_t pivots = 0;           ///< basis changes (phases + expel)
  std::int64_t etas_applied = 0;     ///< eta matrices fired (FTRAN + BTRAN)
  std::int64_t eta_entries = 0;      ///< off-pivot eta nonzeros streamed
  std::int64_t pricing_columns = 0;  ///< columns whose reduced cost was formed
  std::int64_t pricing_entries = 0;  ///< matrix nonzeros streamed by pricing
  std::int64_t refactorizations = 0; ///< basis rebuilds (incl. warm installs)
  std::int64_t workspace_reuses = 0; ///< solves that arrived at a warm arena
  std::int64_t buffer_growths = 0;   ///< solves that grew any arena buffer

  /// Estimated bytes streamed through the sparse kernels: every counted
  /// entry is one (value, row index) pair read from the nonzero pools.
  [[nodiscard]] std::int64_t bytes_streamed() const noexcept {
    constexpr std::int64_t kEntryBytes =
        static_cast<std::int64_t>(sizeof(double) + sizeof(int));
    return (eta_entries + pricing_entries) * kEntryBytes;
  }

  [[nodiscard]] LpPerfCounters operator-(const LpPerfCounters& o) const noexcept {
    LpPerfCounters d;
    d.solves = solves - o.solves;
    d.pivots = pivots - o.pivots;
    d.etas_applied = etas_applied - o.etas_applied;
    d.eta_entries = eta_entries - o.eta_entries;
    d.pricing_columns = pricing_columns - o.pricing_columns;
    d.pricing_entries = pricing_entries - o.pricing_entries;
    d.refactorizations = refactorizations - o.refactorizations;
    d.workspace_reuses = workspace_reuses - o.workspace_reuses;
    d.buffer_growths = buffer_growths - o.buffer_growths;
    return d;
  }
};

/// Current cumulative totals since process start (or the last reset).
[[nodiscard]] LpPerfCounters lp_perf_snapshot() noexcept;

/// Zeroes the totals. Benches/tests only; racing a reset against live
/// solves yields torn deltas, so quiesce first.
void lp_perf_reset() noexcept;

/// Engine-side flush: adds `delta` to the process totals (one relaxed
/// atomic add per field). Not for external callers.
void lp_perf_accumulate(const LpPerfCounters& delta) noexcept;

}  // namespace calisched

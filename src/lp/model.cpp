#include "lp/model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace calisched {

int LpModel::add_variable(std::string name, double cost) {
  costs_.push_back(cost);
  variable_names_.push_back(std::move(name));
  return static_cast<int>(costs_.size()) - 1;
}

int LpModel::add_row(std::string name, RowSense sense, double rhs) {
  senses_.push_back(sense);
  rhs_.push_back(rhs);
  row_names_.push_back(std::move(name));
  rows_.emplace_back();
  return static_cast<int>(senses_.size()) - 1;
}

void LpModel::add_coefficient(int row, int column, double value) {
  assert(row >= 0 && row < num_rows());
  assert(column >= 0 && column < num_variables());
  rows_[static_cast<std::size_t>(row)].push_back({column, value});
}

std::size_t LpModel::num_nonzeros() const noexcept {
  std::size_t total = 0;
  for (const auto& row : rows_) total += row.size();
  return total;
}

double LpModel::max_violation(const std::vector<double>& x) const {
  assert(static_cast<int>(x.size()) == num_variables());
  double worst = 0.0;
  for (double value : x) worst = std::max(worst, -value);  // x >= 0
  for (int r = 0; r < num_rows(); ++r) {
    double lhs = 0.0;
    for (const LpEntry& entry : rows_[static_cast<std::size_t>(r)]) {
      lhs += entry.value * x[static_cast<std::size_t>(entry.column)];
    }
    const double b = rhs_[static_cast<std::size_t>(r)];
    switch (senses_[static_cast<std::size_t>(r)]) {
      case RowSense::kLe: worst = std::max(worst, lhs - b); break;
      case RowSense::kGe: worst = std::max(worst, b - lhs); break;
      case RowSense::kEq: worst = std::max(worst, std::fabs(lhs - b)); break;
    }
  }
  return worst;
}

double LpModel::objective_value(const std::vector<double>& x) const {
  double total = 0.0;
  for (int c = 0; c < num_variables(); ++c) {
    total += costs_[static_cast<std::size_t>(c)] * x[static_cast<std::size_t>(c)];
  }
  return total;
}

}  // namespace calisched

// Sparse revised simplex with presolve and partial pricing.
//
// The dense tableau (simplex.cpp) re-eliminates the whole rows x cols
// tableau on every pivot; for the TISE relaxation — whose constraint
// matrix has a handful of nonzeros per column — almost all of that work
// touches zeros. This engine keeps the constraint matrix in a CSC column
// store and represents the basis inverse as an eta file (product form of
// the inverse), so one pivot costs an FTRAN + BTRAN over stored nonzeros
// instead of a dense elimination:
//
//  * presolve     — drops empty and duplicate rows, fixes variables pinned
//                   by singleton equality rows, eliminates empty columns,
//                   and normalizes every rhs to be nonnegative before the
//                   engine sees the model;
//  * pricing      — partial pricing: sections of the column range are
//                   scanned cyclically into a small candidate list that is
//                   re-priced each iteration, instead of a full Dantzig
//                   scan; Bland's least-index rule takes over after the
//                   same stall detection the dense engine uses;
//  * basis        — eta-file FTRAN/BTRAN with periodic refactorization
//                   (Gauss-Jordan over the basis columns, sparsest column
//                   first, partial pivoting), which bounds the eta length
//                   and resets accumulated roundoff.
//
// Semantics (statuses, tolerances, Bland fallback, iteration limits) match
// the dense tableau, which stays available through SimplexOptions::engine
// as the differential-testing oracle.
#pragma once

#include <memory>
#include <vector>

#include "lp/simplex.hpp"

namespace calisched {

/// A starting basis carried between structurally-similar solves (in/out
/// via SimplexOptions::warm_start). The basis is expressed over the
/// *presolved* model's engine columns; `rows`/`cols` form the shape
/// signature a candidate model must match before installation is even
/// attempted. Exported bases never contain artificial columns (a redundant
/// row's harmlessly-basic artificial under one rhs could go positive under
/// another), so a solve whose optimal basis kept one leaves the previous
/// contents untouched. A rejected or mismatched warm start costs one basis
/// refactorization at most; correctness never depends on acceptance.
struct WarmStart {
  bool valid = false;
  int rows = 0;            ///< presolved row count at export time
  int cols = 0;            ///< engine columns: structural + slack + artificial
  std::vector<int> basis;  ///< basic engine column per presolved row
};

/// Opaque scratch arena for the revised engine: constraint matrix, eta
/// files, and every per-solve work vector live here, so a caller looping
/// over a family of similar LPs (the per-interval start-time LPs, repeated
/// TISE relaxations) can hand the same workspace to each solve and stop
/// paying the allocations once the buffers reach the family's working
/// size. Exclusively owned by one solve at a time — never share a
/// workspace between concurrent solves. Solves are bit-identical with or
/// without a workspace.
class SimplexWorkspace {
 public:
  SimplexWorkspace();
  ~SimplexWorkspace();
  SimplexWorkspace(const SimplexWorkspace&) = delete;
  SimplexWorkspace& operator=(const SimplexWorkspace&) = delete;

  struct Impl;
  [[nodiscard]] Impl& impl() noexcept { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// What presolve did to a model; exposed for tests and trace reporting.
struct PresolveSummary {
  int rows_dropped = 0;      ///< empty, forcing, or duplicate rows removed
  int cols_fixed = 0;        ///< variables pinned by presolve
  int rows_normalized = 0;   ///< rows flipped to make rhs >= 0
  bool infeasible = false;   ///< presolve proved the model infeasible
  /// A cost-reducing column with no constraints was fixed at 0; the model
  /// is unbounded iff the remaining LP is feasible.
  bool unbounded_if_feasible = false;
  double objective_offset = 0.0;  ///< cost contribution of fixed variables
};

/// A presolved model plus the mapping needed to undo the reductions.
struct PresolvedLp {
  /// Reduced model, every rhs >= 0. Empty when `identity` is set.
  LpModel model;
  std::vector<int> column_map;      ///< original column -> reduced (-1 fixed)
  std::vector<double> fixed_values; ///< per original column; valid when fixed
  PresolveSummary summary;
  /// Presolve found nothing to do (no drops, fixes, or rhs flips): the
  /// original model is its own presolved form and `model` was never built.
  /// The hot path depends on this: TISE relaxations arrive pre-normalized,
  /// and rebuilding a many-hundred-row model (one entry vector and name
  /// string per row and column) cost more per solve than several pivots.
  bool identity = false;
};

/// Runs the presolve reductions (gated by options.presolve; rhs
/// normalization always happens) and returns the reduced model. When
/// summary.infeasible is set the model must not be solved.
[[nodiscard]] PresolvedLp presolve_lp(const LpModel& model,
                                      const SimplexOptions& options);

/// Solves min c'x via presolve + sparse revised simplex. Call through
/// solve_lp (simplex.hpp), which dispatches on SimplexOptions::engine.
[[nodiscard]] LpSolution solve_lp_revised(const LpModel& model,
                                          const SimplexOptions& options);

}  // namespace calisched

// Sparse LP model container.
//
// The library solves exactly one LP family (the TISE relaxation of
// Section 3), but the model type is a general minimize-c'x over
// {Ax {<=,=,>=} b, x >= 0} so the simplex core can be tested on textbook
// programs independent of the scheduling code.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace calisched {

enum class RowSense { kLe, kEq, kGe };

/// Column-index / value pair of one nonzero coefficient.
struct LpEntry {
  int column;
  double value;
};

class LpModel {
 public:
  /// Adds a variable with objective coefficient `cost`; returns its column
  /// index. All variables are implicitly >= 0 (the only bound the TISE LP
  /// needs; upper bounds are expressed as rows).
  int add_variable(std::string name, double cost);

  /// Adds an empty constraint row; returns its row index.
  int add_row(std::string name, RowSense sense, double rhs);

  /// Appends a nonzero coefficient to a row. Coefficients for the same
  /// (row, column) pair must not be added twice.
  void add_coefficient(int row, int column, double value);

  [[nodiscard]] int num_variables() const noexcept {
    return static_cast<int>(costs_.size());
  }
  [[nodiscard]] int num_rows() const noexcept {
    return static_cast<int>(senses_.size());
  }
  [[nodiscard]] std::size_t num_nonzeros() const noexcept;

  [[nodiscard]] double cost(int column) const { return costs_[column]; }
  [[nodiscard]] RowSense sense(int row) const { return senses_[row]; }
  [[nodiscard]] double rhs(int row) const { return rhs_[row]; }
  [[nodiscard]] const std::vector<LpEntry>& row_entries(int row) const {
    return rows_[row];
  }
  [[nodiscard]] const std::string& variable_name(int column) const {
    return variable_names_[column];
  }
  [[nodiscard]] const std::string& row_name(int row) const {
    return row_names_[row];
  }

  /// Evaluates a candidate point against all rows; returns the worst
  /// constraint violation (0 when feasible). Used by tests to cross-check
  /// simplex output independently of the solver internals.
  [[nodiscard]] double max_violation(const std::vector<double>& x) const;

  /// Objective value c'x.
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

 private:
  std::vector<double> costs_;
  std::vector<std::string> variable_names_;
  std::vector<std::vector<LpEntry>> rows_;
  std::vector<RowSense> senses_;
  std::vector<double> rhs_;
  std::vector<std::string> row_names_;
};

}  // namespace calisched

#include "lp/revised_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "lp/perf_counters.hpp"
#include "lp/sparse.hpp"
#include "trace/trace.hpp"

namespace calisched {
namespace {

std::uint64_t value_bits(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// splitmix64-style finalizer for the duplicate-row hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

PresolvedLp presolve_lp(const LpModel& model, const SimplexOptions& options) {
  const int rows = model.num_rows();
  const int cols = model.num_variables();
  const double tol = options.feasibility_tol;
  PresolvedLp out;
  out.column_map.assign(static_cast<std::size_t>(cols), -1);
  out.fixed_values.assign(static_cast<std::size_t>(cols), 0.0);
  std::vector<char> fixed(static_cast<std::size_t>(cols), 0);
  std::vector<char> dropped(static_cast<std::size_t>(rows), 0);
  PresolveSummary& summary = out.summary;

  /// Rhs of `row` after substituting every fixed variable.
  const auto adjusted_rhs = [&](int row) {
    double b = model.rhs(row);
    for (const LpEntry& entry : model.row_entries(row)) {
      if (fixed[static_cast<std::size_t>(entry.column)]) {
        b -= entry.value * out.fixed_values[static_cast<std::size_t>(entry.column)];
      }
    }
    return b;
  };
  /// True iff "0 (sense) b" holds, i.e. an empty row is satisfiable.
  const auto empty_row_ok = [&](RowSense sense, double b) {
    switch (sense) {
      case RowSense::kLe: return b >= -tol;
      case RowSense::kGe: return b <= tol;
      case RowSense::kEq: return std::fabs(b) <= tol;
    }
    return false;
  };

  if (options.presolve) {
    // --- iterate empty-row elimination + singleton-equality fixing -------
    bool changed = true;
    for (int pass = 0; changed && pass < 16; ++pass) {
      changed = false;
      for (int r = 0; r < rows; ++r) {
        if (dropped[static_cast<std::size_t>(r)]) continue;
        int live = 0;
        int live_col = -1;
        double live_coef = 0.0;
        for (const LpEntry& entry : model.row_entries(r)) {
          if (fixed[static_cast<std::size_t>(entry.column)]) continue;
          ++live;
          live_col = entry.column;
          live_coef = entry.value;
        }
        const double b = adjusted_rhs(r);
        if (live == 0) {
          if (!empty_row_ok(model.sense(r), b)) {
            summary.infeasible = true;
            return out;
          }
          dropped[static_cast<std::size_t>(r)] = 1;
          ++summary.rows_dropped;
          changed = true;
        } else if (live == 1 && model.sense(r) == RowSense::kEq &&
                   live_coef != 0.0) {
          const double x = b / live_coef;
          if (x < -tol) {
            summary.infeasible = true;
            return out;
          }
          fixed[static_cast<std::size_t>(live_col)] = 1;
          out.fixed_values[static_cast<std::size_t>(live_col)] = std::max(0.0, x);
          ++summary.cols_fixed;
          dropped[static_cast<std::size_t>(r)] = 1;
          ++summary.rows_dropped;
          changed = true;
        }
      }
    }

    // --- empty columns: unconstrained variables sit at their bound -------
    std::vector<int> occurrences(static_cast<std::size_t>(cols), 0);
    for (int r = 0; r < rows; ++r) {
      if (dropped[static_cast<std::size_t>(r)]) continue;
      for (const LpEntry& entry : model.row_entries(r)) {
        if (!fixed[static_cast<std::size_t>(entry.column)]) {
          ++occurrences[static_cast<std::size_t>(entry.column)];
        }
      }
    }
    for (int c = 0; c < cols; ++c) {
      if (fixed[static_cast<std::size_t>(c)] ||
          occurrences[static_cast<std::size_t>(c)] > 0) {
        continue;
      }
      // x_c >= 0 free of constraints: optimal at 0, unless decreasing cost
      // makes the whole model unbounded (pending feasibility of the rest).
      if (model.cost(c) < -options.reduced_cost_tol) {
        summary.unbounded_if_feasible = true;
      }
      fixed[static_cast<std::size_t>(c)] = 1;
      out.fixed_values[static_cast<std::size_t>(c)] = 0.0;
      ++summary.cols_fixed;
    }

    // --- duplicate rows: keep the binding copy ---------------------------
    // A duplicate is a row with the same sense and the same live entries
    // (values compared bit-exactly — presolve only merges literal
    // duplicates, e.g. a constraint added twice by a model builder).
    // Candidate rows are grouped by an order-independent hash of that key;
    // only hash-equal groups materialize sorted entry lists for the exact
    // comparison, so the common no-duplicate case builds no per-row key at
    // all (the std::map<RowKey> this replaces allocated one entry vector
    // per live row and compared them O(log n) times each).
    std::vector<std::pair<std::uint64_t, int>> row_hashes;
    row_hashes.reserve(static_cast<std::size_t>(rows));
    for (int r = 0; r < rows; ++r) {
      if (dropped[static_cast<std::size_t>(r)]) continue;
      std::uint64_t h = mix64(static_cast<std::uint64_t>(model.sense(r)) + 1);
      for (const LpEntry& entry : model.row_entries(r)) {
        if (fixed[static_cast<std::size_t>(entry.column)]) continue;
        // Commutative combine (+) so entry order never matters; exactness
        // is restored by the full comparison below.
        h += mix64(static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(entry.column)) ^
                   (value_bits(entry.value) * 0x9e3779b97f4a7c15ULL));
      }
      row_hashes.emplace_back(h, r);
    }
    std::sort(row_hashes.begin(), row_hashes.end());

    using ExactKey = std::vector<std::pair<int, std::uint64_t>>;
    // Leading (-1, sense) pseudo-entry keeps sense inside the one key.
    const auto build_key = [&](int r, ExactKey& key) {
      key.clear();
      key.emplace_back(-1, static_cast<std::uint64_t>(model.sense(r)));
      for (const LpEntry& entry : model.row_entries(r)) {
        if (fixed[static_cast<std::size_t>(entry.column)]) continue;
        key.emplace_back(entry.column, value_bits(entry.value));
      }
      std::sort(key.begin() + 1, key.end());
    };
    ExactKey key_scratch;
    std::vector<std::pair<ExactKey, int>> group;  // distinct key -> survivor
    for (std::size_t i = 0; i < row_hashes.size();) {
      std::size_t j = i + 1;
      while (j < row_hashes.size() &&
             row_hashes[j].first == row_hashes[i].first) {
        ++j;
      }
      if (j - i > 1) {
        // Rows in a group arrive in ascending row order (pair sort), so
        // the survivor logic matches the old in-order map walk exactly.
        group.clear();
        for (std::size_t g = i; g < j; ++g) {
          const int r = row_hashes[g].second;
          build_key(r, key_scratch);
          bool matched = false;
          for (auto& [key, survivor] : group) {
            if (key != key_scratch) continue;  // hash collision
            matched = true;
            const int prior = survivor;
            const double b_prior = adjusted_rhs(prior);
            const double b_r = adjusted_rhs(r);
            int drop = r;
            switch (model.sense(r)) {
              case RowSense::kLe:  // smaller rhs binds
                if (b_r < b_prior) drop = prior;
                break;
              case RowSense::kGe:  // larger rhs binds
                if (b_r > b_prior) drop = prior;
                break;
              case RowSense::kEq:
                if (std::fabs(b_r - b_prior) > tol) {
                  summary.infeasible = true;
                  return out;
                }
                break;
            }
            dropped[static_cast<std::size_t>(drop)] = 1;
            ++summary.rows_dropped;
            if (drop == prior) survivor = r;
            break;
          }
          if (!matched) group.emplace_back(key_scratch, r);
        }
      }
      i = j;
    }
  }

  // --- identity fast path ------------------------------------------------
  // Nothing dropped, nothing fixed, and no rhs needs flipping: the original
  // model is already its own presolved form, so skip rebuilding it (every
  // row entry vector plus a name string per row and column — on the TISE
  // relaxation that rebuild cost more than several pivots). The column map
  // is still filled in so callers that consult it see the identity mapping.
  if (!summary.infeasible && !summary.unbounded_if_feasible &&
      summary.rows_dropped == 0 && summary.cols_fixed == 0) {
    bool needs_flip = false;
    for (int r = 0; r < rows; ++r) {
      if (model.rhs(r) < 0.0) {
        needs_flip = true;
        break;
      }
    }
    if (!needs_flip) {
      for (int c = 0; c < cols; ++c) {
        out.column_map[static_cast<std::size_t>(c)] = c;
      }
      out.identity = true;
      return out;
    }
  }

  // --- build the reduced model (normalizing every rhs to >= 0) ----------
  for (int c = 0; c < cols; ++c) {
    if (fixed[static_cast<std::size_t>(c)]) {
      summary.objective_offset +=
          model.cost(c) * out.fixed_values[static_cast<std::size_t>(c)];
      continue;
    }
    out.column_map[static_cast<std::size_t>(c)] =
        out.model.add_variable(model.variable_name(c), model.cost(c));
  }
  for (int r = 0; r < rows; ++r) {
    if (dropped[static_cast<std::size_t>(r)]) continue;
    double b = adjusted_rhs(r);
    RowSense sense = model.sense(r);
    double sign = 1.0;
    if (b < 0.0) {
      sign = -1.0;
      b = -b;
      sense = (sense == RowSense::kLe)   ? RowSense::kGe
              : (sense == RowSense::kGe) ? RowSense::kLe
                                         : RowSense::kEq;
      ++summary.rows_normalized;
    }
    const int row = out.model.add_row(model.row_name(r), sense, b);
    for (const LpEntry& entry : model.row_entries(r)) {
      const int mapped = out.column_map[static_cast<std::size_t>(entry.column)];
      if (mapped >= 0) out.model.add_coefficient(row, mapped, sign * entry.value);
    }
  }
  return out;
}

/// The engine's entire mutable state: constraint matrix, eta files, and
/// every per-solve work vector. Hosted either inside one RevisedSimplex
/// (cold path) or inside a caller-held SimplexWorkspace, in which case the
/// buffers keep their capacity from solve to solve. build() re-assigns or
/// clears every field, so stale contents from a previous solve can never
/// leak into the next one.
struct SimplexWorkspace::Impl {
  CscMatrix matrix;
  EtaFile etas;
  std::vector<double> b;
  std::vector<double> basic_values;
  std::vector<double> costs1;
  std::vector<double> costs2;
  std::vector<double> duals;
  std::vector<double> work;
  std::vector<int> touched;
  std::vector<std::pair<int, double>> entering;
  std::vector<int> basis;
  std::vector<char> in_basis;
  std::vector<int> candidates;
  EtaFile fresh;
  std::vector<int> rf_new_basis;
  std::vector<char> rf_row_pivoted;
  std::vector<char> rf_slot_done;
  std::vector<int> rf_eta_of_row;
  std::vector<int> rf_row_count;
  std::vector<int> rf_col_count;
  std::vector<std::size_t> rf_row_start;
  std::vector<std::size_t> rf_row_fill;
  std::vector<int> rf_row_slot;
  std::vector<int> rf_row_queue;
  std::vector<int> rf_col_queue;
  std::vector<int> rf_kernel;
  std::vector<std::pair<int, double>> rf_spill;
  std::vector<int> initial_basis;
  // Counting-sort scratch for build()'s row-major -> CSC transpose.
  std::vector<int> bk_count;
  std::vector<std::size_t> bk_pos;
  std::vector<int> rf_heap;  ///< pending-eta heap for ftran_indexed
  /// True once a solve has run in this arena; the next solve in it counts
  /// as a workspace reuse (LpPerfCounters::workspace_reuses).
  bool used_before = false;

  /// Total capacity held across every buffer. The per-solve growth
  /// detector (LpPerfCounters::buffer_growths) compares this before and
  /// after a solve: once a reused arena reaches its family's working size
  /// the delta must be zero — the ASan CI job asserts exactly that.
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    const auto doubles = [](const std::vector<double>& v) {
      return v.capacity() * sizeof(double);
    };
    const auto ints = [](const std::vector<int>& v) {
      return v.capacity() * sizeof(int);
    };
    const auto chars = [](const std::vector<char>& v) { return v.capacity(); };
    const auto sizes = [](const std::vector<std::size_t>& v) {
      return v.capacity() * sizeof(std::size_t);
    };
    const auto pairs = [](const std::vector<std::pair<int, double>>& v) {
      return v.capacity() * sizeof(std::pair<int, double>);
    };
    return matrix.capacity_bytes() + etas.capacity_bytes() +
           fresh.capacity_bytes() + doubles(b) + doubles(basic_values) +
           doubles(costs1) + doubles(costs2) + doubles(duals) + doubles(work) +
           ints(touched) + pairs(entering) + ints(basis) + chars(in_basis) +
           ints(candidates) + ints(rf_new_basis) + chars(rf_row_pivoted) +
           chars(rf_slot_done) + ints(rf_eta_of_row) + ints(rf_row_count) +
           ints(rf_col_count) + sizes(rf_row_start) + sizes(rf_row_fill) +
           ints(rf_row_slot) + ints(rf_row_queue) + ints(rf_col_queue) +
           ints(rf_kernel) + pairs(rf_spill) + ints(initial_basis) +
           ints(bk_count) + sizes(bk_pos) + ints(rf_heap);
  }
};

SimplexWorkspace::SimplexWorkspace() : impl_(std::make_unique<Impl>()) {}
SimplexWorkspace::~SimplexWorkspace() = default;

namespace {

/// One revised-simplex solve over a presolved model (every rhs >= 0).
class RevisedSimplex {
 public:
  RevisedSimplex(const LpModel& model, const SimplexOptions& options)
      : options_(options),
        poller_(options.limits, /*stride=*/32),
        num_structural_(model.num_variables()),
        scratch_(options.workspace ? &options.workspace->impl()
                                   : &local_scratch_),
        matrix_(scratch_->matrix),
        etas_(scratch_->etas),
        b_(scratch_->b),
        basic_values_(scratch_->basic_values),
        costs1_(scratch_->costs1),
        costs2_(scratch_->costs2),
        duals_(scratch_->duals),
        work_(scratch_->work),
        touched_(scratch_->touched),
        entering_(scratch_->entering),
        basis_(scratch_->basis),
        in_basis_(scratch_->in_basis),
        candidates_(scratch_->candidates),
        fresh_(scratch_->fresh),
        rf_new_basis_(scratch_->rf_new_basis),
        rf_row_pivoted_(scratch_->rf_row_pivoted),
        rf_slot_done_(scratch_->rf_slot_done),
        rf_eta_of_row_(scratch_->rf_eta_of_row),
        rf_row_count_(scratch_->rf_row_count),
        rf_col_count_(scratch_->rf_col_count),
        rf_row_start_(scratch_->rf_row_start),
        rf_row_fill_(scratch_->rf_row_fill),
        rf_row_slot_(scratch_->rf_row_slot),
        rf_row_queue_(scratch_->rf_row_queue),
        rf_col_queue_(scratch_->rf_col_queue),
        rf_kernel_(scratch_->rf_kernel),
        rf_spill_(scratch_->rf_spill),
        initial_basis_(scratch_->initial_basis) {
    if (scratch_ != &local_scratch_) {
      workspace_reused_ = scratch_->used_before;
      scratch_->used_before = true;
    }
    capacity_bytes_before_ = scratch_->capacity_bytes();
    build(model);
  }

  /// Flushes this solve's work tallies into the process-wide counters —
  /// the destructor so every return path (optimal, stopped, infeasible,
  /// iteration-limited) reports exactly once, with one atomic add per
  /// field (lp/perf_counters.hpp).
  ~RevisedSimplex() {
    LpPerfCounters delta;
    delta.solves = 1;
    delta.pivots = total_pivots_;
    const KernelStats eta_stats = etas_.take_stats();
    const KernelStats fresh_stats = fresh_.take_stats();
    delta.etas_applied = eta_stats.fired + fresh_stats.fired;
    delta.eta_entries = eta_stats.entries + fresh_stats.entries;
    const KernelStats pricing = matrix_.take_stats();
    delta.pricing_columns = pricing.fired;
    delta.pricing_entries = pricing.entries;
    delta.refactorizations = refactor_count_;
    delta.workspace_reuses = workspace_reused_ ? 1 : 0;
    delta.buffer_growths =
        scratch_->capacity_bytes() > capacity_bytes_before_ ? 1 : 0;
    lp_perf_accumulate(delta);
  }

  LpSolution solve() {
    LpSolution solution;
    trace_set(options_.trace, "revised.rows", rows_);
    trace_set(options_.trace, "revised.columns", total_cols_);
    trace_set(options_.trace, "revised.nnz",
              static_cast<std::int64_t>(matrix_.num_nonzeros()));
    // ---- Warm start: adopt the caller's basis when it checks out. ----
    bool warm = false;
    if (options_.warm_start && options_.warm_start->valid) {
      trace_add(options_.trace, "warmstart.offered");
      warm = try_warm_start(*options_.warm_start);
      trace_add(options_.trace,
                warm ? "warmstart.accepted" : "warmstart.rejected");
    }
    solution.warm_started = warm;
    // ---- Phase 1: minimize the sum of artificial variables. ----
    // A successfully installed warm basis is artificial-free and primal
    // feasible, so Phase 1 (and the expel pass) has nothing to do.
    if (num_artificial_ > 0 && !warm) {
      TraceSpan span(options_.trace, "phase1");
      const RunResult phase1 = run(costs1_, /*allow_artificial_entering=*/true,
                                   solution.phase1_pivots);
      span.stop();
      flush_counters(solution);
      if (phase1 == RunResult::kStopped) {
        solution.status = stop_status();
        return solution;
      }
      if (phase1 == RunResult::kIterationLimit) {
        solution.status = LpStatus::kIterationLimit;
        return solution;
      }
      refresh_basic_values();
      if (phase1_infeasibility() > options_.feasibility_tol) {
        solution.status = LpStatus::kInfeasible;
        return solution;
      }
      expel_artificials(solution.expel_pivots);
    }
    // ---- Phase 2: minimize the real objective. ----
    TraceSpan phase2_span(options_.trace, "phase2");
    const RunResult phase2 = run(costs2_, /*allow_artificial_entering=*/false,
                                 solution.phase2_pivots);
    phase2_span.stop();
    flush_counters(solution);
    switch (phase2) {
      case RunResult::kOptimal: solution.status = LpStatus::kOptimal; break;
      case RunResult::kUnbounded:
        solution.status = LpStatus::kUnbounded;
        return solution;
      case RunResult::kIterationLimit:
        solution.status = LpStatus::kIterationLimit;
        return solution;
      case RunResult::kStopped:
        solution.status = stop_status();
        return solution;
    }
    // ---- Extract structural values. ----
    refresh_basic_values();
    solution.values.assign(static_cast<std::size_t>(num_structural_), 0.0);
    for (int r = 0; r < rows_; ++r) {
      const int col = basis_[static_cast<std::size_t>(r)];
      if (col < num_structural_) {
        solution.values[static_cast<std::size_t>(col)] =
            std::max(0.0, basic_values_[static_cast<std::size_t>(r)]);
      }
    }
    solution.objective = basis_objective(costs2_);
    export_warm_start();
    return solution;
  }

 private:
  enum class RunResult { kOptimal, kUnbounded, kIterationLimit, kStopped };

  /// LpStatus for a kStopped run (deadline vs cancellation).
  [[nodiscard]] LpStatus stop_status() const noexcept {
    return poller_.status() == SolveStatus::kCancelled ? LpStatus::kCancelled
                                                       : LpStatus::kDeadlineExceeded;
  }

  void build(const LpModel& model) {
    // A reused workspace arrives with the previous solve's matrix and eta
    // file; drop the contents, keep the capacity.
    matrix_.clear();
    etas_.clear();
    rows_ = model.num_rows();
    // Column layout mirrors the dense tableau: [structural | slack+surplus
    // | artificial]; rhs is already nonnegative, so no sign flips here.
    int num_slack = 0;
    int num_art = 0;
    for (int r = 0; r < rows_; ++r) {
      if (model.sense(r) != RowSense::kEq) ++num_slack;
      if (model.sense(r) != RowSense::kLe) ++num_art;
    }
    slack_base_ = num_structural_;
    artificial_base_ = slack_base_ + num_slack;
    num_artificial_ = num_art;
    total_cols_ = artificial_base_ + num_art;

    // Structural columns: counting-sort transpose of the model's row-major
    // storage — count entries per column, open every column at its final
    // size, then scatter entries into place. Row order within a column is
    // ascending either way (the outer loop visits rows in order), and no
    // per-column heap blocks are allocated (the bucket transpose this
    // replaces built one std::vector per structural column every solve).
    std::vector<int>& bk_count = scratch_->bk_count;
    std::vector<std::size_t>& bk_pos = scratch_->bk_pos;
    bk_count.assign(static_cast<std::size_t>(num_structural_), 0);
    std::size_t nonzeros = 0;
    for (int r = 0; r < rows_; ++r) {
      for (const LpEntry& entry : model.row_entries(r)) {
        ++bk_count[static_cast<std::size_t>(entry.column)];
        ++nonzeros;
      }
    }
    matrix_.reserve(total_cols_, nonzeros + static_cast<std::size_t>(num_slack) +
                                     static_cast<std::size_t>(num_art));
    matrix_.append_sized_columns(bk_count.data(), num_structural_);
    bk_pos.resize(static_cast<std::size_t>(num_structural_));
    for (int c = 0; c < num_structural_; ++c) {
      bk_pos[static_cast<std::size_t>(c)] = matrix_.column_begin(c);
    }
    if (num_structural_ > 0) {
      int* const mat_rows = matrix_.column_rows_mut(0);
      double* const mat_values = matrix_.column_values_mut(0);
      for (int r = 0; r < rows_; ++r) {
        for (const LpEntry& entry : model.row_entries(r)) {
          const std::size_t k = bk_pos[static_cast<std::size_t>(entry.column)]++;
          mat_rows[k] = r;
          mat_values[k] = entry.value;
        }
      }
    }

    b_.assign(static_cast<std::size_t>(rows_), 0.0);
    basis_.assign(static_cast<std::size_t>(rows_), -1);
    std::vector<std::pair<int, int>> art_rows;  // (row, artificial column)
    for (int r = 0; r < rows_; ++r) {
      b_[static_cast<std::size_t>(r)] = model.rhs(r);
      if (model.sense(r) != RowSense::kEq) {
        const int slack = matrix_.begin_column();
        matrix_.push(r, model.sense(r) == RowSense::kLe ? 1.0 : -1.0);
        if (model.sense(r) == RowSense::kLe) {
          basis_[static_cast<std::size_t>(r)] = slack;
        }
      }
    }
    for (int r = 0; r < rows_; ++r) {
      if (model.sense(r) == RowSense::kLe) continue;
      const int art = matrix_.begin_column();
      matrix_.push(r, 1.0);
      basis_[static_cast<std::size_t>(r)] = art;
    }

    in_basis_.assign(static_cast<std::size_t>(total_cols_), 0);
    for (int r = 0; r < rows_; ++r) {
      in_basis_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] = 1;
    }
    basic_values_ = b_;  // initial basis is the identity
    work_.assign(static_cast<std::size_t>(rows_), 0.0);  // all-zero invariant

    costs2_.assign(static_cast<std::size_t>(total_cols_), 0.0);
    for (int c = 0; c < num_structural_; ++c) {
      costs2_[static_cast<std::size_t>(c)] = model.cost(c);
    }
    costs1_.assign(static_cast<std::size_t>(total_cols_), 0.0);
    for (int c = artificial_base_; c < total_cols_; ++c) {
      costs1_[static_cast<std::size_t>(c)] = 1.0;
    }
  }

  /// Tries to install `warm` as the starting basis. Acceptance requires, in
  /// order: a matching (rows, cols) shape signature, only structural/slack
  /// columns (see WarmStart), no duplicates, a clean refactorization (the
  /// basis is nonsingular under *this* model's coefficients), and primal
  /// feasibility of B^{-1} b under this model's rhs. Any failure restores
  /// the cold identity basis and returns false — the solve then proceeds
  /// exactly as if no warm start had been offered.
  bool try_warm_start(const WarmStart& warm) {
    if (warm.rows != rows_ || warm.cols != total_cols_) return false;
    if (static_cast<int>(warm.basis.size()) != rows_) return false;
    for (const int col : warm.basis) {
      if (col < 0 || col >= artificial_base_) return false;
    }
    initial_basis_ = basis_;
    basis_ = warm.basis;
    std::fill(in_basis_.begin(), in_basis_.end(), char{0});
    for (const int col : basis_) {
      if (in_basis_[static_cast<std::size_t>(col)]) {  // duplicate column
        restore_cold_basis();
        return false;
      }
      in_basis_[static_cast<std::size_t>(col)] = 1;
    }
    const std::int64_t failures_before = refactor_failures_;
    refactorize();
    if (refactor_failures_ != failures_before) {  // numerically singular
      restore_cold_basis();
      return false;
    }
    // refactorize() left basic_values_ = B^{-1} b for the warm basis.
    for (const double value : basic_values_) {
      if (value < -options_.feasibility_tol) {  // not feasible under this rhs
        restore_cold_basis();
        return false;
      }
    }
    return true;
  }

  /// Undoes a failed warm-start installation: identity basis, empty eta
  /// file, basic values = b (exactly the state build() left behind).
  void restore_cold_basis() {
    basis_ = initial_basis_;
    etas_.clear();
    etas_since_refactor_ = 0;
    std::fill(in_basis_.begin(), in_basis_.end(), char{0});
    for (const int col : basis_) in_basis_[static_cast<std::size_t>(col)] = 1;
    basic_values_ = b_;
  }

  /// Writes the optimal basis back into the caller's WarmStart slot. Bases
  /// that kept a redundant-row artificial are not exported (see WarmStart);
  /// the slot's previous contents stay as they were.
  void export_warm_start() {
    WarmStart* warm = options_.warm_start;
    if (!warm) return;
    for (const int col : basis_) {
      if (col >= artificial_base_) return;
    }
    warm->valid = true;
    warm->rows = rows_;
    warm->cols = total_cols_;
    warm->basis = basis_;
  }

  /// One simplex phase over the given cost vector.
  RunResult run(const std::vector<double>& costs, bool allow_artificial_entering,
                std::int64_t& pivot_count) {
    int stall = 0;
    double last_objective = std::numeric_limits<double>::infinity();
    bool bland = false;
    candidates_.clear();
    // Tracked incrementally (entering reduced cost x step length) for the
    // stall detector; the exact objective is recomputed at phase ends.
    double objective = basis_objective(costs);
    while (true) {
      if (pivot_count >= options_.max_pivots) return RunResult::kIterationLimit;
      if (poller_.poll() != SolveStatus::kOk) return RunResult::kStopped;
      compute_duals(costs);
      const int entering = bland ? price_bland(costs, allow_artificial_entering)
                                 : price_partial(costs, allow_artificial_entering);
      if (entering < 0) return RunResult::kOptimal;
      const double entering_cost = reduced_cost(costs, entering);
      load_column(entering);
      const int leaving = choose_leaving(bland);
      if (leaving < 0) return RunResult::kUnbounded;
      objective += entering_cost * pivot(leaving, entering);
      ++pivot_count;
      if (etas_since_refactor_ >= options_.refactor_interval) refactorize();
      if (objective < last_objective - 1e-12) {
        stall = 0;
        last_objective = objective;
      } else if (!bland && ++stall >= options_.stall_before_bland) {
        bland = true;  // anti-cycling fallback
        ++bland_activations_;
      }
    }
  }

  /// y := c_B' B^{-1} (BTRAN).
  void compute_duals(const std::vector<double>& costs) {
    duals_.resize(static_cast<std::size_t>(rows_));
    for (int r = 0; r < rows_; ++r) {
      duals_[static_cast<std::size_t>(r)] =
          costs[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
    }
    etas_.btran(duals_);
  }

  [[nodiscard]] double reduced_cost(const std::vector<double>& costs,
                                    int column) const {
    return costs[static_cast<std::size_t>(column)] - matrix_.dot(column, duals_);
  }

  /// Partial pricing: re-price the surviving candidate list, then always
  /// refresh it with at least one fresh cyclic section (more until the list
  /// is full or the matrix has been swept once). The entering column is the
  /// most negative reduced cost seen across both, so the choice tracks
  /// Dantzig pricing closely while scanning a fraction of the columns.
  /// (Coasting on the stale list until it empties was measurably worse: it
  /// roughly doubles the pivot count on the TISE LPs.)
  /// Returns -1 only after a full sweep found no attractive column.
  int price_partial(const std::vector<double>& costs, bool allow_artificial) {
    const int limit = allow_artificial ? total_cols_ : artificial_base_;
    int best = -1;
    double best_cost = -options_.reduced_cost_tol;
    std::size_t kept = 0;
    for (const int c : candidates_) {
      if (c >= limit || in_basis_[static_cast<std::size_t>(c)]) continue;
      const double reduced = reduced_cost(costs, c);
      if (reduced >= -options_.reduced_cost_tol) continue;
      candidates_[kept++] = c;
      if (reduced < best_cost) {
        best_cost = reduced;
        best = c;
      }
    }
    candidates_.resize(kept);

    const int section = std::max(1, options_.pricing_section);
    const auto is_basic = [this](int c) {
      return in_basis_[static_cast<std::size_t>(c)] != 0;
    };
    if (cursor_ >= limit) cursor_ = 0;  // limit shrinks between phases
    int scanned = 0;
    while (scanned < limit) {
      // One contiguous slice of the cyclic sweep (sections straddling the
      // wrap split in two, so each slice is a single sequential scan).
      const int lo = cursor_;
      const int hi = std::min(lo + std::min(section, limit - scanned), limit);
      matrix_.dot_range(lo, hi, duals_, is_basic, [&](int c, double dot) {
        const double reduced = costs[static_cast<std::size_t>(c)] - dot;
        if (reduced < -options_.reduced_cost_tol) {
          // The list caps at pricing_candidates (it only feeds the next
          // iteration's re-pricing); the entering column is tracked
          // separately, so a capped column can still enter now.
          if (static_cast<int>(candidates_.size()) <
              options_.pricing_candidates) {
            candidates_.push_back(c);
          }
          if (reduced < best_cost) {
            best_cost = reduced;
            best = c;
          }
        }
      });
      cursor_ = hi >= limit ? 0 : hi;
      scanned += hi - lo;
      ++pricing_sections_;
      // Stop as soon as something is attractive; insisting on a full
      // candidate list makes near-optimal iterations (few attractive
      // columns left anywhere) degenerate into full sweeps. An empty sweep
      // still runs to completion to prove optimality.
      if (best >= 0) break;
    }
    return best;
  }

  /// Bland's rule: the lowest-index attractive column.
  int price_bland(const std::vector<double>& costs, bool allow_artificial) {
    const int limit = allow_artificial ? total_cols_ : artificial_base_;
    for (int c = 0; c < limit; ++c) {
      if (in_basis_[static_cast<std::size_t>(c)]) continue;
      if (reduced_cost(costs, c) < -options_.reduced_cost_tol) return c;
    }
    return -1;
  }

  /// entering_ := nonzeros of B^{-1} a_column (tracked FTRAN), sorted by
  /// row so downstream scans match the dense engine's row order. work_
  /// holds all zeros on entry and exit.
  void load_column(int column) {
    touched_.clear();
    for (std::size_t k = matrix_.column_begin(column);
         k < matrix_.column_end(column); ++k) {
      const auto row = static_cast<std::size_t>(matrix_.row(k));
      if (work_[row] == 0.0) touched_.push_back(matrix_.row(k));
      work_[row] += matrix_.value(k);
    }
    etas_.ftran_tracked(work_, touched_);
    entering_.clear();
    for (const int row : touched_) {
      const double value = work_[static_cast<std::size_t>(row)];
      work_[static_cast<std::size_t>(row)] = 0.0;  // also dedupes repeats
      if (value != 0.0) entering_.emplace_back(row, value);
    }
    std::sort(entering_.begin(), entering_.end());
  }

  /// Ratio test over the entering column; mirrors the dense engine (Bland
  /// tie-break by smallest basis index).
  [[nodiscard]] int choose_leaving(bool bland) const {
    int best = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (const auto& [r, coef] : entering_) {
      if (coef <= options_.pivot_tol) continue;
      const double ratio = basic_values_[static_cast<std::size_t>(r)] / coef;
      if (ratio < best_ratio - 1e-12) {
        best_ratio = ratio;
        best = r;
      } else if (best >= 0 && ratio < best_ratio + 1e-12 && bland &&
                 basis_[static_cast<std::size_t>(r)] <
                     basis_[static_cast<std::size_t>(best)]) {
        best = r;  // Bland tie-break: smallest basis index leaves
      }
    }
    return best;
  }

  /// Basis change: update basic values, append the eta, swap basis flags.
  /// Returns the step length theta.
  double pivot(int leaving_row, int entering_column) {
    const auto lr = static_cast<std::size_t>(leaving_row);
    double pivot_coef = 0.0;
    for (const auto& [r, w] : entering_) {
      if (r == leaving_row) {
        pivot_coef = w;
        break;
      }
    }
    const double theta = basic_values_[lr] / pivot_coef;
    for (const auto& [r, w] : entering_) {
      basic_values_[static_cast<std::size_t>(r)] -= theta * w;
    }
    basic_values_[lr] = theta;
    etas_.begin_eta(leaving_row, pivot_coef);
    for (const auto& [r, w] : entering_) {
      if (r != leaving_row) etas_.push(r, w);
    }
    ++etas_since_refactor_;
    ++total_pivots_;
    eta_peak_ = std::max(eta_peak_, static_cast<std::int64_t>(etas_.size()));
    in_basis_[static_cast<std::size_t>(basis_[lr])] = 0;
    in_basis_[static_cast<std::size_t>(entering_column)] = 1;
    basis_[lr] = entering_column;
    return theta;
  }

  /// Rebuilds the eta file from the current basis columns. Two stages:
  ///
  ///  1. Two-sided triangular peel: repeatedly pivot on a row with exactly
  ///     one remaining active column, or a column with exactly one
  ///     remaining active row (slack and artificial basics are column
  ///     singletons from the start). This is the standard triangularization
  ///     of LP bases; on TISE models it absorbs nearly everything. Row
  ///     singletons are preferred — their columns provably avoid earlier
  ///     pivot rows, so their etas carry zero fill.
  ///  2. The leftover kernel (rows and columns of active degree >= 2) goes
  ///     through Gauss-Jordan with partial pivoting, sparsest column first.
  ///
  /// Every eta is the column FTRANed through the file built so far; the
  /// FTRAN is touch-tracked, so the cost is proportional to the fill
  /// actually produced, not rows * columns. Identity etas (unit pivot, no
  /// off-pivot entries — every in-basis slack peels to one) are dropped
  /// entirely, which keeps the rebuilt file far shorter than one eta per
  /// row and directly shrinks every later FTRAN/BTRAN scan.
  ///
  /// All scratch lives in rf_* members (plus fresh_, swapped with etas_ on
  /// success), so a refactorization allocates nothing in steady state.
  ///
  /// On numerical failure the old (valid, just long) file is kept.
  void refactorize() {
    const auto n = static_cast<std::size_t>(rows_);
    fresh_.clear();
    rf_new_basis_.assign(n, -1);
    rf_row_pivoted_.assign(n, 0);
    rf_slot_done_.assign(n, 0);
    rf_eta_of_row_.assign(n, -1);

    // Active incidence, both directions (counts over non-retired rows and
    // basis slots); row -> slots adjacency as a counting-sorted CSR.
    rf_row_count_.assign(n, 0);  // active columns touching the row
    rf_col_count_.assign(n, 0);  // active rows in the slot's column
    std::size_t total_slots = 0;
    for (int s = 0; s < rows_; ++s) {
      const int col = basis_[static_cast<std::size_t>(s)];
      rf_col_count_[static_cast<std::size_t>(s)] =
          static_cast<int>(matrix_.column_size(col));
      total_slots += matrix_.column_size(col);
      for (std::size_t k = matrix_.column_begin(col); k < matrix_.column_end(col);
           ++k) {
        ++rf_row_count_[static_cast<std::size_t>(matrix_.row(k))];
      }
    }
    rf_row_start_.assign(n + 1, 0);
    for (std::size_t r = 0; r < n; ++r) {
      rf_row_start_[r + 1] = rf_row_start_[r] + rf_row_count_[r];
    }
    rf_row_fill_.assign(rf_row_start_.begin(), rf_row_start_.end() - 1);
    rf_row_slot_.resize(total_slots);
    for (int s = 0; s < rows_; ++s) {
      const int col = basis_[static_cast<std::size_t>(s)];
      for (std::size_t k = matrix_.column_begin(col); k < matrix_.column_end(col);
           ++k) {
        rf_row_slot_[static_cast<std::size_t>(
            rf_row_fill_[static_cast<std::size_t>(matrix_.row(k))]++)] = s;
      }
    }
    rf_row_queue_.clear();
    rf_col_queue_.clear();
    for (int r = 0; r < rows_; ++r) {
      if (rf_row_count_[static_cast<std::size_t>(r)] == 1) {
        rf_row_queue_.push_back(r);
      }
    }
    for (int s = 0; s < rows_; ++s) {
      if (rf_col_count_[static_cast<std::size_t>(s)] == 1) {
        rf_col_queue_.push_back(s);
      }
    }

    /// FTRANs slot `s`'s column through `fresh_` and appends the eta
    /// pivoted at row `r` (unless it is an identity eta, which is simply
    /// dropped); false on a too-small pivot. Leaves work_ zeroed.
    const auto emit = [&](int r, int s) {
      const int col = basis_[static_cast<std::size_t>(s)];
      touched_.clear();
      for (std::size_t k = matrix_.column_begin(col); k < matrix_.column_end(col);
           ++k) {
        const auto row = static_cast<std::size_t>(matrix_.row(k));
        if (work_[row] == 0.0) touched_.push_back(matrix_.row(k));
        work_[row] += matrix_.value(k);
      }
      fresh_.ftran_indexed(work_, touched_, rf_eta_of_row_, scratch_->rf_heap);
      const double pivot_value = work_[static_cast<std::size_t>(r)];
      const bool ok = std::fabs(pivot_value) > options_.pivot_tol;
      rf_spill_.clear();
      for (const int row : touched_) {
        const double value = work_[static_cast<std::size_t>(row)];
        work_[static_cast<std::size_t>(row)] = 0.0;  // also dedupes repeats
        if (row != r && value != 0.0) rf_spill_.emplace_back(row, value);
      }
      if (!ok) return false;
      if (pivot_value != 1.0 || !rf_spill_.empty()) {
        rf_eta_of_row_[static_cast<std::size_t>(r)] =
            static_cast<int>(fresh_.size());
        fresh_.begin_eta(r, pivot_value);
        for (const auto& [row, value] : rf_spill_) fresh_.push(row, value);
      }
      return true;
    };
    /// Retires pivot (row `r`, slot `s`), feeding newly-single rows and
    /// columns into the peel queues.
    const auto retire = [&](int r, int s) {
      rf_row_pivoted_[static_cast<std::size_t>(r)] = 1;
      rf_slot_done_[static_cast<std::size_t>(s)] = 1;
      rf_new_basis_[static_cast<std::size_t>(r)] =
          basis_[static_cast<std::size_t>(s)];
      const int col = basis_[static_cast<std::size_t>(s)];
      for (std::size_t k = matrix_.column_begin(col); k < matrix_.column_end(col);
           ++k) {
        const auto row = static_cast<std::size_t>(matrix_.row(k));
        if (!rf_row_pivoted_[row] && --rf_row_count_[row] == 1) {
          rf_row_queue_.push_back(matrix_.row(k));
        }
      }
      for (std::size_t k = rf_row_start_[static_cast<std::size_t>(r)];
           k < rf_row_start_[static_cast<std::size_t>(r) + 1]; ++k) {
        const int s2 = rf_row_slot_[k];
        if (!rf_slot_done_[static_cast<std::size_t>(s2)] &&
            --rf_col_count_[static_cast<std::size_t>(s2)] == 1) {
          rf_col_queue_.push_back(s2);
        }
      }
    };

    int remaining = rows_;
    while (!rf_row_queue_.empty() || !rf_col_queue_.empty()) {
      if (!rf_row_queue_.empty()) {
        const int r = rf_row_queue_.back();
        rf_row_queue_.pop_back();
        const auto ri = static_cast<std::size_t>(r);
        if (rf_row_pivoted_[ri] || rf_row_count_[ri] != 1) continue;
        int slot = -1;
        for (std::size_t k = rf_row_start_[ri]; k < rf_row_start_[ri + 1]; ++k) {
          if (!rf_slot_done_[static_cast<std::size_t>(rf_row_slot_[k])]) {
            slot = rf_row_slot_[k];
            break;
          }
        }
        if (slot < 0) continue;  // stale entry
        if (!emit(r, slot)) continue;  // tiny pivot: leave to the kernel
        retire(r, slot);
        --remaining;
      } else {
        const int s = rf_col_queue_.back();
        rf_col_queue_.pop_back();
        const auto si = static_cast<std::size_t>(s);
        if (rf_slot_done_[si] || rf_col_count_[si] != 1) continue;
        const int col = basis_[si];
        int r = -1;
        for (std::size_t k = matrix_.column_begin(col);
             k < matrix_.column_end(col); ++k) {
          if (!rf_row_pivoted_[static_cast<std::size_t>(matrix_.row(k))]) {
            r = matrix_.row(k);
            break;
          }
        }
        if (r < 0) continue;  // stale entry
        if (!emit(r, s)) continue;
        retire(r, s);
        --remaining;
      }
    }

    bump_peak_ = std::max(bump_peak_, static_cast<std::int64_t>(remaining));
    // Stage 2: Gauss-Jordan over the kernel the peel left behind.
    if (remaining > 0) {
      rf_kernel_.clear();
      for (int s = 0; s < rows_; ++s) {
        if (!rf_slot_done_[static_cast<std::size_t>(s)]) rf_kernel_.push_back(s);
      }
      std::sort(rf_kernel_.begin(), rf_kernel_.end(), [&](int a, int b) {
        return matrix_.column_size(basis_[static_cast<std::size_t>(a)]) <
               matrix_.column_size(basis_[static_cast<std::size_t>(b)]);
      });
      for (const int s : rf_kernel_) {
        const int col = basis_[static_cast<std::size_t>(s)];
        touched_.clear();
        for (std::size_t k = matrix_.column_begin(col);
             k < matrix_.column_end(col); ++k) {
          const auto row = static_cast<std::size_t>(matrix_.row(k));
          if (work_[row] == 0.0) touched_.push_back(matrix_.row(k));
          work_[row] += matrix_.value(k);
        }
        fresh_.ftran_indexed(work_, touched_, rf_eta_of_row_, scratch_->rf_heap);
        int pivot_row = -1;
        double best = 0.0;
        for (const int row : touched_) {
          if (rf_row_pivoted_[static_cast<std::size_t>(row)]) continue;
          const double magnitude =
              std::fabs(work_[static_cast<std::size_t>(row)]);
          if (magnitude > best) {
            best = magnitude;
            pivot_row = row;
          }
        }
        if (pivot_row < 0 || best <= options_.pivot_tol) {
          for (const int row : touched_) {
            work_[static_cast<std::size_t>(row)] = 0.0;
          }
          ++refactor_failures_;      // numerically singular; keep the old file
          etas_since_refactor_ = 0;  // but wait a full interval before retrying
          return;
        }
        rf_eta_of_row_[static_cast<std::size_t>(pivot_row)] =
            static_cast<int>(fresh_.size());
        fresh_.begin_eta(pivot_row, work_[static_cast<std::size_t>(pivot_row)]);
        for (const int row : touched_) {
          const double value = work_[static_cast<std::size_t>(row)];
          work_[static_cast<std::size_t>(row)] = 0.0;
          if (row != pivot_row && value != 0.0) fresh_.push(row, value);
        }
        rf_row_pivoted_[static_cast<std::size_t>(pivot_row)] = 1;
        rf_new_basis_[static_cast<std::size_t>(pivot_row)] = col;
      }
    }

    std::swap(etas_, fresh_);  // swap, not move: fresh_ keeps its buffers
    std::swap(basis_, rf_new_basis_);
    etas_since_refactor_ = 0;
    ++refactor_count_;
    refresh_basic_values();
  }

  /// basic_values_ := B^{-1} b, from scratch.
  void refresh_basic_values() {
    basic_values_ = b_;
    etas_.ftran(basic_values_);
  }

  [[nodiscard]] double basis_objective(const std::vector<double>& costs) const {
    double objective = 0.0;
    for (int r = 0; r < rows_; ++r) {
      objective += costs[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] *
                   basic_values_[static_cast<std::size_t>(r)];
    }
    return objective;
  }

  /// Phase-1 residual: the artificial mass still in the basis.
  [[nodiscard]] double phase1_infeasibility() const {
    double mass = 0.0;
    for (int r = 0; r < rows_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] >= artificial_base_) {
        mass += std::max(0.0, basic_values_[static_cast<std::size_t>(r)]);
      }
    }
    return mass;
  }

  /// After phase 1, pivot zero-valued artificial basics out on the largest
  /// eligible non-artificial column of their B^{-1} row; rows with none are
  /// redundant (their tableau row is all-zero) and stay harmlessly basic.
  void expel_artificials(std::int64_t& expel_pivots) {
    for (int r = 0; r < rows_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] < artificial_base_) continue;
      // z := e_r' B^{-1}, the tableau row of r.
      duals_.assign(static_cast<std::size_t>(rows_), 0.0);
      duals_[static_cast<std::size_t>(r)] = 1.0;
      etas_.btran(duals_);
      int pivot_col = -1;
      double best = options_.pivot_tol;
      for (int c = 0; c < artificial_base_; ++c) {
        if (in_basis_[static_cast<std::size_t>(c)]) continue;
        const double magnitude = std::fabs(matrix_.dot(c, duals_));
        if (magnitude > best) {
          best = magnitude;
          pivot_col = c;
        }
      }
      if (pivot_col < 0) continue;
      load_column(pivot_col);
      pivot(r, pivot_col);
      ++expel_pivots;
      if (etas_since_refactor_ >= options_.refactor_interval) refactorize();
    }
  }

  /// Mirrors cumulative counters into the trace sink; called after each
  /// phase so an iteration-limited solve still reports.
  void flush_counters(const LpSolution& solution) {
    TraceContext* trace = options_.trace;
    if (!trace) return;
    trace->set("pivots.phase1", solution.phase1_pivots);
    trace->set("pivots.phase2", solution.phase2_pivots);
    trace->set("pivots.expel", solution.expel_pivots);
    trace->set("bland.activations", bland_activations_);
    trace->set("refactor.count", refactor_count_);
    trace->set("refactor.failures", refactor_failures_);
    trace->set("refactor.bump.peak", bump_peak_);
    trace->set("eta.peak", eta_peak_);
    trace->set("eta.nnz", static_cast<std::int64_t>(etas_.num_nonzeros()));
    trace->set("pricing.sections", pricing_sections_);
    trace->set("workspace.reused", workspace_reused_ ? 1 : 0);
  }

  SimplexOptions options_;
  LimitPoller poller_;
  int num_structural_ = 0;
  int slack_base_ = 0;
  int artificial_base_ = 0;
  int num_artificial_ = 0;
  int rows_ = 0;
  int total_cols_ = 0;
  // Engine state lives in a SimplexWorkspace::Impl — the caller's when
  // SimplexOptions::workspace is set (buffer reuse across a solve
  // sequence), this engine's own otherwise. The references below keep the
  // algorithm body oblivious to where the storage lives.
  SimplexWorkspace::Impl local_scratch_;
  SimplexWorkspace::Impl* scratch_;
  CscMatrix& matrix_;
  EtaFile& etas_;
  std::vector<double>& b_;
  std::vector<double>& basic_values_;  ///< x_B, one per row
  std::vector<double>& costs1_;
  std::vector<double>& costs2_;
  std::vector<double>& duals_;  ///< y (BTRAN scratch)
  /// Dense FTRAN scratch; all zeros between uses (gatherers restore it).
  std::vector<double>& work_;
  std::vector<int>& touched_;  ///< nonzero rows of work_ during an FTRAN
  /// Entering column B^{-1} a_q as sorted (row, value) pairs.
  std::vector<std::pair<int, double>>& entering_;
  std::vector<int>& basis_;
  std::vector<char>& in_basis_;
  std::vector<int>& candidates_;
  // Refactorization scratch, reused across calls (see refactorize()).
  EtaFile& fresh_;
  std::vector<int>& rf_new_basis_;
  std::vector<char>& rf_row_pivoted_;
  std::vector<char>& rf_slot_done_;
  std::vector<int>& rf_eta_of_row_;
  std::vector<int>& rf_row_count_;
  std::vector<int>& rf_col_count_;
  std::vector<std::size_t>& rf_row_start_;  ///< CSR: row -> basis slots
  std::vector<std::size_t>& rf_row_fill_;
  std::vector<int>& rf_row_slot_;
  std::vector<int>& rf_row_queue_;
  std::vector<int>& rf_col_queue_;
  std::vector<int>& rf_kernel_;
  std::vector<std::pair<int, double>>& rf_spill_;
  /// build()'s identity basis, saved by try_warm_start for the fallback.
  std::vector<int>& initial_basis_;
  int cursor_ = 0;
  int etas_since_refactor_ = 0;
  bool workspace_reused_ = false;
  std::size_t capacity_bytes_before_ = 0;
  std::int64_t total_pivots_ = 0;
  std::int64_t bland_activations_ = 0;
  std::int64_t refactor_count_ = 0;
  std::int64_t refactor_failures_ = 0;
  std::int64_t bump_peak_ = 0;
  std::int64_t eta_peak_ = 0;
  std::int64_t pricing_sections_ = 0;
};

/// The per-thread default arena: workspace reuse is the default, not a
/// per-call-site opt-in. Every thread that solves LPs — each BatchRunner /
/// SolveService worker, each pipeline's calling thread — keeps one warm
/// workspace, so a sequence of solves stops churning the heap with no API
/// changes at any call site. Safe because solve_lp_revised never nests on
/// one thread (the engine does not call back into solve_lp), and a
/// thread_local is exclusive to its thread by construction. Callers that
/// need a genuinely cold solve (tests, allocation baselines) pass their
/// own fresh workspace via SimplexOptions::workspace, which always wins.
SimplexWorkspace& thread_default_workspace() {
  static thread_local SimplexWorkspace workspace;
  return workspace;
}

}  // namespace

LpSolution solve_lp_revised(const LpModel& model, const SimplexOptions& options) {
  SimplexOptions opts = options;
  if (!opts.workspace) opts.workspace = &thread_default_workspace();
  PresolvedLp presolved = presolve_lp(model, opts);
  trace_set(opts.trace, "presolve.rows.dropped",
            presolved.summary.rows_dropped);
  trace_set(opts.trace, "presolve.cols.fixed", presolved.summary.cols_fixed);
  trace_set(opts.trace, "presolve.rows.normalized",
            presolved.summary.rows_normalized);
  LpSolution solution;
  if (presolved.summary.infeasible) {
    solution.status = LpStatus::kInfeasible;
    return solution;
  }
  // On the identity fast path the reduced model was never built: solve the
  // original directly, and skip the value remap / objective offset (both
  // are identity transforms by construction).
  RevisedSimplex engine(presolved.identity ? model : presolved.model, opts);
  solution = engine.solve();
  if (solution.status == LpStatus::kOptimal &&
      presolved.summary.unbounded_if_feasible) {
    solution.status = LpStatus::kUnbounded;
    solution.values.clear();
    return solution;
  }
  if (solution.status == LpStatus::kOptimal && !presolved.identity) {
    std::vector<double> values(static_cast<std::size_t>(model.num_variables()),
                               0.0);
    for (int c = 0; c < model.num_variables(); ++c) {
      const int mapped = presolved.column_map[static_cast<std::size_t>(c)];
      values[static_cast<std::size_t>(c)] =
          mapped >= 0 ? solution.values[static_cast<std::size_t>(mapped)]
                      : presolved.fixed_values[static_cast<std::size_t>(c)];
    }
    solution.values = std::move(values);
    solution.objective += presolved.summary.objective_offset;
  }
  return solution;
}

}  // namespace calisched

#include "lp/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace calisched {

void EtaFile::append(int pivot_row, const std::vector<double>& w) {
  begin_eta(pivot_row, w[static_cast<std::size_t>(pivot_row)]);
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (static_cast<int>(i) == pivot_row) continue;
    if (w[i] != 0.0) push(static_cast<int>(i), w[i]);
  }
}

void EtaFile::ftran(std::vector<double>& v) const {
  const int* const rows = rows_.data();
  const double* const values = values_.data();
  double* const x = v.data();
  std::int64_t fired = 0;
  std::int64_t entries = 0;
  for (std::size_t e = 0; e < pivot_rows_.size(); ++e) {
    const auto r = static_cast<std::size_t>(pivot_rows_[e]);
    const double vr = x[r];
    if (vr == 0.0) continue;
    const double t = vr * pivot_recips_[e];
    x[r] = t;
    const std::size_t end = starts_[e + 1];
    ++fired;
    entries += static_cast<std::int64_t>(end - starts_[e]);
    // Rows within one eta are pairwise distinct, so the scatter has no
    // intra-loop dependence and is safe to vectorize.
#pragma omp simd
    for (std::size_t k = starts_[e]; k < end; ++k) {
      x[static_cast<std::size_t>(rows[k])] -= values[k] * t;
    }
  }
  stats_.fired += fired;
  stats_.entries += entries;
}

void EtaFile::ftran_tracked(std::vector<double>& v,
                            std::vector<int>& touched) const {
  const int* const rows = rows_.data();
  const double* const values = values_.data();
  double* const x = v.data();
  std::int64_t fired = 0;
  std::int64_t entries = 0;
  for (std::size_t e = 0; e < pivot_rows_.size(); ++e) {
    const auto r = static_cast<std::size_t>(pivot_rows_[e]);
    const double vr = x[r];
    if (vr == 0.0) continue;
    const double t = vr * pivot_recips_[e];
    x[r] = t;
    const std::size_t end = starts_[e + 1];
    ++fired;
    entries += static_cast<std::int64_t>(end - starts_[e]);
    for (std::size_t k = starts_[e]; k < end; ++k) {
      const auto row = static_cast<std::size_t>(rows[k]);
      if (x[row] == 0.0) touched.push_back(rows[k]);
      x[row] -= values[k] * t;
    }
  }
  stats_.fired += fired;
  stats_.entries += entries;
}

void EtaFile::ftran_indexed(std::vector<double>& v, std::vector<int>& touched,
                            const std::vector<int>& eta_of_row,
                            std::vector<int>& heap) const {
  // Min-heap of eta indices still to fire; equivalent to ftran() because an
  // eta acts only when v is nonzero at its pivot row, and fill created
  // behind the frontier (at an already-passed eta's pivot row) is ignored
  // by a sequential ftran() too. The heap lives in caller scratch
  // (std::greater -> min-heap) so this allocates nothing in steady state.
  const auto heap_less = std::greater<int>{};
  heap.clear();
  for (const int row : touched) {
    const int e = eta_of_row[static_cast<std::size_t>(row)];
    if (e >= 0) heap.push_back(e);
  }
  std::make_heap(heap.begin(), heap.end(), heap_less);
  std::int64_t fired = 0;
  std::int64_t entries = 0;
  int last = -1;
  while (!heap.empty()) {
    const int e = heap.front();
    std::pop_heap(heap.begin(), heap.end(), heap_less);
    heap.pop_back();
    if (e == last) continue;  // duplicate entry
    last = e;
    const auto ei = static_cast<std::size_t>(e);
    const auto r = static_cast<std::size_t>(pivot_rows_[ei]);
    const double vr = v[r];
    if (vr == 0.0) continue;  // cancelled before this eta fired
    const double t = vr * pivot_recips_[ei];
    v[r] = t;
    const std::size_t end = starts_[ei + 1];
    ++fired;
    entries += static_cast<std::int64_t>(end - starts_[ei]);
    for (std::size_t k = starts_[ei]; k < end; ++k) {
      const auto row = static_cast<std::size_t>(rows_[k]);
      if (v[row] == 0.0) {
        touched.push_back(rows_[k]);
        const int e2 = eta_of_row[row];
        if (e2 > e) {
          heap.push_back(e2);
          std::push_heap(heap.begin(), heap.end(), heap_less);
        }
      }
      v[row] -= values_[k] * t;
    }
  }
  stats_.fired += fired;
  stats_.entries += entries;
}

void EtaFile::btran(std::vector<double>& y) const {
  const int* const rows = rows_.data();
  const double* const values = values_.data();
  const double* const yd = y.data();
  std::int64_t entries = 0;
  for (std::size_t e = pivot_rows_.size(); e-- > 0;) {
    const std::size_t begin = starts_[e];
    const std::size_t end = starts_[e + 1];
    entries += static_cast<std::int64_t>(end - begin);
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t k = begin;
    for (; k + 4 <= end; k += 4) {
      s0 += values[k] * yd[static_cast<std::size_t>(rows[k])];
      s1 += values[k + 1] * yd[static_cast<std::size_t>(rows[k + 1])];
      s2 += values[k + 2] * yd[static_cast<std::size_t>(rows[k + 2])];
      s3 += values[k + 3] * yd[static_cast<std::size_t>(rows[k + 3])];
    }
    for (; k < end; ++k) {
      s0 += values[k] * yd[static_cast<std::size_t>(rows[k])];
    }
    const auto r = static_cast<std::size_t>(pivot_rows_[e]);
    y[r] = (y[r] - ((s0 + s1) + (s2 + s3))) * pivot_recips_[e];
  }
  stats_.fired += static_cast<std::int64_t>(pivot_rows_.size());
  stats_.entries += entries;
}

}  // namespace calisched

#include "lp/sparse.hpp"

#include <cmath>
#include <functional>
#include <queue>

namespace calisched {

void EtaFile::append(int pivot_row, const std::vector<double>& w) {
  const std::size_t begin = values_.size();
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (static_cast<int>(i) == pivot_row) continue;
    if (w[i] != 0.0) {
      rows_.push_back(static_cast<int>(i));
      values_.push_back(w[i]);
    }
  }
  etas_.push_back(Eta{pivot_row, 1.0 / w[static_cast<std::size_t>(pivot_row)],
                      begin, values_.size()});
}

void EtaFile::ftran(std::vector<double>& v) const {
  for (const Eta& eta : etas_) {
    const auto r = static_cast<std::size_t>(eta.pivot_row);
    const double vr = v[r];
    if (vr == 0.0) continue;
    const double t = vr * eta.pivot_recip;
    v[r] = t;
    for (std::size_t k = eta.begin; k < eta.end; ++k) {
      v[static_cast<std::size_t>(rows_[k])] -= values_[k] * t;
    }
  }
}

void EtaFile::ftran_tracked(std::vector<double>& v,
                            std::vector<int>& touched) const {
  for (const Eta& eta : etas_) {
    const auto r = static_cast<std::size_t>(eta.pivot_row);
    const double vr = v[r];
    if (vr == 0.0) continue;
    const double t = vr * eta.pivot_recip;
    v[r] = t;
    for (std::size_t k = eta.begin; k < eta.end; ++k) {
      const auto row = static_cast<std::size_t>(rows_[k]);
      if (v[row] == 0.0) touched.push_back(rows_[k]);
      v[row] -= values_[k] * t;
    }
  }
}

void EtaFile::ftran_indexed(std::vector<double>& v, std::vector<int>& touched,
                            const std::vector<int>& eta_of_row) const {
  // Min-heap of eta indices still to fire; equivalent to ftran() because an
  // eta acts only when v is nonzero at its pivot row, and fill created
  // behind the frontier (at an already-passed eta's pivot row) is ignored
  // by a sequential ftran() too.
  std::priority_queue<int, std::vector<int>, std::greater<int>> pending;
  for (const int row : touched) {
    const int e = eta_of_row[static_cast<std::size_t>(row)];
    if (e >= 0) pending.push(e);
  }
  int last = -1;
  while (!pending.empty()) {
    const int e = pending.top();
    pending.pop();
    if (e == last) continue;  // duplicate entry
    last = e;
    const Eta& eta = etas_[static_cast<std::size_t>(e)];
    const auto r = static_cast<std::size_t>(eta.pivot_row);
    const double vr = v[r];
    if (vr == 0.0) continue;  // cancelled before this eta fired
    const double t = vr * eta.pivot_recip;
    v[r] = t;
    for (std::size_t k = eta.begin; k < eta.end; ++k) {
      const auto row = static_cast<std::size_t>(rows_[k]);
      if (v[row] == 0.0) {
        touched.push_back(rows_[k]);
        const int e2 = eta_of_row[row];
        if (e2 > e) pending.push(e2);
      }
      v[row] -= values_[k] * t;
    }
  }
}

void EtaFile::btran(std::vector<double>& y) const {
  for (std::size_t e = etas_.size(); e-- > 0;) {
    const Eta& eta = etas_[e];
    const auto r = static_cast<std::size_t>(eta.pivot_row);
    double sum = y[r];
    for (std::size_t k = eta.begin; k < eta.end; ++k) {
      sum -= values_[k] * y[static_cast<std::size_t>(rows_[k])];
    }
    y[r] = sum * eta.pivot_recip;
  }
}

}  // namespace calisched

#include <cassert>

#include "mm/mm.hpp"

namespace calisched {

MMResult SpeedupMM::minimize(const Instance& instance,
                             const RunLimits& limits) const {
  assert(speed_ >= 1);
  // Equivalent reformulation of "machines speed_ times faster": stretch the
  // timeline by speed_ and keep processing times. A job of p time units on
  // an s-speed machine occupies p/s real time = p stretched units.
  Instance scaled;
  scaled.machines = instance.machines;
  scaled.T = instance.T * speed_;
  scaled.jobs.reserve(instance.size());
  for (const Job& job : instance.jobs) {
    scaled.jobs.push_back(
        Job{job.id, job.release * speed_, job.deadline * speed_, job.proc});
  }
  MMResult result = inner_->minimize(scaled, limits);
  result.algorithm = name();
  if (result.feasible) {
    // Inner starts are in stretched units, i.e. 1/speed_ of a real unit —
    // exactly MMSchedule's tick convention (compounding any inner speed).
    result.schedule.speed *= speed_;
  }
  return result;
}

}  // namespace calisched

#include "mm/lower_bounds.hpp"

#include <algorithm>
#include <vector>

#include "util/arith.hpp"

namespace calisched {

int mm_interval_load_bound(const Instance& instance) {
  if (instance.empty()) return 0;
  std::vector<Time> releases, deadlines;
  releases.reserve(instance.size());
  deadlines.reserve(instance.size());
  for (const Job& job : instance.jobs) {
    releases.push_back(job.release);
    deadlines.push_back(job.deadline);
  }
  std::sort(releases.begin(), releases.end());
  releases.erase(std::unique(releases.begin(), releases.end()), releases.end());
  std::sort(deadlines.begin(), deadlines.end());
  deadlines.erase(std::unique(deadlines.begin(), deadlines.end()), deadlines.end());

  int best = 1;
  for (const Time a : releases) {
    for (const Time b : deadlines) {
      if (b <= a) continue;
      Time nested_work = 0;
      for (const Job& job : instance.jobs) {
        if (a <= job.release && job.deadline <= b) nested_work += job.proc;
      }
      if (nested_work > 0) {
        best = std::max(best, static_cast<int>(ceil_div(nested_work, b - a)));
      }
    }
  }
  return best;
}

int mm_tight_overlap_bound(const Instance& instance) {
  if (instance.empty()) return 0;
  // Sweep over (time, +-1) events of zero-slack job intervals.
  std::vector<std::pair<Time, int>> events;
  for (const Job& job : instance.jobs) {
    if (job.slack() == 0) {
      events.emplace_back(job.release, +1);
      events.emplace_back(job.deadline, -1);
    }
  }
  std::sort(events.begin(), events.end());
  int current = 0;
  int best = 1;
  for (const auto& [time, delta] : events) {
    current += delta;
    best = std::max(best, current);
  }
  return best;
}

int mm_lower_bound(const Instance& instance) {
  if (instance.empty()) return 0;
  return std::max(mm_interval_load_bound(instance),
                  mm_tight_overlap_bound(instance));
}

}  // namespace calisched

// Exact machine minimization: engine dispatch plus the original
// depth-first branch-and-bound (kept as the differential oracle for the
// layered state-space engine in src/exact/state_space.cpp).
//
// Completeness argument: any feasible schedule can be left-shifted so that
// every job starts either at its release time or at the completion of the
// previous job on its machine. Such a schedule is determined by an ordered
// partition of jobs onto machines, with start times computed greedily, so
// searching over "which unscheduled job goes next on which machine-frontier"
// covers all left-shifted schedules. Identical machines make frontiers with
// equal free times interchangeable, so we branch on *distinct* free times.
#include <algorithm>
#include <limits>
#include <vector>

#include "exact/state_space.hpp"
#include "mm/lower_bounds.hpp"
#include "mm/mm.hpp"

namespace calisched {
namespace {

class FeasibilitySearch {
 public:
  FeasibilitySearch(const Instance& instance, int machines,
                    std::int64_t node_budget,
                    const RunLimits& limits = RunLimits::none())
      : instance_(instance),
        machines_(machines),
        node_budget_(node_budget),
        poller_(limits, /*stride=*/1024) {
    free_at_.assign(static_cast<std::size_t>(machines_),
                    std::numeric_limits<Time>::min());
    done_.assign(instance_.size(), false);
    // Deadline order makes the DFS try urgent jobs first.
    order_.resize(instance_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      return instance_.jobs[a].deadline < instance_.jobs[b].deadline;
    });
  }

  [[nodiscard]] bool run() { return dfs(instance_.size()); }
  [[nodiscard]] std::int64_t nodes() const noexcept { return nodes_; }
  /// How the search ended: kOk means run()'s verdict is definitive;
  /// kLimitExceeded means the node budget ran out; otherwise the RunLimits
  /// stop reason. Budget exhaustion is never folded into "infeasible".
  [[nodiscard]] SolveStatus status() const noexcept {
    if (poller_.status() != SolveStatus::kOk) return poller_.status();
    return budget_hit_ ? SolveStatus::kLimitExceeded : SolveStatus::kOk;
  }
  [[nodiscard]] MMSchedule schedule() const {
    MMSchedule result;
    result.machines = machines_;
    result.jobs = placed_;
    return result;
  }

 private:
  bool dfs(std::size_t remaining) {
    if (remaining == 0) return true;
    if (++nodes_ > node_budget_ || poller_.poll() != SolveStatus::kOk) {
      budget_hit_ = true;  // either way: abandon the whole search
      return false;
    }
    // Candidate start frontiers: one machine per distinct free time.
    std::vector<int> frontiers;
    frontiers.reserve(static_cast<std::size_t>(machines_));
    {
      std::vector<Time> seen;
      for (int machine = 0; machine < machines_; ++machine) {
        const Time f = free_at_[static_cast<std::size_t>(machine)];
        if (std::find(seen.begin(), seen.end(), f) == seen.end()) {
          seen.push_back(f);
          frontiers.push_back(machine);
        }
      }
    }
    for (const std::size_t job_index : order_) {
      if (done_[job_index]) continue;
      const Job& job = instance_.jobs[job_index];
      // Deduplicate resulting start times across frontiers: frontiers with
      // free <= r_j all give start = r_j; keep only the one with the largest
      // free time (leaves the most room elsewhere).
      int best_at_release = -1;
      Time best_free = std::numeric_limits<Time>::min();
      std::vector<std::pair<Time, int>> starts;  // (start, machine)
      for (const int machine : frontiers) {
        const Time f = free_at_[static_cast<std::size_t>(machine)];
        if (f <= job.release) {
          if (best_at_release < 0 || f > best_free) {
            best_at_release = machine;
            best_free = f;
          }
        } else if (f + job.proc <= job.deadline) {
          starts.emplace_back(f, machine);
        }
      }
      if (best_at_release >= 0) {
        starts.emplace_back(job.release, best_at_release);
      }
      std::sort(starts.begin(), starts.end());
      for (const auto& [start, machine] : starts) {
        if (start + job.proc > job.deadline) continue;
        const Time saved = free_at_[static_cast<std::size_t>(machine)];
        free_at_[static_cast<std::size_t>(machine)] = start + job.proc;
        done_[job_index] = true;
        placed_.push_back({job.id, machine, start});
        if (dfs(remaining - 1)) return true;
        placed_.pop_back();
        done_[job_index] = false;
        free_at_[static_cast<std::size_t>(machine)] = saved;
        if (budget_hit_) return false;
      }
    }
    return false;
  }

  const Instance& instance_;
  int machines_;
  std::int64_t node_budget_;
  LimitPoller poller_;
  std::vector<Time> free_at_;
  std::vector<bool> done_;
  std::vector<std::size_t> order_;
  std::vector<ScheduledJob> placed_;
  std::int64_t nodes_ = 0;
  bool budget_hit_ = false;
};

}  // namespace

MMFeasibility exact_mm_feasibility(const Instance& instance, int machines,
                                   ExactEngine engine,
                                   std::int64_t node_budget,
                                   const RunLimits& limits) {
  MMFeasibility result;
  if (instance.empty()) {
    result.feasible = true;
    result.schedule.machines = machines;
    return result;
  }
  if (engine == ExactEngine::kStateSpace) {
    StateSpaceMmResult found =
        state_space_mm_feasible(instance, machines, node_budget, limits);
    result.status = found.status;
    result.feasible = found.feasible;
    result.schedule = std::move(found.schedule);
    result.nodes = found.states;
    return result;
  }
  FeasibilitySearch search(instance, machines, node_budget, limits);
  const bool feasible = search.run();
  result.status = search.status();
  result.nodes = search.nodes();
  if (result.status == SolveStatus::kOk && feasible) {
    result.feasible = true;
    result.schedule = search.schedule();
  }
  return result;
}

MMResult ExactMM::minimize(const Instance& instance,
                           const RunLimits& limits) const {
  MMResult result;
  result.algorithm = name();
  if (instance.empty()) {
    result.feasible = true;
    result.schedule.machines = 0;
    return result;
  }
  const std::int64_t budget =
      limits.node_budget > 0 ? limits.node_budget : node_budget_;
  const int n = static_cast<int>(instance.size());
  for (int m = mm_lower_bound(instance); m <= n; ++m) {
    MMFeasibility search =
        exact_mm_feasibility(instance, m, engine_, budget, limits);
    result.search_nodes += search.nodes;
    if (search.status == SolveStatus::kLimitExceeded) {
      // Node/state budget: give up on exactness; report the greedy
      // schedule instead (the algorithm string records the downgrade).
      MMResult fallback = GreedyEdfMM().minimize(instance, limits);
      fallback.algorithm = name() + "(budget-exceeded)->greedy-edf";
      fallback.search_nodes = result.search_nodes;
      return fallback;
    }
    if (search.status != SolveStatus::kOk) {
      // Deadline / cancellation: stop immediately, no fallback work.
      result.status = search.status;
      return result;
    }
    if (search.feasible) {
      result.feasible = true;
      result.schedule = std::move(search.schedule);
      return result;
    }
  }
  result.status = SolveStatus::kInfeasible;
  return result;  // unreachable: m = n is always feasible
}

}  // namespace calisched

#include "mm/lp_rounding_mm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "lp/simplex.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace calisched {
namespace {

struct StartTimeLp {
  LpModel model;
  /// Per job (instance order): (start time, column) pairs.
  std::vector<std::vector<std::pair<Time, int>>> start_columns;
};

std::optional<StartTimeLp> build_start_time_lp(const Instance& instance,
                                               Time max_slots) {
  const Time origin = instance.min_release();
  const Time horizon = instance.max_deadline();
  if (horizon - origin > max_slots) return std::nullopt;

  StartTimeLp built;
  LpModel& model = built.model;
  const int machines_var = model.add_variable("M", 1.0);
  std::vector<int> load_row(static_cast<std::size_t>(horizon - origin), -1);
  auto row_for_slot = [&](Time t) {
    auto& row = load_row[static_cast<std::size_t>(t - origin)];
    if (row < 0) {
      row = model.add_row("load@" + std::to_string(t), RowSense::kLe, 0.0);
      model.add_coefficient(row, machines_var, -1.0);
    }
    return row;
  };
  built.start_columns.resize(instance.size());
  for (std::size_t j = 0; j < instance.size(); ++j) {
    const Job& job = instance.jobs[j];
    const int coverage = model.add_row("start@j" + std::to_string(job.id),
                                       RowSense::kEq, 1.0);
    for (Time s = job.release; s <= job.deadline - job.proc; ++s) {
      const int column = model.add_variable(
          "y@j" + std::to_string(job.id) + "s" + std::to_string(s), 0.0);
      model.add_coefficient(coverage, column, 1.0);
      for (Time t = s; t < s + job.proc; ++t) {
        model.add_coefficient(row_for_slot(t), column, 1.0);
      }
      built.start_columns[j].emplace_back(s, column);
    }
  }
  return built;
}

/// Interval-colors fixed job executions; returns the schedule (machines =
/// max overlap).
MMSchedule color_starts(const Instance& instance, const std::vector<Time>& starts) {
  struct Run {
    std::size_t job_index;
    Time start;
  };
  std::vector<Run> runs;
  runs.reserve(instance.size());
  for (std::size_t j = 0; j < instance.size(); ++j) {
    runs.push_back({j, starts[j]});
  }
  std::sort(runs.begin(), runs.end(), [&](const Run& a, const Run& b) {
    return a.start != b.start ? a.start < b.start
                              : instance.jobs[a.job_index].id <
                                    instance.jobs[b.job_index].id;
  });
  MMSchedule schedule;
  std::vector<Time> machine_free;
  for (const Run& run : runs) {
    const Job& job = instance.jobs[run.job_index];
    int machine = -1;
    for (std::size_t i = 0; i < machine_free.size(); ++i) {
      if (machine_free[i] <= run.start) {
        machine = static_cast<int>(i);
        break;
      }
    }
    if (machine < 0) {
      machine = static_cast<int>(machine_free.size());
      machine_free.push_back(std::numeric_limits<Time>::min());
    }
    machine_free[static_cast<std::size_t>(machine)] = run.start + job.proc;
    schedule.jobs.push_back({job.id, machine, run.start});
  }
  schedule.machines = static_cast<int>(machine_free.size());
  return schedule;
}

}  // namespace

std::optional<double> mm_start_time_lp_bound(const Instance& instance,
                                             Time max_slots,
                                             const SimplexOptions& lp) {
  // An already-expired limit answers before the (potentially large) LP
  // build, mirroring the entry checks of the MM boxes themselves.
  if (lp.limits.check() != SolveStatus::kOk) return std::nullopt;
  if (instance.empty()) return 0.0;
  auto built = build_start_time_lp(instance, max_slots);
  if (!built) return std::nullopt;
  const LpSolution solution = solve_lp(built->model, lp);
  if (solution.status != LpStatus::kOptimal) return std::nullopt;
  return solution.objective;
}

MMResult LpRoundingMM::minimize(const Instance& instance,
                                const RunLimits& limits) const {
  return minimize_impl(instance, limits, nullptr);
}

MMResult LpRoundingMM::minimize_traced(const Instance& instance,
                                       const RunLimits& limits,
                                       TraceContext* trace) const {
  return minimize_impl(instance, limits, trace);
}

MMResult LpRoundingMM::minimize_impl(const Instance& instance,
                                     const RunLimits& limits,
                                     TraceContext* trace) const {
  MMResult result;
  result.algorithm = name();
  if (instance.empty()) {
    result.feasible = true;
    result.schedule.machines = 0;
    return result;
  }
  auto built = build_start_time_lp(instance, options_.max_slots);
  std::optional<LpSolution> solution;
  if (built) {
    SimplexOptions lp_options = options_.lp;
    lp_options.limits = limits;
    // A caller trace (the telemetry overload) gets the LP telemetry as an
    // "lp" child; otherwise whatever sink Options::lp configured stands.
    if (trace != nullptr) lp_options.trace = &trace->child("lp");
    LpSolution solved = solve_lp(built->model, lp_options);
    if (solved.status == LpStatus::kDeadlineExceeded ||
        solved.status == LpStatus::kCancelled) {
      result.status = lp_status_to_solve(solved.status);
      return result;
    }
    if (solved.status == LpStatus::kOptimal) solution = std::move(solved);
  }
  if (!solution) {
    // Horizon too large or LP trouble: honest fallback.
    MMResult fallback = GreedyEdfMM().minimize(instance, limits);
    fallback.algorithm = name() + "(fallback->greedy-edf)";
    return fallback;
  }

  // Per-job categorical distributions over start times.
  std::vector<std::vector<double>> weights(instance.size());
  for (std::size_t j = 0; j < instance.size(); ++j) {
    weights[j].reserve(built->start_columns[j].size());
    double total = 0.0;
    for (const auto& [start, column] : built->start_columns[j]) {
      const double w = std::max(0.0, solution->values[static_cast<std::size_t>(column)]);
      weights[j].push_back(w);
      total += w;
    }
    if (total <= 1e-12) {
      // Degenerate (should not happen at optimality): uniform fallback.
      std::fill(weights[j].begin(), weights[j].end(), 1.0);
    }
  }
  const auto sample_starts = [&](Rng* rng) {
    std::vector<Time> starts(instance.size());
    for (std::size_t j = 0; j < instance.size(); ++j) {
      const auto& options = built->start_columns[j];
      std::size_t pick = 0;
      if (rng == nullptr) {
        // Deterministic arg-max sample.
        pick = static_cast<std::size_t>(
            std::max_element(weights[j].begin(), weights[j].end()) -
            weights[j].begin());
      } else {
        double total = 0.0;
        for (const double w : weights[j]) total += w;
        double draw = rng->uniform01() * total;
        for (std::size_t k = 0; k < weights[j].size(); ++k) {
          draw -= weights[j][k];
          if (draw <= 0.0) {
            pick = k;
            break;
          }
          pick = k;  // numerical tail: keep last
        }
      }
      starts[j] = options[pick].first;
    }
    return starts;
  };

  Rng rng(options_.seed);
  MMSchedule best = color_starts(instance, sample_starts(nullptr));
  for (int sample = 0; sample < options_.samples; ++sample) {
    const MMSchedule candidate = color_starts(instance, sample_starts(&rng));
    if (candidate.machines < best.machines) best = candidate;
  }
  result.feasible = true;
  result.schedule = std::move(best);
  return result;
}

}  // namespace calisched

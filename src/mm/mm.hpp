// Machine-minimization (MM) black boxes.
//
// The short-window algorithm (Section 4) and the reduction of Theorem 1
// treat "an algorithm for the MM problem" as a black box: given jobs with
// release times, deadlines, and processing times, produce a nonpreemptive
// schedule on as few machines as possible.
//
// The paper's concrete instantiations (Chuzhoy et al., Raghavan-Thompson,
// Im et al.) are approximation *analyses*; as practical boxes we provide:
//   * GreedyEdfMM  — polynomial first-fit EDF list scheduling over
//                    increasing machine counts (always succeeds by m = n);
//   * ExactMM      — exact search over left-shifted schedules (layered
//                    state-space engine by default, branch-and-bound as a
//                    differential oracle; measures realized alpha);
//   * UnitEdfMM    — exact and polynomial for unit processing times.
#pragma once

#include <memory>
#include <string>

#include "exact/engine.hpp"
#include "runtime/limits.hpp"
#include "runtime/status.hpp"
#include "verify/verify.hpp"

namespace calisched {

class TraceContext;

struct MMResult {
  bool feasible = false;       ///< false if the box gave up or was stopped
  /// Structured outcome: kOk iff feasible; kLimitExceeded (node cap),
  /// kDeadlineExceeded / kCancelled (RunLimits) otherwise.
  SolveStatus status = SolveStatus::kOk;
  MMSchedule schedule;         ///< valid when feasible
  std::string algorithm;       ///< which box produced it
  std::int64_t search_nodes = 0;  ///< branch-and-bound telemetry (0 for greedy)
};

/// Abstract MM black box; implementations must return verifier-clean
/// schedules whenever they report feasible, and must honor `limits`
/// (deadline + cancellation) by returning the matching failure status
/// promptly instead of running to completion.
class MachineMinimizer {
 public:
  virtual ~MachineMinimizer() = default;
  [[nodiscard]] virtual MMResult minimize(const Instance& instance,
                                          const RunLimits& limits) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Unlimited run (legacy signature; forwards RunLimits::none()).
  [[nodiscard]] MMResult minimize(const Instance& instance) const {
    return minimize(instance, RunLimits::none());
  }

  /// minimize() plus telemetry: records an "mm" span and the invocation /
  /// machines-returned / search-node counters into `trace` (no-op when
  /// null). Every pipeline call site goes through this overload.
  [[nodiscard]] MMResult minimize(const Instance& instance,
                                  const RunLimits& limits,
                                  TraceContext* trace) const;
  [[nodiscard]] MMResult minimize(const Instance& instance,
                                  TraceContext* trace) const {
    return minimize(instance, RunLimits::none(), trace);
  }

 protected:
  /// Dispatch hook for the telemetry overload above. Boxes whose solve
  /// runs a sub-solver that itself accepts a TraceContext (the LP-rounding
  /// box) override this to thread `trace` into the sub-solver's options;
  /// the default forwards to the 2-arg overload unchanged. Without this
  /// hook the telemetry overload silently dropped the caller's trace
  /// before a box could attach it — the same options-dropping class as
  /// constructing a fresh SimplexOptions over a caller-supplied one.
  [[nodiscard]] virtual MMResult minimize_traced(const Instance& instance,
                                                 const RunLimits& limits,
                                                 TraceContext* trace) const {
    (void)trace;
    return minimize(instance, limits);
  }
};

/// First-fit EDF list scheduling, trying m = lower_bound(I), ..., n.
/// Polynomial; the measured machine count is the "alpha * w" the
/// short-window analysis charges against.
class GreedyEdfMM final : public MachineMinimizer {
 public:
  using MachineMinimizer::minimize;
  [[nodiscard]] MMResult minimize(const Instance& instance,
                                  const RunLimits& limits) const override;
  [[nodiscard]] std::string name() const override { return "greedy-edf"; }
};

/// Exact MM over left-shifted schedules with a node/state budget.
/// Two interchangeable engines: the layered state-space search (default;
/// src/exact/state_space.hpp) and the original depth-first branch-and-bound,
/// kept as a differential oracle. Exceeding the budget falls back to the
/// greedy result (and the MMResult notes it via `algorithm`); the effective
/// budget is `limits.node_budget` when set, else the constructor's.
class ExactMM final : public MachineMinimizer {
 public:
  explicit ExactMM(std::int64_t node_budget = 4'000'000,
                   ExactEngine engine = ExactEngine::kStateSpace)
      : node_budget_(node_budget), engine_(engine) {}
  using MachineMinimizer::minimize;
  [[nodiscard]] MMResult minimize(const Instance& instance,
                                  const RunLimits& limits) const override;
  [[nodiscard]] std::string name() const override {
    return engine_ == ExactEngine::kStateSpace ? "exact-state" : "exact-bnb";
  }

 private:
  std::int64_t node_budget_;
  ExactEngine engine_;
};

/// Exact MM for unit processing times (p_j = 1 for all j): timestep-by-
/// timestep EDF is an optimal feasibility test, searched over m.
/// Requires a unit-job instance (asserts otherwise).
class UnitEdfMM final : public MachineMinimizer {
 public:
  using MachineMinimizer::minimize;
  [[nodiscard]] MMResult minimize(const Instance& instance,
                                  const RunLimits& limits) const override;
  [[nodiscard]] std::string name() const override { return "unit-edf"; }
};

/// s-speed resource augmentation as a wrapper (the "s-speed
/// alpha-approximation algorithm" of Theorem 1): gives the inner box
/// machines `speed` times faster by scaling the instance timeline
/// (r, d, T multiplied by speed; processing times unchanged), then
/// reports the inner schedule in 1/speed-unit ticks via MMSchedule::speed.
/// Speed augmentation can only reduce the machine count.
class SpeedupMM final : public MachineMinimizer {
 public:
  SpeedupMM(std::shared_ptr<const MachineMinimizer> inner, std::int64_t speed)
      : inner_(std::move(inner)), speed_(speed) {}
  using MachineMinimizer::minimize;
  [[nodiscard]] MMResult minimize(const Instance& instance,
                                  const RunLimits& limits) const override;
  [[nodiscard]] std::string name() const override {
    return "speed" + std::to_string(speed_) + "x(" + inner_->name() + ")";
  }

 private:
  std::shared_ptr<const MachineMinimizer> inner_;
  std::int64_t speed_;
};

/// Outcome of a single fixed-machine-count feasibility search. Unlike the
/// old optional-returning interface, a stopped search (node budget,
/// deadline, cancellation) is distinguishable from a proven-infeasible one:
/// `feasible` is a verdict only when `status == kOk`.
struct MMFeasibility {
  SolveStatus status = SolveStatus::kOk;  ///< kOk = search ran to completion
  bool feasible = false;                  ///< meaningful only when kOk
  MMSchedule schedule;                    ///< valid when kOk && feasible
  std::int64_t nodes = 0;                 ///< nodes / states explored
};

/// Nonpreemptive feasibility of `instance` on exactly `machines` machines,
/// via the engine of choice (the same searches ExactMM uses). Budget
/// exhaustion reports kLimitExceeded, never a feasibility verdict.
[[nodiscard]] MMFeasibility exact_mm_feasibility(
    const Instance& instance, int machines,
    ExactEngine engine = ExactEngine::kStateSpace,
    std::int64_t node_budget = 4'000'000,
    const RunLimits& limits = RunLimits::none());

}  // namespace calisched

// LP randomized-rounding black box for machine minimization.
//
// The paper's concrete MM instantiations (Section 1) lean on Raghavan &
// Thompson's randomized rounding [14] and Chuzhoy et al. [8]. This box is
// the practical version of that idea:
//
//   1. Solve the *start-time* LP relaxation: y_{j,s} = fraction of job j
//      starting at integer time s in [r_j, d_j - p_j];
//         minimize M
//         s.t. sum_s y_{j,s} = 1                         for each j
//              sum_{(j,s): s <= t < s + p_j} y_{j,s} <= M  for each slot t
//      This is the nonpreemptive relaxation, at least as strong as the
//      preemptive bound in mm/lp_bound.hpp.
//   2. Sample each job's start from its y_j distribution (plus one
//      deterministic arg-max sample), take the sample with the smallest
//      maximum overlap, and interval-color the fixed executions onto
//      machines.
//
// Every sample yields a *feasible* schedule (starts are drawn from the
// job's own window); randomness only affects how many machines it needs.
// Raghavan-Thompson's analysis gives O(log n / log log n) inflation whp;
// the experiments measure the realized factor.
#pragma once

#include <optional>

#include "lp/simplex.hpp"
#include "mm/mm.hpp"

namespace calisched {

/// The start-time LP value (fractional machines); nullopt if the horizon
/// exceeds `max_slots` or the solver fails (including a deadline or
/// cancellation carried in lp.limits). ceil(value) is a certified MM lower
/// bound, dominating the preemptive bound of mm_lp_bound(). `lp` selects
/// the engine, tolerances, RunLimits, and (for repeated bound queries) an
/// optional warm start / workspace for the underlying solve.
[[nodiscard]] std::optional<double> mm_start_time_lp_bound(
    const Instance& instance, Time max_slots = 2000,
    const SimplexOptions& lp = {});

class LpRoundingMM final : public MachineMinimizer {
 public:
  struct Options {
    std::uint64_t seed = 0x5eedULL;
    int samples = 32;      ///< random rounding attempts (plus one arg-max)
    Time max_slots = 2000; ///< horizon cap; beyond it, fall back to greedy
    /// Simplex configuration for the start-time LP (engine, tolerances,
    /// warm start / workspace). The RunLimits handed to minimize() replace
    /// lp.limits for that call, so a deadline always reaches the solver.
    SimplexOptions lp;
  };

  LpRoundingMM() : options_() {}
  explicit LpRoundingMM(Options options) : options_(options) {}
  using MachineMinimizer::minimize;
  [[nodiscard]] MMResult minimize(const Instance& instance,
                                  const RunLimits& limits) const override;
  [[nodiscard]] std::string name() const override { return "lp-rounding"; }

 protected:
  /// Threads the caller's trace into the start-time LP solve (as an "lp"
  /// child context), on top of the per-call limits override. The options_
  /// copy is the only SimplexOptions this box ever constructs — every
  /// other knob (engine, tolerances, warm start, workspace) flows through
  /// from the caller-supplied Options::lp untouched.
  [[nodiscard]] MMResult minimize_traced(const Instance& instance,
                                         const RunLimits& limits,
                                         TraceContext* trace) const override;

 private:
  [[nodiscard]] MMResult minimize_impl(const Instance& instance,
                                       const RunLimits& limits,
                                       TraceContext* trace) const;

  Options options_;
};

}  // namespace calisched

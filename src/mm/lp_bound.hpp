// LP lower bound for machine minimization.
//
// Time-indexed preemptive relaxation: x_{j,t} is the amount of job j
// processed in unit slot [t, t+1) (only slots inside j's window exist),
// M is the machine count.
//   minimize M
//   s.t.  sum_t x_{j,t} = p_j            for each job j
//         x_{j,t} <= 1                   (a job runs on one machine)
//         sum_j x_{j,t} <= M             for each slot t
// Any feasible nonpreemptive schedule induces a feasible point (integral
// instances admit integer-start schedules), so ceil(LP) lower-bounds the
// true MM optimum. Strictly stronger than the combinatorial interval-load
// bound on instances where fractional packing is the binding constraint.
#pragma once

#include <optional>

#include "core/instance.hpp"
#include "lp/simplex.hpp"

namespace calisched {

/// Returns the LP value (machines, fractional), or nullopt if the LP
/// could not be solved (never happens for well-formed instances at sane
/// horizons; guarded anyway). The integer lower bound is ceil(value).
/// `options` selects the simplex engine and tolerances.
[[nodiscard]] std::optional<double> mm_lp_bound(
    const Instance& instance, const SimplexOptions& options = {});

/// max(mm_lower_bound, ceil(mm_lp_bound)); falls back to the combinatorial
/// bound when the LP is skipped (horizon too large: > max_slots slots).
[[nodiscard]] int mm_certified_bound(const Instance& instance,
                                     Time max_slots = 2000,
                                     const SimplexOptions& options = {});

}  // namespace calisched

// Combinatorial lower bounds on the number of machines for the MM problem.
//
// Used to seed the search in the MM boxes and, via Lemmas 17-18, as
// calibration lower bounds for the short-window experiments.
#pragma once

#include "core/instance.hpp"

namespace calisched {

/// The interval-load bound: for every pair (a, b) with a a release time and
/// b a deadline, all jobs whose windows nest inside [a, b) must fit, so
///     m >= ceil( sum_{[r_j,d_j) subseteq [a,b)} p_j / (b - a) ).
/// Returns the max over all pairs (>= 1 when the instance is non-empty).
[[nodiscard]] int mm_interval_load_bound(const Instance& instance);

/// The tight-window overlap bound: jobs with zero slack occupy exactly
/// [r_j, d_j); the maximum number of such intervals overlapping any point
/// is a machine lower bound.
[[nodiscard]] int mm_tight_overlap_bound(const Instance& instance);

/// max(interval-load, tight-overlap), and 0 for empty instances.
[[nodiscard]] int mm_lower_bound(const Instance& instance);

}  // namespace calisched

// Exact machine minimization for unit jobs.
//
// For p_j = 1 and integral release times, timestep EDF is an exact
// feasibility test: at each integer time run the m released jobs with the
// earliest deadlines (a standard exchange argument; matching deadlines to
// slots greedily can never be beaten). Searching m upward from the lower
// bound yields the optimum.
#include <algorithm>
#include <cassert>
#include <queue>
#include <vector>

#include "mm/lower_bounds.hpp"
#include "mm/mm.hpp"

namespace calisched {
namespace {

std::optional<MMSchedule> try_unit_edf(const Instance& instance, int machines) {
  // Jobs sorted by release; a min-heap on deadline holds the released ones.
  std::vector<const Job*> by_release;
  by_release.reserve(instance.size());
  for (const Job& job : instance.jobs) by_release.push_back(&job);
  std::sort(by_release.begin(), by_release.end(),
            [](const Job* a, const Job* b) { return a->release < b->release; });

  const auto deadline_greater = [](const Job* a, const Job* b) {
    return a->deadline > b->deadline;
  };
  std::priority_queue<const Job*, std::vector<const Job*>,
                      decltype(deadline_greater)>
      released(deadline_greater);

  MMSchedule schedule;
  schedule.machines = machines;
  std::size_t next = 0;
  Time now = by_release.empty() ? 0 : by_release.front()->release;
  while (next < by_release.size() || !released.empty()) {
    if (released.empty() && next < by_release.size()) {
      now = std::max(now, by_release[next]->release);
    }
    while (next < by_release.size() && by_release[next]->release <= now) {
      released.push(by_release[next++]);
    }
    for (int machine = 0; machine < machines && !released.empty(); ++machine) {
      const Job* job = released.top();
      released.pop();
      if (now + 1 > job->deadline) return std::nullopt;
      schedule.jobs.push_back({job->id, machine, now});
    }
    ++now;
  }
  return schedule;
}

}  // namespace

MMResult UnitEdfMM::minimize(const Instance& instance,
                             const RunLimits& limits) const {
  MMResult result;
  result.algorithm = name();
  if (instance.empty()) {
    result.feasible = true;
    result.schedule.machines = 0;
    return result;
  }
  for (const Job& job : instance.jobs) {
    assert(job.proc == 1 && "UnitEdfMM requires unit processing times");
    (void)job;
  }
  LimitPoller poller(limits, /*stride=*/1);  // one EDF attempt per poll
  const int n = static_cast<int>(instance.size());
  for (int m = mm_lower_bound(instance); m <= n; ++m) {
    if (poller.poll() != SolveStatus::kOk) {
      result.status = poller.status();
      return result;
    }
    if (auto schedule = try_unit_edf(instance, m)) {
      result.feasible = true;
      result.schedule = std::move(*schedule);
      return result;
    }
  }
  result.status = SolveStatus::kInfeasible;
  return result;  // unreachable for well-formed unit instances
}

}  // namespace calisched

#include "mm/mm.hpp"
#include "trace/trace.hpp"

namespace calisched {

MMResult MachineMinimizer::minimize(const Instance& instance,
                                    const RunLimits& limits,
                                    TraceContext* trace) const {
  TraceSpan span(trace, "mm");
  MMResult result = minimize_traced(instance, limits, trace);
  span.stop();
  if (trace) {
    trace->add("mm.invocations");
    trace->add("mm.jobs", static_cast<std::int64_t>(instance.size()));
    trace->add("mm.search_nodes", result.search_nodes);
    if (result.feasible) {
      trace->add("mm.machines.returned", result.schedule.machines);
    } else {
      trace->add("mm.failures");
    }
    trace->note("mm.algorithm", result.algorithm);
    trace->note("mm.box", name());
  }
  return result;
}

}  // namespace calisched

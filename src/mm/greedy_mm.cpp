#include <algorithm>
#include <limits>
#include <vector>

#include "mm/lower_bounds.hpp"
#include "mm/mm.hpp"

namespace calisched {
namespace {

/// One attempt at first-fit EDF list scheduling on exactly `machines`
/// machines. Dispatch rule: repeatedly take the earliest moment a machine
/// becomes available, then run the earliest-deadline job already released
/// by then; fail as soon as a job would miss its deadline.
std::optional<MMSchedule> try_edf(const Instance& instance, int machines) {
  struct Pending {
    const Job* job;
    bool done = false;
  };
  std::vector<Pending> pending;
  pending.reserve(instance.size());
  for (const Job& job : instance.jobs) pending.push_back({&job});

  std::vector<Time> free_at(static_cast<std::size_t>(machines),
                            std::numeric_limits<Time>::min());
  MMSchedule schedule;
  schedule.machines = machines;

  std::size_t remaining = pending.size();
  while (remaining > 0) {
    // Earliest machine availability and earliest pending release.
    const auto machine_it = std::min_element(free_at.begin(), free_at.end());
    Time min_release = std::numeric_limits<Time>::max();
    for (const Pending& p : pending) {
      if (!p.done) min_release = std::min(min_release, p.job->release);
    }
    const Time now = std::max(*machine_it, min_release);

    // Earliest-deadline job released by `now`.
    Pending* chosen = nullptr;
    for (Pending& p : pending) {
      if (p.done || p.job->release > now) continue;
      if (chosen == nullptr || p.job->deadline < chosen->job->deadline) {
        chosen = &p;
      }
    }
    // `now >= min_release`, so at least one released job exists.
    const Job& job = *chosen->job;
    if (now + job.proc > job.deadline) return std::nullopt;
    schedule.jobs.push_back(
        {job.id, static_cast<int>(machine_it - free_at.begin()), now});
    *machine_it = now + job.proc;
    chosen->done = true;
    --remaining;
  }
  return schedule;
}

}  // namespace

MMResult GreedyEdfMM::minimize(const Instance& instance,
                               const RunLimits& limits) const {
  MMResult result;
  result.algorithm = name();
  if (instance.empty()) {
    result.feasible = true;
    result.schedule.machines = 0;
    return result;
  }
  LimitPoller poller(limits, /*stride=*/1);  // one EDF attempt per poll
  const int n = static_cast<int>(instance.size());
  for (int m = mm_lower_bound(instance); m <= n; ++m) {
    if (poller.poll() != SolveStatus::kOk) {
      result.status = poller.status();
      return result;
    }
    if (auto schedule = try_edf(instance, m)) {
      result.feasible = true;
      result.schedule = std::move(*schedule);
      return result;
    }
  }
  // Unreachable: with m = n every job starts at its release time.
  result.status = SolveStatus::kInfeasible;
  return result;
}

}  // namespace calisched

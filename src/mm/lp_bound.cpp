#include "mm/lp_bound.hpp"

#include <cmath>

#include "lp/simplex.hpp"
#include "mm/lower_bounds.hpp"

namespace calisched {

std::optional<double> mm_lp_bound(const Instance& instance,
                                  const SimplexOptions& options) {
  if (instance.empty()) return 0.0;
  const Time origin = instance.min_release();
  const Time horizon = instance.max_deadline();

  LpModel model;
  const int machines_var = model.add_variable("M", 1.0);
  // Per-slot capacity rows, created lazily for slots some job can use.
  std::vector<int> slot_row(static_cast<std::size_t>(horizon - origin), -1);
  auto capacity_row = [&](Time t) {
    auto& row = slot_row[static_cast<std::size_t>(t - origin)];
    if (row < 0) {
      row = model.add_row("slot@" + std::to_string(t), RowSense::kLe, 0.0);
      model.add_coefficient(row, machines_var, -1.0);
    }
    return row;
  };

  for (const Job& job : instance.jobs) {
    const int coverage = model.add_row("job@" + std::to_string(job.id),
                                       RowSense::kEq,
                                       static_cast<double>(job.proc));
    for (Time t = job.release; t < job.deadline; ++t) {
      const int column = model.add_variable(
          "x@j" + std::to_string(job.id) + "t" + std::to_string(t), 0.0);
      model.add_coefficient(coverage, column, 1.0);
      model.add_coefficient(capacity_row(t), column, 1.0);
      const int unit = model.add_row(
          "unit@j" + std::to_string(job.id) + "t" + std::to_string(t),
          RowSense::kLe, 1.0);
      model.add_coefficient(unit, column, 1.0);
    }
  }

  const LpSolution solution = solve_lp(model, options);
  if (solution.status != LpStatus::kOptimal) return std::nullopt;
  return solution.objective;
}

int mm_certified_bound(const Instance& instance, Time max_slots,
                       const SimplexOptions& options) {
  const int combinatorial = mm_lower_bound(instance);
  if (instance.empty()) return combinatorial;
  if (instance.max_deadline() - instance.min_release() > max_slots) {
    return combinatorial;
  }
  const auto lp = mm_lp_bound(instance, options);
  if (!lp) return combinatorial;
  const int lp_bound = static_cast<int>(std::ceil(*lp - 1e-6));
  return std::max(combinatorial, lp_bound);
}

}  // namespace calisched

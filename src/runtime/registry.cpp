#include "runtime/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "baselines/baseline.hpp"
#include "baselines/exact_ise.hpp"
#include "baselines/gap_min.hpp"
#include "calib/cost_dp.hpp"
#include "calib/exact_cost.hpp"
#include "calib/greedy_cost.hpp"
#include "longwin/long_pipeline.hpp"
#include "mm/lp_rounding_mm.hpp"
#include "mm/mm.hpp"
#include "online/online.hpp"
#include "shortwin/short_pipeline.hpp"
#include "solver/ise_solver.hpp"
#include "trace/trace.hpp"

namespace calisched {
namespace {

bool all_long(const Instance& instance) {
  return std::all_of(instance.jobs.begin(), instance.jobs.end(),
                     [&](const Job& job) { return job.is_long(instance.T); });
}

// The short-window pipeline's own precondition (gamma = 2): window <= 2T.
bool all_short(const Instance& instance) {
  return std::all_of(instance.jobs.begin(), instance.jobs.end(), [&](const Job& job) {
    return job.window() <= 2 * instance.T;
  });
}

bool all_unit(const Instance& instance) {
  return std::all_of(instance.jobs.begin(), instance.jobs.end(),
                     [](const Job& job) { return job.proc == 1; });
}

/// Shared adapter skeleton: entry limit check, capability validation, and
/// post-hoc verification of ISE schedules happen here so every concrete
/// adapter only translates its solver's result shape.
class AdapterBase : public Algorithm {
 public:
  AdapterBase(std::string name, AlgorithmCapabilities caps,
              bool require_tise = false)
      : name_(std::move(name)), caps_(caps), require_tise_(require_tise) {}

  [[nodiscard]] std::string name() const final { return name_; }
  [[nodiscard]] AlgorithmCapabilities capabilities() const final { return caps_; }

  [[nodiscard]] RunResult run(const Instance& instance, const RunLimits& limits,
                              TraceContext* trace) const final {
    RunResult result;
    // Guarantee (1): expired limits win over everything, even validation.
    const SolveStatus entry = limits.check();
    if (entry != SolveStatus::kOk) {
      fail_result(result, entry, {}, name_);
      return result;
    }
    // Guarantee (2): capability mismatches fail structurally, not via assert.
    // The model gate comes first: a type-table instance is a different
    // problem variant, and that diagnosis beats any job-shape complaint.
    if (!caps_.supports_calibration_model && !instance.is_unit_model()) {
      return std::move(fail_result(result, SolveStatus::kInfeasible,
                                   "requires the unit calibration model",
                                   name_));
    }
    if (caps_.requires_all_long && !all_long(instance)) {
      return std::move(fail_result(result, SolveStatus::kInfeasible,
                                   "requires an all-long instance", name_));
    }
    if (caps_.requires_all_short && !all_short(instance)) {
      return std::move(fail_result(result, SolveStatus::kInfeasible,
                                   "requires an all-short instance", name_));
    }
    if (caps_.requires_unit_jobs && !all_unit(instance)) {
      return std::move(fail_result(result, SolveStatus::kInfeasible,
                                   "requires unit processing times", name_));
    }
    if (caps_.requires_single_machine && instance.machines != 1) {
      return std::move(fail_result(result, SolveStatus::kInfeasible,
                                   "requires a single machine", name_));
    }
    solve(instance, limits, trace, result);
    // Guarantee (3): never report an unverified ISE schedule as feasible.
    if (result.feasible && caps_.produces_ise_schedule) {
      const VerifyResult check =
          verify_ise(instance, result.schedule, require_tise_, caps_.policy);
      if (!check.ok()) {
        return std::move(fail_result(result, SolveStatus::kNumericalFailure,
                                     "schedule failed verification", name_));
      }
      result.verified = true;
      result.calibrations = result.schedule.num_calibrations();
      result.machines = result.schedule.machines;
      result.speed = result.schedule.speed;
      result.total_cost = result.schedule.total_cost();
    }
    return result;
  }

 protected:
  virtual void solve(const Instance& instance, const RunLimits& limits,
                     TraceContext* trace, RunResult& result) const = 0;

  /// Failure where the inner solver left kOk (legacy paths): treat as
  /// infeasible rather than inventing success.
  static SolveStatus failure_status(SolveStatus inner) noexcept {
    return inner == SolveStatus::kOk ? SolveStatus::kInfeasible : inner;
  }

 private:
  std::string name_;
  AlgorithmCapabilities caps_;
  bool require_tise_;
};

/// Theorem 1: long/short split, both pipelines on disjoint pools.
class CombinedAlgorithm final : public AdapterBase {
 public:
  CombinedAlgorithm() : AdapterBase("combined", AlgorithmCapabilities{}) {}

 protected:
  void solve(const Instance& instance, const RunLimits& limits,
             TraceContext* trace, RunResult& result) const override {
    IseSolverOptions options;
    options.limits = limits;
    options.trace = trace;
    IseSolveResult solved = solve_ise(instance, options);
    result.feasible = solved.feasible;
    result.status = solved.status;
    result.error = std::move(solved.error);
    result.schedule = std::move(solved.schedule);
  }
};

/// Theorem 12 (speed = false) / Theorem 14 (speed = true).
class LongAlgorithm final : public AdapterBase {
 public:
  explicit LongAlgorithm(bool speed)
      : AdapterBase(speed ? "long-speed" : "long",
                    AlgorithmCapabilities{.requires_all_long = true},
                    /*require_tise=*/!speed),
        speed_(speed) {}

 protected:
  void solve(const Instance& instance, const RunLimits& limits,
             TraceContext* trace, RunResult& result) const override {
    LongWindowOptions options;
    options.limits = limits;
    options.trace = trace;
    LongWindowResult solved = speed_ ? solve_long_window_speed(instance, options)
                                     : solve_long_window(instance, options);
    result.feasible = solved.feasible;
    result.status = solved.status;
    result.error = std::move(solved.error);
    result.schedule = std::move(solved.schedule);
  }

 private:
  bool speed_;
};

/// Theorem 20 with the greedy EDF MM box.
class ShortAlgorithm final : public AdapterBase {
 public:
  ShortAlgorithm()
      : AdapterBase("short", AlgorithmCapabilities{.requires_all_short = true}) {}

 protected:
  void solve(const Instance& instance, const RunLimits& limits,
             TraceContext* trace, RunResult& result) const override {
    IntervalOptions options;
    options.limits = limits;
    options.trace = trace;
    ShortWindowResult solved = solve_short_window(instance, mm_, options);
    result.feasible = solved.feasible;
    result.status = solved.status;
    result.error = std::move(solved.error);
    result.schedule = std::move(solved.schedule);
  }

 private:
  GreedyEdfMM mm_;
};

/// Any IseBaseline, by composition.
class BaselineAlgorithm final : public AdapterBase {
 public:
  BaselineAlgorithm(std::shared_ptr<const IseBaseline> baseline,
                    AlgorithmCapabilities caps)
      : AdapterBase(baseline->name(), caps), baseline_(std::move(baseline)) {}

 protected:
  void solve(const Instance& instance, const RunLimits& limits,
             TraceContext* /*trace*/, RunResult& result) const override {
    BaselineResult solved = baseline_->solve(instance, limits);
    result.feasible = solved.feasible;
    result.status = solved.feasible ? SolveStatus::kOk
                                    : failure_status(solved.status);
    result.error = std::move(solved.error);
    result.schedule = std::move(solved.schedule);
  }

 private:
  std::shared_ptr<const IseBaseline> baseline_;
};

/// Exact minimum-calibration search. "exact-ise" runs the layered
/// state-space engine; "exact-ise-bnb" keeps the original branch-and-bound
/// as a differential oracle. `limits.node_budget` overrides the default
/// state/node budget inside solve_exact_ise.
class ExactIseAlgorithm final : public AdapterBase {
 public:
  explicit ExactIseAlgorithm(ExactEngine engine)
      : AdapterBase(engine == ExactEngine::kStateSpace ? "exact-ise"
                                                       : "exact-ise-bnb",
                    AlgorithmCapabilities{.exact = true}),
        engine_(engine) {}

 protected:
  void solve(const Instance& instance, const RunLimits& limits,
             TraceContext* trace, RunResult& result) const override {
    ExactIseOptions options;
    options.engine = engine_;
    options.limits = limits;
    options.trace = trace;
    const ExactIseResult solved = solve_exact_ise(instance, options);
    if (solved.solved && solved.feasible) {
      result.feasible = true;
      result.schedule = solved.schedule;
      return;
    }
    fail_result(result, failure_status(solved.status), {}, name());
  }

 private:
  ExactEngine engine_;
};

/// Any MM black box: reports machines, not calibrations.
class MmBoxAlgorithm final : public AdapterBase {
 public:
  MmBoxAlgorithm(std::string registry_name,
                 std::shared_ptr<const MachineMinimizer> box,
                 AlgorithmCapabilities caps)
      : AdapterBase(std::move(registry_name), caps), box_(std::move(box)) {}

 protected:
  void solve(const Instance& instance, const RunLimits& limits,
             TraceContext* trace, RunResult& result) const override {
    MMResult solved = box_->minimize(instance, limits, trace);
    if (!solved.feasible) {
      fail_result(result, failure_status(solved.status), {}, name());
      return;
    }
    const VerifyResult check = verify_mm(instance, solved.schedule);
    if (!check.ok()) {
      fail_result(result, SolveStatus::kNumericalFailure,
                  "MM schedule failed verification", name());
      return;
    }
    result.feasible = true;
    result.verified = true;
    result.machines = solved.schedule.machines;
    result.speed = solved.schedule.speed;
  }

 private:
  std::shared_ptr<const MachineMinimizer> box_;
};

/// The Section-5 related problem: exact gap minimization for unit jobs.
/// RunResult::calibrations carries the analogous objective (busy blocks).
class GapMinAlgorithm final : public AdapterBase {
 public:
  GapMinAlgorithm()
      : AdapterBase("gap-min",
                    AlgorithmCapabilities{.requires_unit_jobs = true,
                                          .exact = true,
                                          .produces_ise_schedule = false}) {}

 protected:
  void solve(const Instance& instance, const RunLimits& limits,
             TraceContext* /*trace*/, RunResult& result) const override {
    GapMinOptions options;
    options.limits = limits;
    const GapMinResult solved = solve_min_gaps_unit(instance, options);
    if (!(solved.solved && solved.feasible)) {
      fail_result(result, failure_status(solved.status), {}, name());
      return;
    }
    MMSchedule one_machine;
    one_machine.machines = 1;
    one_machine.jobs = solved.slots;
    Instance single = instance;
    single.machines = 1;
    const VerifyResult check = verify_mm(single, one_machine);
    if (!check.ok()) {
      fail_result(result, SolveStatus::kNumericalFailure,
                  "gap schedule failed verification", name());
      return;
    }
    result.feasible = true;
    result.verified = true;
    result.calibrations = solved.busy_blocks;
    result.machines = 1;
  }
};

/// Exact minimum-cost oracle under a calibration-type table.
class ExactCalibCostAlgorithm final : public AdapterBase {
 public:
  ExactCalibCostAlgorithm()
      : AdapterBase("exact-calib-cost",
                    AlgorithmCapabilities{.supports_calibration_model = true,
                                          .exact = true}) {}

 protected:
  void solve(const Instance& instance, const RunLimits& limits,
             TraceContext* /*trace*/, RunResult& result) const override {
    CalibCostOptions options;
    options.limits = limits;
    const CalibCostResult solved = solve_exact_calib_cost(instance, options);
    if (solved.solved && solved.feasible) {
      result.feasible = true;
      result.schedule = solved.schedule;
      return;
    }
    fail_result(result, failure_status(solved.status), {}, name());
  }
};

/// Single-machine subset DP: exact minimum cost for non-unit jobs.
class CostDpAlgorithm final : public AdapterBase {
 public:
  CostDpAlgorithm()
      : AdapterBase("dp-calib-cost",
                    AlgorithmCapabilities{.requires_single_machine = true,
                                          .supports_calibration_model = true,
                                          .exact = true}) {}

 protected:
  void solve(const Instance& instance, const RunLimits& limits,
             TraceContext* /*trace*/, RunResult& result) const override {
    CostDpOptions options;
    options.limits = limits;
    const CostDpResult solved = solve_cost_dp(instance, options);
    if (solved.solved && solved.feasible) {
      result.feasible = true;
      result.schedule = solved.schedule;
      return;
    }
    fail_result(result, failure_status(solved.status), {}, name());
  }
};

/// Lazy EDF greedy over the type table (cheapest hosting type, lazy start).
class GreedyCalibCostAlgorithm final : public AdapterBase {
 public:
  GreedyCalibCostAlgorithm()
      : AdapterBase("greedy-calib-cost",
                    AlgorithmCapabilities{.supports_calibration_model = true}) {}

 protected:
  void solve(const Instance& instance, const RunLimits& limits,
             TraceContext* /*trace*/, RunResult& result) const override {
    GreedyCostResult solved = solve_greedy_cost(instance, limits);
    result.feasible = solved.feasible;
    result.status = solved.feasible ? SolveStatus::kOk
                                    : failure_status(solved.status);
    result.error = std::move(solved.error);
    result.schedule = std::move(solved.schedule);
  }
};

/// An online heuristic run offline: the instance is replayed as its
/// canonical arrival trace (every job arrives at its release time)
/// through the event-driven simulator, so the resulting schedule is one
/// an online scheduler could actually have committed — the simulator has
/// already enforced the append-only contract before AdapterBase's
/// verifier pass re-checks plain feasibility. This is the competitive
/// -ratio measurement hook: bench E20 compares its cost against the
/// clairvoyant exact solvers on the same traces.
class OnlineEdfAlgorithm final : public AdapterBase {
 public:
  OnlineEdfAlgorithm()
      : AdapterBase("online-edf",
                    AlgorithmCapabilities{.supports_calibration_model = true,
                                          .supports_online = true}) {}

 protected:
  void solve(const Instance& instance, const RunLimits& /*limits*/,
             TraceContext* /*trace*/, RunResult& result) const override {
    OnlineResult solved =
        simulate_trace(name(), ArrivalTrace::from_instance(instance));
    if (!solved.feasible) {
      fail_result(result, SolveStatus::kInfeasible, solved.error, name());
      return;
    }
    result.feasible = true;
    result.schedule = std::move(solved.schedule);
  }
};

AlgorithmCapabilities mm_caps(bool requires_unit = false, bool exact = false) {
  AlgorithmCapabilities caps;
  caps.requires_unit_jobs = requires_unit;
  caps.exact = exact;
  caps.produces_ise_schedule = false;
  return caps;
}

}  // namespace

void AlgorithmRegistry::add(std::shared_ptr<const Algorithm> algorithm) {
  if (find(algorithm->name()) != nullptr) {
    throw std::invalid_argument("duplicate algorithm name: " +
                                algorithm->name());
  }
  algorithms_.push_back(std::move(algorithm));
}

const Algorithm* AlgorithmRegistry::find(std::string_view name) const noexcept {
  for (const auto& algorithm : algorithms_) {
    if (algorithm->name() == name) return algorithm.get();
  }
  return nullptr;
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(algorithms_.size());
  for (const auto& algorithm : algorithms_) result.push_back(algorithm->name());
  return result;
}

const AlgorithmRegistry& AlgorithmRegistry::builtin() {
  static const AlgorithmRegistry registry = [] {
    AlgorithmRegistry built;
    built.add(std::make_shared<CombinedAlgorithm>());
    built.add(std::make_shared<LongAlgorithm>(/*speed=*/false));
    built.add(std::make_shared<LongAlgorithm>(/*speed=*/true));
    built.add(std::make_shared<ShortAlgorithm>());
    built.add(std::make_shared<BaselineAlgorithm>(
        std::make_shared<GreedyLazyIse>(), AlgorithmCapabilities{}));
    built.add(std::make_shared<BaselineAlgorithm>(
        std::make_shared<PerJobCalibration>(), AlgorithmCapabilities{}));
    built.add(std::make_shared<BaselineAlgorithm>(
        std::make_shared<SaturateCalibration>(), AlgorithmCapabilities{}));
    built.add(std::make_shared<BaselineAlgorithm>(
        std::make_shared<BenderUnitLazyBinning>(),
        AlgorithmCapabilities{.requires_unit_jobs = true}));
    built.add(std::make_shared<ExactIseAlgorithm>(ExactEngine::kStateSpace));
    built.add(std::make_shared<ExactIseAlgorithm>(ExactEngine::kBranchBound));
    built.add(std::make_shared<MmBoxAlgorithm>(
        "mm-greedy", std::make_shared<GreedyEdfMM>(), mm_caps()));
    built.add(std::make_shared<MmBoxAlgorithm>(
        "mm-exact", std::make_shared<ExactMM>(),
        mm_caps(/*requires_unit=*/false, /*exact=*/true)));
    built.add(std::make_shared<MmBoxAlgorithm>(
        "mm-exact-bnb",
        std::make_shared<ExactMM>(/*node_budget=*/4'000'000,
                                  ExactEngine::kBranchBound),
        mm_caps(/*requires_unit=*/false, /*exact=*/true)));
    built.add(std::make_shared<MmBoxAlgorithm>(
        "mm-unit", std::make_shared<UnitEdfMM>(),
        mm_caps(/*requires_unit=*/true, /*exact=*/true)));
    built.add(std::make_shared<MmBoxAlgorithm>(
        "mm-lp-rounding", std::make_shared<LpRoundingMM>(), mm_caps()));
    built.add(std::make_shared<GapMinAlgorithm>());
    built.add(std::make_shared<ExactCalibCostAlgorithm>());
    built.add(std::make_shared<CostDpAlgorithm>());
    built.add(std::make_shared<GreedyCalibCostAlgorithm>());
    built.add(std::make_shared<OnlineEdfAlgorithm>());
    return built;
  }();
  return registry;
}

}  // namespace calisched

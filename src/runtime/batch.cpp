#include "runtime/batch.hpp"

#include <ostream>
#include <stdexcept>
#include <utility>

#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace calisched {

std::uint64_t derive_instance_seed(std::uint64_t base_seed,
                                   std::uint64_t index) noexcept {
  // splitmix64 over a mix of base and index; index+1 keeps instance 0 from
  // collapsing onto the base seed itself.
  std::uint64_t state = base_seed ^ ((index + 1) * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

std::vector<Instance> generate_batch(const BatchSpec& spec,
                                     std::vector<std::uint64_t>* seeds_out) {
  std::vector<Instance> instances;
  instances.reserve(spec.count);
  if (seeds_out) {
    seeds_out->clear();
    seeds_out->reserve(spec.count);
  }
  for (std::size_t i = 0; i < spec.count; ++i) {
    GenParams params = spec.params;
    params.seed = derive_instance_seed(spec.params.seed, i);
    if (seeds_out) seeds_out->push_back(params.seed);
    if (spec.family == "mixed") {
      instances.push_back(generate_mixed(params, spec.long_fraction));
    } else if (spec.family == "long") {
      instances.push_back(generate_long_window(params));
    } else if (spec.family == "short") {
      instances.push_back(generate_short_window(params));
    } else if (spec.family == "unit") {
      const Time max_window =
          spec.max_window > 0 ? spec.max_window : 2 * params.T - 1;
      instances.push_back(generate_unit(params, max_window));
    } else if (spec.family == "clustered") {
      const Time burst_span = spec.burst_span > 0 ? spec.burst_span : params.T;
      instances.push_back(generate_clustered(params, spec.bursts, burst_span,
                                             spec.long_windows));
    } else if (spec.family == "calib-cheap-short") {
      instances.push_back(
          generate_calib_cost(params, CalibTableRegime::kCheapShort));
    } else if (spec.family == "calib-expensive-long") {
      instances.push_back(
          generate_calib_cost(params, CalibTableRegime::kExpensiveLong));
    } else if (spec.family == "calib-delayed") {
      instances.push_back(
          generate_calib_cost(params, CalibTableRegime::kDelayed));
    } else if (spec.family == "online-poisson") {
      instances.push_back(generate_online_poisson(params));
    } else if (spec.family == "online-burst") {
      instances.push_back(generate_online_burst(
          params, spec.bursts > 0 ? spec.bursts : 4));
    } else if (spec.family == "online-drip") {
      instances.push_back(generate_online_drip(params));
    } else {
      throw std::invalid_argument(
          "unknown batch family '" + spec.family +
          "' (mixed|long|short|unit|clustered|calib-cheap-short|"
          "calib-expensive-long|calib-delayed|online-poisson|online-burst|"
          "online-drip)");
    }
  }
  return instances;
}

std::vector<BatchRecord> BatchRunner::run(const std::vector<Instance>& instances,
                                          const BatchOptions& options) const {
  std::vector<BatchRecord> records(instances.size());
  ThreadPool pool(options.threads);
  // Chunked sharding: each worker claims a contiguous run of instances, so
  // it writes adjacent BatchRecords and its per-thread LP workspace sees a
  // streak of similarly-shaped models back to back. Records are keyed by
  // index, so the JSONL output is byte-identical at any thread count.
  parallel_for_chunked(pool, instances.size(), [&](std::size_t i) {
    const Instance& instance = instances[i];
    BatchRecord& record = records[i];
    record.index = i;
    record.seed = i < options.seeds.size() ? options.seeds[i] : 0;
    record.algorithm = algorithm_->name();
    record.jobs = instance.size();

    RunLimits limits;
    if (options.per_instance_deadline.count() > 0) {
      limits = RunLimits::deadline_after(options.per_instance_deadline);
    }
    limits.cancel = options.cancel;
    limits.node_budget = options.node_budget;

    // One private trace per task: TraceContext is not synchronized.
    TraceContext trace(algorithm_->name());
    TraceContext* trace_ptr = options.collect_traces ? &trace : nullptr;

    const auto started = std::chrono::steady_clock::now();
    const RunResult result = algorithm_->run(instance, limits, trace_ptr);
    record.elapsed_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - started)
                            .count();
    record.status = result.status;
    record.feasible = result.feasible;
    record.verified = result.verified;
    record.calibrations = result.calibrations;
    record.machines = result.machines;
    record.speed = result.speed;
    record.total_cost = result.total_cost;
    record.error = result.error;
    if (options.collect_traces) record.trace = trace.to_json();
  });
  return records;
}

JsonValue batch_record_json(const BatchRecord& record, bool include_timing) {
  JsonValue::Object object;
  object.emplace_back("index", JsonValue(record.index));
  object.emplace_back("seed",
                      JsonValue(static_cast<std::int64_t>(record.seed)));
  object.emplace_back("algorithm", JsonValue(record.algorithm));
  object.emplace_back("status", JsonValue(to_string(record.status)));
  object.emplace_back("feasible", JsonValue(record.feasible));
  object.emplace_back("verified", JsonValue(record.verified));
  object.emplace_back("jobs", JsonValue(record.jobs));
  object.emplace_back("calibrations", JsonValue(record.calibrations));
  object.emplace_back("machines", JsonValue(record.machines));
  object.emplace_back("speed", JsonValue(record.speed));
  object.emplace_back("total_cost", JsonValue(record.total_cost));
  object.emplace_back("error", JsonValue(record.error));
  if (include_timing) {
    object.emplace_back("elapsed_ns", JsonValue(record.elapsed_ns));
    if (!record.trace.is_null()) {
      object.emplace_back("trace", record.trace);
    }
  }
  return JsonValue(std::move(object));
}

void write_batch_jsonl(std::ostream& out,
                       const std::vector<BatchRecord>& records,
                       bool include_timing) {
  for (const BatchRecord& record : records) {
    out << batch_record_json(record, include_timing).dump(0) << '\n';
  }
}

}  // namespace calisched

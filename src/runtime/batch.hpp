// Concurrent batch-solve driver.
//
// Shards a list of instances (or a generator spec) across a ThreadPool and
// runs one Algorithm on each, producing one BatchRecord per instance. The
// contract the tests pin down is *determinism*: records depend only on
// (algorithm, instances, per-instance limits), never on the thread count
// or scheduling order — every task owns its instance, its TraceContext,
// and its slot in the result vector, and per-instance seeds derive from
// (base seed, index) alone. The JSONL writer can exclude the only
// nondeterministic fields (elapsed time and the timing-bearing trace) so
// byte-identical output across `--threads` values is checkable.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "runtime/registry.hpp"
#include "trace/json.hpp"

namespace calisched {

/// Deterministic per-instance seed: a splitmix64 mix of (base_seed, index).
/// Stable across platforms and independent of execution order.
[[nodiscard]] std::uint64_t derive_instance_seed(std::uint64_t base_seed,
                                                 std::uint64_t index) noexcept;

/// A generator-backed batch: `count` instances of one family, instance i
/// generated with seed derive_instance_seed(params.seed, i).
struct BatchSpec {
  /// mixed|long|short|unit|clustered, or a calibration-cost family over an
  /// explicit type table: calib-cheap-short|calib-expensive-long|
  /// calib-delayed (see CalibTableRegime).
  std::string family = "mixed";
  std::size_t count = 8;
  GenParams params;              ///< params.seed is the *base* seed
  double long_fraction = 0.5;    ///< mixed family
  Time max_window = 0;           ///< unit family; 0 means 2T - 1
  int bursts = 3;                ///< clustered family
  Time burst_span = 0;           ///< clustered family; 0 means T
  bool long_windows = false;     ///< clustered family
};

/// Materializes the spec; throws std::invalid_argument on an unknown
/// family. `seeds_out` (optional) receives each instance's derived seed.
[[nodiscard]] std::vector<Instance> generate_batch(
    const BatchSpec& spec, std::vector<std::uint64_t>* seeds_out = nullptr);

/// One line of solve-batch output.
struct BatchRecord {
  std::size_t index = 0;
  std::uint64_t seed = 0;  ///< generator seed; 0 for file-loaded instances
  std::string algorithm;
  SolveStatus status = SolveStatus::kOk;
  bool feasible = false;
  bool verified = false;
  std::size_t jobs = 0;
  std::size_t calibrations = 0;
  int machines = 0;
  std::int64_t speed = 1;
  /// Total calibration cost (equals `calibrations` under the unit model).
  std::int64_t total_cost = 0;
  std::string error;
  std::int64_t elapsed_ns = 0;  ///< timing; dropped when timing is excluded
  JsonValue trace;              ///< per-instance trace (null unless collected)
};

struct BatchOptions {
  /// Worker threads; 0 means hardware concurrency. Purely a throughput
  /// knob — results are identical for any value.
  std::size_t threads = 1;
  /// Wall-clock budget per instance (measured from that instance's start);
  /// zero means unlimited.
  std::chrono::nanoseconds per_instance_deadline{0};
  /// Node/state cap per instance for exact engines (exhaustion reports
  /// kLimitExceeded, never kInfeasible); zero keeps solver defaults.
  std::int64_t node_budget = 0;
  /// Shared cancellation for the whole batch; not owned, may be null.
  /// Instances finished before cancel() keep their results; the rest
  /// report kCancelled.
  const CancelToken* cancel = nullptr;
  /// Attach each instance's TraceContext JSON to its record. Traces carry
  /// span timings, so collected traces are excluded from timing-free output.
  bool collect_traces = false;
  /// Per-instance seeds recorded in the output (parallel to `instances`);
  /// may be empty (seeds recorded as 0) — purely informational.
  std::vector<std::uint64_t> seeds;
};

/// Runs one algorithm over a batch. Stateless; reusable.
class BatchRunner {
 public:
  explicit BatchRunner(const Algorithm& algorithm) : algorithm_(&algorithm) {}

  /// Records are returned in instance order regardless of thread count.
  [[nodiscard]] std::vector<BatchRecord> run(
      const std::vector<Instance>& instances,
      const BatchOptions& options = {}) const;

 private:
  const Algorithm* algorithm_;
};

/// One JSON object for one record. With include_timing = false, elapsed_ns
/// and the trace are omitted and the object is a pure function of the
/// solve's logical outcome (the bit-identical-across-threads form).
[[nodiscard]] JsonValue batch_record_json(const BatchRecord& record,
                                          bool include_timing);

/// One compact JSON object per line, in record order.
void write_batch_jsonl(std::ostream& out,
                       const std::vector<BatchRecord>& records,
                       bool include_timing);

}  // namespace calisched

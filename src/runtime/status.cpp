#include "runtime/status.hpp"

#include <array>

namespace calisched {
namespace {

constexpr std::array<std::string_view, 6> kStatusNames = {
    "ok",        "infeasible",        "deadline-exceeded",
    "cancelled", "numerical-failure", "limit-exceeded",
};

}  // namespace

std::string_view to_string(SolveStatus status) noexcept {
  const auto index = static_cast<std::size_t>(status);
  return index < kStatusNames.size() ? kStatusNames[index] : "unknown";
}

bool parse_solve_status(std::string_view text, SolveStatus* out) noexcept {
  for (std::size_t i = 0; i < kStatusNames.size(); ++i) {
    if (kStatusNames[i] == text) {
      if (out) *out = static_cast<SolveStatus>(i);
      return true;
    }
  }
  return false;
}

std::string format_failure(SolveStatus status, std::string_view detail,
                           std::string_view stage) {
  std::string message;
  message.reserve(stage.size() + detail.size() + 24);
  if (!stage.empty()) {
    message.append(stage);
    message.append(": ");
  }
  message.append(to_string(status));
  if (!detail.empty()) {
    message.append(" (");
    message.append(detail);
    message.append(")");
  }
  return message;
}

}  // namespace calisched

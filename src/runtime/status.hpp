// The structured solve-status taxonomy shared by every algorithm layer.
//
// Before this layer existed, each pipeline/baseline/box reported failure as
// `bool feasible + std::string error`, with every call site formatting its
// own message. A SolveStatus classifies the outcome machine-readably (the
// batch driver shards on it, the JSONL output serializes it), and
// format_failure() is the single place a human-readable string is built, so
// no call site concatenates its own failure prose anymore.
#pragma once

#include <string>
#include <string_view>

namespace calisched {

/// Outcome of one algorithm run. Everything except kOk means "no schedule".
enum class SolveStatus {
  kOk,                ///< completed; result payload is valid
  kInfeasible,        ///< no solution exists (or this algorithm cannot find one)
  kDeadlineExceeded,  ///< RunLimits wall-clock deadline expired mid-solve
  kCancelled,         ///< cooperative CancelToken fired mid-solve
  kNumericalFailure,  ///< internal guarantee violated (LP unbounded, EDF gap)
  kLimitExceeded,     ///< iteration / node budget exhausted before an answer
};

/// Stable kebab-case name ("ok", "deadline-exceeded", ...); used by the
/// batch JSONL schema and test assertions.
[[nodiscard]] std::string_view to_string(SolveStatus status) noexcept;

/// Inverse of to_string; returns false (and leaves *out alone) on an
/// unknown name.
[[nodiscard]] bool parse_solve_status(std::string_view text,
                                      SolveStatus* out) noexcept;

/// True for the statuses caused by RunLimits rather than the instance.
[[nodiscard]] constexpr bool is_limit_status(SolveStatus status) noexcept {
  return status == SolveStatus::kDeadlineExceeded ||
         status == SolveStatus::kCancelled ||
         status == SolveStatus::kLimitExceeded;
}

/// The one place failure strings are formatted:
///   "[stage: ]<status-name>[ (detail)]"
/// e.g. format_failure(kInfeasible, "TISE LP on 9 machines", "long-window
/// pipeline") == "long-window pipeline: infeasible (TISE LP on 9 machines)".
[[nodiscard]] std::string format_failure(SolveStatus status,
                                         std::string_view detail = {},
                                         std::string_view stage = {});

/// Marks a result struct (anything with `feasible`, `status`, `error`
/// members) as failed, routing the message through format_failure.
template <typename Result>
Result& fail_result(Result& result, SolveStatus status,
                    std::string_view detail = {}, std::string_view stage = {}) {
  result.feasible = false;
  result.status = status;
  result.error = format_failure(status, detail, stage);
  return result;
}

}  // namespace calisched

// The uniform Algorithm interface and the registry of every concrete
// algorithm in this repository.
//
// Before this layer, each front end (CLI, benches, tests) re-implemented
// its own dispatch over the Theorem-1 solver, the two pipelines, the MM
// black boxes, and the baselines, each with a slightly different result
// shape. An Algorithm adapter normalizes all of them to one contract:
//
//   run(instance, limits, trace) -> RunResult
//
// with three guarantees every adapter upholds:
//   (1) an already-violated RunLimits returns its status *before* any
//       other validation or work (a deadline-0 probe is uniform across
//       algorithms);
//   (2) a capability mismatch (long pipeline on a mixed instance, unit
//       baseline on non-unit jobs) returns kInfeasible with a formatted
//       reason instead of asserting;
//   (3) a feasible result has been re-checked by the independent verifier
//       (verify_ise / verify_mm); a verifier rejection is reported as
//       kNumericalFailure, never silently passed through.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/schedule.hpp"
#include "runtime/limits.hpp"
#include "runtime/status.hpp"
#include "verify/verify.hpp"

namespace calisched {

class TraceContext;

/// Static facts the batch driver and front ends use to pick applicable
/// algorithms and interpret their results.
struct AlgorithmCapabilities {
  bool requires_all_long = false;   ///< every job long (Definition 1)
  bool requires_all_short = false;  ///< every window <= 2T
  bool requires_unit_jobs = false;  ///< every p_j = 1
  /// Only single-machine instances (the calibration-cost DP).
  bool requires_single_machine = false;
  /// Understands explicit calibration-type tables (arbitrary lengths,
  /// per-type costs, activation delays). Algorithms predating the cost
  /// model leave this false and report capability-mismatch infeasible on
  /// non-unit instances instead of silently ignoring the table.
  bool supports_calibration_model = false;
  bool exact = false;               ///< exponential search; tiny instances only
  /// Decides with arrival-time information only: the algorithm is (a
  /// registry adapter over) an OnlineScheduler replayed through the
  /// event-driven simulator, so its schedule respects the append-only
  /// contract — nothing is committed before the triggering arrival. The
  /// service's `subscribe` sessions only accept algorithms with this set.
  bool supports_online = false;
  /// False for MM boxes and the gap minimizer: they report a machine /
  /// block count, and RunResult::schedule stays empty.
  bool produces_ise_schedule = true;
  /// Verification policy for the produced schedule (relaxed for boxes that
  /// emit overlapping calibrations under footnote 3).
  CalibrationPolicy policy = CalibrationPolicy::kStrict;
};

/// Normalized outcome of one algorithm run on one instance.
struct RunResult {
  SolveStatus status = SolveStatus::kOk;
  bool feasible = false;
  std::string error;     ///< format_failure() output when not feasible
  /// Valid when feasible and the algorithm produces an ISE schedule.
  Schedule schedule;
  /// Objective summary (filled for feasible results): calibrations used
  /// (busy blocks for the gap minimizer), machines used, machine speed.
  std::size_t calibrations = 0;
  int machines = 0;
  std::int64_t speed = 1;
  /// Total calibration cost under the instance's type table; equals
  /// `calibrations` under the unit model (every type costs 1).
  std::int64_t total_cost = 0;
  bool verified = false;  ///< independent verifier re-checked the result
};

/// One registered algorithm. Implementations are stateless and const; a
/// single instance may be run from many threads concurrently (the batch
/// driver relies on this), so run() must not mutate shared state.
class Algorithm {
 public:
  virtual ~Algorithm() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual AlgorithmCapabilities capabilities() const = 0;
  /// `trace` may be null; when provided it must be exclusive to this call
  /// (TraceContext is not internally synchronized; solvers that fan work
  /// out internally record into per-task scratch traces and merge them
  /// back deterministically — see the thread-local-child contract in
  /// trace/trace.hpp — so exclusivity at this boundary is all a caller
  /// needs). Adapters keep intra-solve fan-out off by default: the batch
  /// driver owns cross-instance parallelism, and nesting the two would
  /// oversubscribe the machine.
  [[nodiscard]] virtual RunResult run(const Instance& instance,
                                      const RunLimits& limits,
                                      TraceContext* trace) const = 0;

  [[nodiscard]] RunResult run(const Instance& instance) const {
    return run(instance, RunLimits::none(), nullptr);
  }
};

/// Name -> Algorithm lookup. Instances are immutable once built; the
/// builtin() registry is constructed on first use and safe to share.
class AlgorithmRegistry {
 public:
  /// Registers `algorithm`; throws std::invalid_argument on a duplicate
  /// name (registry names are the CLI/JSONL contract).
  void add(std::shared_ptr<const Algorithm> algorithm);

  [[nodiscard]] const Algorithm* find(std::string_view name) const noexcept;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const noexcept { return algorithms_.size(); }
  [[nodiscard]] const std::vector<std::shared_ptr<const Algorithm>>& all()
      const noexcept {
    return algorithms_;
  }

  /// The registry of every built-in algorithm:
  ///   combined, long, long-speed, short        (paper pipelines / solver)
  ///   greedy-lazy, per-job, saturate, bender-lazy, exact-ise (baselines)
  ///   mm-greedy, mm-exact, mm-unit, mm-lp-rounding          (MM boxes)
  ///   gap-min                                   (related problem, Sec. 5)
  ///   exact-calib-cost, dp-calib-cost, greedy-calib-cost (cost model,
  ///                                              Angel et al. 2015)
  ///   online-edf                  (arrival-stream heuristic, simulator-run)
  [[nodiscard]] static const AlgorithmRegistry& builtin();

 private:
  std::vector<std::shared_ptr<const Algorithm>> algorithms_;
};

}  // namespace calisched

// Wall-clock deadlines and cooperative cancellation for long-running solves.
//
// Every algorithm entry point accepts a RunLimits (by value: one time_point
// and one pointer). Inner loops — simplex pivots, branch-and-bound nodes,
// per-interval MM calls — poll through a LimitPoller, which strides the
// steady_clock reads so the check costs an atomic load on most iterations.
// A default-constructed RunLimits is unlimited and polls to kOk forever, so
// existing call sites pay (almost) nothing.
//
// Contract for implementations: the *first* poll always reads the clock, so
// an already-expired deadline (deadline "0") stops a solve before any real
// work; subsequent polls re-read it every `stride` calls. With the strides
// used in this codebase every algorithm notices an expired deadline well
// within 100 ms.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "runtime/status.hpp"

namespace calisched {

/// Shared cooperative-cancellation flag. One token may be observed by many
/// concurrent solves (the batch driver hands the same token to every
/// instance); cancel() is sticky until reset().
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-run resource limits. Copyable and cheap; the referenced CancelToken
/// (if any) must outlive the run.
struct RunLimits {
  using Clock = std::chrono::steady_clock;

  /// Absolute wall-clock deadline; time_point::max() means none.
  Clock::time_point deadline = Clock::time_point::max();
  /// Optional cooperative cancellation; not owned, may be null.
  const CancelToken* cancel = nullptr;
  /// Search-node/state budget for the exact solvers; 0 means "use the
  /// solver's own default". Only exact engines consume it (greedy and LP
  /// boxes ignore it), and exhaustion surfaces as kLimitExceeded — it is a
  /// resource limit, never an infeasibility verdict. Not part of
  /// unlimited(): a budget alone doesn't require clock/cancel polling.
  std::int64_t node_budget = 0;

  [[nodiscard]] static RunLimits none() noexcept { return {}; }

  /// Deadline `budget` from now (a zero or negative budget is already
  /// expired — useful for tests and for "fail fast" probes).
  [[nodiscard]] static RunLimits deadline_after(
      std::chrono::nanoseconds budget) noexcept {
    RunLimits limits;
    limits.deadline = Clock::now() + budget;
    return limits;
  }

  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline != Clock::time_point::max();
  }
  [[nodiscard]] bool unlimited() const noexcept {
    return !has_deadline() && cancel == nullptr;
  }

  /// Full check (reads the clock when a deadline is set). Cancellation wins
  /// over an expired deadline when both apply.
  [[nodiscard]] SolveStatus check() const noexcept {
    if (cancel != nullptr && cancel->cancelled()) return SolveStatus::kCancelled;
    if (has_deadline() && Clock::now() >= deadline) {
      return SolveStatus::kDeadlineExceeded;
    }
    return SolveStatus::kOk;
  }
};

/// Amortized limit checks for hot loops. Cancellation (an atomic load) is
/// checked on every poll; the clock only on the first poll and then every
/// `stride` polls. Once a poll returns non-kOk the poller is stuck there.
class LimitPoller {
 public:
  explicit LimitPoller(const RunLimits& limits, int stride = 64) noexcept
      : limits_(limits),
        stride_(stride < 1 ? 1 : stride),
        countdown_(1),  // first poll always reads the clock
        unlimited_(limits.unlimited()) {}

  /// kOk, or the sticky stop reason.
  SolveStatus poll() noexcept {
    if (status_ != SolveStatus::kOk) return status_;
    if (unlimited_) return SolveStatus::kOk;
    if (limits_.cancel != nullptr && limits_.cancel->cancelled()) {
      return status_ = SolveStatus::kCancelled;
    }
    if (--countdown_ > 0) return SolveStatus::kOk;
    countdown_ = stride_;
    if (limits_.has_deadline() &&
        RunLimits::Clock::now() >= limits_.deadline) {
      return status_ = SolveStatus::kDeadlineExceeded;
    }
    return SolveStatus::kOk;
  }

  [[nodiscard]] SolveStatus status() const noexcept { return status_; }
  [[nodiscard]] bool stopped() const noexcept {
    return status_ != SolveStatus::kOk;
  }

 private:
  RunLimits limits_;
  int stride_;
  int countdown_;
  bool unlimited_;
  SolveStatus status_ = SolveStatus::kOk;
};

}  // namespace calisched

// The persistent solve service: a bounded, cache-fronted, deadline-aware
// request executor built on AlgorithmRegistry + ThreadPool.
//
// Lifecycle of one request:
//   submit() — admission control. A cache hit completes synchronously
//     (see below). Otherwise a request beyond `queue_capacity`
//     outstanding (admitted but unfinished) requests is rejected
//     *immediately* with a completed `rejected` outcome; the queue can
//     never grow without bound. Admitted requests get their wall-clock
//     deadline stamped here (queue wait burns budget, as a real server
//     must account it) and a Pending handle the caller can wait on.
//   worker — after the pause gate, the canonical instance hash is looked
//     up in the sharded LRU result cache (hits return the stored verified
//     outcome without running anything); misses run the algorithm under
//     RunLimits{deadline, service CancelToken} and insert the outcome into
//     the cache iff it is ok+feasible+verified.
//   shutdown(drain=true) — stop admitting, release any pause, and wait
//     for every outstanding request to finish (in-flight solves are
//     drained, never abandoned). drain=false additionally fires the
//     CancelToken so in-flight solves stop at their next limit poll.
//
// Cache fast path: submit() probes the result cache before admission
// bookkeeping; a hit completes the Pending synchronously — no queue slot,
// no worker dispatch, no pause gate. The worker-side lookup remains the
// authoritative one (a duplicate submitted while its original is still
// solving misses the fast path but hits in the worker once the original
// lands), and each request counts exactly one hit or one miss, wherever
// the decisive lookup happened.
//
// Locking: the counters (requests, accepted, rejects, cache hits/misses,
// completions) are relaxed atomics in the lp/perf_counters style, the
// result cache locks only the shard the instance hash routes to, and the
// one remaining mutex guards the pause gate + admission state. Concurrent
// connections therefore contend on nothing when traffic is cache hits in
// distinct shards. stats() snapshots are exact once in-flight requests
// have drained (every test and bench samples them that way); mid-flight
// they are a best-effort read of live counters.
//
// Latency: completions feed a fixed ring of recent samples; stats()
// reports p50/p95/p99/p999 over the window (nearest-rank, shared
// percentile_of). The ring is sized so p999 rests on >= 1000 samples
// once warm.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/registry.hpp"
#include "service/protocol.hpp"
#include "service/sharded_cache.hpp"
#include "util/thread_pool.hpp"

namespace calisched {

class TraceContext;

struct ServiceOptions {
  /// Worker threads; 0 means hardware concurrency.
  std::size_t threads = 1;
  /// Maximum admitted-but-unfinished requests; submissions beyond it are
  /// rejected immediately (explicit backpressure, never unbounded growth).
  std::size_t queue_capacity = 64;
  /// Total LRU result-cache entries across all shards; 0 disables caching.
  std::size_t cache_capacity = 128;
  /// Independently-locked cache shards (entries budget split evenly).
  /// 1 gives the exact pre-sharding semantics: one global recency list,
  /// one lock — tests that pin eviction order use it.
  std::size_t cache_shards = 8;
};

/// Consistent snapshot of the per-server counters.
struct ServiceStats {
  std::int64_t received = 0;     ///< submit() calls
  std::int64_t accepted = 0;     ///< admitted past backpressure
  std::int64_t rejected = 0;     ///< bounced: full queue or shutting down
  std::int64_t errors = 0;       ///< refused at admission (unknown algorithm)
  std::int64_t completed = 0;    ///< finished (cache hit or solved)
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_size = 0;
  std::int64_t outstanding = 0;  ///< admitted, not yet completed
  bool paused = false;
  std::int64_t latency_p50_ns = 0;  ///< over the recent-completion window
  std::int64_t latency_p95_ns = 0;
  std::int64_t latency_p99_ns = 0;
  std::int64_t latency_p999_ns = 0;
  std::int64_t latency_samples = 0; ///< samples currently in the window
};

class SolveService {
 public:
  /// Completed-or-pending result slot for one admitted (or rejected)
  /// request. Rejections are born completed.
  class Pending {
   public:
    /// Blocks until the outcome is ready; the reference stays valid for
    /// the Pending's lifetime.
    [[nodiscard]] const SolveOutcome& wait() const;
    [[nodiscard]] bool ready() const;
    /// After ready() returned true (or on_ready fired): the outcome,
    /// without re-taking the lock path of wait().
    [[nodiscard]] const SolveOutcome& outcome() const noexcept {
      return outcome_;
    }

    /// Registers a completion hook for event-loop callers that must not
    /// block: runs exactly once, from the completing worker thread — or
    /// immediately, from the caller, when the outcome is already ready.
    /// One hook per Pending; the hook must not call back into wait() on
    /// the same Pending (it already has the outcome) and should only
    /// enqueue a wakeup.
    void on_ready(std::function<void()> hook);

   private:
    friend class SolveService;
    void complete(SolveOutcome outcome);

    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    bool ready_ = false;
    SolveOutcome outcome_;
    std::function<void()> hook_;
  };
  using PendingPtr = std::shared_ptr<Pending>;

  /// The registry must outlive the service.
  SolveService(const AlgorithmRegistry& registry, ServiceOptions options);
  /// Graceful: equivalent to shutdown(/*drain=*/true).
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Never blocks. The returned handle is already completed when the
  /// request was rejected (full queue, shutdown in progress, unknown
  /// algorithm) or served by the cache fast path; otherwise it completes
  /// when a worker finishes.
  [[nodiscard]] PendingPtr submit(const ServiceRequest& request);

  /// Holds workers before they pick up their next request (admission and
  /// the bounded queue keep operating — this is how backpressure is
  /// exercised deterministically). resume() releases them. Note the cache
  /// fast path completes hits even while paused: pause gates *work*, and
  /// a hit runs nothing.
  void pause();
  void resume();

  /// Stops admission and waits for all outstanding requests to finish.
  /// With drain=false the service CancelToken fires first, so in-flight
  /// solves stop at their next poll instead of running to completion.
  /// Idempotent; implicitly resumes a paused service.
  void shutdown(bool drain = true);

  [[nodiscard]] ServiceStats stats() const;
  /// Writes the stats() snapshot as "service.*" counters on `trace`
  /// (null-safe).
  void export_stats(TraceContext* trace) const;

  [[nodiscard]] const AlgorithmRegistry& registry() const noexcept {
    return *registry_;
  }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Ring size: p999 needs >= 1000 samples to be more than a max.
  static constexpr std::size_t kLatencyWindow = 4096;

  void execute(const std::shared_ptr<Pending>& pending, ServiceRequest request,
               RunLimits limits);
  void record_completion(std::int64_t elapsed_ns);
  [[nodiscard]] static PendingPtr completed(SolveOutcome outcome);

  const AlgorithmRegistry* registry_;
  ServiceOptions options_;

  /// Guards only the pause gate and the accepting flag; counters and the
  /// cache are off this mutex entirely.
  mutable std::mutex mutex_;
  std::condition_variable pause_cv_;
  bool paused_ = false;
  std::atomic<bool> accepting_{true};

  std::atomic<std::int64_t> received_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> errors_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> outstanding_{0};
  std::atomic<std::int64_t> cache_hits_{0};
  std::atomic<std::int64_t> cache_misses_{0};

  /// Ring of recent completion latencies feeding the percentile snapshot.
  /// Slot writes and the monotone fill counter are relaxed atomics — a
  /// stats() read races only with nanosecond-count stores, never with a
  /// resize.
  std::array<std::atomic<std::int64_t>, kLatencyWindow> latency_window_{};
  std::atomic<std::int64_t> latency_count_{0};

  ShardedLruCache<std::string, SolveOutcome> cache_;

  CancelToken abort_;
  /// Last member: workers touch everything above, so they must die first.
  ThreadPool pool_;
};

}  // namespace calisched

// The persistent solve service: a bounded, cache-fronted, deadline-aware
// request executor built on AlgorithmRegistry + ThreadPool.
//
// Lifecycle of one request:
//   submit() — admission control. A request beyond `queue_capacity`
//     outstanding (admitted but unfinished) requests is rejected
//     *immediately* with a completed `rejected` outcome; the queue can
//     never grow without bound. Admitted requests get their wall-clock
//     deadline stamped here (queue wait burns budget, as a real server
//     must account it) and a Pending handle the caller can wait on.
//   worker — after the pause gate, the canonical instance hash is looked
//     up in the LRU result cache (hits return the stored verified outcome
//     without running anything); misses run the algorithm under
//     RunLimits{deadline, service CancelToken} and insert the outcome into
//     the cache iff it is ok+feasible+verified.
//   shutdown(drain=true) — stop admitting, release any pause, and wait
//     for every outstanding request to finish (in-flight solves are
//     drained, never abandoned). drain=false additionally fires the
//     CancelToken so in-flight solves stop at their next limit poll.
//
// Counters (requests, accepted, rejects, cache hits/misses, completions,
// p50/p95 solve latency) are snapshot via stats() and exportable into the
// trace layer via export_stats(); the NDJSON front end maps them onto the
// "stats" request type.
//
// Thread-safety: submit/pause/resume/stats/shutdown may be called from any
// thread. One mutex orders admission, the cache, and the counters, so a
// stats() snapshot is always internally consistent.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/registry.hpp"
#include "service/lru_cache.hpp"
#include "service/protocol.hpp"
#include "util/thread_pool.hpp"

namespace calisched {

class TraceContext;

struct ServiceOptions {
  /// Worker threads; 0 means hardware concurrency.
  std::size_t threads = 1;
  /// Maximum admitted-but-unfinished requests; submissions beyond it are
  /// rejected immediately (explicit backpressure, never unbounded growth).
  std::size_t queue_capacity = 64;
  /// LRU result-cache entries; 0 disables caching.
  std::size_t cache_capacity = 128;
};

/// Consistent snapshot of the per-server counters.
struct ServiceStats {
  std::int64_t received = 0;     ///< submit() calls
  std::int64_t accepted = 0;     ///< admitted past backpressure
  std::int64_t rejected = 0;     ///< bounced: full queue or shutting down
  std::int64_t errors = 0;       ///< refused at admission (unknown algorithm)
  std::int64_t completed = 0;    ///< finished (cache hit or solved)
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_size = 0;
  std::int64_t outstanding = 0;  ///< admitted, not yet completed
  bool paused = false;
  std::int64_t latency_p50_ns = 0;  ///< over the recent-completion window
  std::int64_t latency_p95_ns = 0;
  std::int64_t latency_samples = 0; ///< samples currently in the window
};

class SolveService {
 public:
  /// Completed-or-pending result slot for one admitted (or rejected)
  /// request. Rejections are born completed.
  class Pending {
   public:
    /// Blocks until the outcome is ready; the reference stays valid for
    /// the Pending's lifetime.
    [[nodiscard]] const SolveOutcome& wait() const;
    [[nodiscard]] bool ready() const;

   private:
    friend class SolveService;
    void complete(SolveOutcome outcome);

    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    bool ready_ = false;
    SolveOutcome outcome_;
  };
  using PendingPtr = std::shared_ptr<Pending>;

  /// The registry must outlive the service.
  SolveService(const AlgorithmRegistry& registry, ServiceOptions options);
  /// Graceful: equivalent to shutdown(/*drain=*/true).
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Never blocks. The returned handle is already completed when the
  /// request was rejected (full queue, shutdown in progress, unknown
  /// algorithm); otherwise it completes when a worker finishes.
  [[nodiscard]] PendingPtr submit(const ServiceRequest& request);

  /// Holds workers before they pick up their next request (admission and
  /// the bounded queue keep operating — this is how backpressure is
  /// exercised deterministically). resume() releases them.
  void pause();
  void resume();

  /// Stops admission and waits for all outstanding requests to finish.
  /// With drain=false the service CancelToken fires first, so in-flight
  /// solves stop at their next poll instead of running to completion.
  /// Idempotent; implicitly resumes a paused service.
  void shutdown(bool drain = true);

  [[nodiscard]] ServiceStats stats() const;
  /// Writes the stats() snapshot as "service.*" counters on `trace`
  /// (null-safe).
  void export_stats(TraceContext* trace) const;

  [[nodiscard]] const AlgorithmRegistry& registry() const noexcept {
    return *registry_;
  }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

 private:
  void execute(const std::shared_ptr<Pending>& pending, ServiceRequest request,
               RunLimits limits);
  [[nodiscard]] static PendingPtr completed(SolveOutcome outcome);

  const AlgorithmRegistry* registry_;
  ServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable pause_cv_;
  bool paused_ = false;
  bool accepting_ = true;
  std::int64_t received_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t errors_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t outstanding_ = 0;
  std::int64_t cache_hits_ = 0;
  std::int64_t cache_misses_ = 0;
  /// Ring of recent completion latencies feeding the percentile snapshot.
  std::vector<std::int64_t> latency_window_;
  std::size_t latency_next_ = 0;
  std::int64_t latency_total_ = 0;
  LruCache<std::string, SolveOutcome> cache_;

  CancelToken abort_;
  /// Last member: workers touch everything above, so they must die first.
  ThreadPool pool_;
};

}  // namespace calisched

// Online-arrival subscribe sessions for the NDJSON front ends.
//
// One OnlineSession wraps one OnlineSimulation: `subscribe` opens it,
// each `arrive` advances it and yields one schedule-delta response, and
// `finalize` closes it with a result-shaped summary. Both front ends —
// the blocking stdio/TCP reader and the epoll event loop — drive the
// session synchronously on the thread that parsed the request and emit
// the returned line through their ordered writer, so a subscribe session
// produces a byte-identical response stream on every front end and at
// every worker-thread count (the simulation itself is deterministic and
// single-threaded; the solve pool is never involved).
//
// Each connection owns at most one live session; a second `subscribe`
// before `finalize` is an error, as is `arrive`/`finalize` without one.
// Session state is connection-local by construction (the blocking server
// keeps it on the reader's stack, the epoll server inside the Connection
// record owned by one loop), so no synchronization is needed.
#pragma once

#include <memory>
#include <string>

#include "online/online.hpp"
#include "service/protocol.hpp"

namespace calisched {

class OnlineSession {
 public:
  /// True between a successful subscribe and the matching finalize.
  [[nodiscard]] bool active() const noexcept { return simulation_ != nullptr; }

  /// Handles one already-parsed subscribe/arrive/finalize request and
  /// returns the complete response line (no trailing newline) — an ack,
  /// a delta, a result, or an error. Never throws.
  [[nodiscard]] std::string handle(const ServiceRequest& request);

 private:
  [[nodiscard]] std::string subscribe(const ServiceRequest& request);
  [[nodiscard]] std::string arrive(const ServiceRequest& request);
  [[nodiscard]] std::string finalize(const ServiceRequest& request);

  std::unique_ptr<OnlineSimulation> simulation_;
  bool unit_model_ = true;  ///< selects the delta calibration shape
};

}  // namespace calisched

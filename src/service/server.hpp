// Front ends of the solve service: one NDJSON connection loop shared by
// the --stdio pipe mode and the TCP server.
//
// Ordering contract: responses are written in request-arrival order, one
// line each, regardless of the worker-thread count — a dedicated writer
// thread drains a FIFO of response thunks while the reader keeps
// admitting. Because solve responses carry no timing and no cache marker,
// a response stream is byte-identical for any `--threads` value. A
// "stats" thunk runs only when the writer reaches it, i.e. after every
// earlier request has completed and been written, so its counters are
// reproducible for sequential scripts.
//
// Control requests (pause/resume) take effect when the *reader* sees
// them — their acks are still emitted in order, but a paused service never
// deadlocks the writer, and connection teardown always resumes the
// service so an abandoned pause cannot wedge it.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

#include "service/service.hpp"

namespace calisched {

/// What one connection loop saw; the CLI summary and the tests read this.
struct ServeReport {
  std::int64_t lines = 0;      ///< non-empty request lines consumed
  std::int64_t malformed = 0;  ///< lines answered with an "error" response
  bool shutdown_requested = false;
};

/// Runs one NDJSON request/response conversation over the pair of streams
/// until EOF or a "shutdown" request. Leaves the service running (the TCP
/// server reuses one service across connections); callers own shutdown().
ServeReport serve_connection(SolveService& service, std::istream& in,
                             std::ostream& out);

/// Renders the "stats" response body shared by every front end (stdio
/// writer thunk and epoll stats slot): the full ServiceStats snapshot —
/// latency p50/p95/p99/p999 included — plus the per-connection
/// lines/malformed counters captured at read time.
JsonValue make_stats_response(const JsonValue& id, const ServiceStats& stats,
                              std::int64_t lines, std::int64_t malformed);

/// The `calisched serve --stdio` body: one service, one conversation on
/// (in, out), then a draining shutdown. Returns the process exit code.
int run_stdio_server(const AlgorithmRegistry& registry,
                     const ServiceOptions& options, std::istream& in,
                     std::ostream& out, ServeReport* report = nullptr);

/// Minimal loopback TCP front end: accept loop, one thread per
/// connection, each running serve_connection on the shared service.
class TcpServer {
 public:
  explicit TcpServer(SolveService& service) : service_(&service) {}
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port)
  /// with the given listen() backlog (<= 0 means SOMAXCONN); throws
  /// std::runtime_error on failure. Returns the bound port.
  int start(int port, int backlog = 0);
  /// Blocks accepting connections until stop() or a client "shutdown"
  /// request; all connection threads are joined before returning.
  void serve();
  /// Unblocks serve() from any thread. Idempotent.
  void stop();

  [[nodiscard]] int port() const noexcept { return port_; }

 private:
  SolveService* service_;
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
};

}  // namespace calisched

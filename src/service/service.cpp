#include "service/service.hpp"

#include <algorithm>
#include <utility>

#include "service/instance_hash.hpp"
#include "trace/trace.hpp"

namespace calisched {

namespace {

constexpr std::size_t kLatencyWindow = 512;

/// Cache key: algorithm name + canonical instance hash + node budget. The
/// algorithm is part of the key because different algorithms legitimately
/// return different (all verified) schedules for one instance; the node
/// budget is part of it because a budget changes whether an exact engine
/// certifies at all, so outcomes across budgets must not shadow each other.
std::string cache_key(const ServiceRequest& request) {
  char hex[17];
  std::uint64_t hash = canonical_instance_hash(request.instance);
  for (int i = 15; i >= 0; --i) {
    hex[i] = "0123456789abcdef"[hash & 0xf];
    hash >>= 4;
  }
  hex[16] = '\0';
  return request.algorithm + '#' + hex + '#' +
         std::to_string(request.node_budget);
}

std::int64_t percentile(std::vector<std::int64_t> samples, double q) {
  if (samples.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

}  // namespace

// ---------------------------------------------------------------- Pending --

const SolveOutcome& SolveService::Pending::wait() const {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return ready_; });
  return outcome_;
}

bool SolveService::Pending::ready() const {
  std::scoped_lock lock(mutex_);
  return ready_;
}

void SolveService::Pending::complete(SolveOutcome outcome) {
  {
    std::scoped_lock lock(mutex_);
    outcome_ = std::move(outcome);
    ready_ = true;
  }
  cv_.notify_all();
}

// ----------------------------------------------------------- SolveService --

SolveService::SolveService(const AlgorithmRegistry& registry,
                           ServiceOptions options)
    : registry_(&registry),
      options_(options),
      cache_(options.cache_capacity),
      pool_(options.threads) {
  latency_window_.reserve(kLatencyWindow);
}

SolveService::~SolveService() { shutdown(/*drain=*/true); }

SolveService::PendingPtr SolveService::completed(SolveOutcome outcome) {
  auto pending = std::make_shared<Pending>();
  pending->complete(std::move(outcome));
  return pending;
}

SolveService::PendingPtr SolveService::submit(const ServiceRequest& request) {
  // Deadline stamped at admission: time spent waiting in the queue burns
  // the request's budget, so a flooded server fails queued requests fast
  // instead of solving stale ones.
  RunLimits limits;
  if (request.timeout_ms > 0) {
    limits = RunLimits::deadline_after(std::chrono::milliseconds(request.timeout_ms));
  }
  limits.cancel = &abort_;
  limits.node_budget = request.node_budget;

  {
    std::scoped_lock lock(mutex_);
    ++received_;
    SolveOutcome bounced;
    bounced.rejected = true;
    bounced.jobs = request.instance.size();
    if (!accepting_) {
      ++rejected_;
      fail_result(bounced, SolveStatus::kCancelled, "service is shutting down",
                  "service");
      return completed(std::move(bounced));
    }
    if (static_cast<std::size_t>(outstanding_) >= options_.queue_capacity) {
      ++rejected_;
      fail_result(bounced, SolveStatus::kLimitExceeded,
                  "queue full (capacity " +
                      std::to_string(options_.queue_capacity) + ")",
                  "service");
      return completed(std::move(bounced));
    }
    if (registry_->find(request.algorithm) == nullptr) {
      ++errors_;
      bounced.rejected = false;  // a client error, not backpressure
      fail_result(bounced, SolveStatus::kInfeasible,
                  "unknown algorithm '" + request.algorithm + "'", "service");
      return completed(std::move(bounced));
    }
    ++outstanding_;
  }

  auto pending = std::make_shared<Pending>();
  pool_.submit([this, pending, request, limits] {
    execute(pending, request, limits);
  });
  return pending;
}

void SolveService::execute(const std::shared_ptr<Pending>& pending,
                           ServiceRequest request, RunLimits limits) {
  {
    // Pause gate: held workers park here; shutdown() clears the flag.
    std::unique_lock lock(mutex_);
    pause_cv_.wait(lock, [this] { return !paused_; });
  }
  const auto started = std::chrono::steady_clock::now();
  const std::string key = cache_key(request);

  SolveOutcome outcome;
  bool hit = false;
  {
    std::scoped_lock lock(mutex_);
    if (const SolveOutcome* cached = cache_.get(key)) {
      outcome = *cached;
      hit = true;
      ++cache_hits_;
    } else {
      ++cache_misses_;
    }
  }

  if (!hit) {
    const Algorithm* algorithm = registry_->find(request.algorithm);
    const RunResult result = algorithm->run(request.instance, limits, nullptr);
    outcome.status = result.status;
    outcome.feasible = result.feasible;
    outcome.verified = result.verified;
    outcome.jobs = request.instance.size();
    outcome.calibrations = result.calibrations;
    outcome.machines = result.machines;
    outcome.speed = result.speed;
    outcome.total_cost = result.total_cost;
    outcome.error = result.error;
    outcome.schedule = result.schedule;
  }

  const std::int64_t elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count();
  {
    std::scoped_lock lock(mutex_);
    // Only verified feasible results are cached: a limit-stopped or
    // infeasible outcome may be transient (tighter deadline, cancelled
    // batch) and must not shadow a future honest solve.
    if (!hit && outcome.status == SolveStatus::kOk && outcome.feasible &&
        outcome.verified) {
      cache_.put(key, outcome);
    }
    --outstanding_;
    ++completed_;
    if (latency_window_.size() < kLatencyWindow) {
      latency_window_.push_back(elapsed_ns);
    } else {
      latency_window_[latency_next_] = elapsed_ns;
    }
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
    latency_total_ += elapsed_ns;
  }
  pending->complete(std::move(outcome));
}

void SolveService::pause() {
  std::scoped_lock lock(mutex_);
  paused_ = true;
}

void SolveService::resume() {
  {
    std::scoped_lock lock(mutex_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void SolveService::shutdown(bool drain) {
  {
    std::scoped_lock lock(mutex_);
    accepting_ = false;
    paused_ = false;
    if (!drain) abort_.cancel();
  }
  pause_cv_.notify_all();
  pool_.wait_idle();
}

ServiceStats SolveService::stats() const {
  ServiceStats stats;
  std::vector<std::int64_t> window;
  {
    std::scoped_lock lock(mutex_);
    stats.received = received_;
    stats.rejected = rejected_;
    stats.errors = errors_;
    stats.accepted = received_ - rejected_ - errors_;
    stats.completed = completed_;
    stats.outstanding = outstanding_;
    stats.cache_hits = cache_hits_;
    stats.cache_misses = cache_misses_;
    stats.cache_size = static_cast<std::int64_t>(cache_.size());
    stats.paused = paused_;
    window = latency_window_;
  }
  stats.latency_samples = static_cast<std::int64_t>(window.size());
  stats.latency_p50_ns = percentile(window, 0.50);
  stats.latency_p95_ns = percentile(std::move(window), 0.95);
  return stats;
}

void SolveService::export_stats(TraceContext* trace) const {
  if (trace == nullptr) return;
  const ServiceStats stats = this->stats();
  trace->set("service.requests", stats.received);
  trace->set("service.accepted", stats.accepted);
  trace->set("service.rejected", stats.rejected);
  trace->set("service.errors", stats.errors);
  trace->set("service.completed", stats.completed);
  trace->set("service.outstanding", stats.outstanding);
  trace->set("service.cache.hits", stats.cache_hits);
  trace->set("service.cache.misses", stats.cache_misses);
  trace->set("service.cache.size", stats.cache_size);
  trace->set("service.latency.p50_ns", stats.latency_p50_ns);
  trace->set("service.latency.p95_ns", stats.latency_p95_ns);
  trace->set("service.latency.samples", stats.latency_samples);
}

}  // namespace calisched

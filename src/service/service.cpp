#include "service/service.hpp"

#include <algorithm>
#include <utility>

#include "service/instance_hash.hpp"
#include "trace/trace.hpp"
#include "util/percentile.hpp"

namespace calisched {

namespace {

/// Cache key: algorithm name + canonical instance hash + node budget. The
/// algorithm is part of the key because different algorithms legitimately
/// return different (all verified) schedules for one instance; the node
/// budget is part of it because a budget changes whether an exact engine
/// certifies at all, so outcomes across budgets must not shadow each other.
/// The raw hash is returned too: the sharded cache routes on its prefix.
std::string cache_key(const ServiceRequest& request, std::uint64_t hash) {
  char hex[17];
  std::uint64_t rest = hash;
  for (int i = 15; i >= 0; --i) {
    hex[i] = "0123456789abcdef"[rest & 0xf];
    rest >>= 4;
  }
  hex[16] = '\0';
  return request.algorithm + '#' + hex + '#' +
         std::to_string(request.node_budget);
}

}  // namespace

// ---------------------------------------------------------------- Pending --

const SolveOutcome& SolveService::Pending::wait() const {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return ready_; });
  return outcome_;
}

bool SolveService::Pending::ready() const {
  std::scoped_lock lock(mutex_);
  return ready_;
}

void SolveService::Pending::on_ready(std::function<void()> hook) {
  {
    std::scoped_lock lock(mutex_);
    if (!ready_) {
      hook_ = std::move(hook);
      return;
    }
  }
  // Already completed: run the hook from the registering thread, outside
  // the lock (it typically re-enters an event-loop inbox).
  hook();
}

void SolveService::Pending::complete(SolveOutcome outcome) {
  std::function<void()> hook;
  {
    std::scoped_lock lock(mutex_);
    outcome_ = std::move(outcome);
    ready_ = true;
    hook = std::move(hook_);
  }
  cv_.notify_all();
  if (hook) hook();
}

// ----------------------------------------------------------- SolveService --

SolveService::SolveService(const AlgorithmRegistry& registry,
                           ServiceOptions options)
    : registry_(&registry),
      options_(options),
      cache_(options.cache_capacity,
             options.cache_shards == 0 ? 1 : options.cache_shards),
      pool_(options.threads) {}

SolveService::~SolveService() { shutdown(/*drain=*/true); }

SolveService::PendingPtr SolveService::completed(SolveOutcome outcome) {
  auto pending = std::make_shared<Pending>();
  pending->complete(std::move(outcome));
  return pending;
}

SolveService::PendingPtr SolveService::submit(const ServiceRequest& request) {
  // Deadline stamped at admission: time spent waiting in the queue burns
  // the request's budget, so a flooded server fails queued requests fast
  // instead of solving stale ones. timeout_ms < 0 means the field was
  // absent (no deadline); any value >= 0 — including 0 — stamps one, and
  // deadline_after treats a zero budget as already expired.
  RunLimits limits;
  if (request.timeout_ms >= 0) {
    limits = RunLimits::deadline_after(std::chrono::milliseconds(request.timeout_ms));
  }
  limits.cancel = &abort_;
  limits.node_budget = request.node_budget;

  received_.fetch_add(1, std::memory_order_relaxed);
  SolveOutcome bounced;
  bounced.rejected = true;
  bounced.jobs = request.instance.size();
  if (!accepting_.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    fail_result(bounced, SolveStatus::kCancelled, "service is shutting down",
                "service");
    return completed(std::move(bounced));
  }

  // An already-expired deadline completes synchronously — before the cache
  // probe, because a cached answer to a request whose budget was spent
  // before it arrived would make "timeout_ms":0 responses depend on cache
  // state, which the response-stream determinism contract forbids.
  if (const SolveStatus expired = limits.check(); expired != SolveStatus::kOk) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    record_completion(0);
    SolveOutcome out;
    out.jobs = request.instance.size();
    fail_result(out, expired, {}, "service");
    return completed(std::move(out));
  }

  // Cache fast path: a hit is a completed request — no queue slot, no
  // worker hop, no pause gate (a hit runs nothing, so there is nothing to
  // hold). On a miss nothing is counted here; the worker-side lookup is
  // the one that decides hit-or-miss for queued requests, because the
  // cache may fill between admission and execution.
  const auto fast_started = std::chrono::steady_clock::now();
  const std::uint64_t hash = canonical_instance_hash(request.instance);
  const std::string key = cache_key(request, hash);
  {
    SolveOutcome cached;
    if (cache_.get(hash, key, &cached)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      record_completion(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - fast_started)
                            .count());
      return completed(std::move(cached));
    }
  }

  const std::int64_t prior =
      outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (prior >= static_cast<std::int64_t>(options_.queue_capacity)) {
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    fail_result(bounced, SolveStatus::kLimitExceeded,
                "queue full (capacity " +
                    std::to_string(options_.queue_capacity) + ")",
                "service");
    return completed(std::move(bounced));
  }
  if (registry_->find(request.algorithm) == nullptr) {
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    errors_.fetch_add(1, std::memory_order_relaxed);
    bounced.rejected = false;  // a client error, not backpressure
    fail_result(bounced, SolveStatus::kInfeasible,
                "unknown algorithm '" + request.algorithm + "'", "service");
    return completed(std::move(bounced));
  }

  auto pending = std::make_shared<Pending>();
  pool_.submit([this, pending, request, limits] {
    execute(pending, request, limits);
  });
  return pending;
}

void SolveService::execute(const std::shared_ptr<Pending>& pending,
                           ServiceRequest request, RunLimits limits) {
  {
    // Pause gate: held workers park here; shutdown() clears the flag.
    std::unique_lock lock(mutex_);
    pause_cv_.wait(lock, [this] { return !paused_; });
  }
  const auto started = std::chrono::steady_clock::now();
  const std::uint64_t hash = canonical_instance_hash(request.instance);
  const std::string key = cache_key(request, hash);

  SolveOutcome outcome;
  const bool hit = cache_.get(hash, key, &outcome);
  if (hit) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    const Algorithm* algorithm = registry_->find(request.algorithm);
    const RunResult result = algorithm->run(request.instance, limits, nullptr);
    outcome.status = result.status;
    outcome.feasible = result.feasible;
    outcome.verified = result.verified;
    outcome.jobs = request.instance.size();
    outcome.calibrations = result.calibrations;
    outcome.machines = result.machines;
    outcome.speed = result.speed;
    outcome.total_cost = result.total_cost;
    outcome.error = result.error;
    outcome.schedule = result.schedule;
    // Only verified feasible results are cached: a limit-stopped or
    // infeasible outcome may be transient (tighter deadline, cancelled
    // batch) and must not shadow a future honest solve.
    if (outcome.status == SolveStatus::kOk && outcome.feasible &&
        outcome.verified) {
      cache_.put(hash, key, outcome);
    }
  }

  const std::int64_t elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count();
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  completed_.fetch_add(1, std::memory_order_relaxed);
  record_completion(elapsed_ns);
  pending->complete(std::move(outcome));
}

void SolveService::record_completion(std::int64_t elapsed_ns) {
  const std::int64_t slot =
      latency_count_.fetch_add(1, std::memory_order_relaxed);
  latency_window_[static_cast<std::size_t>(slot) % kLatencyWindow].store(
      elapsed_ns, std::memory_order_relaxed);
}

void SolveService::pause() {
  std::scoped_lock lock(mutex_);
  paused_ = true;
}

void SolveService::resume() {
  {
    std::scoped_lock lock(mutex_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void SolveService::shutdown(bool drain) {
  {
    std::scoped_lock lock(mutex_);
    accepting_.store(false, std::memory_order_release);
    paused_ = false;
    if (!drain) abort_.cancel();
  }
  pause_cv_.notify_all();
  pool_.wait_idle();
}

ServiceStats SolveService::stats() const {
  ServiceStats stats;
  stats.received = received_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.accepted = stats.received - stats.rejected - stats.errors;
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.outstanding = outstanding_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.cache_size = static_cast<std::int64_t>(cache_.size());
  {
    std::scoped_lock lock(mutex_);
    stats.paused = paused_;
  }
  const std::int64_t filled =
      std::min(latency_count_.load(std::memory_order_relaxed),
               static_cast<std::int64_t>(kLatencyWindow));
  std::vector<std::int64_t> window;
  window.reserve(static_cast<std::size_t>(filled));
  for (std::int64_t i = 0; i < filled; ++i) {
    window.push_back(latency_window_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed));
  }
  const LatencyPercentiles latency = latency_percentiles(std::move(window));
  stats.latency_samples = filled;
  stats.latency_p50_ns = latency.p50_ns;
  stats.latency_p95_ns = latency.p95_ns;
  stats.latency_p99_ns = latency.p99_ns;
  stats.latency_p999_ns = latency.p999_ns;
  return stats;
}

void SolveService::export_stats(TraceContext* trace) const {
  if (trace == nullptr) return;
  const ServiceStats stats = this->stats();
  trace->set("service.requests", stats.received);
  trace->set("service.accepted", stats.accepted);
  trace->set("service.rejected", stats.rejected);
  trace->set("service.errors", stats.errors);
  trace->set("service.completed", stats.completed);
  trace->set("service.outstanding", stats.outstanding);
  trace->set("service.cache.hits", stats.cache_hits);
  trace->set("service.cache.misses", stats.cache_misses);
  trace->set("service.cache.size", stats.cache_size);
  trace->set("service.latency.p50_ns", stats.latency_p50_ns);
  trace->set("service.latency.p95_ns", stats.latency_p95_ns);
  trace->set("service.latency.p99_ns", stats.latency_p99_ns);
  trace->set("service.latency.p999_ns", stats.latency_p999_ns);
  trace->set("service.latency.samples", stats.latency_samples);
}

}  // namespace calisched

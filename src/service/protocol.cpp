#include "service/protocol.hpp"

#include <exception>
#include <utility>

namespace calisched {

namespace {

/// Integer field access with range/shape errors naming the field.
bool read_int(const JsonValue& object, std::string_view key,
              std::int64_t* out, std::string* error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || !value->is_int()) {
    *error = "field '" + std::string(key) + "' must be an integer";
    return false;
  }
  *out = value->as_int();
  return true;
}

bool parse_jobs(const JsonValue& value, std::vector<Job>* out,
                std::string* error) {
  if (!value.is_array()) {
    *error = "field 'jobs' must be an array";
    return false;
  }
  out->clear();
  out->reserve(value.as_array().size());
  for (const JsonValue& entry : value.as_array()) {
    if (!entry.is_array() || entry.as_array().size() != 4) {
      *error = "each job must be [id, release, deadline, proc]";
      return false;
    }
    Job job;
    const JsonValue::Array& fields = entry.as_array();
    for (const JsonValue& field : fields) {
      if (!field.is_int()) {
        *error = "each job must be [id, release, deadline, proc] (integers)";
        return false;
      }
    }
    job.id = static_cast<JobId>(fields[0].as_int());
    job.release = fields[1].as_int();
    job.deadline = fields[2].as_int();
    job.proc = fields[3].as_int();
    out->push_back(job);
  }
  return true;
}

bool parse_caltypes(const JsonValue& value, CalibrationModel* out,
                    std::string* error) {
  if (!value.is_array()) {
    *error = "field 'caltypes' must be an array";
    return false;
  }
  out->types.clear();
  for (const JsonValue& entry : value.as_array()) {
    if (!entry.is_array() || entry.as_array().size() != 3 ||
        !entry.as_array()[0].is_int() || !entry.as_array()[1].is_int() ||
        !entry.as_array()[2].is_int()) {
      *error = "each caltype must be [length, cost, delay] (integers)";
      return false;
    }
    const JsonValue::Array& fields = entry.as_array();
    out->types.push_back(CalibrationType{fields[0].as_int(), fields[1].as_int(),
                                         fields[2].as_int()});
  }
  return true;
}

bool parse_instance(const JsonValue& value, Instance* out, std::string* error) {
  if (!value.is_object()) {
    *error = "field 'instance' must be an object";
    return false;
  }
  std::int64_t machines = 0;
  std::int64_t T = 0;
  if (!read_int(value, "machines", &machines, error)) return false;
  if (!read_int(value, "T", &T, error)) return false;
  out->machines = static_cast<int>(machines);
  out->T = T;
  const JsonValue* jobs = value.find("jobs");
  if (jobs == nullptr) {
    *error = "field 'instance.jobs' must be an array";
    return false;
  }
  if (!parse_jobs(*jobs, &out->jobs, error)) return false;
  out->cal.types.clear();
  if (const JsonValue* caltypes = value.find("caltypes")) {
    if (!parse_caltypes(*caltypes, &out->cal, error)) return false;
  }
  if (const auto invalid = out->validate()) {
    *error = "invalid instance: " + *invalid;
    return false;
  }
  return true;
}

}  // namespace

ParsedRequest parse_request(std::string_view line) {
  ParsedRequest parsed;
  JsonValue document;
  try {
    document = JsonValue::parse(line);
  } catch (const std::exception& error) {
    parsed.error = std::string("malformed JSON: ") + error.what();
    return parsed;
  }
  if (!document.is_object()) {
    parsed.error = "request must be a JSON object";
    return parsed;
  }
  if (const JsonValue* id = document.find("id")) parsed.id = *id;

  const JsonValue* type = document.find("type");
  if (type == nullptr || !type->is_string()) {
    parsed.error = "field 'type' must be a string";
    return parsed;
  }
  const std::string& name = type->as_string();
  ServiceRequest& request = parsed.request;
  request.id = parsed.id;
  if (name == "stats") {
    request.type = RequestType::kStats;
  } else if (name == "ping") {
    request.type = RequestType::kPing;
  } else if (name == "pause") {
    request.type = RequestType::kPause;
  } else if (name == "resume") {
    request.type = RequestType::kResume;
  } else if (name == "shutdown") {
    request.type = RequestType::kShutdown;
  } else if (name == "solve") {
    request.type = RequestType::kSolve;
    if (const JsonValue* algo = document.find("algo")) {
      if (!algo->is_string()) {
        parsed.error = "field 'algo' must be a string";
        return parsed;
      }
      request.algorithm = algo->as_string();
    }
    const JsonValue* instance = document.find("instance");
    if (instance == nullptr) {
      parsed.error = "solve request needs an 'instance' object";
      return parsed;
    }
    if (!parse_instance(*instance, &request.instance, &parsed.error)) {
      return parsed;
    }
    if (const JsonValue* timeout = document.find("timeout_ms")) {
      if (!timeout->is_int() || timeout->as_int() < 0) {
        parsed.error = "field 'timeout_ms' must be a non-negative integer";
        return parsed;
      }
      request.timeout_ms = timeout->as_int();
    }
    if (const JsonValue* budget = document.find("node_budget")) {
      if (!budget->is_int() || budget->as_int() < 0) {
        parsed.error = "field 'node_budget' must be a non-negative integer";
        return parsed;
      }
      request.node_budget = budget->as_int();
    }
    if (const JsonValue* schedule = document.find("schedule")) {
      if (!schedule->is_bool()) {
        parsed.error = "field 'schedule' must be a boolean";
        return parsed;
      }
      request.want_schedule = schedule->as_bool();
    }
  } else if (name == "subscribe") {
    request.type = RequestType::kSubscribe;
    request.algorithm = "online-edf";
    if (const JsonValue* algo = document.find("algo")) {
      if (!algo->is_string()) {
        parsed.error = "field 'algo' must be a string";
        return parsed;
      }
      request.algorithm = algo->as_string();
    }
    std::int64_t machines = 0;
    std::int64_t T = 0;
    if (!read_int(document, "machines", &machines, &parsed.error)) return parsed;
    if (!read_int(document, "T", &T, &parsed.error)) return parsed;
    if (machines < 1) {
      parsed.error = "field 'machines' must be >= 1";
      return parsed;
    }
    if (T < 1) {
      parsed.error = "field 'T' must be >= 1";
      return parsed;
    }
    request.instance.machines = static_cast<int>(machines);
    request.instance.T = T;
    request.instance.cal.types.clear();
    if (const JsonValue* caltypes = document.find("caltypes")) {
      if (!parse_caltypes(*caltypes, &request.instance.cal, &parsed.error)) {
        return parsed;
      }
    }
    if (const auto invalid = request.instance.cal.validate()) {
      parsed.error = "invalid caltypes: " + *invalid;
      return parsed;
    }
  } else if (name == "arrive") {
    request.type = RequestType::kArrive;
    if (!read_int(document, "time", &request.arrive_time, &parsed.error)) {
      return parsed;
    }
    if (request.arrive_time < 0) {
      parsed.error = "field 'time' must be non-negative";
      return parsed;
    }
    if (const JsonValue* jobs = document.find("jobs")) {
      if (!parse_jobs(*jobs, &request.arrivals, &parsed.error)) return parsed;
    }
  } else if (name == "finalize") {
    request.type = RequestType::kFinalize;
    if (const JsonValue* schedule = document.find("schedule")) {
      if (!schedule->is_bool()) {
        parsed.error = "field 'schedule' must be a boolean";
        return parsed;
      }
      request.want_schedule = schedule->as_bool();
    }
  } else {
    parsed.error =
        "unknown request type '" + name +
        "' (solve|stats|ping|pause|resume|shutdown|subscribe|arrive|finalize)";
    return parsed;
  }
  parsed.ok = true;
  return parsed;
}

JsonValue instance_to_json(const Instance& instance) {
  JsonValue::Object object;
  object.emplace_back("machines", JsonValue(instance.machines));
  object.emplace_back("T", JsonValue(instance.T));
  JsonValue::Array jobs;
  jobs.reserve(instance.jobs.size());
  for (const Job& job : instance.jobs) {
    JsonValue::Array fields;
    fields.reserve(4);
    fields.emplace_back(static_cast<std::int64_t>(job.id));
    fields.emplace_back(job.release);
    fields.emplace_back(job.deadline);
    fields.emplace_back(job.proc);
    jobs.emplace_back(std::move(fields));
  }
  object.emplace_back("jobs", JsonValue(std::move(jobs)));
  if (!instance.cal.empty()) {
    JsonValue::Array caltypes;
    caltypes.reserve(instance.cal.size());
    for (const CalibrationType& type : instance.cal.types) {
      JsonValue::Array fields;
      fields.reserve(3);
      fields.emplace_back(type.length);
      fields.emplace_back(type.cost);
      fields.emplace_back(type.activation_delay);
      caltypes.emplace_back(std::move(fields));
    }
    object.emplace_back("caltypes", JsonValue(std::move(caltypes)));
  }
  return JsonValue(std::move(object));
}

JsonValue schedule_to_json(const Schedule& schedule) {
  JsonValue::Object object;
  object.emplace_back("machines", JsonValue(schedule.machines));
  object.emplace_back("T", JsonValue(schedule.T));
  object.emplace_back("denominator", JsonValue(schedule.time_denominator));
  object.emplace_back("speed", JsonValue(schedule.speed));
  JsonValue::Array calibrations;
  calibrations.reserve(schedule.calibrations.size());
  // Unit-model schedules keep the historical two-field shape; an explicit
  // type table adds the type id (mirrors the text format's third column).
  for (const Calibration& cal : schedule.calibrations) {
    JsonValue::Array fields;
    fields.emplace_back(cal.machine);
    fields.emplace_back(cal.start);
    if (!schedule.cal.empty()) fields.emplace_back(cal.type);
    calibrations.emplace_back(std::move(fields));
  }
  object.emplace_back("calibrations", JsonValue(std::move(calibrations)));
  JsonValue::Array jobs;
  jobs.reserve(schedule.jobs.size());
  for (const ScheduledJob& sj : schedule.jobs) {
    JsonValue::Array fields;
    fields.emplace_back(static_cast<std::int64_t>(sj.job));
    fields.emplace_back(sj.machine);
    fields.emplace_back(sj.start);
    jobs.emplace_back(std::move(fields));
  }
  object.emplace_back("jobs", JsonValue(std::move(jobs)));
  return JsonValue(std::move(object));
}

JsonValue make_result_response(const JsonValue& id, const SolveOutcome& outcome,
                               bool want_schedule) {
  JsonValue::Object object;
  object.emplace_back("id", id);
  object.emplace_back("type", JsonValue("result"));
  object.emplace_back("status", JsonValue(to_string(outcome.status)));
  object.emplace_back("feasible", JsonValue(outcome.feasible));
  object.emplace_back("verified", JsonValue(outcome.verified));
  object.emplace_back("jobs", JsonValue(outcome.jobs));
  object.emplace_back("calibrations", JsonValue(outcome.calibrations));
  object.emplace_back("machines", JsonValue(outcome.machines));
  object.emplace_back("speed", JsonValue(outcome.speed));
  object.emplace_back("total_cost", JsonValue(outcome.total_cost));
  object.emplace_back("error", JsonValue(outcome.error));
  if (want_schedule && outcome.feasible) {
    object.emplace_back("schedule", schedule_to_json(outcome.schedule));
  }
  return JsonValue(std::move(object));
}

JsonValue make_error_response(const JsonValue& id, std::string_view error) {
  JsonValue::Object object;
  object.emplace_back("id", id);
  object.emplace_back("type", JsonValue("error"));
  object.emplace_back("error", JsonValue(error));
  return JsonValue(std::move(object));
}

JsonValue make_reject_response(const JsonValue& id, std::string_view error) {
  JsonValue::Object object;
  object.emplace_back("id", id);
  object.emplace_back("type", JsonValue("reject"));
  object.emplace_back("error", JsonValue(error));
  return JsonValue(std::move(object));
}

JsonValue make_delta_response(const JsonValue& id, Time time,
                              const std::vector<Calibration>& calibrations,
                              const std::vector<ScheduledJob>& jobs,
                              bool unit_model) {
  JsonValue::Object object;
  object.emplace_back("id", id);
  object.emplace_back("type", JsonValue("delta"));
  object.emplace_back("time", JsonValue(time));
  JsonValue::Array cals;
  cals.reserve(calibrations.size());
  for (const Calibration& cal : calibrations) {
    JsonValue::Array fields;
    fields.emplace_back(cal.machine);
    fields.emplace_back(cal.start);
    if (!unit_model) fields.emplace_back(cal.type);
    cals.emplace_back(std::move(fields));
  }
  object.emplace_back("calibrations", JsonValue(std::move(cals)));
  JsonValue::Array placed;
  placed.reserve(jobs.size());
  for (const ScheduledJob& sj : jobs) {
    JsonValue::Array fields;
    fields.emplace_back(static_cast<std::int64_t>(sj.job));
    fields.emplace_back(sj.machine);
    fields.emplace_back(sj.start);
    placed.emplace_back(std::move(fields));
  }
  object.emplace_back("jobs", JsonValue(std::move(placed)));
  return JsonValue(std::move(object));
}

JsonValue make_ack_response(const JsonValue& id, std::string_view op) {
  JsonValue::Object object;
  object.emplace_back("id", id);
  object.emplace_back("type", JsonValue("ack"));
  object.emplace_back("op", JsonValue(op));
  return JsonValue(std::move(object));
}

std::string dump_response(const JsonValue& response) {
  return response.dump(0);
}

}  // namespace calisched

#include "service/loadgen.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/batch.hpp"
#include "service/framing.hpp"
#include "util/percentile.hpp"
#include "util/rng.hpp"

namespace calisched {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Response-line framing cap. Generous next to the server's 1 MiB request
/// cap because a want_schedule solve response can be much larger than the
/// request that produced it; a line beyond this is a fatal protocol error
/// (kOverflow clears the framer, so counting past it would silently
/// desync).
constexpr std::size_t kMaxResponseLineBytes = 16u << 20;

struct ClientConn {
  int fd = -1;
  LineFramer framer{kMaxResponseLineBytes};
  std::string out;
  std::size_t out_pos = 0;
  bool want_write = false;
  /// FIFO of (request id, scheduled send time) awaiting a response; the
  /// ordering contract says responses pop this front-to-back.
  std::deque<std::pair<std::int64_t, std::int64_t>> inflight;
};

/// Parses `{"id":N,"type":"T",...`; returns false on anything else.
bool parse_response(std::string_view line, std::int64_t* id,
                    std::string_view* type) {
  constexpr std::string_view kIdPrefix = "{\"id\":";
  if (line.substr(0, kIdPrefix.size()) != kIdPrefix) return false;
  std::size_t pos = kIdPrefix.size();
  bool any = false;
  std::int64_t value = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    value = value * 10 + (line[pos] - '0');
    ++pos;
    any = true;
  }
  if (!any) return false;
  *id = value;
  constexpr std::string_view kTypePrefix = ",\"type\":\"";
  if (line.substr(pos, kTypePrefix.size()) != kTypePrefix) return false;
  pos += kTypePrefix.size();
  const std::size_t end = line.find('"', pos);
  if (end == std::string_view::npos) return false;
  *type = line.substr(pos, end - pos);
  return true;
}

/// Flushes as much of `conn.out` as the socket accepts; returns false on
/// a dead peer.
bool flush(ClientConn& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t written = ::send(conn.fd, conn.out.data() + conn.out_pos,
                                   conn.out.size() - conn.out_pos,
                                   MSG_NOSIGNAL);
    if (written > 0) {
      conn.out_pos += static_cast<std::size_t>(written);
      continue;
    }
    if (written < 0 && errno == EINTR) continue;
    if (written < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      conn.want_write = true;
      return true;
    }
    return false;
  }
  conn.out.clear();
  conn.out_pos = 0;
  conn.want_write = false;
  return true;
}

}  // namespace

std::vector<std::int64_t> build_arrival_offsets(const LoadGenOptions& options) {
  const std::size_t conn_count = std::max<std::size_t>(1, options.connections);
  const std::size_t total = static_cast<std::size_t>(
      std::max<std::int64_t>(0, options.requests));

  // rate <= 0 floods (all at t0).
  std::vector<std::int64_t> offsets(total, 0);
  if (options.rate <= 0.0) return offsets;
  const double mean_gap_ns = 1e9 / options.rate;
  if (options.pacing == LoadGenOptions::Pacing::kPoisson) {
    // One exponential stream per connection, not one global stream sliced
    // round-robin: a shared stream makes every connection's process a
    // correlated sum of the same draws (and leaves the schedule blind to
    // the connection count). Connection c carries requests c, c+C, ... at
    // rate/C each, so its mean gap is C times the aggregate mean; the
    // superposition offers `rate` overall. Sampling is inverse-CDF over
    // the repo Rng so the schedule is identical across toolchains.
    const double conn_gap_ns = mean_gap_ns * static_cast<double>(conn_count);
    for (std::size_t c = 0; c < conn_count && c < total; ++c) {
      Rng rng(derive_instance_seed(options.seed, c));
      double at = 0.0;
      for (std::size_t i = c; i < total; i += conn_count) {
        at += -conn_gap_ns * std::log1p(-rng.uniform01());
        offsets[i] = static_cast<std::int64_t>(std::llround(at));
      }
    }
  } else {
    for (std::size_t i = 0; i < total; ++i) {
      offsets[i] = static_cast<std::int64_t>(
          std::llround(static_cast<double>(i + 1) * mean_gap_ns));
    }
  }
  return offsets;
}

LoadGenReport run_loadgen(const LoadGenOptions& options) {
  LoadGenReport report;
  const std::size_t conn_count = std::max<std::size_t>(1, options.connections);
  const std::int64_t total = std::max<std::int64_t>(0, options.requests);

  const std::vector<std::int64_t> offsets = build_arrival_offsets(options);
  // Poisson offsets are per-connection streams, so they are not monotone
  // in the global index; send in time order, with the index breaking ties
  // so each connection's own requests still go out in id order.
  std::vector<std::size_t> order(offsets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&offsets](std::size_t a, std::size_t b) {
                     return offsets[a] < offsets[b];
                   });

  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    report.error = "epoll_create1 failed";
    return report;
  }
  std::vector<ClientConn> conns(conn_count);
  for (std::size_t i = 0; i < conn_count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      report.error = "socket() failed at connection " + std::to_string(i);
      break;
    }
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(static_cast<std::uint16_t>(options.port));
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                     sizeof address);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      ::close(fd);
      report.error = "cannot connect to 127.0.0.1:" +
                     std::to_string(options.port) + " (connection " +
                     std::to_string(i) + ")";
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    conns[i].fd = fd;
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = i;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event);
  }
  if (!report.error.empty()) {
    for (ClientConn& conn : conns) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    ::close(epoll_fd);
    return report;
  }

  std::vector<std::int64_t> latencies;
  latencies.reserve(static_cast<std::size_t>(total));
  const std::int64_t t0 = now_ns();
  const std::int64_t deadline = t0 + options.timeout_ms * 1'000'000;
  std::int64_t next = 0;
  std::int64_t last_response_ns = t0;
  char buffer[65536];
  std::vector<epoll_event> events(128);
  bool dead_peer = false;

  while (report.received < total && !dead_peer) {
    std::int64_t now = now_ns();
    if (now >= deadline) break;

    // Enqueue every request whose scheduled time has arrived; the
    // schedule never waits for responses (open loop).
    std::vector<std::size_t> dirty;
    while (next < total &&
           t0 + offsets[order[static_cast<std::size_t>(next)]] <= now) {
      const std::size_t id = order[static_cast<std::size_t>(next)];
      const std::size_t target = id % conn_count;
      ClientConn& conn = conns[target];
      if (conn.out.empty()) dirty.push_back(target);
      conn.out += "{\"id\":";
      conn.out += std::to_string(id);
      conn.out += ',';
      conn.out += options.body;
      conn.out += "}\n";
      conn.inflight.emplace_back(static_cast<std::int64_t>(id),
                                 t0 + offsets[id]);
      ++report.sent;
      ++next;
    }
    for (const std::size_t index : dirty) {
      ClientConn& conn = conns[index];
      const bool was_blocked = conn.want_write;
      if (!flush(conn)) {
        dead_peer = true;
        break;
      }
      if (conn.want_write != was_blocked) {
        epoll_event event{};
        event.events =
            conn.want_write ? (EPOLLIN | EPOLLOUT) : std::uint32_t{EPOLLIN};
        event.data.u64 = index;
        ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &event);
      }
    }
    if (dead_peer) break;

    int timeout_ms;
    if (next < total) {
      const std::int64_t wait_ns =
          t0 + offsets[order[static_cast<std::size_t>(next)]] - now_ns();
      timeout_ms = static_cast<int>(std::clamp<std::int64_t>(
          (wait_ns + 999'999) / 1'000'000, 0, 100));
    } else {
      timeout_ms = static_cast<int>(std::clamp<std::int64_t>(
          (deadline - now_ns()) / 1'000'000, 0, 100));
    }
    const int count = ::epoll_wait(epoll_fd, events.data(),
                                   static_cast<int>(events.size()), timeout_ms);
    if (count < 0 && errno != EINTR) break;

    for (int i = 0; i < std::max(count, 0); ++i) {
      const std::size_t index =
          static_cast<std::size_t>(events[static_cast<std::size_t>(i)].data.u64);
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      ClientConn& conn = conns[index];
      if ((mask & EPOLLOUT) != 0) {
        if (!flush(conn)) {
          dead_peer = true;
          break;
        }
        if (!conn.want_write) {
          epoll_event event{};
          event.events = EPOLLIN;
          event.data.u64 = index;
          ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &event);
        }
      }
      if ((mask & (EPOLLIN | EPOLLHUP | EPOLLERR)) == 0) continue;
      for (;;) {
        const ssize_t got = ::read(conn.fd, buffer, sizeof buffer);
        if (got > 0) {
          now = now_ns();
          const auto fed = conn.framer.feed(
              std::string_view(buffer, static_cast<std::size_t>(got)),
              [&](std::string_view line) {
                ++report.received;
                last_response_ns = now;
                std::int64_t id = -1;
                std::string_view type;
                if (parse_response(line, &id, &type)) {
                  if (type == "error") ++report.errors;
                  if (type == "reject") ++report.rejects;
                } else {
                  ++report.errors;
                }
                if (conn.inflight.empty() ||
                    conn.inflight.front().first != id) {
                  ++report.order_violations;
                  if (!conn.inflight.empty()) conn.inflight.pop_front();
                } else {
                  latencies.push_back(now - conn.inflight.front().second);
                  conn.inflight.pop_front();
                }
                return true;
              });
          if (fed == LineFramer::FeedResult::kOverflow) {
            // The framer dropped its buffer: response counting is now
            // desynced, so failing at the global timeout later would
            // misreport. Fail here, loudly.
            report.error = "response line exceeds " +
                           std::to_string(kMaxResponseLineBytes) +
                           " bytes (framer overflow; protocol desync)";
            dead_peer = true;
            break;
          }
          continue;
        }
        if (got == 0) {
          dead_peer = report.received < total;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        dead_peer = true;
        break;
      }
      if (dead_peer) break;
    }
  }

  for (ClientConn& conn : conns) {
    if (conn.fd >= 0) {
      ::shutdown(conn.fd, SHUT_RDWR);
      ::close(conn.fd);
    }
  }
  ::close(epoll_fd);

  const double elapsed_s =
      static_cast<double>(std::max<std::int64_t>(last_response_ns - t0, 1)) /
      1e9;
  report.elapsed_s = elapsed_s;
  report.sent_per_s = static_cast<double>(report.sent) / elapsed_s;
  report.received_per_s = static_cast<double>(report.received) / elapsed_s;
  report.latency_samples = static_cast<std::int64_t>(latencies.size());
  const LatencyPercentiles latency = latency_percentiles(std::move(latencies));
  report.latency_p50_ns = latency.p50_ns;
  report.latency_p99_ns = latency.p99_ns;
  report.latency_p999_ns = latency.p999_ns;
  report.completed = report.received == total;
  return report;
}

}  // namespace calisched

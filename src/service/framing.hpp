// Incremental NDJSON line framing for the nonblocking front ends.
//
// The epoll server reads whatever the socket has into a per-connection
// growable buffer and needs back the complete lines — however the bytes
// were split across reads: one request per read, half a request, twenty
// requests and a torn twenty-first. LineFramer owns that buffer and the
// scan state. Lines are handed out as string_views into the buffer (no
// per-line allocation, no istream); the consumed prefix is compacted
// once per feed, after the views die.
//
// Framing matches the blocking path byte for byte: '\n' terminates a
// line, one trailing '\r' is stripped (std::getline keeps it, but the
// blocking path's blank-line filter tolerates it — the framer strips so
// downstream code sees identical lines either way), and a final unviewed
// partial line at EOF is still a line (getline semantics).
//
// The one failure mode is a line that outgrows the limit — terminated or
// not (an unterminated one can never resync: the newline that would end
// the giant line may never come). feed() reports overflow and the server
// answers with one structured error and closes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace calisched {

class LineFramer {
 public:
  /// `max_line_bytes` caps one line (terminator excluded); a line longer
  /// than this makes feed()/finish() report overflow.
  explicit LineFramer(std::size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  enum class FeedResult {
    kOk,        ///< all complete lines delivered; remainder buffered
    kOverflow,  ///< an unterminated line exceeded max_line_bytes
  };

  /// Appends `data` and invokes `sink(line)` for each newly completed
  /// line, in order. `sink` is any callable taking std::string_view; the
  /// view dies when feed() returns. If `sink` returns false, delivery
  /// stops and the remaining buffered bytes are dropped (the connection
  /// is done reading — shutdown or a fatal request). Returns kOverflow
  /// when the partial line exceeds the limit; buffered state is cleared
  /// and the framer must not be fed again.
  template <typename Sink>
  FeedResult feed(std::string_view data, Sink&& sink) {
    buffer_.append(data.data(), data.size());
    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = buffer_.find('\n', std::max(start, scan_));
      if (newline == std::string::npos) break;
      std::string_view line(buffer_.data() + start, newline - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (line.size() > max_line_bytes_) {
        buffer_.clear();
        scan_ = 0;
        return FeedResult::kOverflow;
      }
      ++lines_;
      start = newline + 1;
      scan_ = start;
      if (!sink(line)) {
        buffer_.clear();
        scan_ = 0;
        return FeedResult::kOk;
      }
    }
    buffer_.erase(0, start);
    scan_ = buffer_.size();
    if (buffer_.size() > max_line_bytes_) {
      buffer_.clear();
      scan_ = 0;
      return FeedResult::kOverflow;
    }
    return FeedResult::kOk;
  }

  /// EOF: delivers the trailing partial line, if any, to `sink` (getline
  /// treats a final unterminated line as a line). Idempotent afterwards.
  template <typename Sink>
  FeedResult finish(Sink&& sink) {
    if (buffer_.empty()) return FeedResult::kOk;
    std::string_view line(buffer_);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.size() > max_line_bytes_) {
      buffer_.clear();
      scan_ = 0;
      return FeedResult::kOverflow;
    }
    ++lines_;
    sink(line);
    // Clear only after the sink ran: clear() terminates the (now empty)
    // string in place, which would stomp the view's first byte.
    buffer_.clear();
    scan_ = 0;
    return FeedResult::kOk;
  }

  /// Bytes currently buffered (the torn tail of the last read).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size();
  }
  /// Complete lines delivered so far (blank ones included).
  [[nodiscard]] std::int64_t lines_delivered() const noexcept {
    return lines_;
  }

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
  /// Scan resume point: bytes before it are known newline-free, so a
  /// torn 1 MiB line is scanned once, not once per subsequent read.
  std::size_t scan_ = 0;
  std::int64_t lines_ = 0;
};

}  // namespace calisched

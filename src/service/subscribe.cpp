#include "service/subscribe.hpp"

#include <utility>

#include "runtime/registry.hpp"

namespace calisched {

std::string OnlineSession::handle(const ServiceRequest& request) {
  switch (request.type) {
    case RequestType::kSubscribe:
      return subscribe(request);
    case RequestType::kArrive:
      return arrive(request);
    case RequestType::kFinalize:
      return finalize(request);
    default:
      return dump_response(make_error_response(
          request.id, "not a subscribe-session request"));
  }
}

std::string OnlineSession::subscribe(const ServiceRequest& request) {
  if (active()) {
    return dump_response(make_error_response(
        request.id, "a subscribe session is already active on this "
                    "connection (finalize it first)"));
  }
  // The registry's capability flag is the contract: only algorithms that
  // decide with arrival-time information may serve a live stream.
  if (const Algorithm* algorithm =
          AlgorithmRegistry::builtin().find(request.algorithm)) {
    if (!algorithm->capabilities().supports_online) {
      return dump_response(make_error_response(
          request.id, "algorithm '" + request.algorithm +
                          "' does not support online sessions"));
    }
  }
  std::unique_ptr<OnlineScheduler> scheduler =
      make_online_scheduler(request.algorithm);
  if (scheduler == nullptr) {
    return dump_response(make_error_response(
        request.id, "unknown online algorithm '" + request.algorithm + "'"));
  }
  auto simulation = std::make_unique<OnlineSimulation>(
      std::move(scheduler), request.instance.machines, request.instance.T,
      request.instance.cal);
  if (simulation->failed()) {
    return dump_response(
        make_error_response(request.id, simulation->error()));
  }
  simulation_ = std::move(simulation);
  unit_model_ = request.instance.cal.empty();
  return dump_response(make_ack_response(request.id, "subscribe"));
}

std::string OnlineSession::arrive(const ServiceRequest& request) {
  if (!active()) {
    return dump_response(make_error_response(
        request.id, "no active subscribe session on this connection"));
  }
  ScheduleDelta delta;
  std::string error;
  if (!simulation_->arrive(request.arrive_time, request.arrivals, &delta,
                           &error)) {
    return dump_response(make_error_response(request.id, error));
  }
  return dump_response(make_delta_response(
      request.id, delta.time, delta.calibrations, delta.jobs, unit_model_));
}

std::string OnlineSession::finalize(const ServiceRequest& request) {
  if (!active()) {
    return dump_response(make_error_response(
        request.id, "no active subscribe session on this connection"));
  }
  OnlineResult finished = simulation_->finish();
  simulation_.reset();
  SolveOutcome outcome;
  outcome.status =
      finished.feasible ? SolveStatus::kOk : SolveStatus::kInfeasible;
  outcome.feasible = finished.feasible;
  outcome.verified = finished.feasible;  // finish() ran the verifier
  outcome.jobs = finished.schedule.jobs.size();
  outcome.calibrations = finished.schedule.num_calibrations();
  outcome.machines = finished.schedule.machines;
  outcome.speed = finished.schedule.speed;
  outcome.total_cost = finished.schedule.total_cost();
  outcome.error = finished.error;
  outcome.schedule = std::move(finished.schedule);
  return dump_response(
      make_result_response(request.id, outcome, request.want_schedule));
}

}  // namespace calisched

// Nonblocking epoll front end of the solve service.
//
// Replaces the thread-per-connection TcpServer as the default TCP path
// (the old server stays available as the differential baseline E19
// measures against). A fixed small set of I/O threads each runs one
// level-triggered epoll loop; every accepted connection is owned by
// exactly one loop for its whole life, so connection state is never
// shared between threads — the only cross-thread traffic is a completed
// solve poking its loop's eventfd inbox.
//
// Per connection:
//   * reads drain into a LineFramer (growable buffer scanned for
//     newlines — no istream, no per-line allocation); each complete line
//     is parsed and answered exactly like the blocking path;
//   * responses queue as ordered slots — ready text, a pending solve, or
//     a deferred stats snapshot — and a slot is serialized only when it
//     reaches the head, which preserves the writer-FIFO contract: one
//     response line per request line, in request arrival order, so a
//     response stream is byte-identical to the stdio path (and across
//     any worker-thread count);
//   * writes are batched: everything serializable goes into one output
//     buffer flushed with as few write() calls as the socket accepts
//     (EPOLLOUT is registered only while a flush is blocked);
//   * the write queue is bounded: past `write_high_watermark` buffered
//     bytes — or past `max_queued_slots` response slots queued behind an
//     incomplete solve, where no bytes serialize at all — the loop stops
//     reading from that connection (level-triggered readiness re-fires
//     once draining re-enables EPOLLIN), so a slow reader or a client
//     pipelining behind a slow solve throttles itself instead of growing
//     the server.
//
// Ordering-contract sketch: slots are appended in request order (the
// framer delivers lines in byte order); only the head slot may
// serialize; the output buffer is append-only and written in order; TCP
// preserves byte order. Therefore response order == request order, and a
// "stats" slot serializes only after every earlier response was built —
// the same point in the request stream where the stdio writer runs its
// stats thunk.
//
// A line exceeding `max_line_bytes` cannot be resynced (its terminator
// may never arrive): the connection gets one structured error response
// and is closed after the flush.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "service/service.hpp"

namespace calisched {

struct EpollServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port.
  int port = 0;
  /// listen() backlog; <= 0 means SOMAXCONN.
  int backlog = 0;
  /// Event-loop threads. Connections are assigned round-robin at accept.
  std::size_t io_threads = 1;
  /// Framing limit: one request line, terminator excluded.
  std::size_t max_line_bytes = 1 << 20;
  /// Stop reading from a connection while more than this many response
  /// bytes are queued for it (slow-reader backpressure).
  std::size_t write_high_watermark = 4u << 20;
  /// Stop reading from a connection while more than this many response
  /// slots are queued for it. The byte watermark cannot trip while the
  /// head slot is an incomplete solve (nothing serializes), so this
  /// bounds the slots themselves against a client pipelining requests
  /// behind one slow solve.
  std::size_t max_queued_slots = 4096;
};

/// Aggregate across all connections, for the CLI summary and the tests.
struct EpollServerTotals {
  std::int64_t connections = 0;  ///< accepted over the server's lifetime
  std::int64_t lines = 0;        ///< non-blank request lines consumed
  std::int64_t malformed = 0;    ///< lines answered with an "error"
  std::int64_t overflows = 0;    ///< connections dropped for oversized lines
  bool shutdown_requested = false;
};

class EpollServer {
 public:
  /// The service must outlive the server.
  EpollServer(SolveService& service, EpollServerOptions options = {});
  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  /// Binds 127.0.0.1, listens, and spawns the I/O threads; throws
  /// std::runtime_error on failure. Returns the bound port.
  int start();
  /// Blocks until stop() or a client "shutdown" request; all I/O threads
  /// are joined before returning.
  void serve();
  /// Unblocks serve() from any thread (including a loop thread handling
  /// a shutdown request). Idempotent.
  void stop();

  [[nodiscard]] int port() const noexcept;
  /// Totals so far; exact once serve() returned.
  [[nodiscard]] EpollServerTotals totals() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace calisched

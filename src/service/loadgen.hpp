// Open-loop NDJSON load generator for the solve service's TCP front ends.
//
// "Open loop" means send times come from a precomputed arrival schedule
// (fixed spacing or a Poisson process at a target rate), not from
// response arrival: a slow server does not slow the offered load down, it
// accumulates queueing delay — which is exactly what the latency numbers
// must show. Each request's latency is therefore measured from its
// *scheduled* send time to its response, so server-induced send
// backpressure counts against the server (no coordinated omission). With
// rate 0 every request is scheduled at t0 (a flood): throughput is the
// meaningful number and percentiles mostly measure position in the flood.
//
// One thread drives every connection through a nonblocking epoll loop
// (the generator must stay cheap enough to share a core with the server
// under test): requests are prebuilt `{"id":N,<body>}` lines assigned
// round-robin across connections, responses are framed with the same
// LineFramer the server uses, and the echoed id is checked against the
// per-connection FIFO of in-flight ids — any mismatch is an ordering
// violation, which the serve contract promises never happens.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace calisched {

struct LoadGenOptions {
  /// 127.0.0.1:`port` must already be listening.
  int port = 0;
  std::size_t connections = 1;
  /// Total requests across all connections (assigned round-robin).
  std::int64_t requests = 1000;
  /// Offered load in requests/second across all connections; 0 schedules
  /// everything at t0 (flood — measures capacity, not latency).
  double rate = 0.0;
  enum class Pacing {
    kFixed,    ///< deterministic spacing 1/rate
    kPoisson,  ///< exponential inter-arrivals with mean 1/rate
  };
  Pacing pacing = Pacing::kFixed;
  /// Seeds the Poisson arrival process (ignored for fixed pacing).
  std::uint64_t seed = 1;
  /// JSON members of each request after the injected id, e.g.
  /// `"type":"ping"` or a full solve body. The generator sends
  /// `{"id":N,` + body + `}\n`.
  std::string body = "\"type\":\"ping\"";
  /// Abort-and-report deadline for the whole run; a wedged server must
  /// not wedge the generator.
  std::int64_t timeout_ms = 120000;
};

struct LoadGenReport {
  std::int64_t sent = 0;       ///< request lines handed to the kernel
  std::int64_t received = 0;   ///< response lines parsed
  std::int64_t errors = 0;     ///< responses with type "error"
  std::int64_t rejects = 0;    ///< responses with type "reject"
  /// Responses whose echoed id did not match the oldest in-flight id on
  /// that connection. Always 0 when the ordering contract holds.
  std::int64_t order_violations = 0;
  double elapsed_s = 0.0;      ///< first scheduled send to last response
  double sent_per_s = 0.0;
  double received_per_s = 0.0;
  std::int64_t latency_p50_ns = 0;  ///< scheduled-send to response
  std::int64_t latency_p99_ns = 0;
  std::int64_t latency_p999_ns = 0;
  std::int64_t latency_samples = 0;
  /// Every request got a response before the timeout.
  bool completed = false;
  /// Non-empty when the run failed: setup (socket/connect), or a fatal
  /// mid-run protocol error (response line overflowing the framer).
  std::string error;
};

/// The precomputed arrival schedule: offsets[i] is request i's send time
/// in ns after t0 (request i rides connection i % connections). Poisson
/// pacing draws one independent exponential stream per connection, seeded
/// derive_instance_seed(options.seed, connection) — the same convention
/// the batch runner uses for per-instance seeds — so no connection's
/// arrival process is a correlated slice of another's. Offsets are
/// nondecreasing within a connection but NOT across the global index;
/// senders must iterate in (offset, index) order. Exposed for tests.
[[nodiscard]] std::vector<std::int64_t> build_arrival_offsets(
    const LoadGenOptions& options);

/// Runs one open-loop load session against a listening server. Blocking;
/// returns when every response arrived, the timeout expired, or setup
/// failed (report.error says why).
LoadGenReport run_loadgen(const LoadGenOptions& options);

}  // namespace calisched

// Wire protocol of the persistent solve service: newline-delimited JSON,
// one request object in, one response object out, always in request order.
//
// Request shapes (one per line; `id` is optional and echoed verbatim):
//   {"type":"solve","id":R,"algo":"combined",
//    "instance":{"machines":M,"T":T,"jobs":[[id,release,deadline,proc],...],
//                "caltypes":[[length,cost,delay],...]},
//    "timeout_ms":N,"node_budget":B,"schedule":false}
// "caltypes" is optional: absent or empty means the classic unit model
// (one type of length T, cost 1, no activation delay). "node_budget" is
// optional: a nonzero value caps the node/state count of exact engines
// (exhaustion reports status "limit", never "infeasible"); 0 keeps each
// solver's default.
// "timeout_ms" is optional: absent means no deadline; an explicit 0 is an
// already-expired deadline (the request completes synchronously with
// status "deadline", running nothing — the uniform deadline-0 probe).
//   {"type":"stats","id":R}      counters + latency percentiles snapshot
//   {"type":"ping","id":R}       liveness probe
//   {"type":"pause","id":R}      hold workers (queued requests wait)
//   {"type":"resume","id":R}     release paused workers
//   {"type":"shutdown","id":R}   drain in-flight solves, then exit
//
// Online-arrival session (one per connection, at most one live at a time):
//   {"type":"subscribe","id":R,"algo":"online-edf","machines":M,"T":T,
//    "caltypes":[[length,cost,delay],...]}        -> {"type":"ack","op":"subscribe"}
//   {"type":"arrive","id":R,"time":t,"jobs":[[id,release,deadline,proc],...]}
//       -> {"id":R,"type":"delta","time":t,"calibrations":[[m,start(,type)],...],
//           "jobs":[[id,m,start],...]}
//   {"type":"finalize","id":R,"schedule":false}   -> a "result" response
// The delta response carries everything the scheduler committed in
// (previous arrival time, t]; concatenating the deltas reproduces the
// final schedule exactly. Arrivals run on the reader/loop thread through
// the same ordered writer as every other response, so the delta stream is
// byte-identical across front ends and worker-thread counts.
//
// Response shapes:
//   {"id":R,"type":"result","status":"ok","feasible":true,...}
//   {"id":R,"type":"reject","error":"..."}     bounded queue was full
//   {"id":R,"type":"error","error":"..."}      malformed / unknown request
//   {"id":R,"type":"ack","op":"pause"}         ping/pause/resume/shutdown
//   {"id":R,"type":"stats","stats":{...}}
//
// Every malformed line gets an "error" response, never a crash or a dropped
// line — the parser catches everything and reports the offending field.
// Solve responses contain no timing and no served-from-cache marker, so a
// response stream is byte-identical for any worker-thread count and any
// cache state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "runtime/status.hpp"
#include "trace/json.hpp"

namespace calisched {

enum class RequestType {
  kSolve,
  kStats,
  kPing,
  kPause,
  kResume,
  kShutdown,
  kSubscribe,
  kArrive,
  kFinalize,
};

/// One decoded request line.
struct ServiceRequest {
  RequestType type = RequestType::kSolve;
  JsonValue id;  ///< echoed verbatim; null when the client sent none
  // Solve-only fields (subscribe reuses `algorithm` and the machine-park
  // part of `instance`: machines, T, caltypes — jobs stays empty):
  std::string algorithm = "combined";
  Instance instance;
  /// Per-request deadline. -1 (absent) means none; an explicit 0 is an
  /// already-expired deadline and must complete with status "deadline"
  /// without running the solver.
  std::int64_t timeout_ms = -1;
  std::int64_t node_budget = 0; ///< exact-engine node/state cap; 0 = default
  bool want_schedule = false;   ///< attach the full schedule to the result
  // Arrive-only fields:
  Time arrive_time = 0;
  std::vector<Job> arrivals;
};

/// parse_request outcome: `ok` selects between `request` and `error`;
/// `id` is recovered best-effort either way so error responses can still
/// be correlated by the client.
struct ParsedRequest {
  bool ok = false;
  ServiceRequest request;
  std::string error;
  JsonValue id;
};

/// Decodes one NDJSON line. Never throws: malformed JSON, a missing or
/// unknown "type", and every instance-shape violation come back as
/// `ok == false` with a message naming the offending field.
[[nodiscard]] ParsedRequest parse_request(std::string_view line);

/// The solve payload responses and the cache both carry.
struct SolveOutcome {
  SolveStatus status = SolveStatus::kOk;
  bool feasible = false;
  bool verified = false;
  std::size_t jobs = 0;
  std::size_t calibrations = 0;
  int machines = 0;
  std::int64_t speed = 1;
  /// Total calibration cost under the instance's type table (equals the
  /// calibration count under the unit model).
  std::int64_t total_cost = 0;
  std::string error;
  Schedule schedule;     ///< valid when feasible and the algorithm emits one
  bool rejected = false; ///< bounded queue was full; nothing was run
};

// --- JSON builders (field order is fixed; serialization is deterministic) --
[[nodiscard]] JsonValue instance_to_json(const Instance& instance);
[[nodiscard]] JsonValue schedule_to_json(const Schedule& schedule);

[[nodiscard]] JsonValue make_result_response(const JsonValue& id,
                                             const SolveOutcome& outcome,
                                             bool want_schedule);
[[nodiscard]] JsonValue make_error_response(const JsonValue& id,
                                            std::string_view error);
[[nodiscard]] JsonValue make_reject_response(const JsonValue& id,
                                             std::string_view error);
[[nodiscard]] JsonValue make_ack_response(const JsonValue& id,
                                          std::string_view op);

/// One subscribe-session schedule delta. `unit_model` selects the
/// two-field calibration shape ([machine,start]) over the explicit
/// three-field one ([machine,start,type]), mirroring schedule_to_json.
[[nodiscard]] JsonValue make_delta_response(const JsonValue& id, Time time,
                                            const std::vector<Calibration>& calibrations,
                                            const std::vector<ScheduledJob>& jobs,
                                            bool unit_model);

/// One compact line (no trailing newline).
[[nodiscard]] std::string dump_response(const JsonValue& response);

}  // namespace calisched

// Wire protocol of the persistent solve service: newline-delimited JSON,
// one request object in, one response object out, always in request order.
//
// Request shapes (one per line; `id` is optional and echoed verbatim):
//   {"type":"solve","id":R,"algo":"combined",
//    "instance":{"machines":M,"T":T,"jobs":[[id,release,deadline,proc],...],
//                "caltypes":[[length,cost,delay],...]},
//    "timeout_ms":N,"node_budget":B,"schedule":false}
// "caltypes" is optional: absent or empty means the classic unit model
// (one type of length T, cost 1, no activation delay). "node_budget" is
// optional: a nonzero value caps the node/state count of exact engines
// (exhaustion reports status "limit", never "infeasible"); 0 keeps each
// solver's default.
//   {"type":"stats","id":R}      counters + latency percentiles snapshot
//   {"type":"ping","id":R}       liveness probe
//   {"type":"pause","id":R}      hold workers (queued requests wait)
//   {"type":"resume","id":R}     release paused workers
//   {"type":"shutdown","id":R}   drain in-flight solves, then exit
//
// Response shapes:
//   {"id":R,"type":"result","status":"ok","feasible":true,...}
//   {"id":R,"type":"reject","error":"..."}     bounded queue was full
//   {"id":R,"type":"error","error":"..."}      malformed / unknown request
//   {"id":R,"type":"ack","op":"pause"}         ping/pause/resume/shutdown
//   {"id":R,"type":"stats","stats":{...}}
//
// Every malformed line gets an "error" response, never a crash or a dropped
// line — the parser catches everything and reports the offending field.
// Solve responses contain no timing and no served-from-cache marker, so a
// response stream is byte-identical for any worker-thread count and any
// cache state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "runtime/status.hpp"
#include "trace/json.hpp"

namespace calisched {

enum class RequestType { kSolve, kStats, kPing, kPause, kResume, kShutdown };

/// One decoded request line.
struct ServiceRequest {
  RequestType type = RequestType::kSolve;
  JsonValue id;  ///< echoed verbatim; null when the client sent none
  // Solve-only fields:
  std::string algorithm = "combined";
  Instance instance;
  std::int64_t timeout_ms = 0;  ///< per-request deadline; 0 means none
  std::int64_t node_budget = 0; ///< exact-engine node/state cap; 0 = default
  bool want_schedule = false;   ///< attach the full schedule to the result
};

/// parse_request outcome: `ok` selects between `request` and `error`;
/// `id` is recovered best-effort either way so error responses can still
/// be correlated by the client.
struct ParsedRequest {
  bool ok = false;
  ServiceRequest request;
  std::string error;
  JsonValue id;
};

/// Decodes one NDJSON line. Never throws: malformed JSON, a missing or
/// unknown "type", and every instance-shape violation come back as
/// `ok == false` with a message naming the offending field.
[[nodiscard]] ParsedRequest parse_request(std::string_view line);

/// The solve payload responses and the cache both carry.
struct SolveOutcome {
  SolveStatus status = SolveStatus::kOk;
  bool feasible = false;
  bool verified = false;
  std::size_t jobs = 0;
  std::size_t calibrations = 0;
  int machines = 0;
  std::int64_t speed = 1;
  /// Total calibration cost under the instance's type table (equals the
  /// calibration count under the unit model).
  std::int64_t total_cost = 0;
  std::string error;
  Schedule schedule;     ///< valid when feasible and the algorithm emits one
  bool rejected = false; ///< bounded queue was full; nothing was run
};

// --- JSON builders (field order is fixed; serialization is deterministic) --
[[nodiscard]] JsonValue instance_to_json(const Instance& instance);
[[nodiscard]] JsonValue schedule_to_json(const Schedule& schedule);

[[nodiscard]] JsonValue make_result_response(const JsonValue& id,
                                             const SolveOutcome& outcome,
                                             bool want_schedule);
[[nodiscard]] JsonValue make_error_response(const JsonValue& id,
                                            std::string_view error);
[[nodiscard]] JsonValue make_reject_response(const JsonValue& id,
                                             std::string_view error);
[[nodiscard]] JsonValue make_ack_response(const JsonValue& id,
                                          std::string_view op);

/// One compact line (no trailing newline).
[[nodiscard]] std::string dump_response(const JsonValue& response);

}  // namespace calisched

#include "service/instance_hash.hpp"

#include "util/rng.hpp"

namespace calisched {

namespace {

/// Chains one value into a running splitmix64 state.
std::uint64_t mix(std::uint64_t state, std::uint64_t value) noexcept {
  std::uint64_t chained = state ^ (value + 0x9e3779b97f4a7c15ULL);
  return splitmix64(chained);
}

}  // namespace

std::uint64_t job_hash(const Job& job) noexcept {
  std::uint64_t h = 0x243f6a8885a308d3ULL;  // pi digits; arbitrary non-zero
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(job.id)));
  h = mix(h, static_cast<std::uint64_t>(job.release));
  h = mix(h, static_cast<std::uint64_t>(job.deadline));
  h = mix(h, static_cast<std::uint64_t>(job.proc));
  return h;
}

std::uint64_t canonical_instance_hash(const Instance& instance) noexcept {
  // Order-independent fold: sum and xor of the (already well-diffused)
  // per-job hashes. Keeping both folds makes "two jobs swapped one unit of
  // slack" style near-collisions require simultaneous sum- and xor-
  // cancellation, and the final chained mix separates (sum, xor) pairs
  // from instances whose scalar facts differ.
  std::uint64_t sum = 0;
  std::uint64_t xored = 0;
  for (const Job& job : instance.jobs) {
    const std::uint64_t h = job_hash(job);
    sum += h;
    xored ^= h;
  }
  std::uint64_t state = 0x452821e638d01377ULL;
  state = mix(state, static_cast<std::uint64_t>(instance.machines));
  state = mix(state, static_cast<std::uint64_t>(instance.T));
  // Fold the *effective* calibration model, in table order (type ids are
  // semantic, so the table is ordered, unlike the job set). Hashing the
  // resolved model makes an implicit unit table and an explicit {T, 1, 0}
  // table — which are interchangeable everywhere else — share cache
  // entries, while a changed cost or activation delay separates them.
  const CalibrationModel model = instance.effective_model();
  state = mix(state, static_cast<std::uint64_t>(model.size()));
  for (const CalibrationType& type : model.types) {
    state = mix(state, static_cast<std::uint64_t>(type.length));
    state = mix(state, static_cast<std::uint64_t>(type.cost));
    state = mix(state, static_cast<std::uint64_t>(type.activation_delay));
  }
  state = mix(state, static_cast<std::uint64_t>(instance.jobs.size()));
  state = mix(state, sum);
  state = mix(state, xored);
  return state;
}

}  // namespace calisched

// Canonical instance hashing for the solve service's result cache.
//
// Two Instance values that describe the same problem must map to the same
// 64-bit key even when their job vectors are permuted (clients batch and
// reorder freely), while near-identical instances — one deadline nudged,
// one job dropped, a different machine count — must separate. The hash
// therefore combines an order-independent fold of per-job hashes with the
// scalar instance facts, all through splitmix64 so single-bit input
// changes diffuse across the whole word.
#pragma once

#include <cstdint>

#include "core/instance.hpp"

namespace calisched {

/// 64-bit mix of one job's (id, release, deadline, proc) tuple.
[[nodiscard]] std::uint64_t job_hash(const Job& job) noexcept;

/// Canonical hash of an instance: invariant under any permutation of
/// `instance.jobs`, sensitive to machines, T, the job count, and every
/// job field. Not a cryptographic hash — collisions are possible in
/// principle, which is why the cache stores verified results only (a
/// collision serves a wrong-but-verified schedule for a different
/// instance; with 64 bits and per-job diffusion this is vanishingly
/// unlikely at service cache sizes).
[[nodiscard]] std::uint64_t canonical_instance_hash(
    const Instance& instance) noexcept;

}  // namespace calisched

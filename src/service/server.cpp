#include "service/server.hpp"

#include "service/subscribe.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <deque>
#include <functional>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace calisched {

namespace {

/// FIFO of response thunks. The reader pushes one thunk per request line;
/// the writer thread pops in order, runs the thunk (which may block on a
/// Pending), and writes the line. This is the whole ordering mechanism.
class ResponseQueue {
 public:
  void push(std::function<std::string()> thunk) {
    {
      std::scoped_lock lock(mutex_);
      thunks_.push_back(std::move(thunk));
    }
    cv_.notify_one();
  }

  void close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  void drain(std::ostream& out) {
    for (;;) {
      std::function<std::string()> thunk;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return closed_ || !thunks_.empty(); });
        if (thunks_.empty()) return;
        thunk = std::move(thunks_.front());
        thunks_.pop_front();
      }
      out << thunk() << '\n';
      out.flush();
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<std::string()>> thunks_;
  bool closed_ = false;
};

}  // namespace

JsonValue make_stats_response(const JsonValue& id, const ServiceStats& stats,
                              std::int64_t lines, std::int64_t malformed) {
  JsonValue::Object body;
  body.emplace_back("requests", JsonValue(stats.received));
  body.emplace_back("accepted", JsonValue(stats.accepted));
  body.emplace_back("rejected", JsonValue(stats.rejected));
  body.emplace_back("errors", JsonValue(stats.errors));
  body.emplace_back("completed", JsonValue(stats.completed));
  body.emplace_back("outstanding", JsonValue(stats.outstanding));
  body.emplace_back("cache_hits", JsonValue(stats.cache_hits));
  body.emplace_back("cache_misses", JsonValue(stats.cache_misses));
  body.emplace_back("cache_size", JsonValue(stats.cache_size));
  body.emplace_back("paused", JsonValue(stats.paused));
  body.emplace_back("latency_p50_ns", JsonValue(stats.latency_p50_ns));
  body.emplace_back("latency_p95_ns", JsonValue(stats.latency_p95_ns));
  body.emplace_back("latency_p99_ns", JsonValue(stats.latency_p99_ns));
  body.emplace_back("latency_p999_ns", JsonValue(stats.latency_p999_ns));
  body.emplace_back("latency_samples", JsonValue(stats.latency_samples));
  body.emplace_back("lines", JsonValue(lines));
  body.emplace_back("malformed", JsonValue(malformed));
  JsonValue::Object object;
  object.emplace_back("id", id);
  object.emplace_back("type", JsonValue("stats"));
  object.emplace_back("stats", JsonValue(std::move(body)));
  return JsonValue(std::move(object));
}

namespace {

bool is_blank(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

ServeReport serve_connection(SolveService& service, std::istream& in,
                             std::ostream& out) {
  ServeReport report;
  ResponseQueue queue;
  std::thread writer([&queue, &out] { queue.drain(out); });
  // At most one live subscribe session per connection; it runs entirely
  // on this reader thread, so its responses are ready text by the time
  // they are queued.
  OnlineSession session;

  std::string line;
  while (!report.shutdown_requested && std::getline(in, line)) {
    if (is_blank(line)) continue;
    ++report.lines;
    const ParsedRequest parsed = parse_request(line);
    if (!parsed.ok) {
      ++report.malformed;
      std::string text =
          dump_response(make_error_response(parsed.id, parsed.error));
      queue.push([text] { return text; });
      continue;
    }
    const ServiceRequest& request = parsed.request;
    const JsonValue id = parsed.id;
    switch (request.type) {
      case RequestType::kPing: {
        std::string text = dump_response(make_ack_response(id, "ping"));
        queue.push([text] { return text; });
        break;
      }
      case RequestType::kPause: {
        service.pause();
        std::string text = dump_response(make_ack_response(id, "pause"));
        queue.push([text] { return text; });
        break;
      }
      case RequestType::kResume: {
        service.resume();
        std::string text = dump_response(make_ack_response(id, "resume"));
        queue.push([text] { return text; });
        break;
      }
      case RequestType::kStats: {
        // Counters seen so far are captured at read time; the service
        // snapshot is taken at write time, after every earlier request
        // has completed and been answered.
        const std::int64_t lines_seen = report.lines;
        const std::int64_t malformed_seen = report.malformed;
        queue.push([&service, id, lines_seen, malformed_seen] {
          return dump_response(make_stats_response(
              id, service.stats(), lines_seen, malformed_seen));
        });
        break;
      }
      case RequestType::kShutdown: {
        report.shutdown_requested = true;
        std::string text = dump_response(make_ack_response(id, "shutdown"));
        queue.push([text] { return text; });
        break;
      }
      case RequestType::kSubscribe:
      case RequestType::kArrive:
      case RequestType::kFinalize: {
        std::string text = session.handle(request);
        queue.push([text] { return text; });
        break;
      }
      case RequestType::kSolve: {
        SolveService::PendingPtr pending = service.submit(request);
        const bool want_schedule = request.want_schedule;
        queue.push([pending, id, want_schedule] {
          const SolveOutcome& outcome = pending->wait();
          if (outcome.rejected) {
            return dump_response(make_reject_response(id, outcome.error));
          }
          return dump_response(make_result_response(id, outcome, want_schedule));
        });
        break;
      }
    }
  }

  // An abandoned pause (EOF without resume) must not leave solve thunks —
  // and therefore the writer — blocked forever.
  service.resume();
  queue.close();
  writer.join();
  return report;
}

int run_stdio_server(const AlgorithmRegistry& registry,
                     const ServiceOptions& options, std::istream& in,
                     std::ostream& out, ServeReport* report) {
  SolveService service(registry, options);
  const ServeReport seen = serve_connection(service, in, out);
  service.shutdown(/*drain=*/true);
  if (report != nullptr) *report = seen;
  return 0;
}

// -------------------------------------------------------------- TCP layer --

namespace {

class FdInBuf : public std::streambuf {
 public:
  explicit FdInBuf(int fd) : fd_(fd) { setg(buffer_, buffer_, buffer_); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t count;
    do {
      count = ::read(fd_, buffer_, sizeof buffer_);
    } while (count < 0 && errno == EINTR);
    if (count <= 0) return traits_type::eof();
    setg(buffer_, buffer_, buffer_ + count);
    return traits_type::to_int_type(*gptr());
  }

 private:
  int fd_;
  char buffer_[4096];
};

class FdOutBuf : public std::streambuf {
 public:
  explicit FdOutBuf(int fd) : fd_(fd) {}

 protected:
  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) return 0;
    const char c = traits_type::to_char_type(ch);
    return write_all(&c, 1) ? ch : traits_type::eof();
  }

  std::streamsize xsputn(const char* data, std::streamsize count) override {
    return write_all(data, static_cast<std::size_t>(count)) ? count : 0;
  }

 private:
  bool write_all(const char* data, std::size_t count) {
    while (count > 0) {
      const ssize_t written = ::write(fd_, data, count);
      if (written < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      data += written;
      count -= static_cast<std::size_t>(written);
    }
    return true;
  }

  int fd_;
};

}  // namespace

TcpServer::~TcpServer() { stop(); }

int TcpServer::start(int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (backlog <= 0) backlog = SOMAXCONN;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot listen on 127.0.0.1:" +
                             std::to_string(port));
  }
  socklen_t length = sizeof address;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length);
  port_ = ntohs(address.sin_port);
  listen_fd_ = fd;
  return port_;
}

void TcpServer::serve() {
  std::vector<std::thread> connections;
  for (;;) {
    const int fd = listen_fd_.load(std::memory_order_acquire);
    if (fd < 0) break;
    int client;
    do {
      client = ::accept(fd, nullptr, nullptr);
    } while (client < 0 && errno == EINTR);
    if (client < 0) break;  // stop() shut the listening socket down
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    connections.emplace_back([this, client] {
      FdInBuf in_buffer(client);
      FdOutBuf out_buffer(client);
      std::istream in(&in_buffer);
      std::ostream out(&out_buffer);
      const ServeReport report = serve_connection(*service_, in, out);
      ::shutdown(client, SHUT_RDWR);
      ::close(client);
      if (report.shutdown_requested) stop();
    });
  }
  for (std::thread& connection : connections) connection.join();
}

void TcpServer::stop() {
  // Atomic swap: exactly one caller observes the live fd and closes it.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace calisched

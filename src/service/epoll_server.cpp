#include "service/epoll_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/framing.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/subscribe.hpp"

namespace calisched {

namespace {

/// epoll user-data tags below this are loop-internal; connections count up
/// from it. Tag 0 = listener, 1 = inbox eventfd.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kInboxTag = 1;
constexpr std::uint64_t kFirstConnectionTag = 2;

bool is_blank_line(std::string_view line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

/// Cross-thread mailbox of one loop: completed-solve wakeups and newly
/// accepted connections land here; the eventfd makes epoll_wait return.
/// Held by shared_ptr so a solve completing after its loop died (server
/// torn down mid-solve with the service still draining) pokes a live
/// object or nothing.
struct Inbox {
  Inbox() : event_fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {}
  ~Inbox() {
    if (event_fd >= 0) ::close(event_fd);
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd, &one, sizeof one);
  }

  void post_ready(std::uint64_t connection) {
    {
      std::scoped_lock lock(mutex);
      ready.push_back(connection);
    }
    wake();
  }

  void post_connection(int fd) {
    {
      std::scoped_lock lock(mutex);
      accepted.push_back(fd);
    }
    wake();
  }

  void post_stop() {
    {
      std::scoped_lock lock(mutex);
      stop = true;
    }
    wake();
  }

  int event_fd;
  std::mutex mutex;
  std::vector<std::uint64_t> ready;
  std::vector<int> accepted;
  bool stop = false;
};

/// One ordered response slot. Mirrors the stdio writer-FIFO thunks:
/// kText is a response already rendered, kSolve waits on the Pending,
/// kStats snapshots the service when (and only when) it reaches the head.
struct Slot {
  enum class Kind { kText, kSolve, kStats };
  Kind kind = Kind::kText;
  std::string text;
  SolveService::PendingPtr pending;
  JsonValue id;
  bool want_schedule = false;
  std::int64_t lines_seen = 0;
  std::int64_t malformed_seen = 0;
};

struct Connection {
  Connection(int fd_in, std::uint64_t tag_in, std::size_t max_line_bytes)
      : fd(fd_in), tag(tag_in), framer(max_line_bytes) {}

  int fd;
  std::uint64_t tag;
  LineFramer framer;
  /// The connection's subscribe session. Owned by this connection and
  /// driven only from its loop thread (process_line), so it needs no
  /// locking; responses it produces are ready text by the time they are
  /// queued — exactly like the stdio reader.
  OnlineSession session;
  std::deque<Slot> slots;
  std::string out;
  std::size_t out_pos = 0;
  std::int64_t lines = 0;
  std::int64_t malformed = 0;
  bool stop_reading = false;     ///< saw shutdown / EOF / fatal framing
  bool close_after_flush = false;
  bool saw_shutdown = false;
  bool overflowed = false;
  bool reading_disabled = false; ///< EPOLLIN dropped for backpressure
  bool want_write = false;       ///< EPOLLOUT currently registered
};

}  // namespace

// ------------------------------------------------------------------- Impl --

struct EpollServer::Impl {
  SolveService* service = nullptr;
  EpollServerOptions options;
  int listen_fd = -1;
  int bound_port = 0;
  std::atomic<bool> stopping{false};
  std::atomic<std::uint64_t> next_loop{0};

  std::atomic<std::int64_t> total_connections{0};
  std::atomic<std::int64_t> total_lines{0};
  std::atomic<std::int64_t> total_malformed{0};
  std::atomic<std::int64_t> total_overflows{0};
  std::atomic<bool> shutdown_requested{false};

  struct Loop {
    Impl* impl = nullptr;
    std::size_t index = 0;
    int epoll_fd = -1;
    std::shared_ptr<Inbox> inbox;
    std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns;
    std::uint64_t next_tag = kFirstConnectionTag;
    std::thread thread;

    void run();
    void accept_ready();
    void add_connection(int fd);
    void handle_io(std::uint64_t tag, std::uint32_t events);
    void handle_read(Connection& c);
    bool process_line(Connection& c, std::string_view line);
    /// pump/flush return false when they destroyed the connection — the
    /// caller must not touch `c` afterwards.
    [[nodiscard]] bool pump(Connection& c);
    [[nodiscard]] bool flush(Connection& c);
    void update_interest(Connection& c);
    void destroy(Connection& c);
    void close_all();
  };
  std::vector<std::unique_ptr<Loop>> loops;

  void request_stop();
};

// ---------------------------------------------------------------- lifecycle

EpollServer::EpollServer(SolveService& service, EpollServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->service = &service;
  impl_->options = options;
}

EpollServer::~EpollServer() {
  stop();
  for (auto& loop : impl_->loops) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
}

int EpollServer::port() const noexcept { return impl_->bound_port; }

EpollServerTotals EpollServer::totals() const {
  EpollServerTotals totals;
  totals.connections = impl_->total_connections.load(std::memory_order_relaxed);
  totals.lines = impl_->total_lines.load(std::memory_order_relaxed);
  totals.malformed = impl_->total_malformed.load(std::memory_order_relaxed);
  totals.overflows = impl_->total_overflows.load(std::memory_order_relaxed);
  totals.shutdown_requested =
      impl_->shutdown_requested.load(std::memory_order_relaxed);
  return totals;
}

int EpollServer::start() {
  Impl& impl = *impl_;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<std::uint16_t>(impl.options.port));
  const int backlog =
      impl.options.backlog > 0 ? impl.options.backlog : SOMAXCONN;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot listen on 127.0.0.1:" +
                             std::to_string(impl.options.port));
  }
  socklen_t length = sizeof address;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length);
  impl.bound_port = ntohs(address.sin_port);
  impl.listen_fd = fd;

  const std::size_t threads =
      impl.options.io_threads == 0 ? 1 : impl.options.io_threads;
  impl.loops.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    auto loop = std::make_unique<Impl::Loop>();
    loop->impl = &impl;
    loop->index = i;
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->inbox = std::make_shared<Inbox>();
    if (loop->epoll_fd < 0 || loop->inbox->event_fd < 0) {
      throw std::runtime_error("epoll_create1/eventfd failed");
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = kInboxTag;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->inbox->event_fd, &event);
    if (i == 0) {
      event.events = EPOLLIN;
      event.data.u64 = kListenerTag;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, impl.listen_fd, &event);
    }
    impl.loops.push_back(std::move(loop));
  }
  for (auto& loop : impl.loops) {
    Impl::Loop* raw = loop.get();
    loop->thread = std::thread([raw] { raw->run(); });
  }
  return impl.bound_port;
}

void EpollServer::serve() {
  for (auto& loop : impl_->loops) {
    if (loop->thread.joinable()) loop->thread.join();
  }
}

void EpollServer::stop() { impl_->request_stop(); }

void EpollServer::Impl::request_stop() {
  if (stopping.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& loop : loops) loop->inbox->post_stop();
}

// -------------------------------------------------------------------- Loop

void EpollServer::Impl::Loop::run() {
  std::vector<epoll_event> events(128);
  for (;;) {
    const int count = ::epoll_wait(epoll_fd, events.data(),
                                   static_cast<int>(events.size()), -1);
    if (count < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool stop_now = false;
    for (int i = 0; i < count; ++i) {
      const std::uint64_t tag = events[static_cast<std::size_t>(i)].data.u64;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (tag == kListenerTag) {
        accept_ready();
      } else if (tag == kInboxTag) {
        std::uint64_t drained;
        while (::read(inbox->event_fd, &drained, sizeof drained) > 0) {
        }
        std::vector<std::uint64_t> ready;
        std::vector<int> accepted;
        {
          std::scoped_lock lock(inbox->mutex);
          ready.swap(inbox->ready);
          accepted.swap(inbox->accepted);
          stop_now = stop_now || inbox->stop;
        }
        for (const int fd : accepted) add_connection(fd);
        for (const std::uint64_t conn : ready) {
          const auto it = conns.find(conn);
          if (it != conns.end()) (void)pump(*it->second);
        }
      } else {
        handle_io(tag, mask);
      }
    }
    if (stop_now || impl->stopping.load(std::memory_order_acquire)) break;
  }
  close_all();
}

void EpollServer::Impl::Loop::accept_ready() {
  for (;;) {
    const int client = ::accept4(impl->listen_fd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or the listener is closing down
    }
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    impl->total_connections.fetch_add(1, std::memory_order_relaxed);
    const std::size_t target =
        impl->next_loop.fetch_add(1, std::memory_order_relaxed) %
        impl->loops.size();
    if (target == index) {
      add_connection(client);
    } else {
      impl->loops[target]->inbox->post_connection(client);
    }
  }
}

void EpollServer::Impl::Loop::add_connection(int fd) {
  const std::uint64_t tag = next_tag++;
  auto connection =
      std::make_unique<Connection>(fd, tag, impl->options.max_line_bytes);
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = tag;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
    ::close(fd);
    return;
  }
  conns.emplace(tag, std::move(connection));
}

void EpollServer::Impl::Loop::handle_io(std::uint64_t tag,
                                        std::uint32_t events) {
  const auto it = conns.find(tag);
  if (it == conns.end()) return;
  Connection& c = *it->second;
  // EPOLLHUP/EPOLLERR are reported regardless of the interest mask. Once
  // reading has stopped (EOF seen, or backpressure with nothing currently
  // flushable) no read() will ever consume the hangup, so leaving it
  // unhandled makes epoll_wait return immediately in a busy loop until
  // the last pending solve lands. A hung-up peer can never receive the
  // queued responses anyway — tear the connection down.
  if ((events & EPOLLERR) != 0 ||
      ((events & EPOLLHUP) != 0 && (c.stop_reading || c.reading_disabled))) {
    destroy(c);
    return;
  }
  // EPOLLHUP still delivers through read(): drain whatever the peer sent
  // before it closed, then the 0-byte read runs the EOF path.
  if ((events & (EPOLLIN | EPOLLHUP)) != 0 && !c.reading_disabled &&
      !c.stop_reading) {
    handle_read(c);
    if (conns.find(tag) == conns.end()) return;  // destroyed during read
  }
  if ((events & EPOLLOUT) != 0) {
    // pump, not flush: draining the backlog may release slots that pump()
    // deferred at the write-high-watermark, and no further read or
    // solve-completion wakeup need ever arrive to serialize them.
    (void)pump(c);
  }
}

void EpollServer::Impl::Loop::handle_read(Connection& c) {
  char buffer[65536];
  bool eof = false;
  while (!c.stop_reading) {
    const ssize_t count = ::read(c.fd, buffer, sizeof buffer);
    if (count > 0) {
      const auto result = c.framer.feed(
          std::string_view(buffer, static_cast<std::size_t>(count)),
          [this, &c](std::string_view line) { return process_line(c, line); });
      if (result == LineFramer::FeedResult::kOverflow) {
        // Unrecoverable framing: answer once, flush, close.
        c.overflowed = true;
        impl->total_overflows.fetch_add(1, std::memory_order_relaxed);
        Slot slot;
        slot.text = dump_response(make_error_response(
            JsonValue(),
            "request line exceeds " +
                std::to_string(impl->options.max_line_bytes) + " bytes"));
        c.slots.push_back(std::move(slot));
        c.stop_reading = true;
        c.close_after_flush = true;
        break;
      }
      // Serialize (and usually flush) what this chunk produced before
      // reading more; a slow reader then trips the byte watermark below,
      // and a client pipelining behind an incomplete solve (no bytes
      // serialize, so the byte watermark never trips) trips the slot
      // bound. Either way reading stops until the backlog drains.
      if (!pump(c)) return;
      if (c.out.size() - c.out_pos > impl->options.write_high_watermark ||
          c.slots.size() > impl->options.max_queued_slots) {
        c.reading_disabled = true;
        update_interest(c);
        return;
      }
      continue;
    }
    if (count == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    destroy(c);
    return;
  }
  if (eof && !c.stop_reading) {
    (void)c.framer.finish([this, &c](std::string_view line) {
      return process_line(c, line);
    });
  }
  if (eof) {
    c.stop_reading = true;
    c.close_after_flush = true;
    // Parity with serve_connection: an abandoned pause (EOF without
    // resume) must not leave queued solves — and the whole service —
    // wedged.
    impl->service->resume();
  }
  // A done-reading connection must drop EPOLLIN, or level-triggered
  // readiness (EOF is "readable" forever) spins until the last pending
  // solve lands.
  if (c.stop_reading) update_interest(c);
  (void)pump(c);
}

bool EpollServer::Impl::Loop::process_line(Connection& c,
                                           std::string_view line) {
  if (is_blank_line(line)) return true;
  ++c.lines;
  const ParsedRequest parsed = parse_request(line);
  if (!parsed.ok) {
    ++c.malformed;
    Slot slot;
    slot.text = dump_response(make_error_response(parsed.id, parsed.error));
    c.slots.push_back(std::move(slot));
    return true;
  }
  const ServiceRequest& request = parsed.request;
  switch (request.type) {
    case RequestType::kPing:
    case RequestType::kPause:
    case RequestType::kResume: {
      if (request.type == RequestType::kPause) impl->service->pause();
      if (request.type == RequestType::kResume) impl->service->resume();
      const char* op = request.type == RequestType::kPing     ? "ping"
                       : request.type == RequestType::kPause  ? "pause"
                                                              : "resume";
      Slot slot;
      slot.text = dump_response(make_ack_response(parsed.id, op));
      c.slots.push_back(std::move(slot));
      return true;
    }
    case RequestType::kStats: {
      Slot slot;
      slot.kind = Slot::Kind::kStats;
      slot.id = parsed.id;
      slot.lines_seen = c.lines;
      slot.malformed_seen = c.malformed;
      c.slots.push_back(std::move(slot));
      return true;
    }
    case RequestType::kShutdown: {
      Slot slot;
      slot.text = dump_response(make_ack_response(parsed.id, "shutdown"));
      c.slots.push_back(std::move(slot));
      c.saw_shutdown = true;
      c.stop_reading = true;
      c.close_after_flush = true;
      impl->shutdown_requested.store(true, std::memory_order_relaxed);
      return false;  // lines after shutdown are never consumed (stdio parity)
    }
    case RequestType::kSubscribe:
    case RequestType::kArrive:
    case RequestType::kFinalize: {
      Slot slot;
      slot.text = c.session.handle(request);
      c.slots.push_back(std::move(slot));
      return true;
    }
    case RequestType::kSolve: {
      Slot slot;
      slot.kind = Slot::Kind::kSolve;
      slot.pending = impl->service->submit(request);
      slot.id = parsed.id;
      slot.want_schedule = request.want_schedule;
      const bool ready = slot.pending->ready();
      if (!ready) {
        // Completion hook: poke this loop's inbox. weak_ptr: the solve
        // may outlive the server (service drains after teardown).
        std::weak_ptr<Inbox> weak = inbox;
        const std::uint64_t tag = c.tag;
        slot.pending->on_ready([weak, tag] {
          if (const std::shared_ptr<Inbox> box = weak.lock()) {
            box->post_ready(tag);
          }
        });
      }
      c.slots.push_back(std::move(slot));
      return true;
    }
  }
  return true;
}

bool EpollServer::Impl::Loop::pump(Connection& c) {
  for (;;) {
    while (!c.slots.empty()) {
      // Bound the serialized backlog too: flush what we have first.
      if (c.out.size() - c.out_pos > impl->options.write_high_watermark) break;
      Slot& slot = c.slots.front();
      if (slot.kind == Slot::Kind::kSolve && !slot.pending->ready()) break;
      switch (slot.kind) {
        case Slot::Kind::kText:
          c.out += slot.text;
          break;
        case Slot::Kind::kSolve: {
          const SolveOutcome& outcome = slot.pending->outcome();
          c.out +=
              outcome.rejected
                  ? dump_response(make_reject_response(slot.id, outcome.error))
                  : dump_response(make_result_response(slot.id, outcome,
                                                       slot.want_schedule));
          break;
        }
        case Slot::Kind::kStats:
          // Head of the FIFO: every earlier response has been serialized,
          // i.e. every earlier request completed — the same snapshot point
          // as the stdio writer thread.
          c.out += dump_response(make_stats_response(slot.id,
                                                     impl->service->stats(),
                                                     slot.lines_seen,
                                                     slot.malformed_seen));
          break;
      }
      c.out += '\n';
      c.slots.pop_front();
    }
    if (!flush(c)) return false;
    // flush() survived, so `c` is alive. If it fully drained a backlog
    // that broke the serialization loop at the watermark, the remaining
    // slots have no other wakeup (no read, no solve completion may ever
    // come) — go around again. Exit only when no progress is possible:
    // slots empty, head solve still pending, or the watermark still
    // tripped (a blocked write; EPOLLOUT re-pumps).
    if (c.slots.empty()) return true;
    const Slot& head = c.slots.front();
    if (head.kind == Slot::Kind::kSolve && !head.pending->ready()) return true;
    if (c.out.size() - c.out_pos > impl->options.write_high_watermark) {
      return true;
    }
  }
}

bool EpollServer::Impl::Loop::flush(Connection& c) {
  while (c.out_pos < c.out.size()) {
    // MSG_NOSIGNAL: a client that vanished mid-solve must surface as
    // EPIPE here, not as a process-killing SIGPIPE.
    const ssize_t written = ::send(c.fd, c.out.data() + c.out_pos,
                                   c.out.size() - c.out_pos, MSG_NOSIGNAL);
    if (written > 0) {
      c.out_pos += static_cast<std::size_t>(written);
      continue;
    }
    if (written < 0 && errno == EINTR) continue;
    if (written < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.want_write) {
        c.want_write = true;
        update_interest(c);
      }
      return true;
    }
    destroy(c);  // EPIPE/ECONNRESET: the peer is gone
    return false;
  }
  c.out.clear();
  c.out_pos = 0;
  if (c.want_write) {
    c.want_write = false;
    update_interest(c);
  }
  if (c.reading_disabled && !c.stop_reading &&
      c.slots.size() <= impl->options.max_queued_slots) {
    c.reading_disabled = false;
    update_interest(c);  // level-triggered: pending bytes re-fire EPOLLIN
  }
  if (c.close_after_flush && c.slots.empty()) {
    const bool shutdown_server = c.saw_shutdown;
    destroy(c);
    if (shutdown_server) impl->request_stop();
    return false;
  }
  return true;
}

void EpollServer::Impl::Loop::update_interest(Connection& c) {
  epoll_event event{};
  event.events = 0;
  if (!c.reading_disabled && !c.stop_reading) event.events |= EPOLLIN;
  if (c.want_write) event.events |= EPOLLOUT;
  event.data.u64 = c.tag;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &event);
}

void EpollServer::Impl::Loop::destroy(Connection& c) {
  // Abandoned-pause parity with serve_connection, on *every* teardown
  // path — clean EOF resumed already, but an abrupt one (RST/EPOLLERR,
  // EPOLLHUP, EPIPE mid-flush) must not leave the service wedged either.
  // Idempotent, and any disconnect releasing a pause is the established
  // cross-front-end semantic.
  impl->service->resume();
  impl->total_lines.fetch_add(c.lines, std::memory_order_relaxed);
  impl->total_malformed.fetch_add(c.malformed, std::memory_order_relaxed);
  ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
  ::shutdown(c.fd, SHUT_RDWR);
  ::close(c.fd);
  conns.erase(c.tag);  // invalidates c
}

void EpollServer::Impl::Loop::close_all() {
  // Leftover inbox fds (accepted but never registered) and live
  // connections are closed; queued solves keep running in the service —
  // their completion hooks hit a dead (weak) inbox and no-op.
  std::vector<int> accepted;
  {
    std::scoped_lock lock(inbox->mutex);
    accepted.swap(inbox->accepted);
  }
  for (const int fd : accepted) ::close(fd);
  while (!conns.empty()) destroy(*conns.begin()->second);
  ::close(epoll_fd);
  epoll_fd = -1;
}

}  // namespace calisched

// Sharded LRU result cache: N independently-locked LruCache shards, the
// shard picked by a prefix (top bits) of the permutation-invariant
// canonical instance hash.
//
// Why sharding: the service used to guard one LruCache with the same
// mutex that ordered admission and the counters, so every concurrent
// connection serialized on one lock even when all traffic was cache hits.
// Each shard owns its own mutex and its own recency list; two requests
// whose instance hashes differ in the top bits never contend. Recency is
// therefore per-shard — the capacity contract becomes "at most
// ceil(capacity / shards) entries per shard", which callers that pin
// exact global LRU behavior (deterministic eviction tests, benches that
// count hits against a sized working set) preserve by configuring one
// shard.
//
// The hash is passed in alongside the string key rather than re-derived:
// the service already computes the canonical instance hash to build the
// key, and the shard index must come from the *instance* hash (stable
// under job permutation), not from a hash of the composed key string.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "service/lru_cache.hpp"

namespace calisched {

template <typename Key, typename Value>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly (rounded up)
  /// across `shards`; capacity 0 disables caching entirely. A shard count
  /// of 0 or 1 degenerates to one LruCache behind one mutex — byte-for-
  /// byte the pre-sharding semantics.
  ShardedLruCache(std::size_t capacity, std::size_t shards)
      : capacity_(capacity) {
    if (shards == 0) shards = 1;
    const std::size_t per_shard =
        capacity == 0 ? 0 : (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Which shard a canonical hash lands in (top-bit prefix, modulo the
  /// shard count so any count works, not only powers of two). Exposed so
  /// tests can pin the prefix routing.
  [[nodiscard]] std::size_t shard_index(std::uint64_t hash) const noexcept {
    return static_cast<std::size_t>(hash >> 48) % shards_.size();
  }

  /// Copies the cached value out under the shard lock (promoting the
  /// entry), or returns false on a miss. A copy, not a pointer: the
  /// pointer-returning LruCache::get contract only holds while the one
  /// service mutex stayed locked; with per-shard locks a stable reference
  /// would race the next put.
  [[nodiscard]] bool get(std::uint64_t hash, const Key& key, Value* out) {
    Shard& shard = *shards_[shard_index(hash)];
    std::scoped_lock lock(shard.mutex);
    if (const Value* found = shard.cache.get(key)) {
      *out = *found;
      return true;
    }
    return false;
  }

  void put(std::uint64_t hash, const Key& key, Value value) {
    if (capacity_ == 0) return;
    Shard& shard = *shards_[shard_index(hash)];
    std::scoped_lock lock(shard.mutex);
    shard.cache.put(key, std::move(value));
  }

  /// Total entries across shards. Each shard is locked in turn, so the
  /// sum is a consistent snapshot only once the service has quiesced —
  /// exactly when the stats contracts sample it.
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      std::scoped_lock lock(shard->mutex);
      total += shard->cache.size();
    }
    return total;
  }

 private:
  struct Shard {
    explicit Shard(std::size_t per_shard) : cache(per_shard) {}
    mutable std::mutex mutex;
    LruCache<Key, Value> cache;
  };

  std::size_t capacity_;
  /// unique_ptr per shard: the mutexes must not move when the vector is
  /// built, and padding each shard to its own allocation keeps two hot
  /// shard locks off one cache line.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace calisched

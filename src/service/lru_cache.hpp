// A small intrusive-list LRU map used by the solve service's result cache.
//
// Deliberately minimal: fixed capacity decided at construction, most-
// recently-used entries at the front, O(1) get/put through an index map.
// Not internally synchronized — the service guards it with the same mutex
// that orders its counters, so hit/miss accounting and recency updates
// stay consistent with each other.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

namespace calisched {

template <typename Key, typename Value>
class LruCache {
 public:
  /// Capacity 0 disables the cache entirely (every get misses, put is a
  /// no-op) — the service maps `--cache-capacity=0` onto this.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Pointer to the cached value (promoted to most-recently-used), or
  /// nullptr on a miss. The pointer stays valid until the next put().
  [[nodiscard]] const Value* get(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites; the entry becomes most-recently-used and the
  /// least-recently-used entry is evicted when over capacity.
  void put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    index_.emplace(key, entries_.begin());
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
  }

  /// Keys in recency order, most recent first (tests pin eviction order
  /// through this).
  [[nodiscard]] std::vector<Key> keys_mru_first() const {
    std::vector<Key> keys;
    keys.reserve(entries_.size());
    for (const auto& [key, _] : entries_) keys.push_back(key);
    return keys;
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> entries_;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      index_;
};

}  // namespace calisched

#include "report/stats.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "trace/trace.hpp"

namespace calisched {

void record_stats(const ScheduleStats& stats, TraceContext* trace) {
  if (!trace) return;
  trace->set("stats.calibrations", static_cast<std::int64_t>(stats.calibrations));
  trace->set("stats.machines_used", stats.machines_used);
  trace->set("stats.calibrated_ticks", stats.calibrated_ticks);
  trace->set("stats.busy_ticks", stats.busy_ticks);
  trace->set_value("stats.utilization", stats.utilization);
  trace->set("stats.span_ticks", stats.span_ticks);
  trace->set("stats.max_calibrations_per_machine",
             static_cast<std::int64_t>(stats.max_calibrations_per_machine));
}

ScheduleStats compute_stats(const Instance& instance, const Schedule& schedule) {
  ScheduleStats stats;
  stats.calibrations = schedule.num_calibrations();
  stats.machines_used = schedule.machines_used();
  // Usable (availability-window) ticks per calibration; under the unit
  // model every window is exactly T * denominator, as before.
  for (const Calibration& cal : schedule.calibrations) {
    stats.calibrated_ticks += schedule.available_end_ticks(cal) -
                              schedule.available_start_ticks(cal);
  }
  for (const ScheduledJob& sj : schedule.jobs) {
    stats.busy_ticks +=
        schedule.job_duration_ticks(instance.job_by_id(sj.job).proc);
  }
  if (stats.calibrated_ticks > 0) {
    stats.utilization = static_cast<double>(stats.busy_ticks) /
                        static_cast<double>(stats.calibrated_ticks);
  }
  if (!schedule.calibrations.empty()) {
    Time lo = std::numeric_limits<Time>::max();
    Time hi = std::numeric_limits<Time>::min();
    std::map<int, std::size_t> per_machine;
    for (const Calibration& cal : schedule.calibrations) {
      lo = std::min(lo, cal.start);
      hi = std::max(hi, schedule.occupied_end_ticks(cal));
      ++per_machine[cal.machine];
    }
    stats.span_ticks = hi - lo;
    for (const auto& [machine, count] : per_machine) {
      stats.max_calibrations_per_machine =
          std::max(stats.max_calibrations_per_machine, count);
    }
  }
  return stats;
}

}  // namespace calisched

#include "report/ascii_gantt.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/arith.hpp"

namespace calisched {
namespace {

/// Maps a time to a column index under scale (columns of `scale` ticks).
int column(Time t, Time origin, Time scale) {
  return static_cast<int>((t - origin) / scale);
}

char job_glyph(JobId id) {
  return static_cast<char>('0' + (id % 10));
}

}  // namespace

std::string render_windows(const Instance& instance, const RenderOptions& options) {
  if (instance.empty()) return "(no jobs)\n";
  const Time origin = instance.min_release();
  const Time end = instance.max_deadline();
  const Time span = std::max<Time>(1, end - origin);
  const Time scale = std::max<Time>(1, ceil_div(span, options.max_width));

  std::ostringstream out;
  out << "time " << origin << " .. " << end;
  if (scale > 1) out << "  (1 column = " << scale << " time units)";
  out << '\n';
  for (const Job& job : instance.jobs) {
    std::string line(static_cast<std::size_t>(span / scale) + 2, ' ');
    const int a = column(job.release, origin, scale);
    const int b = std::max(a + 1, column(job.deadline, origin, scale));
    for (int c = a; c <= b && c < static_cast<int>(line.size()); ++c) {
      line[static_cast<std::size_t>(c)] = '-';
    }
    line[static_cast<std::size_t>(a)] = '|';
    if (b < static_cast<int>(line.size())) {
      line[static_cast<std::size_t>(b)] = '|';
    }
    out << "job " << job.id << " (p=" << job.proc << "): " << line << '\n';
  }
  return out.str();
}

std::string render_schedule(const Instance& instance, const Schedule& schedule,
                            const RenderOptions& options) {
  std::ostringstream out;
  if (schedule.calibrations.empty() && schedule.jobs.empty()) {
    return "(empty schedule)\n";
  }
  // Determine span in ticks (full machine occupancy, delay included).
  Time lo = std::numeric_limits<Time>::max();
  Time hi = std::numeric_limits<Time>::min();
  for (const Calibration& cal : schedule.calibrations) {
    lo = std::min(lo, cal.start);
    hi = std::max(hi, schedule.occupied_end_ticks(cal));
  }
  for (const ScheduledJob& sj : schedule.jobs) {
    lo = std::min(lo, sj.start);
    hi = std::max(hi, sj.start +
                          schedule.job_duration_ticks(
                              instance.job_by_id(sj.job).proc));
  }
  const Time span = std::max<Time>(1, hi - lo);
  const Time scale = std::max<Time>(1, ceil_div(span, options.max_width));
  out << "ticks " << lo << " .. " << hi;
  if (schedule.time_denominator != 1) {
    out << "  (" << schedule.time_denominator << " ticks per time unit, speed "
        << schedule.speed << ")";
  }
  if (scale > 1) out << "  (1 column = " << scale << " ticks)";
  out << '\n';

  const auto width = static_cast<std::size_t>(span / scale) + 1;
  for (int machine = 0; machine < schedule.machines; ++machine) {
    std::string cal_row(width, ' ');
    std::string job_row(width, ' ');
    bool machine_used = false;
    for (const Calibration& cal : schedule.calibrations) {
      if (cal.machine != machine) continue;
      machine_used = true;
      // '~' marks the activation warm-up (absent under the unit model),
      // '=' the usable availability window.
      const int a = column(cal.start, lo, scale);
      const int usable = column(schedule.available_start_ticks(cal), lo, scale);
      const int b = column(schedule.occupied_end_ticks(cal), lo, scale);
      for (int c = a; c < b && c < static_cast<int>(width); ++c) {
        cal_row[static_cast<std::size_t>(c)] = c < usable ? '~' : '=';
      }
      cal_row[static_cast<std::size_t>(a)] = '[';
    }
    for (const ScheduledJob& sj : schedule.jobs) {
      if (sj.machine != machine) continue;
      machine_used = true;
      const Time duration =
          schedule.job_duration_ticks(instance.job_by_id(sj.job).proc);
      const int a = column(sj.start, lo, scale);
      const int b = std::max(a + 1, column(sj.start + duration, lo, scale));
      for (int c = a; c < b && c < static_cast<int>(width); ++c) {
        job_row[static_cast<std::size_t>(c)] = job_glyph(sj.job);
      }
    }
    if (!machine_used) continue;  // keep the rendering compact
    out << "m" << machine << " cal : " << cal_row << '\n';
    out << "m" << machine << " jobs: " << job_row << '\n';
  }
  return out.str();
}

}  // namespace calisched

// ASCII rendering of instances and schedules, used to regenerate the
// paper's illustrative figures (Figures 1-3) from live algorithm output.
#pragma once

#include <string>

#include "core/schedule.hpp"

namespace calisched {

struct RenderOptions {
  int max_width = 100;  ///< maximum number of time columns
};

/// Job windows, one line per job (Figure 1(A) style):
///   job  3:        |-----------------|
[[nodiscard]] std::string render_windows(const Instance& instance,
                                         const RenderOptions& options = {});

/// Per-machine calibration and job rows (Figure 1(B)/(C) style):
///   m0 cal : [==========)[==========)
///   m0 jobs: 111.2222.33 444.555.66.77
/// Job cells show the job id's last digit; '.' is calibrated idle time.
/// Tick-denominated schedules are rendered in ticks with a scale note.
[[nodiscard]] std::string render_schedule(const Instance& instance,
                                          const Schedule& schedule,
                                          const RenderOptions& options = {});

}  // namespace calisched

// Summary statistics of a schedule, used by examples, benches, and the CLI.
#pragma once

#include "core/schedule.hpp"

namespace calisched {

struct ScheduleStats {
  std::size_t calibrations = 0;
  int machines_used = 0;
  Time calibrated_ticks = 0;   ///< sum over calibrations of T*D (overlap not merged)
  Time busy_ticks = 0;         ///< sum over jobs of p*D/s
  double utilization = 0.0;    ///< busy / calibrated (0 when no calibrations)
  Time span_ticks = 0;         ///< last calibration end - first calibration start
  std::size_t max_calibrations_per_machine = 0;
};

[[nodiscard]] ScheduleStats compute_stats(const Instance& instance,
                                          const Schedule& schedule);

class TraceContext;

/// Records every ScheduleStats field into `trace` under "stats.*" counters
/// ("stats.utilization" as a value). No-op when `trace` is null.
void record_stats(const ScheduleStats& stats, TraceContext* trace);

}  // namespace calisched

#include "baselines/gap_min.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace calisched {
namespace {

/// Exact feasibility of unit jobs into the given sorted slot times:
/// walk slots in time order, at each slot run the earliest-deadline
/// released-and-unscheduled job (classic exchange argument).
bool match_slots(const Instance& instance, const std::vector<Time>& slots,
                 std::vector<ScheduledJob>* placed) {
  std::vector<bool> done(instance.size(), false);
  std::size_t remaining = instance.size();
  if (placed) placed->clear();
  for (const Time slot : slots) {
    std::size_t chosen = instance.size();
    for (std::size_t j = 0; j < instance.size(); ++j) {
      if (done[j]) continue;
      const Job& job = instance.jobs[j];
      if (job.release > slot || slot + 1 > job.deadline) continue;
      if (chosen == instance.size() ||
          job.deadline < instance.jobs[chosen].deadline) {
        chosen = j;
      }
    }
    if (chosen == instance.size()) return false;  // an empty slot is waste
    done[chosen] = true;
    if (placed) placed->push_back({instance.jobs[chosen].id, 0, slot});
    --remaining;
  }
  return remaining == 0;
}

class BlockSearch {
 public:
  BlockSearch(const Instance& instance, const GapMinOptions& options)
      : instance_(instance),
        options_(options),
        poller_(options.limits, /*stride=*/1024) {
    // Candidate block start times: any integer in [min_r, max_d).
    for (Time t = instance.min_release(); t < instance.max_deadline(); ++t) {
      grid_.push_back(t);
    }
  }

  GapMinResult run() {
    GapMinResult result;
    const auto n = static_cast<Time>(instance_.size());
    for (int k = 1; k <= options_.max_blocks && k <= static_cast<int>(n); ++k) {
      blocks_.clear();
      if (place_blocks(k, n, 0)) {
        result.solved = true;
        result.feasible = true;
        result.busy_blocks = static_cast<std::size_t>(k);
        result.slots = best_slots_;
        result.nodes = nodes_;
        return result;
      }
      if (budget_hit_) {
        result.nodes = nodes_;
        result.status = poller_.status() != SolveStatus::kOk
                            ? poller_.status()
                            : SolveStatus::kLimitExceeded;
        return result;
      }
    }
    result.solved = true;  // infeasible within max_blocks
    result.status = SolveStatus::kInfeasible;
    result.nodes = nodes_;
    return result;
  }

 private:
  /// Chooses `remaining_blocks` disjoint blocks (>= 1 idle slot apart)
  /// with total length `remaining_len`, starting at grid index >= from.
  bool place_blocks(int remaining_blocks, Time remaining_len, std::size_t from) {
    if (++nodes_ > options_.node_budget ||
        poller_.poll() != SolveStatus::kOk) {
      budget_hit_ = true;  // either way: abandon the whole search
      return false;
    }
    if (remaining_blocks == 0) {
      if (remaining_len != 0) return false;
      std::vector<Time> slots;
      for (const auto& [start, length] : blocks_) {
        for (Time i = 0; i < length; ++i) slots.push_back(start + i);
      }
      return match_slots(instance_, slots, &best_slots_);
    }
    // Each remaining block needs length >= 1 plus a gap.
    for (std::size_t g = from; g < grid_.size(); ++g) {
      const Time start = grid_[g];
      const Time max_len =
          remaining_len - static_cast<Time>(remaining_blocks - 1);
      for (Time length = 1; length <= max_len; ++length) {
        if (start + length > instance_.max_deadline()) break;
        blocks_.emplace_back(start, length);
        // Next block starts at least one idle slot later.
        const Time next_min = start + length + 1;
        const auto next_it =
            std::lower_bound(grid_.begin(), grid_.end(), next_min);
        if (place_blocks(remaining_blocks - 1, remaining_len - length,
                         static_cast<std::size_t>(next_it - grid_.begin()))) {
          return true;
        }
        blocks_.pop_back();
        if (budget_hit_) return false;
      }
    }
    return false;
  }

  const Instance& instance_;
  GapMinOptions options_;
  LimitPoller poller_;
  std::vector<Time> grid_;
  std::vector<std::pair<Time, Time>> blocks_;  // (start, length)
  std::vector<ScheduledJob> best_slots_;
  std::int64_t nodes_ = 0;
  bool budget_hit_ = false;
};

}  // namespace

GapMinResult solve_min_gaps_unit(const Instance& instance,
                                 const GapMinOptions& options) {
  GapMinResult empty_result;
  if (instance.empty()) {
    empty_result.solved = true;
    empty_result.feasible = true;
    return empty_result;
  }
  for (const Job& job : instance.jobs) {
    assert(job.proc == 1 && "gap minimizer requires unit jobs");
    (void)job;
  }
  BlockSearch search(instance, options);
  return search.run();
}

}  // namespace calisched

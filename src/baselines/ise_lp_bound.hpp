// Certified LP lower bound on the number of calibrations for ISE.
//
// The TISE LP of Section 3 with two changes makes it a valid relaxation of
// the *untrimmed* ISE problem on the instance's own m machines:
//   * assignment variables X_{j,t} exist whenever job j merely *fits* in a
//     calibration at t (max(t, r_j) + p_j <= min(t+T, d_j)), instead of
//     requiring the calibration to nest in the window;
//   * the sliding-window capacity uses m, not m' = 3m.
// Grid choice matters for certification: Lemma 3's grid {r_j + kT} is
// proven only for the *trimmed* problem (a calibration pinned by a
// mid-calibration release can be forced off that grid in plain ISE), so
// this LP runs over the full integer grid [min_r - T + 1, max_d), the
// same completeness argument as baselines/exact_ise.hpp. Any feasible ISE
// schedule then maps onto a feasible LP point, so the optimum
// lower-bounds the true minimum calibration count. Stronger than the
// combinatorial bounds on instances where window interaction, not raw
// work, is binding.
#pragma once

#include <optional>

#include "core/instance.hpp"
#include "lp/simplex.hpp"

namespace calisched {

/// LP value (fractional calibrations) or nullopt when the solver fails
/// (does not happen at library scales). Integer bound: ceil(value).
/// `options` selects the simplex engine and tolerances.
[[nodiscard]] std::optional<double> ise_lp_bound(
    const Instance& instance, const SimplexOptions& options = {});

/// max(combinatorial calibration_lower_bound, ceil(ise_lp_bound)); skips
/// the LP when the integer grid exceeds `max_points` points.
[[nodiscard]] std::int64_t ise_certified_bound(
    const Instance& instance, std::size_t max_points = 400,
    const SimplexOptions& options = {});

}  // namespace calisched

// Exact gap (idle-period) minimization for unit jobs on one machine —
// the related problem of Section 5 (Baptiste'06; Demaine et al.'07).
//
// The paper contrasts ISE with power-aware gap minimization: both reward
// clustering work, but a busy block longer than T needs several
// calibrations while still being a single gap-free run, and a calibration
// can span idle time at no extra cost while a gap-minimizer counts it.
// This solver computes the exact minimum number of busy blocks (gaps + 1
// when non-empty) for tiny unit-job instances so `bench_related` can
// measure the divergence against the exact calibration optimum.
//
// Method: enumerate K = 1, 2, ... busy blocks (disjoint integer intervals
// separated by at least one idle slot, total length n), and test whether
// the jobs can be matched to the blocks' slots — for unit jobs, greedy
// earliest-deadline-first over slots in time order is an exact matching
// test. Exponential in K; intended for tiny instances only.
#pragma once

#include <cstdint>

#include "core/schedule.hpp"
#include "runtime/limits.hpp"
#include "runtime/status.hpp"

namespace calisched {

struct GapMinResult {
  bool solved = false;    ///< search completed within the node budget
  bool feasible = false;  ///< a feasible schedule exists
  /// kOk (optimum found), kInfeasible (exhausted max_blocks),
  /// kLimitExceeded (node budget), kDeadlineExceeded / kCancelled.
  SolveStatus status = SolveStatus::kOk;
  std::size_t busy_blocks = 0;  ///< minimal number of maximal busy runs
  /// One scheduled slot per job when feasible (machine 0).
  std::vector<ScheduledJob> slots;
  std::int64_t nodes = 0;
};

struct GapMinOptions {
  std::int64_t node_budget = 2'000'000;
  int max_blocks = 8;
  /// Deadline + cancellation, polled inside the block search.
  RunLimits limits;
};

/// Requires unit processing times; one machine. T is irrelevant to gaps.
[[nodiscard]] GapMinResult solve_min_gaps_unit(const Instance& instance,
                                               const GapMinOptions& options = {});

}  // namespace calisched

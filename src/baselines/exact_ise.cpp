#include "baselines/exact_ise.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>
#include <vector>

#include "baselines/baseline.hpp"
#include "baselines/calibration_bounds.hpp"
#include "exact/state_space.hpp"
#include "mm/mm.hpp"
#include "verify/verify.hpp"

namespace calisched {
namespace {

/// One tentative calibration during the search.
struct SearchCalibration {
  Time start = 0;
  Time load = 0;                        ///< total processing assigned
  std::vector<const Job*> assigned;
};

class ExactSearch {
 public:
  ExactSearch(const Instance& instance, const ExactIseOptions& options)
      : instance_(instance),
        options_(options),
        poller_(options.limits, /*stride=*/1024) {
    // Candidate integer start times: a calibration is useful only if at
    // least one job can run inside it.
    const Time lo = instance.min_release() - instance.T + 1;
    const Time hi = instance.max_deadline();  // exclusive
    for (Time t = lo; t < hi; ++t) {
      if (std::any_of(instance.jobs.begin(), instance.jobs.end(),
                      [&](const Job& job) { return job_fits(job, t); })) {
        grid_.push_back(t);
      }
    }
    jobs_by_deadline_.reserve(instance.size());
    for (const Job& job : instance.jobs) jobs_by_deadline_.push_back(&job);
    std::sort(jobs_by_deadline_.begin(), jobs_by_deadline_.end(),
              [](const Job* a, const Job* b) {
                return a->deadline != b->deadline ? a->deadline < b->deadline
                                                  : a->id < b->id;
              });
  }

  ExactIseResult run() {
    ExactIseResult result;
    if (instance_.empty()) {
      result.solved = true;
      result.feasible = true;
      result.schedule = Schedule::empty_like(instance_, instance_.machines);
      return result;
    }
    const auto lower =
        static_cast<int>(calibration_lower_bound(instance_));
    for (int k = std::max(1, lower); k <= options_.max_calibrations; ++k) {
      calibrations_.clear();
      if (choose_times(k, 0)) {
        result.solved = true;
        result.feasible = true;
        result.optimal_calibrations = static_cast<std::size_t>(k);
        result.schedule = build_schedule();
        result.nodes = nodes_;
        return result;
      }
      if (budget_hit_) {
        result.nodes = nodes_;
        if (poller_.status() != SolveStatus::kOk) {
          result.status = poller_.status();
        } else if (sub_status_ != SolveStatus::kOk) {
          result.status = sub_status_;  // a packing sub-search was stopped
        } else {
          result.status = SolveStatus::kLimitExceeded;
        }
        return result;  // solved = false
      }
    }
    result.solved = true;
    result.status = SolveStatus::kInfeasible;
    result.nodes = nodes_;
    return result;  // feasible = false within the calibration cap
  }

 private:
  [[nodiscard]] bool job_fits(const Job& job, Time cal_start) const {
    if (options_.require_tise) {
      return job.release <= cal_start &&
             cal_start + instance_.T <= job.deadline;
    }
    const Time earliest = std::max(cal_start, job.release);
    const Time latest = std::min(cal_start + instance_.T, job.deadline);
    return earliest + job.proc <= latest;
  }

  /// Picks `remaining` more calibration start times, nondecreasing, from
  /// grid_[from..], keeping the sliding overlap within the machine count.
  bool choose_times(int remaining, std::size_t from) {
    if (++nodes_ > options_.node_budget ||
        poller_.poll() != SolveStatus::kOk) {
      budget_hit_ = true;  // either way: abandon the whole search
      return false;
    }
    if (remaining == 0) return pack_jobs(0);
    for (std::size_t g = from; g < grid_.size(); ++g) {
      const Time t = grid_[g];
      // Overlap check: calibrations already chosen with start > t - T all
      // intersect [t, t+T)'s left edge region together with the new one.
      int overlap = 1;
      for (const SearchCalibration& cal : calibrations_) {
        if (cal.start > t - instance_.T) ++overlap;
      }
      if (overlap > instance_.machines) continue;
      calibrations_.push_back({t, 0, {}});
      if (choose_times(remaining - 1, g)) return true;
      calibrations_.pop_back();
      if (budget_hit_) return false;
    }
    return false;
  }

  /// Assigns jobs_by_deadline_[index..] to the chosen calibrations.
  bool pack_jobs(std::size_t index) {
    if (++nodes_ > options_.node_budget ||
        poller_.poll() != SolveStatus::kOk) {
      budget_hit_ = true;  // either way: abandon the whole search
      return false;
    }
    if (index == jobs_by_deadline_.size()) return true;
    const Job& job = *jobs_by_deadline_[index];
    Time last_tried_start = std::numeric_limits<Time>::min();
    for (SearchCalibration& cal : calibrations_) {
      // Symmetry break: identical empty twins behave identically.
      if (cal.start == last_tried_start && cal.assigned.empty()) continue;
      if (!job_fits(job, cal.start)) continue;
      if (cal.load + job.proc > instance_.T) continue;
      cal.assigned.push_back(&job);
      cal.load += job.proc;
      if (calibration_packable(cal) && pack_jobs(index + 1)) return true;
      cal.assigned.pop_back();
      cal.load -= job.proc;
      if (budget_hit_) return false;
      if (cal.assigned.empty()) last_tried_start = cal.start;
    }
    return false;
  }

  /// Exact single-machine feasibility of one calibration's job set with
  /// windows clipped to the calibration interval. A *stopped* sub-search
  /// (its node budget or the shared RunLimits) must abandon the whole
  /// search with the stop reason — treating it as "not packable" would
  /// report a budget artifact as an infeasibility verdict.
  [[nodiscard]] bool calibration_packable(const SearchCalibration& cal) {
    Instance clipped;
    clipped.machines = 1;
    clipped.T = instance_.T;
    for (const Job* job : cal.assigned) {
      Job clip = *job;
      clip.release = std::max(job->release, cal.start);
      clip.deadline = std::min(job->deadline, cal.start + instance_.T);
      clipped.jobs.push_back(clip);
    }
    const MMFeasibility packed =
        exact_mm_feasibility(clipped, 1, ExactEngine::kBranchBound,
                             /*node_budget=*/100'000, options_.limits);
    if (packed.status != SolveStatus::kOk) {
      budget_hit_ = true;
      sub_status_ = packed.status;
      return false;
    }
    return packed.feasible;
  }

  /// Rebuilds the full schedule from the final packing: greedy interval
  /// coloring for machines, then the per-calibration 1-machine schedule.
  [[nodiscard]] Schedule build_schedule() const {
    Schedule schedule = Schedule::empty_like(instance_, instance_.machines);
    std::vector<const SearchCalibration*> order;
    for (const SearchCalibration& cal : calibrations_) order.push_back(&cal);
    std::sort(order.begin(), order.end(),
              [](const SearchCalibration* a, const SearchCalibration* b) {
                return a->start < b->start;
              });
    std::vector<Time> machine_free(static_cast<std::size_t>(instance_.machines),
                                   std::numeric_limits<Time>::min());
    for (const SearchCalibration* cal : order) {
      int machine = -1;
      for (std::size_t i = 0; i < machine_free.size(); ++i) {
        if (machine_free[i] <= cal->start) {
          machine = static_cast<int>(i);
          break;
        }
      }
      assert(machine >= 0 && "coloring fits: overlap checked in choose_times");
      machine_free[static_cast<std::size_t>(machine)] = cal->start + instance_.T;
      schedule.calibrations.push_back({machine, cal->start});

      Instance clipped;
      clipped.machines = 1;
      clipped.T = instance_.T;
      for (const Job* job : cal->assigned) {
        Job clip = *job;
        clip.release = std::max(job->release, cal->start);
        clip.deadline = std::min(job->deadline, cal->start + instance_.T);
        clipped.jobs.push_back(clip);
      }
      const MMFeasibility packed = exact_mm_feasibility(
          clipped, 1, ExactEngine::kBranchBound, /*node_budget=*/100'000);
      assert(packed.feasible && "re-pack of a packable calibration");
      for (const ScheduledJob& sj : packed.schedule.jobs) {
        schedule.jobs.push_back({sj.job, machine, sj.start});
      }
    }
    schedule.normalize();
    return schedule;
  }

  const Instance& instance_;
  ExactIseOptions options_;
  LimitPoller poller_;
  std::vector<Time> grid_;
  std::vector<const Job*> jobs_by_deadline_;
  std::vector<SearchCalibration> calibrations_;
  std::int64_t nodes_ = 0;
  bool budget_hit_ = false;
  SolveStatus sub_status_ = SolveStatus::kOk;
};

/// State-space path: a verified greedy solution (when one exists) tightens
/// the calibration cap before the exhaustive search starts.
ExactIseResult solve_state_space(const Instance& instance,
                                 const ExactIseOptions& options) {
  ExactIseResult result;
  if (instance.empty()) {
    result.solved = true;
    result.feasible = true;
    result.schedule = Schedule::empty_like(instance, instance.machines);
    return result;
  }
  StateSpaceIseOptions space;
  space.state_budget = options.node_budget;
  space.max_calibrations = options.max_calibrations;
  space.require_tise = options.require_tise;
  space.limits = options.limits;
  space.trace = options.trace;
  if (!options.require_tise) {
    // The greedy schedule is ISE-only; it must be independently verified
    // before its count may prune the exact search.
    const BaselineResult greedy =
        GreedyLazyIse().solve(instance, options.limits);
    if (greedy.feasible &&
        greedy.schedule.num_calibrations() <=
            static_cast<std::size_t>(options.max_calibrations) &&
        verify_ise(instance, greedy.schedule).ok()) {
      space.upper_bound_hint =
          static_cast<int>(greedy.schedule.num_calibrations());
    }
  }
  StateSpaceIseResult found = state_space_ise_minimize(instance, space);
  result.nodes = found.states;
  if (found.status != SolveStatus::kOk) {
    result.status = found.status;
    return result;  // solved = false: stopped, not a verdict
  }
  result.solved = true;
  if (found.feasible) {
    result.feasible = true;
    result.optimal_calibrations = found.calibrations;
    result.schedule = std::move(found.schedule);
  } else {
    result.status = SolveStatus::kInfeasible;
  }
  return result;
}

}  // namespace

ExactIseResult solve_exact_ise(const Instance& instance,
                               const ExactIseOptions& options) {
  ExactIseOptions effective = options;
  if (options.limits.node_budget > 0) {
    effective.node_budget = options.limits.node_budget;
  }
  if (effective.engine == ExactEngine::kStateSpace) {
    return solve_state_space(instance, effective);
  }
  ExactSearch search(instance, effective);
  return search.run();
}

}  // namespace calisched

#include "baselines/ise_lp_bound.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/calibration_bounds.hpp"
#include "core/calibration_points.hpp"
#include "lp/simplex.hpp"

namespace calisched {
namespace {

/// Job j can run inside a calibration starting at t (ISE feasibility).
bool fits(const Job& job, Time t, Time T) {
  const Time earliest = std::max(t, job.release);
  const Time latest = std::min(t + T, job.deadline);
  return earliest + job.proc <= latest;
}

}  // namespace

std::optional<double> ise_lp_bound(const Instance& instance,
                                   const SimplexOptions& options) {
  if (instance.empty()) return 0.0;
  // Full integer grid (see header comment), pruned to points where at
  // least one job fits.
  std::vector<Time> points;
  for (Time t = instance.min_release() - instance.T + 1;
       t < instance.max_deadline(); ++t) {
    if (std::any_of(instance.jobs.begin(), instance.jobs.end(),
                    [&](const Job& job) { return fits(job, t, instance.T); })) {
      points.push_back(t);
    }
  }
  const auto num_points = static_cast<int>(points.size());

  LpModel model;
  std::vector<int> calibration_column;
  calibration_column.reserve(points.size());
  for (int p = 0; p < num_points; ++p) {
    calibration_column.push_back(
        model.add_variable("C@" + std::to_string(points[p]), 1.0));
  }
  // (1) sliding-window capacity on the instance's own m machines.
  for (int p = 0; p < num_points; ++p) {
    const int row = model.add_row("cap@" + std::to_string(points[p]),
                                  RowSense::kLe,
                                  static_cast<double>(instance.machines));
    for (int q = p; q < num_points && points[q] < points[p] + instance.T; ++q) {
      model.add_coefficient(row, calibration_column[q], 1.0);
    }
  }
  // (3) per-point work capacity rows.
  std::vector<int> work_rows(static_cast<std::size_t>(num_points));
  for (int p = 0; p < num_points; ++p) {
    const int row = model.add_row("work@" + std::to_string(points[p]),
                                  RowSense::kLe, 0.0);
    model.add_coefficient(row, calibration_column[p],
                          -static_cast<double>(instance.T));
    work_rows[static_cast<std::size_t>(p)] = row;
  }
  // (2) pair rows and (4) coverage.
  for (const Job& job : instance.jobs) {
    const int coverage =
        model.add_row("cover@j" + std::to_string(job.id), RowSense::kEq, 1.0);
    for (int p = 0; p < num_points; ++p) {
      if (!fits(job, points[p], instance.T)) continue;
      const int column = model.add_variable(
          "X@j" + std::to_string(job.id) + "t" + std::to_string(points[p]),
          0.0);
      const int pair = model.add_row(
          "pair@j" + std::to_string(job.id) + "t" + std::to_string(points[p]),
          RowSense::kLe, 0.0);
      model.add_coefficient(pair, column, 1.0);
      model.add_coefficient(pair, calibration_column[p], -1.0);
      model.add_coefficient(work_rows[static_cast<std::size_t>(p)], column,
                            static_cast<double>(job.proc));
      model.add_coefficient(coverage, column, 1.0);
    }
  }

  const LpSolution solution = solve_lp(model, options);
  if (solution.status != LpStatus::kOptimal) return std::nullopt;
  return solution.objective;
}

std::int64_t ise_certified_bound(const Instance& instance,
                                 std::size_t max_points,
                                 const SimplexOptions& options) {
  const std::int64_t combinatorial = calibration_lower_bound(instance);
  if (instance.empty()) return combinatorial;
  const auto grid_size = static_cast<std::size_t>(
      instance.max_deadline() - instance.min_release() + instance.T - 1);
  if (grid_size > max_points) return combinatorial;
  const auto lp = ise_lp_bound(instance, options);
  if (!lp) return combinatorial;
  const auto lp_bound = static_cast<std::int64_t>(std::ceil(*lp - 1e-6));
  return std::max(combinatorial, lp_bound);
}

}  // namespace calisched
